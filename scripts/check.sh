#!/usr/bin/env bash
# Tier-1 verification: build + ctest across a matrix — the normal build
# (suite re-run under UNIFAB_AUDIT=1 and again under UNIFAB_SHARDS=4 worker
# threads), an AddressSanitizer/UBSan build (UNIFAB_SANITIZE=ON), and a
# ThreadSanitizer build (UNIFAB_SANITIZE=thread) running the concurrency
# subset — plus the deterministic golden-JSON diffs (non-golden "perf"
# sections stripped) and the engine hot-path throughput gates. Run from
# anywhere.
#
# --audit additionally gates determinism: the full test suite re-runs with
# UNIFAB_AUDIT=1 (invariant sweeps + run digests on), each audited bench
# must still match its golden bit-for-bit, two back-to-back audited runs
# must print identical [unifab-audit] digest lines, and an audited run with
# UNIFAB_SHARDS=4 worker threads must reproduce those digest lines (and the
# golden) bit-for-bit — the sharded-engine determinism contract.
#
# Golden pairs are auto-discovered: dropping bench/golden/BENCH_<x>.json
# into the tree gates bench_<x> in both the plain and audited passes with
# no script edits.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
AUDIT=0
[[ "${1:-}" == "--audit" ]] && AUDIT=1

# Digest-determinism-checked benches that write no golden JSON.
AUDIT_EXTRA="bench_fig1_topology"

# Worker-thread count for the sharded-determinism leg: the same tests and
# benches must be bit-identical with 1 worker and with this many.
SHARDS=4

run_pass() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${ROOT}" "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest: ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

# Prints "<bench binary> <golden path>" per checked-in golden:
# bench/golden/BENCH_foo.json gates the bench_foo binary.
golden_pairs() {
  local golden
  for golden in "${ROOT}"/bench/golden/BENCH_*.json; do
    echo "bench_$(basename "${golden}" .json | sed 's/^BENCH_//') ${golden}"
  done
}

# The report's "perf" section holds wall-clock-derived numbers (calibrated
# iteration counts, elapsed seconds) and is exempt from golden diffs. It is
# a flat object (no nested braces) by BenchReport contract.
strip_perf() {
  sed -E 's/,"perf":\{[^}]*\}//' "$1"
}

# Golden diff with the non-golden perf section stripped from both sides.
diff_golden() {
  local golden="$1" generated="$2"
  diff -u --label "${golden}" --label "${generated}" \
      <(strip_perf "${golden}") <(strip_perf "${generated}")
}

# Regenerates a bench's JSON (optionally under UNIFAB_AUDIT=1) and diffs it
# against the checked-in golden bit-for-bit (minus the perf section).
check_golden() {
  local bin="$1" golden="$2" audit="${3:-0}"
  local label="golden"
  [[ "${audit}" == "1" ]] && label="golden under UNIFAB_AUDIT=1"
  echo "=== bench: ${bin} ${label} ==="
  (cd "${ROOT}/build/bench" && UNIFAB_AUDIT="${audit}" "./${bin}" > /dev/null)
  diff_golden "${golden}" "${ROOT}/build/bench/$(basename "${golden}")"
}

# Two back-to-back audited runs of a bench must print bit-identical
# non-empty [unifab-audit] digest lines (stderr; never in the report JSON).
check_digests() {
  local bin="$1"
  local audit_dir="${ROOT}/build/bench/audit"
  mkdir -p "${audit_dir}"
  echo "=== audit: ${bin} digest determinism ==="
  local run
  for run in 1 2; do
    (cd "${ROOT}/build/bench" && UNIFAB_AUDIT=1 "./${bin}" \
        > "${audit_dir}/${bin}.run${run}.out" 2> "${audit_dir}/${bin}.run${run}.err")
    grep '^\[unifab-audit\] digest=' "${audit_dir}/${bin}.run${run}.err" \
        > "${audit_dir}/${bin}.run${run}.digest"
  done
  if [[ ! -s "${audit_dir}/${bin}.run1.digest" ]]; then
    echo "FAIL: ${bin} printed no [unifab-audit] digest lines" >&2
    exit 1
  fi
  diff -u "${audit_dir}/${bin}.run1.digest" "${audit_dir}/${bin}.run2.digest"
  sed 's/^/    /' "${audit_dir}/${bin}.run1.digest"
}

# The sharded-determinism gate: an audited run with ${SHARDS} worker threads
# must print the exact digest lines of the 1-worker runs above (the domain
# partition is fixed by the topology, so worker count must not be able to
# reorder anything observable).
check_shard_digests() {
  local bin="$1"
  local audit_dir="${ROOT}/build/bench/audit"
  echo "=== audit: ${bin} digest determinism at UNIFAB_SHARDS=${SHARDS} ==="
  (cd "${ROOT}/build/bench" && UNIFAB_AUDIT=1 UNIFAB_SHARDS="${SHARDS}" "./${bin}" \
      > "${audit_dir}/${bin}.shards.out" 2> "${audit_dir}/${bin}.shards.err")
  grep '^\[unifab-audit\] digest=' "${audit_dir}/${bin}.shards.err" \
      > "${audit_dir}/${bin}.shards.digest"
  diff -u "${audit_dir}/${bin}.run1.digest" "${audit_dir}/${bin}.shards.digest"
}

run_pass "${ROOT}/build"

# The whole suite must also hold with invariant auditing on: every sweep
# clean, and (because audit sweeps are read-only) identical behavior.
echo "=== ctest: ${ROOT}/build (UNIFAB_AUDIT=1) ==="
UNIFAB_AUDIT=1 ctest --test-dir "${ROOT}/build" --output-on-failure -j "${JOBS}"

# ...and with the sharded engine's worker pool actually running windows in
# parallel (${SHARDS} worker threads; the default passes above ran with 1).
echo "=== ctest: ${ROOT}/build (UNIFAB_SHARDS=${SHARDS}) ==="
UNIFAB_SHARDS="${SHARDS}" ctest --test-dir "${ROOT}/build" --output-on-failure -j "${JOBS}"

# Golden regression gate: every checked-in bench/golden/BENCH_<x>.json is
# produced by a fully deterministic bench_<x> binary.
while read -r bin golden; do
  check_golden "${bin}" "${golden}"
done < <(golden_pairs)

if [[ "${AUDIT}" == "1" ]]; then
  while read -r bin golden; do
    check_digests "${bin}"
    # Audit sweeps are read-only, so the audited run's JSON (written during
    # the digest check above) must still reproduce the golden.
    echo "=== audit: ${bin} golden under UNIFAB_AUDIT=1 ==="
    diff_golden "${golden}" "${ROOT}/build/bench/$(basename "${golden}")"
    # Worker threads must change neither the digests nor the report.
    check_shard_digests "${bin}"
    echo "=== audit: ${bin} golden under UNIFAB_SHARDS=${SHARDS} ==="
    diff_golden "${golden}" "${ROOT}/build/bench/$(basename "${golden}")"
  done < <(golden_pairs)
  for bin in ${AUDIT_EXTRA}; do
    check_digests "${bin}"
    check_shard_digests "${bin}"
  done
fi

# Hot-path throughput gate #1: the calendar-queue workloads must hold >= 2x
# over the recorded pre-overhaul baseline (enforced inside the bench).
echo "=== bench: engine hotpath (enforce >= 2x) ==="
(cd "${ROOT}/build/bench" && ./bench_engine_hotpath --enforce)

# Hot-path throughput gate #2: bench_engine_micro events/sec floor — fail on
# a >20% regression from the recorded baseline. Median of 3 repetitions to
# ride out single-CPU container noise; baselines in bench/baseline/ are
# deliberately conservative snapshots of post-overhaul throughput.
echo "=== bench: engine micro events/sec floor ==="
micro_json="${ROOT}/build/bench/engine_micro_floor_check.json"
(cd "${ROOT}/build/bench" && ./bench_engine_micro \
    --benchmark_filter='BM_EngineScheduleFire|BM_EngineDeepQueue' \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only \
    --benchmark_format=json > "${micro_json}")
while read -r bench_name floor; do
  [[ "${bench_name}" =~ ^# ]] && continue
  measured="$(python3 - "${micro_json}" "${bench_name}" <<'EOF'
import json, sys
# The binary appends its own BenchReport lines after the google-benchmark
# JSON object; parse just the leading object.
data, _ = json.JSONDecoder().raw_decode(open(sys.argv[1]).read())
for b in data["benchmarks"]:
    if b.get("name") == sys.argv[2] + "_median":
        print(b["items_per_second"])
        break
else:
    sys.exit(f"no median aggregate for {sys.argv[2]}")
EOF
)"
  ok="$(python3 -c "import sys; print(int(float('${measured}') >= 0.8 * float('${floor}')))")"
  printf '    %-32s %12.0f events/s (floor %.0f x0.8)\n' "${bench_name}" "${measured}" "${floor}"
  if [[ "${ok}" != "1" ]]; then
    echo "FAIL: ${bench_name} regressed >20% below recorded baseline ${floor}" >&2
    exit 1
  fi
done < "${ROOT}/bench/baseline/engine_micro_floor.txt"

run_pass "${ROOT}/build-asan" -DUNIFAB_SANITIZE=ON

# ThreadSanitizer leg: the sharded engine's worker pool, cross-shard
# mailboxes, and Link boundary protocol must be race-free when windows run
# on real threads. Full TSan ctest is too slow for the container, so this
# leg runs the concurrency-exercising subset with ${SHARDS} worker threads.
echo "=== configure: ${ROOT}/build-tsan (UNIFAB_SANITIZE=thread) ==="
cmake -B "${ROOT}/build-tsan" -S "${ROOT}" -DUNIFAB_SANITIZE=thread
echo "=== build: ${ROOT}/build-tsan ==="
cmake --build "${ROOT}/build-tsan" -j "${JOBS}"
echo "=== ctest: ${ROOT}/build-tsan (UNIFAB_SHARDS=${SHARDS}, concurrency subset) ==="
UNIFAB_SHARDS="${SHARDS}" ctest --test-dir "${ROOT}/build-tsan" --output-on-failure \
    -j "${JOBS}" -R 'Sharded|ShardCancel|FabricFuzz|FaultCampaign|Cluster|Collect|Failover|Contention|ETrans|Heap|SwitchMem|TranslationCache|Coherent|CcNuma|Tenant|Scenario|FabricArbiterQos|Pod|Bridge|Ofi'

echo "=== all checks passed ==="
