#!/usr/bin/env bash
# Tier-1 verification: build + ctest twice — a normal build, then an
# AddressSanitizer/UBSan build (UNIFAB_SANITIZE=ON). Run from anywhere.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${ROOT}" "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest: ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_pass "${ROOT}/build"

# Recovery regression gate: the fault-injection sweep is fully deterministic,
# so its JSON must match the checked-in golden bit-for-bit.
echo "=== bench: fault recovery golden ==="
(cd "${ROOT}/build/bench" && ./bench_fault_recovery)
diff -u "${ROOT}/bench/golden/BENCH_fault_recovery.json" \
        "${ROOT}/build/bench/BENCH_fault_recovery.json"

run_pass "${ROOT}/build-asan" -DUNIFAB_SANITIZE=ON

echo "=== all checks passed ==="
