#!/usr/bin/env bash
# Tier-1 verification: build + ctest twice — a normal build, then an
# AddressSanitizer/UBSan build (UNIFAB_SANITIZE=ON) — plus the deterministic
# golden-JSON diffs and the engine hot-path throughput gates. Run from
# anywhere.
#
# --audit additionally gates determinism: the full test suite re-runs with
# UNIFAB_AUDIT=1 (invariant sweeps + run digests on), the audited benches
# must still match their goldens bit-for-bit, and two back-to-back audited
# runs of bench_fig1_topology and bench_fault_recovery must print identical
# [unifab-audit] digest lines.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
AUDIT=0
[[ "${1:-}" == "--audit" ]] && AUDIT=1

run_pass() {
  local build_dir="$1"
  shift
  echo "=== configure: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${ROOT}" "$@"
  echo "=== build: ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest: ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_pass "${ROOT}/build"

# The whole suite must also hold with invariant auditing on: every sweep
# clean, and (because audit sweeps are read-only) identical behavior.
echo "=== ctest: ${ROOT}/build (UNIFAB_AUDIT=1) ==="
UNIFAB_AUDIT=1 ctest --test-dir "${ROOT}/build" --output-on-failure -j "${JOBS}"

# Golden regression gate: every checked-in bench/golden/BENCH_<x>.json is
# produced by a fully deterministic bench_<x> binary, so each regenerated
# JSON must match its golden bit-for-bit.
for golden in "${ROOT}"/bench/golden/BENCH_*.json; do
  name="$(basename "${golden}" .json)"   # BENCH_foo -> bench binary bench_foo
  bin="bench_${name#BENCH_}"
  echo "=== bench: ${bin} golden ==="
  (cd "${ROOT}/build/bench" && "./${bin}" > /dev/null)
  diff -u "${golden}" "${ROOT}/build/bench/${name}.json"
done

if [[ "${AUDIT}" == "1" ]]; then
  # Determinism gate: two back-to-back audited runs of each bench must print
  # bit-identical [unifab-audit] digest lines, and the audited runs must
  # still reproduce the checked-in goldens (sweeps are read-only; digests go
  # to stderr, never into the report JSON).
  audit_dir="${ROOT}/build/bench/audit"
  mkdir -p "${audit_dir}"
  for bin in bench_fig1_topology bench_fault_recovery; do
    echo "=== audit: ${bin} digest determinism ==="
    for run in 1 2; do
      (cd "${ROOT}/build/bench" && UNIFAB_AUDIT=1 "./${bin}" \
          > "${audit_dir}/${bin}.run${run}.out" 2> "${audit_dir}/${bin}.run${run}.err")
      grep '^\[unifab-audit\] digest=' "${audit_dir}/${bin}.run${run}.err" \
          > "${audit_dir}/${bin}.run${run}.digest"
    done
    if [[ ! -s "${audit_dir}/${bin}.run1.digest" ]]; then
      echo "FAIL: ${bin} printed no [unifab-audit] digest lines" >&2
      exit 1
    fi
    diff -u "${audit_dir}/${bin}.run1.digest" "${audit_dir}/${bin}.run2.digest"
    sed 's/^/    /' "${audit_dir}/${bin}.run1.digest"
  done
  echo "=== audit: bench_fault_recovery golden under UNIFAB_AUDIT=1 ==="
  diff -u "${ROOT}/bench/golden/BENCH_fault_recovery.json" \
      "${ROOT}/build/bench/BENCH_fault_recovery.json"
fi

# Hot-path throughput gate #1: the calendar-queue workloads must hold >= 2x
# over the recorded pre-overhaul baseline (enforced inside the bench).
echo "=== bench: engine hotpath (enforce >= 2x) ==="
(cd "${ROOT}/build/bench" && ./bench_engine_hotpath --enforce)

# Hot-path throughput gate #2: bench_engine_micro events/sec floor — fail on
# a >20% regression from the recorded baseline. Median of 3 repetitions to
# ride out single-CPU container noise; baselines in bench/baseline/ are
# deliberately conservative snapshots of post-overhaul throughput.
echo "=== bench: engine micro events/sec floor ==="
micro_json="${ROOT}/build/bench/engine_micro_floor_check.json"
(cd "${ROOT}/build/bench" && ./bench_engine_micro \
    --benchmark_filter='BM_EngineScheduleFire|BM_EngineDeepQueue' \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only \
    --benchmark_format=json > "${micro_json}")
while read -r bench_name floor; do
  [[ "${bench_name}" =~ ^# ]] && continue
  measured="$(python3 - "${micro_json}" "${bench_name}" <<'EOF'
import json, sys
# The binary appends its own BenchReport lines after the google-benchmark
# JSON object; parse just the leading object.
data, _ = json.JSONDecoder().raw_decode(open(sys.argv[1]).read())
for b in data["benchmarks"]:
    if b.get("name") == sys.argv[2] + "_median":
        print(b["items_per_second"])
        break
else:
    sys.exit(f"no median aggregate for {sys.argv[2]}")
EOF
)"
  ok="$(python3 -c "import sys; print(int(float('${measured}') >= 0.8 * float('${floor}')))")"
  printf '    %-32s %12.0f events/s (floor %.0f x0.8)\n' "${bench_name}" "${measured}" "${floor}"
  if [[ "${ok}" != "1" ]]; then
    echo "FAIL: ${bench_name} regressed >20% below recorded baseline ${floor}" >&2
    exit 1
  fi
done < "${ROOT}/bench/baseline/engine_micro_floor.txt"

run_pass "${ROOT}/build-asan" -DUNIFAB_SANITIZE=ON

echo "=== all checks passed ==="
