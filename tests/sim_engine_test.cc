#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace unifab {
namespace {

TEST(EngineTest, StartsAtTimeZeroAndIdle) {
  Engine e;
  EXPECT_EQ(e.Now(), 0u);
  EXPECT_TRUE(e.Idle());
  EXPECT_EQ(e.PendingEvents(), 0u);
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.Schedule(FromNs(30), [&] { order.push_back(3); });
  e.Schedule(FromNs(10), [&] { order.push_back(1); });
  e.Schedule(FromNs(20), [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), FromNs(30));
}

TEST(EngineTest, SameTickEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.Schedule(FromNs(5), [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EngineTest, NestedSchedulingAdvancesTime) {
  Engine e;
  Tick inner_fired_at = 0;
  e.Schedule(FromNs(10), [&] {
    e.Schedule(FromNs(5), [&] { inner_fired_at = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(inner_fired_at, FromNs(15));
}

TEST(EngineTest, RunUntilStopsAtDeadlineAndSetsNow) {
  Engine e;
  int fired = 0;
  e.Schedule(FromNs(10), [&] { ++fired; });
  e.Schedule(FromNs(100), [&] { ++fired; });
  const std::size_t n = e.RunUntil(FromNs(50));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.Now(), FromNs(50));
  e.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunForIsRelative) {
  Engine e;
  e.Schedule(FromNs(10), [] {});
  e.RunFor(FromNs(20));
  EXPECT_EQ(e.Now(), FromNs(20));
  e.RunFor(FromNs(20));
  EXPECT_EQ(e.Now(), FromNs(40));
}

TEST(EngineTest, StepLimitsEventCount) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    e.Schedule(FromNs(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(e.Step(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.Step(10), 3u);
  EXPECT_EQ(fired, 5);
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const EventId id = e.Schedule(FromNs(10), [&] { ++fired; });
  e.Schedule(FromNs(20), [&] { ++fired; });
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));  // double-cancel reports failure
  e.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, CancelAfterFireReturnsFalse) {
  Engine e;
  const EventId id = e.Schedule(FromNs(1), [] {});
  e.Run();
  EXPECT_FALSE(e.Cancel(id));
}

TEST(EngineTest, TotalFiredCounts) {
  Engine e;
  for (int i = 0; i < 7; ++i) {
    e.Schedule(FromNs(i), [] {});
  }
  e.Run();
  EXPECT_EQ(e.TotalFired(), 7u);
}

TEST(EventQueueTest, EmptyAfterCancellingEverything) {
  EventQueue q;
  const EventId a = q.Push(5, [] {});
  const EventId b = q.Push(10, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(a);
  q.Cancel(b);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PopSkipsCancelledHead) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.Push(5, [&] { fired = 1; });
  q.Push(10, [&] { fired = 2; });
  q.Cancel(a);
  auto [when, id, fn] = q.Pop();
  EXPECT_EQ(when, 10u);
  EXPECT_NE(id, kInvalidEventId);
  fn();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace unifab
