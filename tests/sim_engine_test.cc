#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_queue.h"

namespace unifab {
namespace {

TEST(EngineTest, StartsAtTimeZeroAndIdle) {
  Engine e;
  EXPECT_EQ(e.Now(), 0u);
  EXPECT_TRUE(e.Idle());
  EXPECT_EQ(e.PendingEvents(), 0u);
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.Schedule(FromNs(30), [&] { order.push_back(3); });
  e.Schedule(FromNs(10), [&] { order.push_back(1); });
  e.Schedule(FromNs(20), [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), FromNs(30));
}

TEST(EngineTest, SameTickEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.Schedule(FromNs(5), [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EngineTest, NestedSchedulingAdvancesTime) {
  Engine e;
  Tick inner_fired_at = 0;
  e.Schedule(FromNs(10), [&] {
    e.Schedule(FromNs(5), [&] { inner_fired_at = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(inner_fired_at, FromNs(15));
}

TEST(EngineTest, RunUntilStopsAtDeadlineAndSetsNow) {
  Engine e;
  int fired = 0;
  e.Schedule(FromNs(10), [&] { ++fired; });
  e.Schedule(FromNs(100), [&] { ++fired; });
  const std::size_t n = e.RunUntil(FromNs(50));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.Now(), FromNs(50));
  e.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, RunForIsRelative) {
  Engine e;
  e.Schedule(FromNs(10), [] {});
  e.RunFor(FromNs(20));
  EXPECT_EQ(e.Now(), FromNs(20));
  e.RunFor(FromNs(20));
  EXPECT_EQ(e.Now(), FromNs(40));
}

TEST(EngineTest, StepLimitsEventCount) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    e.Schedule(FromNs(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(e.Step(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.Step(10), 3u);
  EXPECT_EQ(fired, 5);
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const EventId id = e.Schedule(FromNs(10), [&] { ++fired; });
  e.Schedule(FromNs(20), [&] { ++fired; });
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));  // double-cancel reports failure
  e.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, CancelAfterFireReturnsFalse) {
  Engine e;
  const EventId id = e.Schedule(FromNs(1), [] {});
  e.Run();
  EXPECT_FALSE(e.Cancel(id));
}

TEST(EngineTest, TotalFiredCounts) {
  Engine e;
  for (int i = 0; i < 7; ++i) {
    e.Schedule(FromNs(i), [] {});
  }
  e.Run();
  EXPECT_EQ(e.TotalFired(), 7u);
}

TEST(EventQueueTest, EmptyAfterCancellingEverything) {
  EventQueue q;
  const EventId a = q.Push(5, [] {});
  const EventId b = q.Push(10, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(a);
  q.Cancel(b);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PopSkipsCancelledHead) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.Push(5, [&] { fired = 1; });
  q.Push(10, [&] { fired = 2; });
  q.Cancel(a);
  auto [when, id, fn] = q.Pop();
  EXPECT_EQ(when, 10u);
  EXPECT_NE(id, kInvalidEventId);
  fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelReclaimsRecordsEagerly) {
  // Cancelled events (e.g. far-future MSHR timeouts) must return to the
  // pool immediately, not linger until their tick surfaces — the pool
  // invariant AllocatedRecords() - FreeRecords() == Size() holds at rest.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.Push(1'000'000 + static_cast<Tick>(i), [] {}));
  }
  EXPECT_EQ(q.AllocatedRecords() - q.FreeRecords(), q.Size());
  for (const EventId id : ids) {
    EXPECT_TRUE(q.Cancel(id));
    EXPECT_EQ(q.AllocatedRecords() - q.FreeRecords(), q.Size());
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.FreeRecords(), q.AllocatedRecords());
  // Reclaimed records are reused rather than growing the pool.
  const std::size_t allocated = q.AllocatedRecords();
  for (int i = 0; i < 100; ++i) {
    q.Push(static_cast<Tick>(i), [] {});
  }
  EXPECT_EQ(q.AllocatedRecords(), allocated);
}

TEST(EventQueueTest, StaleIdsNeverCancelReusedRecords) {
  // After a record is freed and reused, the old EventId's generation tag no
  // longer matches — cancelling it must not disturb the new occupant.
  EventQueue q;
  const EventId a = q.Push(5, [] {});
  ASSERT_TRUE(q.Cancel(a));
  int fired = 0;
  q.Push(7, [&] { fired = 1; });  // reuses the record slot `a` named
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_EQ(q.Size(), 1u);
  auto [when, id, fn] = q.Pop();
  EXPECT_EQ(when, 7u);
  fn();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.Cancel(id));  // popped ids are stale too
}

TEST(EventQueueTest, FifoWithinTickAcrossManyTicks) {
  // Events popping in (when, schedule-order) order regardless of insertion
  // pattern — the determinism contract the calendar layout must preserve.
  EventQueue q;
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    for (Tick t : {30u, 10u, 20u}) {
      const int tag = static_cast<int>(t) + round;
      q.Push(t, [&order, tag] { order.push_back(tag); });
    }
  }
  std::vector<int> got;
  while (!q.Empty()) {
    auto [when, id, fn] = q.Pop();
    fn();
    (void)when;
    (void)id;
  }
  EXPECT_EQ(order, (std::vector<int>{10, 11, 12, 20, 21, 22, 30, 31, 32}));
}

TEST(EventQueueTest, LargeCapturesAndReschedulingChurn) {
  // Callables up to EventCallback::kInlineBytes live in the pooled record;
  // bigger ones spill to the heap but still run and destroy correctly.
  EventQueue q;
  struct Big {
    std::array<std::uint64_t, 32> payload;  // 256B: larger than inline buffer
  };
  auto big = std::make_shared<Big>();
  big->payload[31] = 77;
  std::uint64_t seen = 0;
  q.Push(1, [big, &seen] { seen = big->payload[31]; });
  std::array<char, 96> inline_blob{};
  inline_blob[95] = 5;
  int inline_seen = 0;
  q.Push(2, [inline_blob, &inline_seen] { inline_seen = inline_blob[95]; });
  while (!q.Empty()) {
    auto [when, id, fn] = q.Pop();
    fn();
    (void)when;
    (void)id;
  }
  EXPECT_EQ(seen, 77u);
  EXPECT_EQ(inline_seen, 5);
  EXPECT_EQ(big.use_count(), 1);  // the queue released its copy
}

}  // namespace
}  // namespace unifab
