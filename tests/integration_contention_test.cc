// Cross-module integration tests: multiple cores contending for shared
// host resources (DRAM banks, the FHA), multi-host fabric contention, and
// end-to-end runtime behaviors that only emerge under load.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/core/runtime.h"

namespace unifab {
namespace {

ClusterConfig Shape(int hosts, int fams, int faas) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.num_fams = fams;
  cfg.num_faas = faas;
  return cfg;
}

// Drives `count` dependent remote reads on one core; returns mean ns.
double ChasedRemote(Cluster& cluster, int host, int core_idx, std::uint64_t base, int count) {
  MemoryHierarchy* core = cluster.host(host)->core(core_idx);
  auto remaining = std::make_shared<int>(count);
  auto addr = std::make_shared<std::uint64_t>(base);
  auto lat = std::make_shared<Summary>();
  auto loop = std::make_shared<std::function<void()>>();
  // Capture a raw self-pointer, not the shared_ptr: a closure that owns its
  // own shared_ptr is a reference cycle and leaks. The local `loop` outlives
  // engine().Run(), which drains every pending callback.
  std::function<void()>* self = loop.get();
  *loop = [&cluster, core, remaining, addr, lat, self] {
    if (--*remaining < 0) {
      return;
    }
    *addr += 4160;
    const Tick t0 = cluster.engine().Now();
    core->Access(*addr, false, [&cluster, lat, t0, self] {
      lat->Add(ToNs(cluster.engine().Now() - t0));
      (*self)();
    });
  };
  (*loop)();
  cluster.engine().Run();
  return lat->Mean();
}

TEST(ContentionTest, CoresShareTheHostFha) {
  // One core running alone vs four cores hammering the same FAM: the FHA's
  // outstanding-transaction budget is shared, so per-core latency rises.
  Cluster solo(Shape(1, 1, 0));
  const double alone = ChasedRemote(solo, 0, 0, solo.FamBase(0), 64);

  Cluster busy(Shape(1, 1, 0));
  // Background DMA-style traffic keeps the FHA's 16 transaction slots busy
  // with 4 KiB reads submitted straight at the adapter.
  HostAdapter* fha = busy.host(0)->fha();
  const PbrId fam = busy.fam(0)->id();
  std::vector<std::shared_ptr<std::function<void()>>> chains;
  for (int chain = 0; chain < 16; ++chain) {
    auto addr = std::make_shared<std::uint64_t>(busy.FamBase(0) +
                                                (static_cast<std::uint64_t>(chain) << 22));
    auto ops = std::make_shared<int>(200);
    auto loop = std::make_shared<std::function<void()>>();
    std::function<void()>* self = loop.get();
    *loop = [fha, fam, addr, ops, self] {
      if (--*ops < 0) {
        return;
      }
      *addr += 8256;
      MemRequest req;
      req.type = MemRequest::Type::kRead;
      req.addr = *addr;
      req.bytes = 4096;
      fha->Submit(fam, req, *self);
    };
    chains.push_back(loop);  // keep-alive: the closure no longer owns itself
    (*loop)();
  }
  const double contended = ChasedRemote(busy, 0, 0, busy.FamBase(0) + (40ULL << 20), 64);
  EXPECT_GT(contended, alone * 1.2);
}

TEST(ContentionTest, HostsContendAtTheFamNotAtEachOther) {
  // Two hosts reading two different FAMs see no cross-interference through
  // the (non-blocking) switch.
  Cluster cluster(Shape(2, 2, 0));
  const double h0 = ChasedRemote(cluster, 0, 0, cluster.FamBase(0), 48);

  Cluster both(Shape(2, 2, 0));
  // Host 1 hammers FAM1 while host 0 measures FAM0.
  std::vector<std::shared_ptr<std::function<void()>>> chains;
  for (int chain = 0; chain < 8; ++chain) {
    MemoryHierarchy* core = both.host(1)->core(0);
    auto addr = std::make_shared<std::uint64_t>(both.FamBase(1) +
                                                (static_cast<std::uint64_t>(chain) << 22));
    auto ops = std::make_shared<int>(400);
    auto loop = std::make_shared<std::function<void()>>();
    std::function<void()>* self = loop.get();
    *loop = [core, addr, ops, self] {
      if (--*ops < 0) {
        return;
      }
      *addr += 4160;
      core->Access(*addr, false, *self);
    };
    chains.push_back(loop);  // keep-alive: the closure no longer owns itself
    (*loop)();
  }
  const double h0_with_neighbor = ChasedRemote(both, 0, 0, both.FamBase(0), 48);
  EXPECT_NEAR(h0_with_neighbor, h0, h0 * 0.15);
}

TEST(ContentionTest, ExpanderPartitionsKeepHostsApart) {
  Cluster cluster(Shape(2, 1, 0));
  MemoryExpander* exp = cluster.fam(0)->expander();
  const std::uint64_t p0 = exp->CreatePartition(cluster.host(0)->id(), 1 << 20);
  const std::uint64_t p1 = exp->CreatePartition(cluster.host(1)->id(), 1 << 20);
  EXPECT_NE(p0, p1);

  // Each host writes its own partition: no faults.
  exp->SetCurrentRequester(cluster.host(0)->id());
  bool done = false;
  cluster.host(0)->core(0)->Access(cluster.FamBase(0) + p0, true, [&] { done = true; });
  cluster.engine().Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(exp->stats().partition_faults, 0u);
}

TEST(ContentionTest, MigrationTrafficSharesFabricWithDemandLoads) {
  // Heap migrations ride the same links as demand misses; a migration storm
  // must not wedge foreground accesses (only slow them).
  Cluster cluster(Shape(1, 1, 0));
  RuntimeOptions opts;
  opts.heap.migration_enabled = true;
  opts.heap.promote_threshold = 0.1;  // migrate eagerly
  opts.heap.epoch_length = FromUs(50.0);
  opts.heap.migration_budget_bytes = 4 << 20;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);

  std::vector<ObjectId> objs;
  for (int i = 0; i < 64; ++i) {
    objs.push_back(heap->Allocate(65536, 1));
  }
  // Touch everything so the policy wants all of it promoted, and kick an
  // epoch while the foreground probes run (the heap evaluates epochs lazily
  // on its own accesses).
  for (const ObjectId id : objs) {
    heap->Read(id, nullptr);
  }
  cluster.engine().Schedule(FromUs(55), [heap] { heap->RunEpoch(); });
  int fg_done = 0;
  for (int i = 0; i < 20; ++i) {
    cluster.engine().Schedule(FromUs(10) * static_cast<Tick>(i), [&cluster, &fg_done] {
      cluster.host(0)->core(0)->Access(cluster.FamBase(0) + (48ULL << 20), false,
                                       [&fg_done] { ++fg_done; });
    });
  }
  cluster.engine().Run();
  EXPECT_EQ(fg_done, 20);
  EXPECT_GT(heap->stats().promotions, 0u);
}

TEST(ContentionTest, TasksAndHeapAndArbiterComposeUnderLoad) {
  // Everything at once: tasks on FAAs, bulk eTrans, heap reads — the system
  // must drain with all completions delivered.
  Cluster cluster(Shape(2, 2, 2));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  UnifiedHeap* heap = runtime.heap(0);

  int tasks_done = 0;
  for (int i = 0; i < 12; ++i) {
    TaskSpec t;
    t.name = "work";
    t.inputs = {heap->Allocate(4096)};
    t.outputs = {heap->Allocate(4096)};
    t.compute_cost = FromUs(30.0);
    t.apply = [&tasks_done] { ++tasks_done; };
    runtime.itasks()->Submit(t);
  }

  int transfers_done = 0;
  for (int i = 0; i < 4; ++i) {
    ETransDescriptor d;
    d.src = {Segment{cluster.host(i % 2)->id(), 0, 1 << 20}};
    d.dst = {Segment{cluster.fam(i % 2)->id(), static_cast<std::uint64_t>(i) << 24, 1 << 20}};
    d.attributes.throttled = true;
    TransferFuture f = runtime.etrans()->Submit(runtime.host_agent(i % 2), d);
    f.Then([&transfers_done](const TransferResult&) { ++transfers_done; });
  }

  int reads_done = 0;
  const ObjectId hot = heap->Allocate(1024);
  for (int i = 0; i < 50; ++i) {
    heap->Read(hot, [&reads_done] { ++reads_done; });
  }

  cluster.engine().Run();
  EXPECT_EQ(tasks_done, 12);
  EXPECT_EQ(transfers_done, 4);
  EXPECT_EQ(reads_done, 50);
}

}  // namespace
}  // namespace unifab
