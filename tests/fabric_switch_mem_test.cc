// Switch-resident memory control (DESIGN.md §8): translation-cache unit
// tests, the agent/client protocol driven through a real runtime (register,
// translate, commit, invalidate, release), seeded violations for the new
// audit checks, and the heap's delegation of accesses and migration commits.

#include "src/fabric/switch/mem_agent.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/heap.h"
#include "src/core/runtime.h"
#include "src/fabric/switch/xlat_cache.h"
#include "src/topo/cluster.h"

namespace unifab {

// Test-only corruption hook (same pattern as sim_audit_test.cc): reaches
// into the heap's migration ledger so a test can seed exactly one violation
// of the new migration_registry check and put the state back afterwards.
class AuditTestPeer {
 public:
  static std::uint64_t& HeapMigratingSrc(UnifiedHeap& h, int tier) {
    return h.tier_migrating_src_[static_cast<std::size_t>(tier)];
  }
};

namespace {

bool AnyPathEndsWith(const std::vector<InvariantViolation>& violations,
                     const std::string& suffix) {
  for (const auto& v : violations) {
    if (v.path.size() >= suffix.size() &&
        v.path.compare(v.path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

// ------------------------- TranslationCache unit --------------------------

Translation MakeXlat(std::uint64_t vbase, std::uint64_t bytes, PbrId node,
                     std::uint64_t addr, std::uint64_t version = 0) {
  Translation x;
  x.vbase = vbase;
  x.bytes = bytes;
  x.node = node;
  x.addr = addr;
  x.version = version;
  return x;
}

TEST(TranslationCacheTest, MissThenHitWithinRange) {
  TranslationCache cache(TranslationCacheConfig{});
  EXPECT_EQ(cache.Lookup(0x1000), nullptr);
  cache.Insert(MakeXlat(0x1000, 256, 7, 0xA000));

  const Translation* hit = cache.Lookup(0x10FF);  // last byte of the range
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->addr, 0xA000u);
  EXPECT_EQ(cache.Lookup(0x1100), nullptr);  // one past the end
  EXPECT_EQ(cache.Lookup(0x0FFF), nullptr);  // one before the base
  EXPECT_EQ(cache.stats().lookups, 4u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(TranslationCacheTest, LruEvictionAtCapacity) {
  TranslationCacheConfig cfg;
  cfg.capacity = 2;
  TranslationCache cache(cfg);
  cache.Insert(MakeXlat(0x1000, 64, 1, 0xA000));
  cache.Insert(MakeXlat(0x2000, 64, 1, 0xB000));
  ASSERT_NE(cache.Lookup(0x1000), nullptr);  // refresh: 0x2000 becomes LRU

  cache.Insert(MakeXlat(0x3000, 64, 1, 0xC000));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(0x2000), nullptr);  // the LRU entry was evicted
  EXPECT_NE(cache.Lookup(0x1000), nullptr);
  EXPECT_NE(cache.Lookup(0x3000), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(TranslationCacheTest, InvalidateDropsEntryAndCountsSpurious) {
  TranslationCache cache(TranslationCacheConfig{});
  cache.Insert(MakeXlat(0x1000, 64, 1, 0xA000));
  EXPECT_TRUE(cache.Invalidate(0x1000));
  EXPECT_EQ(cache.Lookup(0x1000), nullptr);
  // A second invalidation races an eviction in real runs: spurious, counted.
  EXPECT_FALSE(cache.Invalidate(0x1000));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().spurious_invalidations, 1u);
}

TEST(TranslationCacheTest, InsertRefreshesInPlace) {
  TranslationCache cache(TranslationCacheConfig{});
  cache.Insert(MakeXlat(0x1000, 64, 1, 0xA000, 0));
  cache.Insert(MakeXlat(0x1000, 64, 2, 0xB000, 1));  // the committed placement
  EXPECT_EQ(cache.size(), 1u);
  const Translation* hit = cache.Lookup(0x1000);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->addr, 0xB000u);
  EXPECT_EQ(hit->version, 1u);
}

// ------------------------ Runtime-level protocol --------------------------

class SwitchMemTest : public ::testing::Test {
 protected:
  SwitchMemTest()
      : cluster_([] {
          ClusterConfig cfg;
          cfg.num_hosts = 1;
          cfg.num_fams = 2;
          cfg.num_faas = 0;
          return cfg;
        }()) {
    RuntimeOptions opts;
    opts.heap_local_bytes = 1 << 20;
    opts.heap.migration_enabled = false;  // tests drive migrations explicitly
    opts.switch_mem = true;
    runtime_ = std::make_unique<UniFabricRuntime>(&cluster_, opts);
    heap_ = runtime_->heap(0);
    agent_ = runtime_->switch_mem_agent();
    client_ = runtime_->switch_mem_client(0);
  }

  Cluster cluster_;
  std::unique_ptr<UniFabricRuntime> runtime_;
  UnifiedHeap* heap_ = nullptr;
  SwitchMemAgent* agent_ = nullptr;
  SwitchMemClient* client_ = nullptr;
};

TEST_F(SwitchMemTest, AllocateRegistersRangeAndFreeReleasesIt) {
  const ObjectId id = heap_->Allocate(4096, 1);
  ASSERT_NE(id, kInvalidObject);
  const ObjectInfo info = heap_->Info(id);
  EXPECT_NE(info.vaddr, 0u);
  EXPECT_EQ(agent_->num_ranges(), 1u);

  const Translation x = agent_->Lookup(info.vaddr);
  EXPECT_EQ(x.bytes, 4096u);
  EXPECT_EQ(x.addr, info.addr);
  EXPECT_EQ(x.node, cluster_.fam(0)->id());

  heap_->Free(id);
  cluster_.engine().Run();
  EXPECT_EQ(agent_->num_ranges(), 0u);
  EXPECT_EQ(agent_->pending_invalidations(), 0u);
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());
}

TEST_F(SwitchMemTest, ResolveMissesThenHits) {
  const ObjectId id = heap_->Allocate(4096, 1);
  bool first = false;
  heap_->Read(id, [&] { first = true; });
  cluster_.engine().Run();
  ASSERT_TRUE(first);

  const TranslationCacheStats& cs = client_->cache()->stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(agent_->stats().translations, 1u);

  bool second = false;
  heap_->Read(id, [&] { second = true; });
  cluster_.engine().Run();
  ASSERT_TRUE(second);
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(agent_->stats().translations, 1u);  // served on-adapter this time
  EXPECT_EQ(client_->stats().cache_hits, 1u);
}

TEST_F(SwitchMemTest, MigrationCommitsInvalidatesAndRefreshesCache) {
  const ObjectId id = heap_->Allocate(4096, 1);
  const std::uint64_t vaddr = heap_->Info(id).vaddr;
  heap_->Read(id, nullptr);  // populate the cached old translation
  cluster_.engine().Run();
  const std::uint64_t old_addr = heap_->Info(id).addr;

  bool ok = false;
  bool caches_clean_at_done = false;
  const MigrateResult res = heap_->Migrate(id, 2, [&](bool v) {
    ok = v;
    // The commit ack arrives only after every invalidation ack: at done
    // time no invalidation may still be in flight.
    caches_clean_at_done = agent_->pending_invalidations() == 0;
  });
  EXPECT_EQ(res, MigrateResult::kStarted);
  cluster_.engine().Run();

  ASSERT_TRUE(ok);
  EXPECT_TRUE(caches_clean_at_done);
  EXPECT_EQ(heap_->TierOf(id), 2);
  EXPECT_NE(heap_->Info(id).addr, old_addr);
  EXPECT_EQ(agent_->stats().commits, 1u);
  EXPECT_GE(agent_->stats().invalidations_sent, 1u);
  EXPECT_EQ(agent_->stats().invalidation_acks, agent_->stats().invalidations_sent);

  // The authoritative map moved to the new placement, version bumped...
  const Translation x = agent_->Lookup(vaddr);
  EXPECT_EQ(x.addr, heap_->Info(id).addr);
  EXPECT_EQ(x.node, cluster_.fam(1)->id());
  EXPECT_EQ(x.version, 1u);
  // ...and the committer's cache was re-primed by the ack, not left stale.
  const Translation* cached = client_->cache()->Lookup(vaddr);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->addr, x.addr);
  EXPECT_EQ(cached->version, 1u);
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());
}

TEST_F(SwitchMemTest, ResolveUnknownVaddrFaults) {
  bool called = false;
  bool ok = true;
  client_->Resolve(0xDEAD0000u, [&](const Translation&, bool v) {
    called = true;
    ok = v;
  });
  cluster_.engine().Run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(agent_->stats().translate_faults, 1u);
}

TEST_F(SwitchMemTest, FreeDuringMigrationReleasesRangeAfterResolve) {
  const ObjectId id = heap_->Allocate(4096, 1);
  heap_->Read(id, nullptr);
  cluster_.engine().Run();

  bool result = true;
  EXPECT_EQ(heap_->Migrate(id, 2, [&](bool v) { result = v; }), MigrateResult::kStarted);
  heap_->Free(id);  // before the copy completes: range release is deferred
  EXPECT_EQ(agent_->num_ranges(), 1u);
  cluster_.engine().Run();

  EXPECT_FALSE(result);
  EXPECT_EQ(agent_->num_ranges(), 0u);
  EXPECT_EQ(agent_->pending_invalidations(), 0u);
  EXPECT_EQ(heap_->TierUsed(1), 0u);
  EXPECT_EQ(heap_->TierUsed(2), 0u);
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());
}

TEST_F(SwitchMemTest, SeededCacheViolationsTripAgentAudit) {
  const ObjectId id = heap_->Allocate(4096, 1);
  const std::uint64_t vaddr = heap_->Info(id).vaddr;
  heap_->Read(id, nullptr);
  cluster_.engine().Run();
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());

  // An entry nothing at the agent accounts for: conservation fires.
  TranslationCache* cache = client_->cache();
  Translation bogus = MakeXlat(0x999000, 64, 3, 0xF000);
  cache->Insert(bogus);
  EXPECT_TRUE(AnyPathEndsWith(cluster_.engine().audit().Sweep(),
                              "fabric/switch_mem/cache_entries_conserved"));
  cache->Invalidate(0x999000);
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());

  // A tracked range cached at the wrong version with no invalidation in
  // flight: staleness fires.
  Translation stale = agent_->Lookup(vaddr);
  stale.version += 7;
  cache->Insert(stale);
  EXPECT_TRUE(AnyPathEndsWith(cluster_.engine().audit().Sweep(),
                              "fabric/switch_mem/no_stale_translation"));
  cache->Insert(agent_->Lookup(vaddr));
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());
}

TEST_F(SwitchMemTest, SeededMigrationRegistryViolationTripsHeapAudit) {
  ASSERT_NE(heap_->Allocate(4096, 1), kInvalidObject);
  cluster_.engine().Run();
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());

  std::uint64_t& claimed = AuditTestPeer::HeapMigratingSrc(*heap_, 1);
  claimed += 64;  // ledger claims migrating-src bytes no registry entry backs
  EXPECT_TRUE(AnyPathEndsWith(cluster_.engine().audit().Sweep(),
                              "core/heap/migration_registry"));
  claimed -= 64;
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());
}

TEST_F(SwitchMemTest, ChurnDrainsCleanly) {
  std::vector<ObjectId> live;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 4; ++i) {
      const ObjectId id = heap_->Allocate(1024, 1 + (i % 2));
      ASSERT_NE(id, kInvalidObject);
      live.push_back(id);
    }
    for (const ObjectId id : live) {
      heap_->Read(id, nullptr);
    }
    // Migrate a few between the FAM tiers while reads are still in flight.
    for (std::size_t i = 0; i < live.size(); i += 3) {
      heap_->Migrate(live[i], heap_->TierOf(live[i]) == 1 ? 2 : 1, nullptr);
    }
    if (round % 2 == 1) {
      heap_->Free(live.front());
      live.erase(live.begin());
    }
    cluster_.engine().Run();
  }
  EXPECT_EQ(agent_->pending_invalidations(), 0u);
  EXPECT_EQ(agent_->num_ranges(), live.size());
  EXPECT_TRUE(cluster_.engine().audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
