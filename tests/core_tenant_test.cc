// Multi-tenant scenario engine tests: the ScenarioSpec DSL parser, the
// open-loop TenantEngine's conservation + determinism contracts, and the
// guaranteed-class accounting surviving a chassis-flap fault campaign
// (link epochs must not lose or double-count completions).

#include "src/core/tenant.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/sim/scenario.h"
#include "src/topo/cluster.h"
#include "src/topo/faults.h"

namespace unifab {
namespace {

// ---------------------------------------------------------------------------
// ScenarioSpec DSL.

TEST(ScenarioParseTest, FullSpecRoundTrips) {
  const ScenarioSpec spec = ScenarioSpec::Parse(
      "# campaign header comment\n"
      "scenario mixed_demo\n"
      "seed 1234\n"
      "horizon_us 4000\n"
      "class name=gold qos=guaranteed tenants=10 arrival=poisson rate_ops_s=2000 "
      "bytes=65536 request_mbps=4000 mix=etrans:4,heap_read:2,faa:1 slo_p99_us=900\n"
      "class name=bronze qos=best_effort tenants=90 arrival=bursty burst=16 "
      "rate_ops_s=500 bytes=32768 mix=etrans:1\n");
  ASSERT_TRUE(spec.errors.empty()) << spec.errors[0];
  EXPECT_EQ(spec.name, "mixed_demo");
  EXPECT_EQ(spec.seed, 1234u);
  EXPECT_DOUBLE_EQ(spec.horizon_us, 4000.0);
  ASSERT_EQ(spec.classes.size(), 2u);
  EXPECT_EQ(spec.TotalTenants(), 100u);

  const TenantClassSpec& gold = spec.classes[0];
  EXPECT_EQ(gold.name, "gold");
  EXPECT_EQ(gold.qos, QosClass::kGuaranteed);
  EXPECT_EQ(gold.tenants, 10u);
  EXPECT_EQ(gold.arrival, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(gold.rate_ops_per_s, 2000.0);
  EXPECT_EQ(gold.bytes, 65536u);
  EXPECT_DOUBLE_EQ(gold.request_mbps, 4000.0);
  EXPECT_DOUBLE_EQ(gold.slo_p99_us, 900.0);
  EXPECT_DOUBLE_EQ(gold.mix[static_cast<int>(TenantOp::kETrans)], 4.0);
  EXPECT_DOUBLE_EQ(gold.mix[static_cast<int>(TenantOp::kHeapRead)], 2.0);
  EXPECT_DOUBLE_EQ(gold.mix[static_cast<int>(TenantOp::kFaa)], 1.0);
  EXPECT_DOUBLE_EQ(gold.mix[static_cast<int>(TenantOp::kCollect)], 0.0);

  const TenantClassSpec& bronze = spec.classes[1];
  EXPECT_EQ(bronze.qos, QosClass::kBestEffort);
  EXPECT_EQ(bronze.arrival, ArrivalKind::kBursty);
  EXPECT_EQ(bronze.burst, 16u);
  EXPECT_DOUBLE_EQ(bronze.slo_p99_us, 0.0);  // default: no SLO
}

TEST(ScenarioParseTest, DiagnosticsCarryLineNumbers) {
  const ScenarioSpec spec = ScenarioSpec::Parse(
      "seed not_a_number\n"
      "florble 3\n"
      "class name=x qos=gold-plated mix=etrans:1\n"
      "class name=y mix=etrans:0\n");  // all-zero mix: no op to draw
  ASSERT_EQ(spec.errors.size(), 5u);
  EXPECT_NE(spec.errors[0].find("line 1:"), std::string::npos);
  EXPECT_NE(spec.errors[0].find("bad seed"), std::string::npos);
  EXPECT_NE(spec.errors[1].find("line 2:"), std::string::npos);
  EXPECT_NE(spec.errors[1].find("unknown directive"), std::string::npos);
  EXPECT_NE(spec.errors[2].find("qos=gold-plated"), std::string::npos);
  EXPECT_NE(spec.errors[3].find("mix=etrans:0"), std::string::npos);
  // Both class lines were rejected, so the spec also has no classes.
  EXPECT_EQ(spec.errors[4], "scenario has no classes");
}

TEST(ScenarioParseTest, UnnamedClassesGetDeterministicNames) {
  const ScenarioSpec spec = ScenarioSpec::Parse(
      "class mix=heap_read:1\n"
      "class mix=heap_write:1\n");
  ASSERT_TRUE(spec.errors.empty());
  ASSERT_EQ(spec.classes.size(), 2u);
  EXPECT_EQ(spec.classes[0].name, "class0");
  EXPECT_EQ(spec.classes[1].name, "class1");
}

// ---------------------------------------------------------------------------
// TenantEngine over a live runtime.

struct TenantRig {
  explicit TenantRig(const std::string& scenario, int num_faas = 1,
                     int num_switches = 1)
      : cluster([&] {
          ClusterConfig cfg;
          cfg.num_hosts = 2;
          cfg.num_fams = 2;
          cfg.num_faas = num_faas;
          cfg.num_switches = num_switches;
          return cfg;
        }()) {
    runtime = std::make_unique<UniFabricRuntime>(&cluster, RuntimeOptions{});
    spec = ScenarioSpec::Parse(scenario);
    EXPECT_TRUE(spec.errors.empty()) << (spec.errors.empty() ? "" : spec.errors[0]);
    tenants = runtime->AttachTenants(spec);
  }

  Cluster cluster;
  std::unique_ptr<UniFabricRuntime> runtime;
  ScenarioSpec spec;
  TenantEngine* tenants = nullptr;
};

// Every op kind, two classes, a full run: everything issued must end up
// terminal (completed or failed), the per-op counters must sum to the
// issue counter, and the latency summary only holds completed ops.
TEST(TenantEngineTest, OpenLoopArrivalsDrainAndConserve) {
  TenantRig rig(
      "scenario conserve\n"
      "seed 11\n"
      "horizon_us 400\n"
      "class name=gold qos=guaranteed tenants=4 arrival=deterministic "
      "rate_ops_s=20000 bytes=8192 request_mbps=2000 "
      "mix=etrans:2,heap_read:2,heap_write:1,heap_migrate:1,collect:1,faa:1\n"
      "class name=bronze qos=best_effort tenants=12 arrival=bursty burst=4 "
      "rate_ops_s=10000 bytes=4096 mix=etrans:1,heap_read:3\n");
  rig.tenants->Start();
  rig.cluster.engine().Run();

  EXPECT_GT(rig.tenants->issued(), 0u);
  EXPECT_EQ(rig.tenants->in_flight(), 0u);  // open loop fully drained
  EXPECT_EQ(rig.tenants->issued(), rig.tenants->completed() + rig.tenants->failed());
  ASSERT_EQ(rig.tenants->num_classes(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    const TenantClassStats& s = rig.tenants->class_stats(c);
    EXPECT_GT(s.issued, 0u);
    std::uint64_t per_op = 0;
    for (int op = 0; op < kNumTenantOps; ++op) {
      per_op += s.ops[op];
    }
    EXPECT_EQ(per_op, s.issued);
    EXPECT_EQ(s.latency_us.Count(), s.completed);
  }
  // The conservation check is live in the engine-wide auditor too.
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());
}

TEST(TenantEngineTest, IdenticalSpecsReplayIdentically) {
  const std::string scenario =
      "scenario replay\n"
      "seed 77\n"
      "horizon_us 300\n"
      "class name=gold qos=guaranteed tenants=3 arrival=poisson rate_ops_s=30000 "
      "bytes=8192 mix=etrans:1,heap_read:1,collect:1\n"
      "class name=bronze qos=best_effort tenants=9 arrival=poisson "
      "rate_ops_s=20000 bytes=4096 mix=etrans:1,heap_write:1\n";
  auto run = [&scenario] {
    TenantRig rig(scenario);
    rig.tenants->Start();
    rig.cluster.engine().Run();
    std::vector<double> fingerprint;
    for (std::size_t c = 0; c < rig.tenants->num_classes(); ++c) {
      const TenantClassStats& s = rig.tenants->class_stats(c);
      fingerprint.push_back(static_cast<double>(s.issued));
      fingerprint.push_back(static_cast<double>(s.completed));
      fingerprint.push_back(static_cast<double>(s.failed));
      for (int op = 0; op < kNumTenantOps; ++op) {
        fingerprint.push_back(static_cast<double>(s.ops[op]));
      }
      fingerprint.push_back(s.latency_us.Sum());
      fingerprint.push_back(s.latency_us.P99());
    }
    return fingerprint;
  };
  EXPECT_EQ(run(), run());  // bit-identical replay, including latencies
}

// Degenerate topologies must not wedge the open loop: with no FAMs/FAAs the
// transfer/task ops degrade to benign no-op completions.
TEST(TenantEngineTest, DegenerateTopologyCompletesEverything) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 0;
  cfg.num_faas = 0;
  Cluster cluster(cfg);
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  const ScenarioSpec spec = ScenarioSpec::Parse(
      "scenario tiny\nseed 3\nhorizon_us 100\n"
      "class name=solo tenants=2 rate_ops_s=50000 bytes=4096 "
      "mix=etrans:1,heap_read:1,heap_migrate:1,collect:1,faa:1\n");
  ASSERT_TRUE(spec.errors.empty());
  TenantEngine* tenants = runtime.AttachTenants(spec);
  tenants->Start();
  cluster.engine().Run();
  EXPECT_GT(tenants->issued(), 0u);
  EXPECT_EQ(tenants->in_flight(), 0u);
  EXPECT_EQ(tenants->issued(), tenants->completed() + tenants->failed());
}

// ---------------------------------------------------------------------------
// Satellite: guaranteed-class SLO accounting across link epochs. A chassis
// flap campaign (FAM links failing and healing mid-run) must never lose or
// double-count a tenant completion: transfers abort or retry, but every
// issued op still reaches exactly one terminal state and the auditor's
// conservation check stays clean at quiescence.

TEST(TenantFaultCampaignTest, GuaranteedAccountingSurvivesChassisFlaps) {
  TenantRig rig(
      "scenario flaps\n"
      "seed 29\n"
      "horizon_us 2000\n"
      "class name=gold qos=guaranteed tenants=4 arrival=poisson rate_ops_s=5000 "
      "bytes=16384 request_mbps=4000 mix=etrans:3,heap_read:1 slo_p99_us=1500\n"
      "class name=storm qos=best_effort tenants=16 arrival=bursty burst=8 "
      "rate_ops_s=4000 bytes=8192 mix=etrans:1\n",
      /*num_faas=*/0, /*num_switches=*/2);

  FaultScheduler faults(&rig.cluster.engine(), &rig.cluster.fabric());
  for (int f = 0; f < 2; ++f) {
    faults.RegisterLink("fam" + std::to_string(f),
                        rig.cluster.fabric().LinkTo(rig.cluster.fam(f)->id()));
  }
  // Two flap cycles per chassis, staggered; everything heals well before
  // the horizon so in-flight retries can drain.
  const FaultPlan plan = FaultPlan::Parse(
      "fail fam0 @100\nrecover fam0 @350\n"
      "fail fam1 @500\nrecover fam1 @800\n"
      "fail fam0 @1000\nrecover fam0 @1300\n");
  ASSERT_TRUE(plan.ok());
  faults.Schedule(plan);

  rig.tenants->Start();
  rig.cluster.engine().Run();

  // Exactly-once terminal accounting survived the link epochs.
  EXPECT_EQ(rig.tenants->in_flight(), 0u);
  EXPECT_EQ(rig.tenants->issued(), rig.tenants->completed() + rig.tenants->failed());
  const TenantClassStats& gold = rig.tenants->class_stats(0);
  EXPECT_GT(gold.issued, 0u);
  EXPECT_GT(gold.completed, 0u);  // the campaign heals; traffic survives
  EXPECT_EQ(gold.issued, gold.completed + gold.failed);
  EXPECT_EQ(gold.latency_us.Count(), gold.completed);  // no double-counted ops

  // Flit conservation at quiescence on every link direction (the fault
  // windows drop, they don't duplicate).
  for (const auto& link : rig.cluster.fabric().links()) {
    for (int side = 0; side < 2; ++side) {
      const LinkStats& s = link->stats(side);
      EXPECT_EQ(s.flits_accepted, s.flits_delivered + s.dropped_on_fail)
          << link->name() << " side " << side;
    }
  }
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
