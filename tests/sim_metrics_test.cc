// Tests for the metric registry, instrument groups, the event-trace sink,
// and Summary::Percentile edge cases.

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/topo/cluster.h"

namespace unifab {
namespace {

TEST(SummaryPercentileTest, EmptySummaryReturnsZeroSentinel) {
  // No samples → deterministic 0.0 from every percentile query (e.g. a p99
  // over zero completed operations), never UB.
  Summary s;
  ASSERT_TRUE(s.Empty());
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Median(), 0.0);
  EXPECT_DOUBLE_EQ(s.P99(), 0.0);
}

TEST(SummaryPercentileTest, ClearRestoresEmptySentinel) {
  Summary s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.P99(), 42.0);
  s.Clear();
  EXPECT_DOUBLE_EQ(s.Median(), 0.0);
  EXPECT_DOUBLE_EQ(s.P99(), 0.0);
}

TEST(SummaryPercentileTest, SingleSampleEveryPercentile) {
  Summary s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 42.0);
}

TEST(SummaryPercentileTest, ZeroAndHundredAreMinAndMax) {
  Summary s;
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 9.0);
  EXPECT_DOUBLE_EQ(s.Min(), s.Percentile(0.0));
  EXPECT_DOUBLE_EQ(s.Max(), s.Percentile(100.0));
}

TEST(SummaryPercentileTest, RepeatedValuesAreStable) {
  Summary s;
  for (int i = 0; i < 100; ++i) {
    s.Add(3.0);
  }
  for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(s.Percentile(p), 3.0) << "p=" << p;
  }
}

TEST(SummaryPercentileTest, NearestRankOnSmallSets) {
  Summary s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 10.0);  // nearest-rank: ceil(0.5*2)=1st
  EXPECT_DOUBLE_EQ(s.Percentile(51.0), 20.0);
}

TEST(SummaryPercentileTest, OutOfDomainPercentilesAreClampedOrSentinel) {
  // Regression: p outside [0, 100] used to index past the sample vector
  // (ceil(p/100 * n) > n), and NaN p flowed through the clamp comparisons
  // into a size_t conversion — both UB. Out-of-range p clamps to the
  // min/max sample; NaN p reports the same 0.0 sentinel as an empty
  // summary.
  Summary s;
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(200.0), 9.0);
  EXPECT_DOUBLE_EQ(s.Percentile(std::numeric_limits<double>::infinity()), 9.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);

  Summary empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(MetricRegistryTest, CounterGaugeSummaryRoundTrip) {
  MetricRegistry reg;
  Counter* c = reg.AddCounter("a/count");
  Gauge* g = reg.AddGauge("a/gauge");
  SummaryMetric* s = reg.AddSummary("a/lat");
  c->Increment(3);
  g->Set(2.5);
  s->Observe(1.0);
  s->Observe(3.0);

  const std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"a/count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a/gauge\": 2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a/lat\": {\"count\":2"), std::string::npos) << json;
}

TEST(MetricRegistryTest, CallbackInstrumentsReadLiveValues) {
  MetricRegistry reg;
  std::uint64_t hits = 0;
  reg.AddCounterFn("cache/hits", [&hits] { return hits; });
  EXPECT_NE(reg.SnapshotJson().find("\"cache/hits\": 0"), std::string::npos);
  hits = 7;
  EXPECT_NE(reg.SnapshotJson().find("\"cache/hits\": 7"), std::string::npos);
}

TEST(MetricRegistryTest, DuplicatePathsGetDeterministicSuffixes) {
  MetricRegistry reg;
  std::uint64_t v = 0;
  EXPECT_EQ(reg.AddCounterFn("x/n", [&v] { return v; }), "x/n");
  EXPECT_EQ(reg.AddCounterFn("x/n", [&v] { return v; }), "x/n#2");
  EXPECT_EQ(reg.AddCounterFn("x/n", [&v] { return v; }), "x/n#3");
}

TEST(MetricRegistryTest, GroupUnregistersOnDestruction) {
  MetricRegistry reg;
  {
    MetricGroup group(&reg, "tmp/thing");
    group.AddCounter("c");
    EXPECT_TRUE(reg.Has("tmp/thing/c"));
  }
  EXPECT_FALSE(reg.Has("tmp/thing/c"));
}

TEST(MetricRegistryTest, EngineRegistersItsOwnInstruments) {
  Engine engine;
  EXPECT_TRUE(engine.metrics().Has("sim/engine/events_fired"));
  engine.Schedule(5, [] {});
  engine.Run();
  EXPECT_NE(engine.metrics().SnapshotJson().find("\"sim/engine/events_fired\": 1"),
            std::string::npos);
}

TEST(MetricRegistryTest, CsvListsSummaryComponents) {
  MetricRegistry reg;
  SummaryMetric* s = reg.AddSummary("m/lat");
  s->Observe(4.0);
  const std::string csv = reg.SnapshotCsv();
  EXPECT_NE(csv.find("m/lat.count,summary,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("m/lat.p99,summary,4"), std::string::npos) << csv;
}

// Two identical sim runs must produce byte-identical registry snapshots —
// the property the bench JSON blobs rely on.
std::string RunClusterAndSnapshot() {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 1;
  cfg.num_faas = 1;
  Cluster cluster(cfg);
  MemoryHierarchy* core = cluster.host(0)->core(0);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    cluster.engine().Schedule(FromNs(100.0) * static_cast<Tick>(i), [&cluster, core, &rng] {
      core->Access(cluster.FamBase(0) + (rng.Next() % (1 << 20)) / 64 * 64,
                   rng.NextBool(0.3), nullptr);
    });
  }
  cluster.engine().Run();
  return cluster.engine().metrics().SnapshotJson();
}

TEST(MetricRegistryTest, SnapshotDeterministicAcrossIdenticalRuns) {
  const std::string a = RunClusterAndSnapshot();
  const std::string b = RunClusterAndSnapshot();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(TraceRecorderTest, CountsSchedulesAndFires) {
  Engine engine;
  TraceRecorder trace(/*capacity=*/8);
  engine.SetTraceSink(&trace);
  int fired = 0;
  for (int i = 0; i < 4; ++i) {
    engine.Schedule(static_cast<Tick>(i + 1), [&fired] { ++fired; });
  }
  engine.Run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(trace.scheduled(), 4u);
  EXPECT_EQ(trace.fired(), 4u);
  EXPECT_EQ(trace.records().size(), 4u);
  // Queue residency equals the schedule delay for these events.
  EXPECT_GT(trace.queue_delay_ns().Max(), 0.0);
  EXPECT_NE(trace.ToJsonLines().find("\"fired\":true"), std::string::npos);
}

TEST(TraceRecorderTest, DetachedSinkCostsNothing) {
  Engine engine;
  EXPECT_EQ(engine.trace_sink(), nullptr);
  engine.Schedule(1, [] {});
  engine.Run();  // no sink installed: must simply not crash
}

}  // namespace
}  // namespace unifab
