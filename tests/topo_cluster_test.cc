// Cluster construction sweeps and component smoke tests: every generated
// topology must be fully routable and serve remote traffic, across host /
// chassis / switch counts.

#include "src/topo/cluster.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/fabric/registry.h"
#include "src/mem/memnode.h"
#include "src/sim/logging.h"
#include "src/topo/accelerator.h"

namespace unifab {
namespace {

using Shape = std::tuple<int, int, int, int>;  // hosts, fams, faas, switches

class ClusterShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ClusterShapeTest, EveryHostReachesEveryChassis) {
  const auto [hosts, fams, faas, switches] = GetParam();
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.num_fams = fams;
  cfg.num_faas = faas;
  cfg.num_switches = switches;
  Cluster cluster(cfg);

  for (int h = 0; h < hosts; ++h) {
    for (int f = 0; f < fams; ++f) {
      EXPECT_GT(cluster.fabric().HopCount(cluster.host(h)->id(), cluster.fam(f)->id()), 0);
    }
    for (int a = 0; a < faas; ++a) {
      EXPECT_GT(cluster.fabric().HopCount(cluster.host(h)->id(), cluster.faa(a)->id()), 0);
    }
  }
}

TEST_P(ClusterShapeTest, RemoteReadWorksFromEveryHostToEveryFam) {
  const auto [hosts, fams, faas, switches] = GetParam();
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.num_fams = fams;
  cfg.num_faas = faas;
  cfg.num_switches = switches;
  Cluster cluster(cfg);

  int done = 0;
  int expected = 0;
  for (int h = 0; h < hosts; ++h) {
    for (int f = 0; f < fams; ++f) {
      ++expected;
      cluster.host(h)->core(0)->Access(cluster.FamBase(f), false, [&done] { ++done; });
    }
  }
  cluster.engine().Run();
  EXPECT_EQ(done, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ClusterShapeTest,
                         ::testing::Values(Shape{1, 1, 0, 1}, Shape{2, 1, 1, 1},
                                           Shape{4, 2, 2, 1}, Shape{2, 2, 1, 2},
                                           Shape{3, 3, 3, 3}, Shape{8, 4, 2, 2}));

TEST(ClusterTest, FamBasesAreDisjoint) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 3;
  cfg.num_faas = 0;
  Cluster cluster(cfg);
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      const std::uint64_t a = cluster.FamBase(i);
      const std::uint64_t b = cluster.FamBase(j);
      EXPECT_GE(b > a ? b - a : a - b, cfg.fam_stride);
    }
  }
}

TEST(ClusterTest, PbrIdsAreUniqueAcrossComponents) {
  ClusterConfig cfg;
  cfg.num_hosts = 3;
  cfg.num_fams = 2;
  cfg.num_faas = 2;
  Cluster cluster(cfg);
  std::set<PbrId> ids;
  for (int h = 0; h < 3; ++h) {
    ids.insert(cluster.host(h)->id());
  }
  for (int f = 0; f < 2; ++f) {
    ids.insert(cluster.fam(f)->id());
  }
  for (int a = 0; a < 2; ++a) {
    ids.insert(cluster.faa(a)->id());
  }
  EXPECT_EQ(ids.size(), 7u);
}

// ---------------------------- Accelerator --------------------------------

TEST(AcceleratorTest, ParallelEnginesOverlapKernels) {
  Engine engine;
  AcceleratorConfig cfg;
  cfg.num_engines = 2;
  cfg.context_switch_latency = FromNs(100);
  cfg.kernel_launch_overhead = FromNs(100);
  Accelerator acc(&engine, cfg, "a");

  int done = 0;
  for (int i = 0; i < 4; ++i) {
    acc.Execute(FromUs(10), [&] { ++done; });
  }
  EXPECT_EQ(acc.EnginesBusy(), 2);
  EXPECT_EQ(acc.QueuedKernels(), 2u);
  engine.Run();
  EXPECT_EQ(done, 4);
  // 4 kernels, 2 engines -> 2 waves of ~10.2 us.
  EXPECT_NEAR(ToUs(engine.Now()), 20.4, 0.5);
}

TEST(AcceleratorTest, FailDropsEverythingSilently) {
  Engine engine;
  Accelerator acc(&engine, AcceleratorConfig{}, "a");
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    acc.Execute(FromUs(10), [&] { ++done; });
  }
  acc.Fail();
  engine.Run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(acc.stats().kernels_dropped, 6u);
  // Work submitted while failed is dropped too.
  acc.Execute(FromUs(1), [&] { ++done; });
  engine.Run();
  EXPECT_EQ(done, 0);

  acc.Recover();
  acc.Execute(FromUs(1), [&] { ++done; });
  engine.Run();
  EXPECT_EQ(done, 1);
}

TEST(AcceleratorTest, QueueDepthBoundsBacklog) {
  Engine engine;
  AcceleratorConfig cfg;
  cfg.num_engines = 1;
  cfg.queue_depth = 2;
  Accelerator acc(&engine, cfg, "a");
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    acc.Execute(FromUs(1), [&] { ++done; });
  }
  engine.Run();
  // 1 running + 2 queued admitted at each drain step; with synchronous
  // submission only 3 are admitted before overflow.
  EXPECT_EQ(done, 3);
  EXPECT_EQ(acc.stats().kernels_dropped, 7u);
}

// ------------------------------ Registry ---------------------------------

TEST(RegistryTest, ContainsTheFourPaperFabrics) {
  ASSERT_EQ(CommodityFabrics().size(), 4u);
  EXPECT_NE(FindFabric("CXL"), nullptr);
  EXPECT_NE(FindFabric("Gen-Z"), nullptr);
  EXPECT_NE(FindFabric("CCIX"), nullptr);
  EXPECT_NE(FindFabric("CAPI/OpenCAPI"), nullptr);
  EXPECT_EQ(FindFabric("Ethernet"), nullptr);
}

TEST(RegistryTest, MergedFabricsAreFlagged) {
  EXPECT_TRUE(FindFabric("Gen-Z")->merged_into_cxl);
  EXPECT_TRUE(FindFabric("CAPI/OpenCAPI")->merged_into_cxl);
  EXPECT_FALSE(FindFabric("CXL")->merged_into_cxl);
}

TEST(RegistryTest, TableRendersEveryRow) {
  const std::string table = FabricTableToString();
  for (const auto& spec : CommodityFabrics()) {
    EXPECT_NE(table.find(spec.interconnect), std::string::npos);
  }
}

// ------------------------------ Memnode ----------------------------------

TEST(MemnodeTest, NamesAndDescriptions) {
  EXPECT_STREQ(MemoryNodeTypeName(MemoryNodeType::kCpuLessNuma), "CPU-less-NUMA");
  EXPECT_STREQ(MemoryNodeTypeName(MemoryNodeType::kComa), "COMA");
  MemoryNodeCaps caps;
  caps.type = MemoryNodeType::kCcNuma;
  caps.capacity_bytes = 64ULL << 20;
  caps.hardware_coherent = true;
  const std::string s = CapsToString(caps);
  EXPECT_NE(s.find("CC-NUMA"), std::string::npos);
  EXPECT_NE(s.find("64MiB"), std::string::npos);
  EXPECT_NE(s.find("hw"), std::string::npos);
}

// ------------------------------ Logging ----------------------------------

TEST(LoggingTest, ThresholdSuppressesLowerLevels) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash (output is stderr; suppression is by level).
  UF_LOG(kDebug, FromNs(5), "test") << "suppressed " << 42;
  UF_LOG(kError, FromNs(5), "test") << "emitted";
  SetLogLevel(LogLevel::kWarn);
}

}  // namespace
}  // namespace unifab
