// Coherent shared-memory window (CXL.cache-style) tests: the bounded
// snoop-filter directory, back-invalidation, partial-failure semantics,
// CohPtr, and node replication over the CoherentPort substrate.

#include "src/mem/coherent.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/cohptr.h"
#include "src/core/replicated.h"
#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/topo/presets.h"

namespace unifab {

// Test-only corruption/introspection hook (same pattern as
// fabric_switch_mem_test.cc): seeds deliberate violations of the new audit
// checks and puts the state back afterwards.
class AuditTestPeer {
 public:
  static CoherentDirStats& DirStats(CoherentDirectory& d) { return d.stats_; }
  static void InsertDummyBlock(CoherentDirectory& d, std::uint64_t block) { d.blocks_[block]; }
  static void EraseBlock(CoherentDirectory& d, std::uint64_t block) { d.blocks_.erase(block); }
};

namespace {

bool AnyPathEndsWith(const std::vector<InvariantViolation>& violations,
                     const std::string& suffix) {
  for (const auto& v : violations) {
    if (v.path.size() >= suffix.size() &&
        v.path.compare(v.path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

// Three hosts + a coherent window on one FAM expander behind one switch.
struct Rig {
  explicit Rig(CoherentConfig cfg = CoherentConfig{}) : fabric(&engine, 41) {
    auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "fam");
    expander = std::make_unique<MemoryExpander>(&engine, dram.get(), "exp");
    const std::uint64_t win_base = expander->CreateCoherentWindow(kWindowBytes);
    AdapterConfig fea_cfg = OmegaEndpointAdapter();
    fea_cfg.request_proc_latency = FromNs(50);
    auto* fea = fabric.AddEndpointAdapter(fea_cfg, "fea", expander.get());
    fabric.Connect(sw, fea, OmegaLink());
    fea_dispatch = std::make_unique<MessageDispatcher>(fea);
    dir = std::make_unique<CoherentDirectory>(&engine, cfg, fea_dispatch.get(), expander.get(),
                                              "dir");
    window = std::make_unique<CoherentWindow>(dir.get(), win_base, kWindowBytes);
    for (int i = 0; i < 3; ++i) {
      AdapterConfig fha = OmegaHostAdapter();
      fha.request_proc_latency = FromNs(50);
      fha.response_proc_latency = FromNs(50);
      auto* adapter = fabric.AddHostAdapter(fha, "h" + std::to_string(i));
      host_link[i] = fabric.Connect(sw, adapter, OmegaLink());
      dispatch[i] = std::make_unique<MessageDispatcher>(adapter);
      port[i] = std::make_unique<CoherentPort>(&engine, cfg, dispatch[i].get(), dir.get(),
                                               "p" + std::to_string(i));
    }
    fabric.ConfigureRouting();
  }

  static constexpr std::uint64_t kWindowBytes = 1ULL << 16;

  Engine engine;
  FabricInterconnect fabric;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<MemoryExpander> expander;
  std::unique_ptr<MessageDispatcher> fea_dispatch;
  std::unique_ptr<CoherentDirectory> dir;
  std::unique_ptr<CoherentWindow> window;
  Link* host_link[3] = {nullptr, nullptr, nullptr};
  std::unique_ptr<MessageDispatcher> dispatch[3];
  std::unique_ptr<CoherentPort> port[3];
};

// ------------------------- basic MSI protocol -----------------------------

TEST(CoherentWindowTest, ReadMissThenHit) {
  Rig rig;
  const std::uint64_t addr = rig.window->Allocate(64);
  bool ok1 = false;
  rig.port[0]->Read(addr, [&](bool ok) { ok1 = ok; });
  rig.engine.Run();
  EXPECT_TRUE(ok1);
  EXPECT_EQ(rig.port[0]->stats().read_misses, 1u);
  EXPECT_EQ(rig.dir->StateOf(addr), CoherentDirectory::BlockState::kShared);
  EXPECT_EQ(rig.dir->SharerCount(addr), 1u);

  bool ok2 = false;
  rig.port[0]->Read(addr, [&](bool ok) { ok2 = ok; });
  rig.engine.Run();
  EXPECT_TRUE(ok2);
  EXPECT_EQ(rig.port[0]->stats().read_hits, 1u);
  EXPECT_GT(rig.expander->stats().window_reads, 0u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, WriteInvalidatesAllSharers) {
  Rig rig;
  const std::uint64_t addr = rig.window->Allocate(64);
  for (int i = 0; i < 2; ++i) {
    rig.port[i]->Read(addr, std::function<void(bool)>());
    rig.engine.Run();
  }
  EXPECT_EQ(rig.dir->SharerCount(addr), 2u);

  bool wrote = false;
  rig.port[2]->Write(addr, [&](bool ok) { wrote = ok; });
  rig.engine.Run();
  EXPECT_TRUE(wrote);
  EXPECT_EQ(rig.dir->StateOf(addr), CoherentDirectory::BlockState::kModified);
  EXPECT_EQ(rig.dir->OwnerOf(addr), 2);
  EXPECT_FALSE(rig.port[0]->HoldsBlock(addr));
  EXPECT_FALSE(rig.port[1]->HoldsBlock(addr));
  EXPECT_EQ(rig.port[0]->stats().invalidations_received, 1u);
  EXPECT_EQ(rig.dir->stats().invalidations, 2u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, ReadOfModifiedRecallsAndDowngradesOwner) {
  Rig rig;
  const std::uint64_t addr = rig.window->Allocate(64);
  rig.port[0]->Write(addr, std::function<void(bool)>());
  rig.engine.Run();
  EXPECT_EQ(rig.dir->OwnerOf(addr), 0);

  bool read_ok = false;
  rig.port[1]->Read(addr, [&](bool ok) { read_ok = ok; });
  rig.engine.Run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(rig.dir->stats().recalls, 1u);
  EXPECT_EQ(rig.port[0]->stats().recalls_received, 1u);
  EXPECT_EQ(rig.dir->StateOf(addr), CoherentDirectory::BlockState::kShared);
  // The downgraded owner keeps an S copy alongside the new reader.
  EXPECT_EQ(rig.dir->SharerCount(addr), 2u);
  EXPECT_TRUE(rig.port[0]->HoldsBlock(addr));
  EXPECT_FALSE(rig.port[0]->HoldsModified(addr));
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

// ----------------------- bounded snoop filter -----------------------------

TEST(CoherentWindowTest, SharerOverflowRecallsOldestSharer) {
  CoherentConfig cfg;
  cfg.max_sharers = 2;
  Rig rig(cfg);
  const std::uint64_t addr = rig.window->Allocate(64);
  int oks = 0;
  for (int i = 0; i < 3; ++i) {
    rig.port[i]->Read(addr, [&](bool ok) { oks += ok ? 1 : 0; });
    rig.engine.Run();
  }
  EXPECT_EQ(oks, 3);
  EXPECT_EQ(rig.dir->stats().sharer_recalls, 1u);
  EXPECT_EQ(rig.dir->stats().back_invals_sent, 1u);
  EXPECT_EQ(rig.dir->stats().back_inval_acks, 1u);
  EXPECT_LE(rig.dir->SharerCount(addr), 2u);
  // Port 0 was the oldest sharer: its copy was back-invalidated to make room.
  EXPECT_FALSE(rig.port[0]->HoldsBlock(addr));
  EXPECT_EQ(rig.port[0]->stats().back_invals_received, 1u);
  EXPECT_TRUE(rig.port[2]->HoldsBlock(addr));
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, FullFilterBackInvalidatesLruEntry) {
  CoherentConfig cfg;
  cfg.max_tracked_blocks = 2;
  Rig rig(cfg);
  const std::uint64_t a = rig.window->Allocate(64);
  const std::uint64_t b = rig.window->Allocate(64);
  const std::uint64_t c = rig.window->Allocate(64);
  int oks = 0;
  auto count = [&](bool ok) { oks += ok ? 1 : 0; };
  rig.port[0]->Read(a, std::function<void(bool)>(count));
  rig.engine.Run();
  rig.port[0]->Read(b, std::function<void(bool)>(count));
  rig.engine.Run();
  // Third distinct block: the filter is full, so the LRU entry (a) must be
  // back-invalidated before c is admitted.
  rig.port[0]->Read(c, std::function<void(bool)>(count));
  rig.engine.Run();

  EXPECT_EQ(oks, 3);
  EXPECT_GE(rig.dir->stats().filter_evictions, 1u);
  EXPECT_EQ(rig.dir->stats().filter_parked, 1u);
  EXPECT_LE(rig.dir->TrackedBlocks(), 2u);
  EXPECT_FALSE(rig.port[0]->HoldsBlock(a));  // victim of the back-invalidation
  EXPECT_TRUE(rig.port[0]->HoldsBlock(c));
  EXPECT_EQ(rig.dir->ParkedRequests(), 0u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, FilterStaysBoundedUnderManyBlocks) {
  CoherentConfig cfg;
  cfg.max_tracked_blocks = 4;
  Rig rig(cfg);
  int oks = 0;
  for (int round = 0; round < 3; ++round) {
    for (int blk = 0; blk < 8; ++blk) {
      rig.port[blk % 3]->Read(static_cast<std::uint64_t>(blk) * 64,
                              std::function<void(bool)>([&](bool ok) { oks += ok ? 1 : 0; }));
      rig.engine.Run();
      EXPECT_LE(rig.dir->TrackedBlocks(), 4u);
    }
  }
  EXPECT_EQ(oks, 3 * 8);
  EXPECT_GT(rig.dir->stats().filter_evictions, 0u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

// ------------------------- failure semantics ------------------------------

TEST(CoherentWindowTest, DirectoryDeadlineNacksRequesterTerminally) {
  CoherentConfig cfg;
  cfg.ack_deadline = FromUs(5.0);
  Rig rig(cfg);
  const std::uint64_t addr = rig.window->Allocate(64);
  rig.port[0]->Write(addr, std::function<void(bool)>());
  rig.engine.Run();
  EXPECT_TRUE(rig.port[0]->HoldsModified(addr));

  // Owner's link dies; a later writer's recall can never be answered.
  rig.host_link[0]->Fail();
  bool done = false;
  bool ok = true;
  rig.port[1]->Write(addr, [&](bool k) {
    done = true;
    ok = k;
  });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(rig.dir->stats().txn_aborts, 1u);
  EXPECT_EQ(rig.dir->stats().nacks_sent, 1u);
  EXPECT_EQ(rig.port[1]->stats().nacks_received, 1u);
  EXPECT_EQ(rig.port[1]->stats().txn_failures, 1u);
  // The directory still tracks the unreachable owner: it never granted the
  // block, so no stale Modified copy can be exposed to a later reader.
  EXPECT_EQ(rig.dir->OwnerOf(addr), 0);
  EXPECT_FALSE(rig.port[1]->HoldsBlock(addr));
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, PortDeadlineFailsWaitersWhenFabricIsDead) {
  CoherentConfig cfg;
  cfg.txn_deadline = FromUs(5.0);
  cfg.ack_deadline = 0;  // isolate the port-side watchdog
  Rig rig(cfg);
  rig.host_link[0]->Fail();
  bool done = false;
  bool ok = true;
  rig.port[0]->Read(rig.window->Allocate(64), [&](bool k) {
    done = true;
    ok = k;
  });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(rig.port[0]->stats().txn_timeouts, 1u);
  EXPECT_EQ(rig.port[0]->stats().txn_failures, 1u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, SpoofedInvAckIsCountedStaleAndIgnored) {
  Rig rig;
  const std::uint64_t addr = rig.window->Allocate(64);
  rig.port[0]->Read(addr, std::function<void(bool)>());
  rig.engine.Run();

  // A rogue ack from a port the directory is not waiting on must not corrupt
  // the sharer bookkeeping (the CC-NUMA bug class this layer hardens against).
  auto spoof = std::make_shared<CohMsg>();
  spoof->op = CohOp::kInvAck;
  spoof->block = addr;
  spoof->requester = 2;
  rig.dispatch[2]->Send(rig.dir->fabric_id(), kSvcCoherent,
                        static_cast<std::uint64_t>(CohOp::kInvAck), 16, spoof, Channel::kCache);
  rig.engine.Run();
  EXPECT_EQ(rig.dir->stats().stale_acks, 1u);
  EXPECT_EQ(rig.dir->SharerCount(addr), 1u);
  EXPECT_EQ(rig.dir->StateOf(addr), CoherentDirectory::BlockState::kShared);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

// --------------------------- audit seeding --------------------------------

TEST(CoherentWindowTest, AuditCatchesSeededBackInvalAckLeak) {
  Rig rig;
  rig.port[0]->Read(rig.window->Allocate(64), std::function<void(bool)>());
  rig.engine.Run();
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  CoherentDirStats& stats = AuditTestPeer::DirStats(*rig.dir);
  ++stats.back_invals_sent;  // a BI that can never be acked or written off
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(),
                              "mem/coherent/back_inval_acks_conserved"));
  --stats.back_invals_sent;
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CoherentWindowTest, AuditCatchesSeededFilterOverflow) {
  CoherentConfig cfg;
  cfg.max_tracked_blocks = 2;
  Rig rig(cfg);
  rig.port[0]->Read(rig.window->Allocate(64), std::function<void(bool)>());
  rig.port[0]->Read(rig.window->Allocate(64), std::function<void(bool)>());
  rig.engine.Run();
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  AuditTestPeer::InsertDummyBlock(*rig.dir, 0xdead000);
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(), "mem/coherent/filter_bounded"));
  AuditTestPeer::EraseBlock(*rig.dir, 0xdead000);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

// ------------------------------ CohPtr ------------------------------------

struct Wide {
  std::int64_t value = 0;
  std::uint8_t pad[120] = {};
};

TEST(CohPtrTest, WriteOnOneHostReadOnAnother) {
  Rig rig;
  auto p = CohPtr<Wide>::Make(rig.window.get());
  EXPECT_EQ(p.blocks(), 2u);

  Wide w;
  w.value = 7;
  bool wrote = false;
  p.Write(rig.port[0].get(), w, [&](bool ok) { wrote = ok; });
  rig.engine.Run();
  EXPECT_TRUE(wrote);

  std::int64_t got = -1;
  bool read_ok = false;
  p.Read(rig.port[1].get(), [&](const Wide& v, bool ok) {
    got = v.value;
    read_ok = ok;
  });
  rig.engine.Run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(got, 7);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CohPtrTest, PartialStoreAcquiresOnlyCoveredBlocks) {
  Rig rig;
  auto p = CohPtr<Wide>::Make(rig.window.get());
  // Warm both blocks Shared at port 1.
  bool warm = false;
  p.Read(rig.port[1].get(), [&](const Wide&, bool) { warm = true; });
  rig.engine.Run();
  ASSERT_TRUE(warm);

  // An 8-byte store at offset 0 covers only the first coherence block.
  const std::int64_t v = 42;
  bool stored = false;
  p.Store(rig.port[1].get(), 0, sizeof(v), &v, [&](bool ok) { stored = ok; });
  rig.engine.Run();
  EXPECT_TRUE(stored);
  EXPECT_TRUE(rig.port[1]->HoldsModified(p.addr()));
  EXPECT_FALSE(rig.port[1]->HoldsModified(p.addr() + 64));
  EXPECT_EQ(rig.dir->StateOf(p.addr()), CoherentDirectory::BlockState::kModified);
  EXPECT_EQ(rig.dir->StateOf(p.addr() + 64), CoherentDirectory::BlockState::kShared);
  EXPECT_EQ(p.Peek().value, 42);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CohPtrTest, UpdatesFromAllHostsSerializeThroughDirectory) {
  Rig rig;
  auto p = CohPtr<Wide>::Make(rig.window.get());
  int completions = 0;
  for (int round = 0; round < 4; ++round) {
    for (int h = 0; h < 3; ++h) {
      p.Update(rig.port[h].get(), [](Wide& w) { ++w.value; },
               [&](bool ok) { completions += ok ? 1 : 0; });
      rig.engine.Run();
    }
  }
  EXPECT_EQ(completions, 12);
  EXPECT_EQ(p.Peek().value, 12);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(CohPtrTest, FailedWriteIsNeverObservable) {
  CoherentConfig cfg;
  cfg.txn_deadline = FromUs(5.0);
  cfg.ack_deadline = 0;
  Rig rig(cfg);
  auto p = CohPtr<Wide>::Make(rig.window.get());
  Wide init;
  init.value = 5;
  p.Poke(init);

  rig.host_link[2]->Fail();
  Wide w;
  w.value = 999;
  bool done = false;
  bool ok = true;
  p.Write(rig.port[2].get(), w, [&](bool k) {
    done = true;
    ok = k;
  });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  // The shadow still holds the last committed value: the failed write never
  // became visible.
  EXPECT_EQ(p.Peek().value, 5);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

// ------------------- node replication over CoherentPort -------------------

struct Counter {
  std::int64_t value = 0;
};
struct AddOp {
  std::int64_t delta;
};

TEST(CoherentReplicatedTest, NodeReplicatedConvergesOverCoherentPorts) {
  Rig rig;
  const std::uint64_t log_base = rig.window->Allocate(64 * 64);
  NodeReplicated<Counter, AddOp, CoherentPort> nr(
      &rig.engine, log_base, 63, [](Counter& c, const AddOp& op) { c.value += op.delta; });
  int reps[3];
  for (int i = 0; i < 3; ++i) {
    reps[i] = nr.AddReplica(rig.port[static_cast<std::size_t>(i)].get());
  }
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      nr.Execute(reps[i], AddOp{i + 1});
    }
  }
  rig.engine.Run();
  for (int i = 0; i < 3; ++i) {
    std::int64_t got = -1;
    nr.Read(reps[i], [&](const Counter& c) { got = c.value; });
    rig.engine.Run();
    EXPECT_EQ(got, 4 * (1 + 2 + 3)) << "replica " << i;
  }
  EXPECT_EQ(nr.LogSize(), 12u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
