// Switch unit tests: routing, arbitration policies, head-of-line blocking,
// and the credit-allocation ramp-up.

#include "src/fabric/switch.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fabric/interconnect.h"
#include "src/sim/engine.h"

namespace unifab {
namespace {

// Adapter-like endpoint that sends raw flits and counts arrivals.
class TestNode : public FlitReceiver {
 public:
  explicit TestNode(Engine* engine, Tick credit_hold = 0)
      : engine_(engine), credit_hold_(credit_hold) {}

  void ReceiveFlit(const Flit& flit, int /*port*/) override {
    received.push_back({flit, engine_->Now()});
    if (credit_hold_ == 0) {
      endpoint->ReturnCredit(flit.channel);
    } else {
      engine_->Schedule(credit_hold_,
                        [this, ch = flit.channel] { endpoint->ReturnCredit(ch); });
    }
  }

  bool Send(PbrId dst, Channel ch = Channel::kMem, std::uint32_t payload = 64) {
    Flit f;
    f.txn_id = ++txn_;
    f.channel = ch;
    f.opcode = Opcode::kMemWr;
    f.src = self;
    f.dst = dst;
    f.payload_bytes = payload;
    f.created_at = engine_->Now();
    return endpoint->Send(f);
  }

  struct Arrival {
    Flit flit;
    Tick at;
  };

  PbrId self = 0;
  LinkEndpoint* endpoint = nullptr;
  std::vector<Arrival> received;

 private:
  Engine* engine_;
  Tick credit_hold_ = 0;
  std::uint64_t txn_ = 0;
};

// A star topology: N test nodes around one switch, built by hand so we can
// drive raw flits. `slow_node` (if >= 0) returns its input credits only
// after `slow_hold`, creating congestion on its output port.
struct Star {
  Star(int n, SwitchConfig sw_cfg, LinkConfig link_cfg = {}, int slow_node = -1,
       Tick slow_hold = 0, LinkConfig slow_link_cfg = {}) {
    sw = std::make_unique<FabricSwitch>(&engine, sw_cfg, "sw");
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<TestNode>(&engine, i == slow_node ? slow_hold : 0));
      links.push_back(std::make_unique<Link>(&engine,
                                             i == slow_node ? slow_link_cfg : link_cfg,
                                             100 + static_cast<std::uint64_t>(i),
                                             "l" + std::to_string(i)));
      Link* link = links.back().get();
      const int port = sw->AttachPort(&link->end(0));
      TestNode* node = nodes.back().get();
      link->end(1).Bind(node, 0);
      node->endpoint = &link->end(1);
      node->self = static_cast<PbrId>(i + 1);
      sw->SetRoute(node->self, port);
    }
  }

  Engine engine;
  std::unique_ptr<FabricSwitch> sw;
  std::vector<std::unique_ptr<TestNode>> nodes;
  std::vector<std::unique_ptr<Link>> links;
};

TEST(SwitchTest, RoutesFlitToCorrectPort) {
  Star star(3, SwitchConfig{});
  star.nodes[0]->Send(star.nodes[2]->self);
  star.engine.Run();
  EXPECT_EQ(star.nodes[2]->received.size(), 1u);
  EXPECT_TRUE(star.nodes[1]->received.empty());
  EXPECT_EQ(star.sw->stats().flits_forwarded, 1u);
}

TEST(SwitchTest, PortLatencyAppearsInDelivery) {
  SwitchConfig cfg;
  cfg.port_latency = FromNs(90);
  LinkConfig link;
  link.propagation = FromNs(10);
  Star star(2, cfg, link);
  star.nodes[0]->Send(star.nodes[1]->self);
  star.engine.Run();
  ASSERT_EQ(star.nodes[1]->received.size(), 1u);
  // 2 link traversals (serialize ~1.06 + 10 prop each) + 90 switch.
  EXPECT_NEAR(ToNs(star.nodes[1]->received[0].at), 90.0 + 2 * 11.06, 1.0);
}

TEST(SwitchTest, UnroutableFlitIsDroppedWithoutWedging) {
  Star star(2, SwitchConfig{});
  star.nodes[0]->Send(/*dst=*/0x0FFF);
  star.nodes[0]->Send(star.nodes[1]->self);
  star.engine.Run();
  // The bogus flit vanished; the good one still arrived.
  EXPECT_EQ(star.nodes[1]->received.size(), 1u);
}

TEST(SwitchTest, DefaultRouteCatchesForeignDomains) {
  Star star(2, SwitchConfig{});
  star.sw->SetDefaultRoute(star.sw->RouteFor(star.nodes[1]->self));
  star.nodes[0]->Send(MakePbrId(7, 5));  // unknown destination, foreign domain
  star.engine.Run();
  EXPECT_EQ(star.nodes[1]->received.size(), 1u);
}

TEST(SwitchTest, ManyToOneContentionDeliversEverything) {
  Star star(5, SwitchConfig{});
  const PbrId sink = star.nodes[4]->self;
  for (int src = 0; src < 4; ++src) {
    for (int i = 0; i < 20; ++i) {
      star.nodes[static_cast<std::size_t>(src)]->Send(sink);
    }
  }
  star.engine.Run();
  EXPECT_EQ(star.nodes[4]->received.size(), 80u);
}

TEST(SwitchTest, RoundRobinSharesOutputFairly) {
  SwitchConfig cfg;
  cfg.arbitration = SwitchArbitration::kRoundRobin;
  Star star(3, cfg);
  const PbrId sink = star.nodes[2]->self;
  for (int i = 0; i < 50; ++i) {
    star.nodes[0]->Send(sink);
    star.nodes[1]->Send(sink);
  }
  star.engine.Run();
  ASSERT_EQ(star.nodes[2]->received.size(), 100u);
  // Interleaving: in any window of 10 arrivals both sources appear.
  for (std::size_t w = 0; w + 10 <= 100; w += 10) {
    int from0 = 0;
    for (std::size_t i = w; i < w + 10; ++i) {
      if (star.nodes[2]->received[i].flit.src == star.nodes[0]->self) {
        ++from0;
      }
    }
    EXPECT_GT(from0, 0);
    EXPECT_LT(from0, 10);
  }
}

TEST(SwitchTest, FifoBreaksSameTickTiesByFlitIdentity) {
  // Two flits that arrive at the switch on the same tick are a genuine tie
  // for kFifo. The tie-break is the flit identity (src, txn, seq) — not the
  // global enqueue counter, which tracks event-processing order and would
  // let the issue order inside a tick (here: node 1 before node 0) decide.
  auto run = [] {
    SwitchConfig cfg;
    cfg.arbitration = SwitchArbitration::kFifo;
    Star star(3, cfg);
    const PbrId sink = star.nodes[2]->self;
    for (int i = 0; i < 8; ++i) {
      // Well-separated rounds; within each, the higher-id source sends
      // first so enqueue order and identity order disagree.
      star.engine.Schedule(FromUs(1) * static_cast<Tick>(i), [&star, sink] {
        star.nodes[1]->Send(sink);
        star.nodes[0]->Send(sink);
      });
    }
    star.engine.Run();
    std::vector<PbrId> srcs;
    for (const auto& a : star.nodes[2]->received) {
      srcs.push_back(a.flit.src);
    }
    return srcs;
  };

  const std::vector<PbrId> srcs = run();
  ASSERT_EQ(srcs.size(), 16u);
  for (std::size_t i = 0; i < srcs.size(); i += 2) {
    EXPECT_EQ(srcs[i], 1u) << "round " << i / 2;      // node 0 wins the tie
    EXPECT_EQ(srcs[i + 1], 2u) << "round " << i / 2;
  }
  EXPECT_EQ(run(), srcs);  // and the order is reproducible
}

TEST(SwitchTest, PrioritySchedulingFavorsMarkedSource) {
  SwitchConfig cfg;
  cfg.arbitration = SwitchArbitration::kPriority;
  Star star(3, cfg);
  star.sw->SetSourcePriority(star.nodes[1]->self, 10);

  const PbrId sink = star.nodes[2]->self;
  // Node 0 floods first, node 1 sends a burst afterwards.
  for (int i = 0; i < 50; ++i) {
    star.nodes[0]->Send(sink);
  }
  for (int i = 0; i < 10; ++i) {
    star.nodes[1]->Send(sink);
  }
  star.engine.Run();
  ASSERT_EQ(star.nodes[2]->received.size(), 60u);
  // All of node 1's flits beat the tail of node 0's flood.
  std::size_t last_priority_pos = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    if (star.nodes[2]->received[i].flit.src == star.nodes[1]->self) {
      last_priority_pos = i;
    }
  }
  EXPECT_LT(last_priority_pos, 40u);
}

// Shared setup for the HoL experiments: node 2 is a slow sink (holds input
// credits for 5 us), node 3 is idle. Node 1 floods node 2; node 0 sends a
// mix toward both. Returns arrivals at node 3 at a fixed horizon plus the
// HoL counter.
struct HolResult {
  std::size_t idle_sink_arrivals;
  std::uint64_t hol_events;
};

HolResult RunHolExperiment(bool virtual_output_queues) {
  SwitchConfig cfg;
  cfg.virtual_output_queues = virtual_output_queues;
  LinkConfig link;  // senders: default deep buffers
  LinkConfig slow_link;
  slow_link.credits_per_vc = 2;  // the congested egress: shallow buffers
  slow_link.tx_queue_depth = 2;
  Star star(4, cfg, link, /*slow_node=*/2, /*slow_hold=*/FromUs(5), slow_link);

  for (int i = 0; i < 30; ++i) {
    star.engine.Schedule(FromNs(10) * static_cast<Tick>(i), [&star] {
      star.nodes[1]->Send(star.nodes[2]->self);
    });
  }
  for (int i = 0; i < 10; ++i) {
    star.engine.Schedule(FromNs(30) * static_cast<Tick>(i), [&star] {
      star.nodes[0]->Send(star.nodes[2]->self);
      star.nodes[0]->Send(star.nodes[3]->self);
    });
  }
  star.engine.RunUntil(FromUs(20));
  return HolResult{star.nodes[3]->received.size(), star.sw->stats().hol_blocked_events};
}

TEST(SwitchTest, HolBlockingCountedWithSingleFifoInputs) {
  const HolResult r = RunHolExperiment(/*virtual_output_queues=*/false);
  EXPECT_GT(r.hol_events, 0u);
}

TEST(SwitchTest, VirtualOutputQueuesAvoidHolBlocking) {
  const HolResult fifo = RunHolExperiment(false);
  const HolResult voq = RunHolExperiment(true);
  EXPECT_EQ(voq.hol_events, 0u);
  // VOQ lets the idle-sink traffic through while FIFO pins it behind the
  // congested head.
  EXPECT_GE(voq.idle_sink_arrivals, fifo.idle_sink_arrivals);
  EXPECT_EQ(voq.idle_sink_arrivals, 10u);
}

TEST(SwitchTest, ExponentialRampUpGrowsHeavyInputWeight) {
  SwitchConfig cfg;
  cfg.credit_alloc = CreditAllocPolicy::kExponentialRampUp;
  cfg.credit_realloc_period = FromNs(100);
  cfg.arbitration = SwitchArbitration::kWeighted;
  Star star(3, cfg);

  // Node 0 sends steadily over 2 us; node 1 idles.
  const PbrId sink = star.nodes[2]->self;
  for (int i = 0; i < 200; ++i) {
    star.engine.Schedule(FromNs(10) * static_cast<Tick>(i), [&star, sink] {
      star.nodes[0]->Send(sink);
    });
  }
  star.engine.Run();
  const int port0 = star.sw->RouteFor(star.nodes[0]->self);
  const int port1 = star.sw->RouteFor(star.nodes[1]->self);
  EXPECT_GT(star.sw->InputWeight(port0), star.sw->InputWeight(port1));
}

TEST(InterconnectTest, RoutingReachesEveryAdapterPair) {
  Engine engine;
  FabricInterconnect fabric(&engine, 1);
  auto* sw0 = fabric.AddSwitch(SwitchConfig{}, "sw0");
  auto* sw1 = fabric.AddSwitch(SwitchConfig{}, "sw1");
  fabric.Connect(sw0, sw1, LinkConfig{});

  auto* h0 = fabric.AddHostAdapter(AdapterConfig{}, "h0");
  auto* h1 = fabric.AddHostAdapter(AdapterConfig{}, "h1");
  fabric.Connect(sw0, h0, LinkConfig{});
  fabric.Connect(sw1, h1, LinkConfig{});
  fabric.ConfigureRouting();

  EXPECT_EQ(fabric.HopCount(h0->id(), h1->id()), 3);  // h0-sw0-sw1-h1

  // h0 -> h1 crosses both switches.
  bool delivered = false;
  h1->SetMessageHandler([&](const FabricMessage&) { delivered = true; });
  h0->SendMessage(h1->id(), Channel::kMem, Opcode::kMsg, 1, 64, nullptr);
  engine.Run();
  EXPECT_TRUE(delivered);
}

TEST(InterconnectTest, MultiDomainGetsHbrLinksAndDefaultRoutes) {
  Engine engine;
  FabricInterconnect fabric(&engine, 1);
  auto* sw0 = fabric.AddSwitch(SwitchConfig{}, "sw0", /*domain=*/0);
  auto* sw1 = fabric.AddSwitch(SwitchConfig{}, "sw1", /*domain=*/1);
  fabric.Connect(sw0, sw1, LinkConfig{});
  auto* h0 = fabric.AddHostAdapter(AdapterConfig{}, "h0", 0);
  auto* h1 = fabric.AddHostAdapter(AdapterConfig{}, "h1", 1);
  fabric.Connect(sw0, h0, LinkConfig{});
  fabric.Connect(sw1, h1, LinkConfig{});
  fabric.ConfigureRouting();

  EXPECT_EQ(fabric.num_hbr_links(), 1u);
  EXPECT_EQ(DomainOf(h1->id()), 1);

  bool delivered = false;
  h1->SetMessageHandler([&](const FabricMessage&) { delivered = true; });
  h0->SendMessage(h1->id(), Channel::kMem, Opcode::kMsg, 1, 64, nullptr);
  engine.Run();
  EXPECT_TRUE(delivered);
}

TEST(InterconnectTest, DirectAttachWorksWithoutSwitch) {
  Engine engine;
  FabricInterconnect fabric(&engine, 1);
  auto* h0 = fabric.AddHostAdapter(AdapterConfig{}, "h0");
  auto* h1 = fabric.AddHostAdapter(AdapterConfig{}, "h1");
  fabric.ConnectDirect(h0, h1, LinkConfig{});
  fabric.ConfigureRouting();

  bool delivered = false;
  h1->SetMessageHandler([&](const FabricMessage&) { delivered = true; });
  h0->SendMessage(h1->id(), Channel::kMem, Opcode::kMsg, 1, 64, nullptr);
  engine.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(fabric.HopCount(h0->id(), h1->id()), 1);
}

}  // namespace
}  // namespace unifab
