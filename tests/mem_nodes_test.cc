// Tests for the four fabric memory-node types (paper §3 Difference #2):
// CPU-less NUMA expander, CC-NUMA directory coherence, non-CC NUMA software
// coherence, and COMA attraction memory.

#include <gtest/gtest.h>

#include <memory>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/ccnuma.h"
#include "src/mem/coma.h"
#include "src/mem/dram.h"
#include "src/mem/expander.h"
#include "src/mem/noncc.h"
#include "src/topo/presets.h"

namespace unifab {

// Test-only hook (same pattern as fabric_switch_mem_test.cc): reaches into a
// port's block cache to model a silent eviction and to seed a deliberate
// violation of the mem/ccnuma/sharers_conserved audit check.
class AuditTestPeer {
 public:
  static SetAssocCache& PortCache(CcNumaPort& p) { return p.cache_; }
};

namespace {

bool AnyPathEndsWith(const std::vector<InvariantViolation>& violations,
                     const std::string& suffix) {
  for (const auto& v : violations) {
    if (v.path.size() >= suffix.size() &&
        v.path.compare(v.path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

// ------------------------- MemoryExpander --------------------------------

class ExpanderTest : public ::testing::Test {
 protected:
  ExpanderTest()
      : dram_(&engine_, DramConfig{1ULL << 30, 16, FromNs(60), 25.6, 64}, "d"),
        exp_(&engine_, &dram_, "exp") {}

  Engine engine_;
  DramDevice dram_;
  MemoryExpander exp_;
};

TEST_F(ExpanderTest, PartitionsAllocateSequentially) {
  const std::uint64_t a = exp_.CreatePartition(1, 1 << 20);
  const std::uint64_t b = exp_.CreatePartition(2, 1 << 20);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u << 20);
  EXPECT_EQ(exp_.BytesAllocated(), 2u << 20);
}

TEST_F(ExpanderTest, OwnPartitionAccessIsClean) {
  exp_.CreatePartition(1, 1 << 20);
  exp_.SetCurrentRequester(1);
  bool done = false;
  exp_.HandleRead(0, 64, [&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(exp_.stats().partition_faults, 0u);
}

TEST_F(ExpanderTest, ForeignPartitionAccessCountsFault) {
  exp_.CreatePartition(1, 1 << 20);
  exp_.SetCurrentRequester(2);
  exp_.HandleWrite(0, 64, nullptr);
  engine_.Run();
  EXPECT_EQ(exp_.stats().partition_faults, 1u);
}

TEST_F(ExpanderTest, SharedRegionSerializesSameLineAccess) {
  const std::uint64_t base = exp_.CreateSharedRegion(1 << 20);
  Tick first = 0;
  Tick second = 0;
  exp_.HandleWrite(base, 64, [&] { first = engine_.Now(); });
  exp_.HandleWrite(base, 64, [&] { second = engine_.Now(); });
  engine_.Run();
  EXPECT_GT(second, first);
  EXPECT_EQ(exp_.stats().serialized_conflicts, 1u);
}

TEST_F(ExpanderTest, SharedRegionDifferentLinesProceedInParallel) {
  const std::uint64_t base = exp_.CreateSharedRegion(1 << 20);
  exp_.HandleWrite(base, 64, nullptr);
  exp_.HandleWrite(base + 128, 64, nullptr);
  engine_.Run();
  EXPECT_EQ(exp_.stats().serialized_conflicts, 0u);
}

TEST_F(ExpanderTest, CapsDescribeCpuLessNuma) {
  const MemoryNodeCaps caps = exp_.Caps(42);
  EXPECT_EQ(caps.type, MemoryNodeType::kCpuLessNuma);
  EXPECT_FALSE(caps.has_processing);
  EXPECT_TRUE(caps.supports_sharing);
}

// --------------------------- CC-NUMA -------------------------------------

// Two hosts + one FAM-side directory, all on a real switch fabric.
class CcNumaTest : public ::testing::Test {
 protected:
  CcNumaTest() : fabric_(&engine_, 5) {
    auto* sw = fabric_.AddSwitch(FabrexSwitch(), "sw");
    dram_ = std::make_unique<DramDevice>(&engine_, OmegaLocalDram(), "fam-dram");

    AdapterConfig fast_fea = OmegaEndpointAdapter();
    fast_fea.request_proc_latency = FromNs(50);
    fea_ = fabric_.AddEndpointAdapter(fast_fea, "fea", dram_.get());
    fabric_.Connect(sw, fea_, OmegaLink());
    fea_dispatch_ = std::make_unique<MessageDispatcher>(fea_);

    CcNumaConfig cfg;
    dir_ = std::make_unique<DirectoryController>(&engine_, cfg, fea_dispatch_.get(), dram_.get(),
                                                 "dir");
    for (int i = 0; i < 2; ++i) {
      AdapterConfig fha = OmegaHostAdapter();
      fha.request_proc_latency = FromNs(50);
      fha.response_proc_latency = FromNs(50);
      auto* adapter = fabric_.AddHostAdapter(fha, "h" + std::to_string(i));
      fabric_.Connect(sw, adapter, OmegaLink());
      host_dispatch_[i] = std::make_unique<MessageDispatcher>(adapter);
      port_[i] = std::make_unique<CcNumaPort>(&engine_, cfg, host_dispatch_[i].get(),
                                              dir_.get(), "port" + std::to_string(i));
    }
    fabric_.ConfigureRouting();
  }

  Engine engine_;
  FabricInterconnect fabric_;
  std::unique_ptr<DramDevice> dram_;
  EndpointAdapter* fea_ = nullptr;
  std::unique_ptr<MessageDispatcher> fea_dispatch_;
  std::unique_ptr<DirectoryController> dir_;
  std::unique_ptr<MessageDispatcher> host_dispatch_[2];
  std::unique_ptr<CcNumaPort> port_[2];
};

TEST_F(CcNumaTest, ReadMissFetchesAndShares) {
  bool done = false;
  port_[0]->Read(0x1000, [&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(port_[0]->HoldsBlock(0x1000));
  EXPECT_FALSE(port_[0]->HoldsModified(0x1000));
  EXPECT_EQ(dir_->StateOf(0x1000), DirectoryController::BlockState::kShared);
  EXPECT_EQ(dir_->SharerCount(0x1000), 1u);
}

TEST_F(CcNumaTest, SecondReaderJoinsSharerList) {
  port_[0]->Read(0x1000, nullptr);
  engine_.Run();
  port_[1]->Read(0x1000, nullptr);
  engine_.Run();
  EXPECT_EQ(dir_->SharerCount(0x1000), 2u);
}

TEST_F(CcNumaTest, WriteInvalidatesOtherSharers) {
  port_[0]->Read(0x1000, nullptr);
  port_[1]->Read(0x1000, nullptr);
  engine_.Run();
  ASSERT_EQ(dir_->SharerCount(0x1000), 2u);

  bool done = false;
  port_[1]->Write(0x1000, [&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dir_->StateOf(0x1000), DirectoryController::BlockState::kModified);
  EXPECT_FALSE(port_[0]->HoldsBlock(0x1000));
  EXPECT_TRUE(port_[1]->HoldsModified(0x1000));
  EXPECT_GE(port_[0]->stats().invalidations_received, 1u);
}

TEST_F(CcNumaTest, ReadAfterRemoteWriteRecallsOwner) {
  port_[0]->Write(0x2000, nullptr);
  engine_.Run();
  ASSERT_EQ(dir_->StateOf(0x2000), DirectoryController::BlockState::kModified);

  bool done = false;
  port_[1]->Read(0x2000, [&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  // Owner downgraded to sharer; both hold the block.
  EXPECT_EQ(dir_->StateOf(0x2000), DirectoryController::BlockState::kShared);
  EXPECT_EQ(dir_->SharerCount(0x2000), 2u);
  EXPECT_GE(port_[0]->stats().recalls_received, 1u);
  EXPECT_FALSE(port_[0]->HoldsModified(0x2000));
}

TEST_F(CcNumaTest, UpgradeFromSharedToModified) {
  port_[0]->Read(0x3000, nullptr);
  engine_.Run();
  port_[0]->Write(0x3000, nullptr);
  engine_.Run();
  EXPECT_EQ(dir_->StateOf(0x3000), DirectoryController::BlockState::kModified);
  EXPECT_GE(port_[0]->stats().upgrades, 1u);
}

TEST_F(CcNumaTest, WriteHitInModifiedIsLocal) {
  port_[0]->Write(0x4000, nullptr);
  engine_.Run();
  const auto misses_before = port_[0]->stats().miss_latency_ns.Count();
  bool done = false;
  port_[0]->Write(0x4000, [&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(port_[0]->stats().miss_latency_ns.Count(), misses_before);
  EXPECT_GE(port_[0]->stats().write_hits, 1u);
}

TEST_F(CcNumaTest, CoherenceMissesCostFabricRoundTrips) {
  port_[0]->Read(0x5000, nullptr);
  engine_.Run();
  // A protocol miss costs two message legs + DRAM: far above local hit cost.
  EXPECT_GT(port_[0]->stats().miss_latency_ns.Mean(), 400.0);
}

TEST_F(CcNumaTest, PingPongWritesAlternateOwnership) {
  for (int round = 0; round < 4; ++round) {
    port_[round % 2]->Write(0x6000, nullptr);
    engine_.Run();
  }
  EXPECT_GE(dir_->stats().recalls, 3u);
  EXPECT_EQ(dir_->StateOf(0x6000), DirectoryController::BlockState::kModified);
  EXPECT_TRUE(port_[1]->HoldsModified(0x6000));
}

// Regression: a clean eviction notice (PutS) that crosses an in-flight Inv
// must stand in for the ack. Before identity-tracked inv_waiting, the
// directory counted acks numerically, so the evicting port's unconditional
// later InvAck double-decremented and a concurrent writer could be granted
// while another sharer still held the line.
TEST_F(CcNumaTest, EvictionNoticeCrossingInvCompletesTheWrite) {
  port_[0]->Read(0x5000, nullptr);
  engine_.Run();
  ASSERT_EQ(dir_->StateOf(0x5000), DirectoryController::BlockState::kShared);

  bool wrote = false;
  port_[1]->Write(0x5000, [&] { wrote = true; });
  // Advance into the window where the directory has sent the Inv but port 0
  // has not yet received it.
  const Tick probe_limit = engine_.Now() + FromUs(5);
  while (dir_->stats().invalidations == 0) {
    ASSERT_LT(engine_.Now(), probe_limit) << "Inv never sent";
    engine_.RunUntil(engine_.Now() + FromNs(25));
  }
  ASSERT_EQ(port_[0]->stats().invalidations_received, 0u);

  // Port 0's cache silently drops the clean line (capacity eviction) and the
  // eviction notice races the Inv to the directory.
  AuditTestPeer::PortCache(*port_[0]).Invalidate(0x5000);
  auto puts = std::make_shared<CohMsg>();
  puts->op = CohOp::kPutS;
  puts->block = 0x5000;
  puts->requester = 0;
  host_dispatch_[0]->Send(dir_->fabric_id(), kSvcCcNuma,
                          static_cast<std::uint64_t>(CohOp::kPutS), 16, puts, Channel::kCache);
  engine_.Run();

  EXPECT_TRUE(wrote);
  EXPECT_EQ(dir_->stats().implicit_evict_acks, 1u);
  // Port 0 still answered the Inv when it eventually arrived; the directory
  // must discard that ack instead of mis-crediting it.
  EXPECT_EQ(port_[0]->stats().invalidations_received, 1u);
  EXPECT_EQ(dir_->stats().stale_acks, 1u);
  EXPECT_EQ(dir_->StateOf(0x5000), DirectoryController::BlockState::kModified);
  EXPECT_TRUE(port_[1]->HoldsModified(0x5000));
  EXPECT_TRUE(engine_.audit().Sweep().empty());
}

// Regression: an InvAck from a port the directory is not waiting on (spoofed
// here; previously reachable via the eviction race above) must not perturb
// sharer bookkeeping or unblock a transaction early.
TEST_F(CcNumaTest, InvAckFromNonWaiterIsCountedStaleAndIgnored) {
  port_[0]->Read(0x5000, nullptr);
  engine_.Run();
  ASSERT_EQ(dir_->SharerCount(0x5000), 1u);

  auto spoof = std::make_shared<CohMsg>();
  spoof->op = CohOp::kInvAck;
  spoof->block = 0x5000;
  spoof->requester = 1;
  host_dispatch_[1]->Send(dir_->fabric_id(), kSvcCcNuma,
                          static_cast<std::uint64_t>(CohOp::kInvAck), 16, spoof,
                          Channel::kCache);
  engine_.Run();
  EXPECT_EQ(dir_->stats().stale_acks, 1u);
  EXPECT_EQ(dir_->SharerCount(0x5000), 1u);
  EXPECT_EQ(dir_->StateOf(0x5000), DirectoryController::BlockState::kShared);

  // The protocol still works afterwards.
  bool wrote = false;
  port_[1]->Write(0x5000, [&] { wrote = true; });
  engine_.Run();
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(port_[1]->HoldsModified(0x5000));
  EXPECT_TRUE(engine_.audit().Sweep().empty());
}

// The new mem/ccnuma/sharers_conserved check: every valid line in a port
// cache must be tracked by the home directory.
TEST_F(CcNumaTest, AuditCatchesUntrackedPortLine) {
  port_[0]->Read(0x5000, nullptr);
  engine_.Run();
  EXPECT_TRUE(engine_.audit().Sweep().empty());

  AuditTestPeer::PortCache(*port_[0]).Insert(0x7000, /*dirty=*/false);
  EXPECT_TRUE(AnyPathEndsWith(engine_.audit().Sweep(), "mem/ccnuma/sharers_conserved"));
  AuditTestPeer::PortCache(*port_[0]).Invalidate(0x7000);
  EXPECT_TRUE(engine_.audit().Sweep().empty());
}

// --------------------------- Non-CC NUMA ---------------------------------

class NonCcTest : public ::testing::Test {
 protected:
  NonCcTest() : fabric_(&engine_, 9) {
    auto* sw = fabric_.AddSwitch(FabrexSwitch(), "sw");
    dram_ = std::make_unique<DramDevice>(&engine_, OmegaLocalDram(), "fam-dram");
    auto* fea = fabric_.AddEndpointAdapter(OmegaEndpointAdapter(), "fea", dram_.get());
    fabric_.Connect(sw, fea, OmegaLink());
    for (int i = 0; i < 2; ++i) {
      auto* fha = fabric_.AddHostAdapter(OmegaHostAdapter(), "h" + std::to_string(i));
      fabric_.Connect(sw, fha, OmegaLink());
      port_[i] = std::make_unique<NonCcPort>(&engine_, NonCcConfig{}, fha, fea->id(), &oracle_,
                                             "p" + std::to_string(i));
    }
    fabric_.ConfigureRouting();
  }

  Engine engine_;
  FabricInterconnect fabric_;
  std::unique_ptr<DramDevice> dram_;
  SharedStateOracle oracle_;
  std::unique_ptr<NonCcPort> port_[2];
};

TEST_F(NonCcTest, ReadMissFetchesThenHitsLocally) {
  bool stale = true;
  port_[0]->Read(0x100, [&](bool s) { stale = s; });
  engine_.Run();
  EXPECT_FALSE(stale);
  EXPECT_TRUE(port_[0]->Holds(0x100));
  EXPECT_EQ(port_[0]->stats().read_misses, 1u);
  port_[0]->Read(0x100, nullptr);
  engine_.Run();
  EXPECT_EQ(port_[0]->stats().read_hits, 1u);
}

TEST_F(NonCcTest, WritesStayLocalUntilFlush) {
  port_[0]->Write(0x100, nullptr);
  engine_.Run();
  EXPECT_EQ(oracle_.Current(0x100), 0u);  // remote unaware
  bool flushed = false;
  port_[0]->FlushBlock(0x100, [&] { flushed = true; });
  engine_.Run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(oracle_.Current(0x100), 1u);
}

TEST_F(NonCcTest, StaleReadWithoutInvalidateIsObservable) {
  // Port 1 caches the block, then port 0 updates it remotely.
  port_[1]->Read(0x200, nullptr);
  engine_.Run();
  port_[0]->Write(0x200, nullptr);
  port_[0]->FlushBlock(0x200, nullptr);
  engine_.Run();

  bool stale = false;
  port_[1]->Read(0x200, [&](bool s) { stale = s; });
  engine_.Run();
  EXPECT_TRUE(stale);
  EXPECT_GE(port_[1]->stats().stale_reads, 1u);
}

TEST_F(NonCcTest, InvalidateRestoresFreshness) {
  port_[1]->Read(0x200, nullptr);
  engine_.Run();
  port_[0]->Write(0x200, nullptr);
  port_[0]->FlushBlock(0x200, nullptr);
  engine_.Run();

  port_[1]->InvalidateBlock(0x200);
  bool stale = true;
  port_[1]->Read(0x200, [&](bool s) { stale = s; });
  engine_.Run();
  EXPECT_FALSE(stale);
}

TEST_F(NonCcTest, FlushAllPushesEveryDirtyBlock) {
  for (int i = 0; i < 8; ++i) {
    port_[0]->Write(0x1000 + static_cast<std::uint64_t>(i) * 64, nullptr);
  }
  engine_.Run();
  bool done = false;
  port_[0]->FlushAll([&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_GE(port_[0]->stats().flushes, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(oracle_.Current(0x1000 + static_cast<std::uint64_t>(i) * 64), 1u);
  }
}

// ------------------------------ COMA -------------------------------------

class ComaTest : public ::testing::Test {
 protected:
  ComaTest() {
    ComaConfig cfg;
    cfg.num_nodes = 4;
    cfg.blocks_per_node = 8;
    coma_ = std::make_unique<ComaSystem>(&engine_, cfg);
  }

  Engine engine_;
  std::unique_ptr<ComaSystem> coma_;
};

TEST_F(ComaTest, LocalHitIsCheap) {
  coma_->SeedBlock(0, 0x0);
  Tick t0 = engine_.Now();
  bool done = false;
  coma_->Read(0, 0x0, [&] { done = true; });
  engine_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine_.Now() - t0, FromNs(150));
  EXPECT_EQ(coma_->stats().hits, 1u);
}

TEST_F(ComaTest, ReadMissReplicates) {
  coma_->SeedBlock(0, 0x0);
  coma_->Read(3, 0x0, nullptr);
  engine_.Run();
  EXPECT_TRUE(coma_->NodeHolds(0, 0x0));
  EXPECT_TRUE(coma_->NodeHolds(3, 0x0));
  EXPECT_EQ(coma_->CopyCount(0x0), 2);
  EXPECT_EQ(coma_->stats().replications, 1u);
}

TEST_F(ComaTest, WriteMigratesAndInvalidatesReplicas) {
  coma_->SeedBlock(0, 0x0);
  coma_->Read(1, 0x0, nullptr);
  coma_->Read(2, 0x0, nullptr);
  engine_.Run();
  ASSERT_EQ(coma_->CopyCount(0x0), 3);

  coma_->Write(3, 0x0, nullptr);
  engine_.Run();
  EXPECT_EQ(coma_->CopyCount(0x0), 1);
  EXPECT_TRUE(coma_->NodeHolds(3, 0x0));
  EXPECT_GE(coma_->stats().invalidations, 3u);
  EXPECT_EQ(coma_->stats().migrations, 1u);
}

TEST_F(ComaTest, FartherHoldersCostMoreDirectoryHops) {
  coma_->SeedBlock(1, 0x0);   // sibling of node 0 (distance 2)
  coma_->SeedBlock(3, 0x40);  // far subtree (distance 4 from node 0)

  Tick near_latency = 0;
  coma_->Read(0, 0x0, nullptr);
  engine_.Run();
  near_latency = engine_.Now();

  Engine fresh;  // measure far access in the same system: use deltas instead
  const Tick t1 = engine_.Now();
  coma_->Read(0, 0x40, nullptr);
  engine_.Run();
  const Tick far_latency = engine_.Now() - t1;
  EXPECT_GT(far_latency, near_latency);
}

TEST_F(ComaTest, LastCopyEvictionInjectsInsteadOfDropping) {
  // Fill node 0 beyond capacity with unique blocks; evicted last copies
  // must reappear on some other node.
  for (int i = 0; i < 12; ++i) {
    coma_->SeedBlock(0, static_cast<std::uint64_t>(i) * 64);
  }
  EXPECT_GE(coma_->stats().injections, 4u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_GE(coma_->CopyCount(static_cast<std::uint64_t>(i) * 64), 1)
        << "block " << i << " lost";
  }
}

TEST_F(ComaTest, ReplicaEvictionIsSafeToDrop) {
  coma_->SeedBlock(0, 0x0);
  coma_->Read(1, 0x0, nullptr);  // replica on node 1
  engine_.Run();
  // Fill node 1 with other blocks to force the replica out.
  for (int i = 1; i <= 8; ++i) {
    coma_->SeedBlock(1, static_cast<std::uint64_t>(i) * 64);
  }
  EXPECT_FALSE(coma_->NodeHolds(1, 0x0));
  EXPECT_EQ(coma_->CopyCount(0x0), 1);  // original still on node 0
}

}  // namespace
}  // namespace unifab
