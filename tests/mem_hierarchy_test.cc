// DRAM-device and memory-hierarchy unit tests: banking, write-back
// behavior, MSHR fairness, prefetching, flush/invalidate semantics.

#include "src/mem/hierarchy.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/mem/dram.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

// ------------------------------- DRAM ------------------------------------

TEST(DramTest, SingleAccessTakesLatencyPlusTransfer) {
  Engine engine;
  DramDevice dram(&engine, OmegaLocalDram(), "d");
  Tick done_at = 0;
  dram.Access(0, 64, false, [&] { done_at = engine.Now(); });
  engine.Run();
  // 60 ns access + 2.5 ns transfer.
  EXPECT_EQ(done_at, FromNs(62.5));
}

TEST(DramTest, SameBankSerializes) {
  Engine engine;
  DramConfig cfg = OmegaLocalDram();
  cfg.num_banks = 4;
  DramDevice dram(&engine, cfg, "d");
  Tick first = 0;
  Tick second = 0;
  // Same bank: line addresses 4 banks' stride apart.
  dram.Access(0, 64, false, [&] { first = engine.Now(); });
  dram.Access(4 * 64, 64, false, [&] { second = engine.Now(); });
  engine.Run();
  EXPECT_EQ(second - first, FromNs(62.5));
}

TEST(DramTest, DifferentBanksOverlap) {
  Engine engine;
  DramConfig cfg = OmegaLocalDram();
  cfg.num_banks = 4;
  DramDevice dram(&engine, cfg, "d");
  Tick first = 0;
  Tick second = 0;
  dram.Access(0, 64, false, [&] { first = engine.Now(); });
  dram.Access(64, 64, false, [&] { second = engine.Now(); });
  engine.Run();
  EXPECT_EQ(first, second);  // parallel banks
}

TEST(DramTest, LargeTransferScalesWithBandwidth) {
  Engine engine;
  DramDevice dram(&engine, OmegaLocalDram(), "d");
  Tick done_at = 0;
  dram.Access(0, 64 * 1024, false, [&] { done_at = engine.Now(); });
  engine.Run();
  // 60 ns + 65536B / 25.6 GB/s = 60 + 2560 ns.
  EXPECT_EQ(done_at, FromNs(2620.0));
}

// ---------------------------- Hierarchy ----------------------------------

struct HierRig {
  explicit HierRig(HierarchyConfig cfg = OmegaHostHierarchy())
      : dram(&engine, OmegaLocalDram(), "dram"), hier(&engine, cfg, "core") {
    hier.MapLocal(0, 1ULL << 32, &dram);
  }

  Engine engine;
  DramDevice dram;
  MemoryHierarchy hier;
};

TEST(HierarchyTest, MissFillsL1AndVictimsCascade) {
  HierRig rig;
  rig.hier.Access(0x1000, false, nullptr);
  rig.engine.Run();
  // Fills land in L1; the L2 holds only L1 victims (victim-fill hierarchy).
  EXPECT_TRUE(rig.hier.l1().Contains(0x1000));
  EXPECT_FALSE(rig.hier.l2().Contains(0x1000));
  EXPECT_EQ(rig.hier.stats().local_mem_accesses, 1u);

  // Conflict-evict 0x1000 from L1 (8-way, so 8 same-set lines push it out):
  // the victim must appear in L2.
  const std::uint64_t set_stride = rig.hier.l1().num_sets() * 64;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    rig.hier.Access(0x1000 + i * set_stride, false, nullptr);
  }
  rig.engine.Run();
  EXPECT_FALSE(rig.hier.l1().Contains(0x1000));
  EXPECT_TRUE(rig.hier.l2().Contains(0x1000));
}

TEST(HierarchyTest, StoreMissDirtiesLineAndEvictionWritesBack) {
  HierarchyConfig cfg = OmegaHostHierarchy();
  cfg.l1 = CacheConfig{1024, 64, 2};  // tiny L1: 8 sets
  cfg.l2 = CacheConfig{2048, 64, 2};  // tiny L2: forces eviction to memory
  HierRig rig(cfg);

  rig.hier.Access(0x0, true, nullptr);
  rig.engine.Run();
  EXPECT_TRUE(rig.hier.l1().IsDirty(0x0));

  // Conflict-evict through both levels: same set addresses.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    rig.hier.Access(i * 2048, true, nullptr);
    rig.engine.Run();
  }
  EXPECT_GE(rig.hier.stats().writebacks_to_memory, 1u);
  EXPECT_GE(rig.dram.stats().writes, 1u);
}

TEST(HierarchyTest, AccessRangeTouchesEveryLine) {
  HierRig rig;
  bool done = false;
  rig.hier.AccessRange(0x100, 1000, false, [&] { done = true; });
  rig.engine.Run();
  EXPECT_TRUE(done);
  // [0x100, 0x4E8) spans lines 0x100..0x4C0 -> 16 lines.
  EXPECT_EQ(rig.hier.stats().loads, 16u);
}

TEST(HierarchyTest, AccessRangeZeroBytesCompletesImmediately) {
  HierRig rig;
  bool done = false;
  rig.hier.AccessRange(0x100, 0, false, [&] { done = true; });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.hier.stats().loads, 0u);
}

TEST(HierarchyTest, InvalidateDropsLineEverywhere) {
  HierRig rig;
  rig.hier.Access(0x2000, true, nullptr);
  rig.engine.Run();
  bool was_dirty = false;
  EXPECT_TRUE(rig.hier.InvalidateLine(0x2000, &was_dirty));
  EXPECT_TRUE(was_dirty);
  EXPECT_FALSE(rig.hier.LinePresent(0x2000));
  EXPECT_FALSE(rig.hier.InvalidateLine(0x2000));
}

TEST(HierarchyTest, FlushWritesDirtyLineBack) {
  HierRig rig;
  rig.hier.Access(0x3000, true, nullptr);
  rig.engine.Run();
  const auto writes_before = rig.dram.stats().writes;
  bool flushed = false;
  rig.hier.FlushLine(0x3000, [&] { flushed = true; });
  rig.engine.Run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(rig.dram.stats().writes, writes_before + 1);
  // Line stays resident but clean: flushing twice writes nothing new.
  EXPECT_TRUE(rig.hier.LinePresent(0x3000));
  rig.hier.FlushLine(0x3000, nullptr);
  rig.engine.Run();
  EXPECT_EQ(rig.dram.stats().writes, writes_before + 1);
}

TEST(HierarchyTest, MshrLimitBoundsConcurrentMisses) {
  HierRig rig;
  for (int i = 0; i < 12; ++i) {
    rig.hier.Access(static_cast<std::uint64_t>(i) << 20, false, nullptr);
  }
  EXPECT_LE(rig.hier.MshrsInUse(), rig.hier.config().mshrs);
  rig.engine.Run();
  EXPECT_EQ(rig.hier.MshrsInUse(), 0u);
  EXPECT_EQ(rig.hier.stats().local_mem_accesses, 12u);
}

// Regression: misses issued from completion callbacks must not starve
// already-queued misses (FIFO order through the MSHR wait queue).
TEST(HierarchyTest, CompletionIssuedMissesDoNotStarveWaiters) {
  HierRig rig;
  // A self-replenishing stream of 8 chains keeps the 4 MSHRs saturated.
  int stream_ops = 0;
  std::function<void(std::uint64_t)> chain = [&](std::uint64_t addr) {
    if (++stream_ops > 400) {
      return;
    }
    rig.hier.Access(addr, false, [&chain, addr] { chain(addr + (1 << 20)); });
  };
  for (int i = 0; i < 8; ++i) {
    chain(static_cast<std::uint64_t>(i) << 28);
  }
  // A single victim access queued behind the storm must complete while the
  // storm is still running.
  bool victim_done = false;
  Tick victim_at = 0;
  rig.engine.Schedule(FromUs(1), [&] {
    rig.hier.Access(0xFFFF0000, false, [&] {
      victim_done = true;
      victim_at = rig.engine.Now();
    });
  });
  rig.engine.Run();
  EXPECT_TRUE(victim_done);
  EXPECT_LT(ToUs(victim_at), 5.0);  // a few MSHR turnarounds, not the whole storm
}

TEST(HierarchyTest, StridePrefetcherFillsAhead) {
  HierarchyConfig cfg = OmegaHostHierarchy();
  cfg.prefetch_enabled = true;
  cfg.prefetch_degree = 2;
  HierRig rig(cfg);

  // Establish a steady 128B stride.
  for (int i = 0; i < 6; ++i) {
    rig.hier.Access(static_cast<std::uint64_t>(i) * 128, false, nullptr);
    rig.engine.Run();
  }
  EXPECT_GT(rig.hier.stats().prefetches_issued, 0u);
  // The next strided access should already be in L2 (a prefetch hit).
  const auto hits_before = rig.hier.stats().prefetch_hits;
  rig.hier.Access(6 * 128, false, nullptr);
  rig.engine.Run();
  EXPECT_GT(rig.hier.stats().prefetch_hits, hits_before);
}

TEST(HierarchyTest, PrefetcherDisabledIssuesNone) {
  HierRig rig;  // default: disabled
  for (int i = 0; i < 10; ++i) {
    rig.hier.Access(static_cast<std::uint64_t>(i) * 128, false, nullptr);
    rig.engine.Run();
  }
  EXPECT_EQ(rig.hier.stats().prefetches_issued, 0u);
}

TEST(HierarchyTest, LlcTierServesBetweenL2AndMemory) {
  HierarchyConfig cfg = OmegaHostHierarchy();
  cfg.has_llc = true;
  cfg.llc = CacheConfig{4 * 1024 * 1024, 64, 16};
  cfg.llc_latency = FromNs(20);
  HierRig rig(cfg);

  // Working set larger than L2 (1 MiB) but inside the LLC.
  for (std::uint64_t a = 0; a < (2ULL << 20); a += 64) {
    rig.hier.Access(a, false, nullptr);
  }
  rig.engine.Run();
  const auto mem_before = rig.hier.stats().local_mem_accesses;
  // Second pass: mostly LLC hits, no new memory traffic.
  for (std::uint64_t a = 0; a < (2ULL << 20); a += 64) {
    rig.hier.Access(a, false, nullptr);
  }
  rig.engine.Run();
  EXPECT_GT(rig.hier.stats().llc_hits, 1000u);
  EXPECT_LT(rig.hier.stats().local_mem_accesses - mem_before, 100u);
}

TEST(HierarchyTest, LatencySummaryTracksAllDemandAccesses) {
  HierRig rig;
  // 4 accesses (== MSHR count) to distinct banks/sets run fully parallel.
  for (int i = 0; i < 4; ++i) {
    rig.hier.Access(static_cast<std::uint64_t>(i) * ((1 << 21) + 192), false, nullptr);
  }
  rig.engine.Run();
  EXPECT_EQ(rig.hier.stats().access_latency_ns.Count(), 4u);
  EXPECT_NEAR(rig.hier.stats().access_latency_ns.Mean(), 111.7, 25.0);
}

}  // namespace
}  // namespace unifab
