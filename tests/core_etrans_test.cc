// eTrans engine unit tests: descriptor handling, executor selection,
// ownership semantics, chunking, and lease behavior.

#include "src/core/etrans.h"

#include <gtest/gtest.h>

#include "src/core/runtime.h"

namespace unifab {
namespace {

ClusterConfig TwoFamCluster() {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 2;
  cfg.num_faas = 0;
  return cfg;
}

class ETransTest : public ::testing::Test {
 protected:
  ETransTest() : cluster_(TwoFamCluster()), runtime_(&cluster_, RuntimeOptions{}) {}

  Cluster cluster_;
  UniFabricRuntime runtime_;
};

TEST_F(ETransTest, ValidateAndSizeSumsSegments) {
  ETransDescriptor d;
  d.src = {Segment{1, 0, 100}, Segment{1, 4096, 200}};
  d.dst = {Segment{2, 0, 300}};
  EXPECT_EQ(ETransEngine::ValidateAndSize(d), 300u);
}

TEST_F(ETransTest, MultiSegmentScatterGatherMovesEverything) {
  ETransDescriptor d;
  // Gather two host regions into one FAM region, then a split destination.
  d.src = {Segment{cluster_.host(0)->id(), 0, 8192},
           Segment{cluster_.host(0)->id(), 1 << 20, 8192}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 4096},
           Segment{cluster_.fam(0)->id(), 1 << 16, 12288}};
  d.immediate = true;
  d.attributes.throttled = false;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(f.Value().bytes, 16384u);
  EXPECT_EQ(runtime_.host_agent(0)->stats().bytes_moved, 16384u);
}

TEST_F(ETransTest, ChunkSizeControlsTransactionCount) {
  ETransDescriptor d;
  d.src = {Segment{cluster_.host(0)->id(), 0, 64 * 1024}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 64 * 1024}};
  d.immediate = true;
  d.attributes.throttled = false;
  d.attributes.chunk_bytes = 16 * 1024;  // 4 chunks

  runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  // Each chunk is one fabric write transaction (source side is local DRAM).
  EXPECT_EQ(cluster_.host(0)->fha()->stats().writes_completed, 4u);
}

TEST_F(ETransTest, ExecutorOwnershipSkipsInitiatorNotification) {
  ETransDescriptor d;
  d.src = {Segment{cluster_.fam(0)->id(), 0, 4096}};
  d.dst = {Segment{cluster_.fam(0)->id(), 1 << 20, 4096}};
  d.ownership = Ownership::kExecutor;
  d.attributes.throttled = false;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  // Work happened on the FAM agent, but nobody fulfilled the initiator's
  // future: completion belongs to the executor.
  EXPECT_EQ(runtime_.fam_agent(0)->stats().jobs_executed, 1u);
  EXPECT_FALSE(f.Ready());
}

TEST_F(ETransTest, InitiatorOwnershipNotifiesAcrossFabric) {
  ETransDescriptor d;
  d.src = {Segment{cluster_.fam(1)->id(), 0, 4096}};
  d.dst = {Segment{cluster_.fam(1)->id(), 1 << 20, 4096}};
  d.ownership = Ownership::kInitiator;
  d.attributes.throttled = false;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(1), d);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_EQ(f.Value().bytes, 4096u);
}

TEST_F(ETransTest, FamAgentCannotExecuteForeignSegments) {
  // FAM0's controller cannot touch FAM1's memory: the engine must fall back
  // to a host agent.
  ETransDescriptor d;
  d.src = {Segment{cluster_.fam(0)->id(), 0, 4096}};
  d.dst = {Segment{cluster_.fam(1)->id(), 0, 4096}};
  d.attributes.throttled = false;

  EXPECT_FALSE(runtime_.fam_agent(0)->CanExecute(d));
  EXPECT_TRUE(runtime_.host_agent(0)->CanExecute(d));

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(runtime_.fam_agent(0)->stats().jobs_executed, 0u);
  EXPECT_EQ(runtime_.host_agent(0)->stats().jobs_executed, 1u);
}

TEST_F(ETransTest, ThrottledJobsRenewLeasesOnLongTransfers) {
  // A transfer paced at 500 MB/s for 4 MiB takes ~8 ms >> the 100 us lease,
  // so the agent must renew repeatedly.
  ETransDescriptor d;
  d.src = {Segment{cluster_.host(0)->id(), 0, 4 << 20}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 4 << 20}};
  d.attributes.throttled = true;
  d.attributes.request_mbps = 500.0;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_GT(runtime_.arbiter()->stats().reservations, 10u);
}

TEST_F(ETransTest, PacingApproximatesGrantedRate) {
  ETransDescriptor d;
  d.src = {Segment{cluster_.host(0)->id(), 0, 2 << 20}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 2 << 20}};
  d.attributes.throttled = true;
  d.attributes.request_mbps = 1000.0;  // 2 MiB at 1 GB/s ~ 2.1 ms

  const Tick t0 = cluster_.engine().Now();
  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  const double ms = ToMs(f.Value().completed_at - t0);
  EXPECT_GT(ms, 1.9);
  EXPECT_LT(ms, 2.6);
}

TEST_F(ETransTest, ConcurrentJobsOnOneAgentAllComplete) {
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    ETransDescriptor d;
    d.src = {Segment{cluster_.host(0)->id(), static_cast<std::uint64_t>(i) << 20, 32 * 1024}};
    d.dst = {Segment{cluster_.fam(i % 2)->id(), static_cast<std::uint64_t>(i) << 20,
                     32 * 1024}};
    d.immediate = true;
    d.attributes.throttled = false;
    TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
    f.Then([&done](const TransferResult&) { ++done; });
  }
  cluster_.engine().Run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(runtime_.host_agent(0)->stats().jobs_executed, 6u);
}

TEST_F(ETransTest, StatsAccumulateBytes) {
  ETransDescriptor d;
  d.src = {Segment{cluster_.host(0)->id(), 0, 10000}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 10000}};
  d.immediate = true;
  d.attributes.throttled = false;
  runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();
  EXPECT_EQ(runtime_.etrans()->stats().bytes_requested, 10000u);
  EXPECT_EQ(runtime_.host_agent(0)->stats().bytes_moved, 10000u);
  EXPECT_EQ(runtime_.host_agent(0)->stats().job_latency_us.Count(), 1u);
}

// --- Failure recovery: deadlines, backoff retries, terminal status. -------

TEST(ETransBackoffTest, LeaseBackoffIsMonotoneAndCapped) {
  EXPECT_EQ(MigrationAgent::LeaseBackoff(0), FromUs(5.0));
  EXPECT_EQ(MigrationAgent::LeaseBackoff(1), FromUs(10.0));
  for (int r = 1; r < 8; ++r) {
    EXPECT_GE(MigrationAgent::LeaseBackoff(r), MigrationAgent::LeaseBackoff(r - 1));
  }
  // The cap holds for any retry count, including ones that would overflow a
  // naive 5us << retries.
  EXPECT_EQ(MigrationAgent::LeaseBackoff(5), FromUs(100.0));
  EXPECT_EQ(MigrationAgent::LeaseBackoff(50), MigrationAgent::LeaseBackoff(6));
  EXPECT_LE(MigrationAgent::LeaseBackoff(1000), FromUs(100.0));
}

TEST(ETransBackoffTest, AttemptDeadlineScalesWithSizeAndRate) {
  ETransDescriptor small;
  small.src = {Segment{1, 0, 4096}};
  small.dst = {Segment{2, 0, 4096}};
  ETransDescriptor big = small;
  big.src[0].bytes = 4 << 20;
  big.dst[0].bytes = 4 << 20;

  const Tick floor = small.attributes.deadline_floor;
  EXPECT_GE(MigrationAgent::AttemptDeadline(small, 8000.0), floor);
  EXPECT_GT(MigrationAgent::AttemptDeadline(big, 8000.0),
            MigrationAgent::AttemptDeadline(small, 8000.0));
  // Slower pacing leaves proportionally more time.
  EXPECT_GT(MigrationAgent::AttemptDeadline(big, 500.0),
            MigrationAgent::AttemptDeadline(big, 8000.0));
}

TEST_F(ETransTest, UnreachableDestinationAbortsAfterRetries) {
  // Kill FAM0's only uplink permanently: every chunk write black-holes, so
  // each attempt dies (MSHR timeout or job watchdog) until retries run out.
  cluster_.fabric().LinkTo(cluster_.fam(0)->id())->Fail();

  ETransDescriptor d;
  d.src = {Segment{cluster_.host(0)->id(), 0, 4096}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 4096}};
  d.attributes.throttled = false;
  d.ownership = Ownership::kInitiator;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();

  ASSERT_TRUE(f.Ready());  // terminal, not wedged
  EXPECT_FALSE(f.Value().ok);
  EXPECT_EQ(f.Value().status, TransferStatus::kAborted);
  const auto& rec = runtime_.etrans()->recovery_stats();
  EXPECT_EQ(rec.jobs_aborted, 1u);
  EXPECT_EQ(rec.retries,
            static_cast<std::uint64_t>(runtime_.etrans()->recovery_config().max_retries));
  EXPECT_EQ(rec.attempt_failures, rec.retries + 1);
  EXPECT_EQ(rec.jobs_recovered, 0u);
}

TEST_F(ETransTest, TransientLinkFailureRecoversViaRetry) {
  Link* uplink = cluster_.fabric().LinkTo(cluster_.fam(0)->id());
  uplink->Fail();
  cluster_.engine().ScheduleAt(FromUs(500.0), [uplink] { uplink->Recover(); });

  ETransDescriptor d;
  d.src = {Segment{cluster_.host(0)->id(), 0, 4096}};
  d.dst = {Segment{cluster_.fam(0)->id(), 0, 4096}};
  d.attributes.throttled = false;
  d.ownership = Ownership::kInitiator;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();

  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_EQ(f.Value().status, TransferStatus::kOk);
  EXPECT_EQ(f.Value().bytes, 4096u);
  const auto& rec = runtime_.etrans()->recovery_stats();
  EXPECT_EQ(rec.jobs_recovered, 1u);
  EXPECT_GE(rec.retries, 1u);
  EXPECT_EQ(rec.jobs_aborted, 0u);
  EXPECT_EQ(rec.time_to_recover_us.Count(), 1u);
}

TEST_F(ETransTest, RemoteDelegationTimesOutWhenExecutorUnreachable) {
  // FAM1-local copy delegates to FAM1's controller agent, but its uplink is
  // dead before the job message is even sent: the engine-side watchdog (not
  // the executor's) must terminate the future.
  cluster_.fabric().LinkTo(cluster_.fam(1)->id())->Fail();

  ETransDescriptor d;
  d.src = {Segment{cluster_.fam(1)->id(), 0, 4096}};
  d.dst = {Segment{cluster_.fam(1)->id(), 1 << 20, 4096}};
  d.attributes.throttled = false;
  d.ownership = Ownership::kInitiator;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), d);
  cluster_.engine().Run();

  ASSERT_TRUE(f.Ready());
  EXPECT_FALSE(f.Value().ok);
  EXPECT_EQ(f.Value().status, TransferStatus::kAborted);
  // The executor never ran anything; the failure was detected initiator-side.
  EXPECT_EQ(runtime_.fam_agent(1)->stats().jobs_executed, 0u);
  EXPECT_GT(runtime_.etrans()->recovery_stats().jobs_aborted, 0u);
}

// Futures unit behavior.
TEST(FutureTest, ThenAfterFulfillRunsImmediately) {
  DistFuture<int> f;
  f.Fulfill(7);
  int got = 0;
  f.Then([&](const int& v) { got = v; });
  EXPECT_EQ(got, 7);
  EXPECT_TRUE(f.Ready());
  EXPECT_EQ(f.Value(), 7);
}

TEST(FutureTest, MultipleContinuationsAllFire) {
  DistFuture<int> f;
  int sum = 0;
  f.Then([&](const int& v) { sum += v; });
  f.Then([&](const int& v) { sum += v * 10; });
  f.Fulfill(3);
  EXPECT_EQ(sum, 33);
}

TEST(FutureTest, CopiesShareState) {
  DistFuture<int> a;
  DistFuture<int> b = a;
  int got = 0;
  b.Then([&](const int& v) { got = v; });
  a.Fulfill(5);
  EXPECT_EQ(got, 5);
  EXPECT_EQ(a.ownership(), Ownership::kInitiator);
  b.set_ownership(Ownership::kDetached);
  EXPECT_EQ(a.ownership(), Ownership::kDetached);
}

}  // namespace
}  // namespace unifab
