// Fabric-arbiter unit tests: max-min lease accounting across renewals
// (including the shrink-to-zero path) and the client-side request deadline
// that keeps callbacks from leaking when the control path dies.

#include "src/core/arbiter.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"

namespace unifab {
namespace {

AdapterConfig Lean() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(20);
  cfg.response_proc_latency = FromNs(20);
  return cfg;
}

// One switch, the arbiter on its own lightweight adapter (as the runtime
// provisions it), and two client adapters.
struct ArbiterRig {
  explicit ArbiterRig(ArbiterConfig cfg = ArbiterConfig{}) : fabric(&engine, 11) {
    sw = fabric.AddSwitch(SwitchConfig{}, "sw");
    auto* arb_adapter = fabric.AddHostAdapter(Lean(), "arb");
    fabric.Connect(sw, arb_adapter, LinkConfig{});
    for (int i = 0; i < 2; ++i) {
      client_adapters[i] = fabric.AddHostAdapter(Lean(), i == 0 ? "cli0" : "cli1");
      client_links[i] = fabric.Connect(sw, client_adapters[i], LinkConfig{});
    }
    fabric.ConfigureRouting();

    arb_dispatcher = std::make_unique<MessageDispatcher>(arb_adapter);
    arbiter = std::make_unique<FabricArbiter>(&engine, cfg, arb_dispatcher.get());
    for (int i = 0; i < 2; ++i) {
      client_dispatchers[i] = std::make_unique<MessageDispatcher>(client_adapters[i]);
      clients[i] = std::make_unique<ArbiterClient>(&engine, cfg, client_dispatchers[i].get(),
                                                  arbiter->fabric_id());
    }
  }

  Engine engine;
  FabricInterconnect fabric;
  FabricSwitch* sw;
  HostAdapter* client_adapters[2];
  Link* client_links[2];
  std::unique_ptr<MessageDispatcher> arb_dispatcher;
  std::unique_ptr<FabricArbiter> arbiter;
  std::unique_ptr<MessageDispatcher> client_dispatchers[2];
  std::unique_ptr<ArbiterClient> clients[2];
};

TEST(FabricArbiterTest, RenewalShrinksOverShareLease) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  // First flow grabs everything (work-conserving grant).
  double granted0 = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, [&](double g) { granted0 = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(granted0, 8000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 8000.0);

  // Second flow is entitled to its fair share despite the overcommit...
  double granted1 = -1.0;
  rig.clients[1]->Reserve(res, 8000.0, [&](double g) { granted1 = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(granted1, 4000.0);

  // ...and the first flow's renewal shrinks it to the new fair share.
  double renewed = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, [&](double g) { renewed = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(renewed, 4000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 8000.0);
}

TEST(FabricArbiterTest, RenewalSqueezedToZeroErasesStaleLease) {
  // Regression: a renewal whose FairGrant comes out <= 0 must drop the
  // holder's old lease instead of leaving it to double-count reserved
  // bandwidth in every kQuery until expiry.
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  double granted = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, [&](double g) { granted = g; });
  rig.engine.Run();
  ASSERT_DOUBLE_EQ(granted, 8000.0);

  // The renewal asks for nothing (flow winding down): grant is 0 — a
  // rejection — and the stale 8000 MB/s lease must go with it.
  double renewed = -1.0;
  rig.clients[0]->Reserve(res, 0.0, [&](double g) { renewed = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(renewed, 0.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 0.0);

  // A query now sees the full capacity again, not capacity minus a ghost.
  double available = -1.0;
  rig.clients[1]->Query(res, [&](double a) { available = a; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(available, 8000.0);
}

TEST(ArbiterClientTest, DeadlineFiresZeroGrantWhenControlPathDies) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  // Sever the client's link before the request can leave, then reserve:
  // no reply will ever arrive.
  rig.client_links[0]->Fail();
  std::vector<double> grants;
  rig.clients[0]->Reserve(res, 4000.0, [&](double g) { grants.push_back(g); });
  EXPECT_EQ(rig.clients[0]->outstanding(), 1u);

  rig.engine.Run();  // drains through the request deadline
  ASSERT_EQ(grants.size(), 1u);  // fired exactly once, never again
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_EQ(rig.clients[0]->outstanding(), 0u);
  EXPECT_EQ(rig.clients[0]->stats().requests, 1u);
  EXPECT_EQ(rig.clients[0]->stats().timeouts, 1u);
  EXPECT_EQ(rig.clients[0]->stats().replies, 0u);
}

TEST(ArbiterClientTest, ReplyCancelsDeadline) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  std::vector<double> grants;
  rig.clients[0]->Reserve(res, 4000.0, [&](double g) { grants.push_back(g); });
  rig.engine.Run();  // reply arrives and the armed deadline must not re-fire

  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(grants[0], 4000.0);
  EXPECT_EQ(rig.clients[0]->outstanding(), 0u);
  EXPECT_EQ(rig.clients[0]->stats().replies, 1u);
  EXPECT_EQ(rig.clients[0]->stats().timeouts, 0u);
}

TEST(ArbiterClientTest, LateGrantIsReleasedNotLeaked) {
  // Regression: a grant that arrives after the client deadline already
  // fired cb(0) used to be dropped on the floor — the arbiter kept the
  // lease reserved until expiry even though no caller would ever release
  // it. The client must hand the late grant straight back.
  ArbiterConfig cfg;
  cfg.request_timeout = FromNs(50);  // far below the control-path RTT
  ArbiterRig rig(cfg);
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  std::vector<double> grants;
  rig.clients[0]->Reserve(res, 4000.0, [&](double g) { grants.push_back(g); });
  rig.engine.Run();

  // The caller saw exactly one callback, with 0 granted (the deadline).
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_EQ(rig.clients[0]->stats().timeouts, 1u);
  EXPECT_EQ(rig.clients[0]->stats().replies, 0u);
  EXPECT_EQ(rig.clients[0]->stats().late_grants, 1u);

  // The arbiter granted, then got the bandwidth back via the client's
  // automatic release — not via lease expiry.
  EXPECT_EQ(rig.arbiter->stats().reservations, 1u);
  EXPECT_EQ(rig.arbiter->stats().releases, 1u);
  EXPECT_EQ(rig.arbiter->stats().expirations, 0u);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 0.0);
}

TEST(FabricArbiterQosTest, WeightedShareAcrossClasses) {
  // With preemption off, a guaranteed request against a fully committed
  // pool still gets its weighted entitlement (cap * 8/9 here), and the
  // best-effort renewal shrinks to its own entitlement so the pool
  // converges back to capacity.
  ArbiterConfig cfg;
  cfg.preempt_best_effort = false;
  ArbiterRig rig(cfg);
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 9000.0);

  double be = -1.0;
  rig.clients[1]->Reserve(res, 9000.0, 2, QosClass::kBestEffort, [&](double g) { be = g; });
  rig.engine.Run();
  ASSERT_DOUBLE_EQ(be, 9000.0);  // sole flow: work-conserving

  double gua = -1.0;
  rig.clients[0]->Reserve(res, 9000.0, 1, QosClass::kGuaranteed, [&](double g) { gua = g; });
  rig.engine.Run();
  // Active classes: guaranteed (w=8) and best-effort (w=1).
  EXPECT_DOUBLE_EQ(gua, 8000.0);

  double be_renewed = -1.0;
  rig.clients[1]->Reserve(res, 9000.0, 2, QosClass::kBestEffort,
                          [&](double g) { be_renewed = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(be_renewed, 1000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 9000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 1), 8000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 2), 1000.0);
  EXPECT_EQ(rig.arbiter->qos_stats().preemptions, 0u);
}

TEST(FabricArbiterQosTest, GuaranteedPreemptsBestEffortLeases) {
  ArbiterRig rig;  // preempt_best_effort defaults on
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  double be = -1.0;
  rig.clients[1]->Reserve(res, 8000.0, 2, QosClass::kBestEffort, [&](double g) { be = g; });
  rig.engine.Run();
  ASSERT_DOUBLE_EQ(be, 8000.0);

  // The guaranteed request evicts the best-effort lease outright and takes
  // the whole pool.
  double gua = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, 1, QosClass::kGuaranteed, [&](double g) { gua = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(gua, 8000.0);
  EXPECT_EQ(rig.arbiter->qos_stats().preemptions, 1u);
  EXPECT_DOUBLE_EQ(rig.arbiter->qos_stats().preempted_mbps, 8000.0);
  EXPECT_EQ(rig.arbiter->qos_stats().grants[static_cast<int>(QosClass::kGuaranteed)], 1u);
  EXPECT_EQ(rig.arbiter->qos_stats().grants[static_cast<int>(QosClass::kBestEffort)], 1u);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 8000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 1), 8000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 2), 0.0);
}

TEST(FabricArbiterQosTest, TenantBudgetClampsGrants) {
  ArbiterConfig cfg;
  cfg.qos[static_cast<int>(QosClass::kGuaranteed)].tenant_budget_mbps = 3000.0;
  ArbiterRig rig(cfg);
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  // First flow of tenant 7 is clipped from its fair share to the budget.
  double g0 = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, 7, QosClass::kGuaranteed, [&](double g) { g0 = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(g0, 3000.0);
  EXPECT_EQ(rig.arbiter->qos_stats().budget_clamps, 1u);

  // A second flow of the same tenant (different holder) finds the budget
  // exhausted and is rejected, even though the pool has headroom.
  double g1 = -1.0;
  rig.clients[1]->Reserve(res, 8000.0, 7, QosClass::kGuaranteed, [&](double g) { g1 = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(g1, 0.0);
  EXPECT_EQ(rig.arbiter->qos_stats().budget_clamps, 2u);
  EXPECT_EQ(rig.arbiter->stats().rejections, 1u);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 7), 3000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 3000.0);
}

TEST(FabricArbiterQosTest, SameHolderDistinctTenantsHoldIndependentLeases) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  double g0 = -1.0;
  rig.clients[0]->Reserve(res, 4000.0, 1, QosClass::kBestEffort, [&](double g) { g0 = g; });
  rig.engine.Run();
  ASSERT_DOUBLE_EQ(g0, 4000.0);

  // Same holder adapter, different tenant: a second, independent flow — it
  // must not be treated as a renewal of tenant 1's lease.
  double g1 = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, 2, QosClass::kBestEffort, [&](double g) { g1 = g; });
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(g1, 4000.0);  // two flows in one class: fair share each
  EXPECT_DOUBLE_EQ(rig.arbiter->ReservedOf(res), 8000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 1), 4000.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 2), 4000.0);

  // Releasing tenant 1's lease leaves tenant 2's intact.
  rig.clients[0]->Release(res, 4000.0, 1, QosClass::kBestEffort);
  rig.engine.Run();
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 1), 0.0);
  EXPECT_DOUBLE_EQ(rig.arbiter->TenantReservedOf(res, 2), 4000.0);
}

TEST(ArbiterClientTest, ZeroTimeoutDisablesDeadline) {
  ArbiterConfig cfg;
  cfg.request_timeout = 0;
  ArbiterRig rig(cfg);
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);

  rig.client_links[0]->Fail();
  bool called = false;
  rig.clients[0]->Reserve(res, 4000.0, [&](double) { called = true; });
  rig.engine.Run();
  EXPECT_FALSE(called);  // legacy behavior: the request waits forever
  EXPECT_EQ(rig.clients[0]->outstanding(), 1u);
}

}  // namespace
}  // namespace unifab
