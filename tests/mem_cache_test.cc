// Unit tests for the functional set-associative cache.

#include "src/mem/cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace unifab {
namespace {

CacheConfig Tiny() { return CacheConfig{1024, 64, 2}; }  // 8 sets x 2 ways

TEST(CacheTest, MissThenHit) {
  SetAssocCache c(Tiny());
  EXPECT_FALSE(c.Access(0x100, false));
  ASSERT_FALSE(c.Insert(0x100, false).has_value());
  EXPECT_TRUE(c.Access(0x100, false));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, LineGranularity) {
  SetAssocCache c(Tiny());
  c.Insert(0x100, false);
  // Any address within the same 64B line hits.
  EXPECT_TRUE(c.Access(0x13F, false));
  EXPECT_FALSE(c.Access(0x140, false));
}

TEST(CacheTest, WriteMarksDirty) {
  SetAssocCache c(Tiny());
  c.Insert(0x100, false);
  EXPECT_FALSE(c.IsDirty(0x100));
  c.Access(0x100, /*is_write=*/true);
  EXPECT_TRUE(c.IsDirty(0x100));
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c(Tiny());
  // Two ways per set; three lines mapping to the same set (stride = 8 sets
  // * 64B = 512B).
  c.Insert(0x0000, false);
  c.Insert(0x0200, false);
  c.Access(0x0000, false);  // 0x0000 is now MRU
  auto ev = c.Insert(0x0400, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0x0200u);
  EXPECT_FALSE(ev->dirty);
}

TEST(CacheTest, DirtyEvictionIsReportedAsWriteback) {
  SetAssocCache c(Tiny());
  c.Insert(0x0000, /*dirty=*/true);
  c.Insert(0x0200, false);
  auto ev = c.Insert(0x0400, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0x0000u);
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheTest, InsertExistingLineRefreshesInsteadOfEvicting) {
  SetAssocCache c(Tiny());
  c.Insert(0x0000, false);
  auto ev = c.Insert(0x0000, /*dirty=*/true);
  EXPECT_FALSE(ev.has_value());
  EXPECT_TRUE(c.IsDirty(0x0000));
}

TEST(CacheTest, InvalidateRemovesAndReportsDirty) {
  SetAssocCache c(Tiny());
  c.Insert(0x0000, /*dirty=*/true);
  bool dirty = false;
  EXPECT_TRUE(c.Invalidate(0x0000, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(c.Contains(0x0000));
  EXPECT_FALSE(c.Invalidate(0x0000));
}

TEST(CacheTest, CleanLineClearsDirtyBit) {
  SetAssocCache c(Tiny());
  c.Insert(0x0000, true);
  c.CleanLine(0x0000);
  EXPECT_FALSE(c.IsDirty(0x0000));
  EXPECT_TRUE(c.Contains(0x0000));
}

TEST(CacheTest, ValidLinesEnumeratesContents) {
  SetAssocCache c(Tiny());
  c.Insert(0x0000, true);
  c.Insert(0x0040, false);
  c.Insert(0x0080, true);
  EXPECT_EQ(c.ValidLines().size(), 3u);
  const auto dirty = c.ValidLines(/*dirty_only=*/true);
  EXPECT_EQ(dirty.size(), 2u);
}

TEST(CacheTest, ContainsDoesNotPerturbLruOrStats) {
  SetAssocCache c(Tiny());
  c.Insert(0x0000, false);
  c.Insert(0x0200, false);
  // Peek at 0x0000 (would make it MRU if it were an access).
  EXPECT_TRUE(c.Contains(0x0000));
  const auto hits_before = c.stats().hits;
  auto ev = c.Insert(0x0400, false);
  ASSERT_TRUE(ev.has_value());
  // 0x0000 was still LRU despite Contains().
  EXPECT_EQ(ev->line_addr, 0x0000u);
  EXPECT_EQ(c.stats().hits, hits_before);
}

// Property-style sweep: for any power-of-two geometry, inserting exactly
// `ways` lines per set never evicts, and one more insert always does.
struct Geometry {
  std::uint64_t size;
  std::uint32_t line;
  std::uint32_t ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometryTest, AssociativityIsExact) {
  const Geometry g = GetParam();
  SetAssocCache c(CacheConfig{g.size, g.line, g.ways});
  const std::uint64_t set_stride = c.num_sets() * g.line;
  for (std::uint32_t w = 0; w < g.ways; ++w) {
    EXPECT_FALSE(c.Insert(set_stride * w, false).has_value());
  }
  EXPECT_TRUE(c.Insert(set_stride * g.ways, false).has_value());
}

TEST_P(CacheGeometryTest, EveryInsertedLineIsFindable) {
  const Geometry g = GetParam();
  SetAssocCache c(CacheConfig{g.size, g.line, g.ways});
  // Fill the whole cache without conflict: walk sequential lines.
  const std::uint64_t lines = g.size / g.line;
  for (std::uint64_t i = 0; i < lines; ++i) {
    c.Insert(i * g.line, false);
  }
  for (std::uint64_t i = 0; i < lines; ++i) {
    EXPECT_TRUE(c.Contains(i * g.line)) << "line " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometryTest,
                         ::testing::Values(Geometry{1024, 64, 2}, Geometry{4096, 64, 4},
                                           Geometry{32768, 64, 8}, Geometry{16384, 128, 2},
                                           Geometry{65536, 64, 16}, Geometry{8192, 32, 4}));

}  // namespace
}  // namespace unifab
