// Invariant-auditor and run-digest tests.
//
// Every component that registers conservation checks gets a seeded-violation
// test: corrupt one counter through the AuditTestPeer hook, confirm the
// sweep reports it under the component's path, restore the counter, confirm
// the sweep is clean again. Plus determinism-digest equality/inequality and
// regression tests for the bugfixes that shipped with the auditor (Summary
// non-finite handling, heap lazy-epoch catch-up, link credit validation).

#include "src/sim/audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/core/arbiter.h"
#include "src/core/etrans.h"
#include "src/core/heap.h"
#include "src/core/ofi.h"
#include "src/core/runtime.h"
#include "src/fabric/adapter.h"
#include "src/fabric/bridge.h"
#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/fabric/link.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/topo/cluster.h"

namespace unifab {

// Test-only corruption hooks. Each accessor reaches into one audited
// component's private accounting so a test can seed exactly one violation
// and put the state back afterwards.
class AuditTestPeer {
 public:
  static std::size_t& QueueLive(Engine& e) { return e.queue_.live_; }

  static std::uint32_t& LinkCredits(Link& l, int sender_side, Channel ch) {
    return l.dirs_[sender_side].credits[static_cast<std::size_t>(ch)];
  }
  static std::uint64_t& LinkAccepted(Link& l, int sender_side) {
    return l.dirs_[sender_side].stats.flits_accepted;
  }

  static void SeedStaleMshr(HostAdapter& a, std::uint64_t txn_id) {
    HostAdapter::OutstandingTxn txn;
    txn.submitted_at = 0;  // ancient: any positive mshr_timeout has expired
    a.outstanding_.emplace(txn_id, std::move(txn));
  }
  static void EraseMshr(HostAdapter& a, std::uint64_t txn_id) {
    a.outstanding_.erase(txn_id);
  }

  static double& ArbiterReservedCache(FabricArbiter& a, PbrId resource) {
    return a.resources_[resource].reserved_cache;
  }
  static double& ArbiterClassReservedCache(FabricArbiter& a, PbrId resource, QosClass c) {
    return a.resources_[resource].class_reserved_cache[static_cast<int>(c)];
  }
  static double& ArbiterTenantReservedCache(FabricArbiter& a, PbrId resource,
                                            std::uint32_t tenant) {
    return a.resources_[resource].tenant_reserved_cache[tenant];
  }
  // Inflates one lease directly (the caches deliberately stay behind, as a
  // buggy grant path would leave them).
  static void ArbiterBumpLease(FabricArbiter& a, PbrId resource, PbrId holder,
                               std::uint32_t tenant, double delta) {
    a.resources_[resource].leases.at(FabricArbiter::FlowKey{holder, tenant}).mbps += delta;
  }

  static std::uint64_t& TenantInFlight(TenantEngine& t) { return t.in_flight_; }

  static std::uint64_t& HeapTierUsed(UnifiedHeap& h, int tier) {
    return h.tier_used_[static_cast<std::size_t>(tier)];
  }

  static std::uint64_t& ETransDoubleTerminals(ETransEngine& e) {
    return e.double_terminals_;
  }

  static std::uint64_t& OfiCompletions(OfiDomain& d) { return d.stats_.completions; }
};

namespace {

// True when some violation path ends with `suffix`.
bool AnyPathEndsWith(const std::vector<InvariantViolation>& violations,
                     const std::string& suffix) {
  for (const auto& v : violations) {
    if (v.path.size() >= suffix.size() &&
        v.path.compare(v.path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// InvariantAuditor / AuditScope mechanics.

TEST(InvariantAuditorTest, RegisterSweepUnregister) {
  InvariantAuditor auditor;
  bool broken = false;
  const std::uint64_t id =
      auditor.Register("test/check", [&] { return broken ? "it broke" : ""; });
  EXPECT_EQ(auditor.NumChecks(), 1u);

  EXPECT_TRUE(auditor.Sweep().empty());
  broken = true;
  const auto violations = auditor.Sweep();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].path, "test/check");
  EXPECT_EQ(violations[0].message, "it broke");
  EXPECT_EQ(auditor.SweepsRun(), 2u);

  EXPECT_TRUE(auditor.Unregister(id));
  EXPECT_FALSE(auditor.Unregister(id));
  EXPECT_EQ(auditor.NumChecks(), 0u);
}

TEST(InvariantAuditorTest, ClaimPrefixUniquifiesDeterministically) {
  InvariantAuditor auditor;
  EXPECT_EQ(auditor.ClaimPrefix("fabric/link/l0"), "fabric/link/l0");
  EXPECT_EQ(auditor.ClaimPrefix("fabric/link/l0"), "fabric/link/l0#2");
  EXPECT_EQ(auditor.ClaimPrefix("fabric/link/l0"), "fabric/link/l0#3");
  EXPECT_EQ(auditor.ClaimPrefix("fabric/link/l1"), "fabric/link/l1");
}

TEST(AuditScopeTest, ChecksUnregisterOnDestruction) {
  Engine engine;
  const std::size_t baseline = engine.audit().NumChecks();
  {
    Link link(&engine, LinkConfig{}, /*seed=*/7, "scoped");
    EXPECT_GT(engine.audit().NumChecks(), baseline);
  }
  EXPECT_EQ(engine.audit().NumChecks(), baseline);
}

TEST(AuditScopeTest, TwoSameNamedComponentsAuditSeparately) {
  Engine engine;
  Link a(&engine, LinkConfig{}, 1, "twin");
  Link b(&engine, LinkConfig{}, 2, "twin");
  EXPECT_TRUE(engine.audit().Sweep().empty());

  // Corrupt only the second link; the violation must carry the "#2" path.
  std::uint32_t& credits = AuditTestPeer::LinkCredits(b, 0, Channel::kMem);
  const std::uint32_t saved = credits;
  credits = saved + 5;
  const auto violations = engine.audit().Sweep();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].path.find("fabric/link/twin#2/"), std::string::npos)
      << violations[0].path;
  credits = saved;
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

// ---------------------------------------------------------------------------
// Seeded violations, one per audited component.

TEST(SeededViolationTest, EngineEventQueueRecordConservation) {
  Engine engine;
  engine.Schedule(FromNs(10.0), [] {});
  EXPECT_TRUE(engine.audit().Sweep().empty());

  --AuditTestPeer::QueueLive(engine);  // one record allocated but not counted
  const auto violations = engine.audit().Sweep();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].path, "sim/engine/event_queue/record_conservation");

  ++AuditTestPeer::QueueLive(engine);
  EXPECT_TRUE(engine.audit().Sweep().empty());
  engine.Run();
}

TEST(SeededViolationTest, LinkCreditConservation) {
  Engine engine;
  Link link(&engine, LinkConfig{}, 3, "l0");

  std::uint32_t& credits = AuditTestPeer::LinkCredits(link, 0, Channel::kMem);
  const std::uint32_t saved = credits;
  credits = saved + 1;  // more credits than the receiver ever advertised
  EXPECT_TRUE(AnyPathEndsWith(engine.audit().Sweep(),
                              "fabric/link/l0/credit_conservation"));
  credits = saved;
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, LinkFlitConservation) {
  Engine engine;
  Link link(&engine, LinkConfig{}, 3, "l0");

  std::uint64_t& accepted = AuditTestPeer::LinkAccepted(link, 0);
  ++accepted;  // claims a flit that was never queued, sent, or dropped
  EXPECT_TRUE(AnyPathEndsWith(engine.audit().Sweep(),
                              "fabric/link/l0/flit_conservation"));
  --accepted;
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, BridgeFlitConservation) {
  Engine engine;
  BridgeLink bridge(&engine, BridgeConfig{}, /*seed=*/3, "b0");

  // BridgeLink restates the link conservation law under its own audit path,
  // so operators can tell an Ethernet accounting leak from a CXL one.
  std::uint64_t& accepted = AuditTestPeer::LinkAccepted(bridge, 0);
  ++accepted;  // claims a frame that was never queued, sent, or dropped
  EXPECT_TRUE(AnyPathEndsWith(engine.audit().Sweep(),
                              "fabric/bridge/b0/flits_conserved"));
  --accepted;
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, OfiCompletionConservation) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 1;
  cfg.num_faas = 1;
  Cluster cluster(cfg);
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  OfiDomain* ofi = runtime.ofi();
  ASSERT_NE(ofi, nullptr);

  CompletionQueue cq;
  Endpoint* ep0 = ofi->CreateEndpoint(cluster.host(0)->id(), runtime.host_agent(0), &cq, "ep0");
  Endpoint* ep1 = ofi->CreateEndpoint(cluster.host(1)->id(), runtime.host_agent(1), &cq, "ep1");
  const MemRegion src = ofi->RegisterMemory(cluster.fam(0)->id(), 0x0000, 4096);
  const MemRegion dst = ofi->RegisterMemory(cluster.fam(0)->id(), 0x4000, 4096);
  ep1->PostRecv(7, dst, 1);
  ep0->PostSend(cluster.host(1)->id(), 7, src, 2);
  cluster.engine().Run();
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());

  std::uint64_t& completions = AuditTestPeer::OfiCompletions(*ofi);
  ++completions;  // a completion retired for an op that was never posted
  EXPECT_TRUE(AnyPathEndsWith(cluster.engine().audit().Sweep(),
                              "core/ofi/completions_conserved"));
  --completions;
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

// One switch, an arbiter adapter, and two client adapters — the same shape
// the runtime provisions (mirrors core_arbiter_test.cc).
struct ArbiterRig {
  explicit ArbiterRig(ArbiterConfig arb_cfg = ArbiterConfig{}) : fabric(&engine, 11) {
    AdapterConfig lean;
    lean.request_proc_latency = FromNs(20);
    lean.response_proc_latency = FromNs(20);
    sw = fabric.AddSwitch(SwitchConfig{}, "sw");
    auto* arb_adapter = fabric.AddHostAdapter(lean, "arb");
    fabric.Connect(sw, arb_adapter, LinkConfig{});
    for (int i = 0; i < 2; ++i) {
      client_adapters[i] = fabric.AddHostAdapter(lean, i == 0 ? "cli0" : "cli1");
      fabric.Connect(sw, client_adapters[i], LinkConfig{});
    }
    fabric.ConfigureRouting();

    arb_dispatcher = std::make_unique<MessageDispatcher>(arb_adapter);
    arbiter = std::make_unique<FabricArbiter>(&engine, arb_cfg, arb_dispatcher.get());
    for (int i = 0; i < 2; ++i) {
      client_dispatchers[i] = std::make_unique<MessageDispatcher>(client_adapters[i]);
      clients[i] = std::make_unique<ArbiterClient>(&engine, arb_cfg,
                                                  client_dispatchers[i].get(),
                                                  arbiter->fabric_id());
    }
  }

  Engine engine;
  FabricInterconnect fabric;
  FabricSwitch* sw;
  HostAdapter* client_adapters[2];
  std::unique_ptr<MessageDispatcher> arb_dispatcher;
  std::unique_ptr<FabricArbiter> arbiter;
  std::unique_ptr<MessageDispatcher> client_dispatchers[2];
  std::unique_ptr<ArbiterClient> clients[2];
};

TEST(SeededViolationTest, ArbiterReservedAccounting) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);
  double granted = -1.0;
  rig.clients[0]->Reserve(res, 4000.0, [&](double g) { granted = g; });
  rig.engine.Run();
  ASSERT_GT(granted, 0.0);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  double& cache = AuditTestPeer::ArbiterReservedCache(*rig.arbiter, res);
  const double saved = cache;
  cache = saved + 123.0;  // shadow accounting drifts off the lease map
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(),
                              "core/arbiter/reserved_accounting"));
  cache = saved;
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, ArbiterQosClassAccounting) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);
  double granted = -1.0;
  rig.clients[0]->Reserve(res, 4000.0, /*tenant=*/3, QosClass::kGuaranteed,
                          [&](double g) { granted = g; });
  rig.engine.Run();
  ASSERT_GT(granted, 0.0);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  double& cache =
      AuditTestPeer::ArbiterClassReservedCache(*rig.arbiter, res, QosClass::kGuaranteed);
  const double saved = cache;
  cache = saved + 77.0;  // per-class shadow drifts off the lease map
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(),
                              "core/arbiter/qos/class_accounting"));
  cache = saved;
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, ArbiterQosTenantAccounting) {
  ArbiterRig rig;
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);
  double granted = -1.0;
  rig.clients[0]->Reserve(res, 4000.0, /*tenant=*/3, QosClass::kBurstable,
                          [&](double g) { granted = g; });
  rig.engine.Run();
  ASSERT_GT(granted, 0.0);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  double& cache = AuditTestPeer::ArbiterTenantReservedCache(*rig.arbiter, res, 3);
  const double saved = cache;
  cache = saved - 1.0;  // per-tenant shadow undercounts the tenant's lease
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(),
                              "core/arbiter/qos/tenant_accounting"));
  cache = saved;
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  // A phantom tenant in the shadow map (no lease behind it) must also trip.
  AuditTestPeer::ArbiterTenantReservedCache(*rig.arbiter, res, 99) = 50.0;
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(),
                              "core/arbiter/qos/tenant_accounting"));
  AuditTestPeer::ArbiterTenantReservedCache(*rig.arbiter, res, 99) = 0.0;
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, ArbiterQosTenantBudgetCeiling) {
  ArbiterConfig cfg;
  cfg.qos[static_cast<int>(QosClass::kGuaranteed)].tenant_budget_mbps = 3000.0;
  ArbiterRig rig(cfg);
  const PbrId res = rig.client_adapters[1]->id();
  rig.arbiter->RegisterResource(res, 8000.0);
  double granted = -1.0;
  rig.clients[0]->Reserve(res, 8000.0, /*tenant=*/7, QosClass::kGuaranteed,
                          [&](double g) { granted = g; });
  rig.engine.Run();
  ASSERT_DOUBLE_EQ(granted, 3000.0);  // clipped to the budget
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  // Push the lease past the budget as a buggy grant path would.
  AuditTestPeer::ArbiterBumpLease(*rig.arbiter, res, rig.client_adapters[0]->id(),
                                  /*tenant=*/7, +1000.0);
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(),
                              "core/arbiter/qos/tenant_budget_ceiling"));
  AuditTestPeer::ArbiterBumpLease(*rig.arbiter, res, rig.client_adapters[0]->id(),
                                  /*tenant=*/7, -1000.0);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

TEST(SeededViolationTest, AdapterMshrDeadline) {
  ArbiterRig rig;
  // Make "ancient" unambiguous: run past the default MSHR timeout.
  rig.engine.RunUntil(FromUs(400.0));
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());

  AuditTestPeer::SeedStaleMshr(*rig.client_adapters[0], /*txn_id=*/987654321u);
  EXPECT_TRUE(AnyPathEndsWith(rig.engine.audit().Sweep(), "cli0/mshr_deadline"));
  AuditTestPeer::EraseMshr(*rig.client_adapters[0], 987654321u);
  EXPECT_TRUE(rig.engine.audit().Sweep().empty());
}

// One host + one FAM runtime: gives a live heap and eTrans engine wired the
// way production code wires them.
struct RuntimeRig {
  RuntimeRig() : cluster([] {
        ClusterConfig cfg;
        cfg.num_hosts = 1;
        cfg.num_fams = 1;
        cfg.num_faas = 0;
        return cfg;
      }()) {
    RuntimeOptions opts;
    opts.heap_local_bytes = 1 << 20;
    runtime = std::make_unique<UniFabricRuntime>(&cluster, opts);
  }

  Cluster cluster;
  std::unique_ptr<UniFabricRuntime> runtime;
};

TEST(SeededViolationTest, HeapTierOccupancy) {
  RuntimeRig rig;
  UnifiedHeap* heap = rig.runtime->heap(0);
  ASSERT_NE(heap->Allocate(4096), kInvalidObject);
  rig.cluster.engine().Run();
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());

  std::uint64_t& used = AuditTestPeer::HeapTierUsed(*heap, 0);
  used += 64;  // bytes charged to the tier with no object or free block behind them
  EXPECT_TRUE(AnyPathEndsWith(rig.cluster.engine().audit().Sweep(),
                              "core/heap/tier_occupancy"));
  used -= 64;
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());
}

TEST(SeededViolationTest, ETransTerminalExactlyOnce) {
  RuntimeRig rig;
  ETransEngine* etrans = rig.runtime->etrans();
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());

  std::uint64_t& doubles = AuditTestPeer::ETransDoubleTerminals(*etrans);
  ++doubles;  // an attempt resolved after its transfer was already terminal
  EXPECT_TRUE(AnyPathEndsWith(rig.cluster.engine().audit().Sweep(),
                              "core/etrans/engine/terminal_exactly_once"));
  --doubles;
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());
}

TEST(SeededViolationTest, TenantCompletionsConserved) {
  RuntimeRig rig;
  ScenarioSpec spec = ScenarioSpec::Parse(
      "scenario audit\n"
      "seed 7\n"
      "horizon_us 50\n"
      "class name=bg qos=best_effort tenants=2 arrival=poisson rate_ops_s=100000 "
      "bytes=4096 mix=heap_read:1,heap_write:1\n");
  ASSERT_TRUE(spec.errors.empty());
  TenantEngine* tenants = rig.runtime->AttachTenants(spec);
  tenants->Start();
  rig.cluster.engine().Run();
  ASSERT_GT(tenants->issued(), 0u);
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());

  std::uint64_t& in_flight = AuditTestPeer::TenantInFlight(*tenants);
  ++in_flight;  // a completion vanished (or an issue was double-counted)
  EXPECT_TRUE(AnyPathEndsWith(rig.cluster.engine().audit().Sweep(),
                              "core/tenant/completions_conserved"));
  --in_flight;
  EXPECT_TRUE(rig.cluster.engine().audit().Sweep().empty());
}

// AuditNow is the fail-fast path: any violation must abort with the
// component path in the message.
TEST(AuditDeathTest, AuditNowAbortsOnViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine;
        engine.Schedule(FromNs(10.0), [] {});
        --AuditTestPeer::QueueLive(engine);
        engine.AuditNow();
      },
      "INVARIANT VIOLATION.*sim/engine/event_queue/record_conservation");
}

// ---------------------------------------------------------------------------
// Run-digest determinism.

std::uint64_t DigestOf(int events, Tick spacing) {
  Engine engine;
  engine.SetAuditCadence(1);
  for (int i = 0; i < events; ++i) {
    engine.Schedule(static_cast<Tick>(i) * spacing, [] {});
  }
  engine.Run();
  return engine.digest().value();
}

TEST(RunDigestTest, IdenticalWorkloadsProduceIdenticalDigests) {
  EXPECT_EQ(DigestOf(16, FromNs(5.0)), DigestOf(16, FromNs(5.0)));
}

TEST(RunDigestTest, DifferentWorkloadsProduceDifferentDigests) {
  const std::uint64_t base = DigestOf(16, FromNs(5.0));
  EXPECT_NE(base, DigestOf(16, FromNs(7.0)));  // same count, different ticks
  EXPECT_NE(base, DigestOf(17, FromNs(5.0)));  // one extra event
}

TEST(RunDigestTest, DisabledAuditLeavesDigestAtOffsetBasis) {
  Engine engine;
  engine.SetAuditCadence(0);  // override any ambient UNIFAB_AUDIT setting
  engine.Schedule(FromNs(5.0), [] {});
  engine.Run();
  EXPECT_EQ(engine.digest().value(), RunDigest::kOffsetBasis);
}

TEST(RunDigestTest, FoldIsOrderSensitive) {
  RunDigest a;
  RunDigest b;
  a.Fold(1);
  a.Fold(2);
  b.Fold(2);
  b.Fold(1);
  EXPECT_NE(a.value(), b.value());
  b.Reset();
  b.Fold(1);
  b.Fold(2);
  EXPECT_EQ(a.value(), b.value());
}

// ---------------------------------------------------------------------------
// Regression: Summary non-finite handling (NaN poisoned sort's ordering).

TEST(SummaryRegressionTest, NonFiniteSamplesDroppedAndCounted) {
  Summary s;
  s.Add(1.0);
  s.Add(std::numeric_limits<double>::quiet_NaN());
  s.Add(std::numeric_limits<double>::infinity());
  s.Add(-std::numeric_limits<double>::infinity());
  s.Add(3.0);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_EQ(s.NonFiniteDropped(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  s.Clear();
  EXPECT_EQ(s.NonFiniteDropped(), 0u);
}

TEST(SummaryRegressionTest, EmptySummaryReportsZeroSentinels) {
  const Summary s;
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.P99(), 0.0);
}

// ---------------------------------------------------------------------------
// Regression: heap lazy-epoch catch-up decays once per elapsed epoch.

TEST(HeapEpochRegressionTest, IdleStretchDecaysOncePerElapsedEpoch) {
  RuntimeRig rig;
  UnifiedHeap* heap = rig.runtime->heap(0);
  Engine& engine = rig.cluster.engine();
  const Tick len = HeapConfig{}.epoch_length;

  const ObjectId id = heap->Allocate(64, 1);
  ASSERT_NE(id, kInvalidObject);
  for (int i = 0; i < 10; ++i) {
    heap->Read(id, nullptr);
  }
  engine.Run();
  heap->RunEpoch();
  const double t1 = heap->Info(id).temperature;
  EXPECT_DOUBLE_EQ(t1, 5.0);  // alpha=0.5 over 10 accesses

  // Sleep through 5 full epochs with zero accesses, then run one epoch:
  // catch-up must fold all 5 (4 idle decays + the final EWMA fold), not 1.
  const std::uint64_t epochs_before = heap->stats().epochs;
  engine.RunUntil(engine.Now() + 5 * len);
  heap->RunEpoch();
  EXPECT_EQ(heap->stats().epochs - epochs_before, 5u);
  const double expect = t1 * std::pow(0.5, 4) * 0.5;  // (1-a)^4 idle, then (1-a)*t
  EXPECT_NEAR(heap->Info(id).temperature, expect, 1e-12);
}

// ---------------------------------------------------------------------------
// Regression: zero advertised credits is a config error, and Recover()
// refills exactly the advertised pool.

TEST(LinkCreditRegressionDeathTest, ZeroAdvertisedCreditsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine;
        LinkConfig cfg;
        cfg.credits_per_vc = 1;
        cfg.credit_overcommit = 0.25;  // 1 * 0.25 rounds to zero credits
        Link link(&engine, cfg, 1, "bad");
      },
      "rounds to zero advertised credits");
}

TEST(LinkCreditRegressionTest, RecoverRefillsExactlyAdvertisedCredits) {
  Engine engine;
  LinkConfig cfg;
  cfg.credits_per_vc = 8;
  cfg.credit_overcommit = 1.5;  // advertised = 12
  Link link(&engine, cfg, 1, "l0");
  EXPECT_EQ(link.end(0).CreditsAvailable(Channel::kMem), 12u);

  link.Fail();
  link.Recover();
  EXPECT_EQ(link.end(0).CreditsAvailable(Channel::kMem), 12u);
  EXPECT_EQ(link.end(1).CreditsAvailable(Channel::kMem), 12u);
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
