// ShardedEngine: deterministic parallel DES under conservative lookahead.
//
// The contract under test (DESIGN.md §6e): the shard partition is part of
// the topology, the worker-thread count is not — so a multi-worker run must
// reproduce the single-worker run bit-for-bit (merged RunDigest, fired
// counts, cross-shard traffic). Plus the boundary protocols: canonical
// (tick, source shard, sequence) mailbox merges, barrier-ordered global
// events, refused cross-shard cancels, and the late-schedule clamp.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/time.h"

namespace unifab {
namespace {

constexpr Tick kLookahead = 1000;

// A closed-loop workload over four shards: every shard runs a local event
// chain, every third hop posts a cross-shard event onto the next shard
// (delay >= lookahead, as the component contract requires), and every
// seventh hop stages a global. Pure arithmetic — no wall clock, no rng —
// so two instances are bit-identical by construction.
struct Workload {
  ShardedEngine group;
  // Hops happen on every shard, concurrently when workers > 1; globals fire
  // at barriers with all shards parked, but stay atomic for symmetry.
  std::atomic<std::uint64_t> hops{0};
  std::atomic<std::uint64_t> globals{0};

  explicit Workload(std::uint32_t workers) : group(MakeOptions(workers)) {
    group.AddShard("a");
    group.AddShard("b");
    group.AddShard("c");
    group.SetLookahead(kLookahead);
    group.SetAuditCadence(64);
    for (std::uint32_t s = 0; s < 4; ++s) {
      Seed(s, /*depth=*/0);
    }
  }

  static ShardedEngine::Options MakeOptions(std::uint32_t workers) {
    ShardedEngine::Options options;
    options.workers = workers;
    options.seed = 0xFABu;
    return options;
  }

  void Seed(std::uint32_t s, int depth) {
    group.shard(s).Schedule(10 + 7 * s, [this, s, depth] { Hop(s, depth); });
  }

  void Hop(std::uint32_t s, int depth) {
    ++hops;
    if (depth >= 40) {
      return;
    }
    Engine& self = group.shard(s);
    if (depth % 3 == 2) {
      // Cross-domain: schedule on the neighbor's engine from inside our own
      // event; the engine facade routes this through the outbox mailbox.
      group.shard((s + 1) % 4).Schedule(kLookahead + 13 + s, [this, s, depth] {
        Hop((s + 1) % 4, depth + 1);
      });
    } else {
      self.Schedule(21 + 5 * s, [this, s, depth] { Hop(s, depth + 1); });
    }
    if (depth % 7 == 6) {
      self.ScheduleGlobal(kLookahead, [this] { ++globals; });
    }
  }
};

TEST(ShardedEngineTest, DigestInvariantAcrossWorkerCounts) {
  Workload base(1);
  const std::size_t fired = base.group.Run();
  ASSERT_GT(base.hops.load(), 100u);
  ASSERT_GT(base.group.cross_events(), 0u);
  ASSERT_GT(base.globals.load(), 0u);

  for (std::uint32_t workers : {2u, 4u}) {
    Workload par(workers);
    EXPECT_EQ(par.group.Run(), fired) << workers << " workers";
    EXPECT_EQ(par.group.MergedDigest(), base.group.MergedDigest())
        << workers << " workers";
    EXPECT_EQ(par.hops.load(), base.hops.load());
    EXPECT_EQ(par.globals.load(), base.globals.load());
    EXPECT_EQ(par.group.cross_events(), base.group.cross_events());
    EXPECT_EQ(par.group.TotalFired(), base.group.TotalFired());
  }
}

TEST(ShardedEngineTest, SoloGroupMatchesStandaloneEngine) {
  // A one-shard group must behave exactly like the classic engine — same
  // event ids, same digest — because every deferral path short-circuits.
  auto drive = [](Engine& eng) {
    eng.SetAuditCadence(1);
    for (int i = 0; i < 32; ++i) {
      eng.Schedule(5 + 3 * i, [&eng, i] {
        if (i % 2 == 0) {
          eng.Schedule(11, [] {});
        }
        eng.ScheduleGlobal(7, [] {});
      });
    }
    return eng.Run();
  };

  Engine standalone;
  const std::size_t fired = drive(standalone);

  ShardedEngine solo;
  EXPECT_EQ(drive(solo.root()), fired);
  // The root shard fired the same (tick, id) stream: its raw digest is the
  // standalone digest. (MergedDigest re-folds per-shard digests and counts,
  // so it is only comparable between ShardedEngine instances.)
  EXPECT_EQ(solo.root().digest().value(), standalone.digest().value());
}

TEST(ShardedEngineTest, CrossShardEventsMergeInCanonicalOrder) {
  // Shards 1 and 2 post onto the root at colliding ticks from inside their
  // own windows. The mailbox merge must order by (tick, source shard,
  // staging sequence) regardless of staging interleaving.
  ShardedEngine group;
  group.AddShard("a");
  group.AddShard("b");
  group.SetLookahead(kLookahead);
  Engine& root = group.root();

  std::vector<int> order;
  const Tick t0 = 100;
  const Tick when = t0 + kLookahead + 50;
  // Shard 2 stages first in wall time terms (lower tick event), but shard
  // 1's entries must still land first at the shared tick.
  group.shard(2).ScheduleAt(t0 - 1, [&group, &root, &order, when] {
    root.ScheduleAt(when, [&order] { order.push_back(20); });
    root.ScheduleAt(when, [&order] { order.push_back(21); });
    root.ScheduleAt(when - 1, [&order] { order.push_back(19); });
  });
  group.shard(1).ScheduleAt(t0, [&root, &order, when] {
    root.ScheduleAt(when, [&order] { order.push_back(10); });
    root.ScheduleAt(when, [&order] { order.push_back(11); });
  });

  group.Run();
  EXPECT_EQ(order, (std::vector<int>{19, 10, 11, 20, 21}));
}

TEST(ShardedEngineTest, GlobalEventsFireAtBarrierWithAllShardsParked) {
  ShardedEngine group;
  group.AddShard("a");
  group.AddShard("b");
  group.SetLookahead(kLookahead);

  std::vector<int> order;
  const Tick when = 500;
  // Both shards stage a global for the same tick; staging-shard order must
  // break the tie, and every shard clock must have been pulled up to the
  // global's tick before it runs (the callback may touch any domain).
  group.shard(2).ScheduleAt(10, [&group, &order, when] {
    Engine::CurrentShard()->ScheduleGlobalAt(when, [&group, &order, when] {
      EXPECT_FALSE(Engine::InShardedWindow());
      for (std::size_t s = 0; s < group.num_shards(); ++s) {
        EXPECT_EQ(group.shard(s).Now(), when) << "shard " << s;
      }
      order.push_back(2);
    });
  });
  group.shard(1).ScheduleAt(10, [&order, when] {
    Engine::CurrentShard()->ScheduleGlobalAt(when, [&order] { order.push_back(1); });
  });

  group.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardedEngineTest, RootRunDrivesTheWholeGroup) {
  // Drivers keep the classic facade: root().RunUntil must fire events living
  // on every shard and park every clock at the deadline.
  ShardedEngine group;
  group.AddShard("a");
  group.SetLookahead(kLookahead);

  // Both events can share one lookahead window, i.e. run concurrently.
  std::atomic<int> fired{0};
  group.shard(1).ScheduleAt(250, [&fired] { ++fired; });
  group.root().ScheduleAt(100, [&fired] { ++fired; });

  group.root().RunUntil(1000);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(group.root().Now(), Tick{1000});
  EXPECT_EQ(group.shard(1).Now(), Tick{1000});
  EXPECT_TRUE(group.Idle());
}

// --- Satellite: ScheduleAt into the past clamps, counts, and audits. ------

TEST(ShardedEngineTest, LateScheduleClampsToNowAndFlagsAuditor) {
  Engine engine;
  Tick fired_at = 0;
  engine.Schedule(1000, [&engine, &fired_at] {
    // A stale callback computing an absolute time from cached state lands
    // behind the clock; the engine must clamp instead of corrupting tick
    // order (and must never fire the event "in the past").
    engine.ScheduleAt(250, [&engine, &fired_at] { fired_at = engine.Now(); });
  });
  engine.Run();

  EXPECT_EQ(fired_at, Tick{1000});
  EXPECT_EQ(engine.late_schedules(), 1u);

  const auto violations = engine.audit().Sweep();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].path, "sim/engine/late_schedules");
}

TEST(ShardedEngineTest, OnTimeSchedulesDoNotTripTheLateCounter) {
  Engine engine;
  engine.Schedule(10, [&engine] { engine.ScheduleAt(engine.Now(), [] {}); });
  engine.Run();
  EXPECT_EQ(engine.late_schedules(), 0u);
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

// --- Satellite: cross-shard Cancel semantics. -----------------------------

TEST(ShardedEngineTest, CrossShardCancelAfterFireReturnsFalseOnce) {
  ShardedEngine group;
  group.AddShard("a");
  group.SetLookahead(kLookahead);
  Engine& a = group.shard(1);

  // Mint an id on shard 1 from a parked context (wiring time).
  bool fired = false;
  const EventId id = a.ScheduleAt(100, [&fired] { fired = true; });
  ASSERT_NE(id, kInvalidEventId);

  // Let it fire, then try to cancel it from an event running on shard 0:
  // cross-shard cancellation is refused (the foreign queue may be running
  // concurrently), and the already-recycled record must stay recycled.
  bool refused = false;
  group.root().ScheduleAt(100 + kLookahead + 1, [&a, &refused, id] {
    refused = !a.Cancel(id);
  });
  group.Run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(refused);

  // Parked-context cancel of the stale id: fired already, so false again.
  EXPECT_FALSE(a.Cancel(id));

  // The record was freed exactly once: the queue's record-conservation
  // invariant (live + free == allocated) still holds, and a new event that
  // reuses the slot is not cancellable through the stale generation tag.
  bool reused_fired = false;
  const EventId reused = a.ScheduleAt(5000, [&reused_fired] { reused_fired = true; });
  ASSERT_NE(reused, kInvalidEventId);
  EXPECT_FALSE(a.Cancel(id));
  EXPECT_TRUE(group.audit().Sweep().empty());
  group.Run();
  EXPECT_TRUE(reused_fired);
  EXPECT_TRUE(group.audit().Sweep().empty());
}

TEST(ShardedEngineTest, SameShardCancelStillWorksInsideAGroup) {
  ShardedEngine group;
  group.AddShard("a");
  bool fired = false;
  Engine& a = group.shard(1);
  const EventId id = a.ScheduleAt(100, [&fired] { fired = true; });
  EXPECT_TRUE(a.Cancel(id));
  group.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(group.audit().Sweep().empty());
}

// --- Lookahead contract violations abort loudly. --------------------------

TEST(ShardedEngineDeathTest, LookaheadViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardedEngine group;
        group.AddShard("a");
        group.SetLookahead(kLookahead);
        Engine& root = group.root();
        // Scheduling inside the current window on a foreign shard breaks
        // the conservative-lookahead contract; the harvest must abort.
        group.shard(1).ScheduleAt(100, [&root] { root.ScheduleAt(150, [] {}); });
        group.Run();
      },
      "lookahead violation");
}

}  // namespace
}  // namespace unifab
