// Node-replication data structure tests over the CC-NUMA coherence
// substrate.

#include "src/core/replicated.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/sim/random.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

struct Counter {
  std::int64_t value = 0;
};

struct AddOp {
  std::int64_t delta;
};

// Three hosts + a CC-NUMA home node on one switch.
struct Rig {
  Rig() : fabric(&engine, 41) {
    auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "fam");
    AdapterConfig fea_cfg = OmegaEndpointAdapter();
    fea_cfg.request_proc_latency = FromNs(50);
    auto* fea = fabric.AddEndpointAdapter(fea_cfg, "fea", dram.get());
    fabric.Connect(sw, fea, OmegaLink());
    fea_dispatch = std::make_unique<MessageDispatcher>(fea);
    CcNumaConfig cfg;
    dir = std::make_unique<DirectoryController>(&engine, cfg, fea_dispatch.get(), dram.get(),
                                                "dir");
    for (int i = 0; i < 3; ++i) {
      AdapterConfig fha = OmegaHostAdapter();
      fha.request_proc_latency = FromNs(50);
      fha.response_proc_latency = FromNs(50);
      auto* adapter = fabric.AddHostAdapter(fha, "h" + std::to_string(i));
      fabric.Connect(sw, adapter, OmegaLink());
      dispatch[i] = std::make_unique<MessageDispatcher>(adapter);
      port[i] = std::make_unique<CcNumaPort>(&engine, cfg, dispatch[i].get(), dir.get(),
                                             "p" + std::to_string(i));
    }
    fabric.ConfigureRouting();
  }

  Engine engine;
  FabricInterconnect fabric;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<MessageDispatcher> fea_dispatch;
  std::unique_ptr<DirectoryController> dir;
  std::unique_ptr<MessageDispatcher> dispatch[3];
  std::unique_ptr<CcNumaPort> port[3];
};

NodeReplicated<Counter, AddOp>::ApplyFn Apply() {
  return [](Counter& c, const AddOp& op) { c.value += op.delta; };
}

TEST(NodeReplicatedTest, SingleReplicaExecutesAndReads) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 128, Apply());
  const int r0 = nr.AddReplica(rig.port[0].get());

  nr.Execute(r0, AddOp{5});
  rig.engine.Run();
  std::int64_t got = -1;
  nr.Read(r0, [&](const Counter& c) { got = c.value; });
  rig.engine.Run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(nr.LogSize(), 1u);
}

TEST(NodeReplicatedTest, RemoteWritesBecomeVisibleAfterSync) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 128, Apply());
  const int r0 = nr.AddReplica(rig.port[0].get());
  const int r1 = nr.AddReplica(rig.port[1].get());

  nr.Execute(r0, AddOp{3});
  nr.Execute(r0, AddOp{4});
  rig.engine.Run();
  // Replica 1 hasn't synced yet.
  EXPECT_EQ(nr.UnsafePeek(r1).value, 0);

  std::int64_t got = -1;
  nr.Read(r1, [&](const Counter& c) { got = c.value; });
  rig.engine.Run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(nr.stats().entries_replayed, 4u);  // 2 at writer + 2 at reader
}

TEST(NodeReplicatedTest, InterleavedWritersConvergeEverywhere) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 128, Apply());
  int reps[3];
  for (int i = 0; i < 3; ++i) {
    reps[i] = nr.AddReplica(rig.port[static_cast<std::size_t>(i)].get());
  }
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      nr.Execute(reps[i], AddOp{i + 1});
    }
  }
  rig.engine.Run();
  for (int i = 0; i < 3; ++i) {
    std::int64_t got = -1;
    nr.Read(reps[i], [&](const Counter& c) { got = c.value; });
    rig.engine.Run();
    EXPECT_EQ(got, 4 * (1 + 2 + 3)) << "replica " << i;
  }
  EXPECT_EQ(nr.LogSize(), 12u);
}

TEST(NodeReplicatedTest, SyncFetchOnlyWhenRemoteWriterInvalidatesTail) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 128, Apply());
  const int r0 = nr.AddReplica(rig.port[0].get());
  const int r1 = nr.AddReplica(rig.port[1].get());

  nr.Execute(r0, AddOp{1});
  rig.engine.Run();

  // r1's first read never held the tail: one sync fetch.
  nr.Read(r1, [](const Counter&) {});
  rig.engine.Run();
  EXPECT_EQ(nr.stats().sync_fetches, 1u);

  // Re-reads with no intervening writer keep the tail Shared in r1's port.
  nr.Read(r1, [](const Counter&) {});
  nr.Read(r1, [](const Counter&) {});
  rig.engine.Run();
  EXPECT_EQ(nr.stats().sync_fetches, 1u);

  // A remote append write-invalidates the tail; the next read pays again.
  nr.Execute(r0, AddOp{5});
  rig.engine.Run();
  nr.Read(r1, [](const Counter&) {});
  rig.engine.Run();
  EXPECT_EQ(nr.stats().sync_fetches, 2u);
}

TEST(NodeReplicatedTest, ReadReplaysOnlyMissingEntries) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 128, Apply());
  const int r0 = nr.AddReplica(rig.port[0].get());
  const int r1 = nr.AddReplica(rig.port[1].get());

  for (int i = 0; i < 4; ++i) {
    nr.Execute(r0, AddOp{1});
  }
  rig.engine.Run();
  const std::uint64_t after_writes = nr.stats().entries_replayed;  // writer self-syncs

  std::int64_t seen = -1;
  nr.Read(r1, [&](const Counter& c) { seen = c.value; });
  rig.engine.Run();
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(nr.stats().entries_replayed, after_writes + 4);

  // Two more ops: the re-sync replays exactly the missing suffix, never the
  // whole log from scratch.
  nr.Execute(r0, AddOp{1});
  nr.Execute(r0, AddOp{1});
  rig.engine.Run();
  const std::uint64_t mid = nr.stats().entries_replayed;
  nr.Read(r1, [&](const Counter& c) { seen = c.value; });
  rig.engine.Run();
  EXPECT_EQ(seen, 6);
  EXPECT_EQ(nr.stats().entries_replayed, mid + 2);
}

TEST(NodeReplicatedTest, ReadMostlyWorkloadHitsLocalReplica) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 128, Apply());
  const int r0 = nr.AddReplica(rig.port[0].get());
  nr.Execute(r0, AddOp{1});
  rig.engine.Run();

  // Repeated reads with no intervening writes: the tail block stays cached,
  // so only the first read pays a fetch.
  Summary lat;
  for (int i = 0; i < 20; ++i) {
    const Tick t0 = rig.engine.Now();
    nr.Read(r0, [&](const Counter&) { lat.Add(ToNs(rig.engine.Now() - t0)); });
    rig.engine.Run();
  }
  EXPECT_LT(lat.Percentile(50), 100.0);  // port-cache hit territory
  EXPECT_EQ(nr.stats().sync_fetches, 0u);  // writer already held the tail
}

TEST(NodeReplicatedTest, ReadsBeatCentralizedBaselineUnderSharing) {
  Rig rig;
  NodeReplicated<Counter, AddOp> nr(&rig.engine, 0x10000, 256, Apply());
  // The centralized structure spans 16 coherence blocks (a realistic 1 KiB
  // object); every read scans it, every remote write invalidates part of it.
  CentralizedShared<Counter, AddOp> central(&rig.engine, 0x80000, Apply(),
                                            /*state_blocks=*/16);
  const int r0 = nr.AddReplica(rig.port[0].get());
  const int r1 = nr.AddReplica(rig.port[1].get());
  central.AddHost(rig.port[0].get());
  const int c1 = central.AddHost(rig.port[1].get());

  // One write from host 0, then many reads from host 1.
  nr.Execute(r0, AddOp{1});
  central.Execute(0, AddOp{1});
  rig.engine.Run();

  for (int i = 0; i < 30; ++i) {
    nr.Read(r1, [](const Counter&) {});
    rig.engine.Run();
    central.Read(c1, [](const Counter&) {});
    rig.engine.Run();
    if (i % 10 == 0) {
      // Periodic writes from host 0 invalidate readers in BOTH schemes.
      nr.Execute(r0, AddOp{1});
      central.Execute(0, AddOp{1});
      rig.engine.Run();
    }
  }
  // NR reads replay at most a couple of compact log entries; centralized
  // reads walk all 16 blocks every time.
  EXPECT_LT(nr.stats().read_latency_ns.Mean(), central.stats().read_latency_ns.Mean());
  // And both agree on the value.
  std::int64_t nr_val = -1;
  nr.Read(r1, [&](const Counter& c) { nr_val = c.value; });
  rig.engine.Run();
  std::int64_t c_val = -2;
  central.Read(c1, [&](const Counter& c) { c_val = c.value; });
  rig.engine.Run();
  EXPECT_EQ(nr_val, c_val);
}

// Replay-race regression: a reader's entry fetch can still be in flight when
// another sync (or the replica's own append) applies that index. The stale
// fetch used to replay from its captured index — applying an entry twice /
// out of order — which the replay-cursor assert now traps; the fixed path
// re-reads the cursor, counts the race, and applies exactly once.
TEST(NodeReplicatedTest, ConcurrentReadsRacingAppendsApplyExactlyOnce) {
  Rig rig;
  // Every op carries a unique delta so each replica's application history is
  // recoverable from its counter sequence.
  struct Seen {
    std::int64_t value = 0;
    std::vector<std::int64_t> order;
  };
  NodeReplicated<Seen, AddOp> nr(&rig.engine, 0x10000, 4096, [](Seen& s, const AddOp& op) {
    s.value += op.delta;
    s.order.push_back(op.delta);
  });
  int reps[3];
  for (int i = 0; i < 3; ++i) {
    reps[i] = nr.AddReplica(rig.port[static_cast<std::size_t>(i)].get());
  }

  Rng rng(271828);
  std::int64_t next_delta = 1;
  std::int64_t issued_sum = 0;
  int issued_ops = 0;
  // Interleave appends and (deliberately overlapping) reads without draining
  // the engine, so several syncs per replica are in flight at once.
  for (int iter = 0; iter < 400; ++iter) {
    const int r = reps[rng.NextBelow(3)];
    if (rng.NextDouble() < 0.4) {
      nr.Execute(r, AddOp{next_delta});
      issued_sum += next_delta;
      ++next_delta;
      ++issued_ops;
    } else {
      nr.Read(r, [](const Seen&) {});
      if (rng.NextDouble() < 0.5) {
        nr.Read(r, [](const Seen&) {});  // back-to-back: two syncs in flight
      }
    }
    if (rng.NextDouble() < 0.25) {
      rig.engine.RunUntil(rig.engine.Now() + FromNs(rng.NextInRange(50, 2000)));
    }
  }
  rig.engine.Run();

  EXPECT_EQ(nr.LogSize(), static_cast<std::uint64_t>(issued_ops));
  // Final sync on every replica, then check exactly-once in-order replay:
  // all application histories must be the identical log-order sequence.
  std::vector<std::int64_t> reference;
  for (int i = 0; i < 3; ++i) {
    Seen got;
    nr.Read(reps[i], [&](const Seen& s) { got = s; });
    rig.engine.Run();
    EXPECT_EQ(nr.Synced(reps[i]), nr.LogSize()) << "replica " << i;
    EXPECT_EQ(got.value, issued_sum) << "replica " << i;
    ASSERT_EQ(got.order.size(), static_cast<std::size_t>(issued_ops)) << "replica " << i;
    if (i == 0) {
      reference = got.order;
    } else {
      EXPECT_EQ(got.order, reference) << "replica " << i << " applied out of order";
    }
  }
  // The workload genuinely raced: stale fetches were detected and skipped
  // rather than re-applied.
  EXPECT_GT(nr.stats().sync_races, 0u);
  EXPECT_EQ(nr.stats().entries_replayed,
            3u * static_cast<std::uint64_t>(issued_ops));
}

}  // namespace
}  // namespace unifab
