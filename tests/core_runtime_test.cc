// Integration tests: the full UniFabric runtime wired onto a simulated
// composable infrastructure.

#include "src/core/runtime.h"

#include <gtest/gtest.h>

#include "src/core/uniptr.h"

namespace unifab {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 2;
  cfg.num_faas = 2;
  return cfg;
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : cluster_(SmallCluster()), runtime_(&cluster_, RuntimeOptions{}) {}

  Cluster cluster_;
  UniFabricRuntime runtime_;
};

// --------------------------- Arbiter (DP#4) ------------------------------

TEST_F(RuntimeTest, ArbiterGrantsRequestedBandwidthWhenUncontended) {
  double granted = -1.0;
  runtime_.arbiter_client(0)->Reserve(cluster_.fam(0)->id(), 4000.0,
                                      [&](double g) { granted = g; });
  cluster_.engine().Run();
  EXPECT_DOUBLE_EQ(granted, 4000.0);
  EXPECT_DOUBLE_EQ(runtime_.arbiter()->ReservedOf(cluster_.fam(0)->id()), 4000.0);
}

TEST_F(RuntimeTest, ArbiterSharesCapacityMaxMin) {
  // Both hosts ask for the full capacity; the second must not starve.
  double g0 = -1.0;
  double g1 = -1.0;
  runtime_.arbiter_client(0)->Reserve(cluster_.fam(0)->id(), 8000.0, [&](double g) { g0 = g; });
  runtime_.arbiter_client(1)->Reserve(cluster_.fam(0)->id(), 8000.0, [&](double g) { g1 = g; });
  cluster_.engine().Run();
  EXPECT_DOUBLE_EQ(g0, 8000.0);   // first taker gets everything uncommitted
  EXPECT_DOUBLE_EQ(g1, 4000.0);   // second still receives its fair share
}

TEST_F(RuntimeTest, ArbiterQueryReportsAvailable) {
  double avail = -1.0;
  runtime_.arbiter_client(0)->Query(cluster_.fam(1)->id(), [&](double a) { avail = a; });
  cluster_.engine().Run();
  EXPECT_DOUBLE_EQ(avail, 8000.0);
}

TEST_F(RuntimeTest, ReleaseReturnsBandwidth) {
  runtime_.arbiter_client(0)->Reserve(cluster_.fam(0)->id(), 6000.0, nullptr);
  cluster_.engine().Run();
  runtime_.arbiter_client(0)->Release(cluster_.fam(0)->id(), 6000.0);
  cluster_.engine().Run();
  EXPECT_DOUBLE_EQ(runtime_.arbiter()->ReservedOf(cluster_.fam(0)->id()), 0.0);
}

TEST_F(RuntimeTest, UnknownResourceGrantsZero) {
  double granted = -1.0;
  runtime_.arbiter_client(0)->Reserve(0xBEEF, 100.0, [&](double g) { granted = g; });
  cluster_.engine().Run();
  EXPECT_DOUBLE_EQ(granted, 0.0);
}

// --------------------------- eTrans (DP#1) -------------------------------

TEST_F(RuntimeTest, ImmediateTransferMovesBytes) {
  ETransDescriptor desc;
  desc.src.push_back(Segment{cluster_.host(0)->id(), 0, 64 * 1024});
  desc.dst.push_back(Segment{cluster_.fam(0)->id(), 0, 64 * 1024});
  desc.immediate = true;
  desc.attributes.throttled = false;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), desc);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_EQ(f.Value().bytes, 64u * 1024u);
  EXPECT_EQ(runtime_.etrans()->stats().immediate_transfers, 1u);
}

TEST_F(RuntimeTest, DelegatedTransferRunsOnSourceDomainAgent) {
  // FAM0 -> FAM0 copy: the FAM controller's agent should execute it.
  ETransDescriptor desc;
  desc.src.push_back(Segment{cluster_.fam(0)->id(), 0, 16 * 1024});
  desc.dst.push_back(Segment{cluster_.fam(0)->id(), 1 << 20, 16 * 1024});
  desc.attributes.throttled = false;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), desc);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(runtime_.fam_agent(0)->stats().jobs_executed, 1u);
  EXPECT_EQ(runtime_.host_agent(0)->stats().jobs_executed, 0u);
  EXPECT_EQ(runtime_.etrans()->stats().delegated_transfers, 1u);
}

TEST_F(RuntimeTest, ThrottledTransferAcquiresLease) {
  ETransDescriptor desc;
  desc.src.push_back(Segment{cluster_.host(0)->id(), 0, 256 * 1024});
  desc.dst.push_back(Segment{cluster_.fam(0)->id(), 0, 256 * 1024});
  desc.attributes.throttled = true;
  desc.attributes.request_mbps = 2000.0;

  TransferFuture f = runtime_.etrans()->Submit(runtime_.host_agent(0), desc);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_GE(runtime_.arbiter()->stats().reservations, 1u);
  // Lease released at completion.
  EXPECT_DOUBLE_EQ(runtime_.arbiter()->ReservedOf(cluster_.fam(0)->id()), 0.0);
}

TEST_F(RuntimeTest, ThrottledTransferIsSlowerThanUnthrottled) {
  // 1 MiB at 1000 MB/s should take >= ~1 ms; unthrottled finishes much
  // sooner.
  ETransDescriptor fast;
  fast.src.push_back(Segment{cluster_.host(0)->id(), 0, 1 << 20});
  fast.dst.push_back(Segment{cluster_.fam(0)->id(), 0, 1 << 20});
  fast.immediate = true;
  fast.attributes.throttled = false;
  runtime_.etrans()->Submit(runtime_.host_agent(0), fast);
  cluster_.engine().Run();
  const double fast_us = runtime_.host_agent(0)->stats().job_latency_us.Max();

  ETransDescriptor slow = fast;
  slow.immediate = false;  // delegated path, subject to the arbiter lease
  slow.attributes.throttled = true;
  slow.attributes.request_mbps = 1000.0;
  runtime_.etrans()->Submit(runtime_.host_agent(0), slow);
  cluster_.engine().Run();
  const double slow_us = runtime_.host_agent(0)->stats().job_latency_us.Max();

  EXPECT_GT(slow_us, fast_us);
  EXPECT_GE(slow_us, 1000.0);  // 1 MiB / 1000 MB/s ~ 1048 us
}

// ----------------------- Unified heap (DP#2) -----------------------------

TEST_F(RuntimeTest, AllocatePrefersFastTier) {
  UnifiedHeap* heap = runtime_.heap(0);
  const ObjectId id = heap->Allocate(4096);
  ASSERT_NE(id, kInvalidObject);
  EXPECT_EQ(heap->TierOf(id), 0);
}

TEST_F(RuntimeTest, AllocationSpillsWhenTierFull) {
  UnifiedHeap* heap = runtime_.heap(0);
  // Exhaust tier 0 (1 GiB by default) with 256 KiB objects, then expect
  // spill into tier 1.
  const std::uint32_t kSize = 256 * 1024;
  const int kCount = static_cast<int>((1ULL << 30) / kSize);
  for (int i = 0; i < kCount; ++i) {
    ASSERT_NE(heap->Allocate(kSize), kInvalidObject);
  }
  const ObjectId spilled = heap->Allocate(kSize);
  ASSERT_NE(spilled, kInvalidObject);
  EXPECT_EQ(heap->TierOf(spilled), 1);
}

TEST_F(RuntimeTest, HotObjectPromotesFromFabricTier) {
  UnifiedHeap* heap = runtime_.heap(0);
  const ObjectId id = heap->Allocate(4096, /*tier_hint=*/1);
  ASSERT_EQ(heap->TierOf(id), 1);

  // Hammer the object across several epochs.
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < 50; ++i) {
      heap->Read(id, nullptr);
    }
    cluster_.engine().Run();
    heap->RunEpoch();
    cluster_.engine().Run();
  }
  EXPECT_EQ(heap->TierOf(id), 0);
  EXPECT_GE(heap->stats().promotions, 1u);
}

TEST_F(RuntimeTest, UniPtrRoundTripsValues) {
  struct Record {
    int a;
    double b;
  };
  UnifiedHeap* heap = runtime_.heap(0);
  auto ptr = UniPtr<Record>::Make(heap, Record{7, 2.5});
  ASSERT_TRUE(ptr.valid());

  Record seen{0, 0.0};
  ptr.Read([&](const Record& r) { seen = r; });
  cluster_.engine().Run();
  EXPECT_EQ(seen.a, 7);
  EXPECT_DOUBLE_EQ(seen.b, 2.5);

  ptr.Update([](Record& r) { r.a += 1; });
  cluster_.engine().Run();
  EXPECT_EQ(ptr.Peek().a, 8);
}

// --------------------- Idempotent tasks (DP#3a) --------------------------

TEST_F(RuntimeTest, TaskDagExecutesInDependencyOrder) {
  UnifiedHeap* heap = runtime_.heap(0);
  const ObjectId a = heap->Allocate(1024);
  const ObjectId b = heap->Allocate(1024);

  std::vector<int> order;
  TaskSpec t1;
  t1.name = "producer";
  t1.outputs = {a};
  t1.compute_cost = FromUs(5);
  t1.apply = [&] { order.push_back(1); };
  const TaskId id1 = runtime_.itasks()->Submit(t1);

  TaskSpec t2;
  t2.name = "consumer";
  t2.inputs = {a};
  t2.outputs = {b};
  t2.deps = {id1};
  t2.compute_cost = FromUs(5);
  t2.apply = [&] { order.push_back(2); };
  runtime_.itasks()->Submit(t2);

  bool all_done = false;
  runtime_.itasks()->OnAllComplete([&] { all_done = true; });
  cluster_.engine().Run();

  EXPECT_TRUE(all_done);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(runtime_.itasks()->stats().completed, 2u);
}

TEST_F(RuntimeTest, TaskSurvivesWorkerFailureByReexecution) {
  UnifiedHeap* heap = runtime_.heap(0);
  const ObjectId out = heap->Allocate(1024);

  TaskSpec t;
  t.name = "flaky";
  t.outputs = {out};
  t.compute_cost = FromUs(50);
  runtime_.itasks()->Submit(t);

  bool all_done = false;
  runtime_.itasks()->OnAllComplete([&] { all_done = true; });

  // Kill both FAAs shortly after dispatch; recover one later.
  cluster_.engine().Schedule(FromUs(10), [&] {
    cluster_.faa(0)->Fail();
    cluster_.faa(1)->Fail();
  });
  cluster_.engine().Schedule(FromUs(600), [&] { cluster_.faa(1)->Recover(); });

  cluster_.engine().Run();
  EXPECT_TRUE(all_done);
  EXPECT_GE(runtime_.itasks()->stats().timeouts, 1u);
  EXPECT_GE(runtime_.itasks()->stats().reexecutions, 1u);
}

TEST_F(RuntimeTest, ClobberingSpecIsDetectedAndSnapshotted) {
  UnifiedHeap* heap = runtime_.heap(0);
  const ObjectId x = heap->Allocate(1024);

  TaskSpec t;
  t.name = "in-place";
  t.inputs = {x};
  t.outputs = {x};  // reads and overwrites the same object
  const IdempotenceReport report = AnalyzeIdempotence(t);
  EXPECT_FALSE(report.idempotent);
  ASSERT_EQ(report.clobbered_inputs.size(), 1u);
  EXPECT_EQ(report.clobbered_inputs[0], x);

  runtime_.itasks()->Submit(t);
  cluster_.engine().Run();
  EXPECT_EQ(runtime_.itasks()->stats().snapshots_created, 1u);
  EXPECT_EQ(runtime_.itasks()->stats().completed, 1u);
}

// -------------------- Scalable functions (DP#3b) -------------------------

TEST_F(RuntimeTest, ScalableFunctionHandlesHostInvocation) {
  int handled = 0;
  SFuncSpec spec;
  spec.name = "counter";
  spec.handlers[1] = SFuncHandler{FromUs(2), [&](SFuncContext&) { ++handled; }};
  const FunctionId fn = runtime_.sfunc(0)->Install(spec);

  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 128, nullptr);
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 128, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(runtime_.sfunc(0)->stats().messages_handled, 2u);
}

TEST_F(RuntimeTest, ActorSemanticsProcessMailboxInOrder) {
  std::vector<int> seen;
  SFuncSpec spec;
  spec.name = "ordered";
  spec.handlers[1] = SFuncHandler{FromUs(5), [&](SFuncContext& ctx) {
                                    seen.push_back(static_cast<int>(ctx.msg().bytes));
                                  }};
  const FunctionId fn = runtime_.sfunc(0)->Install(spec);
  for (int i = 1; i <= 5; ++i) {
    runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1,
                                     static_cast<std::uint32_t>(i), nullptr);
  }
  cluster_.engine().Run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_F(RuntimeTest, CoLocatedFunctionsCoordinateLocally) {
  int pings = 0;
  SFuncSpec ponger;
  ponger.name = "pong";
  ponger.handlers[2] = SFuncHandler{FromNs(500), [&](SFuncContext&) { ++pings; }};
  const FunctionId pong_fn = runtime_.sfunc(0)->Install(ponger);

  SFuncSpec pinger;
  pinger.name = "ping";
  pinger.handlers[1] = SFuncHandler{FromNs(500), [pong_fn](SFuncContext& ctx) {
                                      ctx.SendLocal(pong_fn, 2, 64, nullptr);
                                    }};
  const FunctionId ping_fn = runtime_.sfunc(0)->Install(pinger);

  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), ping_fn, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(pings, 1);
  EXPECT_EQ(runtime_.sfunc(0)->stats().local_sends, 1u);
}

TEST_F(RuntimeTest, FailedChassisDropsMessagesUntilRecovery) {
  int handled = 0;
  SFuncSpec spec;
  spec.name = "victim";
  spec.handlers[1] = SFuncHandler{FromUs(1), [&](SFuncContext&) { ++handled; }};
  const FunctionId fn = runtime_.sfunc(0)->Install(spec);

  cluster_.faa(0)->Fail();
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(handled, 0);
  EXPECT_GE(runtime_.sfunc(0)->stats().messages_dropped, 1u);

  cluster_.faa(0)->Recover();
  runtime_.sfunc(0)->ResetAfterRecovery();
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(handled, 1);
}

}  // namespace
}  // namespace unifab
