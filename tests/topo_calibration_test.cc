// Calibration tests: the Omega presets must reproduce Table 2 of the paper
// within tolerance. These tests pin down the numbers EXPERIMENTS.md reports.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "src/topo/cluster.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

// Issues `count` dependent (pointer-chase style) accesses and returns the
// average latency in ns.
double MeasureChained(Cluster& cluster, std::uint64_t base, std::uint64_t stride, int count,
                      bool is_write) {
  MemoryHierarchy* core = cluster.host(0)->core(0);
  auto remaining = std::make_shared<int>(count);
  auto addr = std::make_shared<std::uint64_t>(base);
  std::function<void()> next = [&cluster, core, remaining, addr, stride, is_write, &next] {
    if (--*remaining <= 0) {
      return;
    }
    *addr += stride;
    core->Access(*addr, is_write, next);
  };
  core->Access(*addr, is_write, next);
  cluster.engine().Run();
  return core->stats().access_latency_ns.Mean();
}

class CalibrationTest : public ::testing::Test {
 protected:
  CalibrationTest() : cluster_(MakeConfig()) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig cfg;
    cfg.num_hosts = 1;
    cfg.num_fams = 1;
    cfg.num_faas = 0;
    return cfg;
  }

  Cluster cluster_;
};

TEST_F(CalibrationTest, L1HitLatencyMatchesTable2) {
  MemoryHierarchy* core = cluster_.host(0)->core(0);
  // Warm one line, then hit it repeatedly.
  core->Access(0, false, nullptr);
  cluster_.engine().Run();
  const double warm = core->stats().access_latency_ns.Mean();
  (void)warm;

  Summary lat;
  for (int i = 0; i < 100; ++i) {
    const Tick t0 = cluster_.engine().Now();
    bool done = false;
    core->Access(0, false, [&] { done = true; });
    cluster_.engine().Run();
    ASSERT_TRUE(done);
    lat.Add(ToNs(cluster_.engine().Now() - t0));
  }
  // Paper: 5.4 ns.
  EXPECT_NEAR(lat.Mean(), 5.4, 0.2);
}

TEST_F(CalibrationTest, L2HitLatencyMatchesTable2) {
  MemoryHierarchy* core = cluster_.host(0)->core(0);
  // Touch a working set larger than L1 (32 KiB) but inside L2 (1 MiB), twice;
  // second pass hits in L2 for lines evicted from L1.
  const std::uint64_t kSet = 256 * 1024;
  for (std::uint64_t a = 0; a < kSet; a += 64) {
    core->Access(a, false, nullptr);
  }
  cluster_.engine().Run();

  // Now probe a line that is in L2 but not in L1: lines from the start of
  // the set were evicted from L1 by the tail.
  bool in_l1 = core->l1().Contains(0);
  ASSERT_FALSE(in_l1);
  ASSERT_TRUE(core->l2().Contains(0));

  const Tick t0 = cluster_.engine().Now();
  bool done = false;
  core->Access(0, false, [&] { done = true; });
  cluster_.engine().Run();
  ASSERT_TRUE(done);
  // Paper: 13.6 ns.
  EXPECT_NEAR(ToNs(cluster_.engine().Now() - t0), 13.6, 0.5);
}

TEST_F(CalibrationTest, LocalMemoryLatencyMatchesTable2) {
  // Chase addresses with a large stride so every access misses all caches.
  const double mean =
      MeasureChained(cluster_, 0, 1 << 20, 64, /*is_write=*/false);
  // Paper: 111.7 ns local read.
  EXPECT_NEAR(mean, 111.7, 5.0);
}

TEST_F(CalibrationTest, RemoteMemoryLatencyMatchesTable2) {
  const double mean =
      MeasureChained(cluster_, cluster_.FamBase(0), 1 << 20, 32, /*is_write=*/false);
  // Paper: 1575.3 ns remote read on the Omega testbed.
  EXPECT_NEAR(mean, 1575.3, 60.0);
}

TEST_F(CalibrationTest, RemoteRoughlyTenTimesSlowerThanLocal) {
  const double local = MeasureChained(cluster_, 0, 1 << 20, 32, false);
  ClusterConfig cfg = MakeConfig();
  Cluster fresh(cfg);
  const double remote = MeasureChained(fresh, fresh.FamBase(0), 1 << 20, 32, false);
  EXPECT_GT(remote / local, 8.0);
  EXPECT_LT(remote / local, 20.0);
}

// Throughput: saturate with independent accesses and count completions/sec.
double MeasureThroughputMops(Cluster& cluster, std::uint64_t base, std::uint64_t stride,
                             std::uint64_t working_set, bool is_write, Tick duration) {
  MemoryHierarchy* core = cluster.host(0)->core(0);
  auto completed = std::make_shared<std::uint64_t>(0);
  auto addr = std::make_shared<std::uint64_t>(base);
  // Keep 64 requests in flight; the hierarchy's MSHRs and level service
  // intervals bound actual concurrency.
  std::function<void()> issue = [core, completed, addr, base, stride, working_set, is_write,
                                 &issue] {
    ++*completed;
    *addr = base + (*addr - base + stride) % working_set;
    core->Access(*addr, is_write, issue);
  };
  for (int i = 0; i < 64; ++i) {
    *addr = base + (*addr - base + stride) % working_set;
    core->Access(*addr, is_write, issue);
  }
  cluster.engine().RunFor(duration);
  return static_cast<double>(*completed) / ToUs(duration);  // M ops/s == ops/us
}

TEST_F(CalibrationTest, L1ThroughputMatchesTable2) {
  // 4 KiB working set lives entirely in L1 after warmup.
  const double mops = MeasureThroughputMops(cluster_, 0, 64, 4096, false, FromUs(50));
  // Paper: 357.4 MOPS. Tolerate calibration slack.
  EXPECT_NEAR(mops, 357.4, 25.0);
}

TEST_F(CalibrationTest, RemoteThroughputMatchesTable2) {
  // Non-power-of-two stride so accesses spread across DRAM banks and cache
  // sets (a power-of-two stride would alias into one set/bank).
  const double mops = MeasureThroughputMops(cluster_, cluster_.FamBase(0), 4096 + 64,
                                            1ULL << 30, false, FromUs(300));
  // Paper: 2.5 MOPS (MLP-bound).
  EXPECT_NEAR(mops, 2.5, 0.4);
}

TEST_F(CalibrationTest, LocalThroughputIsMlpBound) {
  const double mops =
      MeasureThroughputMops(cluster_, 0, 4096 + 64, 1ULL << 30, false, FromUs(100));
  // Paper: 29.4 MOPS; our MLP-4 model gives ~4/111.7ns ~ 35. Accept the band.
  EXPECT_GT(mops, 20.0);
  EXPECT_LT(mops, 40.0);
}

}  // namespace
}  // namespace unifab
