// Statistics and RNG tests, including determinism properties the whole
// simulator relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace unifab {
namespace {

// ------------------------------- Summary ---------------------------------

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_NEAR(s.Stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SummaryTest, PercentilesAreExactByNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.P99(), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Median(), 50.0);
}

TEST(SummaryTest, PercentileAfterInterleavedAdds) {
  Summary s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
  s.Add(1.0);  // adding after a percentile query must re-sort
  s.Add(9.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
}

TEST(SummaryTest, ClearResets) {
  Summary s;
  s.Add(1.0);
  s.Clear();
  EXPECT_TRUE(s.Empty());
  EXPECT_DOUBLE_EQ(s.Sum(), 0.0);
}

// ------------------------------ Histogram --------------------------------

TEST(HistogramTest, BucketsSamplesEvenly) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.BucketCount(b), 1u);
  }
  EXPECT_EQ(h.TotalCount(), 10u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(25.0);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(9), 1u);
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 3.0, 3);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  const std::string out = h.ToString();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("[1, 2)"), std::string::npos);
  // Edge buckets absorb out-of-range samples and say so.
  EXPECT_NE(out.find("[<1)"), std::string::npos);
  EXPECT_NE(out.find("[2+)"), std::string::npos);
}

TEST(HistogramTest, ToStringOnEmptyHistogramIsSafe) {
  Histogram h(0.0, 2.0, 2);
  EXPECT_EQ(h.ToString(), "(no samples)\n");
}

// ---------------------------- Jain fairness ------------------------------

TEST(JainTest, EqualAllocationsArePerfectlyFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5.0, 5.0, 5.0}), 1.0);
}

TEST(JainTest, SingleWinnerGivesOneOverN) {
  EXPECT_NEAR(JainFairnessIndex({9.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
}

TEST(JainTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 1.0);
}

// -------------------------------- Rng ------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextBelow(8)];
  }
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_GT(counts[v], 800) << "value " << v << " under-represented";
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) {
      ++heads;
    }
  }
  EXPECT_NEAR(static_cast<double>(heads) / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    sum += rng.NextExponential(42.0);
  }
  EXPECT_NEAR(sum / 20000.0, 42.0, 1.5);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------- Zipf ------------------------------------

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfGenerator zipf(3, 0.99, 1000);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Next()];
  }
  // Rank 0 dominates rank 100 by a wide margin.
  EXPECT_GT(counts[0], 10 * counts[100]);
  // Monotone-ish: the top rank is the most popular.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfGenerator zipf(3, 0.0, 100);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next()];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 250);
  }
}

TEST(ZipfTest, DeterministicForSeed) {
  ZipfGenerator a(5, 0.8, 64);
  ZipfGenerator b(5, 0.8, 64);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

// ------------------------------- Time ------------------------------------

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(FromNs(5.4), 5400u);
  EXPECT_DOUBLE_EQ(ToNs(FromNs(111.7)), 111.7);
  EXPECT_EQ(FromUs(1.0), kTicksPerUs);
  EXPECT_EQ(FromMs(1.0), kTicksPerMs);
  EXPECT_DOUBLE_EQ(ToSec(kTicksPerSec), 1.0);
}

TEST(TimeTest, SerializationDelayNeverZero) {
  EXPECT_GE(SerializationDelay(1, 1000.0), 1u);
  // 64 bytes at 64 GB/s = 1 ns = 1000 ticks.
  EXPECT_EQ(SerializationDelay(64, 64.0), 1000u);
}

}  // namespace
}  // namespace unifab
