// Unified-heap unit tests: bins and size classes, free/reuse, spill and
// demotion, migration mechanics, policy decisions, and UniPtr semantics.

#include "src/core/heap.h"

#include <gtest/gtest.h>

#include "src/baseline/policies.h"
#include "src/core/runtime.h"
#include "src/core/uniptr.h"

namespace unifab {
namespace {

ClusterConfig OneFamCluster() {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 0;
  return cfg;
}

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : cluster_(OneFamCluster()) {
    RuntimeOptions opts;
    opts.heap_local_bytes = 1 << 20;  // small fast tier: 1 MiB
    opts.heap.migration_enabled = true;
    runtime_ = std::make_unique<UniFabricRuntime>(&cluster_, opts);
    heap_ = runtime_->heap(0);
  }

  Cluster cluster_;
  std::unique_ptr<UniFabricRuntime> runtime_;
  UnifiedHeap* heap_;
};

TEST_F(HeapTest, SizeClassRounding) {
  const ObjectId a = heap_->Allocate(1);
  const ObjectId b = heap_->Allocate(65);
  ASSERT_NE(a, kInvalidObject);
  ASSERT_NE(b, kInvalidObject);
  // 1 byte -> 64B class; 65 bytes -> 128B class: addresses 64 and 128 apart
  // respectively from the bump pointer.
  const ObjectId c = heap_->Allocate(1);
  EXPECT_EQ(heap_->Info(c).addr - heap_->Info(a).addr, 64u + 128u);
}

TEST_F(HeapTest, OversizedAllocationFails) {
  EXPECT_EQ(heap_->Allocate(1 << 20), kInvalidObject);  // > largest class (256K)
  EXPECT_EQ(heap_->stats().failed_allocations, 1u);
}

TEST_F(HeapTest, FreeReturnsBlockForReuse) {
  const ObjectId a = heap_->Allocate(4096);
  const std::uint64_t addr = heap_->Info(a).addr;
  heap_->Free(a);
  const ObjectId b = heap_->Allocate(4096);
  EXPECT_EQ(heap_->Info(b).addr, addr);  // same block recycled
  EXPECT_EQ(heap_->stats().frees, 1u);
}

TEST_F(HeapTest, FreeUpdatesTierUsage) {
  const std::uint64_t before = heap_->TierUsed(0);
  const ObjectId a = heap_->Allocate(4096);
  EXPECT_EQ(heap_->TierUsed(0), before + 4096);
  heap_->Free(a);
  EXPECT_EQ(heap_->TierUsed(0), before);
}

TEST_F(HeapTest, TierHintPlacesDirectly) {
  const ObjectId id = heap_->Allocate(4096, 1);
  EXPECT_EQ(heap_->TierOf(id), 1);
  const std::uint64_t addr = heap_->Info(id).addr;
  EXPECT_GE(addr, cluster_.FamBase(0));
}

TEST_F(HeapTest, ExplicitMigrationMovesObjectAndAccounting) {
  const ObjectId id = heap_->Allocate(4096, 1);
  const std::uint64_t fam_used = heap_->TierUsed(1);
  bool ok = false;
  heap_->Migrate(id, 0, [&](bool v) { ok = v; });
  cluster_.engine().Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(heap_->TierOf(id), 0);
  EXPECT_EQ(heap_->TierUsed(1), fam_used - 4096);
  EXPECT_EQ(heap_->stats().promotions, 1u);
  EXPECT_EQ(heap_->stats().bytes_migrated, 4096u);
}

TEST_F(HeapTest, MigrateToSameTierIsRejected) {
  const ObjectId id = heap_->Allocate(4096, 0);
  bool ok = true;
  heap_->Migrate(id, 0, [&](bool v) { ok = v; });
  cluster_.engine().Run();
  EXPECT_FALSE(ok);
}

TEST_F(HeapTest, FreeDuringMigrationIsSafe) {
  const ObjectId id = heap_->Allocate(4096, 1);
  bool result = true;
  heap_->Migrate(id, 0, [&](bool v) { result = v; });
  heap_->Free(id);  // before the copy completes
  cluster_.engine().Run();
  EXPECT_FALSE(result);
  // Both tiers fully released.
  EXPECT_EQ(heap_->TierUsed(0), 0u);
  EXPECT_EQ(heap_->TierUsed(1), 0u);
}

TEST_F(HeapTest, MigrateReturnsStatus) {
  const ObjectId id = heap_->Allocate(4096, 1);
  EXPECT_EQ(heap_->Migrate(999999, 0, nullptr), MigrateResult::kNoSuchObject);
  EXPECT_EQ(heap_->Migrate(id, 1, nullptr), MigrateResult::kSameTier);

  // Two concurrent migrations of the same object: the second is rejected
  // with a busy status (and its callback sees false) instead of silently
  // double-claiming the source block.
  bool first_ok = false;
  bool second_ok = true;
  EXPECT_EQ(heap_->Migrate(id, 0, [&](bool v) { first_ok = v; }), MigrateResult::kStarted);
  EXPECT_EQ(heap_->Migrate(id, 0, [&](bool v) { second_ok = v; }), MigrateResult::kBusy);
  cluster_.engine().Run();
  EXPECT_TRUE(first_ok);
  EXPECT_FALSE(second_ok);

  // Once resolved the object is migratable again.
  EXPECT_EQ(heap_->Migrate(id, 1, nullptr), MigrateResult::kStarted);
  cluster_.engine().Run();
  EXPECT_EQ(heap_->TierOf(id), 1);
}

TEST_F(HeapTest, MigrateIntoFullTierReportsNoSpace) {
  std::vector<ObjectId> fill;
  for (int i = 0; i < 4; ++i) {
    fill.push_back(heap_->Allocate(262144, 0));  // 4 x 256K = the whole 1 MiB
    ASSERT_NE(fill.back(), kInvalidObject);
  }
  const ObjectId id = heap_->Allocate(4096, 1);
  bool cb_ok = true;
  EXPECT_EQ(heap_->Migrate(id, 0, [&](bool v) { cb_ok = v; }), MigrateResult::kNoSpace);
  EXPECT_FALSE(cb_ok);
  EXPECT_EQ(heap_->TierOf(id), 1);
}

TEST_F(HeapTest, UntouchedObjectsDecayEveryEpoch) {
  // Regression: the epoch fold must decay every live object, not only the
  // ones touched that epoch — an idle object left at its old temperature
  // never qualifies for demotion.
  const ObjectId idle = heap_->Allocate(64, 1);
  const ObjectId busy = heap_->Allocate(64, 1);
  for (int i = 0; i < 8; ++i) {
    heap_->Read(idle, nullptr);
  }
  cluster_.engine().Run();
  heap_->RunEpoch();
  double expect = 4.0;  // alpha=0.5 over 8 accesses
  EXPECT_DOUBLE_EQ(heap_->Info(idle).temperature, expect);

  for (int epoch = 0; epoch < 3; ++epoch) {
    heap_->Read(busy, nullptr);  // activity elsewhere; `idle` is never touched
    cluster_.engine().Run();
    heap_->RunEpoch();
    expect *= 0.5;
    EXPECT_DOUBLE_EQ(heap_->Info(idle).temperature, expect);
  }
}

TEST_F(HeapTest, ProfilerSummaryCountsEachLiveObjectOnce) {
  // Three objects spread over the profiler's default 8 shards leave most
  // shards empty; the per-epoch temperature summary must still hold exactly
  // one sample per live object (empty shards contribute nothing, and no
  // sample is merged twice).
  const ObjectId a = heap_->Allocate(64, 1);
  const ObjectId b = heap_->Allocate(64, 1);
  const ObjectId c = heap_->Allocate(64, 1);
  heap_->Read(a, nullptr);
  heap_->Read(b, nullptr);
  heap_->Read(c, nullptr);
  cluster_.engine().Run();
  heap_->RunEpoch();
  EXPECT_EQ(heap_->profiler().epoch_temperature().Count(), 3u);
  EXPECT_DOUBLE_EQ(heap_->profiler().epoch_temperature().Mean(), 0.5);

  heap_->RunEpoch();  // no accesses: same population, decayed
  EXPECT_EQ(heap_->profiler().epoch_temperature().Count(), 3u);
  EXPECT_DOUBLE_EQ(heap_->profiler().epoch_temperature().Mean(), 0.25);

  heap_->Free(c);
  heap_->RunEpoch();
  EXPECT_EQ(heap_->profiler().epoch_temperature().Count(), 2u);
}

TEST_F(HeapTest, EpochDecaysTemperature) {
  const ObjectId id = heap_->Allocate(64, 1);
  for (int i = 0; i < 10; ++i) {
    heap_->Read(id, nullptr);
  }
  cluster_.engine().Run();
  heap_->RunEpoch();
  const double t1 = heap_->Info(id).temperature;
  EXPECT_GT(t1, 0.0);
  heap_->RunEpoch();  // no accesses this epoch
  EXPECT_LT(heap_->Info(id).temperature, t1);
}

TEST_F(HeapTest, DemotionKicksInAboveHighWatermark) {
  // Fill tier 0 past the watermark with cold objects plus keep one hot.
  std::vector<ObjectId> cold;
  for (int i = 0; i < 15; ++i) {
    cold.push_back(heap_->Allocate(65536, 0));  // 15 * 64K = 960K of 1 MiB
  }
  const ObjectId hot = heap_->Allocate(4096, 0);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 50; ++i) {
      heap_->Read(hot, nullptr);
    }
    cluster_.engine().Run();
    heap_->RunEpoch();
    cluster_.engine().Run();
  }
  EXPECT_GE(heap_->stats().demotions, 1u);
  EXPECT_EQ(heap_->TierOf(hot), 0);  // the hot object stays
  std::size_t demoted = 0;
  for (const ObjectId id : cold) {
    if (heap_->TierOf(id) == 1) {
      ++demoted;
    }
  }
  EXPECT_GE(demoted, 1u);
}

TEST_F(HeapTest, StaticPolicyNeverMoves) {
  heap_->SetPolicy(std::make_unique<StaticPlacementPolicy>());
  const ObjectId id = heap_->Allocate(64, 1);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 100; ++i) {
      heap_->Read(id, nullptr);
    }
    cluster_.engine().Run();
    heap_->RunEpoch();
    cluster_.engine().Run();
  }
  EXPECT_EQ(heap_->TierOf(id), 1);
  EXPECT_EQ(heap_->stats().promotions, 0u);
}

TEST_F(HeapTest, MigrationBudgetCapsPerEpochMovement) {
  RuntimeOptions opts;
  opts.heap_local_bytes = 4 << 20;
  opts.heap.migration_budget_bytes = 8192;  // at most 2 x 4K objects/epoch
  opts.heap.promote_threshold = 0.4;
  Cluster cluster(OneFamCluster());
  UniFabricRuntime rt(&cluster, opts);
  UnifiedHeap* heap = rt.heap(0);

  std::vector<ObjectId> objs;
  for (int i = 0; i < 16; ++i) {
    objs.push_back(heap->Allocate(4096, 1));
  }
  for (const ObjectId id : objs) {
    heap->Read(id, nullptr);
  }
  cluster.engine().Run();
  heap->RunEpoch();
  cluster.engine().Run();
  EXPECT_LE(heap->stats().promotions, 2u);
}

// TemperaturePolicy decision-table unit tests (no simulation).
TEST(TemperaturePolicyTest, PromotesHottestFirstWithinBudget) {
  TemperaturePolicy policy;
  HeapConfig cfg;
  cfg.promote_threshold = 1.0;
  cfg.migration_budget_bytes = 128;

  std::vector<MemTier> tiers(2);
  tiers[0].capacity = 1024;
  tiers[1].capacity = 1 << 20;
  std::vector<std::uint64_t> used = {0, 512};

  std::vector<ObjectInfo> objects(3);
  for (int i = 0; i < 3; ++i) {
    objects[static_cast<std::size_t>(i)].id = static_cast<ObjectId>(i + 1);
    objects[static_cast<std::size_t>(i)].size = 64;
    objects[static_cast<std::size_t>(i)].tier = 1;
  }
  objects[0].temperature = 5.0;
  objects[1].temperature = 9.0;
  objects[2].temperature = 2.0;

  const auto moves = policy.Decide(objects, tiers, used, cfg);
  ASSERT_EQ(moves.size(), 2u);  // budget = 2 objects
  EXPECT_EQ(moves[0].object, 2u);  // hottest first
  EXPECT_EQ(moves[1].object, 1u);
  EXPECT_EQ(moves[0].dst_tier, 0);
}

TEST(TemperaturePolicyTest, SkipsFullDestination) {
  TemperaturePolicy policy;
  HeapConfig cfg;
  cfg.promote_threshold = 1.0;

  std::vector<MemTier> tiers(2);
  tiers[0].capacity = 64;  // room for nothing once used
  tiers[1].capacity = 1 << 20;
  std::vector<std::uint64_t> used = {64, 0};

  std::vector<ObjectInfo> objects(1);
  objects[0].id = 1;
  objects[0].size = 64;
  objects[0].tier = 1;
  objects[0].temperature = 10.0;

  EXPECT_TRUE(policy.Decide(objects, tiers, used, cfg).empty());
}

TEST(TemperaturePolicyTest, MigratingObjectsAreLeftAlone) {
  TemperaturePolicy policy;
  HeapConfig cfg;
  cfg.promote_threshold = 1.0;
  std::vector<MemTier> tiers(2);
  tiers[0].capacity = 1 << 20;
  tiers[1].capacity = 1 << 20;
  std::vector<std::uint64_t> used = {0, 0};
  std::vector<ObjectInfo> objects(1);
  objects[0].id = 1;
  objects[0].size = 64;
  objects[0].tier = 1;
  objects[0].temperature = 10.0;
  objects[0].migrating = true;
  EXPECT_TRUE(policy.Decide(objects, tiers, used, cfg).empty());
}

// Property sweep over size classes: allocations land in the right class
// and distinct objects never overlap.
class HeapSizeClassTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HeapSizeClassTest, AllocationsDoNotOverlap) {
  Cluster cluster(OneFamCluster());
  UniFabricRuntime rt(&cluster, RuntimeOptions{});
  UnifiedHeap* heap = rt.heap(0);
  const std::uint32_t size = GetParam();

  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (int i = 0; i < 32; ++i) {
    const ObjectId id = heap->Allocate(size);
    ASSERT_NE(id, kInvalidObject);
    const ObjectInfo info = heap->Info(id);
    spans.emplace_back(info.addr, info.addr + size);
  }
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].second, spans[i].first) << "overlap at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeapSizeClassTest,
                         ::testing::Values(1u, 64u, 100u, 256u, 1000u, 4096u, 65536u, 262144u));

}  // namespace
}  // namespace unifab
