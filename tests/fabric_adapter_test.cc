// Adapter (FHA/FEA) tests: transaction segmentation, MSHR limiting,
// multi-source reassembly, messaging, and flit-mode behavior.

#include "src/fabric/adapter.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

AdapterConfig FastAdapter(FlitMode mode = FlitMode::k68B) {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(20);
  cfg.response_proc_latency = FromNs(20);
  cfg.max_outstanding = 4;
  cfg.flit_mode = mode;
  return cfg;
}

DramConfig FastDram() {
  DramConfig cfg;
  cfg.access_latency = FromNs(30);
  cfg.bandwidth_gbps = 25.6;
  return cfg;
}

struct Rig {
  explicit Rig(int num_hosts = 1, FlitMode mode = FlitMode::k68B,
               LinkConfig link = LinkConfig{})
      : fabric(&engine, 77) {
    link.flit_mode = mode;
    auto* sw = fabric.AddSwitch(SwitchConfig{}, "sw");
    dram = std::make_unique<DramDevice>(&engine, FastDram(), "dram");
    fea = fabric.AddEndpointAdapter(FastAdapter(mode), "fea", dram.get());
    fabric.Connect(sw, fea, link);
    for (int i = 0; i < num_hosts; ++i) {
      hosts.push_back(fabric.AddHostAdapter(FastAdapter(mode), "h" + std::to_string(i)));
      fabric.Connect(sw, hosts.back(), link);
    }
    fabric.ConfigureRouting();
  }

  Engine engine;
  FabricInterconnect fabric;
  std::unique_ptr<DramDevice> dram;
  EndpointAdapter* fea;
  std::vector<HostAdapter*> hosts;
};

TEST(AdapterTest, SingleReadCompletes) {
  Rig rig;
  bool done = false;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.addr = 0x100;
  req.bytes = 64;
  rig.hosts[0]->Submit(rig.fea->id(), req, [&] { done = true; });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.hosts[0]->stats().reads_completed, 1u);
  EXPECT_EQ(rig.dram->stats().reads, 1u);
}

TEST(AdapterTest, LargeReadSegmentsResponseIntoFlits) {
  Rig rig;
  bool done = false;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.bytes = 4096;  // 64 response flits in 68B mode
  rig.hosts[0]->Submit(rig.fea->id(), req, [&] { done = true; });
  rig.engine.Run();
  EXPECT_TRUE(done);
  // 1 request flit + 64 response flits traverse the switch.
  EXPECT_EQ(rig.fabric.switches()[0]->stats().flits_forwarded, 65u);
}

TEST(AdapterTest, WriteCarriesPayloadFlitsAndAcks) {
  Rig rig;
  bool done = false;
  MemRequest req;
  req.type = MemRequest::Type::kWrite;
  req.bytes = 1024;  // 16 payload flits
  rig.hosts[0]->Submit(rig.fea->id(), req, [&] { done = true; });
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.hosts[0]->stats().writes_completed, 1u);
  EXPECT_EQ(rig.dram->stats().writes, 1u);
}

TEST(AdapterTest, MshrLimitQueuesExcessRequests) {
  Rig rig;  // max_outstanding = 4
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    MemRequest req;
    req.type = MemRequest::Type::kRead;
    req.addr = static_cast<std::uint64_t>(i) * 4096;
    req.bytes = 64;
    rig.hosts[0]->Submit(rig.fea->id(), req, [&] { ++completed; });
  }
  EXPECT_EQ(rig.hosts[0]->Outstanding(), 4u);
  EXPECT_EQ(rig.hosts[0]->QueuedRequests(), 6u);
  rig.engine.Run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(rig.hosts[0]->Outstanding(), 0u);
}

// Regression: transactions from distinct hosts share the FEA; reassembly
// must key on (src, txn), not txn alone, or multi-flit writes from
// different hosts corrupt each other's flit counts and wedge.
TEST(AdapterTest, ConcurrentMultiFlitWritesFromManyHostsAllComplete) {
  Rig rig(/*num_hosts=*/3);
  int completed = 0;
  for (int round = 0; round < 8; ++round) {
    for (auto* host : rig.hosts) {
      MemRequest req;
      req.type = MemRequest::Type::kWrite;
      req.addr = static_cast<std::uint64_t>(completed) * 8192;
      req.bytes = 4096;  // 64 flits each — heavy interleaving at the FEA
      host->Submit(rig.fea->id(), req, [&] { ++completed; });
    }
  }
  rig.engine.Run();
  EXPECT_EQ(completed, 24);
}

TEST(AdapterTest, MessagesDeliverWithTagAndBody) {
  Rig rig;
  FabricMessage got;
  rig.fea->SetMessageHandler([&](const FabricMessage& msg) { got = msg; });
  auto body = std::make_shared<int>(1234);
  rig.hosts[0]->SendMessage(rig.fea->id(), Channel::kMem, Opcode::kMsg, 0xBEEF, 256, body);
  rig.engine.Run();
  EXPECT_EQ(got.tag, 0xBEEFu);
  EXPECT_EQ(got.bytes, 256u);
  EXPECT_EQ(got.src, rig.hosts[0]->id());
  ASSERT_NE(got.body, nullptr);
  EXPECT_EQ(*std::static_pointer_cast<int>(got.body), 1234);
}

TEST(AdapterTest, DispatcherRoutesByServiceId) {
  Rig rig;
  MessageDispatcher dispatch(rig.fea);
  int svc_a = 0;
  int svc_b = 0;
  dispatch.RegisterService(10, [&](const FabricMessage&) { ++svc_a; });
  dispatch.RegisterService(11, [&](const FabricMessage&) { ++svc_b; });

  rig.hosts[0]->SendMessage(rig.fea->id(), Channel::kMem, Opcode::kMsg, MakeTag(10, 1), 64,
                            nullptr);
  rig.hosts[0]->SendMessage(rig.fea->id(), Channel::kMem, Opcode::kMsg, MakeTag(11, 2), 64,
                            nullptr);
  rig.hosts[0]->SendMessage(rig.fea->id(), Channel::kMem, Opcode::kMsg, MakeTag(12, 3), 64,
                            nullptr);  // unclaimed service: dropped silently
  rig.engine.Run();
  EXPECT_EQ(svc_a, 1);
  EXPECT_EQ(svc_b, 1);
}

TEST(AdapterTest, TagHelpersRoundTrip) {
  const std::uint64_t tag = MakeTag(42, 0x123456789AULL);
  EXPECT_EQ(ServiceOf(tag), 42);
  EXPECT_EQ(TagPayload(tag), 0x123456789AULL);
}

// Property sweep: for every flit mode and request size, the number of DRAM
// bytes touched equals the request size and everything completes.
struct ModeSize {
  FlitMode mode;
  std::uint32_t bytes;
};

class AdapterModeTest : public ::testing::TestWithParam<ModeSize> {};

TEST_P(AdapterModeTest, RequestsCompleteAcrossModesAndSizes) {
  const auto [mode, bytes] = GetParam();
  Rig rig(1, mode);
  bool read_done = false;
  bool write_done = false;
  MemRequest rd;
  rd.type = MemRequest::Type::kRead;
  rd.bytes = bytes;
  rig.hosts[0]->Submit(rig.fea->id(), rd, [&] { read_done = true; });
  MemRequest wr;
  wr.type = MemRequest::Type::kWrite;
  wr.addr = 1 << 20;
  wr.bytes = bytes;
  rig.hosts[0]->Submit(rig.fea->id(), wr, [&] { write_done = true; });
  rig.engine.Run();
  EXPECT_TRUE(read_done);
  EXPECT_TRUE(write_done);
  EXPECT_EQ(rig.dram->stats().bytes, 2u * bytes);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, AdapterModeTest,
    ::testing::Values(ModeSize{FlitMode::k68B, 64}, ModeSize{FlitMode::k68B, 100},
                      ModeSize{FlitMode::k68B, 4096}, ModeSize{FlitMode::k256B, 64},
                      ModeSize{FlitMode::k256B, 192}, ModeSize{FlitMode::k256B, 4096},
                      ModeSize{FlitMode::k256B, 16384}));

TEST(AdapterTest, Wide256BModeUsesFewerFlits) {
  LinkConfig link68;
  link68.flit_mode = FlitMode::k68B;
  Rig narrow(1, FlitMode::k68B, link68);
  LinkConfig link256;
  link256.flit_mode = FlitMode::k256B;
  Rig wide(1, FlitMode::k256B, link256);

  for (Rig* rig : {&narrow, &wide}) {
    MemRequest req;
    req.type = MemRequest::Type::kWrite;
    req.bytes = 4096;
    rig->hosts[0]->Submit(rig->fea->id(), req, nullptr);
    rig->engine.Run();
  }
  // 68B mode: 64 payload flits; 256B mode: ceil(4096/192) = 22.
  const auto& narrow_stats = narrow.fabric.switches()[0]->stats();
  const auto& wide_stats = wide.fabric.switches()[0]->stats();
  EXPECT_GT(narrow_stats.flits_forwarded, 2 * wide_stats.flits_forwarded);
}

TEST(AdapterTest, TransactionLatencyIsRecorded) {
  Rig rig;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.bytes = 64;
  rig.hosts[0]->Submit(rig.fea->id(), req, nullptr);
  rig.engine.Run();
  ASSERT_EQ(rig.hosts[0]->stats().txn_latency_ns.Count(), 1u);
  EXPECT_GT(rig.hosts[0]->stats().txn_latency_ns.Mean(), 100.0);
}

}  // namespace
}  // namespace unifab
