// Link-failure and fabric-manager re-routing tests (paper §3 Difference #5
// applied to the interconnect itself, plus the fabric manager's role from
// §2.1: the routing tables are its to rebuild).

#include <gtest/gtest.h>

#include <cstdio>

#include <memory>
#include <string>

#include "src/core/cohptr.h"
#include "src/core/runtime.h"
#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/topo/faults.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

AdapterConfig Lean() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(20);
  cfg.response_proc_latency = FromNs(20);
  return cfg;
}

// Redundant topology: two switches joined by TWO trunks; a host on sw0 and
// a FAM on sw1.
struct RedundantRig {
  RedundantRig() : fabric(&engine, 3) {
    sw0 = fabric.AddSwitch(SwitchConfig{}, "sw0");
    sw1 = fabric.AddSwitch(SwitchConfig{}, "sw1");
    trunk_a = fabric.Connect(sw0, sw1, LinkConfig{});
    trunk_b = fabric.Connect(sw0, sw1, LinkConfig{});
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "dram");
    host = fabric.AddHostAdapter(Lean(), "host");
    fea = fabric.AddEndpointAdapter(Lean(), "fea", dram.get());
    fabric.Connect(sw0, host, LinkConfig{});
    fabric.Connect(sw1, fea, LinkConfig{});
    fabric.ConfigureRouting();
  }

  bool RoundTrip() {
    bool done = false;
    MemRequest req;
    req.type = MemRequest::Type::kRead;
    req.bytes = 64;
    host->Submit(fea->id(), req, [&] { done = true; });
    engine.RunFor(FromUs(50));
    return done;
  }

  Engine engine;
  FabricInterconnect fabric;
  FabricSwitch* sw0;
  FabricSwitch* sw1;
  Link* trunk_a;
  Link* trunk_b;
  std::unique_ptr<DramDevice> dram;
  HostAdapter* host;
  EndpointAdapter* fea;
};

TEST(LinkFailureTest, FailedLinkRefusesSends) {
  Engine engine;
  Link link(&engine, LinkConfig{}, 1, "l");
  link.Fail();
  Flit f;
  f.channel = Channel::kMem;
  EXPECT_FALSE(link.end(0).Send(f));
  link.Recover();
  // Recovered link accepts again (no receiver bound, so don't run).
  EXPECT_TRUE(link.end(0).Send(f));
}

TEST(LinkFailureTest, InFlightFlitsAreDropped) {
  Engine engine;
  LinkConfig cfg;
  cfg.propagation = FromUs(1);  // long flight time
  Link link(&engine, cfg, 1, "l");

  struct Counter : FlitReceiver {
    int received = 0;
    void ReceiveFlit(const Flit&, int) override { ++received; }
  } rx;
  link.end(0).Bind(nullptr, 0);
  link.end(1).Bind(&rx, 0);

  Flit f;
  f.channel = Channel::kMem;
  ASSERT_TRUE(link.end(0).Send(f));
  engine.RunFor(FromNs(100));  // flit is on the wire
  link.Fail();
  engine.Run();
  EXPECT_EQ(rx.received, 0);
  // The loss is accounted, not silent: at quiescence every accepted flit
  // was either delivered or recorded as dropped by the failure.
  EXPECT_EQ(link.stats(0).dropped_on_fail, 1u);
  EXPECT_EQ(link.stats(0).flits_accepted,
            link.stats(0).flits_delivered + link.stats(0).dropped_on_fail);
}

TEST(LinkFailureTest, EpochChangeNotifiesBoundReceivers) {
  Engine engine;
  Link link(&engine, LinkConfig{}, 1, "l");

  struct EpochWatcher : FlitReceiver {
    int downs = 0;
    int ups = 0;
    void ReceiveFlit(const Flit&, int) override {}
    void OnLinkEpochChange(int, bool link_up) override {
      if (link_up) {
        ++ups;
      } else {
        ++downs;
      }
    }
  } a, b;
  link.end(0).Bind(&b, 0);  // dirs_[0].receiver is side 1's component
  link.end(1).Bind(&a, 0);

  link.Fail();
  EXPECT_EQ(a.downs, 1);
  EXPECT_EQ(b.downs, 1);
  link.Recover();
  EXPECT_EQ(a.ups, 1);
  EXPECT_EQ(b.ups, 1);
}

TEST(FailoverTest, TrunkFailureReroutesOverRedundantPath) {
  RedundantRig rig;
  ASSERT_TRUE(rig.RoundTrip());

  // Kill the trunk currently carrying traffic; without re-routing, requests
  // black-hole.
  rig.trunk_a->Fail();
  const bool before_reroute = rig.RoundTrip();

  rig.fabric.ConfigureRouting();  // fabric manager repairs the tables
  EXPECT_TRUE(rig.RoundTrip());

  // Either the first trunk wasn't the active one (so traffic never stopped)
  // or re-routing fixed it; in both cases the post-reroute path works.
  (void)before_reroute;
  EXPECT_EQ(rig.fabric.HopCount(rig.host->id(), rig.fea->id()), 3);
}

TEST(FailoverTest, BothTrunksDownMakesTargetUnreachable) {
  RedundantRig rig;
  rig.trunk_a->Fail();
  rig.trunk_b->Fail();
  rig.fabric.ConfigureRouting();
  EXPECT_EQ(rig.fabric.HopCount(rig.host->id(), rig.fea->id()), -1);
  EXPECT_FALSE(rig.RoundTrip());
}

TEST(FailoverTest, RecoveryRestoresOriginalPath) {
  RedundantRig rig;
  rig.trunk_a->Fail();
  rig.trunk_b->Fail();
  rig.fabric.ConfigureRouting();
  ASSERT_FALSE(rig.RoundTrip());

  rig.trunk_b->Recover();
  rig.fabric.ConfigureRouting();
  EXPECT_TRUE(rig.RoundTrip());
}

TEST(FailoverTest, EdgeLinkFailureIsolatesOnlyThatAdapter) {
  // Two hosts on one switch; killing host0's link must not disturb host1.
  Engine engine;
  FabricInterconnect fabric(&engine, 9);
  auto* sw = fabric.AddSwitch(SwitchConfig{}, "sw");
  DramDevice dram(&engine, OmegaLocalDram(), "d");
  auto* fea = fabric.AddEndpointAdapter(Lean(), "fea", &dram);
  fabric.Connect(sw, fea, LinkConfig{});
  auto* h0 = fabric.AddHostAdapter(Lean(), "h0");
  Link* l0 = fabric.Connect(sw, h0, LinkConfig{});
  auto* h1 = fabric.AddHostAdapter(Lean(), "h1");
  fabric.Connect(sw, h1, LinkConfig{});
  fabric.ConfigureRouting();

  l0->Fail();
  bool h1_done = false;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.bytes = 64;
  h1->Submit(fea->id(), req, [&] { h1_done = true; });
  engine.RunFor(FromUs(50));
  EXPECT_TRUE(h1_done);
  EXPECT_EQ(fabric.HopCount(h0->id(), fea->id()), -1);
}

// ------------------------- MSHR failure handling -------------------------

// Single switch, one host, one FEA-fronted DRAM. Returns via out-params so
// tests can poke the links directly.
struct MshrRig {
  MshrRig() : fabric(&engine, 31) {
    sw = fabric.AddSwitch(SwitchConfig{}, "sw");
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "dram");
    fea = fabric.AddEndpointAdapter(Lean(), "fea", dram.get());
    fea_link = fabric.Connect(sw, fea, LinkConfig{});
    host = fabric.AddHostAdapter(Lean(), "host");
    host_link = fabric.Connect(sw, host, LinkConfig{});
    fabric.ConfigureRouting();
  }

  Engine engine;
  FabricInterconnect fabric;
  FabricSwitch* sw;
  std::unique_ptr<DramDevice> dram;
  EndpointAdapter* fea;
  HostAdapter* host;
  Link* fea_link;
  Link* host_link;
};

TEST(MshrTest, OwnLinkEpochChangeFailsOutstandingTransactions) {
  MshrRig rig;
  int ok_count = 0;
  int fail_count = 0;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.bytes = 64;
  rig.host->SubmitWithStatus(rig.fea->id(), req, [&](bool ok) {
    ok ? ++ok_count : ++fail_count;
  });
  // Let the request leave the adapter (MSHR allocated), then cut the host's
  // own link before the response can return.
  rig.engine.RunFor(FromNs(100));
  ASSERT_EQ(rig.host->Outstanding(), 1u);
  rig.host_link->Fail();
  EXPECT_EQ(fail_count, 1);  // failed synchronously by the epoch change
  EXPECT_EQ(rig.host->Outstanding(), 0u);
  EXPECT_GE(rig.host->stats().mshr_failures, 1u);
  rig.engine.Run();
  EXPECT_EQ(ok_count, 0);  // a late response finds no MSHR
}

TEST(MshrTest, BlackholedRequestTimesOutAndReclaimsMshr) {
  MshrRig rig;
  // The REMOTE edge fails: the host's own link never changes epoch, so the
  // request is silently dropped at the switch and only the response deadline
  // can reclaim the MSHR.
  rig.fea_link->Fail();
  bool completed = false;
  bool status_ok = true;
  MemRequest req;
  req.type = MemRequest::Type::kWrite;
  req.bytes = 256;
  rig.host->SubmitWithStatus(rig.fea->id(), req, [&](bool ok) {
    completed = true;
    status_ok = ok;
  });
  rig.engine.Run();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(status_ok);
  EXPECT_EQ(rig.host->Outstanding(), 0u);
  EXPECT_EQ(rig.host->stats().mshr_timeouts, 1u);
}

// --------------------------- Fault-plan parsing ---------------------------

TEST(FaultPlanTest, ParsesDirectivesCommentsAndSeparators) {
  const FaultPlan plan = FaultPlan::Parse(
      "# campaign\n"
      "fail trunk @100; recover trunk @350\n"
      "\n"
      "fail fam0 @500   # inline trailing directive-free comment line\n");
  ASSERT_TRUE(plan.ok()) << (plan.errors.empty() ? "" : plan.errors.front());
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kFail);
  EXPECT_EQ(plan.events[0].target, "trunk");
  EXPECT_EQ(plan.events[0].at, FromUs(100.0));
  EXPECT_EQ(plan.events[1].kind, FaultEvent::Kind::kRecover);
  EXPECT_EQ(plan.events[1].at, FromUs(350.0));
  EXPECT_EQ(plan.events[2].target, "fam0");
}

TEST(FaultPlanTest, FlapExpandsIntoFailRecoverPairs) {
  const FaultPlan plan =
      FaultPlan::Parse("flap lnk start=100 period=1000 down=200 cycles=3");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.events.size(), 6u);
  for (int k = 0; k < 3; ++k) {
    const auto& f = plan.events[static_cast<std::size_t>(2 * k)];
    const auto& r = plan.events[static_cast<std::size_t>(2 * k + 1)];
    EXPECT_EQ(f.kind, FaultEvent::Kind::kFail);
    EXPECT_EQ(f.at, FromUs(100.0 + 1000.0 * k));
    EXPECT_EQ(r.kind, FaultEvent::Kind::kRecover);
    EXPECT_EQ(r.at, FromUs(300.0 + 1000.0 * k));
  }
}

TEST(FaultPlanTest, MalformedDirectivesAreReported) {
  const FaultPlan plan = FaultPlan::Parse(
      "fail trunk\n"                                      // missing @time
      "explode trunk @10\n"                               // unknown verb
      "flap l start=0 period=100 down=150 cycles=2\n");   // down >= period
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.errors.size(), 3u);
  EXPECT_TRUE(plan.events.empty());
}

TEST(FaultSchedulerTest, UnknownTargetsAreCountedNotFatal) {
  Engine engine;
  FaultScheduler faults(&engine, nullptr);
  faults.Schedule(FaultPlan::Parse("fail ghost @10; recover ghost @20"));
  engine.Run();
  EXPECT_EQ(faults.stats().unknown_targets, 2u);
  EXPECT_EQ(faults.stats().faults_injected, 0u);
}

// ----------------------- Runtime-level recovery ---------------------------

struct RuntimeRecoveryRig {
  explicit RuntimeRecoveryRig(int faas = 0) {
    ClusterConfig cfg;
    cfg.num_hosts = 1;
    cfg.num_fams = 1;
    cfg.num_faas = faas;
    cluster = std::make_unique<Cluster>(cfg);
    runtime = std::make_unique<UniFabricRuntime>(cluster.get(), RuntimeOptions{});
    faults = std::make_unique<FaultScheduler>(&cluster->engine(), &cluster->fabric());
    faults->RegisterChassis("fam0", cluster->fam(0),
                            cluster->fabric().LinkTo(cluster->fam(0)->id()));
    if (faas > 0) {
      faults->RegisterChassis("faa0", cluster->faa(0),
                              cluster->fabric().LinkTo(cluster->faa(0)->id()));
    }
  }

  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<UniFabricRuntime> runtime;
  std::unique_ptr<FaultScheduler> faults;
};

TEST(RuntimeRecoveryTest, HeapMigrationRecoversAcrossLinkOutage) {
  RuntimeRecoveryRig rig;
  UnifiedHeap* heap = rig.runtime->heap(0);
  const ObjectId id = heap->Allocate(65536, 0);
  ASSERT_NE(id, kInvalidObject);

  rig.faults->Schedule(FaultPlan::Parse("fail fam0 @1\nrecover fam0 @600"));

  bool done = false;
  bool migrated_ok = false;
  heap->Migrate(id, 1, [&](bool ok) {
    done = true;
    migrated_ok = ok;
  });
  rig.cluster->engine().Run();

  EXPECT_TRUE(done);
  EXPECT_TRUE(migrated_ok);
  EXPECT_EQ(heap->TierOf(id), 1);
  EXPECT_EQ(heap->stats().migrations_failed, 0u);
  EXPECT_EQ(heap->stats().bytes_migrated, 65536u);
  // The outage was survived via the retry path, and the campaign ran fully.
  EXPECT_GE(rig.runtime->etrans()->recovery_stats().retries, 1u);
  EXPECT_EQ(rig.runtime->etrans()->recovery_stats().jobs_recovered, 1u);
  EXPECT_EQ(rig.runtime->etrans()->recovery_stats().jobs_aborted, 0u);
  EXPECT_EQ(rig.faults->stats().faults_injected, 1u);
  EXPECT_EQ(rig.faults->stats().recoveries, 1u);
}

TEST(RuntimeRecoveryTest, PermanentFailureRollsBackMigration) {
  RuntimeRecoveryRig rig;
  UnifiedHeap* heap = rig.runtime->heap(0);
  const ObjectId id = heap->Allocate(65536, 0);
  ASSERT_NE(id, kInvalidObject);
  const std::uint64_t tier0_used = heap->TierUsed(0);

  rig.faults->Schedule(FaultPlan::Parse("fail fam0 @1"));  // never recovers

  bool done = false;
  bool migrated_ok = true;
  heap->Migrate(id, 1, [&](bool ok) {
    done = true;
    migrated_ok = ok;
  });
  rig.cluster->engine().Run();

  EXPECT_TRUE(done);
  EXPECT_FALSE(migrated_ok);
  // Rolled back cleanly: same tier, dst reservation returned, still usable.
  EXPECT_EQ(heap->TierOf(id), 0);
  EXPECT_EQ(heap->TierUsed(1), 0u);
  EXPECT_EQ(heap->TierUsed(0), tier0_used);
  EXPECT_EQ(heap->stats().migrations_failed, 1u);
  EXPECT_FALSE(heap->Info(id).migrating);
  EXPECT_GE(rig.runtime->etrans()->recovery_stats().jobs_aborted, 1u);

  bool read_done = false;
  heap->Read(id, [&] { read_done = true; });
  rig.cluster->engine().Run();
  EXPECT_TRUE(read_done);

  // The recovery telemetry is part of the registry snapshot.
  const std::string snap = rig.cluster->engine().metrics().SnapshotJson();
  EXPECT_NE(snap.find("recovery/etrans"), std::string::npos);
  EXPECT_NE(snap.find("recovery/faults"), std::string::npos);
}

TEST(RuntimeRecoveryTest, TaskJobCompletesAcrossFaaOutage) {
  RuntimeRecoveryRig rig(/*faas=*/1);
  UnifiedHeap* heap = rig.runtime->heap(0);
  ITaskRuntime* itasks = rig.runtime->itasks();

  const ObjectId in = heap->Allocate(65536, 0);
  const ObjectId out = heap->Allocate(65536, 0);
  ASSERT_NE(in, kInvalidObject);
  ASSERT_NE(out, kInvalidObject);

  // Chassis power loss mid-job: uplink AND accelerator down, queued kernels
  // lost. The idempotent-task runtime must redrive until commit.
  rig.faults->Schedule(FaultPlan::Parse("fail faa0 @20\nrecover faa0 @900"));

  int committed = 0;
  std::vector<TaskId> ids;
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.inputs = {in};
    spec.outputs = {out};
    spec.compute_cost = FromUs(15.0);
    spec.apply = [&] { ++committed; };
    ids.push_back(itasks->Submit(spec));
  }
  bool all_done = false;
  itasks->OnAllComplete([&] { all_done = true; });
  rig.cluster->engine().Run();

  EXPECT_TRUE(all_done);
  EXPECT_EQ(committed, 3);
  for (const TaskId id : ids) {
    EXPECT_TRUE(itasks->TaskDone(id));
  }
  EXPECT_EQ(itasks->stats().completed, 3u);
  EXPECT_GE(itasks->stats().attempts, 3u);
  EXPECT_EQ(itasks->tasks_pending(), 0u);
}

// ------------- coherent window under chassis fault campaigns --------------

struct Rec {
  std::int64_t value = 0;
};

// A chassis outage in the middle of an invalidation handshake: the write
// must either complete (ok=true) or fail terminally (ok=false) with the
// host-side shadow untouched — a stale Modified line must never be readable
// anywhere. After recovery the protocol must work again.
TEST(RuntimeRecoveryTest, CoherentWriteDuringChassisFlapFailsTerminallyOrCompletes) {
  ClusterConfig ccfg;
  ccfg.num_hosts = 2;
  ccfg.num_fams = 1;
  ccfg.num_faas = 0;
  Cluster cluster(ccfg);
  RuntimeOptions opts;
  opts.coherent_window = true;
  opts.coherent.ack_deadline = FromUs(20.0);
  opts.coherent.txn_deadline = FromUs(50.0);
  UniFabricRuntime runtime(&cluster, opts);
  FaultScheduler faults(&cluster.engine(), &cluster.fabric());
  faults.RegisterChassis("fam0", cluster.fam(0),
                         cluster.fabric().LinkTo(cluster.fam(0)->id()));

  CoherentWindow* window = runtime.coherent_window();
  auto rec = CohPtr<Rec>::Make(window, Rec{5});
  const std::uint64_t addr = rec.addr();

  // Warm a shared copy at host 0, so host 1's write needs an invalidation.
  bool warm = false;
  rec.Read(runtime.coherent_port(0), [&](const Rec& r, bool ok) {
    warm = ok && r.value == 5;
  });
  cluster.engine().Run();
  ASSERT_TRUE(warm);

  // The chassis goes down right as the write's GetM is in flight and stays
  // down past both deadlines (plan times are microseconds); the handshake
  // cannot complete.
  const double t0_us = ToNs(cluster.engine().Now()) / 1000.0;
  char plan[96];
  std::snprintf(plan, sizeof(plan), "flap fam0 start=%.3f period=200 down=80 cycles=1",
                t0_us + 0.1);
  faults.Schedule(FaultPlan::Parse(plan));
  bool done = false;
  bool ok = true;
  rec.Write(runtime.coherent_port(1), Rec{99}, [&](bool k) {
    done = true;
    ok = k;
  });
  cluster.engine().Run();

  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  // Never-observable failed write: shadow still holds the committed value,
  // and no port is left holding a Modified line the directory or the fault
  // didn't account for.
  EXPECT_EQ(rec.Peek().value, 5);
  CoherentDirectory* dir = runtime.coherent_directory();
  for (int h = 0; h < 2; ++h) {
    if (runtime.coherent_port(h)->HoldsModified(addr)) {
      EXPECT_EQ(dir->StateOf(addr), CoherentDirectory::BlockState::kModified);
      EXPECT_EQ(dir->OwnerOf(addr), h);
    }
  }
  EXPECT_GT(runtime.coherent_port(1)->stats().txn_failures, 0u);

  // The chassis is back: the same write now completes and is visible at the
  // other host through the protocol.
  bool redo_ok = false;
  rec.Write(runtime.coherent_port(1), Rec{42}, [&](bool k) { redo_ok = k; });
  cluster.engine().Run();
  EXPECT_TRUE(redo_ok);
  std::int64_t seen = -1;
  bool read_ok = false;
  rec.Read(runtime.coherent_port(0), [&](const Rec& r, bool k) {
    seen = r.value;
    read_ok = k;
  });
  cluster.engine().Run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(faults.stats().faults_injected, 1u);
  EXPECT_EQ(faults.stats().recoveries, 1u);
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
