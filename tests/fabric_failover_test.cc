// Link-failure and fabric-manager re-routing tests (paper §3 Difference #5
// applied to the interconnect itself, plus the fabric manager's role from
// §2.1: the routing tables are its to rebuild).

#include <gtest/gtest.h>

#include <memory>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

AdapterConfig Lean() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(20);
  cfg.response_proc_latency = FromNs(20);
  return cfg;
}

// Redundant topology: two switches joined by TWO trunks; a host on sw0 and
// a FAM on sw1.
struct RedundantRig {
  RedundantRig() : fabric(&engine, 3) {
    sw0 = fabric.AddSwitch(SwitchConfig{}, "sw0");
    sw1 = fabric.AddSwitch(SwitchConfig{}, "sw1");
    trunk_a = fabric.Connect(sw0, sw1, LinkConfig{});
    trunk_b = fabric.Connect(sw0, sw1, LinkConfig{});
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "dram");
    host = fabric.AddHostAdapter(Lean(), "host");
    fea = fabric.AddEndpointAdapter(Lean(), "fea", dram.get());
    fabric.Connect(sw0, host, LinkConfig{});
    fabric.Connect(sw1, fea, LinkConfig{});
    fabric.ConfigureRouting();
  }

  bool RoundTrip() {
    bool done = false;
    MemRequest req;
    req.type = MemRequest::Type::kRead;
    req.bytes = 64;
    host->Submit(fea->id(), req, [&] { done = true; });
    engine.RunFor(FromUs(50));
    return done;
  }

  Engine engine;
  FabricInterconnect fabric;
  FabricSwitch* sw0;
  FabricSwitch* sw1;
  Link* trunk_a;
  Link* trunk_b;
  std::unique_ptr<DramDevice> dram;
  HostAdapter* host;
  EndpointAdapter* fea;
};

TEST(LinkFailureTest, FailedLinkRefusesSends) {
  Engine engine;
  Link link(&engine, LinkConfig{}, 1, "l");
  link.Fail();
  Flit f;
  f.channel = Channel::kMem;
  EXPECT_FALSE(link.end(0).Send(f));
  link.Recover();
  // Recovered link accepts again (no receiver bound, so don't run).
  EXPECT_TRUE(link.end(0).Send(f));
}

TEST(LinkFailureTest, InFlightFlitsAreDropped) {
  Engine engine;
  LinkConfig cfg;
  cfg.propagation = FromUs(1);  // long flight time
  Link link(&engine, cfg, 1, "l");

  struct Counter : FlitReceiver {
    int received = 0;
    void ReceiveFlit(const Flit&, int) override { ++received; }
  } rx;
  link.end(0).Bind(nullptr, 0);
  link.end(1).Bind(&rx, 0);

  Flit f;
  f.channel = Channel::kMem;
  ASSERT_TRUE(link.end(0).Send(f));
  engine.RunFor(FromNs(100));  // flit is on the wire
  link.Fail();
  engine.Run();
  EXPECT_EQ(rx.received, 0);
}

TEST(FailoverTest, TrunkFailureReroutesOverRedundantPath) {
  RedundantRig rig;
  ASSERT_TRUE(rig.RoundTrip());

  // Kill the trunk currently carrying traffic; without re-routing, requests
  // black-hole.
  rig.trunk_a->Fail();
  const bool before_reroute = rig.RoundTrip();

  rig.fabric.ConfigureRouting();  // fabric manager repairs the tables
  EXPECT_TRUE(rig.RoundTrip());

  // Either the first trunk wasn't the active one (so traffic never stopped)
  // or re-routing fixed it; in both cases the post-reroute path works.
  (void)before_reroute;
  EXPECT_EQ(rig.fabric.HopCount(rig.host->id(), rig.fea->id()), 3);
}

TEST(FailoverTest, BothTrunksDownMakesTargetUnreachable) {
  RedundantRig rig;
  rig.trunk_a->Fail();
  rig.trunk_b->Fail();
  rig.fabric.ConfigureRouting();
  EXPECT_EQ(rig.fabric.HopCount(rig.host->id(), rig.fea->id()), -1);
  EXPECT_FALSE(rig.RoundTrip());
}

TEST(FailoverTest, RecoveryRestoresOriginalPath) {
  RedundantRig rig;
  rig.trunk_a->Fail();
  rig.trunk_b->Fail();
  rig.fabric.ConfigureRouting();
  ASSERT_FALSE(rig.RoundTrip());

  rig.trunk_b->Recover();
  rig.fabric.ConfigureRouting();
  EXPECT_TRUE(rig.RoundTrip());
}

TEST(FailoverTest, EdgeLinkFailureIsolatesOnlyThatAdapter) {
  // Two hosts on one switch; killing host0's link must not disturb host1.
  Engine engine;
  FabricInterconnect fabric(&engine, 9);
  auto* sw = fabric.AddSwitch(SwitchConfig{}, "sw");
  DramDevice dram(&engine, OmegaLocalDram(), "d");
  auto* fea = fabric.AddEndpointAdapter(Lean(), "fea", &dram);
  fabric.Connect(sw, fea, LinkConfig{});
  auto* h0 = fabric.AddHostAdapter(Lean(), "h0");
  Link* l0 = fabric.Connect(sw, h0, LinkConfig{});
  auto* h1 = fabric.AddHostAdapter(Lean(), "h1");
  fabric.Connect(sw, h1, LinkConfig{});
  fabric.ConfigureRouting();

  l0->Fail();
  bool h1_done = false;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.bytes = 64;
  h1->Submit(fea->id(), req, [&] { h1_done = true; });
  engine.RunFor(FromUs(50));
  EXPECT_TRUE(h1_done);
  EXPECT_EQ(fabric.HopCount(h0->id(), fea->id()), -1);
}

}  // namespace
}  // namespace unifab
