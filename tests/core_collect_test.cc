// eCollect: schedule construction, algorithm selection, and the collective
// engine end-to-end on a simulated cluster (including mid-collective
// chassis faults).

#include "src/core/collect.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/collect_algo.h"
#include "src/core/runtime.h"
#include "src/topo/faults.h"

namespace unifab {
namespace {

// ------------------------- Schedule shapes -------------------------------

TEST(CollectAlgoTest, RingAllReduceShape) {
  const int n = 4;
  const std::uint64_t bytes = 1000;
  const CollectiveSchedule s = BuildAllReduce(CollectiveAlgorithm::kRing, n, bytes);
  ASSERT_EQ(s.steps.size(), static_cast<std::size_t>(2 * (n - 1)));
  EXPECT_EQ(s.DepthSteps(), 2 * (n - 1));
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    EXPECT_EQ(s.steps[i].transfers.size(), static_cast<std::size_t>(n)) << "round " << i;
    EXPECT_EQ(s.steps[i].reducing, i < static_cast<std::size_t>(n - 1)) << "round " << i;
  }
  // Every round circulates the full buffer once (each member one slice).
  EXPECT_EQ(s.TotalBytes(), 2u * (n - 1) * bytes);
}

TEST(CollectAlgoTest, BinomialBroadcastShape) {
  const std::uint64_t bytes = 4096;
  const CollectiveSchedule s =
      BuildBroadcast(CollectiveAlgorithm::kBinomialTree, 8, /*root=*/2, bytes, {});
  ASSERT_EQ(s.steps.size(), 3u);  // ceil(log2 8)
  EXPECT_EQ(s.steps[0].transfers.size(), 1u);
  EXPECT_EQ(s.steps[1].transfers.size(), 2u);
  EXPECT_EQ(s.steps[2].transfers.size(), 4u);
  EXPECT_EQ(s.DepthSteps(), 3);
  EXPECT_EQ(s.TotalBytes(), 7u * bytes);  // n-1 receivers, full payload each
}

TEST(CollectAlgoTest, BinomialTreeAllReduceMovesTwiceNMinusOnePayloads) {
  const std::uint64_t bytes = 512;
  const CollectiveSchedule s = BuildAllReduce(CollectiveAlgorithm::kBinomialTree, 5, bytes);
  ASSERT_EQ(s.steps.size(), 6u);  // 3 reduce rounds + 3 broadcast rounds
  EXPECT_EQ(s.TotalBytes(), 2u * 4u * bytes);
  EXPECT_TRUE(s.steps[0].reducing);
  EXPECT_FALSE(s.steps[5].reducing);
}

TEST(CollectAlgoTest, ScatterGatherAreSingleLinearSteps) {
  const CollectiveSchedule sc = BuildScatter(6, /*root=*/1, 256);
  ASSERT_EQ(sc.steps.size(), 1u);
  EXPECT_EQ(sc.steps[0].transfers.size(), 5u);  // root keeps its own slice
  EXPECT_EQ(sc.algo, CollectiveAlgorithm::kLinear);
  for (const auto& t : sc.steps[0].transfers) {
    EXPECT_EQ(t.src, 1);
    EXPECT_EQ(t.src_offset, static_cast<std::uint64_t>(t.dst) * 256u);
    EXPECT_EQ(t.dst_offset, 0u);
  }

  const CollectiveSchedule g = BuildGather(6, /*root=*/0, 256);
  ASSERT_EQ(g.steps.size(), 1u);
  EXPECT_EQ(g.steps[0].transfers.size(), 5u);
  for (const auto& t : g.steps[0].transfers) {
    EXPECT_EQ(t.dst, 0);
    EXPECT_EQ(t.dst_offset, static_cast<std::uint64_t>(t.src) * 256u);
  }
}

TEST(CollectAlgoTest, DegenerateGroupsProduceEmptySchedules) {
  EXPECT_TRUE(BuildAllReduce(CollectiveAlgorithm::kRing, 1, 4096).steps.empty());
  EXPECT_TRUE(BuildBroadcast(CollectiveAlgorithm::kRing, 4, 0, 0, {}).steps.empty());
  EXPECT_EQ(BuildAllReduce(CollectiveAlgorithm::kRing, 1, 4096).DepthSteps(), 0);
}

TEST(CollectAlgoTest, RingBroadcastPipelinesChunksAcrossHops) {
  CollectivePlanConfig cfg;
  cfg.chunk_bytes = 1024;
  cfg.pipeline_chunks = 4;
  const CollectiveSchedule s =
      BuildBroadcast(CollectiveAlgorithm::kRing, 4, /*root=*/0, 8192, cfg);
  // 3 hops x 4 chunks, one transfer per (hop, chunk) step.
  ASSERT_EQ(s.steps.size(), 12u);
  EXPECT_EQ(s.TotalBytes(), 3u * 8192u);
  // Pipelined: a chunk only waits for its own previous hop, so the
  // dependency depth is the hop count, not hops * chunks. Same-link
  // serialization between chunks is the fabric model's job.
  EXPECT_EQ(s.DepthSteps(), 3);
}

// ------------------- Data-flow correctness (simulated) -------------------

// Replays a schedule over per-member byte-range "contribution sets" and
// checks the semantic postcondition of the collective. Transfers within a
// step read a snapshot (concurrent rounds must not see same-round writes).
using MemberData = std::map<std::uint64_t, std::set<int>>;  // offset -> contributors

std::vector<MemberData> Replay(const CollectiveSchedule& s, int n,
                               const std::vector<MemberData>& init) {
  std::vector<MemberData> data = init;
  std::vector<bool> done(s.steps.size(), false);
  // Steps' deps always point backwards, so index order is a valid topological
  // execution order.
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    for (int dep : s.steps[i].deps) {
      EXPECT_TRUE(done[static_cast<std::size_t>(dep)]);
    }
    std::vector<std::pair<const StepTransfer*, std::set<int>>> reads;
    for (const auto& t : s.steps[i].transfers) {
      reads.emplace_back(&t, data[static_cast<std::size_t>(t.src)][t.src_offset]);
    }
    for (const auto& [t, src_val] : reads) {
      std::set<int>& dst = data[static_cast<std::size_t>(t->dst)][t->dst_offset];
      if (s.steps[i].reducing) {
        dst.insert(src_val.begin(), src_val.end());
      } else {
        dst = src_val;
      }
    }
    done[i] = true;
  }
  EXPECT_EQ(n, s.num_members);
  return data;
}

TEST(CollectAlgoTest, RingAllReduceReducesEverySliceEverywhere) {
  const int n = 5;
  const std::uint64_t bytes = 5000;  // 5 slices of 1000
  const CollectiveSchedule s = BuildAllReduce(CollectiveAlgorithm::kRing, n, bytes);

  std::set<int> everyone;
  std::vector<MemberData> init(n);
  for (int i = 0; i < n; ++i) {
    everyone.insert(i);
    for (int sl = 0; sl < n; ++sl) {
      init[static_cast<std::size_t>(i)][static_cast<std::uint64_t>(sl) * 1000u] = {i};
    }
  }
  const auto out = Replay(s, n, init);
  for (int i = 0; i < n; ++i) {
    for (int sl = 0; sl < n; ++sl) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)].at(static_cast<std::uint64_t>(sl) * 1000u),
                everyone)
          << "member " << i << " slice " << sl;
    }
  }
}

TEST(CollectAlgoTest, TreeAllReduceReducesFullBufferEverywhere) {
  const int n = 6;
  const CollectiveSchedule s = BuildAllReduce(CollectiveAlgorithm::kBinomialTree, n, 4096);
  std::set<int> everyone;
  std::vector<MemberData> init(n);
  for (int i = 0; i < n; ++i) {
    everyone.insert(i);
    init[static_cast<std::size_t>(i)][0] = {i};
  }
  const auto out = Replay(s, n, init);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].at(0), everyone) << "member " << i;
  }
}

TEST(CollectAlgoTest, RingAllGatherDeliversEverySliceToEveryMember) {
  const int n = 4;
  const std::uint64_t slice = 512;
  const CollectiveSchedule s = BuildAllGather(CollectiveAlgorithm::kRing, n, slice);
  std::vector<MemberData> init(n);
  for (int i = 0; i < n; ++i) {
    init[static_cast<std::size_t>(i)][static_cast<std::uint64_t>(i) * slice] = {i};
  }
  const auto out = Replay(s, n, init);
  for (int i = 0; i < n; ++i) {
    for (int sl = 0; sl < n; ++sl) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)].at(static_cast<std::uint64_t>(sl) * slice),
                std::set<int>{sl})
          << "member " << i << " slice " << sl;
    }
  }
}

TEST(CollectAlgoTest, BinomialReduceLandsEveryContributionAtRoot) {
  const int n = 7;
  const int root = 3;
  const CollectiveSchedule s = BuildReduce(CollectiveAlgorithm::kBinomialTree, n, root, 1024);
  std::set<int> everyone;
  std::vector<MemberData> init(n);
  for (int i = 0; i < n; ++i) {
    everyone.insert(i);
    init[static_cast<std::size_t>(i)][0] = {i};
  }
  const auto out = Replay(s, n, init);
  EXPECT_EQ(out[static_cast<std::size_t>(root)].at(0), everyone);
}

// ----------------- Hierarchical (pod-aware) AllReduce --------------------

// Byte-granular replay: like Replay but tracking every byte, so schedules
// mixing slice-offset rounds (intra-pod ring) with whole-buffer rounds
// (leader tree) verify end to end.
std::vector<std::vector<std::set<int>>> ReplayBytes(const CollectiveSchedule& s, int n,
                                                    std::uint64_t bytes) {
  std::vector<std::vector<std::set<int>>> data(
      static_cast<std::size_t>(n), std::vector<std::set<int>>(static_cast<std::size_t>(bytes)));
  for (int i = 0; i < n; ++i) {
    for (std::uint64_t b = 0; b < bytes; ++b) {
      data[static_cast<std::size_t>(i)][b] = {i};
    }
  }
  std::vector<bool> done(s.steps.size(), false);
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    for (int dep : s.steps[i].deps) {
      EXPECT_TRUE(done[static_cast<std::size_t>(dep)]);
    }
    std::vector<std::vector<std::set<int>>> reads;
    for (const auto& t : s.steps[i].transfers) {
      std::vector<std::set<int>> r;
      for (std::uint64_t b = 0; b < t.bytes; ++b) {
        r.push_back(data[static_cast<std::size_t>(t.src)][t.src_offset + b]);
      }
      reads.push_back(std::move(r));
    }
    for (std::size_t k = 0; k < s.steps[i].transfers.size(); ++k) {
      const auto& t = s.steps[i].transfers[k];
      for (std::uint64_t b = 0; b < t.bytes; ++b) {
        std::set<int>& dst = data[static_cast<std::size_t>(t.dst)][t.dst_offset + b];
        if (s.steps[i].reducing) {
          dst.insert(reads[k][b].begin(), reads[k][b].end());
        } else {
          dst = reads[k][b];
        }
      }
    }
    done[i] = true;
  }
  return data;
}

TEST(CollectAlgoTest, HierarchicalAllReduceReducesEveryByteEverywhere) {
  const int n = 8;
  const std::uint64_t bytes = 24;
  const std::vector<int> pod_of = {0, 0, 0, 1, 1, 1, 2, 2};  // uneven pods
  const CollectiveSchedule s = BuildHierarchicalAllReduce(n, bytes, pod_of);
  EXPECT_EQ(s.algo, CollectiveAlgorithm::kHierarchical);
  EXPECT_EQ(s.num_members, n);

  std::set<int> everyone;
  for (int i = 0; i < n; ++i) {
    everyone.insert(i);
  }
  const auto out = ReplayBytes(s, n, bytes);
  for (int i = 0; i < n; ++i) {
    for (std::uint64_t b = 0; b < bytes; ++b) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)][b], everyone)
          << "member " << i << " byte " << b;
    }
  }
}

TEST(CollectAlgoTest, HierarchicalDegeneratesToRingInOnePod) {
  const std::vector<int> one_pod = {0, 0, 0, 0};
  const CollectiveSchedule s = BuildHierarchicalAllReduce(4, 4096, one_pod);
  EXPECT_EQ(s.algo, CollectiveAlgorithm::kRing);
  EXPECT_EQ(s.steps.size(), BuildAllReduce(CollectiveAlgorithm::kRing, 4, 4096).steps.size());
}

TEST(CollectAlgoTest, HierarchicalCrossesBridgesOnlyThroughLeaders) {
  const int n = 8;
  const std::vector<int> pod_of = {0, 0, 0, 0, 1, 1, 1, 1};
  const CollectiveSchedule s = BuildHierarchicalAllReduce(n, 64 * 1024, pod_of);
  // Only the two pod leaders (members 0 and 4) may appear in a transfer
  // whose endpoints live in different pods.
  for (const auto& step : s.steps) {
    for (const auto& t : step.transfers) {
      if (pod_of[static_cast<std::size_t>(t.src)] != pod_of[static_cast<std::size_t>(t.dst)]) {
        EXPECT_TRUE((t.src == 0 || t.src == 4) && (t.dst == 0 || t.dst == 4))
            << t.src << " -> " << t.dst;
      }
    }
  }
}

TEST(CollectAlgoTest, TwoTierModelPicksHierarchicalInItsSweetSpot) {
  // 16 pods of 4 over a slow bridge tier, moderate payload: flat ring pays
  // 2(n-1) bridge alphas and flat tree moves the full payload across the
  // bridge every round — the hierarchy wins the crossover.
  CollectivePlanConfig cfg;
  cfg.bridge_alpha_us = 5.0;
  cfg.bridge_mbps = 1250.0;  // 10GbE
  const int n = 64;
  std::vector<int> pod_of(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pod_of[static_cast<std::size_t>(i)] = i / 4;
  }
  const std::uint64_t bytes = 64 * 1024;
  const double ring = EstimateAllReduceCostUs(CollectiveAlgorithm::kRing, n, bytes, 6, pod_of, cfg);
  const double tree =
      EstimateAllReduceCostUs(CollectiveAlgorithm::kBinomialTree, n, bytes, 6, pod_of, cfg);
  const double hier =
      EstimateAllReduceCostUs(CollectiveAlgorithm::kHierarchical, n, bytes, 6, pod_of, cfg);
  EXPECT_LT(hier, ring);
  EXPECT_LT(hier, tree);
  EXPECT_EQ(ChooseAllReduceAlgorithm(n, bytes, 6, pod_of, cfg),
            CollectiveAlgorithm::kHierarchical);
}

TEST(CollectAlgoTest, ChooserFallsBackToFlatWithoutABridgeTier) {
  const CollectivePlanConfig flat;  // bridge_alpha_us == bridge_mbps == 0
  std::vector<int> pod_of = {0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_EQ(ChooseAllReduceAlgorithm(8, 256 * 1024, 2, pod_of, flat),
            ChooseAlgorithm(CollectiveOp::kAllReduce, 8, 256 * 1024, 2, flat));

  // Single-pod groups never pick the hierarchy even with a bridge tier.
  CollectivePlanConfig cfg;
  cfg.bridge_alpha_us = 5.0;
  cfg.bridge_mbps = 1250.0;
  std::vector<int> one_pod(8, 0);
  const CollectiveAlgorithm algo = ChooseAllReduceAlgorithm(8, 256 * 1024, 2, one_pod, cfg);
  EXPECT_NE(algo, CollectiveAlgorithm::kHierarchical);
}

// ------------------------- Algorithm selection ---------------------------

TEST(CollectAlgoTest, LargePayloadIntraChassisPrefersRing) {
  const CollectivePlanConfig cfg;
  EXPECT_EQ(ChooseAlgorithm(CollectiveOp::kAllReduce, 8, 256 * 1024, /*span_hops=*/2, cfg),
            CollectiveAlgorithm::kRing);
}

TEST(CollectAlgoTest, SmallPayloadCrossSwitchPrefersTree) {
  const CollectivePlanConfig cfg;
  EXPECT_EQ(ChooseAlgorithm(CollectiveOp::kAllReduce, 8, 4 * 1024, /*span_hops=*/4, cfg),
            CollectiveAlgorithm::kBinomialTree);
}

TEST(CollectAlgoTest, ScatterGatherAlwaysLinear) {
  EXPECT_EQ(ChooseAlgorithm(CollectiveOp::kScatter, 16, 1 << 20, 2, {}),
            CollectiveAlgorithm::kLinear);
  EXPECT_EQ(ChooseAlgorithm(CollectiveOp::kGather, 16, 64, 6, {}),
            CollectiveAlgorithm::kLinear);
}

TEST(CollectAlgoTest, SelectionMatchesCostModel) {
  const CollectivePlanConfig cfg;
  for (const std::uint64_t bytes : {1024ull, 32768ull, 1048576ull}) {
    for (const int span : {2, 4, 6}) {
      const double ring =
          EstimateCostUs(CollectiveOp::kAllReduce, CollectiveAlgorithm::kRing, 8, bytes, span, cfg);
      const double tree = EstimateCostUs(CollectiveOp::kAllReduce,
                                         CollectiveAlgorithm::kBinomialTree, 8, bytes, span, cfg);
      const CollectiveAlgorithm want =
          ring < tree ? CollectiveAlgorithm::kRing : CollectiveAlgorithm::kBinomialTree;
      EXPECT_EQ(ChooseAlgorithm(CollectiveOp::kAllReduce, 8, bytes, span, cfg), want);
    }
  }
}

// ------------------------- Future plumbing -------------------------------

TEST(CollectFutureTest, TryFulfillIsExactlyOnce) {
  DistFuture<int> f;
  int fired = 0;
  int seen = 0;
  f.Then([&](const int& v) {
    ++fired;
    seen = v;
  });
  EXPECT_TRUE(f.TryFulfill(7));
  EXPECT_FALSE(f.TryFulfill(9));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(f.Value(), 7);
}

// ------------------------- Engine integration ----------------------------

ClusterConfig CollectCluster(int faas, int switches = 1) {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = faas;
  cfg.num_switches = switches;
  return cfg;
}

class CollectEngineTest : public ::testing::Test {
 protected:
  CollectEngineTest() : cluster_(CollectCluster(4)), runtime_(&cluster_, RuntimeOptions{}) {}

  CollectiveGroup FaaGroup(int n, std::uint64_t base = 1ULL << 20) {
    CollectiveGroup g;
    for (int i = 0; i < n; ++i) {
      g.members.push_back(CollectiveMember{cluster_.faa(i)->id(), base});
    }
    return g;
  }

  void ExpectAuditClean() {
    const auto violations = cluster_.engine().audit().Sweep();
    for (const auto& v : violations) {
      ADD_FAILURE() << v.path << ": " << v.message;
    }
  }

  Cluster cluster_;
  UniFabricRuntime runtime_;
};

TEST_F(CollectEngineTest, SpanOfSameSwitchGroupIsTwoHops) {
  EXPECT_EQ(runtime_.collect()->SpanOf(FaaGroup(4)), 2);
}

TEST_F(CollectEngineTest, AllReduceOverFaasCompletesAndConservesBytes) {
  const std::uint64_t kBytes = 64 * 1024;
  CollectiveFuture f = runtime_.collect()->AllReduce(FaaGroup(4), kBytes);
  cluster_.engine().Run();

  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_EQ(f.Value().status, TransferStatus::kOk);
  // Ring for a large intra-switch payload; every planned byte moved.
  EXPECT_EQ(f.Value().algorithm, CollectiveAlgorithm::kRing);
  EXPECT_EQ(f.Value().bytes, BuildAllReduce(CollectiveAlgorithm::kRing, 4, kBytes).TotalBytes());
  EXPECT_EQ(runtime_.collect()->stats().collectives_completed, 1u);
  EXPECT_EQ(runtime_.collect()->stats().collectives_failed, 0u);
  ExpectAuditClean();
}

TEST_F(CollectEngineTest, MemberTrafficRunsOnMemberUplinksViaPush) {
  runtime_.collect()->AllReduce(FaaGroup(4), 64 * 1024, CollectiveAlgorithm::kRing);
  cluster_.engine().Run();
  // Ring steps are FAA -> FAA: executed by the src member's push-enabled
  // agent, not funneled through the host adapter.
  std::uint64_t pushes = 0;
  std::uint64_t jobs = 0;
  for (int i = 0; i < 4; ++i) {
    pushes += runtime_.faa_agent(i)->stats().pushes_sent;
    jobs += runtime_.faa_agent(i)->stats().jobs_executed;
  }
  EXPECT_GT(pushes, 0u);
  EXPECT_GT(jobs, 0u);
  EXPECT_EQ(runtime_.host_agent(0)->stats().jobs_executed, 0u);
}

TEST_F(CollectEngineTest, AggregateReservationHeldThenReleased) {
  CollectiveFuture f = runtime_.collect()->AllReduce(FaaGroup(4), 256 * 1024);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  // One reservation per distinct destination (all 4 FAAs receive).
  EXPECT_GE(runtime_.arbiter()->stats().reservations, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(runtime_.arbiter()->ReservedOf(cluster_.faa(i)->id()), 0.0) << i;
  }
}

TEST_F(CollectEngineTest, AllSixOperationsComplete) {
  const CollectiveGroup g = FaaGroup(4);
  CollectiveEngine* coll = runtime_.collect();
  std::vector<CollectiveFuture> futures;
  futures.push_back(coll->Broadcast(g, /*root=*/0, 32 * 1024));
  futures.push_back(coll->Scatter(g, /*root=*/0, 8 * 1024));
  futures.push_back(coll->Gather(g, /*root=*/1, 8 * 1024));
  futures.push_back(coll->Reduce(g, /*root=*/2, 32 * 1024));
  futures.push_back(coll->AllGather(g, 8 * 1024));
  futures.push_back(coll->AllReduce(g, 32 * 1024));
  cluster_.engine().Run();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].Ready()) << "op " << i;
    EXPECT_TRUE(futures[i].Value().ok) << "op " << i;
  }
  EXPECT_EQ(coll->stats().collectives_completed, 6u);
  ExpectAuditClean();
}

TEST_F(CollectEngineTest, MixedGroupWithHostAndFamCompletes) {
  CollectiveGroup g;
  g.members.push_back(CollectiveMember{cluster_.host(0)->id(), 1ULL << 20});
  g.members.push_back(CollectiveMember{cluster_.fam(0)->id(), 1ULL << 20});
  g.members.push_back(CollectiveMember{cluster_.faa(0)->id(), 1ULL << 20});
  g.members.push_back(CollectiveMember{cluster_.faa(1)->id(), 1ULL << 20});
  CollectiveFuture f = runtime_.collect()->Gather(g, /*root=*/0, 16 * 1024);
  cluster_.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  ExpectAuditClean();
}

TEST_F(CollectEngineTest, DegenerateSingleMemberCollectiveIsImmediatelyOk) {
  CollectiveGroup g;
  g.members.push_back(CollectiveMember{cluster_.faa(0)->id(), 1ULL << 20});
  CollectiveFuture f = runtime_.collect()->AllReduce(g, 4096);
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_EQ(f.Value().bytes, 0u);
}

TEST_F(CollectEngineTest, PushEnabledAgentAcceptsRemoteDestinations) {
  ETransDescriptor desc;
  desc.src.push_back(Segment{cluster_.faa(0)->id(), 0, 4096});
  desc.dst.push_back(Segment{cluster_.faa(1)->id(), 0, 4096});
  EXPECT_TRUE(runtime_.faa_agent(0)->CanExecute(desc));
  // Remote *source* still disqualifies an endpoint agent.
  ETransDescriptor rev;
  rev.src.push_back(Segment{cluster_.faa(1)->id(), 0, 4096});
  rev.dst.push_back(Segment{cluster_.faa(0)->id(), 0, 4096});
  EXPECT_FALSE(runtime_.faa_agent(0)->CanExecute(rev));
  // FAM agents stay push-disabled and chassis-local.
  ETransDescriptor fam;
  fam.src.push_back(Segment{cluster_.fam(0)->id(), 0, 4096});
  fam.dst.push_back(Segment{cluster_.faa(0)->id(), 0, 4096});
  EXPECT_FALSE(runtime_.fam_agent(0)->CanExecute(fam));
}

TEST_F(CollectEngineTest, ChassisFlapMidCollectiveStillCompletesOk) {
  FaultScheduler faults(&cluster_.engine(), &cluster_.fabric());
  faults.RegisterChassis("faa1", cluster_.faa(1),
                         cluster_.fabric().LinkTo(cluster_.faa(1)->id()));
  const FaultPlan plan = FaultPlan::Parse("flap faa1 start=50 period=600 down=200 cycles=2");
  ASSERT_TRUE(plan.ok());
  faults.Schedule(plan);

  const std::uint64_t kBytes = 128 * 1024;
  CollectiveFuture f = runtime_.collect()->AllReduce(FaaGroup(4), kBytes);
  cluster_.engine().Run();

  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_EQ(f.Value().status, TransferStatus::kOk);
  // Byte conservation across retries: exactly the planned bytes credited,
  // never double-counted from a stale attempt.
  EXPECT_EQ(f.Value().bytes,
            BuildAllReduce(f.Value().algorithm, 4, kBytes).TotalBytes());
  EXPECT_GE(faults.stats().faults_injected, 1u);
  ExpectAuditClean();
}

// --------------------- Bounded admission (ROADMAP 4) ----------------------

TEST_F(CollectEngineTest, OverlappingCollectivesOnBusyMembersQueueThenRun) {
  CollectiveEngine* coll = runtime_.collect();
  CollectiveFuture f1 = coll->AllReduce(FaaGroup(4), 64 * 1024);
  CollectiveFuture f2 = coll->AllReduce(FaaGroup(4), 64 * 1024);
  // The second arrives while every member is busy: it must wait, not race.
  EXPECT_EQ(coll->stats().collectives_queued, 1u);
  cluster_.engine().Run();

  ASSERT_TRUE(f1.Ready());
  ASSERT_TRUE(f2.Ready());
  EXPECT_TRUE(f1.Value().ok);
  EXPECT_TRUE(f2.Value().ok);
  // The queued one started strictly after the first finished.
  EXPECT_GT(f2.Value().completed_at, f1.Value().completed_at);
  EXPECT_EQ(coll->stats().collectives_rejected, 0u);
  EXPECT_EQ(coll->stats().admit_wait_us.Count(), 1u);
  EXPECT_GT(coll->stats().admit_wait_us.Max(), 0.0);
  ExpectAuditClean();
}

TEST_F(CollectEngineTest, DisjointGroupsAdmitConcurrentlyWithoutQueueing) {
  CollectiveEngine* coll = runtime_.collect();
  CollectiveGroup a, b;
  a.members.push_back(CollectiveMember{cluster_.faa(0)->id(), 1ULL << 20});
  a.members.push_back(CollectiveMember{cluster_.faa(1)->id(), 1ULL << 20});
  b.members.push_back(CollectiveMember{cluster_.faa(2)->id(), 1ULL << 20});
  b.members.push_back(CollectiveMember{cluster_.faa(3)->id(), 1ULL << 20});
  CollectiveFuture fa = coll->AllReduce(a, 64 * 1024);
  CollectiveFuture fb = coll->AllReduce(b, 64 * 1024);
  EXPECT_EQ(coll->stats().collectives_queued, 0u);
  cluster_.engine().Run();
  ASSERT_TRUE(fa.Ready());
  ASSERT_TRUE(fb.Ready());
  EXPECT_TRUE(fa.Value().ok);
  EXPECT_TRUE(fb.Value().ok);
  ExpectAuditClean();
}

TEST(CollectAdmissionTest, QueueOverflowRejectsWithAbortedNotARace) {
  Cluster cluster(CollectCluster(4));
  RuntimeOptions options;
  options.collect.max_queued_collectives = 1;
  UniFabricRuntime runtime(&cluster, options);
  CollectiveGroup g;
  for (int i = 0; i < 4; ++i) {
    g.members.push_back(CollectiveMember{cluster.faa(i)->id(), 1ULL << 20});
  }
  CollectiveEngine* coll = runtime.collect();
  CollectiveFuture f1 = coll->AllReduce(g, 64 * 1024);  // admitted
  CollectiveFuture f2 = coll->AllReduce(g, 64 * 1024);  // queued
  CollectiveFuture f3 = coll->AllReduce(g, 64 * 1024);  // over the bound

  ASSERT_TRUE(f3.Ready());  // rejected synchronously
  EXPECT_FALSE(f3.Value().ok);
  EXPECT_EQ(f3.Value().status, TransferStatus::kAborted);
  EXPECT_EQ(coll->stats().collectives_rejected, 1u);

  cluster.engine().Run();
  ASSERT_TRUE(f1.Ready());
  ASSERT_TRUE(f2.Ready());
  EXPECT_TRUE(f1.Value().ok);
  EXPECT_TRUE(f2.Value().ok);
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

TEST(CollectAdmissionTest, ZeroBoundKeepsTheLegacyLaunchImmediatelyPath) {
  Cluster cluster(CollectCluster(4));
  RuntimeOptions options;
  options.collect.max_queued_collectives = 0;
  UniFabricRuntime runtime(&cluster, options);
  CollectiveGroup g;
  for (int i = 0; i < 4; ++i) {
    g.members.push_back(CollectiveMember{cluster.faa(i)->id(), 1ULL << 20});
  }
  CollectiveFuture f1 = runtime.collect()->AllReduce(g, 32 * 1024);
  CollectiveFuture f2 = runtime.collect()->AllReduce(g, 32 * 1024);
  EXPECT_EQ(runtime.collect()->stats().collectives_queued, 0u);
  EXPECT_EQ(runtime.collect()->stats().collectives_rejected, 0u);
  cluster.engine().Run();
  ASSERT_TRUE(f1.Ready());
  ASSERT_TRUE(f2.Ready());
  EXPECT_TRUE(f1.Value().ok);
  EXPECT_TRUE(f2.Value().ok);
}

}  // namespace
}  // namespace unifab
