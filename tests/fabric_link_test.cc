// Link-layer unit tests: serialization timing, credit-based flow control,
// replay, and control-lane priority.

#include "src/fabric/link.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"

namespace unifab {
namespace {

// Test receiver that records arrivals and (optionally) returns credits
// after a configurable hold time.
class Sink : public FlitReceiver {
 public:
  Sink(Engine* engine, Tick hold = 0) : engine_(engine), hold_(hold) {}

  void ReceiveFlit(const Flit& flit, int port) override {
    arrivals.push_back({flit, engine_->Now(), port});
    if (auto_credit && endpoint != nullptr) {
      if (hold_ == 0) {
        endpoint->ReturnCredit(flit.channel);
      } else {
        engine_->Schedule(hold_, [this, ch = flit.channel] { endpoint->ReturnCredit(ch); });
      }
    }
  }

  struct Arrival {
    Flit flit;
    Tick at;
    int port;
  };

  std::vector<Arrival> arrivals;
  LinkEndpoint* endpoint = nullptr;
  bool auto_credit = true;

 private:
  Engine* engine_;
  Tick hold_;
};

Flit MakeFlit(Channel ch = Channel::kMem, std::uint32_t payload = 64) {
  static std::uint64_t txn = 0;
  Flit f;
  f.txn_id = ++txn;
  f.channel = ch;
  f.opcode = Opcode::kMemWr;
  f.src = 1;
  f.dst = 2;
  f.payload_bytes = payload;
  return f;
}

struct LinkFixture {
  explicit LinkFixture(LinkConfig cfg = {}, Tick hold = 0)
      : link(&engine, cfg, /*seed=*/7, "test-link"), a(&engine), b(&engine, hold) {
    link.end(0).Bind(&a, 0);
    link.end(1).Bind(&b, 0);
    a.endpoint = &link.end(0);
    b.endpoint = &link.end(1);
  }

  Engine engine;
  Link link;
  Sink a;
  Sink b;
};

TEST(LinkTest, DeliversFlitAfterSerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.gigatransfers_per_sec = 32.0;
  cfg.lanes = 16;  // 64 GB/s -> 68B in ~1.06 ns
  cfg.propagation = FromNs(50);
  LinkFixture f(cfg);

  ASSERT_TRUE(f.link.end(0).Send(MakeFlit()));
  f.engine.Run();
  ASSERT_EQ(f.b.arrivals.size(), 1u);
  EXPECT_NEAR(ToNs(f.b.arrivals[0].at), 51.06, 0.1);
}

TEST(LinkTest, SerializationScalesWithLaneCount) {
  LinkConfig wide;
  wide.lanes = 16;
  wide.propagation = 0;
  LinkConfig narrow = wide;
  narrow.lanes = 4;  // 4x slower wire

  LinkFixture fw(wide);
  LinkFixture fn(narrow);
  fw.link.end(0).Send(MakeFlit());
  fn.link.end(0).Send(MakeFlit());
  fw.engine.Run();
  fn.engine.Run();
  const double t_wide = ToNs(fw.b.arrivals[0].at);
  const double t_narrow = ToNs(fn.b.arrivals[0].at);
  EXPECT_NEAR(t_narrow / t_wide, 4.0, 0.1);
}

TEST(LinkTest, BackToBackFlitsPipelineOnTheWire) {
  LinkConfig cfg;
  cfg.propagation = FromNs(10);
  cfg.credits_per_vc = 16;
  LinkFixture f(cfg);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.link.end(0).Send(MakeFlit()));
  }
  f.engine.Run();
  ASSERT_EQ(f.b.arrivals.size(), 4u);
  const Tick serialize = cfg.SerializeTime();
  // Successive arrivals are exactly one serialization time apart.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(f.b.arrivals[i].at - f.b.arrivals[i - 1].at, serialize);
  }
}

TEST(LinkTest, CreditExhaustionStallsUntilReturn) {
  LinkConfig cfg;
  cfg.credits_per_vc = 2;
  cfg.propagation = FromNs(10);
  cfg.credit_return_latency = FromNs(10);
  // Receiver holds each credit for 500 ns.
  LinkFixture f(cfg, FromNs(500));

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.link.end(0).Send(MakeFlit()));
  }
  f.engine.Run();
  ASSERT_EQ(f.b.arrivals.size(), 4u);
  // Flits 3 and 4 had to wait for returned credits: their arrival gap from
  // flit 1 reflects the 500 ns hold.
  EXPECT_GE(ToNs(f.b.arrivals[2].at - f.b.arrivals[0].at), 500.0);
  EXPECT_GT(f.link.stats(0).credit_stalls, 0u);
}

TEST(LinkTest, ChannelsHaveIndependentCredits) {
  LinkConfig cfg;
  cfg.credits_per_vc = 1;
  LinkFixture f(cfg, FromNs(1000));  // receiver hoards credits

  ASSERT_TRUE(f.link.end(0).Send(MakeFlit(Channel::kMem)));
  ASSERT_TRUE(f.link.end(0).Send(MakeFlit(Channel::kIo)));
  f.engine.RunFor(FromNs(500));
  // Both made it through despite each VC having a single credit: they
  // did not compete for the same pool.
  EXPECT_EQ(f.b.arrivals.size(), 2u);
}

TEST(LinkTest, ControlChannelPreemptsDataBacklog) {
  LinkConfig cfg;
  cfg.credits_per_vc = 64;
  cfg.control_priority = true;
  cfg.propagation = 0;
  LinkFixture f(cfg);

  for (int i = 0; i < 32; ++i) {
    f.link.end(0).Send(MakeFlit(Channel::kMem));
  }
  f.link.end(0).Send(MakeFlit(Channel::kControl));
  f.engine.Run();

  // The control flit should arrive 2nd (one data flit already on the wire).
  ASSERT_EQ(f.b.arrivals.size(), 33u);
  int control_pos = -1;
  for (std::size_t i = 0; i < f.b.arrivals.size(); ++i) {
    if (f.b.arrivals[i].flit.channel == Channel::kControl) {
      control_pos = static_cast<int>(i);
    }
  }
  EXPECT_LE(control_pos, 1);
}

TEST(LinkTest, WithoutPriorityControlWaitsInLine) {
  LinkConfig cfg;
  cfg.credits_per_vc = 64;
  cfg.control_priority = false;
  cfg.propagation = 0;
  LinkFixture f(cfg);

  for (int i = 0; i < 8; ++i) {
    f.link.end(0).Send(MakeFlit(Channel::kMem));
  }
  f.link.end(0).Send(MakeFlit(Channel::kControl));
  f.engine.Run();
  int control_pos = -1;
  for (std::size_t i = 0; i < f.b.arrivals.size(); ++i) {
    if (f.b.arrivals[i].flit.channel == Channel::kControl) {
      control_pos = static_cast<int>(i);
    }
  }
  // Round-robin: the control flit lands after at least one data flit but
  // does not preempt the whole backlog order guarantee-free.
  EXPECT_GT(control_pos, 0);
}

TEST(LinkTest, FullDuplexDirectionsAreIndependent) {
  LinkFixture f;
  f.link.end(0).Send(MakeFlit());
  f.link.end(1).Send(MakeFlit());
  f.engine.Run();
  EXPECT_EQ(f.a.arrivals.size(), 1u);
  EXPECT_EQ(f.b.arrivals.size(), 1u);
}

TEST(LinkTest, ErrorInjectionTriggersReplayAndEventualDelivery) {
  LinkConfig cfg;
  cfg.flit_error_rate = 0.3;
  cfg.replay_timeout = FromNs(100);
  cfg.propagation = FromNs(10);
  cfg.tx_queue_depth = 128;
  LinkFixture f(cfg);

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.link.end(0).Send(MakeFlit()));
  }
  f.engine.Run();
  EXPECT_EQ(f.b.arrivals.size(), 100u);  // reliability: everything arrives
  EXPECT_GT(f.link.stats(0).replays, 10u);
}

TEST(LinkTest, TxQueueBoundRejectsOverflow) {
  LinkConfig cfg;
  cfg.tx_queue_depth = 4;
  cfg.credits_per_vc = 1;
  LinkFixture f(cfg, FromNs(100000));  // receiver never returns credits fast

  int accepted = 0;
  for (int i = 0; i < 16; ++i) {
    if (f.link.end(0).Send(MakeFlit())) {
      ++accepted;
    }
  }
  // 1 on the wire (credit consumed) + 4 queued.
  EXPECT_LE(accepted, 6);
  EXPECT_FALSE(f.link.end(0).CanSend(Channel::kMem));
}

TEST(LinkTest, StatsCountBytesAndFlits) {
  LinkFixture f;
  f.link.end(0).Send(MakeFlit(Channel::kMem, 64));
  f.link.end(0).Send(MakeFlit(Channel::kMem, 32));
  f.engine.Run();
  EXPECT_EQ(f.link.stats(0).flits_delivered, 2u);
  EXPECT_EQ(f.link.stats(0).bytes_delivered, 96u);
}

TEST(LinkTest, OvercommitAdvertisesMoreCredits) {
  LinkConfig cfg;
  cfg.credits_per_vc = 4;
  cfg.credit_overcommit = 2.0;
  LinkFixture f(cfg, FromNs(100000));
  // With 2x overcommit, 8 flits can be in flight before stalling.
  int sent_without_stall = 0;
  for (int i = 0; i < 8; ++i) {
    f.link.end(0).Send(MakeFlit());
  }
  f.engine.RunFor(FromNs(2000));
  sent_without_stall = static_cast<int>(f.b.arrivals.size());
  EXPECT_EQ(sent_without_stall, 8);
}

}  // namespace
}  // namespace unifab
