// BridgeLink: the Ethernet inter-pod hop. Config mapping (gbps -> lanes x
// gigatransfers, frames -> window credits, loss -> replay), conservation
// under loss, and the failover story: a bridge flapping in the middle of a
// cross-pod AllReduce must not lose or double-count a byte.

#include "src/fabric/bridge.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/runtime.h"
#include "src/topo/cluster.h"
#include "src/topo/faults.h"

namespace unifab {
namespace {

TEST(BridgeLinkTest, ConfigMapsEthernetTermsOntoTheLinkModel) {
  BridgeConfig cfg;
  cfg.ethernet_gbps = 100.0;
  cfg.frame_loss_rate = 1e-3;
  cfg.window_frames = 32;
  cfg.tx_queue_depth = 128;
  cfg.max_burst_frames = 8;
  const LinkConfig link = cfg.ToLinkConfig();
  // 100 Gb/s = 12.5 GB/s on the wire, however it is factored into lanes.
  EXPECT_NEAR(link.BytesPerSec(), 12.5e9, 1e6);
  EXPECT_EQ(link.flit_mode, FlitMode::k256B);
  EXPECT_EQ(link.credits_per_vc, 32u);
  EXPECT_EQ(link.tx_queue_depth, 128u);
  EXPECT_EQ(link.max_burst_flits, 8u);
  EXPECT_DOUBLE_EQ(link.flit_error_rate, 1e-3);
  EXPECT_EQ(link.replay_timeout, cfg.retransmit_timeout);
  EXPECT_EQ(link.propagation, cfg.propagation);
}

TEST(BridgeLinkTest, BridgeIsSlowerThanTheCxlFabricLink) {
  // The design premise: an Ethernet hop costs more than a CXL hop. Keep the
  // presets honest about it.
  const LinkConfig bridge = BridgeConfig{}.ToLinkConfig();
  const LinkConfig cxl = OmegaLink();
  EXPECT_GT(bridge.propagation, cxl.propagation);
  EXPECT_GT(bridge.flit_error_rate, cxl.flit_error_rate);
}

TEST(BridgeLinkTest, LossyBridgeConservesFlitsUnderReplay) {
  Engine engine;
  BridgeConfig cfg;
  cfg.frame_loss_rate = 0.05;  // hot enough to exercise replay
  BridgeLink bridge(&engine, cfg, /*seed=*/7, "b");

  struct Sink : FlitReceiver {
    LinkEndpoint* endpoint = nullptr;
    int received = 0;
    void ReceiveFlit(const Flit& f, int) override {
      ++received;
      endpoint->ReturnCredit(f.channel);
    }
  } rx;
  rx.endpoint = &bridge.end(1);
  bridge.end(0).Bind(nullptr, 0);
  bridge.end(1).Bind(&rx, 0);

  int sent = 0;
  for (int i = 0; i < 200; ++i) {
    Flit f;
    f.channel = Channel::kMem;
    if (bridge.end(0).Send(f)) {
      ++sent;
    }
  }
  engine.Run();
  ASSERT_GT(sent, 0);
  // Retransmission makes the loss invisible to the receiver...
  EXPECT_EQ(rx.received, sent);
  EXPECT_GT(bridge.stats(0).replays, 0u);
  // ...and the audited conservation identity holds at quiescence.
  const Link::DirAccounting acc = bridge.Accounting(0);
  EXPECT_EQ(acc.accepted, acc.delivered + acc.dropped_on_fail + acc.in_flight + acc.queued);
  EXPECT_TRUE(engine.audit().Sweep().empty());
}

TEST(BridgeFailoverTest, BridgeFlapDuringCrossPodAllReduceConservesBytes) {
  // 4-pod bridge ring: killing one bridge mid-AllReduce leaves a redundant
  // inter-pod path; the collective must reach exactly one terminal and the
  // fabric must account for every flit the outage stranded.
  PodConfig pod;
  pod.num_hosts = 1;
  pod.num_fams = 1;
  pod.num_faas = 1;
  Cluster cluster(DFabricPodCluster(4, pod));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  FaultScheduler faults(&cluster.engine(), &cluster.fabric());
  faults.RegisterLink("bridge0", cluster.bridges()[0]);

  CollectiveGroup group;
  for (int p = 0; p < 4; ++p) {
    group.members.push_back(
        CollectiveMember{cluster.faa(cluster.pod(p).faas[0])->id(), 1ULL << 20});
  }

  faults.Schedule(FaultPlan::Parse("flap bridge0 start=30 period=400 down=150 cycles=1"));
  CollectiveFuture f = runtime.collect()->AllReduce(group, 512 * 1024);
  cluster.engine().Run();

  ASSERT_TRUE(f.Ready());
  // Exactly one terminal; with the ring's redundant path and eCollect's
  // step retries the flap should be survivable, but either terminal status
  // must leave the books balanced.
  EXPECT_TRUE(f.Value().ok) << "status=" << static_cast<int>(f.Value().status);
  EXPECT_EQ(faults.stats().faults_injected, 1u);
  EXPECT_EQ(faults.stats().recoveries, 1u);

  for (const BridgeLink* bridge : cluster.bridges()) {
    for (int side = 0; side < 2; ++side) {
      const Link::DirAccounting acc = bridge->Accounting(side);
      EXPECT_EQ(acc.accepted,
                acc.delivered + acc.dropped_on_fail + acc.in_flight + acc.queued)
          << bridge->name() << " side " << side;
    }
  }
  // The sweep covers fabric/bridge/flits_conserved for every bridge plus
  // the collective's own terminal/byte checks.
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

TEST(BridgeFailoverTest, TrunkOutageOnTwoPodsAbortsOrRecoversCleanly) {
  // Two pods have a single trunk: no redundant path. A long outage must
  // surface as a terminal result (ok or aborted), never a hang, and the
  // audit must stay clean either way.
  PodConfig pod;
  pod.num_hosts = 1;
  pod.num_fams = 1;
  pod.num_faas = 1;
  Cluster cluster(DFabricPodCluster(2, pod));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  FaultScheduler faults(&cluster.engine(), &cluster.fabric());
  ASSERT_EQ(cluster.bridges().size(), 1u);
  faults.RegisterLink("trunk", cluster.bridges()[0]);

  CollectiveGroup group;
  group.members.push_back(CollectiveMember{cluster.faa(0)->id(), 1ULL << 20});
  group.members.push_back(CollectiveMember{cluster.faa(1)->id(), 1ULL << 20});

  faults.Schedule(FaultPlan::Parse("flap trunk start=20 period=600 down=300 cycles=1"));
  CollectiveFuture f = runtime.collect()->AllReduce(group, 256 * 1024);
  cluster.engine().Run();

  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
