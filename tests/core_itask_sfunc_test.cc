// Deeper idempotent-task and scalable-function tests: scheduling, failure
// recovery corner cases, restart-all semantics, and actor interactions.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/runtime.h"

namespace unifab {
namespace {

ClusterConfig TwoFaaCluster() {
  ClusterConfig cfg;
  cfg.num_hosts = 1;
  cfg.num_fams = 1;
  cfg.num_faas = 2;
  return cfg;
}

class ITaskTest : public ::testing::Test {
 protected:
  explicit ITaskTest(RecoveryMode mode = RecoveryMode::kReexecute) : cluster_(TwoFaaCluster()) {
    RuntimeOptions opts;
    opts.itask.recovery = mode;
    opts.itask.attempt_timeout = FromUs(500.0);
    runtime_ = std::make_unique<UniFabricRuntime>(&cluster_, opts);
  }

  TaskId SubmitSimple(Tick cost = FromUs(20.0), std::vector<TaskId> deps = {}) {
    TaskSpec t;
    t.name = "t";
    t.outputs = {runtime_->heap(0)->Allocate(1024)};
    t.compute_cost = cost;
    t.deps = std::move(deps);
    return runtime_->itasks()->Submit(t);
  }

  Cluster cluster_;
  std::unique_ptr<UniFabricRuntime> runtime_;
};

TEST_F(ITaskTest, LeastLoadedDispatchBalancesWorkers) {
  for (int i = 0; i < 16; ++i) {
    SubmitSimple(FromUs(100.0));
  }
  cluster_.engine().Run();
  const auto k0 = cluster_.faa(0)->accelerator()->stats().kernels_completed;
  const auto k1 = cluster_.faa(1)->accelerator()->stats().kernels_completed;
  EXPECT_EQ(k0 + k1, 16u);
  EXPECT_GE(k0, 6u);
  EXPECT_GE(k1, 6u);
}

TEST_F(ITaskTest, DiamondDagRespectsAllDependencies) {
  std::vector<int> order;
  UnifiedHeap* heap = runtime_->heap(0);
  auto make = [&](const char* name, std::vector<TaskId> deps, int tag) {
    TaskSpec t;
    t.name = name;
    t.outputs = {heap->Allocate(256)};
    t.deps = std::move(deps);
    t.compute_cost = FromUs(10.0);
    t.apply = [&order, tag] { order.push_back(tag); };
    return runtime_->itasks()->Submit(t);
  };
  const TaskId a = make("a", {}, 0);
  const TaskId b = make("b", {a}, 1);
  const TaskId c = make("c", {a}, 2);
  make("d", {b, c}, 3);
  cluster_.engine().Run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST_F(ITaskTest, DependentNeverStartsBeforeProducerCommits) {
  UnifiedHeap* heap = runtime_->heap(0);
  Tick produced_at = 0;
  Tick consumed_started = 0;
  TaskSpec p;
  p.name = "producer";
  p.outputs = {heap->Allocate(1024)};
  p.compute_cost = FromUs(100.0);
  p.apply = [&] { produced_at = cluster_.engine().Now(); };
  const TaskId pid = runtime_->itasks()->Submit(p);

  TaskSpec c;
  c.name = "consumer";
  c.inputs = p.outputs;
  c.outputs = {heap->Allocate(1024)};
  c.deps = {pid};
  c.compute_cost = FromUs(10.0);
  c.apply = [&] { consumed_started = cluster_.engine().Now(); };
  runtime_->itasks()->Submit(c);
  cluster_.engine().Run();
  EXPECT_GT(consumed_started, produced_at);
}

TEST_F(ITaskTest, AllWorkersDownDefersUntilRecovery) {
  cluster_.faa(0)->Fail();
  cluster_.faa(1)->Fail();
  SubmitSimple();
  bool all_done = false;
  runtime_->itasks()->OnAllComplete([&] { all_done = true; });
  cluster_.engine().RunFor(FromMs(2.0));
  EXPECT_FALSE(all_done);
  cluster_.faa(1)->Recover();
  cluster_.engine().Run();
  EXPECT_TRUE(all_done);
}

TEST_F(ITaskTest, DuplicateCompletionAfterTimeoutIsIdempotent) {
  // A slow task whose first attempt outlives the timeout: the re-executed
  // attempt and the original both finish; exactly one commit happens.
  UnifiedHeap* heap = runtime_->heap(0);
  int commits = 0;
  TaskSpec t;
  t.name = "slow";
  t.outputs = {heap->Allocate(1024)};
  t.compute_cost = FromUs(800.0);  // > 500 us attempt timeout
  t.apply = [&] { ++commits; };
  runtime_->itasks()->Submit(t);
  cluster_.engine().Run();
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(runtime_->itasks()->stats().completed, 1u);
  EXPECT_GE(runtime_->itasks()->stats().timeouts, 1u);
}

class RestartAllTest : public ITaskTest {
 protected:
  RestartAllTest() : ITaskTest(RecoveryMode::kRestartAll) {}
};

TEST_F(RestartAllTest, SingleFailureReplaysCompletedWork) {
  // Two quick tasks complete; a third task's worker dies; everything
  // re-runs.
  SubmitSimple(FromUs(10.0));
  SubmitSimple(FromUs(10.0));
  const TaskId slow = SubmitSimple(FromUs(300.0));
  (void)slow;
  cluster_.engine().Schedule(FromUs(150.0), [&] {
    cluster_.faa(0)->Fail();
    cluster_.faa(1)->Fail();
  });
  cluster_.engine().Schedule(FromUs(900.0), [&] {
    cluster_.faa(0)->Recover();
    cluster_.faa(1)->Recover();
  });
  bool all_done = false;
  runtime_->itasks()->OnAllComplete([&] { all_done = true; });
  cluster_.engine().Run();
  EXPECT_TRUE(all_done);
  EXPECT_GE(runtime_->itasks()->stats().restarts, 1u);
  // More attempts than tasks: completed work was thrown away.
  EXPECT_GT(runtime_->itasks()->stats().attempts, 3u);
}

TEST(ITaskAnalysisTest, DisjointSpecIsIdempotent) {
  TaskSpec t;
  t.inputs = {1, 2};
  t.outputs = {3};
  EXPECT_TRUE(AnalyzeIdempotence(t).idempotent);
}

TEST(ITaskAnalysisTest, EveryClobberedInputIsReported) {
  TaskSpec t;
  t.inputs = {1, 2, 3};
  t.outputs = {2, 3, 4};
  const auto report = AnalyzeIdempotence(t);
  EXPECT_FALSE(report.idempotent);
  EXPECT_EQ(report.clobbered_inputs.size(), 2u);
}

// ------------------------- Scalable functions ----------------------------

class SFuncTest : public ::testing::Test {
 protected:
  SFuncTest() : cluster_(TwoFaaCluster()), runtime_(&cluster_, RuntimeOptions{}) {}

  Cluster cluster_;
  UniFabricRuntime runtime_;
};

TEST_F(SFuncTest, RemoteSendBetweenFaas) {
  int received_on_faa1 = 0;
  SFuncSpec sink;
  sink.name = "sink";
  sink.handlers[1] = SFuncHandler{FromUs(1.0), [&](SFuncContext&) { ++received_on_faa1; }};
  const FunctionId sink_fn = runtime_.sfunc(1)->Install(sink);

  SFuncSpec fwd;
  fwd.name = "forwarder";
  const PbrId faa1 = cluster_.faa(1)->id();
  fwd.handlers[1] = SFuncHandler{FromUs(1.0), [sink_fn, faa1](SFuncContext& ctx) {
                                   ctx.SendRemote(faa1, sink_fn, 1, 64, nullptr);
                                 }};
  const FunctionId fwd_fn = runtime_.sfunc(0)->Install(fwd);

  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fwd_fn, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(received_on_faa1, 1);
  EXPECT_EQ(runtime_.sfunc(0)->stats().remote_sends, 1u);
}

TEST_F(SFuncTest, ReplyReachesTheHostClient) {
  SFuncSpec echo;
  echo.name = "echo";
  echo.handlers[1] = SFuncHandler{FromUs(1.0), [](SFuncContext& ctx) {
                                    ctx.Reply(2, 64, nullptr);
                                  }};
  const FunctionId fn = runtime_.sfunc(0)->Install(echo);

  int replies = 0;
  runtime_.sfunc_client(0)->OnReply([&](const SFuncMsg& msg) {
    EXPECT_EQ(msg.type, 2u);
    ++replies;
  });
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(replies, 1);
}

TEST_F(SFuncTest, UnknownFunctionOrTypeIsDroppedAndCounted) {
  SFuncSpec spec;
  spec.name = "one-type";
  spec.handlers[1] = SFuncHandler{FromUs(1.0), nullptr};
  const FunctionId fn = runtime_.sfunc(0)->Install(spec);
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, /*type=*/9, 64, nullptr);
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn + 100, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(runtime_.sfunc(0)->stats().messages_dropped, 2u);
  EXPECT_EQ(runtime_.sfunc(0)->stats().messages_handled, 0u);
}

TEST_F(SFuncTest, FunctionsRunConcurrentlyUpToEngineCount) {
  // Four functions, each with one long handler: all four kernels overlap on
  // the 4-engine accelerator.
  std::vector<Tick> finish;
  std::vector<FunctionId> fns;
  for (int i = 0; i < 4; ++i) {
    SFuncSpec spec;
    spec.name = "worker";
    spec.handlers[1] = SFuncHandler{FromUs(100.0), [&](SFuncContext&) {
                                      finish.push_back(cluster_.engine().Now());
                                    }};
    fns.push_back(runtime_.sfunc(0)->Install(spec));
  }
  for (FunctionId fn : fns) {
    runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  }
  cluster_.engine().Run();
  ASSERT_EQ(finish.size(), 4u);
  // All finish within one handler duration of each other (parallel), not
  // serialized 4x.
  EXPECT_LT(ToUs(finish.back() - finish.front()), 50.0);
}

TEST_F(SFuncTest, MailboxDrainsAfterRecovery) {
  int handled = 0;
  SFuncSpec spec;
  spec.name = "victim";
  spec.handlers[1] = SFuncHandler{FromUs(1.0), [&](SFuncContext&) { ++handled; }};
  const FunctionId fn = runtime_.sfunc(0)->Install(spec);

  // Queue messages while an earlier handler is mid-flight, then fail.
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  cluster_.engine().RunFor(FromUs(2.0));  // message in flight / queued
  cluster_.faa(0)->Fail();
  cluster_.engine().Run();
  const int before = handled;

  cluster_.faa(0)->Recover();
  runtime_.sfunc(0)->ResetAfterRecovery();
  runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  cluster_.engine().Run();
  EXPECT_EQ(handled, before + 1);
}

TEST_F(SFuncTest, ResetAfterRecoveryDrainsBacklogWithoutNewInvoke) {
  // The actor wedges with `running` stuck true when its kernel dies with the
  // chassis. ResetAfterRecovery alone must clear that state and pump the
  // queued backlog -- no fresh message may be required to unwedge it.
  int handled = 0;
  SFuncSpec spec;
  spec.name = "backlog";
  spec.handlers[1] = SFuncHandler{FromUs(5.0), [&](SFuncContext&) { ++handled; }};
  const FunctionId fn = runtime_.sfunc(0)->Install(spec);

  for (int i = 0; i < 4; ++i) {
    runtime_.sfunc_client(0)->Invoke(cluster_.faa(0)->id(), fn, 1, 64, nullptr);
  }
  cluster_.engine().RunFor(FromUs(7.0));  // first handler mid-flight, rest queued
  cluster_.faa(0)->Fail();
  cluster_.engine().Run();
  const int before = handled;
  const std::size_t queued = runtime_.sfunc(0)->MailboxDepth(fn);
  EXPECT_LT(before, 4);
  EXPECT_GT(queued, 0u);

  // The message whose kernel died with the chassis is lost (it left the
  // mailbox before the failure); everything still queued must drain.
  cluster_.faa(0)->Recover();
  runtime_.sfunc(0)->ResetAfterRecovery();
  cluster_.engine().Run();
  EXPECT_EQ(handled, before + static_cast<int>(queued));
  EXPECT_EQ(runtime_.sfunc(0)->MailboxDepth(fn), 0u);
}

// Property sweep: N messages to one actor always process in order and
// exactly once, for varying N.
class ActorOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(ActorOrderTest, FifoExactlyOnce) {
  Cluster cluster(TwoFaaCluster());
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  std::vector<std::uint32_t> seen;
  SFuncSpec spec;
  spec.name = "ordered";
  spec.handlers[1] = SFuncHandler{FromNs(500.0), [&](SFuncContext& ctx) {
                                    seen.push_back(ctx.msg().bytes);
                                  }};
  const FunctionId fn = runtime.sfunc(0)->Install(spec);
  const int n = GetParam();
  for (int i = 1; i <= n; ++i) {
    runtime.sfunc_client(0)->Invoke(cluster.faa(0)->id(), fn, 1,
                                    static_cast<std::uint32_t>(i), nullptr);
  }
  cluster.engine().Run();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i - 1)], static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ActorOrderTest, ::testing::Values(1, 2, 8, 32, 128));

}  // namespace
}  // namespace unifab
