// OFI facade: tagged send/recv matching (including the unexpected-send
// queue), truncation, RMA bounds, collective completions, CQ overflow, and
// the completions-conserved audit identity.

#include "src/core/ofi.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/topo/cluster.h"

namespace unifab {
namespace {

struct OfiRig {
  explicit OfiRig(OfiConfig ofi_cfg = {}, std::size_t cq_depth = 1024)
      : cq0(cq_depth), cq1(cq_depth) {
    ClusterConfig cfg;
    cfg.num_hosts = 2;
    cfg.num_fams = 2;
    cfg.num_faas = 2;
    cluster = std::make_unique<Cluster>(cfg);
    RuntimeOptions opts;
    opts.ofi = ofi_cfg;
    runtime = std::make_unique<UniFabricRuntime>(cluster.get(), opts);
    ofi = runtime->ofi();
    ep0 = ofi->CreateEndpoint(cluster->host(0)->id(), runtime->host_agent(0), &cq0, "ep0");
    ep1 = ofi->CreateEndpoint(cluster->host(1)->id(), runtime->host_agent(1), &cq1, "ep1");
    // Regions live on fabric-servable memory (one FAM per endpoint's side);
    // the host endpoints orchestrate but are not remote-write targets.
    mem0 = cluster->fam(0)->id();
    mem1 = cluster->fam(1)->id();
  }

  std::vector<OfiCompletion> Drain(CompletionQueue& cq) {
    std::vector<OfiCompletion> out;
    OfiCompletion c;
    while (cq.Reap(&c)) {
      out.push_back(c);
    }
    return out;
  }

  std::uint64_t Posted() const {
    const OfiStats& s = ofi->stats();
    return s.sends_posted + s.recvs_posted + s.reads_posted + s.writes_posted +
           s.collectives_posted;
  }

  CompletionQueue cq0, cq1;
  PbrId mem0 = kInvalidPbrId;
  PbrId mem1 = kInvalidPbrId;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<UniFabricRuntime> runtime;
  OfiDomain* ofi = nullptr;
  Endpoint* ep0 = nullptr;
  Endpoint* ep1 = nullptr;
};

TEST(OfiTest, MatchedSendRecvCompletesBothSides) {
  OfiRig rig;
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 64 * 1024);
  const MemRegion dst = rig.ofi->RegisterMemory(rig.mem1, 0x20000, 64 * 1024);
  rig.ep1->PostRecv(/*tag=*/7, dst, /*context=*/11);
  rig.ep0->PostSend(rig.ep1->node(), /*tag=*/7, src, /*context=*/22);
  rig.cluster->engine().Run();

  const auto send_side = rig.Drain(rig.cq0);
  const auto recv_side = rig.Drain(rig.cq1);
  ASSERT_EQ(send_side.size(), 1u);
  ASSERT_EQ(recv_side.size(), 1u);
  EXPECT_EQ(send_side[0].op, OfiOp::kSend);
  EXPECT_EQ(send_side[0].context, 22u);
  EXPECT_TRUE(send_side[0].ok);
  EXPECT_EQ(send_side[0].bytes, 64u * 1024u);
  EXPECT_EQ(send_side[0].tag, 7u);
  EXPECT_EQ(recv_side[0].op, OfiOp::kRecv);
  EXPECT_EQ(recv_side[0].context, 11u);
  EXPECT_TRUE(recv_side[0].ok);
  EXPECT_GT(send_side[0].completed_at, 0u);
  EXPECT_EQ(rig.ofi->stats().completions, rig.Posted());
  EXPECT_TRUE(rig.cluster->engine().audit().Sweep().empty());
}

TEST(OfiTest, UnexpectedSendMatchesLateRecv) {
  OfiRig rig;
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 4096);
  const MemRegion dst = rig.ofi->RegisterMemory(rig.mem1, 0x20000, 4096);
  // Send first: no matching recv, so it parks at the receiver.
  rig.ep0->PostSend(rig.ep1->node(), /*tag=*/3, src, /*context=*/1);
  rig.cluster->engine().Run();
  EXPECT_TRUE(rig.Drain(rig.cq0).empty());

  rig.ep1->PostRecv(/*tag=*/3, dst, /*context=*/2);
  rig.cluster->engine().Run();
  EXPECT_EQ(rig.ofi->stats().unexpected_matched, 1u);
  const std::vector<OfiCompletion> c0 = rig.Drain(rig.cq0);
  const std::vector<OfiCompletion> c1 = rig.Drain(rig.cq1);
  ASSERT_EQ(c0.size(), 1u);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_TRUE(c0[0].ok);
  EXPECT_TRUE(c1[0].ok);
  EXPECT_EQ(rig.ofi->stats().completions, rig.Posted());
}

TEST(OfiTest, TagsMustMatchExactly) {
  OfiRig rig;
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 4096);
  const MemRegion dst = rig.ofi->RegisterMemory(rig.mem1, 0x20000, 4096);
  rig.ep1->PostRecv(/*tag=*/1, dst, /*context=*/1);
  rig.ep0->PostSend(rig.ep1->node(), /*tag=*/2, src, /*context=*/2);
  rig.cluster->engine().Run();
  // Different tags: both stay pending, nothing completes, books balanced.
  EXPECT_TRUE(rig.Drain(rig.cq0).empty());
  EXPECT_TRUE(rig.Drain(rig.cq1).empty());
  EXPECT_TRUE(rig.cluster->engine().audit().Sweep().empty());
}

TEST(OfiTest, TruncationFailsBothSides) {
  OfiRig rig;
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 8192);
  const MemRegion dst = rig.ofi->RegisterMemory(rig.mem1, 0x20000, 4096);
  rig.ep1->PostRecv(/*tag=*/5, dst, /*context=*/1);
  rig.ep0->PostSend(rig.ep1->node(), /*tag=*/5, src, /*context=*/2);
  rig.cluster->engine().Run();

  const auto send_side = rig.Drain(rig.cq0);
  const auto recv_side = rig.Drain(rig.cq1);
  ASSERT_EQ(send_side.size(), 1u);
  ASSERT_EQ(recv_side.size(), 1u);
  EXPECT_FALSE(send_side[0].ok);
  EXPECT_FALSE(recv_side[0].ok);
  EXPECT_EQ(rig.ofi->stats().errors, 2u);
  EXPECT_EQ(rig.ofi->stats().completions, rig.Posted());
}

TEST(OfiTest, SendToUnknownEndpointFailsImmediately) {
  OfiRig rig;
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 4096);
  rig.ep0->PostSend(rig.cluster->fam(0)->id(), /*tag=*/1, src, /*context=*/9);
  const auto cs = rig.Drain(rig.cq0);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_FALSE(cs[0].ok);
  EXPECT_EQ(cs[0].context, 9u);
}

TEST(OfiTest, UnexpectedQueueOverflowFailsTheSend) {
  OfiConfig cfg;
  cfg.max_unexpected = 1;
  OfiRig rig(cfg);
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 4096);
  rig.ep0->PostSend(rig.ep1->node(), /*tag=*/1, src, /*context=*/1);  // parks
  rig.ep0->PostSend(rig.ep1->node(), /*tag=*/2, src, /*context=*/2);  // overflows
  const auto cs = rig.Drain(rig.cq0);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_FALSE(cs[0].ok);
  EXPECT_EQ(cs[0].context, 2u);
  EXPECT_TRUE(rig.cluster->engine().audit().Sweep().empty());
}

TEST(OfiTest, RmaReadAndWriteMoveBytesThroughRegisteredRegions) {
  OfiRig rig;
  const MemRegion fam = rig.ofi->RegisterMemory(rig.cluster->fam(0)->id(), 0x0, 1 << 20);
  rig.ep0->Read(fam, /*local_addr=*/0x40000, /*bytes=*/64 * 1024, /*context=*/1);
  rig.ep0->Write(fam, /*local_addr=*/0x50000, /*bytes=*/32 * 1024, /*context=*/2);
  rig.cluster->engine().Run();

  const auto cs = rig.Drain(rig.cq0);
  ASSERT_EQ(cs.size(), 2u);
  for (const auto& c : cs) {
    EXPECT_TRUE(c.ok);
    EXPECT_EQ(c.bytes, c.context == 1u ? 64u * 1024u : 32u * 1024u);
  }
  EXPECT_EQ(rig.ofi->stats().reads_posted, 1u);
  EXPECT_EQ(rig.ofi->stats().writes_posted, 1u);
  EXPECT_EQ(rig.ofi->stats().completions, rig.Posted());
  EXPECT_TRUE(rig.cluster->engine().audit().Sweep().empty());
}

TEST(OfiTest, RmaBeyondRegionBoundsFails) {
  OfiRig rig;
  const MemRegion fam = rig.ofi->RegisterMemory(rig.cluster->fam(0)->id(), 0x0, 4096);
  rig.ep0->Read(fam, 0x40000, /*bytes=*/8192, /*context=*/3);
  const auto cs = rig.Drain(rig.cq0);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_FALSE(cs[0].ok);
  EXPECT_EQ(cs[0].op, OfiOp::kRead);
}

TEST(OfiTest, RegionKeysAreDistinctAndResolvable) {
  OfiRig rig;
  const MemRegion a = rig.ofi->RegisterMemory(rig.ep0->node(), 0x1000, 64);
  const MemRegion b = rig.ofi->RegisterMemory(rig.ep1->node(), 0x2000, 128);
  EXPECT_NE(a.key, b.key);
  ASSERT_NE(rig.ofi->RegionByKey(a.key), nullptr);
  EXPECT_EQ(rig.ofi->RegionByKey(a.key)->len, 64u);
  EXPECT_EQ(rig.ofi->RegionByKey(b.key)->node, rig.ep1->node());
  EXPECT_EQ(rig.ofi->RegionByKey(999), nullptr);
}

TEST(OfiTest, AllReduceRetiresOneCollectiveCompletion) {
  OfiRig rig;
  CollectiveGroup group;
  group.members.push_back(CollectiveMember{rig.cluster->faa(0)->id(), 1ULL << 20});
  group.members.push_back(CollectiveMember{rig.cluster->faa(1)->id(), 1ULL << 20});
  rig.ep0->AllReduce(group, 64 * 1024, /*context=*/77);
  rig.cluster->engine().Run();

  const auto cs = rig.Drain(rig.cq0);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].op, OfiOp::kCollective);
  EXPECT_EQ(cs[0].context, 77u);
  EXPECT_TRUE(cs[0].ok);
  EXPECT_GT(cs[0].bytes, 0u);
  EXPECT_EQ(rig.ofi->stats().collectives_posted, 1u);
  EXPECT_EQ(rig.ofi->stats().completions, rig.Posted());
  EXPECT_TRUE(rig.cluster->engine().audit().Sweep().empty());
}

TEST(OfiTest, CqOverflowDropsNewestButStillRetires) {
  OfiConfig cfg;
  OfiRig rig(cfg, /*cq_depth=*/1);
  const MemRegion src = rig.ofi->RegisterMemory(rig.mem0, 0x10000, 1024);
  const MemRegion d1 = rig.ofi->RegisterMemory(rig.mem1, 0x20000, 1024);
  const MemRegion d2 = rig.ofi->RegisterMemory(rig.mem1, 0x21000, 1024);
  rig.ep1->PostRecv(1, d1, 1);
  rig.ep1->PostRecv(2, d2, 2);
  rig.ep0->PostSend(rig.ep1->node(), 1, src, 3);
  rig.ep0->PostSend(rig.ep1->node(), 2, src, 4);
  rig.cluster->engine().Run();

  // Receiver CQ holds one entry; the second completion was dropped but the
  // op still retired — conservation holds and the drop is visible.
  EXPECT_EQ(rig.cq1.pending(), 1u);
  EXPECT_EQ(rig.cq1.overflow_drops(), 1u);
  EXPECT_GE(rig.ofi->stats().cq_overflows, 1u);
  EXPECT_EQ(rig.ofi->stats().completions, rig.Posted());
  EXPECT_TRUE(rig.cluster->engine().audit().Sweep().empty());
}

TEST(OfiTest, OpNamesAreStable) {
  EXPECT_STREQ(OfiOpName(OfiOp::kSend), "send");
  EXPECT_STREQ(OfiOpName(OfiOp::kRecv), "recv");
  EXPECT_STREQ(OfiOpName(OfiOp::kRead), "read");
  EXPECT_STREQ(OfiOpName(OfiOp::kWrite), "write");
  EXPECT_STREQ(OfiOpName(OfiOp::kCollective), "collective");
}

TEST(OfiTest, CrossPodSendRecvTraversesTheBridge) {
  PodConfig pod;
  pod.num_hosts = 1;
  pod.num_fams = 1;
  pod.num_faas = 1;
  Cluster cluster(DFabricPodCluster(2, pod));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  OfiDomain* ofi = runtime.ofi();
  CompletionQueue cq0, cq1;
  Endpoint* a = ofi->CreateEndpoint(cluster.host(0)->id(), runtime.host_agent(0), &cq0, "a");
  Endpoint* b = ofi->CreateEndpoint(cluster.host(1)->id(), runtime.host_agent(1), &cq1, "b");
  ASSERT_NE(DomainOf(a->node()), DomainOf(b->node()));

  const MemRegion src =
      ofi->RegisterMemory(cluster.fam(cluster.pod(0).fams[0])->id(), 0x10000, 128 * 1024);
  const MemRegion dst =
      ofi->RegisterMemory(cluster.fam(cluster.pod(1).fams[0])->id(), 0x20000, 128 * 1024);
  b->PostRecv(9, dst, 1);
  a->PostSend(b->node(), 9, src, 2);
  cluster.engine().Run();

  OfiCompletion c;
  ASSERT_TRUE(cq0.Reap(&c));
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(c.bytes, 128u * 1024u);
  ASSERT_TRUE(cq1.Reap(&c));
  EXPECT_TRUE(c.ok);
  // The payload crossed pods, so the bridge carried flits.
  ASSERT_EQ(cluster.bridges().size(), 1u);
  const BridgeLink* bridge = cluster.bridges()[0];
  EXPECT_GT(bridge->stats(0).flits_delivered + bridge->stats(1).flits_delivered, 0u);
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
