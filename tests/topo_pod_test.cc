// Pod cluster construction: every pod owns its PBR domain, gateways are
// bridged per the trunk/ring rule, and cross-pod traffic actually flows —
// both raw remote reads and a full runtime AllReduce spanning pods.

#include "src/topo/pod.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/runtime.h"
#include "src/topo/cluster.h"

namespace unifab {
namespace {

ClusterConfig SmallPodCluster(int num_pods) {
  PodConfig pod;
  pod.num_hosts = 1;
  pod.num_fams = 1;
  pod.num_faas = 1;
  pod.num_switches = 1;
  return DFabricPodCluster(num_pods, pod);
}

class PodClusterTest : public ::testing::TestWithParam<int> {};

TEST_P(PodClusterTest, ComponentsLandInTheirPodDomain) {
  const int pods = GetParam();
  Cluster cluster(SmallPodCluster(pods));
  ASSERT_EQ(cluster.num_pods(), pods);
  ASSERT_EQ(cluster.num_hosts(), pods);
  ASSERT_EQ(cluster.num_fams(), pods);
  ASSERT_EQ(cluster.num_faas(), pods);

  for (int p = 0; p < pods; ++p) {
    const Pod& pod = cluster.pod(p);
    EXPECT_EQ(pod.index, p);
    ASSERT_NE(pod.gateway, nullptr);
    for (int h : pod.hosts) {
      EXPECT_EQ(DomainOf(cluster.host(h)->id()), p);
    }
    for (int f : pod.fams) {
      EXPECT_EQ(DomainOf(cluster.fam(f)->id()), p);
    }
    for (int a : pod.faas) {
      EXPECT_EQ(DomainOf(cluster.faa(a)->id()), p);
    }
  }
}

TEST_P(PodClusterTest, BridgeCountFollowsTrunkOrRingRule) {
  const int pods = GetParam();
  Cluster cluster(SmallPodCluster(pods));
  const std::size_t expected = pods == 2 ? 1u : static_cast<std::size_t>(pods);
  EXPECT_EQ(cluster.bridges().size(), expected);
  EXPECT_EQ(cluster.fabric().num_bridge_links(), expected);
  std::set<const BridgeLink*> distinct(cluster.bridges().begin(), cluster.bridges().end());
  EXPECT_EQ(distinct.size(), expected);
}

TEST_P(PodClusterTest, CrossPodRemoteReadCompletes) {
  const int pods = GetParam();
  Cluster cluster(SmallPodCluster(pods));
  // Host in pod 0 reads from the FAM in the last pod: the access must
  // traverse at least one Ethernet bridge and still complete.
  const int far_fam = cluster.pod(pods - 1).fams[0];
  ASSERT_GT(cluster.fabric().HopCount(cluster.host(0)->id(), cluster.fam(far_fam)->id()), 0);
  int done = 0;
  cluster.host(0)->core(0)->Access(cluster.FamBase(far_fam), false, [&done] { ++done; });
  cluster.engine().Run();
  EXPECT_EQ(done, 1);
}

INSTANTIATE_TEST_SUITE_P(PodCounts, PodClusterTest, ::testing::Values(2, 3, 4, 8));

TEST(PodClusterTest, IntraPodHopsAvoidBridges) {
  Cluster cluster(SmallPodCluster(4));
  // Same-pod traffic stays inside the pod: host -> FAM in pod 0 is two
  // edges (host-switch, switch-fam), independent of the bridge ring.
  const int h0 = cluster.pod(0).hosts[0];
  const int f0 = cluster.pod(0).fams[0];
  EXPECT_EQ(cluster.fabric().HopCount(cluster.host(h0)->id(), cluster.fam(f0)->id()), 2);
}

TEST(PodClusterTest, CrossPodAllReduceUsesHierarchicalSchedule) {
  Cluster cluster(SmallPodCluster(4));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  CollectiveGroup group;
  for (int p = 0; p < 4; ++p) {
    group.members.push_back(
        CollectiveMember{cluster.faa(cluster.pod(p).faas[0])->id(), 1ULL << 20});
  }
  CollectiveFuture f = runtime.collect()->AllReduce(group, 256 * 1024);
  cluster.engine().Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Value().ok);
  EXPECT_GT(f.Value().bytes, 0u);
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

TEST(PodClusterTest, ScenarioFileRequestsPods) {
  // The examples/two_pod.scenario satellite: `pods 2` parses into the spec
  // and an unknown path surfaces as a diagnostic, not a throw.
  ScenarioSpec bad = ScenarioSpec::ParseFile("/nonexistent/two_pod.scenario");
  ASSERT_EQ(bad.errors.size(), 1u);
  EXPECT_NE(bad.errors[0].find("/nonexistent/two_pod.scenario"), std::string::npos);

  ScenarioSpec spec = ScenarioSpec::Parse(
      "scenario s\npods 2\n"
      "class name=c tenants=2 mix=etrans:1\n");
  ASSERT_TRUE(spec.errors.empty());
  EXPECT_EQ(spec.pods, 2u);

  ScenarioSpec out_of_range =
      ScenarioSpec::Parse("pods 99\nclass name=c tenants=1 mix=etrans:1\n");
  EXPECT_EQ(out_of_range.errors.size(), 1u);
}

TEST(PodClusterTest, TenantLoadRunsOnPodCluster) {
  PodConfig pod;
  pod.num_hosts = 2;
  pod.num_fams = 1;
  pod.num_faas = 1;
  Cluster cluster(DFabricPodCluster(2, pod));
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  ScenarioSpec spec = ScenarioSpec::Parse(
      "scenario pod_smoke\nseed 3\nhorizon_us 300\npods 2\n"
      "class name=m tenants=4 arrival=deterministic rate_ops_s=20000 bytes=8192 "
      "mix=etrans:2,heap_read:1,collect:1\n");
  ASSERT_TRUE(spec.errors.empty());
  TenantEngine* tenants = runtime.AttachTenants(spec);
  tenants->Start();
  cluster.engine().Run();
  EXPECT_GT(tenants->issued(), 0u);
  EXPECT_EQ(tenants->issued(), tenants->completed() + tenants->failed());
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

}  // namespace
}  // namespace unifab
