// Randomized property tests: drive each stateful subsystem with a random
// operation stream, run to quiescence, and check its structural invariants.
// Failures print the seed, so any counterexample replays deterministically.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/baseline/policies.h"
#include "src/core/runtime.h"
#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/ccnuma.h"
#include "src/mem/coma.h"
#include "src/mem/dram.h"
#include "src/sim/random.h"
#include "src/sim/sharded_engine.h"
#include "src/topo/faults.h"
#include "src/topo/presets.h"

namespace unifab {
namespace {

// ----------------------- CC-NUMA protocol fuzz ---------------------------

struct CohRig {
  explicit CohRig(int hosts) : fabric(&engine, 71) {
    auto* sw = fabric.AddSwitch(FabrexSwitch(), "sw");
    dram = std::make_unique<DramDevice>(&engine, OmegaLocalDram(), "fam");
    AdapterConfig fea_cfg = OmegaEndpointAdapter();
    fea_cfg.request_proc_latency = FromNs(50);
    auto* fea = fabric.AddEndpointAdapter(fea_cfg, "fea", dram.get());
    fabric.Connect(sw, fea, OmegaLink());
    fea_dispatch = std::make_unique<MessageDispatcher>(fea);
    CcNumaConfig cfg;
    cfg.port_cache = CacheConfig{4096, 64, 2};  // tiny: lots of evictions
    dir = std::make_unique<DirectoryController>(&engine, cfg, fea_dispatch.get(), dram.get(),
                                                "dir");
    for (int i = 0; i < hosts; ++i) {
      AdapterConfig fha = OmegaHostAdapter();
      fha.request_proc_latency = FromNs(50);
      fha.response_proc_latency = FromNs(50);
      auto* adapter = fabric.AddHostAdapter(fha, "h" + std::to_string(i));
      fabric.Connect(sw, adapter, OmegaLink());
      dispatch.push_back(std::make_unique<MessageDispatcher>(adapter));
      ports.push_back(std::make_unique<CcNumaPort>(&engine, cfg, dispatch.back().get(),
                                                   dir.get(), "p" + std::to_string(i)));
    }
    fabric.ConfigureRouting();
  }

  Engine engine;
  FabricInterconnect fabric;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<MessageDispatcher> fea_dispatch;
  std::unique_ptr<DirectoryController> dir;
  std::vector<std::unique_ptr<MessageDispatcher>> dispatch;
  std::vector<std::unique_ptr<CcNumaPort>> ports;
};

class CcNumaFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CcNumaFuzzTest, QuiescentStateSatisfiesProtocolInvariants) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  CohRig rig(3);
  Rng rng(seed);

  constexpr int kBlocks = 24;
  int completions = 0;
  constexpr int kOps = 400;
  for (int i = 0; i < kOps; ++i) {
    const int host = static_cast<int>(rng.NextBelow(3));
    const std::uint64_t block = rng.NextBelow(kBlocks) * 64;
    const bool write = rng.NextBool(0.4);
    // Random submission times interleave transactions heavily.
    rig.engine.Schedule(FromNs(100) * rng.NextBelow(400), [&, host, block, write] {
      if (write) {
        rig.ports[static_cast<std::size_t>(host)]->Write(block, [&] { ++completions; });
      } else {
        rig.ports[static_cast<std::size_t>(host)]->Read(block, [&] { ++completions; });
      }
    });
  }
  rig.engine.Run();
  EXPECT_EQ(completions, kOps);  // nothing wedged

  // Invariants at quiescence, for every block:
  for (int b = 0; b < kBlocks; ++b) {
    const std::uint64_t block = static_cast<std::uint64_t>(b) * 64;
    int holders = 0;
    int modified_holders = 0;
    for (const auto& port : rig.ports) {
      if (port->HoldsBlock(block)) {
        ++holders;
        if (port->HoldsModified(block)) {
          ++modified_holders;
        }
      }
    }
    const auto state = rig.dir->StateOf(block);
    switch (state) {
      case DirectoryController::BlockState::kModified:
        // Exactly one M copy exists, and no S copies next to it.
        EXPECT_EQ(modified_holders, 1) << "block " << b;
        EXPECT_EQ(holders, 1) << "block " << b;
        break;
      case DirectoryController::BlockState::kShared:
        EXPECT_EQ(modified_holders, 0) << "block " << b;
        EXPECT_GE(holders, 1) << "block " << b;
        // The directory may conservatively remember more sharers than
        // currently hold the block (silent-ish eviction windows), never
        // fewer.
        EXPECT_GE(rig.dir->SharerCount(block), static_cast<std::size_t>(holders))
            << "block " << b;
        break;
      case DirectoryController::BlockState::kUncached:
        EXPECT_EQ(holders, 0) << "block " << b;
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcNumaFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ------------------------------ COMA fuzz --------------------------------

class ComaFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComaFuzzTest, CopiesNeverVanishAndWritesLeaveOneCopy) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Engine engine;
  ComaConfig cfg;
  cfg.num_nodes = 4;
  cfg.blocks_per_node = 16;
  ComaSystem coma(&engine, cfg);
  Rng rng(seed);

  constexpr int kBlocks = 40;  // total capacity 64 > blocks: injection works
  for (int b = 0; b < kBlocks; ++b) {
    coma.SeedBlock(static_cast<int>(rng.NextBelow(4)), static_cast<std::uint64_t>(b) * 64);
  }

  int completions = 0;
  constexpr int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    const int node = static_cast<int>(rng.NextBelow(4));
    const std::uint64_t block = rng.NextBelow(kBlocks) * 64;
    if (rng.NextBool(0.3)) {
      coma.Write(node, block, [&] { ++completions; });
    } else {
      coma.Read(node, block, [&] { ++completions; });
    }
    engine.Run();  // serialize ops: COMA state transitions are synchronous

    // Invariants after every op.
    ASSERT_GE(coma.CopyCount(block), 1) << "op " << i;
    for (int n = 0; n < 4; ++n) {
      ASSERT_LE(coma.NodeOccupancy(n), cfg.blocks_per_node);
    }
  }
  EXPECT_EQ(completions, kOps);

  // Every seeded block still exists somewhere.
  for (int b = 0; b < kBlocks; ++b) {
    EXPECT_GE(coma.CopyCount(static_cast<std::uint64_t>(b) * 64), 1) << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComaFuzzTest, ::testing::Values(2u, 4u, 6u, 10u, 12u));

// ------------------------------ Heap fuzz --------------------------------

class HeapFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapFuzzTest, AccountingStaysConsistentUnderRandomOps) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  ClusterConfig ccfg;
  ccfg.num_hosts = 1;
  ccfg.num_fams = 1;
  ccfg.num_faas = 0;
  Cluster cluster(ccfg);
  RuntimeOptions opts;
  opts.heap_local_bytes = 256 * 1024;  // small: allocation pressure
  opts.heap.migration_enabled = true;
  opts.heap.promote_threshold = 0.4;
  UniFabricRuntime runtime(&cluster, opts);
  UnifiedHeap* heap = runtime.heap(0);

  Rng rng(seed);
  std::vector<ObjectId> live;
  const std::uint32_t kSizes[] = {64, 256, 1024, 4096, 65536};

  for (int i = 0; i < 500; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.4 || live.empty()) {
      const ObjectId id = heap->Allocate(kSizes[rng.NextBelow(5)],
                                         rng.NextBool(0.5) ? 0 : 1);
      if (id != kInvalidObject) {
        live.push_back(id);
      }
    } else if (roll < 0.6) {
      const std::size_t idx = rng.NextBelow(live.size());
      heap->Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else if (roll < 0.9) {
      heap->Read(live[rng.NextBelow(live.size())], nullptr);
    } else {
      const ObjectId id = live[rng.NextBelow(live.size())];
      const int dst = heap->TierOf(id) == 0 ? 1 : 0;
      heap->Migrate(id, dst, nullptr);
    }
    if (i % 50 == 0) {
      cluster.engine().Run();
      heap->RunEpoch();
    }
  }
  cluster.engine().Run();

  // Invariant 1: live object spans never overlap within a tier.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> spans(
      static_cast<std::size_t>(heap->num_tiers()));
  for (const ObjectId id : live) {
    const ObjectInfo info = heap->Info(id);
    ASSERT_NE(info.id, kInvalidObject);
    spans[static_cast<std::size_t>(info.tier)].emplace_back(info.addr, info.addr + info.size);
  }
  for (auto& tier_spans : spans) {
    std::sort(tier_spans.begin(), tier_spans.end());
    for (std::size_t i = 1; i < tier_spans.size(); ++i) {
      EXPECT_LE(tier_spans[i - 1].second, tier_spans[i].first);
    }
  }

  // Invariant 2: per-tier used bytes >= sum of live size classes there and
  // never exceeds capacity.
  for (int t = 0; t < heap->num_tiers(); ++t) {
    EXPECT_LE(heap->TierUsed(t), heap->Tier(t).capacity);
  }

  // Invariant 3: stats balance.
  EXPECT_EQ(heap->stats().allocations - heap->stats().frees, live.size());
  EXPECT_EQ(heap->live_objects(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzzTest, ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------- Switch-mem translation fuzz -----------------------
//
// Random resolves racing random migration commits against the switch-resident
// memory agent. The protocol contract: every resolved translation is exactly
// one placement the range has ever had (old or new, never a torn mix of
// fields), commits serialized per range always succeed, and at quiescence no
// invalidation is in flight and every cached entry matches the agent's
// authoritative map.

class SwitchMemChurnFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchMemChurnFuzzTest, ResolveSeesOldOrNewTranslationNeverTorn) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  ClusterConfig ccfg;
  ccfg.num_hosts = 1;
  ccfg.num_fams = 2;
  ccfg.num_faas = 0;
  ccfg.seed = seed;
  Cluster cluster(ccfg);
  RuntimeOptions opts;
  opts.heap.migration_enabled = false;
  opts.switch_mem = true;
  UniFabricRuntime runtime(&cluster, opts);
  SwitchMemClient* client = runtime.switch_mem_client(0);
  Rng rng(seed * 31 + 3);

  // A handful of ranges, each with its full placement history: every version
  // ever committed, recorded at commit-issue time (the agent applies commits
  // before acking, so a resolve may legally see the new version early).
  struct RangeState {
    Translation current;
    std::vector<Translation> history;
    bool commit_in_flight = false;
    bool released = false;
  };
  constexpr std::uint64_t kBase = 1ULL << 55;  // clear of the heap's va space
  const PbrId nodes[2] = {cluster.fam(0)->id(), cluster.fam(1)->id()};
  std::vector<RangeState> ranges;
  for (int r = 0; r < 6; ++r) {
    RangeState st;
    st.current.vbase = kBase + static_cast<std::uint64_t>(r) * 4096;
    st.current.bytes = 4096;
    st.current.node = nodes[r % 2];
    st.current.addr = 0x10000u + static_cast<std::uint64_t>(r) * 4096;
    st.current.version = 0;
    client->RegisterRange(st.current.vbase, st.current.bytes, st.current.node,
                          st.current.addr);
    st.history.push_back(st.current);
    ranges.push_back(st);
  }

  int resolves_ok = 0;
  int commits_ok = 0;
  for (int i = 0; i < 400; ++i) {
    auto& st = ranges[rng.NextBelow(ranges.size())];
    if (st.released) {
      continue;
    }
    if (rng.NextBool(0.8)) {
      const std::uint64_t vaddr = st.current.vbase + rng.NextBelow(st.current.bytes);
      client->Resolve(vaddr, [&st, &resolves_ok](const Translation& x, bool ok) {
        if (!ok) {
          return;  // released underneath the resolve: a legal fault
        }
        ++resolves_ok;
        bool known = false;
        for (const Translation& h : st.history) {
          if (x.version == h.version && x.node == h.node && x.addr == h.addr &&
              x.vbase == h.vbase && x.bytes == h.bytes) {
            known = true;
            break;
          }
        }
        EXPECT_TRUE(known) << "torn translation: vbase=" << x.vbase
                           << " version=" << x.version << " addr=" << x.addr;
      });
    } else if (!st.commit_in_flight) {
      // Migrate the range to a fresh placement. Commits are serialized per
      // range (the heap's migrating flag does the same), so each must land.
      Translation next = st.current;
      next.node = nodes[rng.NextBelow(2)];
      next.addr = 0x400000u + static_cast<std::uint64_t>(i) * 4096;
      next.version = st.current.version + 1;
      st.current = next;
      st.history.push_back(next);
      st.commit_in_flight = true;
      client->Commit(next, [&st, &commits_ok](bool ok) {
        EXPECT_TRUE(ok);
        st.commit_in_flight = false;
        ++commits_ok;
      });
    }
    if (i % 40 == 0) {
      cluster.engine().Run();
    }
  }
  cluster.engine().Run();

  EXPECT_GT(resolves_ok, 0);
  EXPECT_GT(commits_ok, 0);
  SwitchMemAgent* agent = runtime.switch_mem_agent();
  EXPECT_EQ(agent->pending_invalidations(), 0u);

  // Post-quiescence: every cached entry equals the authoritative placement.
  client->cache()->ForEach([&](const Translation& cached) {
    const Translation truth = agent->Lookup(cached.vbase);
    EXPECT_EQ(cached.version, truth.version) << "vbase " << cached.vbase;
    EXPECT_EQ(cached.addr, truth.addr);
    EXPECT_EQ(cached.node, truth.node);
  });
  EXPECT_TRUE(cluster.engine().audit().Sweep().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchMemChurnFuzzTest,
                         ::testing::Values(5u, 15u, 25u, 35u, 45u));

// -------------------------- Fabric traffic fuzz --------------------------

class FabricFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricFuzzTest, RandomTrafficAlwaysDrainsAndConserves) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  ClusterConfig cfg;
  cfg.num_hosts = 3;
  cfg.num_fams = 2;
  cfg.num_faas = 1;
  cfg.num_switches = 2;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed * 7 + 1);

  int submitted = 0;
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    const int host = static_cast<int>(rng.NextBelow(3));
    const int fam = static_cast<int>(rng.NextBelow(2));
    MemRequest req;
    req.type = rng.NextBool(0.5) ? MemRequest::Type::kRead : MemRequest::Type::kWrite;
    req.addr = rng.NextBelow(1 << 28);
    const std::uint32_t sizes[] = {64, 256, 4096, 16384};
    req.bytes = sizes[rng.NextBelow(4)];
    ++submitted;
    cluster.engine().Schedule(FromNs(50) * rng.NextBelow(2000), [&, host, fam, req] {
      cluster.host(host)->fha()->Submit(cluster.fam(fam)->id(), req, [&] { ++completed; });
    });
  }
  cluster.engine().Run();
  EXPECT_EQ(completed, submitted);

  // Conservation: every adapter finished with empty outstanding tables.
  for (int h = 0; h < 3; ++h) {
    EXPECT_EQ(cluster.host(h)->fha()->Outstanding(), 0u);
    EXPECT_EQ(cluster.host(h)->fha()->QueuedRequests(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricFuzzTest, ::testing::Values(100u, 200u, 300u, 400u));

// -------------------------- Fault campaign fuzz ---------------------------
//
// Random eTrans traffic under a random (but always-healing) fault campaign.
// The recovery contract: every observed future reaches a terminal state (ok
// or aborted, never wedged), and at quiescence every fabric link accounts
// for each accepted flit as either delivered or dropped-by-failure.

class FaultCampaignFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultCampaignFuzzTest, NoWedgedFuturesAndFlitsConserved) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.num_fams = 2;
  cfg.num_faas = 0;
  cfg.num_switches = 2;
  cfg.seed = seed;
  Cluster cluster(cfg);
  UniFabricRuntime runtime(&cluster, RuntimeOptions{});
  Rng rng(seed * 13 + 5);

  FaultScheduler faults(&cluster.engine(), &cluster.fabric());
  std::string plan;
  for (int f = 0; f < 2; ++f) {
    const std::string name = "fam" + std::to_string(f);
    faults.RegisterLink(name, cluster.fabric().LinkTo(cluster.fam(f)->id()));
    // One or two outages per link; every outage heals well before the
    // traffic's retry budget runs out, and nothing stays down at the end.
    const int cycles = 1 + static_cast<int>(rng.NextBelow(2));
    for (int c = 0; c < cycles; ++c) {
      const std::uint64_t down_at = 50 + c * 1200 + rng.NextBelow(700);
      const std::uint64_t up_at = down_at + 100 + rng.NextBelow(300);
      plan += "fail " + name + " @" + std::to_string(down_at) + "\n";
      plan += "recover " + name + " @" + std::to_string(up_at) + "\n";
    }
  }
  const FaultPlan parsed = FaultPlan::Parse(plan);
  ASSERT_TRUE(parsed.ok());
  faults.Schedule(parsed);

  // Random host->FAM transfers across the campaign window. Only ownership
  // modes whose futures are *supposed* to resolve participate (kExecutor is
  // fire-and-forget toward the initiator by design).
  std::vector<TransferFuture> futures;
  constexpr int kTransfers = 40;
  for (int i = 0; i < kTransfers; ++i) {
    const int host = static_cast<int>(rng.NextBelow(2));
    const int fam = static_cast<int>(rng.NextBelow(2));
    ETransDescriptor d;
    const std::uint64_t bytes = 4096u << rng.NextBelow(4);  // 4K..32K
    d.src = {Segment{cluster.host(host)->id(), rng.NextBelow(1 << 24), bytes}};
    d.dst = {Segment{cluster.fam(fam)->id(), rng.NextBelow(1 << 24), bytes}};
    d.ownership = Ownership::kInitiator;
    d.immediate = rng.NextBool(0.5);
    d.attributes.throttled = rng.NextBool(0.4);
    cluster.engine().Schedule(FromUs(1.0) * rng.NextBelow(2500), [&, host, d] {
      futures.push_back(runtime.etrans()->Submit(runtime.host_agent(host), d));
    });
  }
  cluster.engine().Run();

  // No wedged futures: each one is terminal — completed or aborted.
  ASSERT_EQ(futures.size(), static_cast<std::size_t>(kTransfers));
  int resolved_ok = 0;
  for (const TransferFuture& f : futures) {
    ASSERT_TRUE(f.Ready());
    if (f.Value().ok) {
      ++resolved_ok;
      EXPECT_EQ(f.Value().status, TransferStatus::kOk);
    } else {
      EXPECT_EQ(f.Value().status, TransferStatus::kAborted);
    }
  }
  // The campaign always heals, so traffic is never extinguished entirely.
  EXPECT_GT(resolved_ok, 0);

  // Flit conservation at quiescence, per link direction.
  for (const auto& link : cluster.fabric().links()) {
    for (int side = 0; side < 2; ++side) {
      const LinkStats& s = link->stats(side);
      EXPECT_EQ(s.flits_accepted, s.flits_delivered + s.dropped_on_fail)
          << link->name() << " side " << side;
    }
  }

  // Both MSHR pools drained (nothing stranded by the black-hole windows).
  for (int h = 0; h < 2; ++h) {
    EXPECT_EQ(cluster.host(h)->fha()->Outstanding(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCampaignFuzzTest,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u, 57u));

// ------------------ Cross-shard cancel / record-reuse fuzz ----------------
//
// EventIds minted on one shard and cancelled from elsewhere must never
// double-free a pooled event record: a cancel either removes a live event
// exactly once (same shard, parked context) or returns false (already
// fired, already cancelled, stale generation, or refused cross-shard from
// inside a window). At quiescence every event fired XOR was cancelled, and
// record conservation holds on every shard's queue.

class ShardCancelFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardCancelFuzzTest, CancelsNeverDoubleFreeAcrossShards) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);

  constexpr Tick kLookahead = 1000;
  ShardedEngine group;
  group.AddShard("a");
  group.AddShard("b");
  group.SetLookahead(kLookahead);
  group.SetAuditCadence(16);

  struct Tracked {
    EventId id = kInvalidEventId;
    std::uint32_t shard = 0;
    int fires = 0;
    bool cancel_ok = false;
  };
  std::vector<Tracked> tracked;
  tracked.reserve(512);
  // Touched from events on different shards, which run concurrently when
  // worker threads are enabled (UNIFAB_SHARDS > 1).
  std::atomic<std::uint64_t> refused_in_window{0};
  std::atomic<std::uint64_t> cross_hops{0};

  Tick horizon = 0;
  for (int round = 0; round < 25; ++round) {
    // Mint events from the parked context (real ids, random shards).
    const int mint = static_cast<int>(rng.NextInRange(2, 6));
    for (int i = 0; i < mint; ++i) {
      const auto s = static_cast<std::uint32_t>(rng.NextBelow(3));
      const std::size_t idx = tracked.size();
      tracked.push_back(Tracked{kInvalidEventId, s, 0, false});
      tracked[idx].id = group.shard(s).ScheduleAt(
          horizon + rng.NextInRange(1, 2500),
          [&tracked, idx] { ++tracked[idx].fires; });
      ASSERT_NE(tracked[idx].id, kInvalidEventId);
    }
    // Cross-shard chatter keeps real mailbox traffic in the mix.
    if (rng.NextBool(0.7)) {
      const auto s = static_cast<std::uint32_t>(rng.NextBelow(3));
      group.shard(s).ScheduleAt(horizon + rng.NextInRange(1, 500),
                                [&group, &cross_hops, s] {
                                  group.shard((s + 1) % 3).Schedule(
                                      kLookahead + 1, [&cross_hops] { ++cross_hops; });
                                });
    }
    // Cross-shard cancels from inside a running window: always refused.
    if (!tracked.empty() && rng.NextBool(0.6)) {
      const std::size_t idx = rng.NextBelow(tracked.size());
      const auto attacker = (tracked[idx].shard + 1) % 3;
      group.shard(attacker).ScheduleAt(
          horizon + rng.NextInRange(1, 2500),
          [&group, &tracked, &refused_in_window, idx] {
            const Tracked& t = tracked[idx];
            EXPECT_FALSE(group.shard(t.shard).Cancel(t.id));
            ++refused_in_window;
          });
    }
    // Parked-context cancels: succeed iff the event is still live.
    const int cancels = static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < cancels && !tracked.empty(); ++i) {
      Tracked& t = tracked[rng.NextBelow(tracked.size())];
      const bool ok = group.shard(t.shard).Cancel(t.id);
      if (ok) {
        EXPECT_EQ(t.fires, 0);
        EXPECT_FALSE(t.cancel_ok) << "record freed twice";
        t.cancel_ok = true;
      } else {
        EXPECT_TRUE(t.fires > 0 || t.cancel_ok);
      }
    }
    horizon += rng.NextInRange(500, 3000);
    group.RunUntil(horizon);
  }
  group.Run();

  for (const Tracked& t : tracked) {
    EXPECT_LE(t.fires, 1);
    EXPECT_NE(t.fires == 1, t.cancel_ok) << "event neither fired nor cancelled";
    // Stale ids stay dead even after their records were recycled.
    EXPECT_FALSE(group.shard(t.shard).Cancel(t.id));
  }
  EXPECT_GT(cross_hops.load(), 0u);
  EXPECT_GT(refused_in_window.load(), 0u);
  EXPECT_TRUE(group.audit().Sweep().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardCancelFuzzTest,
                         ::testing::Values(3u, 13u, 23u, 33u, 43u));

}  // namespace
}  // namespace unifab
