#include "src/mem/dram.h"

#include <cassert>
#include <utility>

namespace unifab {

void DramStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "reads", [this] { return reads; });
  group.AddCounterFn(prefix + "writes", [this] { return writes; });
  group.AddCounterFn(prefix + "bytes", [this] { return bytes; });
  group.AddCounterFn(prefix + "queue_full_rejects", [this] { return queue_full_rejects; });
}

DramDevice::DramDevice(Engine* engine, const DramConfig& config, std::string name)
    : engine_(engine), config_(config), name_(std::move(name)) {
  assert(config_.num_banks >= 1);
  banks_.resize(config_.num_banks);
  metrics_ = MetricGroup(&engine_->metrics(), "mem/dram/" + name_);
  stats_.BindTo(metrics_);
}

std::uint32_t DramDevice::BankOf(std::uint64_t addr) const {
  // Cacheline-interleaved bank mapping.
  return static_cast<std::uint32_t>((addr >> 6) % config_.num_banks);
}

void DramDevice::HandleRead(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) {
  Access(addr, bytes, /*is_write=*/false, std::move(done));
}

void DramDevice::HandleWrite(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) {
  Access(addr, bytes, /*is_write=*/true, std::move(done));
}

void DramDevice::Access(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                        std::function<void()> done) {
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  stats_.bytes += bytes;

  const std::uint32_t bank = BankOf(addr);
  Bank& b = banks_[bank];
  if (b.queue.size() >= config_.queue_depth) {
    // Model a saturated controller by serializing behind the whole queue
    // rather than dropping; count the event for visibility.
    ++stats_.queue_full_rejects;
  }
  b.queue.push_back(BankRequest{bytes, std::move(done)});
  if (!b.busy) {
    StartNext(bank);
  }
}

void DramDevice::StartNext(std::uint32_t bank) {
  Bank& b = banks_[bank];
  if (b.queue.empty()) {
    b.busy = false;
    return;
  }
  b.busy = true;
  BankRequest req = std::move(b.queue.front());
  b.queue.pop_front();

  const Tick transfer = SerializationDelay(req.bytes, config_.bandwidth_gbps);
  const Tick service = config_.access_latency + transfer;
  engine_->Schedule(service, [this, bank, done = std::move(req.done)] {
    if (done) {
      done();
    }
    StartNext(bank);
  });
}

}  // namespace unifab
