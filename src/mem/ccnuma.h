// Fabric-attached CC-NUMA memory node (paper §3 Difference #2).
//
// Implements a cross-node, directory-based, write-invalidate coherence
// protocol in the style of DASH/FLASH, realized inside the FHA/FEA pair:
// every host owns a CcNumaPort (a hardware block cache in its FHA) and the
// home node runs a DirectoryController behind its FEA. All protocol traffic
// travels as CXL.cache-channel messages over the simulated fabric, so
// coherence costs are real fabric costs.
//
// Protocol: MSI with a blocking home directory. The home serializes
// transactions per block; requesters never communicate directly (home
// forwarding keeps the protocol simple and race-free at the cost of an
// extra hop, which we accept and document).

#ifndef SRC_MEM_CCNUMA_H_
#define SRC_MEM_CCNUMA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/memnode.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// Coherence message opcodes. The last three are used only by the coherent
// window (src/mem/coherent.h), which shares this wire format so traces show
// one protocol vocabulary.
enum class CohOp : std::uint8_t {
  kGetS,        // port -> home: read miss
  kGetM,        // port -> home: write miss or S->M upgrade
  kPutM,        // port -> home: dirty eviction writeback
  kPutS,        // port -> home: clean eviction notice
  kData,        // home -> port: shared data grant
  kDataM,       // home -> port: exclusive data grant
  kInv,         // home -> port: invalidate your copy
  kInvAck,      // port -> home
  kRecall,      // home -> owner: give the block back (downgrade or invalidate)
  kRecallResp,  // owner -> home
  kBackInval,     // home -> port: snoop-filter capacity eviction (CXL BISnp)
  kBackInvalAck,  // port -> home: BIRsp, carries writeback data when dirty
  kNack,          // home -> port: transaction aborted terminally (fault path)
};

const char* CohOpName(CohOp op);

struct CohMsg {
  CohOp op = CohOp::kGetS;
  std::uint64_t block = 0;
  int requester = -1;      // host index at the directory
  bool downgrade = false;  // kRecall: true = owner keeps an S copy
  bool was_dirty = false;  // kRecallResp: owner had modified data
  bool was_present = false;
};

struct DirectoryStats {
  std::uint64_t gets = 0;
  std::uint64_t getm = 0;
  std::uint64_t putm = 0;
  std::uint64_t puts = 0;
  std::uint64_t recalls = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t queued_requests = 0;  // arrived while the block was busy
  std::uint64_t stale_acks = 0;       // InvAck/RecallResp from a non-expected responder
  std::uint64_t implicit_evict_acks = 0;  // Put* that stood in for a pending InvAck

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

struct PortStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;    // hit in M
  std::uint64_t upgrades = 0;      // S -> M
  std::uint64_t write_misses = 0;
  std::uint64_t invalidations_received = 0;
  std::uint64_t recalls_received = 0;
  Summary miss_latency_ns;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

struct CcNumaConfig {
  std::uint32_t block_bytes = 64;
  CacheConfig port_cache{256 * 1024, 64, 8};
  Tick port_hit_latency = FromNs(15.0);
  Tick directory_latency = FromNs(25.0);  // per directory lookup/update
  std::uint32_t ctrl_msg_bytes = 16;      // wire size of a control message
};

class DirectoryController;

// Host-side coherent port. Read/Write complete when the block is usable in
// the required state in the port cache.
class CcNumaPort {
 public:
  CcNumaPort(Engine* engine, const CcNumaConfig& config, MessageDispatcher* dispatcher,
             DirectoryController* home, std::string name);

  void Read(std::uint64_t addr, std::function<void()> done);
  void Write(std::uint64_t addr, std::function<void()> done);

  bool HoldsBlock(std::uint64_t addr) const { return cache_.Contains(addr); }
  bool HoldsModified(std::uint64_t addr) const { return cache_.IsDirty(addr); }

  const PortStats& stats() const { return stats_; }
  int host_index() const { return host_index_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }
  const std::string& name() const { return name_; }

 private:
  friend class DirectoryController;
  friend class AuditTestPeer;

  struct PendingTxn {
    bool wants_m;
    Tick started_at;
    std::vector<std::function<void()>> waiters;
    bool in_flight = false;
  };

  void HandleMessage(const FabricMessage& msg);
  void OnGrant(const CohMsg& msg);
  void OnInv(const CohMsg& msg);
  void OnRecall(const CohMsg& msg);
  void SendToHome(CohOp op, std::uint64_t block, bool with_data);
  void StartMiss(std::uint64_t block, bool wants_m, std::function<void()> done);
  void EvictIfNeeded(std::uint64_t block, bool dirty);

  Engine* engine_;
  CcNumaConfig config_;
  MessageDispatcher* dispatcher_;
  DirectoryController* home_;
  std::string name_;
  int host_index_ = -1;
  SetAssocCache cache_;
  std::unordered_map<std::uint64_t, PendingTxn> pending_;
  PortStats stats_;
  MetricGroup metrics_;
};

// Home-node directory, attached to a FAM chassis FEA. Data lives in the
// chassis DRAM.
class DirectoryController {
 public:
  DirectoryController(Engine* engine, const CcNumaConfig& config, MessageDispatcher* dispatcher,
                      DramDevice* dram, std::string name);

  // Registers a port; the returned host index identifies it in directory
  // state. Must be called before the port issues traffic.
  int RegisterPort(CcNumaPort* port);

  MemoryNodeCaps Caps() const;

  const DirectoryStats& stats() const { return stats_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }

  // Introspection for tests: directory state of one block.
  enum class BlockState { kUncached, kShared, kModified };
  BlockState StateOf(std::uint64_t block) const;
  std::size_t SharerCount(std::uint64_t block) const;

 private:
  friend class CcNumaPort;
  friend class AuditTestPeer;

  struct BlockEntry {
    BlockState state = BlockState::kUncached;
    std::set<int> sharers;
    int owner = -1;
    bool busy = false;
    std::deque<CohMsg> pending;
    // Ports we sent an Inv to and still owe us an ack for the active GetM.
    // Tracking identities (not a bare count) makes the ack path tolerant of
    // crossing evictions: a PutS/PutM from a waited-on port stands in for
    // its ack, and acks from anyone else are discarded as stale.
    std::set<int> inv_waiting;
    int recall_from = -1;  // port whose RecallResp the active txn is blocked on
    CohMsg active;         // the transaction being served
  };

  void HandleMessage(const FabricMessage& msg);
  void Process(const CohMsg& msg);
  void ServeGetS(BlockEntry& e, const CohMsg& msg);
  void ServeGetM(BlockEntry& e, const CohMsg& msg);
  void GrantAndUnblock(BlockEntry& e, std::uint64_t block, int requester, bool exclusive);
  void FinishTxn(BlockEntry& e, std::uint64_t block);
  void SendToPort(int host, CohOp op, std::uint64_t block, bool with_data, bool downgrade = false);

  Engine* engine_;
  CcNumaConfig config_;
  MessageDispatcher* dispatcher_;
  DramDevice* dram_;
  std::string name_;
  std::vector<CcNumaPort*> ports_;
  std::unordered_map<std::uint64_t, BlockEntry> blocks_;
  DirectoryStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;  // declared last: checks read the state above
};

}  // namespace unifab

#endif  // SRC_MEM_CCNUMA_H_
