#include "src/mem/cache.h"

#include <cassert>

namespace unifab {
namespace {

bool IsPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void CacheStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "hits", [this] { return hits; });
  group.AddCounterFn(prefix + "misses", [this] { return misses; });
  group.AddCounterFn(prefix + "evictions", [this] { return evictions; });
  group.AddCounterFn(prefix + "writebacks", [this] { return writebacks; });
  group.AddGaugeFn(prefix + "hit_rate", [this] { return HitRate(); });
}

SetAssocCache::SetAssocCache(const CacheConfig& config) : config_(config) {
  assert(IsPowerOfTwo(config_.line_bytes));
  assert(config_.ways >= 1);
  assert(config_.size_bytes >= static_cast<std::uint64_t>(config_.line_bytes) * config_.ways);
  num_sets_ = config_.size_bytes / config_.line_bytes / config_.ways;
  assert(IsPowerOfTwo(num_sets_));
  line_mask_ = config_.line_bytes - 1;
  ways_.resize(num_sets_ * config_.ways);
}

std::uint64_t SetAssocCache::SetOf(std::uint64_t addr) const {
  return (addr / config_.line_bytes) & (num_sets_ - 1);
}

std::uint64_t SetAssocCache::TagOf(std::uint64_t addr) const {
  return addr / config_.line_bytes / num_sets_;
}

SetAssocCache::Way* SetAssocCache::FindWay(std::uint64_t addr) {
  const std::uint64_t set = SetOf(addr);
  const std::uint64_t tag = TagOf(addr);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = ways_[set * config_.ways + w];
    if (way.valid && way.tag == tag) {
      return &way;
    }
  }
  return nullptr;
}

const SetAssocCache::Way* SetAssocCache::FindWay(std::uint64_t addr) const {
  return const_cast<SetAssocCache*>(this)->FindWay(addr);
}

bool SetAssocCache::Access(std::uint64_t addr, bool is_write) {
  Way* way = FindWay(addr);
  if (way == nullptr) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  way->lru = ++lru_clock_;
  if (is_write) {
    way->dirty = true;
  }
  return true;
}

bool SetAssocCache::Contains(std::uint64_t addr) const { return FindWay(addr) != nullptr; }

bool SetAssocCache::IsDirty(std::uint64_t addr) const {
  const Way* way = FindWay(addr);
  return way != nullptr && way->dirty;
}

std::optional<Eviction> SetAssocCache::Insert(std::uint64_t addr, bool dirty) {
  if (Way* existing = FindWay(addr); existing != nullptr) {
    existing->lru = ++lru_clock_;
    existing->dirty = existing->dirty || dirty;
    return std::nullopt;
  }

  const std::uint64_t set = SetOf(addr);
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = ways_[set * config_.ways + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) {
      victim = &way;
    }
  }

  std::optional<Eviction> evicted;
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.writebacks;
    }
    evicted = Eviction{(victim->tag * num_sets_ + set) * config_.line_bytes, victim->dirty};
  }

  victim->valid = true;
  victim->dirty = dirty;
  victim->tag = TagOf(addr);
  victim->lru = ++lru_clock_;
  return evicted;
}

bool SetAssocCache::Invalidate(std::uint64_t addr, bool* was_dirty) {
  Way* way = FindWay(addr);
  if (way == nullptr) {
    return false;
  }
  if (was_dirty != nullptr) {
    *was_dirty = way->dirty;
  }
  way->valid = false;
  way->dirty = false;
  return true;
}

void SetAssocCache::CleanLine(std::uint64_t addr) {
  if (Way* way = FindWay(addr); way != nullptr) {
    way->dirty = false;
  }
}

std::vector<std::uint64_t> SetAssocCache::ValidLines(bool dirty_only) const {
  std::vector<std::uint64_t> lines;
  for (std::uint64_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      const Way& way = ways_[set * config_.ways + w];
      if (way.valid && (!dirty_only || way.dirty)) {
        lines.push_back((way.tag * num_sets_ + set) * config_.line_bytes);
      }
    }
  }
  return lines;
}

}  // namespace unifab
