#include "src/mem/noncc.h"

#include <utility>
#include <vector>

namespace unifab {

void NonCcStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "read_hits", [this] { return read_hits; });
  group.AddCounterFn(prefix + "read_misses", [this] { return read_misses; });
  group.AddCounterFn(prefix + "write_buffered", [this] { return write_buffered; });
  group.AddCounterFn(prefix + "flushes", [this] { return flushes; });
  group.AddCounterFn(prefix + "invalidates", [this] { return invalidates; });
  group.AddCounterFn(prefix + "stale_reads", [this] { return stale_reads; });
}

NonCcPort::NonCcPort(Engine* engine, const NonCcConfig& config, HostAdapter* adapter,
                     PbrId remote_node, SharedStateOracle* oracle, std::string name)
    : engine_(engine),
      config_(config),
      adapter_(adapter),
      remote_(remote_node),
      oracle_(oracle),
      name_(std::move(name)),
      cache_(config.sw_cache) {
  metrics_ = MetricGroup(&engine_->metrics(), "mem/noncc/" + name_);
  stats_.BindTo(metrics_);
  cache_.stats().BindTo(metrics_, "cache/");
}

std::uint64_t NonCcPort::CachedVersion(std::uint64_t addr) const {
  auto it = fetched_version_.find(cache_.LineBase(addr));
  return it == fetched_version_.end() ? 0 : it->second;
}

void NonCcPort::Read(std::uint64_t addr, std::function<void(bool)> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  if (cache_.Access(block, /*is_write=*/false)) {
    ++stats_.read_hits;
    const bool stale =
        !cache_.IsDirty(block) && fetched_version_[block] < oracle_->Current(block);
    if (stale) {
      ++stats_.stale_reads;
    }
    engine_->Schedule(config_.sw_cache_hit_latency, [done = std::move(done), stale] {
      if (done) {
        done(stale);
      }
    });
    return;
  }
  ++stats_.read_misses;
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.addr = block;
  req.bytes = config_.block_bytes;
  adapter_->Submit(remote_, req, [this, block, done = std::move(done)] {
    // Fetch observes the remote truth as of completion time.
    fetched_version_[block] = oracle_->Current(block);
    if (auto ev = cache_.Insert(block, /*dirty=*/false); ev.has_value() && ev->dirty) {
      // A dirty victim must reach the node or its writes are lost; software
      // runtimes schedule this flush themselves.
      MemRequest wb;
      wb.type = MemRequest::Type::kWrite;
      wb.addr = ev->line_addr;
      wb.bytes = config_.block_bytes;
      adapter_->Submit(remote_, wb, nullptr);
      oracle_->Bump(ev->line_addr);
      ++stats_.flushes;
    }
    if (done) {
      done(false);
    }
  });
}

void NonCcPort::Write(std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  ++stats_.write_buffered;
  if (auto ev = cache_.Insert(block, /*dirty=*/true); ev.has_value() && ev->dirty) {
    MemRequest wb;
    wb.type = MemRequest::Type::kWrite;
    wb.addr = ev->line_addr;
    wb.bytes = config_.block_bytes;
    adapter_->Submit(remote_, wb, nullptr);
    oracle_->Bump(ev->line_addr);
    ++stats_.flushes;
  }
  engine_->Schedule(config_.sw_cache_hit_latency, std::move(done));
}

void NonCcPort::FlushBlock(std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  if (!cache_.IsDirty(block)) {
    engine_->Schedule(0, std::move(done));
    return;
  }
  cache_.CleanLine(block);
  ++stats_.flushes;
  MemRequest wb;
  wb.type = MemRequest::Type::kWrite;
  wb.addr = block;
  wb.bytes = config_.block_bytes;
  adapter_->Submit(remote_, wb, [this, block, done = std::move(done)] {
    fetched_version_[block] = oracle_->Bump(block);
    if (done) {
      done();
    }
  });
}

void NonCcPort::FlushAll(std::function<void()> done) {
  const std::vector<std::uint64_t> dirty = cache_.ValidLines(/*dirty_only=*/true);
  if (dirty.empty()) {
    engine_->Schedule(0, std::move(done));
    return;
  }
  auto remaining = std::make_shared<std::size_t>(dirty.size());
  for (std::uint64_t block : dirty) {
    FlushBlock(block, [remaining, done] {
      if (--*remaining == 0 && done) {
        done();
      }
    });
  }
}

void NonCcPort::InvalidateBlock(std::uint64_t addr) {
  ++stats_.invalidates;
  const std::uint64_t block = cache_.LineBase(addr);
  cache_.Invalidate(block);
  fetched_version_.erase(block);
}

void NonCcPort::InvalidateAll() {
  for (std::uint64_t block : cache_.ValidLines()) {
    InvalidateBlock(block);
  }
}

MemoryNodeCaps NonCcPort::Caps() const {
  MemoryNodeCaps caps;
  caps.type = MemoryNodeType::kNonCcNuma;
  caps.node = remote_;
  caps.capacity_bytes = 0;  // capacity owned by the expander behind remote_
  caps.hardware_coherent = false;
  caps.has_processing = false;
  caps.supports_sharing = true;
  caps.typical_read_latency = FromNs(1575.3);
  caps.typical_write_latency = FromNs(20.0);  // write-back buffering
  return caps;
}

}  // namespace unifab
