#include "src/mem/hierarchy.h"

#include <cassert>
#include <memory>
#include <utility>

namespace unifab {

void HierarchyStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "loads", [this] { return loads; });
  group.AddCounterFn(prefix + "stores", [this] { return stores; });
  group.AddCounterFn(prefix + "l1_hits", [this] { return l1_hits; });
  group.AddCounterFn(prefix + "l2_hits", [this] { return l2_hits; });
  group.AddCounterFn(prefix + "llc_hits", [this] { return llc_hits; });
  group.AddCounterFn(prefix + "local_mem_accesses", [this] { return local_mem_accesses; });
  group.AddCounterFn(prefix + "remote_mem_accesses", [this] { return remote_mem_accesses; });
  group.AddCounterFn(prefix + "writebacks_to_memory", [this] { return writebacks_to_memory; });
  group.AddCounterFn(prefix + "prefetches_issued", [this] { return prefetches_issued; });
  group.AddCounterFn(prefix + "prefetch_hits", [this] { return prefetch_hits; });
  group.AddSummaryFn(prefix + "access_latency_ns", [this] { return &access_latency_ns; });
}

MemoryHierarchy::MemoryHierarchy(Engine* engine, const HierarchyConfig& config, std::string name)
    : engine_(engine),
      config_(config),
      name_(std::move(name)),
      l1_(config.l1),
      l2_(config.l2),
      llc_(config.llc) {
  metrics_ = MetricGroup(&engine_->metrics(), "mem/hierarchy/" + name_);
  stats_.BindTo(metrics_);
  l1_.stats().BindTo(metrics_, "l1/");
  l2_.stats().BindTo(metrics_, "l2/");
  if (config_.has_llc) {
    llc_.stats().BindTo(metrics_, "llc/");
  }
}

void MemoryHierarchy::MapLocal(std::uint64_t base, std::uint64_t size, DramDevice* dram) {
  ranges_.push_back(AddressRange{base, size, dram, kInvalidPbrId});
}

void MemoryHierarchy::MapRemote(std::uint64_t base, std::uint64_t size, PbrId node) {
  ranges_.push_back(AddressRange{base, size, nullptr, node});
}

const AddressRange* MemoryHierarchy::RangeFor(std::uint64_t addr) const {
  for (const auto& r : ranges_) {
    if (r.Contains(addr)) {
      return &r;
    }
  }
  return nullptr;
}

Tick MemoryHierarchy::ReserveLevel(Tick& next_free, Tick interval) {
  // Returns the extra queuing delay imposed by the level's service rate and
  // books the slot.
  const Tick now = engine_->Now();
  const Tick start = next_free > now ? next_free : now;
  next_free = start + interval;
  return start - now;
}

void MemoryHierarchy::Access(std::uint64_t addr, bool is_write, std::function<void()> done) {
  const std::uint64_t line = l1_.LineBase(addr);
  if (is_write) {
    ++stats_.stores;
  } else {
    ++stats_.loads;
  }
  const Tick issued_at = engine_->Now();

  // Retires a hit after `latency`; only safe to call on paths that have not
  // moved `done` into a MissContext.
  auto retire = [this, issued_at, &done](Tick latency) {
    engine_->Schedule(latency, [this, issued_at, done = std::move(done)] {
      stats_.access_latency_ns.Add(ToNs(engine_->Now() - issued_at));
      if (done) {
        done();
      }
    });
  };

  // L1 probe.
  if (l1_.Access(line, is_write)) {
    ++stats_.l1_hits;
    const Tick queue = ReserveLevel(l1_next_free_, config_.l1_interval);
    retire(queue + config_.l1_latency);
    return;
  }

  // The prefetcher trains on every L1 miss (including L2 hits on lines it
  // prefetched earlier) so a steady stream keeps running ahead.
  MaybePrefetch(line);

  // L2 probe.
  if (l2_.Access(line, is_write)) {
    ++stats_.l2_hits;
    if (prefetched_lines_.erase(line) > 0) {
      ++stats_.prefetch_hits;
    }
    const Tick queue = ReserveLevel(l2_next_free_, config_.l2_interval);
    FillLine(line, is_write);
    retire(queue + config_.l1_latency + config_.l2_latency);
    return;
  }

  // LLC probe.
  Tick path = config_.l1_latency + config_.l2_latency;
  if (config_.has_llc) {
    if (llc_.Access(line, is_write)) {
      ++stats_.llc_hits;
      if (prefetched_lines_.erase(line) > 0) {
        ++stats_.prefetch_hits;
      }
      const Tick queue = ReserveLevel(llc_next_free_, config_.llc_interval);
      FillLine(line, is_write);
      retire(queue + path + config_.llc_latency);
      return;
    }
    path += config_.llc_latency;
  }

  // Memory access (local or fabric).
  MissContext ctx{line, is_write, issued_at, std::move(done), /*is_prefetch=*/false};
  StartMiss(std::move(ctx), path);
}

void MemoryHierarchy::StartMiss(MissContext ctx, Tick path_latency) {
  // A new miss must also queue while older misses are waiting, or misses
  // issued from completion callbacks would jump the FIFO and starve them.
  if (mshrs_in_use_ >= config_.mshrs || !waiting_misses_.empty()) {
    if (ctx.is_prefetch) {
      return;  // prefetches never queue for MSHRs
    }
    waiting_misses_.emplace_back(std::move(ctx), path_latency);
    return;
  }
  ++mshrs_in_use_;
  IssueMemoryAccess(std::move(ctx), path_latency);
}

void MemoryHierarchy::IssueMemoryAccess(MissContext ctx, Tick path_latency) {
  const std::uint64_t line = ctx.line_addr;
  const AddressRange* range = RangeFor(line);
  assert(range != nullptr && "access to unmapped address");

  // Completion shared by both backends. Write-allocate: a store miss fetches
  // the line (a read at the device) before dirtying it in cache; the dirty
  // data returns to memory on eviction.
  auto complete = [this, ctx = std::make_shared<MissContext>(std::move(ctx))]() mutable {
    FinishMiss(*ctx);
  };

  if (range->IsLocal()) {
    ++stats_.local_mem_accesses;
    engine_->Schedule(path_latency + config_.mem_ctrl_latency,
                      [this, range, complete = std::move(complete), line] {
                        range->local->Access(line, config_.line_bytes, /*is_write=*/false,
                                             std::move(complete));
                      });
    return;
  }

  ++stats_.remote_mem_accesses;
  assert(adapter_ != nullptr && "remote range mapped but no FHA attached");
  engine_->Schedule(path_latency, [this, range, complete = std::move(complete), line] {
    MemRequest req;
    req.type = MemRequest::Type::kRead;  // write-allocate fetch
    req.addr = line;
    req.bytes = config_.line_bytes;
    req.channel = Channel::kMem;
    adapter_->Submit(range->remote, req, std::move(complete));
  });
}

void MemoryHierarchy::FinishMiss(const MissContext& ctx) {
  assert(mshrs_in_use_ > 0);
  --mshrs_in_use_;

  if (ctx.is_prefetch) {
    // Prefetched data lands in the L2 only.
    if (auto ev = l2_.Insert(ctx.line_addr, /*dirty=*/false); ev.has_value() && ev->dirty) {
      WritebackVictim(ev->line_addr);
    }
    prefetched_lines_.insert(ctx.line_addr);
  } else {
    FillLine(ctx.line_addr, ctx.is_write);
    stats_.access_latency_ns.Add(ToNs(engine_->Now() - ctx.issued_at));
    if (ctx.done) {
      ctx.done();
    }
  }

  while (!waiting_misses_.empty() && mshrs_in_use_ < config_.mshrs) {
    auto [next, path] = std::move(waiting_misses_.front());
    waiting_misses_.pop_front();
    ++mshrs_in_use_;
    IssueMemoryAccess(std::move(next), path);
  }
}

void MemoryHierarchy::FillLine(std::uint64_t line_addr, bool dirty) {
  if (auto ev = l1_.Insert(line_addr, dirty); ev.has_value()) {
    // L1 victim falls into L2.
    if (auto ev2 = l2_.Insert(ev->line_addr, ev->dirty); ev2.has_value()) {
      if (config_.has_llc) {
        if (auto ev3 = llc_.Insert(ev2->line_addr, ev2->dirty); ev3.has_value() && ev3->dirty) {
          WritebackVictim(ev3->line_addr);
        }
      } else if (ev2->dirty) {
        WritebackVictim(ev2->line_addr);
      }
    }
  }
}

void MemoryHierarchy::WritebackVictim(std::uint64_t line_addr) {
  const AddressRange* range = RangeFor(line_addr);
  if (range == nullptr) {
    return;
  }
  ++stats_.writebacks_to_memory;
  if (range->IsLocal()) {
    range->local->Access(line_addr, config_.line_bytes, /*is_write=*/true, nullptr);
    return;
  }
  assert(adapter_ != nullptr);
  MemRequest req;
  req.type = MemRequest::Type::kWrite;
  req.addr = line_addr;
  req.bytes = config_.line_bytes;
  req.channel = Channel::kMem;
  adapter_->Submit(range->remote, req, nullptr);
}

void MemoryHierarchy::MaybePrefetch(std::uint64_t miss_line) {
  if (config_.prefetch_enabled) {
    const std::int64_t stride =
        static_cast<std::int64_t>(miss_line) - static_cast<std::int64_t>(last_miss_line_);
    if (stride != 0 && stride == last_stride_) {
      for (int i = 1; i <= config_.prefetch_degree; ++i) {
        const std::uint64_t target =
            static_cast<std::uint64_t>(static_cast<std::int64_t>(miss_line) + stride * i);
        if (RangeFor(target) == nullptr || l2_.Contains(target) || l1_.Contains(target)) {
          continue;
        }
        ++stats_.prefetches_issued;
        MissContext ctx{target, /*is_write=*/false, engine_->Now(), nullptr,
                        /*is_prefetch=*/true};
        StartMiss(std::move(ctx),
                  config_.l1_latency + config_.l2_latency +
                      (config_.has_llc ? config_.llc_latency : Tick{0}));
      }
    }
    last_stride_ = stride;
  }
  last_miss_line_ = miss_line;
}

void MemoryHierarchy::AccessRange(std::uint64_t addr, std::uint64_t bytes, bool is_write,
                                  std::function<void()> done) {
  if (bytes == 0) {
    if (done) {
      engine_->Schedule(0, std::move(done));
    }
    return;
  }
  const std::uint64_t first = l1_.LineBase(addr);
  const std::uint64_t last = l1_.LineBase(addr + bytes - 1);
  const auto count = std::make_shared<std::uint64_t>((last - first) / config_.line_bytes + 1);
  auto on_line = [count, done = std::move(done)] {
    if (--*count == 0 && done) {
      done();
    }
  };
  for (std::uint64_t line = first; line <= last; line += config_.line_bytes) {
    Access(line, is_write, on_line);
  }
}

bool MemoryHierarchy::InvalidateLine(std::uint64_t addr, bool* was_dirty) {
  bool dirty = false;
  bool present = false;
  bool d = false;
  if (l1_.Invalidate(addr, &d)) {
    present = true;
    dirty = dirty || d;
  }
  if (l2_.Invalidate(addr, &d)) {
    present = true;
    dirty = dirty || d;
  }
  if (config_.has_llc && llc_.Invalidate(addr, &d)) {
    present = true;
    dirty = dirty || d;
  }
  if (was_dirty != nullptr) {
    *was_dirty = dirty;
  }
  return present;
}

void MemoryHierarchy::FlushLine(std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t line = l1_.LineBase(addr);
  const bool dirty = l1_.IsDirty(line) || l2_.IsDirty(line) ||
                     (config_.has_llc && llc_.IsDirty(line));
  l1_.CleanLine(line);
  l2_.CleanLine(line);
  if (config_.has_llc) {
    llc_.CleanLine(line);
  }
  if (!dirty) {
    if (done) {
      engine_->Schedule(0, std::move(done));
    }
    return;
  }
  const AddressRange* range = RangeFor(line);
  assert(range != nullptr);
  ++stats_.writebacks_to_memory;
  if (range->IsLocal()) {
    range->local->Access(line, config_.line_bytes, /*is_write=*/true, std::move(done));
    return;
  }
  assert(adapter_ != nullptr);
  MemRequest req;
  req.type = MemRequest::Type::kWrite;
  req.addr = line;
  req.bytes = config_.line_bytes;
  req.channel = Channel::kMem;
  adapter_->Submit(range->remote, req, [done = std::move(done)] {
    if (done) {
      done();
    }
  });
}

bool MemoryHierarchy::LinePresent(std::uint64_t addr) const {
  return l1_.Contains(addr) || l2_.Contains(addr) ||
         (config_.has_llc && llc_.Contains(addr));
}

}  // namespace unifab
