// Fabric-attached COMA cache node (paper §3 Difference #2; DDM-style).
//
// Every node exposes a slice of the global memory as an *attraction memory*:
// blocks have no fixed home and migrate/replicate toward the nodes using
// them. A hierarchical (binary-tree) directory locates copies: each internal
// directory level knows which of its subtrees hold a block. Reads replicate;
// writes migrate (invalidating other replicas); evicting the last copy of a
// block *injects* it into a sibling node instead of dropping it — losing the
// last copy would lose the only instance of the data.

#ifndef SRC_MEM_COMA_H_
#define SRC_MEM_COMA_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mem/memnode.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

struct ComaConfig {
  int num_nodes = 4;                        // rounded up to a power of two internally
  std::uint64_t blocks_per_node = 1024;     // attraction-memory capacity (in blocks)
  std::uint32_t block_bytes = 64;
  Tick local_hit_latency = FromNs(150.0);   // attraction-memory access
  Tick directory_hop_latency = FromNs(400.0);  // one level up/down the tree
  Tick transfer_latency = FromNs(600.0);    // block move between two nodes
};

struct ComaStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t replications = 0;   // read miss: copy created
  std::uint64_t migrations = 0;     // write miss: block moved, replicas killed
  std::uint64_t invalidations = 0;
  std::uint64_t injections = 0;     // last-copy eviction relocated the block
  std::uint64_t evictions = 0;
  Summary access_latency_ns;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class ComaSystem {
 public:
  ComaSystem(Engine* engine, const ComaConfig& config);

  // Places the initial (only) copy of `block` on `node`. Typically driven by
  // a striped loader.
  void SeedBlock(int node, std::uint64_t block);

  // Access from `node`. `done` fires when the block is usable locally.
  void Read(int node, std::uint64_t addr, std::function<void()> done);
  void Write(int node, std::uint64_t addr, std::function<void()> done);

  // Introspection.
  bool NodeHolds(int node, std::uint64_t addr) const;
  int CopyCount(std::uint64_t addr) const;
  std::uint64_t NodeOccupancy(int node) const;

  const ComaStats& stats() const { return stats_; }
  MemoryNodeCaps Caps() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    // Attraction memory: block -> LRU list iterator.
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> present;
    std::list<std::uint64_t> lru;  // front = most recent
  };

  std::uint64_t BlockOf(std::uint64_t addr) const;
  // Tree distance (#levels to the lowest common ancestor, both ways).
  int TreeDistance(int a, int b) const;
  // Nearest node (by tree distance) holding `block`, excluding `from`; -1
  // when no other copy exists.
  int NearestHolder(int from, std::uint64_t block) const;
  void Touch(int node, std::uint64_t block);
  // Inserts a copy on `node`, evicting (and possibly injecting) as needed.
  // Adds eviction-handling latency to `extra_latency` (if non-null) and
  // returns false when the insert had to be refused (fabric full of last
  // copies) — safe because the incoming block exists elsewhere.
  bool InsertCopy(int node, std::uint64_t block, Tick* extra_latency = nullptr);
  void RemoveCopy(int node, std::uint64_t block);
  void Finish(Tick start, Tick latency, std::function<void()> done);

  Engine* engine_;
  ComaConfig config_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::vector<int>> holders_;  // block -> node ids
  int levels_;  // tree height
  ComaStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_MEM_COMA_H_
