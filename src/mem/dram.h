// Banked DRAM device model. Serves as local DIMMs inside hosts and as the
// rDIMMs inside FAM chassis (behind an EndpointAdapter).

#ifndef SRC_MEM_DRAM_H_
#define SRC_MEM_DRAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/fabric/adapter.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace unifab {

struct DramConfig {
  std::uint64_t capacity_bytes = 16ULL << 30;
  std::uint32_t num_banks = 16;
  Tick access_latency = FromNs(60.0);       // fixed array-access time per request
  double bandwidth_gbps = 25.6;             // per-device sustained bandwidth
  std::uint32_t queue_depth = 64;           // per-bank request queue
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queue_full_rejects = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Event-driven DRAM: each request occupies its bank for
// access_latency + bytes/bandwidth; requests to a busy bank queue.
class DramDevice : public FabricTarget {
 public:
  DramDevice(Engine* engine, const DramConfig& config, std::string name);

  // FabricTarget (used when the device sits behind an FEA):
  void HandleRead(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) override;
  void HandleWrite(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) override;

  // Direct access path (used for host-local DIMMs).
  void Access(std::uint64_t addr, std::uint32_t bytes, bool is_write, std::function<void()> done);

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct BankRequest {
    std::uint32_t bytes;
    std::function<void()> done;
  };

  struct Bank {
    bool busy = false;
    std::deque<BankRequest> queue;
  };

  std::uint32_t BankOf(std::uint64_t addr) const;
  void StartNext(std::uint32_t bank);

  Engine* engine_;
  DramConfig config_;
  std::string name_;
  std::vector<Bank> banks_;
  DramStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_MEM_DRAM_H_
