// CPU-less NUMA memory expander (CXL Type 3 device, paper §3 Difference #2).
//
// A MemoryExpander fronts a DRAM module behind an FEA. It supports the two
// deployment modes the paper names: exclusive ownership by one host, or
// sharing across hosts, in which case the FEA partitions the capacity and
// enforces per-line access serialization at the device (there is no
// processor on the node to do anything smarter).

#ifndef SRC_MEM_EXPANDER_H_
#define SRC_MEM_EXPANDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/adapter.h"
#include "src/mem/dram.h"
#include "src/mem/memnode.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"

namespace unifab {

struct ExpanderStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t partition_faults = 0;   // access outside the caller's partition
  std::uint64_t serialized_conflicts = 0;  // shared-line accesses that had to wait
  std::uint64_t window_reads = 0;   // backing accesses issued by a coherent directory
  std::uint64_t window_writes = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class MemoryExpander : public FabricTarget {
 public:
  // `device_serialization_latency` models the FEA's per-access coherence
  // bookkeeping in shared mode.
  MemoryExpander(Engine* engine, DramDevice* dram, std::string name,
                 Tick device_serialization_latency = FromNs(20.0));

  // Carves a partition of `size` bytes for `owner`. Returns the base
  // address. Addresses are allocated sequentially from 0.
  std::uint64_t CreatePartition(PbrId owner, std::uint64_t size);

  // Marks [base, base+size) as shared among all hosts; conflicting accesses
  // to the same 64B line are serialized at the device.
  std::uint64_t CreateSharedRegion(std::uint64_t size);

  // Carves a hardware-coherent window (CXL.cache HDM-DB semantics): the
  // region is owned by a CoherentDirectory colocated with this device, which
  // tracks sharers in a bounded snoop filter and back-invalidates host
  // caches. Direct FabricTarget reads/writes to it stay legal (they bypass
  // coherence, like non-cacheable accesses); the directory is the only
  // component expected to touch it, via WindowAccess.
  std::uint64_t CreateCoherentWindow(std::uint64_t size);

  // Backing-store access for the coherent directory: same DRAM timing as a
  // fabric access, chassis-relative after window translation, but without
  // the shared-region line serialization (the directory already serializes
  // per block).
  void WindowAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                    std::function<void()> done);

  // Bounds of the coherent window (chassis-relative); size 0 when absent.
  std::uint64_t CoherentWindowBase() const { return coherent_base_; }
  std::uint64_t CoherentWindowSize() const { return coherent_size_; }

  // Hosts address the chassis through a window in their physical address
  // map (e.g. Cluster::FamBase); the device decodes by subtracting it.
  // Partition offsets returned above are chassis-relative.
  void SetAddressBase(std::uint64_t base) { address_base_ = base; }

  // Associates subsequent FabricTarget calls with a requesting host. The
  // EndpointAdapter does not forward requester identity, so hosts register
  // their id before issuing (tests drive this; the runtime wraps it).
  void SetCurrentRequester(PbrId host) { current_requester_ = host; }

  // FabricTarget:
  void HandleRead(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) override;
  void HandleWrite(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) override;

  MemoryNodeCaps Caps(PbrId self) const;

  const ExpanderStats& stats() const { return stats_; }
  std::uint64_t BytesAllocated() const { return next_base_; }

 private:
  struct Partition {
    PbrId owner;
    std::uint64_t base;
    std::uint64_t size;
    bool shared;
  };

  struct LineLock {
    bool busy = false;
    std::deque<std::function<void()>> waiters;
  };

  std::uint64_t Translate(std::uint64_t addr) const {
    return addr >= address_base_ ? addr - address_base_ : addr;
  }
  const Partition* PartitionFor(std::uint64_t addr) const;
  void CheckAccess(std::uint64_t addr);
  void Serialized(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                  std::function<void()> done);
  void ReleaseLine(std::uint64_t line);

  Engine* engine_;
  DramDevice* dram_;
  std::string name_;
  Tick serialization_latency_;
  std::vector<Partition> partitions_;
  std::unordered_map<std::uint64_t, LineLock> line_locks_;
  std::uint64_t next_base_ = 0;
  std::uint64_t address_base_ = 0;
  std::uint64_t coherent_base_ = 0;
  std::uint64_t coherent_size_ = 0;
  PbrId current_requester_ = kInvalidPbrId;
  ExpanderStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_MEM_EXPANDER_H_
