#include "src/mem/ccnuma.h"

#include <cassert>
#include <utility>

namespace unifab {

const char* CohOpName(CohOp op) {
  switch (op) {
    case CohOp::kGetS:
      return "GetS";
    case CohOp::kGetM:
      return "GetM";
    case CohOp::kPutM:
      return "PutM";
    case CohOp::kPutS:
      return "PutS";
    case CohOp::kData:
      return "Data";
    case CohOp::kDataM:
      return "DataM";
    case CohOp::kInv:
      return "Inv";
    case CohOp::kInvAck:
      return "InvAck";
    case CohOp::kRecall:
      return "Recall";
    case CohOp::kRecallResp:
      return "RecallResp";
    case CohOp::kBackInval:
      return "BackInval";
    case CohOp::kBackInvalAck:
      return "BackInvalAck";
    case CohOp::kNack:
      return "Nack";
  }
  return "?";
}

// --------------------------- CcNumaPort ----------------------------------

void PortStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "read_hits", [this] { return read_hits; });
  group.AddCounterFn(prefix + "read_misses", [this] { return read_misses; });
  group.AddCounterFn(prefix + "write_hits", [this] { return write_hits; });
  group.AddCounterFn(prefix + "upgrades", [this] { return upgrades; });
  group.AddCounterFn(prefix + "write_misses", [this] { return write_misses; });
  group.AddCounterFn(prefix + "invalidations_received",
                     [this] { return invalidations_received; });
  group.AddCounterFn(prefix + "recalls_received", [this] { return recalls_received; });
  group.AddSummaryFn(prefix + "miss_latency_ns", [this] { return &miss_latency_ns; });
}

CcNumaPort::CcNumaPort(Engine* engine, const CcNumaConfig& config, MessageDispatcher* dispatcher,
                       DirectoryController* home, std::string name)
    : engine_(engine),
      config_(config),
      dispatcher_(dispatcher),
      home_(home),
      name_(std::move(name)),
      cache_(config.port_cache) {
  dispatcher_->RegisterService(kSvcCcNuma,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  host_index_ = home_->RegisterPort(this);
  metrics_ = MetricGroup(&engine_->metrics(), "mem/ccnuma/port/" + name_);
  stats_.BindTo(metrics_);
  cache_.stats().BindTo(metrics_, "cache/");
}

void CcNumaPort::SendToHome(CohOp op, std::uint64_t block, bool with_data) {
  auto msg = std::make_shared<CohMsg>();
  msg->op = op;
  msg->block = block;
  msg->requester = host_index_;
  const std::uint32_t bytes =
      config_.ctrl_msg_bytes + (with_data ? config_.block_bytes : 0);
  dispatcher_->Send(home_->fabric_id(), kSvcCcNuma, static_cast<std::uint64_t>(op), bytes,
                    std::move(msg), Channel::kCache);
}

void CcNumaPort::Read(std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  if (cache_.Access(block, /*is_write=*/false)) {
    ++stats_.read_hits;
    engine_->Schedule(config_.port_hit_latency, std::move(done));
    return;
  }
  ++stats_.read_misses;
  StartMiss(block, /*wants_m=*/false, std::move(done));
}

void CcNumaPort::Write(std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  if (cache_.Contains(block)) {
    if (cache_.IsDirty(block)) {
      // Already M: write locally.
      cache_.Access(block, /*is_write=*/true);
      ++stats_.write_hits;
      engine_->Schedule(config_.port_hit_latency, std::move(done));
      return;
    }
    // S -> M upgrade.
    ++stats_.upgrades;
    StartMiss(block, /*wants_m=*/true, std::move(done));
    return;
  }
  ++stats_.write_misses;
  StartMiss(block, /*wants_m=*/true, std::move(done));
}

void CcNumaPort::StartMiss(std::uint64_t block, bool wants_m, std::function<void()> done) {
  auto [it, inserted] = pending_.try_emplace(block);
  PendingTxn& txn = it->second;
  txn.waiters.push_back(std::move(done));
  if (!inserted) {
    // A transaction for this block is already outstanding; escalate S->M
    // demand if needed (the grant handler re-requests when insufficient).
    txn.wants_m = txn.wants_m || wants_m;
    return;
  }
  txn.wants_m = wants_m;
  txn.started_at = engine_->Now();
  txn.in_flight = true;
  SendToHome(wants_m ? CohOp::kGetM : CohOp::kGetS, block, /*with_data=*/false);
}

void CcNumaPort::HandleMessage(const FabricMessage& msg) {
  const auto coh = std::static_pointer_cast<CohMsg>(msg.body);
  assert(coh != nullptr);
  switch (coh->op) {
    case CohOp::kData:
    case CohOp::kDataM:
      OnGrant(*coh);
      break;
    case CohOp::kInv:
      OnInv(*coh);
      break;
    case CohOp::kRecall:
      OnRecall(*coh);
      break;
    default:
      assert(false && "unexpected message at port");
  }
}

void CcNumaPort::OnGrant(const CohMsg& msg) {
  auto it = pending_.find(msg.block);
  if (it == pending_.end()) {
    return;  // stale grant (cannot normally happen with a blocking home)
  }
  PendingTxn txn = std::move(it->second);
  pending_.erase(it);

  const bool exclusive = msg.op == CohOp::kDataM;
  if (txn.wants_m && !exclusive) {
    // The transaction was escalated to a write after the GetS left; issue
    // the upgrade now, re-queueing the waiters.
    auto [it2, inserted] = pending_.try_emplace(msg.block);
    (void)inserted;
    PendingTxn& up = it2->second;
    up.wants_m = true;
    up.started_at = txn.started_at;
    up.waiters = std::move(txn.waiters);
    up.in_flight = true;
    SendToHome(CohOp::kGetM, msg.block, /*with_data=*/false);
    return;
  }

  EvictIfNeeded(msg.block, exclusive);
  stats_.miss_latency_ns.Add(ToNs(engine_->Now() - txn.started_at));
  for (auto& w : txn.waiters) {
    if (w) {
      w();
    }
  }
}

void CcNumaPort::EvictIfNeeded(std::uint64_t block, bool dirty) {
  if (auto ev = cache_.Insert(block, dirty); ev.has_value()) {
    if (ev->dirty) {
      SendToHome(CohOp::kPutM, ev->line_addr, /*with_data=*/true);
    } else {
      SendToHome(CohOp::kPutS, ev->line_addr, /*with_data=*/false);
    }
  }
}

void CcNumaPort::OnInv(const CohMsg& msg) {
  ++stats_.invalidations_received;
  cache_.Invalidate(msg.block);
  auto resp = std::make_shared<CohMsg>();
  resp->op = CohOp::kInvAck;
  resp->block = msg.block;
  resp->requester = host_index_;
  dispatcher_->Send(home_->fabric_id(), kSvcCcNuma,
                    static_cast<std::uint64_t>(CohOp::kInvAck), config_.ctrl_msg_bytes,
                    std::move(resp), Channel::kCache);
}

void CcNumaPort::OnRecall(const CohMsg& msg) {
  ++stats_.recalls_received;
  auto resp = std::make_shared<CohMsg>();
  resp->op = CohOp::kRecallResp;
  resp->block = msg.block;
  resp->requester = host_index_;
  bool dirty = false;
  resp->was_present = cache_.Contains(msg.block);
  if (resp->was_present) {
    dirty = cache_.IsDirty(msg.block);
    if (msg.downgrade) {
      cache_.CleanLine(msg.block);  // keep an S copy
    } else {
      cache_.Invalidate(msg.block);
    }
  }
  resp->was_dirty = dirty;
  const std::uint32_t bytes = config_.ctrl_msg_bytes + (dirty ? config_.block_bytes : 0);
  dispatcher_->Send(home_->fabric_id(), kSvcCcNuma,
                    static_cast<std::uint64_t>(CohOp::kRecallResp), bytes, std::move(resp),
                    Channel::kCache);
}

// ------------------------ DirectoryController ----------------------------

void DirectoryStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "gets", [this] { return gets; });
  group.AddCounterFn(prefix + "getm", [this] { return getm; });
  group.AddCounterFn(prefix + "putm", [this] { return putm; });
  group.AddCounterFn(prefix + "puts", [this] { return puts; });
  group.AddCounterFn(prefix + "recalls", [this] { return recalls; });
  group.AddCounterFn(prefix + "invalidations", [this] { return invalidations; });
  group.AddCounterFn(prefix + "queued_requests", [this] { return queued_requests; });
  group.AddCounterFn(prefix + "stale_acks", [this] { return stale_acks; });
  group.AddCounterFn(prefix + "implicit_evict_acks", [this] { return implicit_evict_acks; });
}

DirectoryController::DirectoryController(Engine* engine, const CcNumaConfig& config,
                                         MessageDispatcher* dispatcher, DramDevice* dram,
                                         std::string name)
    : engine_(engine),
      config_(config),
      dispatcher_(dispatcher),
      dram_(dram),
      name_(std::move(name)) {
  dispatcher_->RegisterService(kSvcCcNuma,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(), "mem/ccnuma/dir/" + name_);
  stats_.BindTo(metrics_);
  audit_ = AuditScope(&engine_->audit(), "mem/ccnuma");
  // Every line resident in a port cache must be visible to the directory as
  // that port being the owner or a sharer of the block. The reverse is not
  // an invariant (eviction notices are in flight), but a port holding a line
  // the directory does not attribute to it is a coherence leak. Port caches
  // live on the hosts' engine; when the directory runs on a different shard
  // (sharded cluster runs) the cross-shard peek would race, so the check
  // degrades to a no-op there — plain-engine test rigs keep it armed.
  audit_.AddCheck("sharers_conserved", [this]() -> std::string {
    for (const CcNumaPort* p : ports_) {
      if (p->engine_ != engine_) {
        return "";
      }
      for (std::uint64_t line : p->cache_.ValidLines()) {
        auto it = blocks_.find(line);
        const int h = p->host_index_;
        const bool tracked = it != blocks_.end() &&
                             (it->second.owner == h || it->second.sharers.count(h) != 0);
        if (!tracked) {
          return "port " + p->name_ + " holds block " + std::to_string(line) +
                 " unknown to directory " + name_;
        }
      }
    }
    return "";
  });
}

int DirectoryController::RegisterPort(CcNumaPort* port) {
  ports_.push_back(port);
  return static_cast<int>(ports_.size()) - 1;
}

void DirectoryController::SendToPort(int host, CohOp op, std::uint64_t block, bool with_data,
                                     bool downgrade) {
  assert(host >= 0 && host < static_cast<int>(ports_.size()));
  auto msg = std::make_shared<CohMsg>();
  msg->op = op;
  msg->block = block;
  msg->downgrade = downgrade;
  const std::uint32_t bytes =
      config_.ctrl_msg_bytes + (with_data ? config_.block_bytes : 0);
  dispatcher_->Send(ports_[host]->fabric_id(), kSvcCcNuma, static_cast<std::uint64_t>(op),
                    bytes, std::move(msg), Channel::kCache);
}

void DirectoryController::HandleMessage(const FabricMessage& msg) {
  const auto coh = std::static_pointer_cast<CohMsg>(msg.body);
  assert(coh != nullptr);
  // Every message pays one directory lookup.
  engine_->Schedule(config_.directory_latency, [this, m = *coh] { Process(m); });
}

void DirectoryController::Process(const CohMsg& msg) {
  BlockEntry& e = blocks_[msg.block];
  switch (msg.op) {
    case CohOp::kGetS:
    case CohOp::kGetM:
      if (e.busy) {
        ++stats_.queued_requests;
        e.pending.push_back(msg);
        return;
      }
      e.busy = true;
      e.active = msg;
      if (msg.op == CohOp::kGetS) {
        ++stats_.gets;
        ServeGetS(e, msg);
      } else {
        ++stats_.getm;
        ServeGetM(e, msg);
      }
      return;

    case CohOp::kPutM: {
      ++stats_.putm;
      // Race: the owner's eviction can cross a Recall we sent it. Treat the
      // PutM as the recall response so the blocked transaction completes;
      // the eventual RecallResp(not-present) is then discarded as stale.
      if (e.busy && e.recall_from == msg.requester && e.state == BlockState::kModified &&
          e.owner == msg.requester) {
        ++stats_.implicit_evict_acks;
        e.recall_from = -1;
        dram_->Access(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
        e.owner = -1;
        GrantAndUnblock(e, msg.block, e.active.requester,
                        /*exclusive=*/e.active.op == CohOp::kGetM);
        return;
      }
      // Owner washes its hands of the block; data returns to DRAM.
      if (e.owner == msg.requester) {
        e.owner = -1;
        e.state = e.sharers.empty() ? BlockState::kUncached : BlockState::kShared;
      }
      e.sharers.erase(msg.requester);
      if (e.state == BlockState::kShared && e.sharers.empty()) {
        e.state = BlockState::kUncached;
      }
      dram_->Access(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
      return;
    }

    case CohOp::kPutS:
      ++stats_.puts;
      e.sharers.erase(msg.requester);
      if (e.state == BlockState::kShared && e.sharers.empty()) {
        e.state = BlockState::kUncached;
      }
      // The eviction notice crossed an Inv we sent this port for the active
      // GetM: count it as the ack. The port's real InvAck (it acks Inv even
      // for absent lines) is then discarded as stale, and if the port dies
      // before acking, the transaction still completes.
      if (e.busy && e.inv_waiting.erase(msg.requester) != 0) {
        ++stats_.implicit_evict_acks;
        if (e.inv_waiting.empty()) {
          GrantAndUnblock(e, msg.block, e.active.requester, /*exclusive=*/true);
        }
      }
      return;

    case CohOp::kInvAck: {
      // Honor the ack only from a port we are actually waiting on; anything
      // else (a late ack after a crossing eviction already counted, or an
      // ack belonging to a previous transaction on this block) would corrupt
      // the count for the transaction now in flight.
      if (!e.busy || e.inv_waiting.erase(msg.requester) == 0) {
        ++stats_.stale_acks;
        return;
      }
      if (e.inv_waiting.empty()) {
        // All sharers gone; grant exclusive to the active requester.
        GrantAndUnblock(e, msg.block, e.active.requester, /*exclusive=*/true);
      }
      return;
    }

    case CohOp::kRecallResp: {
      if (!e.busy || e.recall_from != msg.requester) {
        ++stats_.stale_acks;
        return;  // resolved earlier by a crossing PutM, or not our responder
      }
      e.recall_from = -1;
      const CohMsg active = e.active;
      if (msg.was_dirty) {
        dram_->Access(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
      }
      if (active.op == CohOp::kGetS) {
        // Old owner downgraded to S; both it and the requester share.
        if (msg.was_present && e.owner >= 0) {
          e.sharers.insert(e.owner);
        }
        e.owner = -1;
        GrantAndUnblock(e, msg.block, active.requester, /*exclusive=*/false);
      } else {
        e.owner = -1;
        GrantAndUnblock(e, msg.block, active.requester, /*exclusive=*/true);
      }
      return;
    }

    default:
      assert(false && "unexpected message at directory");
  }
}

void DirectoryController::ServeGetS(BlockEntry& e, const CohMsg& msg) {
  switch (e.state) {
    case BlockState::kUncached:
    case BlockState::kShared:
      GrantAndUnblock(e, msg.block, msg.requester, /*exclusive=*/false);
      return;
    case BlockState::kModified:
      ++stats_.recalls;
      e.recall_from = e.owner;
      SendToPort(e.owner, CohOp::kRecall, msg.block, /*with_data=*/false, /*downgrade=*/true);
      return;  // completion continues at kRecallResp
  }
}

void DirectoryController::ServeGetM(BlockEntry& e, const CohMsg& msg) {
  switch (e.state) {
    case BlockState::kUncached:
      GrantAndUnblock(e, msg.block, msg.requester, /*exclusive=*/true);
      return;
    case BlockState::kShared: {
      for (int s : e.sharers) {
        if (s != msg.requester) {
          ++stats_.invalidations;
          SendToPort(s, CohOp::kInv, msg.block, /*with_data=*/false);
          e.inv_waiting.insert(s);
        }
      }
      if (e.inv_waiting.empty()) {
        GrantAndUnblock(e, msg.block, msg.requester, /*exclusive=*/true);
      }
      return;  // otherwise completion continues at kInvAck
    }
    case BlockState::kModified:
      ++stats_.recalls;
      e.recall_from = e.owner;
      SendToPort(e.owner, CohOp::kRecall, msg.block, /*with_data=*/false, /*downgrade=*/false);
      return;  // completion continues at kRecallResp
  }
}

void DirectoryController::GrantAndUnblock(BlockEntry& /*entry*/, std::uint64_t block,
                                          int requester, bool exclusive) {
  // Fetch the data from chassis DRAM, then grant.
  dram_->Access(block, config_.block_bytes, /*is_write=*/false,
                [this, block, requester, exclusive] {
                  BlockEntry& entry = blocks_[block];
                  if (exclusive) {
                    entry.state = BlockState::kModified;
                    entry.sharers.clear();
                    entry.owner = requester;
                    SendToPort(requester, CohOp::kDataM, block, /*with_data=*/true);
                  } else {
                    entry.state = BlockState::kShared;
                    entry.sharers.insert(requester);
                    SendToPort(requester, CohOp::kData, block, /*with_data=*/true);
                  }
                  FinishTxn(entry, block);
                });
}

void DirectoryController::FinishTxn(BlockEntry& e, std::uint64_t /*block*/) {
  e.busy = false;
  e.inv_waiting.clear();
  e.recall_from = -1;
  if (e.pending.empty()) {
    return;
  }
  const CohMsg next = e.pending.front();
  e.pending.pop_front();
  engine_->Schedule(config_.directory_latency, [this, next] { Process(next); });
}

DirectoryController::BlockState DirectoryController::StateOf(std::uint64_t block) const {
  auto it = blocks_.find(block);
  return it == blocks_.end() ? BlockState::kUncached : it->second.state;
}

std::size_t DirectoryController::SharerCount(std::uint64_t block) const {
  auto it = blocks_.find(block);
  return it == blocks_.end() ? 0 : it->second.sharers.size();
}

MemoryNodeCaps DirectoryController::Caps() const {
  MemoryNodeCaps caps;
  caps.type = MemoryNodeType::kCcNuma;
  caps.node = fabric_id();
  caps.capacity_bytes = dram_->config().capacity_bytes;
  caps.hardware_coherent = true;
  caps.has_processing = false;
  caps.supports_sharing = true;
  caps.typical_read_latency = FromNs(1800.0);
  caps.typical_write_latency = FromNs(2100.0);
  return caps;
}

}  // namespace unifab
