#include "src/mem/memnode.h"

#include <sstream>

namespace unifab {

const char* MemoryNodeTypeName(MemoryNodeType type) {
  switch (type) {
    case MemoryNodeType::kHostLocal:
      return "host-local";
    case MemoryNodeType::kCpuLessNuma:
      return "CPU-less-NUMA";
    case MemoryNodeType::kCcNuma:
      return "CC-NUMA";
    case MemoryNodeType::kNonCcNuma:
      return "non-CC-NUMA";
    case MemoryNodeType::kComa:
      return "COMA";
  }
  return "?";
}

std::string CapsToString(const MemoryNodeCaps& caps) {
  std::ostringstream out;
  out << MemoryNodeTypeName(caps.type) << "(node=" << caps.node << ", "
      << (caps.capacity_bytes >> 20) << "MiB, coherent=" << (caps.hardware_coherent ? "hw" : "sw")
      << ", processing=" << (caps.has_processing ? "yes" : "no")
      << ", rd=" << ToNs(caps.typical_read_latency) << "ns)";
  return out.str();
}

}  // namespace unifab
