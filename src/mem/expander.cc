#include "src/mem/expander.h"

#include <cassert>
#include <utility>

namespace unifab {

void ExpanderStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "reads", [this] { return reads; });
  group.AddCounterFn(prefix + "writes", [this] { return writes; });
  group.AddCounterFn(prefix + "partition_faults", [this] { return partition_faults; });
  group.AddCounterFn(prefix + "serialized_conflicts", [this] { return serialized_conflicts; });
  group.AddCounterFn(prefix + "window_reads", [this] { return window_reads; });
  group.AddCounterFn(prefix + "window_writes", [this] { return window_writes; });
}

MemoryExpander::MemoryExpander(Engine* engine, DramDevice* dram, std::string name,
                               Tick device_serialization_latency)
    : engine_(engine),
      dram_(dram),
      name_(std::move(name)),
      serialization_latency_(device_serialization_latency) {
  metrics_ = MetricGroup(&engine_->metrics(), "mem/expander/" + name_);
  stats_.BindTo(metrics_);
}

std::uint64_t MemoryExpander::CreatePartition(PbrId owner, std::uint64_t size) {
  assert(next_base_ + size <= dram_->config().capacity_bytes);
  const std::uint64_t base = next_base_;
  partitions_.push_back(Partition{owner, base, size, /*shared=*/false});
  next_base_ += size;
  return base;
}

std::uint64_t MemoryExpander::CreateSharedRegion(std::uint64_t size) {
  assert(next_base_ + size <= dram_->config().capacity_bytes);
  const std::uint64_t base = next_base_;
  partitions_.push_back(Partition{kInvalidPbrId, base, size, /*shared=*/true});
  next_base_ += size;
  return base;
}

std::uint64_t MemoryExpander::CreateCoherentWindow(std::uint64_t size) {
  assert(coherent_size_ == 0 && "one coherent window per device");
  assert(next_base_ + size <= dram_->config().capacity_bytes);
  const std::uint64_t base = next_base_;
  partitions_.push_back(Partition{kInvalidPbrId, base, size, /*shared=*/true});
  next_base_ += size;
  coherent_base_ = base;
  coherent_size_ = size;
  return base;
}

void MemoryExpander::WindowAccess(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                                  std::function<void()> done) {
  addr = Translate(addr);
  assert(coherent_size_ != 0 && addr >= coherent_base_ &&
         addr + bytes <= coherent_base_ + coherent_size_ && "access outside coherent window");
  if (is_write) {
    ++stats_.window_writes;
  } else {
    ++stats_.window_reads;
  }
  dram_->Access(addr, bytes, is_write, std::move(done));
}

const MemoryExpander::Partition* MemoryExpander::PartitionFor(std::uint64_t addr) const {
  for (const auto& p : partitions_) {
    if (addr >= p.base && addr < p.base + p.size) {
      return &p;
    }
  }
  return nullptr;
}

void MemoryExpander::CheckAccess(std::uint64_t addr) {
  // An unconfigured device (no partitions) is a flat expander: every access
  // is legal. Once partitions exist, unallocated space or someone else's
  // exclusive partition is a fault. The device still serves the request
  // (real Type 3 devices rely on host-side address decoding), but the
  // counter lets tests and operators see it.
  if (partitions_.empty()) {
    return;
  }
  const Partition* p = PartitionFor(addr);
  if (p == nullptr || (!p->shared && current_requester_ != kInvalidPbrId &&
                       p->owner != current_requester_)) {
    ++stats_.partition_faults;
  }
}

void MemoryExpander::HandleRead(std::uint64_t addr, std::uint32_t bytes,
                                std::function<void()> done) {
  addr = Translate(addr);
  ++stats_.reads;
  CheckAccess(addr);
  const Partition* p = PartitionFor(addr);
  if (p != nullptr && p->shared) {
    Serialized(addr, bytes, /*is_write=*/false, std::move(done));
    return;
  }
  dram_->Access(addr, bytes, /*is_write=*/false, std::move(done));
}

void MemoryExpander::HandleWrite(std::uint64_t addr, std::uint32_t bytes,
                                 std::function<void()> done) {
  addr = Translate(addr);
  ++stats_.writes;
  CheckAccess(addr);
  const Partition* p = PartitionFor(addr);
  if (p != nullptr && p->shared) {
    Serialized(addr, bytes, /*is_write=*/true, std::move(done));
    return;
  }
  dram_->Access(addr, bytes, /*is_write=*/true, std::move(done));
}

void MemoryExpander::Serialized(std::uint64_t addr, std::uint32_t bytes, bool is_write,
                                std::function<void()> done) {
  const std::uint64_t line = addr & ~std::uint64_t{63};
  LineLock& lock = line_locks_[line];
  auto run = [this, addr, bytes, is_write, line, done = std::move(done)]() mutable {
    engine_->Schedule(serialization_latency_, [this, addr, bytes, is_write, line,
                                               done = std::move(done)]() mutable {
      dram_->Access(addr, bytes, is_write, [this, line, done = std::move(done)] {
        if (done) {
          done();
        }
        ReleaseLine(line);
      });
    });
  };
  if (lock.busy) {
    ++stats_.serialized_conflicts;
    lock.waiters.push_back(std::move(run));
    return;
  }
  lock.busy = true;
  run();
}

void MemoryExpander::ReleaseLine(std::uint64_t line) {
  auto it = line_locks_.find(line);
  assert(it != line_locks_.end());
  LineLock& lock = it->second;
  if (lock.waiters.empty()) {
    line_locks_.erase(it);
    return;
  }
  auto next = std::move(lock.waiters.front());
  lock.waiters.pop_front();
  next();
}

MemoryNodeCaps MemoryExpander::Caps(PbrId self) const {
  MemoryNodeCaps caps;
  caps.type = MemoryNodeType::kCpuLessNuma;
  caps.node = self;
  caps.capacity_bytes = dram_->config().capacity_bytes;
  caps.hardware_coherent = false;
  caps.has_processing = false;
  caps.supports_sharing = true;
  caps.typical_read_latency = FromNs(1575.3);
  caps.typical_write_latency = FromNs(1613.3);
  return caps;
}

}  // namespace unifab
