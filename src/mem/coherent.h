// CXL.cache-style coherent shared-memory window (paper DP#2, ROADMAP 3).
//
// A CoherentDirectory lives at a FAM chassis's memory expander and runs an
// HDM-DB-style snoop filter: unlike the CC-NUMA DirectoryController's
// unbounded BlockEntry map, tracking is bounded both per block (at most
// `max_sharers` sharers, recall-on-overflow) and in total (at most
// `max_tracked_blocks` filter entries, back-invalidation of the LRU victim
// when the filter is full). The back-invalidation channel (CohOp::kBackInval
// / kBackInvalAck, CXL BISnp/BIRsp) is the price of the bound: the device
// can evict a filter entry only by first invalidating every cached copy.
//
// Partial failure is first-class: every transaction carries a deadline on
// both sides. The directory never grants on a timed-out handshake — it
// Nacks the requester terminally and keeps unacknowledged sharers tracked —
// and a port whose transaction times out fails its waiters with ok=false
// and conservatively drops its local copy. A failed write is therefore
// never observable: grants commit directory state before data moves, and
// the host-side shadow is only updated on a successful completion.
//
// The wire vocabulary (CohOp/CohMsg) is shared with src/mem/ccnuma.h so
// traces show one protocol language; the service id (kSvcCoherent) and the
// state machines are this file's own.

#ifndef SRC_MEM_COHERENT_H_
#define SRC_MEM_COHERENT_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/mem/cache.h"
#include "src/mem/ccnuma.h"
#include "src/mem/expander.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

struct CoherentConfig {
  std::uint32_t block_bytes = 64;
  CacheConfig port_cache{64 * 1024, 64, 8};
  Tick port_hit_latency = FromNs(15.0);
  Tick directory_latency = FromNs(25.0);
  std::uint32_t ctrl_msg_bytes = 16;
  // Snoop-filter bounds. The directory holds at most `max_tracked_blocks`
  // entries; a full filter back-invalidates its LRU idle entry to admit a
  // new block. Each entry tracks at most `max_sharers` sharers; an
  // overflowing GetS recalls the oldest sharer first.
  std::uint32_t max_tracked_blocks = 4096;
  std::uint32_t max_sharers = 8;
  // Directory-side watchdog on an in-flight handshake (inv/recall/BI acks);
  // expiry aborts the transaction with a Nack. 0 disables.
  Tick ack_deadline = FromUs(250.0);
  // Port-side watchdog on an outstanding miss; expiry fails the waiters
  // terminally (ok=false). 0 disables.
  Tick txn_deadline = FromUs(500.0);
};

struct CoherentDirStats {
  std::uint64_t gets = 0;
  std::uint64_t getm = 0;
  std::uint64_t putm = 0;
  std::uint64_t puts = 0;
  std::uint64_t recalls = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t queued_requests = 0;
  std::uint64_t back_invals_sent = 0;
  std::uint64_t back_inval_acks = 0;        // includes implicit (crossing Put*) acks
  std::uint64_t back_inval_acks_stale = 0;  // late acks after a timeout charged them
  std::uint64_t back_inval_timeouts = 0;
  std::uint64_t sharer_recalls = 0;    // per-block sharer-vector overflow
  std::uint64_t filter_evictions = 0;  // filter entries reclaimed via back-inval
  std::uint64_t filter_parked = 0;     // requests that waited for a filter slot
  std::uint64_t nacks_sent = 0;
  std::uint64_t txn_aborts = 0;  // directory-side deadline expiries
  std::uint64_t stale_acks = 0;
  std::uint64_t implicit_evict_acks = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

struct CoherentPortStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t invalidations_received = 0;
  std::uint64_t recalls_received = 0;
  std::uint64_t back_invals_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t txn_timeouts = 0;
  std::uint64_t txn_failures = 0;  // waiters failed (nack + timeout)
  Summary miss_latency_ns;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class CoherentDirectory;

// Host-side port into the coherent window. Completions carry an `ok` flag:
// false means the transaction failed terminally (directory Nack or port
// deadline) and the local copy was conservatively dropped. The void
// overloads exist for callers ported from CcNumaPort (NodeReplicated).
class CoherentPort {
 public:
  CoherentPort(Engine* engine, const CoherentConfig& config, MessageDispatcher* dispatcher,
               CoherentDirectory* home, std::string name);

  void Read(std::uint64_t addr, std::function<void(bool ok)> done);
  void Write(std::uint64_t addr, std::function<void(bool ok)> done);
  void Read(std::uint64_t addr, std::function<void()> done) {
    Read(addr, [done = std::move(done)](bool) {
      if (done) {
        done();
      }
    });
  }
  void Write(std::uint64_t addr, std::function<void()> done) {
    Write(addr, [done = std::move(done)](bool) {
      if (done) {
        done();
      }
    });
  }

  bool HoldsBlock(std::uint64_t addr) const { return cache_.Contains(addr); }
  bool HoldsModified(std::uint64_t addr) const { return cache_.IsDirty(addr); }

  const CoherentPortStats& stats() const { return stats_; }
  int host_index() const { return host_index_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }
  const std::string& name() const { return name_; }

 private:
  friend class CoherentDirectory;
  friend class AuditTestPeer;

  struct PendingTxn {
    bool wants_m = false;
    Tick started_at = 0;
    std::vector<std::function<void(bool)>> waiters;
    EventId deadline = kInvalidEventId;
  };

  void HandleMessage(const FabricMessage& msg);
  void OnGrant(const CohMsg& msg);
  void OnInv(const CohMsg& msg);
  void OnRecall(const CohMsg& msg);
  void OnBackInval(const CohMsg& msg);
  void OnNack(const CohMsg& msg);
  void OnTxnTimeout(std::uint64_t block);
  void FailTxn(std::uint64_t block, bool drop_line);
  void SendToHome(CohOp op, std::uint64_t block, bool with_data);
  void StartMiss(std::uint64_t block, bool wants_m, std::function<void(bool)> done);
  void EvictIfNeeded(std::uint64_t block, bool dirty);

  Engine* engine_;
  CoherentConfig config_;
  MessageDispatcher* dispatcher_;
  CoherentDirectory* home_;
  std::string name_;
  int host_index_ = -1;
  SetAssocCache cache_;
  std::unordered_map<std::uint64_t, PendingTxn> pending_;
  CoherentPortStats stats_;
  MetricGroup metrics_;
};

// Memory-side snoop-filter directory, colocated with a MemoryExpander.
// Backing data moves through MemoryExpander::WindowAccess so device stats
// and DRAM timing stay honest.
class CoherentDirectory {
 public:
  CoherentDirectory(Engine* engine, const CoherentConfig& config, MessageDispatcher* dispatcher,
                    MemoryExpander* expander, std::string name);

  int RegisterPort(CoherentPort* port);

  const CoherentDirStats& stats() const { return stats_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }
  const CoherentConfig& config() const { return config_; }

  // Introspection for tests.
  enum class BlockState { kUncached, kShared, kModified };
  BlockState StateOf(std::uint64_t block) const;
  std::size_t SharerCount(std::uint64_t block) const;
  int OwnerOf(std::uint64_t block) const;
  std::size_t TrackedBlocks() const { return blocks_.size(); }
  std::size_t ParkedRequests() const { return filter_wait_.size(); }
  std::uint64_t BiOutstanding() const;

 private:
  friend class CoherentPort;
  friend class AuditTestPeer;

  struct Entry {
    BlockState state = BlockState::kUncached;
    std::vector<int> sharers;  // insertion order: front = oldest = recall victim
    int owner = -1;
    bool busy = false;
    bool evicting = false;  // filter eviction (back-invalidation) in progress
    std::deque<CohMsg> pending;
    std::set<int> inv_waiting;
    std::set<int> bi_waiting;
    int recall_from = -1;
    CohMsg active;
    std::uint64_t lru = 0;
    EventId deadline = kInvalidEventId;
  };

  void HandleMessage(const FabricMessage& msg);
  void Process(const CohMsg& msg);
  void Admit(const CohMsg& msg);
  void StartTxn(Entry& e, std::uint64_t block, const CohMsg& msg);
  void ServeGetS(Entry& e, std::uint64_t block, const CohMsg& msg);
  void ServeGetM(Entry& e, std::uint64_t block, const CohMsg& msg);
  void Grant(std::uint64_t block, int requester, bool exclusive);
  void FinishTxn(Entry& e, std::uint64_t block);
  void SendToPort(int host, CohOp op, std::uint64_t block, bool with_data,
                  bool downgrade = false);
  void SendBackInval(Entry& e, std::uint64_t block, int host);
  // A back-invalidation target answered (explicit ack or crossing Put*).
  void BiSatisfied(std::uint64_t block, int responder);
  void StartFilterEviction();
  void FinishEviction(std::uint64_t block);
  void PumpFilterWait();
  void OnDirTimeout(std::uint64_t block);
  void ArmDeadline(Entry& e, std::uint64_t block);
  void RemoveSharer(Entry& e, int host);
  void MaybeReclaim(std::uint64_t block);

  Engine* engine_;
  CoherentConfig config_;
  MessageDispatcher* dispatcher_;
  MemoryExpander* expander_;
  std::string name_;
  std::vector<CoherentPort*> ports_;
  std::map<std::uint64_t, Entry> blocks_;  // ordered: deterministic victim scan
  std::deque<CohMsg> filter_wait_;         // requests parked for a filter slot
  bool evict_in_progress_ = false;
  std::uint64_t lru_clock_ = 0;
  CoherentDirStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;  // declared last: checks read the state above
};

// Bump allocator + host-side shadow over a coherent window carved from a
// MemoryExpander (CreateCoherentWindow). Addresses handed out are in the
// same (fabric-virtual) space the ports use; `base` is that space's window
// start (e.g. Cluster::FamBase(0) + expander window base).
class CoherentWindow {
 public:
  CoherentWindow(CoherentDirectory* directory, std::uint64_t base, std::uint64_t size)
      : directory_(directory), base_(base), size_(size), shadow_(size, 0) {}

  // Allocates `bytes` rounded up to whole coherence blocks; returns the
  // fabric-virtual address.
  std::uint64_t Allocate(std::uint64_t bytes);

  std::uint8_t* Shadow(std::uint64_t addr) {
    assert(addr >= base_ && addr < base_ + size_);
    return shadow_.data() + (addr - base_);
  }

  CoherentDirectory* directory() const { return directory_; }
  std::uint64_t base() const { return base_; }
  std::uint64_t size() const { return size_; }
  std::uint64_t BytesAllocated() const { return cursor_; }
  std::uint32_t block_bytes() const { return directory_->config().block_bytes; }

 private:
  CoherentDirectory* directory_;
  std::uint64_t base_;
  std::uint64_t size_;
  std::uint64_t cursor_ = 0;
  std::vector<std::uint8_t> shadow_;
};

}  // namespace unifab

#endif  // SRC_MEM_COHERENT_H_
