// Memory-node taxonomy from paper §3 Difference #2. The four fabric-attached
// node types expose very different capability/performance envelopes, which
// the FCC unified heap (DP#2) uses for placement decisions.

#ifndef SRC_MEM_MEMNODE_H_
#define SRC_MEM_MEMNODE_H_

#include <cstdint>
#include <string>

#include "src/fabric/flit.h"
#include "src/sim/time.h"

namespace unifab {

enum class MemoryNodeType {
  kHostLocal,    // a host's own DIMMs (fastest tier)
  kCpuLessNuma,  // standalone memory expander, no processing units (CXL Type 3)
  kCcNuma,       // shared address space with hardware directory coherence
  kNonCcNuma,    // shared address space, software-managed coherence
  kComa,         // cache-only memory architecture (attraction memory)
};

const char* MemoryNodeTypeName(MemoryNodeType type);

// Capability descriptor advertised to the heap manager and migration policy.
struct MemoryNodeCaps {
  MemoryNodeType type = MemoryNodeType::kCpuLessNuma;
  PbrId node = kInvalidPbrId;       // fabric id (when fabric-attached)
  std::uint64_t capacity_bytes = 0;
  bool hardware_coherent = false;   // coherence maintained by FHA/FEA hardware
  bool has_processing = false;      // can host migration agents / node replication
  bool supports_sharing = false;    // multiple hosts may map it concurrently
  Tick typical_read_latency = 0;    // unloaded 64B read, for placement cost models
  Tick typical_write_latency = 0;
};

std::string CapsToString(const MemoryNodeCaps& caps);

}  // namespace unifab

#endif  // SRC_MEM_MEMNODE_H_
