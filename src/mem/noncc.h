// Fabric-attached non-CC-NUMA memory node (paper §3 Difference #2; cf.
// Intel SCC, IBM Cell SPE).
//
// Hardware keeps no coherence: each host caches remote blocks in a local
// software-managed cache and must flush/invalidate explicitly. The hardware
// stays simple (plain reads/writes through the FHA) while correctness moves
// into software — exactly the trade-off the paper describes.
//
// Staleness instrumentation: a SharedStateOracle tracks, outside the timed
// simulation, the version each write produces, letting tests and examples
// observe when a host reads stale data because it skipped an invalidate.

#ifndef SRC_MEM_NONCC_H_
#define SRC_MEM_NONCC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/fabric/adapter.h"
#include "src/mem/cache.h"
#include "src/mem/memnode.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// Ground-truth version store shared by all ports of one non-CC node.
class SharedStateOracle {
 public:
  std::uint64_t Current(std::uint64_t block) const {
    auto it = versions_.find(block);
    return it == versions_.end() ? 0 : it->second;
  }
  std::uint64_t Bump(std::uint64_t block) { return ++versions_[block]; }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> versions_;
};

struct NonCcConfig {
  std::uint32_t block_bytes = 64;
  CacheConfig sw_cache{256 * 1024, 64, 8};
  Tick sw_cache_hit_latency = FromNs(20.0);  // software lookup cost
};

struct NonCcStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_buffered = 0;
  std::uint64_t flushes = 0;
  std::uint64_t invalidates = 0;
  std::uint64_t stale_reads = 0;  // read served from a cached copy older than truth

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Host-side software-coherence port onto a remote expander partition.
class NonCcPort {
 public:
  NonCcPort(Engine* engine, const NonCcConfig& config, HostAdapter* adapter, PbrId remote_node,
            SharedStateOracle* oracle, std::string name);

  // Reads a block: local software cache first, else fetch. `done` receives
  // whether the value served was stale w.r.t. the oracle.
  void Read(std::uint64_t addr, std::function<void(bool stale)> done);

  // Writes locally (write-back). Data reaches the remote node only on Flush.
  void Write(std::uint64_t addr, std::function<void()> done);

  // Pushes one dirty block to the remote node.
  void FlushBlock(std::uint64_t addr, std::function<void()> done);

  // Pushes all dirty blocks; `done` fires when the last write is durable.
  void FlushAll(std::function<void()> done);

  // Drops cached copies so the next read refetches (the software
  // counterpart of a hardware invalidate).
  void InvalidateBlock(std::uint64_t addr);
  void InvalidateAll();

  bool Holds(std::uint64_t addr) const { return cache_.Contains(addr); }
  std::uint64_t CachedVersion(std::uint64_t addr) const;

  const NonCcStats& stats() const { return stats_; }
  MemoryNodeCaps Caps() const;

 private:
  Engine* engine_;
  NonCcConfig config_;
  HostAdapter* adapter_;
  PbrId remote_;
  SharedStateOracle* oracle_;
  std::string name_;
  SetAssocCache cache_;
  std::unordered_map<std::uint64_t, std::uint64_t> fetched_version_;
  NonCcStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_MEM_NONCC_H_
