#include "src/mem/coma.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unifab {
namespace {

int CeilLog2(int v) {
  int levels = 0;
  int span = 1;
  while (span < v) {
    span <<= 1;
    ++levels;
  }
  return levels;
}

}  // namespace

void ComaStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "hits", [this] { return hits; });
  group.AddCounterFn(prefix + "misses", [this] { return misses; });
  group.AddCounterFn(prefix + "replications", [this] { return replications; });
  group.AddCounterFn(prefix + "migrations", [this] { return migrations; });
  group.AddCounterFn(prefix + "invalidations", [this] { return invalidations; });
  group.AddCounterFn(prefix + "injections", [this] { return injections; });
  group.AddCounterFn(prefix + "evictions", [this] { return evictions; });
  group.AddSummaryFn(prefix + "access_latency_ns", [this] { return &access_latency_ns; });
}

ComaSystem::ComaSystem(Engine* engine, const ComaConfig& config)
    : engine_(engine), config_(config) {
  assert(config_.num_nodes >= 1);
  nodes_.resize(static_cast<std::size_t>(config_.num_nodes));
  levels_ = CeilLog2(config_.num_nodes);
  metrics_ = MetricGroup(&engine_->metrics(), "mem/coma");
  stats_.BindTo(metrics_);
}

std::uint64_t ComaSystem::BlockOf(std::uint64_t addr) const {
  return addr / config_.block_bytes * config_.block_bytes;
}

int ComaSystem::TreeDistance(int a, int b) const {
  if (a == b) {
    return 0;
  }
  // Levels climbed until both land in the same subtree, then the same count
  // back down.
  int up = 0;
  int xa = a;
  int xb = b;
  while (xa != xb) {
    xa >>= 1;
    xb >>= 1;
    ++up;
  }
  return 2 * up;
}

int ComaSystem::NearestHolder(int from, std::uint64_t block) const {
  auto it = holders_.find(block);
  if (it == holders_.end()) {
    return -1;
  }
  int best = -1;
  int best_dist = 0;
  for (int node : it->second) {
    if (node == from) {
      continue;
    }
    const int d = TreeDistance(from, node);
    if (best < 0 || d < best_dist) {
      best = node;
      best_dist = d;
    }
  }
  return best;
}

void ComaSystem::SeedBlock(int node, std::uint64_t block) {
  block = BlockOf(block);
  if (nodes_[node].present.count(block) != 0) {
    return;
  }
  InsertCopy(node, block);
}

void ComaSystem::Touch(int node, std::uint64_t block) {
  Node& n = nodes_[node];
  auto it = n.present.find(block);
  assert(it != n.present.end());
  n.lru.erase(it->second);
  n.lru.push_front(block);
  it->second = n.lru.begin();
}

bool ComaSystem::InsertCopy(int node, std::uint64_t block, Tick* extra_latency) {
  Node& n = nodes_[node];
  if (auto it = n.present.find(block); it != n.present.end()) {
    Touch(node, block);
    return true;
  }

  Tick extra = 0;
  if (n.present.size() >= config_.blocks_per_node) {
    // Make room. Eviction ladder, cheapest first:
    //   1. drop a local replica (another node still holds the data);
    //   2. inject the LRU last-copy into a node with free space;
    //   3. drop a replica at the least-occupied other node and inject there;
    //   4. refuse the insert (the incoming block is itself replicated
    //      elsewhere, so serving without caching is safe).
    std::uint64_t replica_victim = 0;
    bool found_replica = false;
    for (auto it = n.lru.rbegin(); it != n.lru.rend(); ++it) {
      if (CopyCount(*it) > 1) {
        replica_victim = *it;
        found_replica = true;
        break;
      }
    }
    if (found_replica) {
      ++stats_.evictions;
      RemoveCopy(node, replica_victim);
    } else {
      // Everything local is a last copy; relocate the LRU one.
      const std::uint64_t victim = n.lru.back();
      int target = -1;
      std::uint64_t best_free = 0;
      for (int i = 0; i < num_nodes(); ++i) {
        if (i == node) {
          continue;
        }
        const std::uint64_t free = config_.blocks_per_node - nodes_[i].present.size();
        if (free > 0 && (target < 0 || free > best_free)) {
          target = i;
          best_free = free;
        }
      }
      if (target < 0) {
        // No free slot anywhere: drop a replica at some other node to make
        // a hole for the injection.
        for (int i = 0; i < num_nodes() && target < 0; ++i) {
          if (i == node) {
            continue;
          }
          for (auto it = nodes_[i].lru.rbegin(); it != nodes_[i].lru.rend(); ++it) {
            if (CopyCount(*it) > 1) {
              ++stats_.evictions;
              RemoveCopy(i, *it);
              target = i;
              break;
            }
          }
        }
      }
      if (target < 0) {
        // The fabric is completely full of last copies. The incoming block
        // must itself exist elsewhere (we are inserting a *copy*), so the
        // only safe move is to not cache it here.
        if (extra_latency != nullptr) {
          *extra_latency += extra;
        }
        return false;
      }
      ++stats_.evictions;
      ++stats_.injections;
      RemoveCopy(node, victim);
      extra += config_.transfer_latency +
               static_cast<Tick>(TreeDistance(node, target)) * config_.directory_hop_latency;
      Node& t = nodes_[target];
      t.lru.push_front(victim);
      t.present[victim] = t.lru.begin();
      holders_[victim].push_back(target);
    }
  }

  n.lru.push_front(block);
  n.present[block] = n.lru.begin();
  holders_[block].push_back(node);
  if (extra_latency != nullptr) {
    *extra_latency += extra;
  }
  return true;
}

void ComaSystem::RemoveCopy(int node, std::uint64_t block) {
  Node& n = nodes_[node];
  auto it = n.present.find(block);
  if (it == n.present.end()) {
    return;
  }
  n.lru.erase(it->second);
  n.present.erase(it);
  auto& h = holders_[block];
  h.erase(std::remove(h.begin(), h.end(), node), h.end());
  if (h.empty()) {
    holders_.erase(block);
  }
}

void ComaSystem::Finish(Tick start, Tick latency, std::function<void()> done) {
  engine_->ScheduleAt(start + latency, [this, start, done = std::move(done)] {
    stats_.access_latency_ns.Add(ToNs(engine_->Now() - start));
    if (done) {
      done();
    }
  });
}

void ComaSystem::Read(int node, std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t block = BlockOf(addr);
  const Tick start = engine_->Now();

  if (nodes_[node].present.count(block) != 0) {
    ++stats_.hits;
    Touch(node, block);
    Finish(start, config_.local_hit_latency, std::move(done));
    return;
  }

  ++stats_.misses;
  const int holder = NearestHolder(node, block);
  assert(holder >= 0 && "read of a block never seeded");
  // Directory walk to the lowest common ancestor and down, then the block
  // transfer, then local insertion (which may evict/inject). A refused
  // insert just means the read was served remotely without caching.
  Tick latency = config_.local_hit_latency + config_.transfer_latency +
                 static_cast<Tick>(TreeDistance(node, holder)) * config_.directory_hop_latency;
  if (InsertCopy(node, block, &latency)) {
    ++stats_.replications;  // reads replicate: the holder keeps its copy
  }
  Finish(start, latency, std::move(done));
}

void ComaSystem::Write(int node, std::uint64_t addr, std::function<void()> done) {
  const std::uint64_t block = BlockOf(addr);
  const Tick start = engine_->Now();

  // A write must end with exactly one copy of the block — at the writer
  // when the attraction memory can take it, otherwise at the nearest
  // holder (update-in-place fallback when the fabric is full of last
  // copies).
  Tick latency = config_.local_hit_latency;
  const bool had_local = nodes_[node].present.count(block) != 0;
  bool local_after = had_local;

  if (!had_local) {
    const int holder = NearestHolder(node, block);
    assert(holder >= 0 && "write of a block never seeded");
    latency += config_.transfer_latency +
               static_cast<Tick>(TreeDistance(node, holder)) * config_.directory_hop_latency;
    // Acquire a local copy BEFORE invalidating others so the data can never
    // end up with zero holders.
    local_after = InsertCopy(node, block, &latency);
    if (local_after) {
      ++stats_.migrations;  // writes migrate: the source gives the block up
    }
    ++stats_.misses;
  } else {
    Touch(node, block);
    ++stats_.hits;
  }

  // Invalidate every other replica (directory fan-out; pay the farthest
  // hop). If we could not take a local copy, the nearest holder keeps the
  // single authoritative copy.
  int keep = local_after ? node : NearestHolder(node, block);
  int max_dist = 0;
  auto it = holders_.find(block);
  if (it != holders_.end()) {
    std::vector<int> others;
    for (int h : it->second) {
      if (h != keep && h != node) {
        others.push_back(h);
        max_dist = std::max(max_dist, TreeDistance(node, h));
      }
    }
    for (int h : others) {
      ++stats_.invalidations;
      RemoveCopy(h, block);
    }
  }
  latency += static_cast<Tick>(max_dist) * config_.directory_hop_latency;
  Finish(start, latency, std::move(done));
}

bool ComaSystem::NodeHolds(int node, std::uint64_t addr) const {
  return nodes_[node].present.count(BlockOf(addr)) != 0;
}

int ComaSystem::CopyCount(std::uint64_t addr) const {
  auto it = holders_.find(BlockOf(addr));
  return it == holders_.end() ? 0 : static_cast<int>(it->second.size());
}

std::uint64_t ComaSystem::NodeOccupancy(int node) const { return nodes_[node].present.size(); }

MemoryNodeCaps ComaSystem::Caps() const {
  MemoryNodeCaps caps;
  caps.type = MemoryNodeType::kComa;
  caps.node = kInvalidPbrId;
  caps.capacity_bytes = static_cast<std::uint64_t>(config_.num_nodes) * config_.blocks_per_node *
                        config_.block_bytes;
  caps.hardware_coherent = true;
  caps.has_processing = true;
  caps.supports_sharing = true;
  caps.typical_read_latency = config_.local_hit_latency;
  caps.typical_write_latency = config_.local_hit_latency;
  return caps;
}

}  // namespace unifab
