// Host memory hierarchy: the synchronous load/store path of one core.
//
// Models paper §3 Difference #1: loads/stores are generated transparently by
// the cache hierarchy (miss from LLC -> memory read; victim flush -> memory
// write), the pipeline stalls for the duration, and the fabric throughput a
// core can drive is bounded by its outstanding-miss parallelism (MSHRs).
// Local DRAM and fabric-attached memory sit behind the same interface, which
// is exactly what makes a CXL memory expander "transparent" to software.

#ifndef SRC_MEM_HIERARCHY_H_
#define SRC_MEM_HIERARCHY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/fabric/adapter.h"
#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// Where a physical address range is backed.
struct AddressRange {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  DramDevice* local = nullptr;      // set for host-local DIMMs
  PbrId remote = kInvalidPbrId;     // set for fabric-attached memory
  bool IsLocal() const { return local != nullptr; }
  bool Contains(std::uint64_t addr) const { return addr >= base && addr < base + size; }
};

struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 64, 8};
  CacheConfig l2{1 * 1024 * 1024, 64, 16};
  CacheConfig llc{32 * 1024 * 1024, 64, 16};
  bool has_llc = false;

  // Latency to *return* from a hit at each level (cumulative path pieces).
  Tick l1_latency = FromNs(5.4);
  Tick l2_latency = FromNs(8.2);    // added on top of the L1 probe
  Tick llc_latency = FromNs(20.0);  // added on top of L2
  Tick mem_ctrl_latency = FromNs(38.0);  // controller/on-chip network to DRAM

  // Minimum gap between two accesses *served by* the same level (bandwidth).
  Tick l1_interval = FromNs(2.8);
  Tick l2_interval = FromNs(6.9);
  Tick llc_interval = FromNs(8.0);

  // Outstanding-miss limit: how many memory-level accesses can be in flight.
  std::uint32_t mshrs = 4;

  // Simple stride prefetcher (DP#1: HW-assisted prefetching hides fabric
  // latency). Prefetches fill the L2.
  bool prefetch_enabled = false;
  int prefetch_degree = 2;

  std::uint32_t line_bytes = 64;
};

struct HierarchyStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t local_mem_accesses = 0;
  std::uint64_t remote_mem_accesses = 0;
  std::uint64_t writebacks_to_memory = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_hits = 0;
  Summary access_latency_ns;  // demand accesses, issue to completion

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// One core's cache/memory stack. Multiple hierarchies may share a DramDevice
// (local socket) and a HostAdapter (the host's FHA).
class MemoryHierarchy {
 public:
  MemoryHierarchy(Engine* engine, const HierarchyConfig& config, std::string name);

  // Non-movable: components capture `this` in scheduled callbacks.
  MemoryHierarchy(const MemoryHierarchy&) = delete;
  MemoryHierarchy& operator=(const MemoryHierarchy&) = delete;

  // Address-space wiring.
  void MapLocal(std::uint64_t base, std::uint64_t size, DramDevice* dram);
  void MapRemote(std::uint64_t base, std::uint64_t size, PbrId node);
  void SetFabricAdapter(HostAdapter* adapter) { adapter_ = adapter; }

  // Issues one cacheline access. `done` fires when the load would retire /
  // the store is globally visible.
  void Access(std::uint64_t addr, bool is_write, std::function<void()> done);

  // Splits an arbitrary [addr, addr+bytes) range into line accesses and
  // fires `done` when all complete.
  void AccessRange(std::uint64_t addr, std::uint64_t bytes, bool is_write,
                   std::function<void()> done);

  // Invalidates the line everywhere (coherence protocols / software flush).
  // Returns true if any level held the line; `was_dirty` reports whether a
  // dirty copy was discarded.
  bool InvalidateLine(std::uint64_t addr, bool* was_dirty = nullptr);

  // Writes a dirty line back to its backing store (if dirty) and cleans it.
  // `done` fires when the writeback is durable.
  void FlushLine(std::uint64_t addr, std::function<void()> done);

  bool LinePresent(std::uint64_t addr) const;

  const HierarchyConfig& config() const { return config_; }
  const HierarchyStats& stats() const { return stats_; }
  const SetAssocCache& l1() const { return l1_; }
  const SetAssocCache& l2() const { return l2_; }
  const std::string& name() const { return name_; }
  std::uint32_t MshrsInUse() const { return mshrs_in_use_; }

 private:
  struct MissContext {
    std::uint64_t line_addr;
    bool is_write;
    Tick issued_at;
    std::function<void()> done;
    bool is_prefetch;
  };

  const AddressRange* RangeFor(std::uint64_t addr) const;
  void StartMiss(MissContext ctx, Tick path_latency);
  void IssueMemoryAccess(MissContext ctx, Tick path_latency);
  void FinishMiss(const MissContext& ctx);
  void FillLine(std::uint64_t line_addr, bool dirty);
  void WritebackVictim(std::uint64_t line_addr);
  void MaybePrefetch(std::uint64_t miss_line);
  Tick ReserveLevel(Tick& next_free, Tick interval);

  Engine* engine_;
  HierarchyConfig config_;
  std::string name_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache llc_;
  std::vector<AddressRange> ranges_;
  HostAdapter* adapter_ = nullptr;

  Tick l1_next_free_ = 0;
  Tick l2_next_free_ = 0;
  Tick llc_next_free_ = 0;

  std::uint32_t mshrs_in_use_ = 0;
  std::deque<std::pair<MissContext, Tick>> waiting_misses_;

  // Stride prefetcher state.
  std::uint64_t last_miss_line_ = 0;
  std::int64_t last_stride_ = 0;
  std::unordered_set<std::uint64_t> prefetched_lines_;

  HierarchyStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_MEM_HIERARCHY_H_
