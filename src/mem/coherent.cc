#include "src/mem/coherent.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unifab {

// --------------------------- stats bindings -------------------------------

void CoherentDirStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "gets", [this] { return gets; });
  group.AddCounterFn(prefix + "getm", [this] { return getm; });
  group.AddCounterFn(prefix + "putm", [this] { return putm; });
  group.AddCounterFn(prefix + "puts", [this] { return puts; });
  group.AddCounterFn(prefix + "recalls", [this] { return recalls; });
  group.AddCounterFn(prefix + "invalidations", [this] { return invalidations; });
  group.AddCounterFn(prefix + "queued_requests", [this] { return queued_requests; });
  group.AddCounterFn(prefix + "back_invals_sent", [this] { return back_invals_sent; });
  group.AddCounterFn(prefix + "back_inval_acks", [this] { return back_inval_acks; });
  group.AddCounterFn(prefix + "back_inval_acks_stale", [this] { return back_inval_acks_stale; });
  group.AddCounterFn(prefix + "back_inval_timeouts", [this] { return back_inval_timeouts; });
  group.AddCounterFn(prefix + "sharer_recalls", [this] { return sharer_recalls; });
  group.AddCounterFn(prefix + "filter_evictions", [this] { return filter_evictions; });
  group.AddCounterFn(prefix + "filter_parked", [this] { return filter_parked; });
  group.AddCounterFn(prefix + "nacks_sent", [this] { return nacks_sent; });
  group.AddCounterFn(prefix + "txn_aborts", [this] { return txn_aborts; });
  group.AddCounterFn(prefix + "stale_acks", [this] { return stale_acks; });
  group.AddCounterFn(prefix + "implicit_evict_acks", [this] { return implicit_evict_acks; });
}

void CoherentPortStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "read_hits", [this] { return read_hits; });
  group.AddCounterFn(prefix + "read_misses", [this] { return read_misses; });
  group.AddCounterFn(prefix + "write_hits", [this] { return write_hits; });
  group.AddCounterFn(prefix + "upgrades", [this] { return upgrades; });
  group.AddCounterFn(prefix + "write_misses", [this] { return write_misses; });
  group.AddCounterFn(prefix + "invalidations_received",
                     [this] { return invalidations_received; });
  group.AddCounterFn(prefix + "recalls_received", [this] { return recalls_received; });
  group.AddCounterFn(prefix + "back_invals_received", [this] { return back_invals_received; });
  group.AddCounterFn(prefix + "nacks_received", [this] { return nacks_received; });
  group.AddCounterFn(prefix + "txn_timeouts", [this] { return txn_timeouts; });
  group.AddCounterFn(prefix + "txn_failures", [this] { return txn_failures; });
  group.AddSummaryFn(prefix + "miss_latency_ns", [this] { return &miss_latency_ns; });
}

// ------------------------------ CoherentPort ------------------------------

CoherentPort::CoherentPort(Engine* engine, const CoherentConfig& config,
                           MessageDispatcher* dispatcher, CoherentDirectory* home,
                           std::string name)
    : engine_(engine),
      config_(config),
      dispatcher_(dispatcher),
      home_(home),
      name_(std::move(name)),
      cache_(config.port_cache) {
  dispatcher_->RegisterService(kSvcCoherent,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  host_index_ = home_->RegisterPort(this);
  metrics_ = MetricGroup(&engine_->metrics(), "mem/coherent/port/" + name_);
  stats_.BindTo(metrics_);
  cache_.stats().BindTo(metrics_, "cache/");
}

void CoherentPort::SendToHome(CohOp op, std::uint64_t block, bool with_data) {
  auto msg = std::make_shared<CohMsg>();
  msg->op = op;
  msg->block = block;
  msg->requester = host_index_;
  const std::uint32_t bytes = config_.ctrl_msg_bytes + (with_data ? config_.block_bytes : 0);
  dispatcher_->Send(home_->fabric_id(), kSvcCoherent, static_cast<std::uint64_t>(op), bytes,
                    std::move(msg), Channel::kCache);
}

void CoherentPort::Read(std::uint64_t addr, std::function<void(bool)> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  if (cache_.Access(block, /*is_write=*/false)) {
    ++stats_.read_hits;
    engine_->Schedule(config_.port_hit_latency, [done = std::move(done)] {
      if (done) {
        done(true);
      }
    });
    return;
  }
  ++stats_.read_misses;
  StartMiss(block, /*wants_m=*/false, std::move(done));
}

void CoherentPort::Write(std::uint64_t addr, std::function<void(bool)> done) {
  const std::uint64_t block = cache_.LineBase(addr);
  if (cache_.Contains(block)) {
    if (cache_.IsDirty(block)) {
      cache_.Access(block, /*is_write=*/true);
      ++stats_.write_hits;
      engine_->Schedule(config_.port_hit_latency, [done = std::move(done)] {
        if (done) {
          done(true);
        }
      });
      return;
    }
    ++stats_.upgrades;
    StartMiss(block, /*wants_m=*/true, std::move(done));
    return;
  }
  ++stats_.write_misses;
  StartMiss(block, /*wants_m=*/true, std::move(done));
}

void CoherentPort::StartMiss(std::uint64_t block, bool wants_m, std::function<void(bool)> done) {
  auto [it, inserted] = pending_.try_emplace(block);
  PendingTxn& txn = it->second;
  txn.waiters.push_back(std::move(done));
  if (!inserted) {
    txn.wants_m = txn.wants_m || wants_m;
    return;
  }
  txn.wants_m = wants_m;
  txn.started_at = engine_->Now();
  if (config_.txn_deadline > 0) {
    txn.deadline =
        engine_->Schedule(config_.txn_deadline, [this, block] { OnTxnTimeout(block); });
  }
  SendToHome(wants_m ? CohOp::kGetM : CohOp::kGetS, block, /*with_data=*/false);
}

void CoherentPort::HandleMessage(const FabricMessage& msg) {
  const auto coh = std::static_pointer_cast<CohMsg>(msg.body);
  assert(coh != nullptr);
  switch (coh->op) {
    case CohOp::kData:
    case CohOp::kDataM:
      OnGrant(*coh);
      break;
    case CohOp::kInv:
      OnInv(*coh);
      break;
    case CohOp::kRecall:
      OnRecall(*coh);
      break;
    case CohOp::kBackInval:
      OnBackInval(*coh);
      break;
    case CohOp::kNack:
      OnNack(*coh);
      break;
    default:
      assert(false && "unexpected message at coherent port");
  }
}

void CoherentPort::OnGrant(const CohMsg& msg) {
  auto it = pending_.find(msg.block);
  if (it == pending_.end()) {
    return;  // stale grant (e.g. arrived after our deadline failed the txn)
  }
  PendingTxn txn = std::move(it->second);
  pending_.erase(it);

  const bool exclusive = msg.op == CohOp::kDataM;
  if (txn.wants_m && !exclusive) {
    // Escalated to a write after the GetS left; upgrade now. The original
    // deadline stays armed so the whole transaction is bounded.
    auto [it2, inserted] = pending_.try_emplace(msg.block);
    (void)inserted;
    PendingTxn& up = it2->second;
    up.wants_m = true;
    up.started_at = txn.started_at;
    up.waiters = std::move(txn.waiters);
    up.deadline = txn.deadline;
    SendToHome(CohOp::kGetM, msg.block, /*with_data=*/false);
    return;
  }

  if (txn.deadline != kInvalidEventId) {
    engine_->Cancel(txn.deadline);
  }
  EvictIfNeeded(msg.block, exclusive);
  stats_.miss_latency_ns.Add(ToNs(engine_->Now() - txn.started_at));
  for (auto& w : txn.waiters) {
    if (w) {
      w(true);
    }
  }
}

void CoherentPort::EvictIfNeeded(std::uint64_t block, bool dirty) {
  if (auto ev = cache_.Insert(block, dirty); ev.has_value()) {
    if (ev->dirty) {
      SendToHome(CohOp::kPutM, ev->line_addr, /*with_data=*/true);
    } else {
      SendToHome(CohOp::kPutS, ev->line_addr, /*with_data=*/false);
    }
  }
}

void CoherentPort::OnInv(const CohMsg& msg) {
  ++stats_.invalidations_received;
  cache_.Invalidate(msg.block);
  auto resp = std::make_shared<CohMsg>();
  resp->op = CohOp::kInvAck;
  resp->block = msg.block;
  resp->requester = host_index_;
  dispatcher_->Send(home_->fabric_id(), kSvcCoherent,
                    static_cast<std::uint64_t>(CohOp::kInvAck), config_.ctrl_msg_bytes,
                    std::move(resp), Channel::kCache);
}

void CoherentPort::OnRecall(const CohMsg& msg) {
  ++stats_.recalls_received;
  auto resp = std::make_shared<CohMsg>();
  resp->op = CohOp::kRecallResp;
  resp->block = msg.block;
  resp->requester = host_index_;
  bool dirty = false;
  resp->was_present = cache_.Contains(msg.block);
  if (resp->was_present) {
    dirty = cache_.IsDirty(msg.block);
    if (msg.downgrade) {
      cache_.CleanLine(msg.block);
    } else {
      cache_.Invalidate(msg.block);
    }
  }
  resp->was_dirty = dirty;
  const std::uint32_t bytes = config_.ctrl_msg_bytes + (dirty ? config_.block_bytes : 0);
  dispatcher_->Send(home_->fabric_id(), kSvcCoherent,
                    static_cast<std::uint64_t>(CohOp::kRecallResp), bytes, std::move(resp),
                    Channel::kCache);
}

void CoherentPort::OnBackInval(const CohMsg& msg) {
  ++stats_.back_invals_received;
  auto resp = std::make_shared<CohMsg>();
  resp->op = CohOp::kBackInvalAck;
  resp->block = msg.block;
  resp->requester = host_index_;
  bool dirty = false;
  resp->was_present = cache_.Invalidate(msg.block, &dirty);
  resp->was_dirty = dirty;
  const std::uint32_t bytes = config_.ctrl_msg_bytes + (dirty ? config_.block_bytes : 0);
  dispatcher_->Send(home_->fabric_id(), kSvcCoherent,
                    static_cast<std::uint64_t>(CohOp::kBackInvalAck), bytes, std::move(resp),
                    Channel::kCache);
}

void CoherentPort::OnNack(const CohMsg& msg) {
  ++stats_.nacks_received;
  FailTxn(msg.block, /*drop_line=*/true);
}

void CoherentPort::OnTxnTimeout(std::uint64_t block) {
  ++stats_.txn_timeouts;
  FailTxn(block, /*drop_line=*/true);
}

void CoherentPort::FailTxn(std::uint64_t block, bool drop_line) {
  auto it = pending_.find(block);
  if (it == pending_.end()) {
    return;
  }
  PendingTxn txn = std::move(it->second);
  pending_.erase(it);
  if (txn.deadline != kInvalidEventId) {
    engine_->Cancel(txn.deadline);
  }
  if (drop_line) {
    // Conservatively drop any local copy: after a failed handshake we no
    // longer know whether the directory still counts us, and a stale line
    // must never satisfy a later read.
    cache_.Invalidate(block);
  }
  ++stats_.txn_failures;
  for (auto& w : txn.waiters) {
    if (w) {
      w(false);
    }
  }
}

// ---------------------------- CoherentDirectory ---------------------------

CoherentDirectory::CoherentDirectory(Engine* engine, const CoherentConfig& config,
                                     MessageDispatcher* dispatcher, MemoryExpander* expander,
                                     std::string name)
    : engine_(engine),
      config_(config),
      dispatcher_(dispatcher),
      expander_(expander),
      name_(std::move(name)) {
  assert(config_.max_tracked_blocks > 0 && config_.max_sharers > 0);
  dispatcher_->RegisterService(kSvcCoherent,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(), "mem/coherent/dir/" + name_);
  stats_.BindTo(metrics_);
  audit_ = AuditScope(&engine_->audit(), "mem/coherent");
  // Every back-invalidation we ever sent is either acknowledged, written off
  // by a deadline, or still outstanding in some entry's bi_waiting set. All
  // state here is directory-local, so the check is shard-safe.
  audit_.AddCheck("back_inval_acks_conserved", [this]() -> std::string {
    const std::uint64_t accounted =
        stats_.back_inval_acks + stats_.back_inval_timeouts + BiOutstanding();
    if (stats_.back_invals_sent != accounted) {
      return "dir " + name_ + ": back_invals_sent=" + std::to_string(stats_.back_invals_sent) +
             " != acks+timeouts+outstanding=" + std::to_string(accounted);
    }
    return "";
  });
  // The whole point of the snoop filter: tracking is bounded.
  audit_.AddCheck("filter_bounded", [this]() -> std::string {
    if (blocks_.size() > config_.max_tracked_blocks) {
      return "dir " + name_ + " tracks " + std::to_string(blocks_.size()) + " blocks > cap " +
             std::to_string(config_.max_tracked_blocks);
    }
    return "";
  });
}

int CoherentDirectory::RegisterPort(CoherentPort* port) {
  ports_.push_back(port);
  return static_cast<int>(ports_.size()) - 1;
}

std::uint64_t CoherentDirectory::BiOutstanding() const {
  std::uint64_t n = 0;
  for (const auto& [block, e] : blocks_) {
    n += e.bi_waiting.size();
  }
  return n;
}

void CoherentDirectory::SendToPort(int host, CohOp op, std::uint64_t block, bool with_data,
                                   bool downgrade) {
  assert(host >= 0 && host < static_cast<int>(ports_.size()));
  auto msg = std::make_shared<CohMsg>();
  msg->op = op;
  msg->block = block;
  msg->downgrade = downgrade;
  const std::uint32_t bytes = config_.ctrl_msg_bytes + (with_data ? config_.block_bytes : 0);
  dispatcher_->Send(ports_[host]->fabric_id(), kSvcCoherent, static_cast<std::uint64_t>(op),
                    bytes, std::move(msg), Channel::kCache);
}

void CoherentDirectory::SendBackInval(Entry& e, std::uint64_t block, int host) {
  ++stats_.back_invals_sent;
  e.bi_waiting.insert(host);
  SendToPort(host, CohOp::kBackInval, block, /*with_data=*/false);
}

void CoherentDirectory::HandleMessage(const FabricMessage& msg) {
  const auto coh = std::static_pointer_cast<CohMsg>(msg.body);
  assert(coh != nullptr);
  engine_->Schedule(config_.directory_latency, [this, m = *coh] { Process(m); });
}

void CoherentDirectory::ArmDeadline(Entry& e, std::uint64_t block) {
  if (config_.ack_deadline > 0) {
    e.deadline = engine_->Schedule(config_.ack_deadline, [this, block] { OnDirTimeout(block); });
  }
}

void CoherentDirectory::RemoveSharer(Entry& e, int host) {
  e.sharers.erase(std::remove(e.sharers.begin(), e.sharers.end(), host), e.sharers.end());
  if (e.owner == host) {
    e.owner = -1;
  }
}

void CoherentDirectory::Process(const CohMsg& msg) {
  switch (msg.op) {
    case CohOp::kGetS:
    case CohOp::kGetM:
      Admit(msg);
      return;
    default:
      break;
  }

  auto it = blocks_.find(msg.block);
  if (it == blocks_.end()) {
    // A response for a block the filter already reclaimed (e.g. a Put* that
    // crossed a completed back-invalidation). Nothing to update: the port
    // already dropped the line, and the writeback data is stale by protocol
    // (the filter eviction collected the authoritative copy).
    ++stats_.stale_acks;
    return;
  }
  Entry& e = it->second;

  switch (msg.op) {
    case CohOp::kPutM: {
      ++stats_.putm;
      if (e.busy && e.recall_from == msg.requester && e.state == BlockState::kModified &&
          e.owner == msg.requester) {
        // Eviction crossed our Recall; treat it as the response.
        ++stats_.implicit_evict_acks;
        e.recall_from = -1;
        expander_->WindowAccess(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
        e.owner = -1;
        Grant(msg.block, e.active.requester, /*exclusive=*/e.active.op == CohOp::kGetM);
        return;
      }
      if (e.bi_waiting.count(msg.requester) != 0) {
        // Dirty eviction crossed a back-invalidation; writeback satisfies it.
        ++stats_.implicit_evict_acks;
        ++stats_.back_inval_acks;
        e.bi_waiting.erase(msg.requester);
        expander_->WindowAccess(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
        BiSatisfied(msg.block, msg.requester);
        return;
      }
      RemoveSharer(e, msg.requester);
      if (e.state == BlockState::kModified && e.owner < 0) {
        e.state = e.sharers.empty() ? BlockState::kUncached : BlockState::kShared;
      }
      if (e.state == BlockState::kShared && e.sharers.empty()) {
        e.state = BlockState::kUncached;
      }
      expander_->WindowAccess(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
      MaybeReclaim(msg.block);
      return;
    }

    case CohOp::kPutS: {
      ++stats_.puts;
      if (e.busy && e.inv_waiting.erase(msg.requester) != 0) {
        // Clean eviction crossed an Inv for the active GetM: counts as the
        // ack (the port's unconditional InvAck is later discarded as stale).
        ++stats_.implicit_evict_acks;
        RemoveSharer(e, msg.requester);
        if (e.inv_waiting.empty()) {
          Grant(msg.block, e.active.requester, /*exclusive=*/true);
        }
        return;
      }
      if (e.bi_waiting.count(msg.requester) != 0) {
        ++stats_.implicit_evict_acks;
        ++stats_.back_inval_acks;
        e.bi_waiting.erase(msg.requester);
        BiSatisfied(msg.block, msg.requester);
        return;
      }
      RemoveSharer(e, msg.requester);
      if (e.state == BlockState::kShared && e.sharers.empty()) {
        e.state = BlockState::kUncached;
      }
      MaybeReclaim(msg.block);
      return;
    }

    case CohOp::kInvAck: {
      if (!e.busy || e.inv_waiting.erase(msg.requester) == 0) {
        ++stats_.stale_acks;
        return;
      }
      RemoveSharer(e, msg.requester);
      if (e.inv_waiting.empty()) {
        Grant(msg.block, e.active.requester, /*exclusive=*/true);
      }
      return;
    }

    case CohOp::kRecallResp: {
      if (!e.busy || e.recall_from != msg.requester) {
        ++stats_.stale_acks;
        return;
      }
      e.recall_from = -1;
      const CohMsg active = e.active;
      if (msg.was_dirty) {
        expander_->WindowAccess(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
      }
      if (active.op == CohOp::kGetS) {
        if (msg.was_present && e.owner >= 0) {
          e.sharers.push_back(e.owner);  // old owner keeps an S copy
        }
        e.owner = -1;
        Grant(msg.block, active.requester, /*exclusive=*/false);
      } else {
        if (e.owner >= 0) {
          RemoveSharer(e, e.owner);
        }
        e.owner = -1;
        Grant(msg.block, active.requester, /*exclusive=*/true);
      }
      return;
    }

    case CohOp::kBackInvalAck: {
      if (e.bi_waiting.erase(msg.requester) == 0) {
        ++stats_.back_inval_acks_stale;
        return;
      }
      ++stats_.back_inval_acks;
      if (msg.was_dirty) {
        expander_->WindowAccess(msg.block, config_.block_bytes, /*is_write=*/true, nullptr);
      }
      BiSatisfied(msg.block, msg.requester);
      return;
    }

    default:
      assert(false && "unexpected message at coherent directory");
  }
}

void CoherentDirectory::Admit(const CohMsg& msg) {
  auto it = blocks_.find(msg.block);
  if (it == blocks_.end()) {
    if (blocks_.size() >= config_.max_tracked_blocks) {
      ++stats_.filter_parked;
      filter_wait_.push_back(msg);
      StartFilterEviction();
      return;
    }
    it = blocks_.emplace(msg.block, Entry{}).first;
  }
  Entry& e = it->second;
  e.lru = ++lru_clock_;
  if (e.busy || e.evicting) {
    ++stats_.queued_requests;
    e.pending.push_back(msg);
    return;
  }
  StartTxn(e, msg.block, msg);
}

void CoherentDirectory::StartTxn(Entry& e, std::uint64_t block, const CohMsg& msg) {
  e.busy = true;
  e.active = msg;
  ArmDeadline(e, block);
  if (msg.op == CohOp::kGetS) {
    ++stats_.gets;
    ServeGetS(e, block, msg);
  } else {
    ++stats_.getm;
    ServeGetM(e, block, msg);
  }
}

void CoherentDirectory::ServeGetS(Entry& e, std::uint64_t block, const CohMsg& msg) {
  if (e.state == BlockState::kModified) {
    if (e.owner == msg.requester) {
      // Re-request after a lost grant: the requester already owns it.
      Grant(block, msg.requester, /*exclusive=*/true);
      return;
    }
    ++stats_.recalls;
    e.recall_from = e.owner;
    SendToPort(e.owner, CohOp::kRecall, block, /*with_data=*/false, /*downgrade=*/true);
    return;
  }
  const bool already_sharer =
      std::find(e.sharers.begin(), e.sharers.end(), msg.requester) != e.sharers.end();
  if (!already_sharer && e.sharers.size() >= config_.max_sharers) {
    // Bounded sharer vector: recall the oldest sharer before admitting a
    // new one (CXL-style snoop-filter overflow).
    ++stats_.sharer_recalls;
    SendBackInval(e, block, e.sharers.front());
    return;  // completion continues at kBackInvalAck -> BiSatisfied
  }
  Grant(block, msg.requester, /*exclusive=*/false);
}

void CoherentDirectory::ServeGetM(Entry& e, std::uint64_t block, const CohMsg& msg) {
  switch (e.state) {
    case BlockState::kUncached:
      Grant(block, msg.requester, /*exclusive=*/true);
      return;
    case BlockState::kShared: {
      for (int s : e.sharers) {
        if (s != msg.requester) {
          ++stats_.invalidations;
          SendToPort(s, CohOp::kInv, block, /*with_data=*/false);
          e.inv_waiting.insert(s);
        }
      }
      if (e.inv_waiting.empty()) {
        Grant(block, msg.requester, /*exclusive=*/true);
      }
      return;
    }
    case BlockState::kModified:
      if (e.owner == msg.requester) {
        Grant(block, msg.requester, /*exclusive=*/true);
        return;
      }
      ++stats_.recalls;
      e.recall_from = e.owner;
      SendToPort(e.owner, CohOp::kRecall, block, /*with_data=*/false, /*downgrade=*/false);
      return;
  }
}

void CoherentDirectory::Grant(std::uint64_t block, int requester, bool exclusive) {
  expander_->WindowAccess(block, config_.block_bytes, /*is_write=*/false,
                          [this, block, requester, exclusive] {
                            auto it = blocks_.find(block);
                            assert(it != blocks_.end());
                            Entry& e = it->second;
                            if (exclusive) {
                              e.state = BlockState::kModified;
                              e.sharers.clear();
                              e.owner = requester;
                              SendToPort(requester, CohOp::kDataM, block, /*with_data=*/true);
                            } else {
                              e.state = BlockState::kShared;
                              if (std::find(e.sharers.begin(), e.sharers.end(), requester) ==
                                  e.sharers.end()) {
                                e.sharers.push_back(requester);
                              }
                              SendToPort(requester, CohOp::kData, block, /*with_data=*/true);
                            }
                            FinishTxn(e, block);
                          });
}

void CoherentDirectory::FinishTxn(Entry& e, std::uint64_t block) {
  e.busy = false;
  e.inv_waiting.clear();
  e.recall_from = -1;
  if (e.deadline != kInvalidEventId) {
    engine_->Cancel(e.deadline);
    e.deadline = kInvalidEventId;
  }
  if (!e.pending.empty()) {
    const CohMsg next = e.pending.front();
    e.pending.pop_front();
    engine_->Schedule(config_.directory_latency, [this, next] { Process(next); });
    return;
  }
  MaybeReclaim(block);
}

void CoherentDirectory::MaybeReclaim(std::uint64_t block) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return;
  }
  const Entry& e = it->second;
  // Unlike the CC-NUMA directory, idle-uncached entries are erased so the
  // bounded filter reuses the slot.
  if (!e.busy && !e.evicting && e.pending.empty() && e.bi_waiting.empty() &&
      e.state == BlockState::kUncached && e.sharers.empty() && e.owner < 0) {
    blocks_.erase(it);
    PumpFilterWait();
  }
}

void CoherentDirectory::BiSatisfied(std::uint64_t block, int responder) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return;
  }
  Entry& e = it->second;
  RemoveSharer(e, responder);
  if (!e.bi_waiting.empty()) {
    return;
  }
  if (e.evicting) {
    FinishEviction(block);
    return;
  }
  if (e.busy) {
    // Sharer-overflow recall inside a GetS: the slot is free now.
    Grant(block, e.active.requester, /*exclusive=*/false);
  }
}

void CoherentDirectory::StartFilterEviction() {
  if (evict_in_progress_) {
    return;
  }
  // Deterministic victim scan: least-recently-used idle entry (ordered map
  // breaks lru ties by block address, though lru values are unique anyway).
  auto victim = blocks_.end();
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    const Entry& e = it->second;
    if (e.busy || e.evicting || !e.pending.empty() || !e.bi_waiting.empty()) {
      continue;
    }
    if (victim == blocks_.end() || it->second.lru < victim->second.lru) {
      victim = it;
    }
  }
  if (victim == blocks_.end()) {
    return;  // everything in flight; retried when a transaction finishes
  }
  const std::uint64_t block = victim->first;
  Entry& e = victim->second;
  if (e.sharers.empty() && e.owner < 0) {
    blocks_.erase(victim);
    ++stats_.filter_evictions;
    PumpFilterWait();
    return;
  }
  e.evicting = true;
  evict_in_progress_ = true;
  ArmDeadline(e, block);
  if (e.owner >= 0) {
    SendBackInval(e, block, e.owner);
  }
  for (int s : e.sharers) {
    if (s != e.owner) {
      SendBackInval(e, block, s);
    }
  }
}

void CoherentDirectory::FinishEviction(std::uint64_t block) {
  auto it = blocks_.find(block);
  assert(it != blocks_.end());
  Entry& e = it->second;
  e.evicting = false;
  evict_in_progress_ = false;
  if (e.deadline != kInvalidEventId) {
    engine_->Cancel(e.deadline);
    e.deadline = kInvalidEventId;
  }
  e.state = BlockState::kUncached;
  ++stats_.filter_evictions;
  if (e.pending.empty()) {
    blocks_.erase(it);
  } else {
    // New requests arrived for the block mid-eviction; keep the (now empty)
    // entry and serve them.
    const CohMsg next = e.pending.front();
    e.pending.pop_front();
    engine_->Schedule(config_.directory_latency, [this, next] { Process(next); });
  }
  PumpFilterWait();
}

void CoherentDirectory::PumpFilterWait() {
  if (!filter_wait_.empty() && blocks_.size() < config_.max_tracked_blocks) {
    const CohMsg next = filter_wait_.front();
    filter_wait_.pop_front();
    engine_->Schedule(config_.directory_latency, [this, next] { Process(next); });
  }
  if (!filter_wait_.empty()) {
    StartFilterEviction();
  }
}

void CoherentDirectory::OnDirTimeout(std::uint64_t block) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return;
  }
  Entry& e = it->second;
  e.deadline = kInvalidEventId;
  // Ports that never answered stay tracked as sharers: we cannot prove they
  // dropped the line, and granting anyway could expose a stale copy. They
  // are re-invalidated if they come back; if they are dead, requests for
  // this block keep failing terminally — the safe outcome.
  stats_.back_inval_timeouts += e.bi_waiting.size();
  e.bi_waiting.clear();
  e.inv_waiting.clear();
  e.recall_from = -1;
  if (e.evicting) {
    e.evicting = false;
    evict_in_progress_ = false;
    // The slot could not be freed; fail every parked request terminally
    // rather than letting it wait forever.
    for (const CohMsg& parked : filter_wait_) {
      ++stats_.nacks_sent;
      SendToPort(parked.requester, CohOp::kNack, parked.block, /*with_data=*/false);
    }
    filter_wait_.clear();
    if (!e.pending.empty()) {
      const CohMsg next = e.pending.front();
      e.pending.pop_front();
      engine_->Schedule(config_.directory_latency, [this, next] { Process(next); });
    }
    return;
  }
  if (e.busy) {
    ++stats_.txn_aborts;
    ++stats_.nacks_sent;
    SendToPort(e.active.requester, CohOp::kNack, block, /*with_data=*/false);
    FinishTxn(e, block);
  }
}

CoherentDirectory::BlockState CoherentDirectory::StateOf(std::uint64_t block) const {
  auto it = blocks_.find(block);
  return it == blocks_.end() ? BlockState::kUncached : it->second.state;
}

std::size_t CoherentDirectory::SharerCount(std::uint64_t block) const {
  auto it = blocks_.find(block);
  return it == blocks_.end() ? 0 : it->second.sharers.size();
}

int CoherentDirectory::OwnerOf(std::uint64_t block) const {
  auto it = blocks_.find(block);
  return it == blocks_.end() ? -1 : it->second.owner;
}

// ------------------------------ CoherentWindow ----------------------------

std::uint64_t CoherentWindow::Allocate(std::uint64_t bytes) {
  const std::uint64_t block = block_bytes();
  const std::uint64_t rounded = (bytes + block - 1) / block * block;
  assert(cursor_ + rounded <= size_ && "coherent window exhausted");
  const std::uint64_t addr = base_ + cursor_;
  cursor_ += rounded;
  return addr;
}

}  // namespace unifab
