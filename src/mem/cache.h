// Functional set-associative cache with LRU replacement and write-back
// dirty tracking. Timing is composed by MemoryHierarchy; this class only
// answers hit/miss/eviction questions deterministically.

#ifndef SRC_MEM_CACHE_H_
#define SRC_MEM_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/metrics.h"

namespace unifab {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  // dirty evictions

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Result of inserting a line: the evicted victim, if any.
struct Eviction {
  std::uint64_t line_addr = 0;  // aligned base address of the victim line
  bool dirty = false;
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& config);

  // Probes for the line containing `addr`. On a hit the line becomes MRU and
  // (for writes) dirty. Updates hit/miss stats.
  bool Access(std::uint64_t addr, bool is_write);

  // Peeks without disturbing LRU order or stats.
  bool Contains(std::uint64_t addr) const;

  // Whether the line containing `addr` is present and dirty.
  bool IsDirty(std::uint64_t addr) const;

  // Inserts the line containing `addr` (as MRU). Returns the victim if a
  // valid line had to be evicted. Inserting an already-present line just
  // refreshes it.
  std::optional<Eviction> Insert(std::uint64_t addr, bool dirty);

  // Removes the line containing `addr` if present. Returns true (plus its
  // dirtiness via `was_dirty`) when a line was invalidated.
  bool Invalidate(std::uint64_t addr, bool* was_dirty = nullptr);

  // Clears dirty bit (after an explicit flush wrote the line back).
  void CleanLine(std::uint64_t addr);

  // Returns the aligned base addresses of all valid (optionally: dirty-only)
  // lines. Used by flush-range operations and COMA replacement.
  std::vector<std::uint64_t> ValidLines(bool dirty_only = false) const;

  std::uint64_t LineBase(std::uint64_t addr) const { return addr & ~line_mask_; }
  std::uint32_t line_bytes() const { return config_.line_bytes; }
  std::uint64_t num_sets() const { return num_sets_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recent
  };

  std::uint64_t SetOf(std::uint64_t addr) const;
  std::uint64_t TagOf(std::uint64_t addr) const;
  Way* FindWay(std::uint64_t addr);
  const Way* FindWay(std::uint64_t addr) const;

  CacheConfig config_;
  std::uint64_t num_sets_;
  std::uint64_t line_mask_;
  std::uint64_t lru_clock_ = 0;
  std::vector<Way> ways_;  // num_sets_ * config_.ways, row-major by set
  CacheStats stats_;
};

}  // namespace unifab

#endif  // SRC_MEM_CACHE_H_
