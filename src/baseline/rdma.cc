#include "src/baseline/rdma.h"

#include <cassert>
#include <utility>

namespace unifab {

void RdmaStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "gets", [this] { return gets; });
  group.AddCounterFn(prefix + "puts", [this] { return puts; });
  group.AddCounterFn(prefix + "bytes", [this] { return bytes; });
  group.AddSummaryFn(prefix + "op_latency_ns", [this] { return &op_latency_ns; });
}

RdmaFarMemory::RdmaFarMemory(Engine* engine, const RdmaConfig& config)
    : engine_(engine), config_(config) {
  metrics_ = MetricGroup(&engine_->metrics(), "baseline/rdma");
  stats_.BindTo(metrics_);
}

void RdmaFarMemory::Get(std::uint64_t /*addr*/, std::uint32_t bytes, std::function<void()> done) {
  queue_.push_back(Op{/*is_put=*/false, bytes, std::move(done), engine_->Now()});
  PumpQueue();
}

void RdmaFarMemory::Put(std::uint64_t /*addr*/, std::uint32_t bytes, std::function<void()> done) {
  queue_.push_back(Op{/*is_put=*/true, bytes, std::move(done), engine_->Now()});
  PumpQueue();
}

void RdmaFarMemory::PumpQueue() {
  while (!queue_.empty() && outstanding_ < config_.max_outstanding) {
    Op op = std::move(queue_.front());
    queue_.pop_front();
    ++outstanding_;
    Issue(std::move(op));
  }
}

void RdmaFarMemory::Issue(Op op) {
  const Tick transfer = SerializationDelay(op.bytes, config_.bandwidth_gbps);
  const Tick total = config_.host_stack_latency + config_.network_latency +
                     config_.remote_nic_latency + transfer + config_.network_latency +
                     config_.completion_poll_latency;
  const bool is_put = op.is_put;
  const std::uint32_t bytes = op.bytes;
  const Tick submitted = op.submitted_at;
  engine_->Schedule(total, [this, is_put, bytes, submitted, done = std::move(op.done)] {
    --outstanding_;
    if (is_put) {
      ++stats_.puts;
    } else {
      ++stats_.gets;
    }
    stats_.bytes += bytes;
    stats_.op_latency_ns.Add(ToNs(engine_->Now() - submitted));
    if (done) {
      done();
    }
    PumpQueue();
  });
}

void RdmaHeapStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "reads", [this] { return reads; });
  group.AddCounterFn(prefix + "writes", [this] { return writes; });
  group.AddCounterFn(prefix + "hits", [this] { return hits; });
  group.AddCounterFn(prefix + "misses", [this] { return misses; });
  group.AddCounterFn(prefix + "writebacks", [this] { return writebacks; });
}

RdmaObjectHeap::RdmaObjectHeap(Engine* engine, const RdmaHeapConfig& config)
    : engine_(engine), config_(config), rdma_(engine, config.rdma) {
  metrics_ = MetricGroup(&engine_->metrics(), "baseline/rdma_heap");
  stats_.BindTo(metrics_);
}

std::uint64_t RdmaObjectHeap::Allocate(std::uint32_t size) {
  const std::uint64_t id = next_id_++;
  Object obj;
  obj.size = size;
  obj.local = false;  // objects are born remote (far-memory model)
  objects_.emplace(id, obj);
  return id;
}

void RdmaObjectHeap::TouchLru(std::uint64_t id) {
  Object& obj = objects_.at(id);
  lru_.erase(obj.lru_it);
  lru_.push_front(id);
  obj.lru_it = lru_.begin();
}

void RdmaObjectHeap::EvictIfNeeded(std::uint32_t incoming) {
  while (local_bytes_ + incoming > config_.local_cache_bytes && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    Object& obj = objects_.at(victim);
    obj.local = false;
    local_bytes_ -= obj.size;
    if (obj.dirty) {
      obj.dirty = false;
      ++stats_.writebacks;
      rdma_.Put(victim, obj.size, nullptr);
    }
  }
}

void RdmaObjectHeap::Access(std::uint64_t id, bool is_write, std::function<void()> done) {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  Object& obj = it->second;

  if (obj.local) {
    ++stats_.hits;
    TouchLru(id);
    if (is_write) {
      obj.dirty = true;
    }
    engine_->Schedule(config_.local_hit_latency, std::move(done));
    return;
  }

  ++stats_.misses;
  const std::uint32_t size = obj.size;
  rdma_.Get(id, size, [this, id, is_write, done = std::move(done)] {
    Object& o = objects_.at(id);
    EvictIfNeeded(o.size);
    o.local = true;
    o.dirty = is_write;
    local_bytes_ += o.size;
    lru_.push_front(id);
    o.lru_it = lru_.begin();
    if (done) {
      done();
    }
  });
}

void RdmaObjectHeap::Read(std::uint64_t id, std::function<void()> done) {
  ++stats_.reads;
  Access(id, /*is_write=*/false, std::move(done));
}

void RdmaObjectHeap::Write(std::uint64_t id, std::function<void()> done) {
  ++stats_.writes;
  Access(id, /*is_write=*/true, std::move(done));
}

}  // namespace unifab
