// Communication-fabric baseline: RDMA-style far memory.
//
// The paper's motivation (§2.1 #2, §3) contrasts memory fabrics with
// networking stacks: an RDMA access pays send-side kernel/driver/NIC cost,
// wire time, and remote NIC processing, and is asynchronous
// (submission/completion) rather than synchronous load/store. This module
// implements that baseline so the unified-heap benchmarks can compare FCC
// against an AIFM-like object far memory over a commodity NIC.

#ifndef SRC_BASELINE_RDMA_H_
#define SRC_BASELINE_RDMA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>

#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace unifab {

struct RdmaConfig {
  Tick host_stack_latency = FromNs(900.0);    // verbs post + doorbell + NIC DMA
  Tick remote_nic_latency = FromNs(400.0);    // one-sided target processing
  Tick network_latency = FromNs(600.0);       // wire + ToR switch, one way
  Tick completion_poll_latency = FromNs(250.0);  // CQ polling at the initiator
  double bandwidth_gbps = 12.5;               // 100 Gb/s
  std::uint32_t max_outstanding = 32;
};

struct RdmaStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t bytes = 0;
  Summary op_latency_ns;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// One-sided verbs to a remote memory server.
class RdmaFarMemory {
 public:
  RdmaFarMemory(Engine* engine, const RdmaConfig& config);

  void Get(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done);
  void Put(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done);

  std::size_t Outstanding() const { return outstanding_; }
  const RdmaStats& stats() const { return stats_; }

 private:
  struct Op {
    bool is_put;
    std::uint32_t bytes;
    std::function<void()> done;
    Tick submitted_at;
  };

  void Issue(Op op);
  void PumpQueue();

  Engine* engine_;
  RdmaConfig config_;
  std::deque<Op> queue_;
  std::size_t outstanding_ = 0;
  RdmaStats stats_;
  MetricGroup metrics_;
};

struct RdmaHeapConfig {
  RdmaConfig rdma;
  std::uint64_t local_cache_bytes = 1ULL << 30;  // host-DRAM object cache
  Tick local_hit_latency = FromNs(130.0);        // DRAM + software lookup
};

struct RdmaHeapStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// AIFM-like object far memory: whole objects swap between a local DRAM
// cache and the remote memory server over RDMA.
class RdmaObjectHeap {
 public:
  RdmaObjectHeap(Engine* engine, const RdmaHeapConfig& config);

  std::uint64_t Allocate(std::uint32_t size);  // returns object id
  void Read(std::uint64_t id, std::function<void()> done);
  void Write(std::uint64_t id, std::function<void()> done);

  const RdmaHeapStats& stats() const { return stats_; }
  std::uint64_t LocalBytes() const { return local_bytes_; }

 private:
  struct Object {
    std::uint32_t size;
    bool local = false;
    bool dirty = false;
    std::list<std::uint64_t>::iterator lru_it;
  };

  void Access(std::uint64_t id, bool is_write, std::function<void()> done);
  void EvictIfNeeded(std::uint32_t incoming);
  void TouchLru(std::uint64_t id);

  Engine* engine_;
  RdmaHeapConfig config_;
  RdmaFarMemory rdma_;
  std::unordered_map<std::uint64_t, Object> objects_;
  std::list<std::uint64_t> lru_;  // front = most recent, local objects only
  std::uint64_t local_bytes_ = 0;
  std::uint64_t next_id_ = 1;
  RdmaHeapStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_BASELINE_RDMA_H_
