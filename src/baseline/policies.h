// Baseline heap policies for the DP#2 ablations.

#ifndef SRC_BASELINE_POLICIES_H_
#define SRC_BASELINE_POLICIES_H_

#include <vector>

#include "src/core/heap.h"

namespace unifab {

// Objects stay where they were allocated forever (static placement — what a
// type-unconscious allocator over CXL memory does today).
class StaticPlacementPolicy : public MigrationPolicy {
 public:
  std::vector<Move> Decide(const std::vector<ObjectInfo>& /*objects*/,
                           const std::vector<MemTier>& /*tiers*/,
                           const std::vector<std::uint64_t>& /*tier_used*/,
                           const HeapConfig& /*config*/) override {
    return {};
  }
};

}  // namespace unifab

#endif  // SRC_BASELINE_POLICIES_H_
