// Commodity memory-fabric registry: the data behind paper Table 1, exposed
// programmatically so examples and benches can print and query it.

#ifndef SRC_FABRIC_REGISTRY_H_
#define SRC_FABRIC_REGISTRY_H_

#include <string>
#include <vector>

namespace unifab {

struct FabricSpec {
  std::string interconnect;
  std::string vendor;
  std::string active_development;  // year range
  std::string specifications;
  std::string product_demonstration;
  bool merged_into_cxl;  // Gen-Z and OpenCAPI were absorbed by CXL
};

// The Table 1 rows, in paper order.
const std::vector<FabricSpec>& CommodityFabrics();

// Looks up a fabric by interconnect name; nullptr when unknown.
const FabricSpec* FindFabric(const std::string& interconnect);

// Renders Table 1 as fixed-width text.
std::string FabricTableToString();

}  // namespace unifab

#endif  // SRC_FABRIC_REGISTRY_H_
