// Fabric host adapter (FHA) and fabric endpoint adapter (FEA).
//
// The FHA sits at a host root port: it converts memory transactions into
// routable flits, enforces an outstanding-transaction (MSHR) limit — the
// quantity that bounds how much fabric throughput one core can drive
// (paper §3 Difference #1) — and reassembles completions. The FEA fronts a
// remote device: it terminates the fabric protocol and converts between
// flits and device-dependent reads/writes (paper §2.2). Both adapters also
// carry runtime messages (kMsg / kCredit*) for the FCC layer.

#ifndef SRC_FABRIC_ADAPTER_H_
#define SRC_FABRIC_ADAPTER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/fabric/flit.h"
#include "src/fabric/link.h"
#include "src/fabric/switch/xlat_cache.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// A memory transaction as seen by the transaction layer.
struct MemRequest {
  enum class Type { kRead, kWrite };
  Type type = Type::kRead;
  std::uint64_t addr = 0;
  std::uint32_t bytes = 64;
  Channel channel = Channel::kMem;
};

// Completion callback; fires when the last flit of the transaction's
// response has been processed by the adapter.
using MemCompletion = std::function<void()>;

// Status-carrying completion: `ok` is false when the transaction was failed
// by the adapter (its link epoch changed underneath the outstanding MSHR)
// rather than completed by a response.
using MemStatusCompletion = std::function<void(bool ok)>;

// A runtime message delivered by an adapter.
struct FabricMessage {
  PbrId src = kInvalidPbrId;
  Opcode opcode = Opcode::kMsg;
  std::uint64_t tag = 0;
  std::uint32_t bytes = 0;
  std::shared_ptr<void> body;
};

using MessageHandler = std::function<void(const FabricMessage&)>;

// The device behind an FEA. Implementations live in src/mem (DRAM modules,
// memory-node controllers) and src/topo (accelerators).
class FabricTarget {
 public:
  virtual ~FabricTarget() = default;
  virtual void HandleRead(std::uint64_t addr, std::uint32_t bytes, std::function<void()> done) = 0;
  virtual void HandleWrite(std::uint64_t addr, std::uint32_t bytes,
                           std::function<void()> done) = 0;
};

struct AdapterConfig {
  Tick request_proc_latency = FromNs(50.0);   // flit build / protocol conversion
  Tick response_proc_latency = FromNs(50.0);  // completion parse and delivery
  std::uint32_t max_outstanding = 16;         // MSHR-like transaction limit
  FlitMode flit_mode = FlitMode::k68B;        // must match the attached link
  // A transaction whose response hasn't arrived by then is failed and its
  // MSHR reclaimed — without this, a request black-holed by a failed link
  // elsewhere in the fabric strands an MSHR forever and the (small) pool
  // wedges the adapter permanently. 0 disables. Far above any legitimate
  // completion time so it only fires on loss.
  Tick mshr_timeout = FromUs(250.0);
};

struct AdapterStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t mshr_failures = 0;  // outstanding txns failed by a link epoch change
  std::uint64_t mshr_timeouts = 0;  // outstanding txns failed by the response deadline
  Summary txn_latency_ns;           // submit-to-completion, per transaction

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Shared flit segmentation / egress machinery for both adapter kinds.
class AdapterBase : public FlitReceiver {
 public:
  AdapterBase(Engine* engine, const AdapterConfig& config, PbrId id, std::string name);
  ~AdapterBase() override = default;

  // Attaches the adapter's single fabric port.
  void AttachLink(LinkEndpoint* endpoint);

  // Sends a runtime message (no completion tracking). Large payloads are
  // segmented into multiple flits; the handler fires at the destination when
  // the last flit lands.
  void SendMessage(PbrId dst, Channel channel, Opcode opcode, std::uint64_t tag,
                   std::uint32_t bytes, std::shared_ptr<void> body);

  void SetMessageHandler(MessageHandler handler) { message_handler_ = std::move(handler); }

  // Provisions the DeACT-style translation cache this adapter consults for
  // fabric-virtual addresses (switch-resident memory control). Stats bind
  // under the adapter's metric group as "xlat/*". Returns the cache; it
  // stays owned by the adapter. nullptr from translation_cache() until
  // enabled.
  TranslationCache* EnableTranslationCache(const TranslationCacheConfig& config);
  TranslationCache* translation_cache() const { return xlat_cache_.get(); }

  // FlitReceiver: a link epoch change invalidates partially reassembled
  // transactions from the dead epoch (their missing flits will never come).
  void OnLinkEpochChange(int port, bool link_up) override;

  PbrId id() const { return id_; }
  const std::string& name() const { return name_; }
  const AdapterStats& stats() const { return stats_; }
  Engine* engine() const { return engine_; }

 protected:
  // Queues flits for transmission, draining into the link as space allows.
  void Egress(Flit flit);
  void PumpEgress();
  std::uint64_t NextTxnId() { return next_txn_id_++; }
  std::uint32_t PayloadCap() const { return FlitPayloadCapacity(config_.flit_mode); }

  // Reassembles multi-flit messages; returns true when `flit` completes its
  // transaction. Replayed flits on lossy links deliver out of order, so the
  // body (riding the final-sequence flit) is banked per transaction and
  // handed back through `body_out` on completion — the completing flit is
  // not necessarily the one that carried it.
  bool Reassemble(const Flit& flit, std::shared_ptr<void>* body_out = nullptr);

  void DeliverMessage(const Flit& last_flit, std::shared_ptr<void> body);

  struct RxProgress {
    std::uint32_t seen = 0;
    std::shared_ptr<void> body;
  };

  Engine* engine_;
  AdapterConfig config_;
  PbrId id_;
  std::string name_;
  LinkEndpoint* link_ = nullptr;
  std::deque<Flit> egress_;
  std::unordered_map<std::uint64_t, RxProgress> rx_progress_;  // txn -> reassembly state
  MessageHandler message_handler_;
  std::unique_ptr<TranslationCache> xlat_cache_;
  AdapterStats stats_;
  MetricGroup metrics_;
  std::uint64_t next_txn_id_ = 1;
};

// Host-side adapter.
class HostAdapter : public AdapterBase {
 public:
  HostAdapter(Engine* engine, const AdapterConfig& config, PbrId id, std::string name);

  // Submits a memory transaction to the remote node `dst`. Requests beyond
  // the MSHR limit queue inside the adapter. The legacy completion only
  // fires on success; callers that must observe failure (the eTrans retry
  // path) use SubmitWithStatus.
  void Submit(PbrId dst, const MemRequest& request, MemCompletion on_complete);
  void SubmitWithStatus(PbrId dst, const MemRequest& request, MemStatusCompletion on_complete);

  std::size_t Outstanding() const { return outstanding_.size(); }
  std::size_t QueuedRequests() const { return pending_.size(); }

  void ReceiveFlit(const Flit& flit, int port) override;

  // On the down transition, fails every MSHR whose request already left for
  // the fabric: its response died with the old epoch.
  void OnLinkEpochChange(int port, bool link_up) override;

 private:
  struct PendingRequest {
    PbrId dst;
    MemRequest request;
    MemStatusCompletion on_complete;
  };

  struct OutstandingTxn {
    MemRequest request;
    MemStatusCompletion on_complete;
    Tick submitted_at;
    EventId timeout = kInvalidEventId;
  };

  void IssueReady();
  void IssueNow(PendingRequest pr);
  void CompleteTxn(std::uint64_t txn_id);
  void TimeoutTxn(std::uint64_t txn_id);

  std::deque<PendingRequest> pending_;
  std::unordered_map<std::uint64_t, OutstandingTxn> outstanding_;
  AuditScope audit_;  // after the state the checks read

  friend class AuditTestPeer;
};

// Device-side adapter.
class EndpointAdapter : public AdapterBase {
 public:
  EndpointAdapter(Engine* engine, const AdapterConfig& config, PbrId id, std::string name,
                  FabricTarget* target);

  void ReceiveFlit(const Flit& flit, int port) override;

  void SetTarget(FabricTarget* target) { target_ = target; }

 private:
  void ServeRead(const Flit& request);
  void ServeWrite(const Flit& last_flit);
  void SendResponse(const Flit& request, Opcode opcode, std::uint32_t bytes);

  FabricTarget* target_;
};

}  // namespace unifab

#endif  // SRC_FABRIC_ADAPTER_H_
