// FabricInterconnect: owns the switches, adapters, and links of one memory
// fabric and plays the role of the central fabric manager (paper §2.1): it
// discovers the topology, assigns 12-bit PBR ids, and fills every switch's
// routing table (exact PBR routes inside a domain, HBR default routes toward
// foreign domains).

#ifndef SRC_FABRIC_INTERCONNECT_H_
#define SRC_FABRIC_INTERCONNECT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/adapter.h"
#include "src/fabric/bridge.h"
#include "src/fabric/flit.h"
#include "src/fabric/link.h"
#include "src/fabric/switch.h"
#include "src/sim/engine.h"

namespace unifab {

class FabricInterconnect {
 public:
  // `seed` feeds per-link error-injection RNGs.
  FabricInterconnect(Engine* engine, std::uint64_t seed);

  FabricInterconnect(const FabricInterconnect&) = delete;
  FabricInterconnect& operator=(const FabricInterconnect&) = delete;

  // --- Topology construction -------------------------------------------

  // Shard affinity for subsequently added switches/adapters: components
  // constructed while an engine is set live on that engine (a shard of a
  // ShardedEngine); pass nullptr to return to the default engine. Sticky,
  // wiring-time only. Orthogonal to the PBR `domain` routing parameter.
  void SetComponentEngine(Engine* engine) { component_engine_ = engine; }
  Engine* component_engine() const {
    return component_engine_ != nullptr ? component_engine_ : engine_;
  }

  FabricSwitch* AddSwitch(const SwitchConfig& config, const std::string& name,
                          std::uint16_t domain = 0);

  // Adapters get PBR ids assigned sequentially within their domain.
  HostAdapter* AddHostAdapter(const AdapterConfig& config, const std::string& name,
                              std::uint16_t domain = 0);
  EndpointAdapter* AddEndpointAdapter(const AdapterConfig& config, const std::string& name,
                                      FabricTarget* target, std::uint16_t domain = 0);

  // Wires two components with a full-duplex link. Switch-to-switch links
  // crossing domains are HBR links; everything else is PBR.
  Link* Connect(FabricSwitch* a, FabricSwitch* b, const LinkConfig& config);
  Link* Connect(FabricSwitch* sw, AdapterBase* adapter, const LinkConfig& config);
  // Switchless point-to-point attachment (e.g. a CXL 1.1 direct-attach
  // memory expander).
  Link* ConnectDirect(AdapterBase* a, AdapterBase* b, const LinkConfig& config);
  // Wires two pod gateway switches with an Ethernet bridge (DESIGN.md §11):
  // its own flow-control window, frame loss with retransmit, microsecond
  // propagation. Bridges between pods are HBR links like any cross-domain
  // switch trunk; routing, faults, and shard binding treat them as links.
  BridgeLink* ConnectBridge(FabricSwitch* a, FabricSwitch* b, const BridgeConfig& config);

  // --- Fabric-manager duties -------------------------------------------

  // Runs discovery and fills all routing tables. Must be called after the
  // topology is wired and before traffic flows; may be called again after
  // topology changes. Failed links are treated as absent, so calling this
  // after Link::Fail() re-routes around the failure (when redundant paths
  // exist). Existing tables are rebuilt from scratch.
  void ConfigureRouting();

  // --- Lookup / introspection ------------------------------------------

  AdapterBase* AdapterById(PbrId id) const;
  // The (single) link wired to an adapter's fabric port; nullptr when the
  // adapter is unknown or unwired. Fault campaigns use this to fail the edge
  // an endpoint hangs off without threading Link pointers through topology
  // construction.
  Link* LinkTo(PbrId adapter_id) const;
  const std::vector<std::unique_ptr<FabricSwitch>>& switches() const { return switches_; }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  std::size_t num_adapters() const { return adapters_.size(); }
  std::size_t num_links() const { return links_.size(); }
  std::size_t num_hbr_links() const { return hbr_links_; }
  std::size_t num_bridge_links() const { return bridge_links_; }

  // Number of switch hops between two adapters (after ConfigureRouting);
  // -1 when unreachable.
  int HopCount(PbrId from, PbrId to) const;

  // Minimum latency over every link whose two sides live on different
  // engines — the conservative lookahead bound for a ShardedEngine driving
  // this fabric. kTickNever when no link crosses an engine boundary.
  Tick MinCrossEngineLatency() const { return min_cross_latency_; }

  // Human-readable topology dump used by the Figure-1 bench.
  std::string TopologyToString() const;

  Engine* engine() const { return engine_; }

 private:
  // Graph node: either a switch (adapter == nullptr) or an adapter.
  struct Edge {
    int peer;    // node index at the far end
    int port;    // port index on THIS node
    Link* link;  // the physical link (may be failed)
  };

  struct Node {
    FabricSwitch* sw = nullptr;
    AdapterBase* adapter = nullptr;
    Engine* eng = nullptr;  // the engine driving this component
    std::uint16_t domain = 0;
    std::vector<Edge> edges;
  };

  int NodeIndexOf(const void* component) const;
  int AddNode(FabricSwitch* sw, AdapterBase* adapter, std::uint16_t domain);
  void AddEdge(int a, int port_a, int b, int port_b, Link* link);
  PbrId AllocatePbrId(std::uint16_t domain);
  void BindLinkEngines(Link* link, int node_a, int node_b);

  Engine* engine_;
  Engine* component_engine_ = nullptr;  // sticky wiring-time override
  Tick min_cross_latency_ = kTickNever;
  std::uint64_t seed_;
  std::uint64_t link_counter_ = 0;

  std::vector<std::unique_ptr<FabricSwitch>> switches_;
  std::vector<std::unique_ptr<AdapterBase>> adapters_;
  std::vector<std::unique_ptr<Link>> links_;

  std::vector<Node> nodes_;
  std::unordered_map<const void*, int> node_index_;
  std::unordered_map<PbrId, AdapterBase*> by_id_;
  std::unordered_map<std::uint16_t, std::uint16_t> next_port_in_domain_;
  std::size_t hbr_links_ = 0;
  std::size_t bridge_links_ = 0;
  bool routed_ = false;
};

}  // namespace unifab

#endif  // SRC_FABRIC_INTERCONNECT_H_
