#include "src/fabric/adapter.h"

#include <cassert>

namespace unifab {

void AdapterStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "reads_completed", [this] { return reads_completed; });
  group.AddCounterFn(prefix + "writes_completed", [this] { return writes_completed; });
  group.AddCounterFn(prefix + "messages_sent", [this] { return messages_sent; });
  group.AddCounterFn(prefix + "messages_delivered", [this] { return messages_delivered; });
  group.AddCounterFn(prefix + "mshr_failures", [this] { return mshr_failures; });
  group.AddCounterFn(prefix + "mshr_timeouts", [this] { return mshr_timeouts; });
  group.AddSummaryFn(prefix + "txn_latency_ns", [this] { return &txn_latency_ns; });
}

AdapterBase::AdapterBase(Engine* engine, const AdapterConfig& config, PbrId id, std::string name)
    : engine_(engine), config_(config), id_(id), name_(std::move(name)) {
  metrics_ = MetricGroup(&engine_->metrics(), "fabric/adapter/" + name_);
  stats_.BindTo(metrics_);
}

TranslationCache* AdapterBase::EnableTranslationCache(const TranslationCacheConfig& config) {
  xlat_cache_ = std::make_unique<TranslationCache>(config);
  xlat_cache_->stats().BindTo(metrics_, "xlat/");
  return xlat_cache_.get();
}

void AdapterBase::AttachLink(LinkEndpoint* endpoint) {
  link_ = endpoint;
  endpoint->Bind(this, 0);
  endpoint->SetDrainCallback([this] { PumpEgress(); });
}

void AdapterBase::Egress(Flit flit) {
  egress_.push_back(std::move(flit));
  PumpEgress();
}

void AdapterBase::PumpEgress() {
  assert(link_ != nullptr && "adapter has no link attached");
  while (!egress_.empty() && link_->Send(egress_.front())) {
    egress_.pop_front();
  }
}

void AdapterBase::OnLinkEpochChange(int /*port*/, bool link_up) {
  if (!link_up) {
    // Partially reassembled transactions lost flits to the failure; their
    // remainders will never arrive. Senders redrive whole transactions, so
    // stale partial progress must not be credited to the retry's flits.
    rx_progress_.clear();
  }
}

bool AdapterBase::Reassemble(const Flit& flit, std::shared_ptr<void>* body_out) {
  if (flit.total <= 1) {
    if (body_out != nullptr) {
      *body_out = flit.body;
    }
    return true;
  }
  // Transactions from different source adapters carry independent txn-id
  // spaces, so the reassembly key must include the source.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(flit.src) << 48) | (flit.txn_id & 0xFFFFFFFFFFFFULL);
  RxProgress& progress = rx_progress_[key];
  if (flit.body != nullptr) {
    progress.body = flit.body;
  }
  if (++progress.seen < flit.total) {
    return false;
  }
  if (body_out != nullptr) {
    *body_out = std::move(progress.body);
  }
  rx_progress_.erase(key);
  return true;
}

void AdapterBase::SendMessage(PbrId dst, Channel channel, Opcode opcode, std::uint64_t tag,
                              std::uint32_t bytes, std::shared_ptr<void> body) {
  const std::uint32_t cap = PayloadCap();
  const std::uint32_t nflits = bytes == 0 ? 1 : (bytes + cap - 1) / cap;
  const std::uint64_t txn = NextTxnId();
  ++stats_.messages_sent;
  engine_->Schedule(config_.request_proc_latency, [=, this] {
    std::uint32_t remaining = bytes;
    for (std::uint32_t i = 0; i < nflits; ++i) {
      Flit f;
      f.txn_id = txn;
      f.seq = i;
      f.total = nflits;
      f.channel = channel;
      f.opcode = opcode;
      f.src = id_;
      f.dst = dst;
      f.payload_bytes = remaining > cap ? cap : remaining;
      remaining -= f.payload_bytes;
      f.request_bytes = bytes;
      f.created_at = engine_->Now();
      f.tag = tag;
      if (i + 1 == nflits) {
        f.body = body;  // body rides the last flit
      }
      Egress(std::move(f));
    }
  });
}

void AdapterBase::DeliverMessage(const Flit& last_flit, std::shared_ptr<void> body) {
  ++stats_.messages_delivered;
  if (!message_handler_) {
    return;
  }
  FabricMessage msg;
  msg.src = last_flit.src;
  msg.opcode = last_flit.opcode;
  msg.tag = last_flit.tag;
  msg.bytes = last_flit.request_bytes;
  msg.body = std::move(body);
  engine_->Schedule(config_.response_proc_latency,
                    [this, msg = std::move(msg)] { message_handler_(msg); });
}

HostAdapter::HostAdapter(Engine* engine, const AdapterConfig& config, PbrId id, std::string name)
    : AdapterBase(engine, config, id, std::move(name)) {
  audit_ = AuditScope(&engine_->audit(), "fabric/adapter/" + name_);
  // No MSHR outlives its deadline epoch: the timeout event reclaims a txn at
  // exactly submitted_at + mshr_timeout, so at any event boundary every
  // outstanding txn is younger than (or at) its deadline. 0 disables
  // timeouts and the age bound with them.
  audit_.AddCheck("mshr_deadline", [this]() -> std::string {
    if (config_.mshr_timeout == 0) {
      return {};
    }
    const Tick now = engine_->Now();
    for (const auto& [txn_id, txn] : outstanding_) {
      if (txn.submitted_at + config_.mshr_timeout < now) {
        return "txn " + std::to_string(txn_id) + " submitted at " +
               std::to_string(txn.submitted_at) + "ps outlived its deadline (now=" +
               std::to_string(now) + "ps, timeout=" + std::to_string(config_.mshr_timeout) +
               "ps)";
      }
    }
    return {};
  });
  // The MSHR pool never exceeds its limit, and requests only queue behind a
  // full pool (IssueReady drains pending_ until one of the two runs out).
  audit_.AddCheck("mshr_capacity", [this]() -> std::string {
    if (outstanding_.size() > config_.max_outstanding) {
      return "outstanding=" + std::to_string(outstanding_.size()) + " > max_outstanding=" +
             std::to_string(config_.max_outstanding);
    }
    if (!pending_.empty() && outstanding_.size() < config_.max_outstanding) {
      return std::to_string(pending_.size()) + " requests queued while only " +
             std::to_string(outstanding_.size()) + "/" +
             std::to_string(config_.max_outstanding) + " MSHRs in use";
    }
    return {};
  });
}

void HostAdapter::Submit(PbrId dst, const MemRequest& request, MemCompletion on_complete) {
  SubmitWithStatus(dst, request, [cb = std::move(on_complete)](bool ok) {
    if (ok && cb) {
      cb();
    }
  });
}

void HostAdapter::SubmitWithStatus(PbrId dst, const MemRequest& request,
                                   MemStatusCompletion on_complete) {
  pending_.push_back(PendingRequest{dst, request, std::move(on_complete)});
  IssueReady();
}

void HostAdapter::OnLinkEpochChange(int port, bool link_up) {
  AdapterBase::OnLinkEpochChange(port, link_up);
  if (link_up || outstanding_.empty()) {
    return;
  }
  // Every issued transaction's request or response was riding the dead
  // epoch; fail them all so the submitter can redrive (requests still queued
  // in egress_ survive the outage and drain after Recover, but their MSHRs
  // cannot be told apart, so they fail too and redrive redundantly).
  auto failed = std::move(outstanding_);
  outstanding_.clear();
  stats_.mshr_failures += failed.size();
  for (auto& [txn_id, txn] : failed) {
    if (txn.timeout != kInvalidEventId) {
      engine_->Cancel(txn.timeout);
    }
    if (txn.on_complete) {
      txn.on_complete(false);
    }
  }
  IssueReady();
}

void HostAdapter::IssueReady() {
  while (!pending_.empty() && outstanding_.size() < config_.max_outstanding) {
    PendingRequest pr = std::move(pending_.front());
    pending_.pop_front();
    IssueNow(std::move(pr));
  }
}

void HostAdapter::IssueNow(PendingRequest pr) {
  const std::uint64_t txn = NextTxnId();
  EventId timeout = kInvalidEventId;
  if (config_.mshr_timeout > 0) {
    timeout = engine_->Schedule(config_.mshr_timeout, [this, txn] { TimeoutTxn(txn); });
  }
  outstanding_.emplace(
      txn, OutstandingTxn{pr.request, std::move(pr.on_complete), engine_->Now(), timeout});

  const std::uint32_t cap = PayloadCap();
  const bool is_write = pr.request.type == MemRequest::Type::kWrite;
  // Reads go out as a single header flit; writes carry their payload.
  const std::uint32_t nflits = is_write ? (pr.request.bytes + cap - 1) / cap : 1;

  engine_->Schedule(config_.request_proc_latency, [this, txn, pr, nflits, cap, is_write] {
    std::uint32_t remaining = pr.request.bytes;
    for (std::uint32_t i = 0; i < nflits; ++i) {
      Flit f;
      f.txn_id = txn;
      f.seq = i;
      f.total = nflits;
      f.channel = pr.request.channel;
      f.opcode = is_write ? Opcode::kMemWr : Opcode::kMemRd;
      f.src = id_;
      f.dst = pr.dst;
      f.addr = pr.request.addr;
      f.payload_bytes = is_write ? (remaining > cap ? cap : remaining) : 0;
      if (is_write) {
        remaining -= f.payload_bytes;
      }
      f.request_bytes = pr.request.bytes;
      f.created_at = engine_->Now();
      Egress(std::move(f));
    }
  });
}

void HostAdapter::ReceiveFlit(const Flit& flit, int /*port*/) {
  // Host-side input buffers are sized generously; the slot frees as soon as
  // the flit is absorbed.
  link_->ReturnCredit(flit.channel);

  switch (flit.opcode) {
    case Opcode::kMemRdData:
    case Opcode::kMemWrAck:
      if (Reassemble(flit)) {
        const std::uint64_t txn = flit.txn_id;
        engine_->Schedule(config_.response_proc_latency, [this, txn] { CompleteTxn(txn); });
      }
      break;
    case Opcode::kMsg:
    case Opcode::kCreditQuery:
    case Opcode::kCreditGrant:
    case Opcode::kSnpInv:
    case Opcode::kSnpData:
    case Opcode::kSnpResp:
      if (std::shared_ptr<void> body; Reassemble(flit, &body)) {
        DeliverMessage(flit, std::move(body));
      }
      break;
    default:
      // Requests never arrive at a host adapter in this model.
      break;
  }
}

void HostAdapter::CompleteTxn(std::uint64_t txn_id) {
  auto it = outstanding_.find(txn_id);
  if (it == outstanding_.end()) {
    return;
  }
  OutstandingTxn txn = std::move(it->second);
  outstanding_.erase(it);

  if (txn.timeout != kInvalidEventId) {
    engine_->Cancel(txn.timeout);
  }
  stats_.txn_latency_ns.Add(ToNs(engine_->Now() - txn.submitted_at));
  if (txn.request.type == MemRequest::Type::kRead) {
    ++stats_.reads_completed;
  } else {
    ++stats_.writes_completed;
  }
  if (txn.on_complete) {
    txn.on_complete(true);
  }
  IssueReady();
}

void HostAdapter::TimeoutTxn(std::uint64_t txn_id) {
  auto it = outstanding_.find(txn_id);
  if (it == outstanding_.end()) {
    return;
  }
  // The request or its response was lost somewhere in the fabric (e.g.
  // black-holed at a switch whose output link failed); reclaim the MSHR so
  // the pool cannot wedge. A response arriving after this point finds no
  // MSHR and is dropped.
  OutstandingTxn txn = std::move(it->second);
  outstanding_.erase(it);
  ++stats_.mshr_timeouts;
  if (txn.on_complete) {
    txn.on_complete(false);
  }
  IssueReady();
}

EndpointAdapter::EndpointAdapter(Engine* engine, const AdapterConfig& config, PbrId id,
                                 std::string name, FabricTarget* target)
    : AdapterBase(engine, config, id, std::move(name)), target_(target) {}

void EndpointAdapter::ReceiveFlit(const Flit& flit, int /*port*/) {
  link_->ReturnCredit(flit.channel);

  switch (flit.opcode) {
    case Opcode::kMemRd:
      ServeRead(flit);
      break;
    case Opcode::kMemWr:
      if (Reassemble(flit)) {
        ServeWrite(flit);
      }
      break;
    case Opcode::kMsg:
    case Opcode::kCreditQuery:
    case Opcode::kCreditGrant:
    case Opcode::kSnpInv:
    case Opcode::kSnpData:
    case Opcode::kSnpResp:
      if (std::shared_ptr<void> body; Reassemble(flit, &body)) {
        DeliverMessage(flit, std::move(body));
      }
      break;
    default:
      break;
  }
}

void EndpointAdapter::ServeRead(const Flit& request) {
  engine_->Schedule(config_.request_proc_latency, [this, request] {
    assert(target_ != nullptr && "endpoint adapter has no device");
    target_->HandleRead(request.addr, request.request_bytes, [this, request] {
      ++stats_.reads_completed;
      SendResponse(request, Opcode::kMemRdData, request.request_bytes);
    });
  });
}

void EndpointAdapter::ServeWrite(const Flit& last_flit) {
  engine_->Schedule(config_.request_proc_latency, [this, last_flit] {
    assert(target_ != nullptr && "endpoint adapter has no device");
    target_->HandleWrite(last_flit.addr, last_flit.request_bytes, [this, last_flit] {
      ++stats_.writes_completed;
      SendResponse(last_flit, Opcode::kMemWrAck, 0);
    });
  });
}

void EndpointAdapter::SendResponse(const Flit& request, Opcode opcode, std::uint32_t bytes) {
  const std::uint32_t cap = PayloadCap();
  const std::uint32_t nflits = bytes == 0 ? 1 : (bytes + cap - 1) / cap;
  std::uint32_t remaining = bytes;
  for (std::uint32_t i = 0; i < nflits; ++i) {
    Flit f;
    f.txn_id = request.txn_id;
    f.seq = i;
    f.total = nflits;
    f.channel = request.channel;
    f.opcode = opcode;
    f.src = id_;
    f.dst = request.src;
    f.addr = request.addr;
    f.payload_bytes = remaining > cap ? cap : remaining;
    remaining -= f.payload_bytes;
    f.request_bytes = request.request_bytes;
    f.created_at = engine_->Now();
    Egress(std::move(f));
  }
}

}  // namespace unifab
