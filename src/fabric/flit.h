// Flit and transaction definitions for the simulated memory fabric.
//
// The simulator follows the CXL Flex Bus framing model (paper §2.1): the
// transaction layer produces channel-tagged requests, the link layer moves
// fixed-size flits under credit-based flow control, and the physical layer
// charges serialization time per flit.

#ifndef SRC_FABRIC_FLIT_H_
#define SRC_FABRIC_FLIT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/time.h"

namespace unifab {

// 12-bit port-based-routing identifier (paper §2.1: up to 4096 edge ports
// per domain). The upper 4 bits of the 16-bit value carry the domain number
// used for hierarchy-based routing between domains.
using PbrId = std::uint16_t;

inline constexpr PbrId kInvalidPbrId = 0xFFFF;
inline constexpr PbrId kPbrIdMask = 0x0FFF;
inline constexpr int kDomainShift = 12;
// The 4-bit domain field caps a topology (and thus a pod cluster) at this
// many fabric domains.
inline constexpr int kMaxFabricDomains = 1 << (16 - kDomainShift);

constexpr PbrId MakePbrId(std::uint16_t domain, std::uint16_t port) {
  return static_cast<PbrId>((domain << kDomainShift) | (port & kPbrIdMask));
}
constexpr std::uint16_t DomainOf(PbrId id) { return static_cast<std::uint16_t>(id >> kDomainShift); }
constexpr std::uint16_t PortOf(PbrId id) { return static_cast<std::uint16_t>(id & kPbrIdMask); }

// CXL channel semantics (paper §2.1). kControl models the dedicated in-band
// control lane that design principle #4 dedicates to the central arbiter.
enum class Channel : std::uint8_t {
  kIo = 0,      // CXL.io: PCIe-style configuration / bulk
  kMem = 1,     // CXL.mem: host load/store to device memory
  kCache = 2,   // CXL.cache: coherence snoops and responses
  kControl = 3  // dedicated arbiter lane (FCC DP#4)
};

inline constexpr int kNumChannels = 4;

const char* ChannelName(Channel c);

// Flit operation codes. Request/response pairing is by transaction id.
enum class Opcode : std::uint8_t {
  kMemRd,        // read request
  kMemRdData,    // read completion carrying data
  kMemWr,        // write request carrying data
  kMemWrAck,     // write completion
  kSnpInv,       // coherence: invalidate snoop
  kSnpData,      // coherence: data-forward snoop
  kSnpResp,      // coherence: snoop response
  kCfgRd,        // fabric-manager configuration read
  kCfgWr,        // fabric-manager configuration write
  kCfgResp,      // configuration completion
  kMsg,          // runtime message (scalable functions, eTrans control)
  kCreditQuery,  // arbiter control-plane ops (DP#4)
  kCreditGrant,
};

const char* OpcodeName(Opcode op);

bool IsRequest(Opcode op);
bool IsResponse(Opcode op);

// Physical-layer flit framing (paper §2.1: 68B and 256B modes).
enum class FlitMode : std::uint8_t { k68B, k256B };

// Bytes a single flit occupies on the wire.
constexpr std::uint32_t FlitWireBytes(FlitMode mode) {
  return mode == FlitMode::k68B ? 68 : 256;
}

// Data payload bytes one flit can carry (one cacheline in 68B mode; three
// slots of the 256B flit carry data, the rest is header/CRC).
constexpr std::uint32_t FlitPayloadCapacity(FlitMode mode) {
  return mode == FlitMode::k68B ? 64 : 192;
}

// One link-layer flit. Flits are small value types; data payloads are
// modelled by byte counts only (the simulator tracks timing and protocol
// state, not memory contents — content fidelity lives in src/mem).
struct Flit {
  std::uint64_t txn_id = 0;   // transaction this flit belongs to
  std::uint32_t seq = 0;      // position within the transaction
  std::uint32_t total = 1;    // flits in the transaction
  Channel channel = Channel::kMem;
  Opcode opcode = Opcode::kMemRd;
  PbrId src = kInvalidPbrId;
  PbrId dst = kInvalidPbrId;
  std::uint64_t addr = 0;
  std::uint32_t payload_bytes = 0;  // data bytes carried by this flit
  std::uint32_t request_bytes = 0;  // total bytes the transaction reads/writes
  Tick created_at = 0;
  std::uint16_t hops = 0;

  // Runtime messaging (kMsg / kCredit*): a user-defined tag plus an opaque
  // payload handle. The fabric only times the payload (payload_bytes); it
  // never inspects the body.
  std::uint64_t tag = 0;
  std::shared_ptr<void> body;

  std::string ToString() const;
};

}  // namespace unifab

#endif  // SRC_FABRIC_FLIT_H_
