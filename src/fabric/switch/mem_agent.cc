#include "src/fabric/switch/mem_agent.h"

#include <cassert>
#include <utility>

namespace unifab {

void SwitchMemStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "registers", [this] { return registers; });
  group.AddCounterFn(prefix + "releases", [this] { return releases; });
  group.AddCounterFn(prefix + "translations", [this] { return translations; });
  group.AddCounterFn(prefix + "translate_faults", [this] { return translate_faults; });
  group.AddCounterFn(prefix + "commits", [this] { return commits; });
  group.AddCounterFn(prefix + "commit_rejects", [this] { return commit_rejects; });
  group.AddCounterFn(prefix + "invalidations_sent", [this] { return invalidations_sent; });
  group.AddCounterFn(prefix + "invalidation_acks", [this] { return invalidation_acks; });
}

SwitchMemAgent::SwitchMemAgent(Engine* engine, const SwitchMemConfig& config,
                               MessageDispatcher* dispatcher)
    : engine_(engine), config_(config), dispatcher_(dispatcher) {
  dispatcher_->RegisterService(kSvcSwitchMem,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(), "fabric/switch_mem");
  stats_.BindTo(metrics_);
  metrics_.AddGaugeFn("ranges", [this] { return static_cast<double>(ranges_.size()); });
  metrics_.AddGaugeFn("pending_invalidations",
                      [this] { return static_cast<double>(pending_invals_.size()); });
  audit_ = AuditScope(&engine_->audit(), "fabric/switch_mem");
  // Translation-cache entries are conserved: every entry cached at any
  // attached client refers to a range the agent still tracks, and the agent
  // remembers that client as a sharer (or has an invalidation to it in
  // flight). The agent may conservatively over-remember sharers — a client
  // can evict silently — but never under-remember, or a migration commit
  // could leave a cached translation it does not know to invalidate.
  audit_.AddCheck("cache_entries_conserved", [this]() -> std::string {
    for (const SwitchMemClient* client : audit_clients_) {
      const PbrId cid = client->id();
      std::string fail;
      client->cache()->ForEach([&](const Translation& e) {
        if (!fail.empty()) {
          return;
        }
        auto it = ranges_.find(e.vbase);
        if (it == ranges_.end()) {
          fail = "client " + std::to_string(cid) + " caches unknown range vbase=" +
                 std::to_string(e.vbase);
          return;
        }
        if (it->second.sharers.count(cid) == 0 &&
            pending_invals_.count({e.vbase, cid}) == 0) {
          fail = "client " + std::to_string(cid) + " caches vbase=" +
                 std::to_string(e.vbase) + " but is neither sharer nor pending-invalidate";
        }
      });
      if (!fail.empty()) {
        return fail;
      }
    }
    return {};
  });
  // No stale translation outlives its invalidation ack: a cached entry
  // either matches the range's current placement/version or the agent has
  // an invalidation to that client still in flight. Anything else means a
  // commit finished (freed the source block) while a cache could still
  // route accesses at the old address.
  audit_.AddCheck("no_stale_translation", [this]() -> std::string {
    for (const SwitchMemClient* client : audit_clients_) {
      const PbrId cid = client->id();
      std::string fail;
      client->cache()->ForEach([&](const Translation& e) {
        if (!fail.empty()) {
          return;
        }
        auto it = ranges_.find(e.vbase);
        if (it == ranges_.end()) {
          return;  // cache_entries_conserved reports this
        }
        const Translation& cur = it->second.xlat;
        const bool fresh =
            e.version == cur.version && e.node == cur.node && e.addr == cur.addr;
        if (!fresh && pending_invals_.count({e.vbase, cid}) == 0) {
          fail = "client " + std::to_string(cid) + " holds stale translation for vbase=" +
                 std::to_string(e.vbase) + " (cached v" + std::to_string(e.version) +
                 ", current v" + std::to_string(cur.version) + ") with no invalidation in flight";
        }
      });
      if (!fail.empty()) {
        return fail;
      }
    }
    return {};
  });
}

void SwitchMemAgent::RegisterRange(std::uint64_t vbase, std::uint64_t bytes, PbrId node,
                                   std::uint64_t addr) {
  assert(ranges_.count(vbase) == 0 && "vbase reuse: heap va cursor must be monotonic");
  Range range;
  range.xlat.vbase = vbase;
  range.xlat.bytes = bytes;
  range.xlat.node = node;
  range.xlat.addr = addr;
  range.xlat.version = 0;  // bumped by each migration commit
  ranges_.emplace(vbase, std::move(range));
  ++stats_.registers;
}

void SwitchMemAgent::ReleaseRange(std::uint64_t vbase) {
  auto it = ranges_.find(vbase);
  if (it == ranges_.end()) {
    return;
  }
  ++stats_.releases;
  Range& range = it->second;
  range.dying = true;
  // Cached copies must still be flushed: until their acks land, the range
  // lingers in the dying state so the audit sweeps can account for them.
  std::set<PbrId> sharers;
  sharers.swap(range.sharers);
  for (const PbrId sharer : sharers) {
    if (pending_invals_.insert({vbase, sharer}).second) {
      SendInvalidate(sharer, range.xlat);
    }
  }
  MaybeReapRange(vbase);
}

Translation SwitchMemAgent::Lookup(std::uint64_t vaddr) const {
  auto it = ranges_.upper_bound(vaddr);
  if (it != ranges_.begin()) {
    --it;
    if (!it->second.dying && it->second.xlat.Covers(vaddr)) {
      return it->second.xlat;
    }
  }
  return Translation{};
}

bool SwitchMemAgent::HasPendingInvals(std::uint64_t vbase) const {
  auto it = pending_invals_.lower_bound({vbase, 0});
  return it != pending_invals_.end() && it->first == vbase;
}

void SwitchMemAgent::MaybeReapRange(std::uint64_t vbase) {
  auto it = ranges_.find(vbase);
  if (it == ranges_.end() || !it->second.dying) {
    return;
  }
  if (it->second.sharers.empty() && !HasPendingInvals(vbase) &&
      pending_commits_.count(vbase) == 0) {
    ranges_.erase(it);
  }
}

void SwitchMemAgent::HandleMessage(const FabricMessage& msg) {
  const auto req = std::static_pointer_cast<SwitchMemMsg>(msg.body);
  assert(req != nullptr);
  switch (req->kind) {
    case SwitchMemMsg::Kind::kTranslate:
      engine_->Schedule(config_.lookup_latency,
                        [this, m = *req, src = msg.src] { HandleTranslate(src, m); });
      return;
    case SwitchMemMsg::Kind::kCommit:
      engine_->Schedule(config_.commit_latency,
                        [this, m = *req, src = msg.src] { HandleCommit(src, m); });
      return;
    case SwitchMemMsg::Kind::kInvalidateAck:
      HandleInvalidateAck(msg.src, *req);
      return;
    default:
      return;
  }
}

void SwitchMemAgent::HandleTranslate(PbrId src, const SwitchMemMsg& m) {
  SwitchMemMsg resp;
  resp.kind = SwitchMemMsg::Kind::kTranslateResp;
  resp.request_id = m.request_id;
  auto it = ranges_.upper_bound(m.vaddr);
  if (it != ranges_.begin()) {
    --it;
    if (!it->second.dying && it->second.xlat.Covers(m.vaddr)) {
      resp.ok = true;
      resp.xlat = it->second.xlat;
      // Remembered before the response leaves: the sharer set must cover
      // the cache entry the client is about to install.
      it->second.sharers.insert(src);
      ++stats_.translations;
      Send(src, resp);
      return;
    }
  }
  ++stats_.translate_faults;
  Send(src, resp);
}

void SwitchMemAgent::HandleCommit(PbrId src, const SwitchMemMsg& m) {
  const std::uint64_t vbase = m.xlat.vbase;
  auto it = ranges_.find(vbase);
  if (it == ranges_.end() || it->second.dying || pending_commits_.count(vbase) != 0) {
    ++stats_.commit_rejects;
    SwitchMemMsg ack;
    ack.kind = SwitchMemMsg::Kind::kCommitAck;
    ack.request_id = m.request_id;
    Send(src, ack);
    return;
  }
  Range& range = it->second;
  ++stats_.commits;
  // Apply-first: from this instant every fresh translate serves the new
  // placement. Holders of the old one are invalidated below; they may keep
  // using it (old-or-new, never torn) until their ack, and the committer's
  // ack — the signal that the old block is reclaimable — waits for all of
  // them.
  range.xlat.node = m.xlat.node;
  range.xlat.addr = m.xlat.addr;
  ++range.xlat.version;

  std::set<PbrId> sharers;
  sharers.swap(range.sharers);
  PendingCommit pc;
  pc.request_id = m.request_id;
  pc.committer = src;
  for (const PbrId sharer : sharers) {
    if (pending_invals_.insert({vbase, sharer}).second) {
      ++pc.acks_outstanding;
      SendInvalidate(sharer, range.xlat);
    }
  }
  if (pc.acks_outstanding == 0) {
    range.sharers.insert(src);  // the ack carries the new translation
    SwitchMemMsg ack;
    ack.kind = SwitchMemMsg::Kind::kCommitAck;
    ack.request_id = m.request_id;
    ack.ok = true;
    ack.xlat = range.xlat;
    Send(src, ack);
    return;
  }
  pending_commits_.emplace(vbase, pc);
}

void SwitchMemAgent::HandleInvalidateAck(PbrId src, const SwitchMemMsg& m) {
  const std::uint64_t vbase = m.xlat.vbase;
  ++stats_.invalidation_acks;
  pending_invals_.erase({vbase, src});

  auto pc = pending_commits_.find(vbase);
  if (pc != pending_commits_.end() && --pc->second.acks_outstanding == 0) {
    const PbrId committer = pc->second.committer;
    SwitchMemMsg ack;
    ack.kind = SwitchMemMsg::Kind::kCommitAck;
    ack.request_id = pc->second.request_id;
    pending_commits_.erase(pc);
    auto rit = ranges_.find(vbase);
    if (rit != ranges_.end() && !rit->second.dying) {
      rit->second.sharers.insert(committer);
      ack.ok = true;
      ack.xlat = rit->second.xlat;
    }
    Send(committer, ack);
  }
  MaybeReapRange(vbase);
}

void SwitchMemAgent::SendInvalidate(PbrId dst, const Translation& xlat) {
  ++stats_.invalidations_sent;
  SwitchMemMsg inval;
  inval.kind = SwitchMemMsg::Kind::kInvalidate;
  inval.xlat = xlat;
  Send(dst, inval);
}

void SwitchMemAgent::Send(PbrId dst, const SwitchMemMsg& msg) {
  dispatcher_->adapter()->SendMessage(dst, Channel::kControl, Opcode::kMsg,
                                      MakeTag(kSvcSwitchMem, msg.request_id),
                                      config_.ctrl_msg_bytes,
                                      std::make_shared<SwitchMemMsg>(msg));
}

void SwitchMemClientStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "resolves", [this] { return resolves; });
  group.AddCounterFn(prefix + "cache_hits", [this] { return cache_hits; });
  group.AddCounterFn(prefix + "translate_requests", [this] { return translate_requests; });
  group.AddCounterFn(prefix + "translate_faults", [this] { return translate_faults; });
  group.AddCounterFn(prefix + "commit_requests", [this] { return commit_requests; });
  group.AddCounterFn(prefix + "invalidates_received", [this] { return invalidates_received; });
}

SwitchMemClient::SwitchMemClient(Engine* engine, const SwitchMemConfig& config,
                                 MessageDispatcher* dispatcher, SwitchMemAgent* agent,
                                 TranslationCache* cache)
    : engine_(engine), config_(config), dispatcher_(dispatcher), agent_(agent), cache_(cache) {
  assert(cache_ != nullptr && "client needs the adapter's translation cache");
  dispatcher_->RegisterService(kSvcSwitchMem,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(),
                         "fabric/switch_mem/client/" + dispatcher_->adapter()->name());
  stats_.BindTo(metrics_);
}

void SwitchMemClient::Resolve(std::uint64_t vaddr, ResolveCb cb) {
  ++stats_.resolves;
  if (const Translation* hit = cache_->Lookup(vaddr)) {
    ++stats_.cache_hits;
    engine_->Schedule(cache_->config().hit_latency,
                      [cb = std::move(cb), xlat = *hit] { cb(xlat, true); });
    return;
  }
  SwitchMemMsg m;
  m.kind = SwitchMemMsg::Kind::kTranslate;
  m.request_id = next_request_++;
  m.vaddr = vaddr;
  pending_resolves_.emplace(m.request_id, std::move(cb));
  ++stats_.translate_requests;
  Send(m);
}

void SwitchMemClient::Commit(const Translation& next, std::function<void(bool)> cb) {
  SwitchMemMsg m;
  m.kind = SwitchMemMsg::Kind::kCommit;
  m.request_id = next_request_++;
  m.xlat = next;
  pending_commits_.emplace(m.request_id, std::move(cb));
  ++stats_.commit_requests;
  Send(m);
}

void SwitchMemClient::HandleMessage(const FabricMessage& msg) {
  const auto resp = std::static_pointer_cast<SwitchMemMsg>(msg.body);
  assert(resp != nullptr);
  switch (resp->kind) {
    case SwitchMemMsg::Kind::kTranslateResp: {
      auto it = pending_resolves_.find(resp->request_id);
      if (it == pending_resolves_.end()) {
        return;
      }
      auto cb = std::move(it->second);
      pending_resolves_.erase(it);
      if (resp->ok) {
        cache_->Insert(resp->xlat);
      } else {
        ++stats_.translate_faults;
      }
      if (cb) {
        cb(resp->xlat, resp->ok);
      }
      return;
    }
    case SwitchMemMsg::Kind::kCommitAck: {
      auto it = pending_commits_.find(resp->request_id);
      if (it == pending_commits_.end()) {
        return;
      }
      auto cb = std::move(it->second);
      pending_commits_.erase(it);
      if (resp->ok) {
        cache_->Insert(resp->xlat);  // the committer learns the new placement
      }
      if (cb) {
        cb(resp->ok);
      }
      return;
    }
    case SwitchMemMsg::Kind::kInvalidate: {
      ++stats_.invalidates_received;
      cache_->Invalidate(resp->xlat.vbase);
      SwitchMemMsg ack;
      ack.kind = SwitchMemMsg::Kind::kInvalidateAck;
      ack.xlat.vbase = resp->xlat.vbase;
      Send(ack);
      return;
    }
    default:
      return;
  }
}

void SwitchMemClient::Send(const SwitchMemMsg& msg) {
  dispatcher_->adapter()->SendMessage(agent_->fabric_id(), Channel::kControl, Opcode::kMsg,
                                      MakeTag(kSvcSwitchMem, msg.request_id),
                                      config_.ctrl_msg_bytes,
                                      std::make_shared<SwitchMemMsg>(msg));
}

}  // namespace unifab
