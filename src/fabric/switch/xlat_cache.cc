#include "src/fabric/switch/xlat_cache.h"

namespace unifab {

void TranslationCacheStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "lookups", [this] { return lookups; });
  group.AddCounterFn(prefix + "hits", [this] { return hits; });
  group.AddCounterFn(prefix + "misses", [this] { return misses; });
  group.AddCounterFn(prefix + "insertions", [this] { return insertions; });
  group.AddCounterFn(prefix + "evictions", [this] { return evictions; });
  group.AddCounterFn(prefix + "invalidations", [this] { return invalidations; });
  group.AddCounterFn(prefix + "spurious_invalidations",
                     [this] { return spurious_invalidations; });
}

const Translation* TranslationCache::Lookup(std::uint64_t vaddr) {
  ++stats_.lookups;
  // The covering range, if any, is the last one starting at or below vaddr.
  auto it = entries_.upper_bound(vaddr);
  if (it != entries_.begin()) {
    --it;
    if (it->second.xlat.Covers(vaddr)) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return &it->second.xlat;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void TranslationCache::Insert(const Translation& xlat) {
  auto it = entries_.find(xlat.vbase);
  if (it != entries_.end()) {
    // Refresh in place (a commit ack carries the range's new placement).
    it->second.xlat = xlat;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    ++stats_.insertions;
    return;
  }
  if (entries_.size() >= config_.capacity && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(xlat.vbase);
  entries_.emplace(xlat.vbase, Entry{xlat, lru_.begin()});
  ++stats_.insertions;
}

bool TranslationCache::Invalidate(std::uint64_t vbase) {
  auto it = entries_.find(vbase);
  if (it == entries_.end()) {
    ++stats_.spurious_invalidations;
    return false;
  }
  lru_.erase(it->second.lru);
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

}  // namespace unifab
