// Switch-resident memory-control agent (ROADMAP open item 2).
//
// The paper's fabric-centric view argues resource management belongs *in*
// the fabric; MIND (PAPERS.md) shows address translation and migration
// bookkeeping can run in the switch itself. This module models that agent:
// like the central arbiter it is a programmable service on a dedicated
// lightweight switch-attached adapter, speaking on the Channel::kControl
// virtual channel. It owns
//   * the authoritative range map: fabric-virtual range -> (node, address,
//     version) for every heap object registered with it;
//   * per-range sharer sets: which initiator adapters were served a
//     translation (and so may cache it, xlat_cache.h);
//   * the migration-commit protocol: a commit bumps the range's version,
//     invalidates every cached copy, and acks the committer only after all
//     invalidation acks arrive — the source block of a migration is not
//     reusable before that ack, because a cached stale translation could
//     still route reads at it.
//
// Range registration/release piggyback on the allocation path (the
// initiator already pays that round trip) and are modeled untimed; the
// timed paths are translate misses, commits, and invalidations.

#ifndef SRC_FABRIC_SWITCH_MEM_AGENT_H_
#define SRC_FABRIC_SWITCH_MEM_AGENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/switch/xlat_cache.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"

namespace unifab {

// Wire format for switch-mem control messages (rides Channel::kControl).
struct SwitchMemMsg {
  enum class Kind : std::uint8_t {
    kTranslate,      // client -> agent: resolve vaddr
    kTranslateResp,  // agent -> client: xlat (ok) or fault (!ok)
    kCommit,         // client -> agent: flip xlat.vbase to (node, addr)
    kCommitAck,      // agent -> client: committed (ok) after caches clean
    kInvalidate,     // agent -> client: drop cached xlat.vbase
    kInvalidateAck,  // client -> agent: dropped
  };
  Kind kind = Kind::kTranslate;
  std::uint64_t request_id = 0;
  std::uint64_t vaddr = 0;  // kTranslate only
  Translation xlat;
  bool ok = false;
};

struct SwitchMemConfig {
  std::uint32_t ctrl_msg_bytes = 64;     // one control flit per message
  Tick lookup_latency = FromNs(60.0);    // switch-SRAM range walk
  Tick commit_latency = FromNs(90.0);    // version bump + sharer walk
};

struct SwitchMemStats {
  std::uint64_t registers = 0;
  std::uint64_t releases = 0;
  std::uint64_t translations = 0;        // translate requests served
  std::uint64_t translate_faults = 0;    // lookup missed every live range
  std::uint64_t commits = 0;
  std::uint64_t commit_rejects = 0;      // unknown/dying range or commit race
  std::uint64_t invalidations_sent = 0;
  std::uint64_t invalidation_acks = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class SwitchMemClient;

// Server side. Attach to a MessageDispatcher whose adapter hangs off a
// fabric switch (the runtime provisions a dedicated lightweight adapter,
// same pattern as the arbiter).
class SwitchMemAgent {
 public:
  SwitchMemAgent(Engine* engine, const SwitchMemConfig& config, MessageDispatcher* dispatcher);

  // Untimed control-plane range management (allocation-path piggyback).
  // vbase values are never reused (the heap bumps a monotonic va cursor),
  // so a released range can linger in a dying state until its cached
  // copies are invalidated without colliding with a re-registration.
  void RegisterRange(std::uint64_t vbase, std::uint64_t bytes, PbrId node, std::uint64_t addr);
  void ReleaseRange(std::uint64_t vbase);

  // Authoritative untimed lookup (tests, audits). bytes == 0 on miss.
  Translation Lookup(std::uint64_t vaddr) const;

  // Audit wiring: lets the conservation/staleness sweeps walk every
  // initiator cache. Read-only at sweep time.
  void AttachClientForAudit(SwitchMemClient* client) { audit_clients_.push_back(client); }

  std::size_t num_ranges() const { return ranges_.size(); }
  std::size_t pending_invalidations() const { return pending_invals_.size(); }
  const SwitchMemStats& stats() const { return stats_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }

 private:
  struct Range {
    Translation xlat;
    bool dying = false;       // released; erased once all invalidation acks land
    std::set<PbrId> sharers;  // clients served this translation (may over-remember)
  };

  struct PendingCommit {
    std::uint64_t request_id = 0;
    PbrId committer = kInvalidPbrId;
    std::size_t acks_outstanding = 0;
  };

  void HandleMessage(const FabricMessage& msg);
  void HandleTranslate(PbrId src, const SwitchMemMsg& m);
  void HandleCommit(PbrId src, const SwitchMemMsg& m);
  void HandleInvalidateAck(PbrId src, const SwitchMemMsg& m);
  void SendInvalidate(PbrId dst, const Translation& xlat);
  void Send(PbrId dst, const SwitchMemMsg& msg);
  // Erases a dying range once nothing references it anymore.
  void MaybeReapRange(std::uint64_t vbase);
  bool HasPendingInvals(std::uint64_t vbase) const;

  Engine* engine_;
  SwitchMemConfig config_;
  MessageDispatcher* dispatcher_;
  std::map<std::uint64_t, Range> ranges_;                  // vbase -> range
  std::map<std::uint64_t, PendingCommit> pending_commits_; // vbase -> commit
  // (vbase, client) pairs with an invalidation in flight: the staleness
  // audit admits exactly these as transiently stale.
  std::set<std::pair<std::uint64_t, PbrId>> pending_invals_;
  std::vector<SwitchMemClient*> audit_clients_;
  SwitchMemStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;  // after the state the checks read

  friend class AuditTestPeer;
};

struct SwitchMemClientStats {
  std::uint64_t resolves = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t translate_requests = 0;
  std::uint64_t translate_faults = 0;
  std::uint64_t commit_requests = 0;
  std::uint64_t invalidates_received = 0;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Client side: one per initiator (host). Resolves fabric-virtual addresses
// through the adapter's translation cache, falling back to a control-VC
// round trip to the agent; answers the agent's invalidations; and drives
// migration commits on the heap's behalf.
class SwitchMemClient {
 public:
  // `cache` is the adapter-resident translation cache (the adapter owns
  // it; see AdapterBase::EnableTranslationCache). `agent` is only used for
  // the untimed register/release forwarders and audit introspection; all
  // timed traffic goes through the fabric.
  SwitchMemClient(Engine* engine, const SwitchMemConfig& config, MessageDispatcher* dispatcher,
                  SwitchMemAgent* agent, TranslationCache* cache);

  using ResolveCb = std::function<void(const Translation& xlat, bool ok)>;

  // Resolves `vaddr`: cache hits complete after the cache's hit latency,
  // misses after a translate round trip (installing the entry). `ok` is
  // false when no live range covers vaddr (released underneath an in-flight
  // access).
  void Resolve(std::uint64_t vaddr, ResolveCb cb);

  // Asks the agent to flip xlat.vbase to the new placement. `cb(true)`
  // fires only after every cached copy of the old translation has been
  // invalidated and acknowledged; the caller may then reuse the old block.
  void Commit(const Translation& next, std::function<void(bool ok)> cb);

  // Untimed allocation-path forwarders.
  void RegisterRange(std::uint64_t vbase, std::uint64_t bytes, PbrId node, std::uint64_t addr) {
    agent_->RegisterRange(vbase, bytes, node, addr);
  }
  void ReleaseRange(std::uint64_t vbase) { agent_->ReleaseRange(vbase); }

  TranslationCache* cache() { return cache_; }
  const TranslationCache* cache() const { return cache_; }
  SwitchMemAgent* agent() { return agent_; }
  PbrId id() const { return dispatcher_->adapter()->id(); }
  const SwitchMemClientStats& stats() const { return stats_; }

 private:
  void HandleMessage(const FabricMessage& msg);
  void Send(const SwitchMemMsg& msg);

  Engine* engine_;
  SwitchMemConfig config_;
  MessageDispatcher* dispatcher_;
  SwitchMemAgent* agent_;
  TranslationCache* cache_;
  std::uint64_t next_request_ = 1;
  std::unordered_map<std::uint64_t, ResolveCb> pending_resolves_;
  std::unordered_map<std::uint64_t, std::function<void(bool)>> pending_commits_;
  SwitchMemClientStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_FABRIC_SWITCH_MEM_AGENT_H_
