// DeACT-style translation cache at a fabric adapter (PAPERS.md: DeACT).
//
// With switch-resident memory control, initiators address fabric objects by
// fabric-virtual ranges; the switch-resident agent (mem_agent.h) owns the
// authoritative range map. Each initiator-side adapter keeps a small cache
// of recently served translations so the common case avoids the control-VC
// round trip. Entries are versioned: the agent bumps a range's version on
// every migration commit and explicitly invalidates cached copies, so a
// cached translation is either current or provably inside an invalidation
// handshake — never silently stale (the agent's auditor checks exactly
// this).

#ifndef SRC_FABRIC_SWITCH_XLAT_CACHE_H_
#define SRC_FABRIC_SWITCH_XLAT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "src/fabric/flit.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace unifab {

// One range translation: fabric-virtual [vbase, vbase + bytes) currently
// lives at `addr` (host address-map view) on memory node `node`.
struct Translation {
  std::uint64_t vbase = 0;
  std::uint64_t bytes = 0;
  PbrId node = kInvalidPbrId;
  std::uint64_t addr = 0;
  std::uint64_t version = 0;

  bool Covers(std::uint64_t vaddr) const {
    return vaddr >= vbase && vaddr - vbase < bytes;
  }
};

struct TranslationCacheConfig {
  std::size_t capacity = 1024;     // entries (ranges); LRU-evicted beyond this
  Tick hit_latency = FromNs(8.0);  // on-adapter SRAM lookup
};

struct TranslationCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;           // entries dropped by agent message
  std::uint64_t spurious_invalidations = 0;  // invalidate for an absent entry

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class TranslationCache {
 public:
  explicit TranslationCache(const TranslationCacheConfig& config) : config_(config) {}

  // The cached translation covering `vaddr`, or nullptr on miss. Hits move
  // the entry to the LRU front.
  const Translation* Lookup(std::uint64_t vaddr);

  // Installs (or refreshes) the entry keyed by xlat.vbase, evicting the LRU
  // entry when full.
  void Insert(const Translation& xlat);

  // Drops the entry for `vbase`; true when one existed.
  bool Invalidate(std::uint64_t vbase);

  std::size_t size() const { return entries_.size(); }
  const TranslationCacheConfig& config() const { return config_; }
  const TranslationCacheStats& stats() const { return stats_; }

  // Deterministic (vbase-ordered) iteration for the agent's audit sweeps.
  template <typename F>
  void ForEach(F&& fn) const {
    for (const auto& [vbase, entry] : entries_) {
      fn(entry.xlat);
    }
  }

 private:
  struct Entry {
    Translation xlat;
    std::list<std::uint64_t>::iterator lru;  // position in lru_ (front = hottest)
  };

  std::map<std::uint64_t, Entry> entries_;  // vbase -> entry; ordered lookup
  std::list<std::uint64_t> lru_;
  TranslationCacheConfig config_;
  TranslationCacheStats stats_;
};

}  // namespace unifab

#endif  // SRC_FABRIC_SWITCH_XLAT_CACHE_H_
