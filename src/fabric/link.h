// Physical + link layer of the simulated memory fabric.
//
// A Link is a full-duplex point-to-point connection between two fabric
// components. Each direction implements:
//   * physical layer: per-flit serialization time derived from lane count and
//     transfer rate, plus fixed propagation delay (paper §2.1 Flex Bus);
//   * link layer: per-virtual-channel credit-based flow control with a
//     credit update protocol and optional credit overcommitment, and an
//     ack/replay reliability scheme driven by an injectable flit error rate.
//
// Credits model receiver buffer slots: the sender spends one credit per flit
// and the receiver returns it (after `credit_return_latency`) once the flit
// leaves its input buffer. This is the mechanism whose pathologies §3
// (Difference #3) dissects and the central arbiter (DP#4) manages.

#ifndef SRC_FABRIC_LINK_H_
#define SRC_FABRIC_LINK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fabric/flit.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace unifab {

// Anything that can sit at the end of a link.
class FlitReceiver {
 public:
  virtual ~FlitReceiver() = default;

  // Delivers a flit arriving on the receiver's local port `port`. The
  // receiver owns an input-buffer slot for the flit and must call
  // LinkEndpoint::ReturnCredit on that port's endpoint once the slot frees.
  virtual void ReceiveFlit(const Flit& flit, int port) = 0;

  // Invoked when the link attached at `port` changes epoch: `link_up` false
  // on Fail() (everything in flight died), true on Recover(). Adapters use
  // the down transition to fail outstanding MSHR transactions whose
  // responses died with the old epoch instead of waiting forever.
  virtual void OnLinkEpochChange(int port, bool link_up) {
    (void)port;
    (void)link_up;
  }
};

struct LinkConfig {
  // Physical layer. Effective byte rate = transfer rate * lanes / 8, e.g.
  // 32 GT/s x16 ~ 64 GB/s (encoding overhead folded into the rate).
  double gigatransfers_per_sec = 32.0;
  int lanes = 16;  // bifurcation: x4 / x8 / x16
  FlitMode flit_mode = FlitMode::k68B;
  Tick propagation = FromNs(10.0);

  // Link layer.
  std::uint32_t credits_per_vc = 8;      // receiver buffer slots per VC
  double credit_overcommit = 1.0;        // advertised = slots * overcommit
  Tick credit_return_latency = FromNs(10.0);
  std::uint32_t tx_queue_depth = 64;     // per-VC staging queue at the sender

  // Reliability: probability that a transmitted flit is corrupted and must
  // be replayed after `replay_timeout`.
  double flit_error_rate = 0.0;
  Tick replay_timeout = FromNs(100.0);

  // Strict priority for the dedicated control VC (FCC DP#4). When false the
  // control channel arbitrates round-robin with data channels.
  bool control_priority = true;

  // Batch service: one sender wakeup commits up to this many back-to-back
  // flits onto the wire as a train (one wire-free event per train instead of
  // per flit). Each flit still serializes, propagates, and consumes credit
  // at exactly the tick it would have with per-flit service, so simulated
  // timing is unchanged — only the event count drops. 1 = per-flit service.
  std::uint32_t max_burst_flits = 8;

  // Payload bytes per second across the wire.
  double BytesPerSec() const { return gigatransfers_per_sec * 1e9 * lanes / 8.0; }

  // Time to put one flit of this mode on the wire.
  Tick SerializeTime() const {
    return SerializationDelay(FlitWireBytes(flit_mode), BytesPerSec() / 1e9);
  }
};

struct LinkStats {
  std::uint64_t flits_accepted = 0;   // unique flits accepted by Send()
  std::uint64_t flits_sent = 0;       // wire transmissions (counts replays)
  std::uint64_t flits_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t replays = 0;
  std::uint64_t dropped_on_fail = 0;  // queued + in-flight flits lost to Fail()
  std::uint64_t credit_stalls = 0;    // times a send had to wait for credits
  Tick busy_time = 0;                 // wire occupancy

  // At quiescence with empty tx queues the accounting closes:
  //   flits_accepted == flits_delivered + dropped_on_fail.

  // Registers live-value instruments (named `prefix` + field) reading this
  // struct; the group must not outlive it.
  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class Link;

// The sending/receiving interface one component holds for one of its ports.
class LinkEndpoint {
 public:
  LinkEndpoint(Link* link, int side) : link_(link), side_(side) {}

  // Enqueues a flit for transmission. Returns false when the per-VC staging
  // queue is full (caller must retry when DrainCallback fires).
  bool Send(const Flit& flit);

  // True if Send would accept a flit on this channel.
  bool CanSend(Channel channel) const;

  // Returns one input-buffer credit for `channel` to the remote sender.
  void ReturnCredit(Channel channel);

  // Attaches the component receiving flits from this endpoint, with the
  // port index it wants reported.
  void Bind(FlitReceiver* receiver, int port);

  // Invoked whenever tx-queue space or credits free up, so the component can
  // push more flits.
  void SetDrainCallback(std::function<void()> cb);

  // Credits currently available to *send* on this endpoint's direction.
  std::uint32_t CreditsAvailable(Channel channel) const;

  std::size_t QueueDepth(Channel channel) const;

  const LinkStats& stats() const;
  const LinkConfig& config() const;

  int side() const { return side_; }
  FlitReceiver* receiver() const;
  int port() const;

 private:
  friend class Link;
  Link* link_;
  int side_;  // 0 or 1
};

// A full-duplex link. Construct via Link::Create and wire both endpoints.
class Link {
 public:
  Link(Engine* engine, const LinkConfig& config, std::uint64_t seed, std::string name);
  virtual ~Link() = default;

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  LinkEndpoint& end(int side) { return endpoints_[side]; }
  const LinkConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  // Declares which engine drives the component on each side. Defaults to
  // the constructor engine for both. When the sides differ this link is a
  // fabric-domain boundary: flit deliveries and credit returns crossing it
  // become cross-shard events, and MinCrossLatency() bounds the sharded
  // engine's conservative lookahead. Call during wiring only.
  void SetSideEngines(Engine* side0, Engine* side1) {
    side_eng_[0] = side0 != nullptr ? side0 : engine_;
    side_eng_[1] = side1 != nullptr ? side1 : engine_;
  }
  Engine* eng(int side) const { return side_eng_[side]; }
  bool cross_engine() const { return side_eng_[0] != side_eng_[1]; }

  // The minimum simulated delay this link imposes on any effect one side
  // can have on the other: a flit delivery costs serialize + propagation; a
  // credit return costs credit_return_latency.
  Tick MinCrossLatency() const {
    const Tick delivery = config_.SerializeTime() + config_.propagation;
    return delivery < config_.credit_return_latency ? delivery : config_.credit_return_latency;
  }

  // Failure injection: a failed link refuses new sends and silently drops
  // everything in flight (flits, pending credit returns) — the passive
  // failure behavior of §3 Difference #5 applied to the interconnect.
  // Recover() restores the wire with fresh credits; upper layers must
  // re-drive (or re-route around) whatever was lost.
  //
  // Both mutate the whole link (both directions, both attached components),
  // so when called from inside a running sharded window they defer
  // themselves to a global barrier event at the same tick.
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  const LinkStats& stats(int sender_side) const { return dirs_[sender_side].stats; }

  // Per-direction accounting snapshot for derived links and tests. At any
  // event boundary accepted == delivered + dropped_on_fail + in_flight +
  // queued — the invariant the flit_conservation audit check enforces.
  struct DirAccounting {
    std::uint64_t accepted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_on_fail = 0;
    std::uint64_t in_flight = 0;  // on the wire or awaiting replay
    std::uint64_t queued = 0;     // staged in per-VC tx queues
  };
  DirAccounting Accounting(int sender_side) const;

 private:
  friend class LinkEndpoint;

  struct Direction {
    // Sender-side state for one direction (side -> 1-side). On a
    // cross-engine link everything here is touched only from the sender
    // side's engine; the far end sees flits via events on its own engine.
    std::array<std::deque<Flit>, kNumChannels> tx_queues;
    std::array<std::uint32_t, kNumChannels> credits{};
    std::uint32_t in_flight = 0;  // flits serialized/propagating/awaiting replay
    bool wire_busy = false;
    int rr_next_vc = 0;  // round-robin pointer over VCs
    LinkStats stats;
    FlitReceiver* receiver = nullptr;  // component at the far end
    int receiver_port = 0;
    std::function<void()> drain_cb;
    std::vector<std::pair<Flit, bool>> train;  // TryTransmit pick scratch

    // Credit returns travelling back to this sender, coalesced so all
    // credits freed at the same tick ride one event. Entries stay in
    // arrival (= due) order; Fail/Recover clear them alongside bumping the
    // epoch that orphans the matching scheduled flushes.
    struct CreditBatch {
      Tick due;
      std::uint32_t count;
    };
    std::array<std::deque<CreditBatch>, kNumChannels> credit_returns;
  };

  bool Send(int side, const Flit& flit);
  bool CanSend(int side, Channel channel) const;
  void ReturnCredit(int receiver_side, Channel channel);
  void TryTransmit(int side);
  void FinishTransmit(int side, const Flit& flit);
  void NotifyDrain(int side);
  void NotifyEpochChange(bool link_up);
  int PickVc(const Direction& dir) const;

  Engine* engine_;
  Engine* side_eng_[2];  // engine driving the component on each side
  LinkConfig config_;
  std::string name_;
  // One error-injection stream per direction, so the flit sequence each
  // sender sees is deterministic even when the two sides run on different
  // shards (a shared stream would interleave by wall-clock schedule).
  Rng dir_rng_[2];
  bool failed_ = false;
  std::uint64_t epoch_ = 0;  // bumped on Fail so in-flight deliveries drop
  // Per-VC credits advertised to each sender, validated once at construction
  // (credits_per_vc * credit_overcommit must not round to zero); Recover()
  // re-fills from this same value.
  std::uint32_t advertised_credits_ = 0;
  Direction dirs_[2];        // dirs_[s] = state for traffic sent by side s
  LinkEndpoint endpoints_[2] = {LinkEndpoint(this, 0), LinkEndpoint(this, 1)};
  MetricGroup metrics_;  // after dirs_: unregisters before the stats die
  AuditScope audit_;     // ditto for the invariant checks

  friend class AuditTestPeer;
};

}  // namespace unifab

#endif  // SRC_FABRIC_LINK_H_
