#include "src/fabric/registry.h"

#include <iomanip>
#include <sstream>

namespace unifab {

const std::vector<FabricSpec>& CommodityFabrics() {
  static const std::vector<FabricSpec> kFabrics = {
      {"Gen-Z", "HPE/Gen-Z Consortium", "2016-2021", "Gen-Z 1.0/1.1",
       "Gen-Z Media Kit; Gen-Z ChipSet for ExtraScale Fabric", true},
      {"CAPI/OpenCAPI", "IBM/OpenCAPI Consortium", "2014-2022",
       "CAPI 1.0/2.0, OpenCAPI 3.0/4.0", "BlueLink in POWER9", true},
      {"CCIX", "Xilinx/CCIX Consortium", "2016-now", "CCIX 1.0/1.1/2.0",
       "CMN-700 Coherent Mesh Network", false},
      {"CXL", "Intel/CXL Consortium", "2019-now", "CXL 1.0/1.1/2.0/3.0",
       "Omega Fabric; Leo Memory Platform", false},
  };
  return kFabrics;
}

const FabricSpec* FindFabric(const std::string& interconnect) {
  for (const auto& spec : CommodityFabrics()) {
    if (spec.interconnect == interconnect) {
      return &spec;
    }
  }
  return nullptr;
}

std::string FabricTableToString() {
  std::ostringstream out;
  out << std::left << std::setw(16) << "Interconnect" << std::setw(28) << "Vendor" << std::setw(12)
      << "Active" << std::setw(32) << "Specification" << "Product Demonstration\n";
  out << std::string(124, '-') << "\n";
  for (const auto& spec : CommodityFabrics()) {
    out << std::left << std::setw(16) << spec.interconnect << std::setw(28) << spec.vendor
        << std::setw(12) << spec.active_development << std::setw(32) << spec.specifications
        << spec.product_demonstration << "\n";
  }
  return out.str();
}

}  // namespace unifab
