#include "src/fabric/bridge.h"

#include <utility>

namespace unifab {

LinkConfig BridgeConfig::ToLinkConfig() const {
  LinkConfig cfg;
  // BytesPerSec() = gigatransfers * 1e9 * lanes / 8; with lanes = 8 the
  // transfer rate carries the Ethernet byte rate directly: N Gb/s wire
  // rate == N/8 GB/s of frames.
  cfg.gigatransfers_per_sec = ethernet_gbps / 8.0;
  cfg.lanes = 8;
  cfg.flit_mode = FlitMode::k256B;  // Ethernet frames, not 68B CXL flits
  cfg.propagation = propagation;
  cfg.credits_per_vc = window_frames;
  cfg.credit_overcommit = 1.0;
  cfg.credit_return_latency = ack_latency;
  cfg.tx_queue_depth = tx_queue_depth;
  cfg.flit_error_rate = frame_loss_rate;
  cfg.replay_timeout = retransmit_timeout;
  cfg.control_priority = true;
  cfg.max_burst_flits = max_burst_frames;
  return cfg;
}

BridgeLink::BridgeLink(Engine* engine, const BridgeConfig& config, std::uint64_t seed,
                       std::string name)
    : Link(engine, config.ToLinkConfig(), seed, std::move(name)), bridge_(config) {
  bridge_audit_ = AuditScope(&engine->audit(), "fabric/bridge/" + this->name());
  // Same conservation law as the underlying link, restated in bridge terms:
  // every frame the bridge accepted is delivered, dropped by a bridge
  // failure, awaiting (re)transmission on the wire, or staged to send.
  bridge_audit_.AddCheck("flits_conserved", [this]() -> std::string {
    for (int s = 0; s < 2; ++s) {
      const DirAccounting a = Accounting(s);
      if (a.accepted != a.delivered + a.dropped_on_fail + a.in_flight + a.queued) {
        return "dir" + std::to_string(s) + ": accepted=" + std::to_string(a.accepted) +
               " != delivered(" + std::to_string(a.delivered) + ") + dropped(" +
               std::to_string(a.dropped_on_fail) + ") + retransmit_pending(" +
               std::to_string(a.in_flight) + ") + queued(" + std::to_string(a.queued) + ")";
      }
    }
    return {};
  });
}

}  // namespace unifab
