// Demultiplexes runtime messages arriving at one adapter across services.
//
// Several protocol engines (CC-NUMA directory ports, eTrans agents, the
// central arbiter, the idempotent-task runtime, scalable functions) share a
// host's single FHA. Each service claims a service id; message tags encode
// the id in the top byte and the dispatcher routes accordingly.

#ifndef SRC_FABRIC_DISPATCH_H_
#define SRC_FABRIC_DISPATCH_H_

#include <array>
#include <cstdint>

#include "src/fabric/adapter.h"

namespace unifab {

// Well-known service ids.
inline constexpr std::uint8_t kSvcCcNuma = 1;
inline constexpr std::uint8_t kSvcETrans = 2;
inline constexpr std::uint8_t kSvcArbiter = 3;
inline constexpr std::uint8_t kSvcITask = 4;
inline constexpr std::uint8_t kSvcScalableFunc = 5;
inline constexpr std::uint8_t kSvcSwitchMem = 6;
inline constexpr std::uint8_t kSvcCoherent = 7;
inline constexpr std::uint8_t kSvcUser = 32;  // first id free for applications

constexpr std::uint64_t MakeTag(std::uint8_t service, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(service) << 56) | (payload & 0x00FFFFFFFFFFFFFFULL);
}
constexpr std::uint8_t ServiceOf(std::uint64_t tag) { return static_cast<std::uint8_t>(tag >> 56); }
constexpr std::uint64_t TagPayload(std::uint64_t tag) { return tag & 0x00FFFFFFFFFFFFFFULL; }

class MessageDispatcher {
 public:
  // Installs itself as `adapter`'s message handler.
  explicit MessageDispatcher(AdapterBase* adapter) : adapter_(adapter) {
    adapter_->SetMessageHandler([this](const FabricMessage& msg) { Route(msg); });
  }

  MessageDispatcher(const MessageDispatcher&) = delete;
  MessageDispatcher& operator=(const MessageDispatcher&) = delete;

  void RegisterService(std::uint8_t service, MessageHandler handler) {
    handlers_[service] = std::move(handler);
  }

  AdapterBase* adapter() const { return adapter_; }

  // Convenience send that stamps the service id into the tag.
  void Send(PbrId dst, std::uint8_t service, std::uint64_t payload_tag, std::uint32_t bytes,
            std::shared_ptr<void> body, Channel channel = Channel::kMem) {
    adapter_->SendMessage(dst, channel, Opcode::kMsg, MakeTag(service, payload_tag), bytes,
                          std::move(body));
  }

 private:
  void Route(const FabricMessage& msg) {
    const auto& handler = handlers_[ServiceOf(msg.tag)];
    if (handler) {
      handler(msg);
    }
  }

  AdapterBase* adapter_;
  std::array<MessageHandler, 256> handlers_;
};

}  // namespace unifab

#endif  // SRC_FABRIC_DISPATCH_H_
