#include "src/fabric/flit.h"

#include <sstream>

namespace unifab {

const char* ChannelName(Channel c) {
  switch (c) {
    case Channel::kIo:
      return "CXL.io";
    case Channel::kMem:
      return "CXL.mem";
    case Channel::kCache:
      return "CXL.cache";
    case Channel::kControl:
      return "ctrl";
  }
  return "?";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kMemRd:
      return "MemRd";
    case Opcode::kMemRdData:
      return "MemRdData";
    case Opcode::kMemWr:
      return "MemWr";
    case Opcode::kMemWrAck:
      return "MemWrAck";
    case Opcode::kSnpInv:
      return "SnpInv";
    case Opcode::kSnpData:
      return "SnpData";
    case Opcode::kSnpResp:
      return "SnpResp";
    case Opcode::kCfgRd:
      return "CfgRd";
    case Opcode::kCfgWr:
      return "CfgWr";
    case Opcode::kCfgResp:
      return "CfgResp";
    case Opcode::kMsg:
      return "Msg";
    case Opcode::kCreditQuery:
      return "CreditQuery";
    case Opcode::kCreditGrant:
      return "CreditGrant";
  }
  return "?";
}

bool IsRequest(Opcode op) {
  switch (op) {
    case Opcode::kMemRd:
    case Opcode::kMemWr:
    case Opcode::kSnpInv:
    case Opcode::kSnpData:
    case Opcode::kCfgRd:
    case Opcode::kCfgWr:
    case Opcode::kMsg:
    case Opcode::kCreditQuery:
      return true;
    default:
      return false;
  }
}

bool IsResponse(Opcode op) { return !IsRequest(op); }

std::string Flit::ToString() const {
  std::ostringstream out;
  out << OpcodeName(opcode) << "(txn=" << txn_id << " " << seq + 1 << "/" << total << " "
      << ChannelName(channel) << " src=" << src << " dst=" << dst << " addr=0x" << std::hex << addr
      << std::dec << " payload=" << payload_bytes << "B)";
  return out.str();
}

}  // namespace unifab
