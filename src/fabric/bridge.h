// Inter-pod Ethernet bridge link (DESIGN.md §11).
//
// DFabric-style hierarchical scale-out joins CXL pods with an Ethernet
// trunk: microsecond-class propagation instead of nanoseconds, frame loss
// with go-back retransmit instead of near-lossless flit replay, and a
// window-based flow-control domain of its own (the bridge's rx window is
// not part of any pod's CXL credit pool). BridgeLink models that hop by
// mapping bridge vocabulary (frames, windows, retransmit) onto the audited
// Link flit pipeline, so everything built on links — routing, fault
// injection, sharded cross-engine delivery, conservation audits — works on
// bridges unchanged, while the bridge keeps its own accounting and audit
// scope under fabric/bridge/<name>.

#ifndef SRC_FABRIC_BRIDGE_H_
#define SRC_FABRIC_BRIDGE_H_

#include <cstdint>
#include <string>

#include "src/fabric/link.h"
#include "src/sim/time.h"

namespace unifab {

// Knobs of the Ethernet hop between two pod gateway switches. Deliberately
// a different vocabulary from LinkConfig; ToLinkConfig() is the mapping.
struct BridgeConfig {
  double ethernet_gbps = 100.0;    // trunk wire rate
  Tick propagation = FromUs(1.0);  // one-way latency (ToR hops + cabling)

  // Reliability: probability a frame is lost or corrupted in transit, and
  // the timeout after which the sender retransmits it.
  double frame_loss_rate = 1e-4;
  Tick retransmit_timeout = FromUs(5.0);

  // Flow control: the per-VC window of frames the far side will buffer,
  // and how long a window credit takes to travel back.
  std::uint32_t window_frames = 64;
  Tick ack_latency = FromUs(1.0);

  std::uint32_t tx_queue_depth = 256;  // per-VC staging queue at the sender
  std::uint32_t max_burst_frames = 16;

  // The equivalent link-layer configuration: 256B frames, byte rate =
  // ethernet_gbps / 8, loss -> flit_error_rate, retransmit -> replay,
  // window -> credits, ack latency -> credit return latency.
  LinkConfig ToLinkConfig() const;
};

// The Ethernet inter-pod hop. A Link in every structural respect (routing,
// endpoints, Fail/Recover, cross-engine delivery) plus a bridge-scoped
// conservation audit: fabric/bridge/<name>/flits_conserved requires
// accepted == delivered + dropped + retransmit-pending + queued per
// direction at every sweep.
class BridgeLink : public Link {
 public:
  BridgeLink(Engine* engine, const BridgeConfig& config, std::uint64_t seed, std::string name);

  const BridgeConfig& bridge_config() const { return bridge_; }

 private:
  BridgeConfig bridge_;
  AuditScope bridge_audit_;
};

}  // namespace unifab

#endif  // SRC_FABRIC_BRIDGE_H_
