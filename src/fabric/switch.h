// Fabric switch model: PBR/HBR routing, input buffering, pluggable
// arbitration, and per-input credit allocation.
//
// The switch is deliberately configurable enough to reproduce the credit-
// based flow-control pathologies of paper §3 (Difference #3):
//   * credit allocation: an exponential ramp-up allocator that lets heavy
//     input ports accumulate forwarding share (vs a static equal split);
//   * credit-flow scheduling: FIFO arrival-order service that ignores credit
//     state (vs weighted and arbiter-directed priority service);
//   * head-of-line blocking: single-FIFO input queues (vs virtual output
//     queues).

#ifndef SRC_FABRIC_SWITCH_H_
#define SRC_FABRIC_SWITCH_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/flit.h"
#include "src/fabric/link.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// How an output port picks among competing input candidates.
enum class SwitchArbitration {
  kFifo,        // earliest arrival first, credit-agnostic (baseline)
  kRoundRobin,  // rotate across input ports
  kWeighted,    // weighted by the credit allocator's per-input share
  kPriority,    // strict priority by source PBR id (set by the central arbiter)
};

// How forwarding share (the switch's internal credits) is split across
// input ports.
enum class CreditAllocPolicy {
  kStatic,             // equal share for every input
  kExponentialRampUp,  // utilization-driven ramp-up (the de facto scheme, §3)
};

struct SwitchConfig {
  // Per-flit routing + crossbar traversal latency (FabreX: <100 ns/port).
  Tick port_latency = FromNs(90.0);

  // Input queueing discipline: one FIFO per input (false) exhibits
  // head-of-line blocking; per-output virtual queues (true) do not.
  bool virtual_output_queues = true;

  SwitchArbitration arbitration = SwitchArbitration::kRoundRobin;
  CreditAllocPolicy credit_alloc = CreditAllocPolicy::kStatic;

  // Exponential ramp-up parameters: every period, an input's weight doubles
  // when it kept its backlog nonempty and halves otherwise.
  Tick credit_realloc_period = FromNs(1000.0);
  double max_weight = 64.0;
  double min_weight = 1.0;
};

struct SwitchStats {
  std::uint64_t flits_forwarded = 0;
  std::uint64_t flits_dropped = 0;       // output link failed mid-crossbar, or
                                         // a post-reroute hairpin (route points
                                         // back out the arrival port)
  std::uint64_t hol_blocked_events = 0;  // head blocked while a later flit could go
  Summary queueing_ns;                   // input-buffer residency per flit

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class FabricSwitch : public FlitReceiver {
 public:
  FabricSwitch(Engine* engine, const SwitchConfig& config, std::string name);

  // Attaches a link endpoint as the next port. Returns the port index.
  int AttachPort(LinkEndpoint* endpoint);

  // Routing table management (normally driven by the FabricManager).
  void SetRoute(PbrId dst, int out_port);
  void SetDefaultRoute(int out_port);  // HBR escape route for foreign domains
  bool HasRoute(PbrId dst) const;
  int RouteFor(PbrId dst) const;  // -1 when unroutable
  // Drops all routes (exact and default); used by the fabric manager before
  // re-running discovery after a topology change or link failure.
  void ClearRoutes() {
    routes_.clear();
    default_route_ = -1;
  }

  // Arbiter-directed priorities (higher value = served first) for
  // SwitchArbitration::kPriority.
  void SetSourcePriority(PbrId src, int priority);

  // FlitReceiver:
  void ReceiveFlit(const Flit& flit, int port) override;

  const SwitchStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  double InputWeight(int port) const { return inputs_[port].weight; }

 private:
  struct QueuedFlit {
    Flit flit;
    int out_port;
    Tick arrival;
    std::uint64_t order;  // global enqueue order (tie-break of last resort)
  };

  // FIFO service order: earliest arrival tick first; same-tick arrivals are
  // ordered by flit identity (src, txn_id, seq) rather than by the enqueue
  // counter, so the winner does not depend on how the engine interleaved
  // same-tick deliveries across input ports. `order` only breaks the
  // (impossible for distinct flits) full-identity tie.
  static bool ArrivesBefore(const QueuedFlit& a, const QueuedFlit& b);

  struct InputPort {
    // Non-VOQ mode uses queues[0]; VOQ mode uses one queue per output port.
    std::vector<std::deque<QueuedFlit>> queues;
    double weight = 1.0;
    double deficit = 0.0;
    std::uint64_t forwarded_this_period = 0;
    bool had_backlog = false;
  };

  struct OutputPort {
    int rr_next_input = 0;
    // Tx-queue slots reserved by flits in flight across the crossbar, per
    // channel, so we never over-commit endpoint queues.
    std::uint32_t reserved[kNumChannels] = {0, 0, 0, 0};
  };

  void ScheduleArbitration();
  void Arbitrate();
  // Attempts to forward one flit to `out`. Returns true if a flit moved.
  bool ForwardOneTo(int out);
  // Picks the input whose head (for `out`) should win, or -1.
  int PickInput(int out);
  bool HeadFor(int input, int out, QueuedFlit** head);
  void PopHead(int input, int out);
  bool OutputCanAccept(int out, Channel channel) const;
  void ReallocateCredits();
  int PriorityOf(PbrId src) const;

  Engine* engine_;
  SwitchConfig config_;
  std::string name_;
  std::vector<LinkEndpoint*> ports_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  std::unordered_map<PbrId, int> routes_;
  std::unordered_map<PbrId, int> priorities_;
  int default_route_ = -1;
  Tick next_realloc_ = 0;
  bool arb_scheduled_ = false;
  std::uint64_t arrival_counter_ = 0;
  SwitchStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_FABRIC_SWITCH_H_
