#include "src/fabric/interconnect.h"

#include <cassert>
#include <deque>
#include <sstream>

namespace unifab {

FabricInterconnect::FabricInterconnect(Engine* engine, std::uint64_t seed)
    : engine_(engine), seed_(seed) {}

int FabricInterconnect::AddNode(FabricSwitch* sw, AdapterBase* adapter, std::uint16_t domain) {
  const int idx = static_cast<int>(nodes_.size());
  Node n;
  n.sw = sw;
  n.adapter = adapter;
  n.eng = component_engine();
  n.domain = domain;
  nodes_.push_back(std::move(n));
  node_index_[sw != nullptr ? static_cast<const void*>(sw) : static_cast<const void*>(adapter)] =
      idx;
  return idx;
}

int FabricInterconnect::NodeIndexOf(const void* component) const {
  auto it = node_index_.find(component);
  assert(it != node_index_.end() && "component not part of this fabric");
  return it->second;
}

PbrId FabricInterconnect::AllocatePbrId(std::uint16_t domain) {
  std::uint16_t& next = next_port_in_domain_[domain];
  assert(next <= kPbrIdMask && "domain PBR space exhausted (4096 edge ports)");
  return MakePbrId(domain, next++);
}

FabricSwitch* FabricInterconnect::AddSwitch(const SwitchConfig& config, const std::string& name,
                                            std::uint16_t domain) {
  switches_.push_back(std::make_unique<FabricSwitch>(component_engine(), config, name));
  FabricSwitch* sw = switches_.back().get();
  AddNode(sw, nullptr, domain);
  routed_ = false;
  return sw;
}

HostAdapter* FabricInterconnect::AddHostAdapter(const AdapterConfig& config,
                                                const std::string& name, std::uint16_t domain) {
  const PbrId id = AllocatePbrId(domain);
  auto adapter = std::make_unique<HostAdapter>(component_engine(), config, id, name);
  HostAdapter* raw = adapter.get();
  adapters_.push_back(std::move(adapter));
  AddNode(nullptr, raw, domain);
  by_id_[id] = raw;
  routed_ = false;
  return raw;
}

EndpointAdapter* FabricInterconnect::AddEndpointAdapter(const AdapterConfig& config,
                                                        const std::string& name,
                                                        FabricTarget* target,
                                                        std::uint16_t domain) {
  const PbrId id = AllocatePbrId(domain);
  auto adapter = std::make_unique<EndpointAdapter>(component_engine(), config, id, name, target);
  EndpointAdapter* raw = adapter.get();
  adapters_.push_back(std::move(adapter));
  AddNode(nullptr, raw, domain);
  by_id_[id] = raw;
  routed_ = false;
  return raw;
}

void FabricInterconnect::AddEdge(int a, int port_a, int b, int port_b, Link* link) {
  nodes_[a].edges.push_back(Edge{b, port_a, link});
  nodes_[b].edges.push_back(Edge{a, port_b, link});
}

void FabricInterconnect::BindLinkEngines(Link* link, int node_a, int node_b) {
  Engine* ea = nodes_[node_a].eng;
  Engine* eb = nodes_[node_b].eng;
  link->SetSideEngines(ea, eb);
  if (ea != eb && link->MinCrossLatency() < min_cross_latency_) {
    // This link is a shard boundary; its latency bounds how aggressively a
    // ShardedEngine may open lookahead windows.
    min_cross_latency_ = link->MinCrossLatency();
  }
}

Link* FabricInterconnect::Connect(FabricSwitch* a, FabricSwitch* b, const LinkConfig& config) {
  links_.push_back(std::make_unique<Link>(engine_, config, seed_ + ++link_counter_,
                                          a->name() + "<->" + b->name()));
  Link* link = links_.back().get();
  const int pa = a->AttachPort(&link->end(0));
  const int pb = b->AttachPort(&link->end(1));
  const int na = NodeIndexOf(a);
  const int nb = NodeIndexOf(b);
  AddEdge(na, pa, nb, pb, link);
  BindLinkEngines(link, na, nb);
  if (nodes_[na].domain != nodes_[nb].domain) {
    ++hbr_links_;
  }
  routed_ = false;
  return link;
}

BridgeLink* FabricInterconnect::ConnectBridge(FabricSwitch* a, FabricSwitch* b,
                                              const BridgeConfig& config) {
  links_.push_back(std::make_unique<BridgeLink>(engine_, config, seed_ + ++link_counter_,
                                                a->name() + "<~>" + b->name()));
  auto* link = static_cast<BridgeLink*>(links_.back().get());
  const int pa = a->AttachPort(&link->end(0));
  const int pb = b->AttachPort(&link->end(1));
  const int na = NodeIndexOf(a);
  const int nb = NodeIndexOf(b);
  AddEdge(na, pa, nb, pb, link);
  BindLinkEngines(link, na, nb);
  if (nodes_[na].domain != nodes_[nb].domain) {
    ++hbr_links_;
  }
  ++bridge_links_;
  routed_ = false;
  return link;
}

Link* FabricInterconnect::Connect(FabricSwitch* sw, AdapterBase* adapter,
                                  const LinkConfig& config) {
  links_.push_back(std::make_unique<Link>(engine_, config, seed_ + ++link_counter_,
                                          sw->name() + "<->" + adapter->name()));
  Link* link = links_.back().get();
  const int ps = sw->AttachPort(&link->end(0));
  adapter->AttachLink(&link->end(1));
  const int ns = NodeIndexOf(sw);
  const int na = NodeIndexOf(adapter);
  AddEdge(ns, ps, na, 0, link);
  BindLinkEngines(link, ns, na);
  routed_ = false;
  return link;
}

Link* FabricInterconnect::ConnectDirect(AdapterBase* a, AdapterBase* b, const LinkConfig& config) {
  links_.push_back(std::make_unique<Link>(engine_, config, seed_ + ++link_counter_,
                                          a->name() + "<->" + b->name()));
  Link* link = links_.back().get();
  a->AttachLink(&link->end(0));
  b->AttachLink(&link->end(1));
  const int na = NodeIndexOf(a);
  const int nb = NodeIndexOf(b);
  AddEdge(na, 0, nb, 0, link);
  BindLinkEngines(link, na, nb);
  routed_ = false;
  return link;
}

void FabricInterconnect::ConfigureRouting() {
  if (Engine::InShardedWindow()) {
    // Routing tables are read by every switch shard; rebuilding them while
    // windows run would race. Re-run as a global barrier event at this
    // tick (reroute-after-failure paths land here via fault callbacks).
    Engine::CurrentShard()->ScheduleGlobal(0, [this] { ConfigureRouting(); });
    return;
  }
  // Rebuild from scratch so stale routes (e.g. over a failed link) vanish.
  for (const auto& node : nodes_) {
    if (node.sw != nullptr) {
      node.sw->ClearRoutes();
    }
  }
  // BFS from every adapter; at each switch along the way, record the port
  // that leads back toward the adapter. Failed links are invisible.
  for (const auto& node : nodes_) {
    if (node.adapter == nullptr) {
      continue;
    }
    const PbrId dst = node.adapter->id();
    const int start = NodeIndexOf(node.adapter);

    std::vector<int> prev(nodes_.size(), -1);        // predecessor node
    std::vector<int> prev_port(nodes_.size(), -1);   // port on THIS node toward dst
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<int> frontier;
    frontier.push_back(start);
    seen[start] = true;

    while (!frontier.empty()) {
      const int cur = frontier.front();
      frontier.pop_front();
      for (const auto& edge : nodes_[cur].edges) {
        if (seen[edge.peer] || edge.link->failed()) {
          continue;
        }
        seen[edge.peer] = true;
        prev[edge.peer] = cur;
        // Find the port on `peer` that connects back to `cur` over a live
        // link.
        for (const auto& back : nodes_[edge.peer].edges) {
          if (back.peer == cur && !back.link->failed()) {
            prev_port[edge.peer] = back.port;
            break;
          }
        }
        frontier.push_back(edge.peer);
      }
    }

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].sw != nullptr && seen[i] && prev_port[i] >= 0) {
        nodes_[i].sw->SetRoute(dst, prev_port[i]);
      }
    }
  }

  // HBR default routes: each switch points its default at the port leading
  // to the nearest foreign-domain node, if any.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].sw == nullptr) {
      continue;
    }
    for (const auto& edge : nodes_[i].edges) {
      if (!edge.link->failed() && nodes_[edge.peer].domain != nodes_[i].domain) {
        nodes_[i].sw->SetDefaultRoute(edge.port);
        break;
      }
    }
  }
  routed_ = true;
}

AdapterBase* FabricInterconnect::AdapterById(PbrId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Link* FabricInterconnect::LinkTo(PbrId adapter_id) const {
  const AdapterBase* adapter = AdapterById(adapter_id);
  if (adapter == nullptr) {
    return nullptr;
  }
  const Node& node = nodes_[static_cast<std::size_t>(NodeIndexOf(adapter))];
  return node.edges.empty() ? nullptr : node.edges.front().link;
}

int FabricInterconnect::HopCount(PbrId from, PbrId to) const {
  const AdapterBase* a = AdapterById(from);
  const AdapterBase* b = AdapterById(to);
  if (a == nullptr || b == nullptr) {
    return -1;
  }
  const int start = NodeIndexOf(a);
  const int goal = NodeIndexOf(b);
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<int> frontier;
  frontier.push_back(start);
  dist[start] = 0;
  while (!frontier.empty()) {
    const int cur = frontier.front();
    frontier.pop_front();
    if (cur == goal) {
      return dist[cur];
    }
    for (const auto& edge : nodes_[cur].edges) {
      if (dist[edge.peer] < 0 && !edge.link->failed()) {
        dist[edge.peer] = dist[cur] + 1;
        frontier.push_back(edge.peer);
      }
    }
  }
  return -1;
}

std::string FabricInterconnect::TopologyToString() const {
  std::ostringstream out;
  out << "fabric: " << switches_.size() << " switch(es), " << adapters_.size() << " adapter(s), "
      << links_.size() << " link(s), " << hbr_links_ << " HBR link(s)\n";
  for (const auto& node : nodes_) {
    if (node.sw != nullptr) {
      out << "  [FS ] " << node.sw->name() << " (domain " << node.domain << ", "
          << node.sw->num_ports() << " ports)\n";
    } else {
      out << "  [" << (dynamic_cast<HostAdapter*>(node.adapter) != nullptr ? "FHA" : "FEA")
          << "] " << node.adapter->name() << " (PBR " << node.adapter->id() << ", domain "
          << node.domain << ")\n";
    }
  }
  for (const auto& link : links_) {
    out << "  link " << link->name() << " (" << link->config().gigatransfers_per_sec << " GT/s x"
        << link->config().lanes << ")\n";
  }
  return out.str();
}

}  // namespace unifab
