#include "src/fabric/link.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace unifab {

bool LinkEndpoint::Send(const Flit& flit) { return link_->Send(side_, flit); }

bool LinkEndpoint::CanSend(Channel channel) const { return link_->CanSend(side_, channel); }

void LinkEndpoint::ReturnCredit(Channel channel) { link_->ReturnCredit(side_, channel); }

void LinkEndpoint::Bind(FlitReceiver* receiver, int port) {
  // This endpoint belongs to the component on side_; flits *sent by the
  // other side* are delivered to it.
  Link::Direction& dir = link_->dirs_[1 - side_];
  dir.receiver = receiver;
  dir.receiver_port = port;
}

void LinkEndpoint::SetDrainCallback(std::function<void()> cb) {
  link_->dirs_[side_].drain_cb = std::move(cb);
}

std::uint32_t LinkEndpoint::CreditsAvailable(Channel channel) const {
  return link_->dirs_[side_].credits[static_cast<int>(channel)];
}

std::size_t LinkEndpoint::QueueDepth(Channel channel) const {
  return link_->dirs_[side_].tx_queues[static_cast<int>(channel)].size();
}

const LinkStats& LinkEndpoint::stats() const { return link_->dirs_[side_].stats; }

const LinkConfig& LinkEndpoint::config() const { return link_->config_; }

FlitReceiver* LinkEndpoint::receiver() const { return link_->dirs_[1 - side_].receiver; }

int LinkEndpoint::port() const { return link_->dirs_[1 - side_].receiver_port; }

void LinkStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "flits_accepted", [this] { return flits_accepted; });
  group.AddCounterFn(prefix + "flits_sent", [this] { return flits_sent; });
  group.AddCounterFn(prefix + "flits_delivered", [this] { return flits_delivered; });
  group.AddCounterFn(prefix + "bytes_delivered", [this] { return bytes_delivered; });
  group.AddCounterFn(prefix + "replays", [this] { return replays; });
  group.AddCounterFn(prefix + "dropped_on_fail", [this] { return dropped_on_fail; });
  group.AddCounterFn(prefix + "credit_stalls", [this] { return credit_stalls; });
  group.AddGaugeFn(prefix + "busy_time_ns", [this] { return ToNs(busy_time); });
}

Link::Link(Engine* engine, const LinkConfig& config, std::uint64_t seed, std::string name)
    : engine_(engine),
      side_eng_{engine, engine},
      config_(config),
      name_(std::move(name)),
      dir_rng_{Rng(seed), Rng(seed ^ 0x9E3779B97F4A7C15ULL)} {
  advertised_credits_ = static_cast<std::uint32_t>(
      std::llround(static_cast<double>(config_.credits_per_vc) * config_.credit_overcommit));
  if (advertised_credits_ == 0) {
    // A pool whose credit math rounds to zero can never move a flit.
    // Silently granting one credit here (the old behavior) fabricated a
    // receiver buffer slot that violates per-VC credit conservation; such a
    // config is a caller error, so reject it loudly even in release builds.
    std::fprintf(stderr,
                 "[unifab] link %s: credits_per_vc=%u x credit_overcommit=%g rounds to zero "
                 "advertised credits; rejecting config\n",
                 name_.c_str(), config_.credits_per_vc, config_.credit_overcommit);
    std::abort();
  }
  for (auto& dir : dirs_) {
    dir.credits.fill(advertised_credits_);
  }
  metrics_ = MetricGroup(&engine_->metrics(), "fabric/link/" + name_);
  dirs_[0].stats.BindTo(metrics_, "tx0/");
  dirs_[1].stats.BindTo(metrics_, "tx1/");
  audit_ = AuditScope(&engine_->audit(), "fabric/link/" + name_);
  // Every flit accepted by Send() is, at any event boundary, exactly one of:
  // delivered, dropped by Fail(), in flight on the wire (or awaiting
  // replay), or still staged in a tx queue.
  audit_.AddCheck("flit_conservation", [this]() -> std::string {
    for (int s = 0; s < 2; ++s) {
      const Direction& dir = dirs_[s];
      std::uint64_t queued = 0;
      for (const auto& q : dir.tx_queues) {
        queued += q.size();
      }
      const std::uint64_t accounted =
          dir.stats.flits_delivered + dir.stats.dropped_on_fail + dir.in_flight + queued;
      if (dir.stats.flits_accepted != accounted) {
        return "dir" + std::to_string(s) + ": accepted=" +
               std::to_string(dir.stats.flits_accepted) + " != delivered(" +
               std::to_string(dir.stats.flits_delivered) + ") + dropped(" +
               std::to_string(dir.stats.dropped_on_fail) + ") + in_flight(" +
               std::to_string(dir.in_flight) + ") + queued(" + std::to_string(queued) + ")";
      }
    }
    return {};
  });
  // Credits model receiver buffer slots: the sender can never hold more
  // than the receiver advertised (an excess would mean a fabricated slot or
  // an underflowed decrement wrapping around).
  audit_.AddCheck("credit_conservation", [this]() -> std::string {
    for (int s = 0; s < 2; ++s) {
      for (int vc = 0; vc < kNumChannels; ++vc) {
        const std::uint32_t have = dirs_[s].credits[static_cast<std::size_t>(vc)];
        if (have > advertised_credits_) {
          return "dir" + std::to_string(s) + " vc" + std::to_string(vc) + ": credits=" +
                 std::to_string(have) + " > advertised=" + std::to_string(advertised_credits_);
        }
      }
    }
    return {};
  });
}

bool Link::CanSend(int side, Channel channel) const {
  const Direction& dir = dirs_[side];
  return dir.tx_queues[static_cast<int>(channel)].size() < config_.tx_queue_depth;
}

bool Link::Send(int side, const Flit& flit) {
  if (failed_) {
    return false;
  }
  Direction& dir = dirs_[side];
  auto& q = dir.tx_queues[static_cast<int>(flit.channel)];
  if (q.size() >= config_.tx_queue_depth) {
    return false;
  }
  q.push_back(flit);
  ++dir.stats.flits_accepted;
  TryTransmit(side);
  return true;
}

int Link::PickVc(const Direction& dir) const {
  // Strict priority for the dedicated control lane when configured.
  if (config_.control_priority) {
    const int ctrl = static_cast<int>(Channel::kControl);
    if (!dir.tx_queues[ctrl].empty() && dir.credits[ctrl] > 0) {
      return ctrl;
    }
  }
  // Round-robin across remaining VCs that have both a flit and a credit.
  for (int i = 0; i < kNumChannels; ++i) {
    const int vc = (dir.rr_next_vc + i) % kNumChannels;
    if (!dir.tx_queues[vc].empty() && dir.credits[vc] > 0) {
      return vc;
    }
  }
  return -1;
}

void Link::TryTransmit(int side) {
  Direction& dir = dirs_[side];
  if (failed_ || dir.wire_busy) {
    return;
  }
  int vc = PickVc(dir);
  if (vc < 0) {
    // Record a stall only if a flit was waiting without credits.
    for (int i = 0; i < kNumChannels; ++i) {
      if (!dir.tx_queues[i].empty()) {
        ++dir.stats.credit_stalls;
        break;
      }
    }
    return;
  }

  // Batch service: commit a train of up to max_burst_flits back-to-back
  // flits in one wakeup. Flit k occupies the wire over
  // [t0 + k*serialize, t0 + (k+1)*serialize) — exactly the schedule per-flit
  // service would produce for a backlogged sender — so delivery and replay
  // times are unchanged; the train just replaces per-flit wire-free events
  // with a single end-of-train event.
  const Tick serialize = config_.SerializeTime();
  const std::uint64_t epoch = epoch_;
  const std::uint32_t max_burst = config_.max_burst_flits == 0 ? 1 : config_.max_burst_flits;
  Engine* tx_eng = eng(side);  // everything sender-side stays on this engine

  dir.train.clear();
  while (vc >= 0) {
    auto& q = dir.tx_queues[vc];
    dir.train.emplace_back(std::move(q.front()),
                           dir_rng_[side].NextBool(config_.flit_error_rate));
    q.pop_front();
    --dir.credits[vc];
    ++dir.in_flight;
    ++dir.stats.flits_sent;
    dir.stats.busy_time += serialize;
    if (dir.train.size() >= max_burst) {
      break;
    }
    vc = PickVc(dir);
  }

  // Wire frees when the train ends. Scheduled before the per-flit events so
  // same-tick coincidences order exactly as per-flit service did. Everything
  // in flight dies if the link fails first.
  dir.wire_busy = true;
  tx_eng->Schedule(serialize * dir.train.size(), [this, side, epoch] {
    if (epoch != epoch_) {
      return;
    }
    dirs_[side].wire_busy = false;
    TryTransmit(side);
    NotifyDrain(side);
  });

  const bool cross = cross_engine();
  Tick offset = 0;
  for (auto& [flit, corrupted] : dir.train) {
    if (corrupted) {
      // Receiver naks; sender replays the flit from its replay buffer after
      // the timeout. The consumed credit stays consumed (the receiver slot
      // is reserved for the replayed copy).
      ++dir.stats.replays;
      tx_eng->Schedule(offset + serialize + config_.replay_timeout,
                       [this, side, flit = std::move(flit), epoch] {
                         if (epoch != epoch_) {
                           return;
                         }
                         Direction& d = dirs_[side];
                         // Replay bypasses the credit gate: the slot is
                         // already reserved.
                         d.tx_queues[static_cast<int>(flit.channel)].push_front(flit);
                         ++d.credits[static_cast<int>(flit.channel)];
                         --d.in_flight;  // back in the tx queue until retransmitted
                         TryTransmit(side);
                       });
    } else if (!cross) {
      tx_eng->Schedule(offset + serialize + config_.propagation,
                       [this, side, flit = std::move(flit), epoch]() mutable {
                         if (epoch != epoch_) {
                           return;
                         }
                         Direction& dir2 = dirs_[side];
                         --dir2.in_flight;
                         ++dir2.stats.flits_delivered;
                         dir2.stats.bytes_delivered += flit.payload_bytes;
                         assert(dir2.receiver != nullptr && "link endpoint not bound");
                         ++flit.hops;
                         dir2.receiver->ReceiveFlit(flit, dir2.receiver_port);
                       });
    } else {
      // Domain boundary: split the delivery. The sender's accounting fires
      // on the sender engine; the hand-off to the receiving component fires
      // at the same tick on the receiver engine (routed through the
      // cross-shard mailbox and merged in canonical order at the barrier —
      // delivery takes >= serialize + propagation, which bounds the
      // lookahead window, so the event always lands in a later window).
      const Tick deliver_at = tx_eng->Now() + offset + serialize + config_.propagation;
      tx_eng->ScheduleAt(deliver_at, [this, side, bytes = flit.payload_bytes, epoch] {
        if (epoch != epoch_) {
          return;
        }
        Direction& dir2 = dirs_[side];
        --dir2.in_flight;
        ++dir2.stats.flits_delivered;
        dir2.stats.bytes_delivered += bytes;
      });
      eng(1 - side)->ScheduleAt(deliver_at, [this, side, flit = std::move(flit),
                                             epoch]() mutable {
        if (epoch != epoch_) {
          return;
        }
        Direction& dir2 = dirs_[side];
        assert(dir2.receiver != nullptr && "link endpoint not bound");
        ++flit.hops;
        dir2.receiver->ReceiveFlit(flit, dir2.receiver_port);
      });
    }
    offset += serialize;
  }
  dir.train.clear();
}

void Link::FinishTransmit(int /*side*/, const Flit& /*flit*/) {}

void Link::ReturnCredit(int receiver_side, Channel channel) {
  // The receiver on `receiver_side` frees a slot; the credit travels back to
  // the sender on the other side. Credits freed at the same tick coalesce
  // into one scheduled flush (they'd all land at the same instant anyway),
  // at the first return's position in the tick's FIFO order.
  const int sender_side = 1 - receiver_side;
  if (cross_engine()) {
    // Domain boundary: the sender's credit pool belongs to the other
    // shard, so the return rides the cross-shard mailbox as one event per
    // credit (credit_return_latency >= the lookahead window, so it lands
    // in a later window). No coalescing batch is kept on this side — the
    // sender-side event is self-contained.
    const std::uint64_t epoch = epoch_;
    eng(sender_side)
        ->ScheduleAt(eng(receiver_side)->Now() + config_.credit_return_latency,
                     [this, sender_side, channel, epoch] {
                       if (epoch != epoch_) {
                         return;
                       }
                       Direction& d = dirs_[sender_side];
                       auto& credits = d.credits[static_cast<int>(channel)];
                       // Cap as below: a stale return across Fail/Recover
                       // cannot mint slots beyond what the receiver has.
                       if (credits < advertised_credits_) {
                         ++credits;
                       }
                       TryTransmit(sender_side);
                       NotifyDrain(sender_side);
                     });
    return;
  }
  Direction& dir = dirs_[sender_side];
  auto& batches = dir.credit_returns[static_cast<int>(channel)];
  const Tick due = eng(sender_side)->Now() + config_.credit_return_latency;
  if (!batches.empty() && batches.back().due == due) {
    ++batches.back().count;
    return;
  }
  batches.push_back({due, 1});
  const std::uint64_t epoch = epoch_;
  eng(sender_side)->Schedule(config_.credit_return_latency, [this, sender_side, channel, epoch] {
    if (epoch != epoch_) {
      return;
    }
    Direction& d = dirs_[sender_side];
    auto& bq = d.credit_returns[static_cast<int>(channel)];
    assert(!bq.empty() && bq.front().due == eng(sender_side)->Now());
    d.credits[static_cast<int>(channel)] += bq.front().count;
    // A receiver that buffered a flit across a Fail/Recover cycle returns a
    // credit for a slot Recover() already re-advertised; cap the pool so a
    // stale return cannot mint slots beyond what the receiver has.
    if (d.credits[static_cast<int>(channel)] > advertised_credits_) {
      d.credits[static_cast<int>(channel)] = advertised_credits_;
    }
    bq.pop_front();
    TryTransmit(sender_side);
    NotifyDrain(sender_side);
  });
}

void Link::Fail() {
  if (Engine::InShardedWindow()) {
    // Failing a link mutates both directions and notifies components in
    // both domains; from inside a running window that would race with the
    // far shard. Re-run as a global barrier event at this same tick.
    Engine::CurrentShard()->ScheduleGlobal(0, [this] { Fail(); });
    return;
  }
  if (failed_) {
    return;
  }
  failed_ = true;
  ++epoch_;  // orphan in-flight deliveries, replays, and credit returns
  for (auto& dir : dirs_) {
    for (auto& q : dir.tx_queues) {
      dir.stats.dropped_on_fail += q.size();
      q.clear();
    }
    for (auto& bq : dir.credit_returns) {
      bq.clear();  // matching flush events just died with the epoch
    }
    dir.stats.dropped_on_fail += dir.in_flight;
    dir.in_flight = 0;
    dir.wire_busy = false;
  }
  NotifyEpochChange(/*link_up=*/false);
}

void Link::Recover() {
  if (Engine::InShardedWindow()) {
    Engine::CurrentShard()->ScheduleGlobal(0, [this] { Recover(); });
    return;
  }
  if (!failed_) {
    return;
  }
  failed_ = false;
  ++epoch_;
  // Same validated pool the constructor computed — Recover() used to repeat
  // the rounds-to-zero clamp and could re-fill a different credit count.
  for (auto& dir : dirs_) {
    dir.credits.fill(advertised_credits_);
    for (auto& bq : dir.credit_returns) {
      bq.clear();  // flushes scheduled while failed are orphaned by the bump
    }
  }
  NotifyEpochChange(/*link_up=*/true);
  // Wake both senders so any retained upper-layer egress drains again.
  NotifyDrain(0);
  NotifyDrain(1);
}

void Link::NotifyDrain(int side) {
  if (dirs_[side].drain_cb) {
    dirs_[side].drain_cb();
  }
}

Link::DirAccounting Link::Accounting(int sender_side) const {
  const Direction& dir = dirs_[sender_side];
  DirAccounting acc;
  acc.accepted = dir.stats.flits_accepted;
  acc.delivered = dir.stats.flits_delivered;
  acc.dropped_on_fail = dir.stats.dropped_on_fail;
  acc.in_flight = dir.in_flight;
  for (const auto& q : dir.tx_queues) {
    acc.queued += q.size();
  }
  return acc;
}

void Link::NotifyEpochChange(bool link_up) {
  // dirs_[s].receiver is the component on side 1-s, so this reaches both
  // attached components (when bound) with their own port index.
  for (auto& dir : dirs_) {
    if (dir.receiver != nullptr) {
      dir.receiver->OnLinkEpochChange(dir.receiver_port, link_up);
    }
  }
}

}  // namespace unifab
