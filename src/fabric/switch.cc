#include "src/fabric/switch.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unifab {

void SwitchStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "flits_forwarded", [this] { return flits_forwarded; });
  group.AddCounterFn(prefix + "flits_dropped", [this] { return flits_dropped; });
  group.AddCounterFn(prefix + "hol_blocked_events", [this] { return hol_blocked_events; });
  group.AddSummaryFn(prefix + "queueing_ns", [this] { return &queueing_ns; });
}

FabricSwitch::FabricSwitch(Engine* engine, const SwitchConfig& config, std::string name)
    : engine_(engine), config_(config), name_(std::move(name)) {
  metrics_ = MetricGroup(&engine_->metrics(), "fabric/switch/" + name_);
  stats_.BindTo(metrics_);
}

int FabricSwitch::AttachPort(LinkEndpoint* endpoint) {
  const int port = static_cast<int>(ports_.size());
  ports_.push_back(endpoint);
  inputs_.emplace_back();
  outputs_.emplace_back();
  endpoint->Bind(this, port);
  endpoint->SetDrainCallback([this] { ScheduleArbitration(); });
  // Size every input's queue vector for the new port count.
  for (auto& in : inputs_) {
    in.queues.resize(config_.virtual_output_queues ? ports_.size() : 1);
  }
  return port;
}

void FabricSwitch::SetRoute(PbrId dst, int out_port) {
  assert(out_port >= 0 && out_port < num_ports());
  routes_[dst] = out_port;
}

void FabricSwitch::SetDefaultRoute(int out_port) { default_route_ = out_port; }

bool FabricSwitch::HasRoute(PbrId dst) const { return routes_.count(dst) != 0; }

int FabricSwitch::RouteFor(PbrId dst) const {
  auto it = routes_.find(dst);
  if (it != routes_.end()) {
    return it->second;
  }
  return default_route_;
}

void FabricSwitch::SetSourcePriority(PbrId src, int priority) { priorities_[src] = priority; }

int FabricSwitch::PriorityOf(PbrId src) const {
  auto it = priorities_.find(src);
  return it == priorities_.end() ? 0 : it->second;
}

void FabricSwitch::ReceiveFlit(const Flit& flit, int port) {
  assert(port >= 0 && port < num_ports());
  const int out = RouteFor(flit.dst);
  // An unroutable flit is dropped; the input credit is returned so the link
  // does not wedge. Real switches raise an error interrupt here.
  if (out < 0) {
    ports_[port]->ReturnCredit(flit.channel);
    return;
  }
  // A reroute can overtake a mid-flight flit and leave its best path
  // pointing back out the port it arrived on. The crossbar cannot hairpin,
  // and parking the flit in the input==out VOQ would strand its credit and
  // eventually wedge the upstream link's whole credit window; treat it as a
  // loss instead — the sender's retry rides the new tables end to end.
  if (out == port) {
    ports_[port]->ReturnCredit(flit.channel);
    ++stats_.flits_dropped;
    return;
  }
  InputPort& in = inputs_[port];
  const std::size_t qi = config_.virtual_output_queues ? static_cast<std::size_t>(out) : 0;
  in.queues[qi].push_back(QueuedFlit{flit, out, engine_->Now(), arrival_counter_++});
  ScheduleArbitration();
}

void FabricSwitch::ScheduleArbitration() {
  if (arb_scheduled_) {
    return;
  }
  arb_scheduled_ = true;
  engine_->Schedule(0, [this] {
    arb_scheduled_ = false;
    Arbitrate();
  });
}

void FabricSwitch::Arbitrate() {
  // Credit reallocation is evaluated lazily on arbitration passes instead of
  // on a free-running timer, so an idle fabric lets the event queue drain.
  if (config_.credit_alloc == CreditAllocPolicy::kExponentialRampUp &&
      engine_->Now() >= next_realloc_) {
    ReallocateCredits();
    next_realloc_ = engine_->Now() + config_.credit_realloc_period;
  }
  // Keep matching inputs to outputs until no output can make progress.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int out = 0; out < num_ports(); ++out) {
      if (ForwardOneTo(out)) {
        progress = true;
      }
    }
  }
}

bool FabricSwitch::HeadFor(int input, int out, QueuedFlit** head) {
  InputPort& in = inputs_[input];
  if (config_.virtual_output_queues) {
    auto& q = in.queues[static_cast<std::size_t>(out)];
    if (q.empty()) {
      return false;
    }
    *head = &q.front();
    return true;
  }
  auto& q = in.queues[0];
  if (q.empty() || q.front().out_port != out) {
    return false;
  }
  *head = &q.front();
  return true;
}

void FabricSwitch::PopHead(int input, int out) {
  InputPort& in = inputs_[input];
  auto& q = config_.virtual_output_queues ? in.queues[static_cast<std::size_t>(out)]
                                          : in.queues[0];
  q.pop_front();
}

bool FabricSwitch::OutputCanAccept(int out, Channel channel) const {
  const LinkEndpoint* ep = ports_[out];
  const std::uint32_t depth = ep->config().tx_queue_depth;
  const auto in_queue = static_cast<std::uint32_t>(ep->QueueDepth(channel));
  return in_queue + outputs_[out].reserved[static_cast<int>(channel)] < depth;
}

bool FabricSwitch::ArrivesBefore(const QueuedFlit& a, const QueuedFlit& b) {
  if (a.arrival != b.arrival) {
    return a.arrival < b.arrival;
  }
  if (a.flit.src != b.flit.src) {
    return a.flit.src < b.flit.src;
  }
  if (a.flit.txn_id != b.flit.txn_id) {
    return a.flit.txn_id < b.flit.txn_id;
  }
  if (a.flit.seq != b.flit.seq) {
    return a.flit.seq < b.flit.seq;
  }
  return a.order < b.order;
}

int FabricSwitch::PickInput(int out) {
  // Gather candidate inputs whose head flit wants `out` and whose channel
  // has room at the output.
  int best = -1;
  const QueuedFlit* best_head = nullptr;
  int best_priority = 0;
  double best_weight = 0.0;

  const int n = num_ports();
  OutputPort& op = outputs_[out];
  for (int i = 0; i < n; ++i) {
    const int input = (op.rr_next_input + i) % n;
    if (input == out) {
      continue;  // no hairpin turnaround
    }
    QueuedFlit* head = nullptr;
    if (!HeadFor(input, out, &head)) {
      continue;
    }
    if (!OutputCanAccept(out, head->flit.channel)) {
      continue;
    }
    switch (config_.arbitration) {
      case SwitchArbitration::kFifo:
        if (best < 0 || ArrivesBefore(*head, *best_head)) {
          best = input;
          best_head = head;
        }
        break;
      case SwitchArbitration::kRoundRobin:
        // First hit in rotation order wins.
        return input;
      case SwitchArbitration::kWeighted: {
        const double w = inputs_[input].weight;
        if (best < 0 || w > best_weight) {
          best = input;
          best_weight = w;
        }
        break;
      }
      case SwitchArbitration::kPriority: {
        const int p = PriorityOf(head->flit.src);
        if (best < 0 || p > best_priority ||
            (p == best_priority && ArrivesBefore(*head, *best_head))) {
          best = input;
          best_priority = p;
          best_head = head;
        }
        break;
      }
    }
  }
  return best;
}

bool FabricSwitch::ForwardOneTo(int out) {
  const int input = PickInput(out);
  if (input < 0) {
    // Measure head-of-line blocking: in single-FIFO mode, count cases where
    // the head cannot move but a flit behind it could have.
    if (!config_.virtual_output_queues) {
      for (int i = 0; i < num_ports(); ++i) {
        auto& q = inputs_[i].queues[0];
        if (q.size() < 2) {
          continue;
        }
        const QueuedFlit& head = q.front();
        if (OutputCanAccept(head.out_port, head.flit.channel)) {
          continue;  // head is not blocked
        }
        for (std::size_t k = 1; k < q.size(); ++k) {
          if (q[k].out_port != head.out_port &&
              OutputCanAccept(q[k].out_port, q[k].flit.channel)) {
            ++stats_.hol_blocked_events;
            break;
          }
        }
      }
    }
    return false;
  }

  QueuedFlit* head = nullptr;
  const bool ok = HeadFor(input, out, &head);
  assert(ok);
  (void)ok;
  Flit flit = head->flit;
  const Tick waited = engine_->Now() - head->arrival;
  PopHead(input, out);

  outputs_[out].rr_next_input = (input + 1) % num_ports();
  outputs_[out].reserved[static_cast<int>(flit.channel)]++;
  inputs_[input].forwarded_this_period++;
  inputs_[input].had_backlog = true;

  // The input buffer slot frees as soon as the flit enters the crossbar
  // (cut-through), so return the upstream credit now.
  ports_[input]->ReturnCredit(flit.channel);

  stats_.queueing_ns.Add(ToNs(waited));
  ++stats_.flits_forwarded;

  engine_->Schedule(config_.port_latency, [this, out, flit] {
    outputs_[out].reserved[static_cast<int>(flit.channel)]--;
    const bool sent = ports_[out]->Send(flit);
    if (!sent) {
      // The reservation guarantees queue room, so a refusal means the output
      // link failed while the flit crossed the crossbar: drop it (§3 #5 —
      // nothing downstream will signal the loss).
      ++stats_.flits_dropped;
    }
    ScheduleArbitration();
  });
  return true;
}

void FabricSwitch::ReallocateCredits() {
  // Utilization-driven exponential ramp-up (§3, "a consistently
  // heavily-used port would take more credits"): ports forwarding more than
  // the average active port double their share; the rest decay. This is the
  // de facto allocator whose interference the D3b bench demonstrates.
  std::uint64_t total = 0;
  int active = 0;
  for (const auto& in : inputs_) {
    total += in.forwarded_this_period;
    if (in.forwarded_this_period > 0) {
      ++active;
    }
  }
  const double avg = active > 0 ? static_cast<double>(total) / active : 0.0;
  for (auto& in : inputs_) {
    if (avg > 0.0 && static_cast<double>(in.forwarded_this_period) >= avg) {
      in.weight = std::min(config_.max_weight, in.weight * 2.0);
    } else {
      in.weight = std::max(config_.min_weight, in.weight / 2.0);
    }
    in.forwarded_this_period = 0;
  }
}

}  // namespace unifab
