// ShardedEngine: a deterministic parallel discrete-event simulator built
// from N Engine shards, one per fabric domain (a switch island or a chassis
// — see src/topo/cluster.cc for the assignment rule).
//
// Execution model — conservative lookahead, null-message free:
//   * Every component lives on exactly one shard and schedules only on its
//     own shard's clock; cross-domain interactions ride Link boundaries,
//     whose minimum latency L (over all inter-domain links, computed at
//     wiring time) bounds how far one domain can affect another.
//   * Time advances in windows. At each barrier the coordinator computes
//     m = earliest pending local event and g = earliest pending global
//     event, and opens the window [.., window_end] with
//     window_end = min(m + L - 1, g, deadline). Each shard then fires all
//     of its local events with tick <= window_end — in parallel, no locks,
//     because nothing another domain does before window_end can reach it.
//   * Events a shard schedules onto a *different* shard are staged in a
//     per-(src,dst) outbox. At the barrier every mailbox is harvested and
//     merged into the destination queue in (tick, source shard, sequence)
//     order — a canonical order independent of how many worker threads ran
//     the window. An entry with tick <= window_end means some component
//     violated the lookahead contract; the run aborts loudly.
//   * Global events (ScheduleGlobal) fire between windows with all shards
//     parked, in (tick, staging shard, sequence) order: routing rebuilds
//     and fault injection mutate the world only at barriers.
//
// Determinism: the shard partition is fixed by the topology, never by the
// worker-thread count — UNIFAB_SHARDS (or Options::workers) only sets how
// many OS threads execute the N domain queues. Each shard's event stream,
// and therefore its RunDigest, is bit-for-bit identical for any worker
// count; MergedDigest() folds the per-shard digests in shard-index order,
// so the printed [unifab-audit] digest line is too. scripts/check.sh diffs
// the UNIFAB_SHARDS=1 and UNIFAB_SHARDS=4 digests to enforce this.

#ifndef SRC_SIM_SHARDED_ENGINE_H_
#define SRC_SIM_SHARDED_ENGINE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace unifab {

class ShardedEngine {
 public:
  struct Options {
    // Worker threads executing shard windows. 0 = read UNIFAB_SHARDS from
    // the environment (default 1). Clamped to [1, number of shards] at run
    // time; 1 runs every shard inline on the calling thread.
    std::uint32_t workers = 0;

    // Conservative lookahead window: no domain can affect another in less
    // than this many ticks. Cluster wiring tightens this to the minimum
    // inter-domain link latency via SetLookahead.
    Tick lookahead = FromNs(10.0);

    // Base seed for the per-shard Rng streams.
    std::uint64_t seed = 0x5EEDED;
  };

  ShardedEngine();
  explicit ShardedEngine(const Options& options);
  ~ShardedEngine();  // reports the merged run digest when auditing was on

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Creates shard N (the constructor already created shard 0, the root).
  // Call during topology setup only, before the first Run. `name` labels
  // error messages; instruments register under sim/engine/shard<k>/.
  Engine& AddShard(const std::string& name);

  // Shard 0: where hosts, shared runtime objects, and anything not pinned
  // to a fabric domain live. Handing &root() to a component gives it the
  // classic single-engine programming model.
  Engine& root() { return *shards_.front(); }
  const Engine& root() const { return *shards_.front(); }

  Engine& shard(std::size_t i) { return *shards_[i]; }
  std::size_t num_shards() const { return shards_.size(); }
  std::uint32_t workers() const { return workers_; }

  // Tightens (or widens) the lookahead window; call after wiring, before
  // running. Clamped to >= 1 tick.
  void SetLookahead(Tick lookahead);
  Tick lookahead() const { return lookahead_; }

  // Group-wide run loops; Engine delegates its public Run/RunUntil/Step
  // here when sharded. Semantics mirror Engine's: RunUntil fires everything
  // with tick <= deadline then parks every shard clock at the deadline; Run
  // drains to global quiescence and aligns every shard clock to the last
  // fired tick.
  std::size_t Run();
  std::size_t RunUntil(Tick deadline);
  std::size_t Step(std::size_t max_events);

  bool Idle() const;
  std::size_t PendingEvents() const;
  std::uint64_t TotalFired() const;

  // Latest shard clock (the group has no single "now" between barriers).
  Tick Now() const;

  // Group-central telemetry and invariants: every shard and every component
  // on every shard registers here.
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  InvariantAuditor& audit() { return auditor_; }
  const InvariantAuditor& audit() const { return auditor_; }

  void SetAuditCadence(std::uint64_t every_n_events);

  // Sweeps the group auditor now (all shards must be parked); aborts on any
  // violation, like Engine::AuditNow.
  void AuditNow();

  // Per-shard digests folded in shard-index order; invariant across worker
  // counts for a fixed topology and workload.
  std::uint64_t MergedDigest() const;

  std::uint64_t windows() const { return windows_; }
  std::uint64_t cross_events() const { return cross_delivered_; }

 private:
  friend class Engine;

  struct GlobalEvent {
    Tick when = 0;
    std::uint32_t src = 0;     // shard that staged it
    std::uint64_t seq = 0;     // src-local staging sequence
    EventCallback fn;
  };

  // Inner loop shared by Run/RunUntil/Step. `deadline` = kTickNever for an
  // unbounded run; `max_events` = 0 for no budget. Returns events fired
  // (local + global).
  std::size_t RunCore(Tick deadline, std::size_t max_events);

  // Fires every shard's local events with tick <= window_end, using the
  // worker pool when it pays. Returns the number fired.
  std::size_t RunWindow(Tick window_end);
  void RunShardsOnWorker(std::uint32_t worker, Tick window_end);

  // Barrier work: moves outbox entries into destination queues in canonical
  // order (aborting on lookahead violations), collects newly staged global
  // events, and runs any deferred audit sweeps.
  void HarvestMailboxes(Tick window_end);
  void CollectGlobals();
  std::size_t FireGlobals(Tick window_end);
  void ServiceAuditRequests();

  Tick MinNextEventTime();

  void EnsurePool(std::uint32_t workers);
  void StopPool();

  Options options_;
  MetricRegistry metrics_;    // first: shards + components register into it
  InvariantAuditor auditor_;
  std::uint32_t workers_ = 1;
  Tick lookahead_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<GlobalEvent> globals_;  // pending, sorted (when, src, seq)
  std::vector<std::string> shard_names_;

  Tick last_window_end_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_delivered_ = 0;
  std::uint64_t globals_fired_ = 0;

  struct MergeEntry {
    Tick when;
    std::uint32_t src;
    std::uint64_t seq;
    EventCallback* fn;
  };
  std::vector<MergeEntry> merge_scratch_;

  // Worker pool: persistent threads woken once per window. The coordinator
  // (the thread that called Run) doubles as worker 0.
  std::mutex pool_mu_;
  std::condition_variable pool_start_;
  std::condition_variable pool_done_;
  std::vector<std::thread> threads_;
  std::uint64_t pool_epoch_ = 0;
  std::uint32_t pool_pending_ = 0;
  std::uint32_t pool_workers_ = 0;  // thread count the pool was built for
  Tick pool_window_end_ = 0;
  bool pool_stop_ = false;
};

}  // namespace unifab

#endif  // SRC_SIM_SHARDED_ENGINE_H_
