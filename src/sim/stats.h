// Measurement utilities shared by tests, benchmarks, and runtime policies.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace unifab {

// Accumulates scalar samples and answers summary queries. Samples are kept
// (not binned), so percentiles are exact; simulations here are short enough
// that memory is not a concern.
class Summary {
 public:
  // Records a sample. Non-finite values (NaN/inf) are rejected and counted
  // instead: one NaN would poison std::sort's strict weak ordering (UB) and
  // every aggregate derived from the samples.
  void Add(double v);

  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }
  // Samples rejected by Add for being non-finite.
  std::uint64_t NonFiniteDropped() const { return non_finite_; }
  double Sum() const { return sum_; }
  // Aggregates over an empty summary deterministically report the same 0.0
  // sentinel Percentile uses, instead of dividing by zero / dereferencing
  // an empty vector in release builds.
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;

  // Exact percentile by nearest-rank. p is clamped into [0, 100] (p < 0
  // reads the minimum, p > 100 the maximum); NaN p and an empty summary
  // both deterministically report the 0.0 sentinel (so e.g. a p99 over
  // zero completed operations reads as zero latency instead of UB).
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double P99() const { return Percentile(99.0); }

  void Clear();

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  std::uint64_t non_finite_ = 0;
};

// Fixed-width histogram for quick distribution dumps in bench output.
class Histogram {
 public:
  // Buckets cover [lo, hi) evenly; out-of-range samples land in the edge
  // buckets. `buckets` must be >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double v);
  std::uint64_t BucketCount(std::size_t i) const { return counts_[i]; }
  std::size_t NumBuckets() const { return counts_.size(); }
  std::uint64_t TotalCount() const { return total_; }

  // Renders an ASCII bar chart, one line per bucket.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Jain's fairness index over per-flow throughput: 1.0 = perfectly fair,
// 1/n = maximally unfair. Used by the arbiter benchmarks.
double JainFairnessIndex(const std::vector<double>& allocations);

}  // namespace unifab

#endif  // SRC_SIM_STATS_H_
