#include "src/sim/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

namespace unifab {

namespace {

// Formats a double the same way everywhere so snapshots diff cleanly.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FormatU64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SummaryJson(const Summary& s) {
  std::string out = "{\"count\":" + FormatU64(s.Count());
  if (s.Empty()) {
    out += "}";
    return out;
  }
  out += ",\"sum\":" + FormatDouble(s.Sum());
  out += ",\"mean\":" + FormatDouble(s.Mean());
  out += ",\"min\":" + FormatDouble(s.Min());
  out += ",\"max\":" + FormatDouble(s.Max());
  out += ",\"p50\":" + FormatDouble(s.Percentile(50.0));
  out += ",\"p99\":" + FormatDouble(s.Percentile(99.0));
  out += "}";
  return out;
}

}  // namespace

std::string MetricRegistry::Insert(const std::string& path, Instrument instrument) {
  std::string final_path = path;
  int suffix = 2;
  while (instruments_.count(final_path) != 0) {
    final_path = path + "#" + std::to_string(suffix++);
  }
  instruments_.emplace(final_path, std::move(instrument));
  return final_path;
}

Counter* MetricRegistry::AddCounter(const std::string& path) {
  auto owned = std::make_shared<Counter>();
  Counter* raw = owned.get();
  Instrument inst;
  inst.kind = Instrument::Kind::kCounter;
  inst.counter = [raw] { return raw->Value(); };
  inst.owned = owned;
  Insert(path, std::move(inst));
  return raw;
}

Gauge* MetricRegistry::AddGauge(const std::string& path) {
  auto owned = std::make_shared<Gauge>();
  Gauge* raw = owned.get();
  Instrument inst;
  inst.kind = Instrument::Kind::kGauge;
  inst.gauge = [raw] { return raw->Value(); };
  inst.owned = owned;
  Insert(path, std::move(inst));
  return raw;
}

SummaryMetric* MetricRegistry::AddSummary(const std::string& path) {
  auto owned = std::make_shared<SummaryMetric>();
  SummaryMetric* raw = owned.get();
  Instrument inst;
  inst.kind = Instrument::Kind::kSummary;
  inst.summary = [raw] { return &raw->summary(); };
  inst.owned = owned;
  Insert(path, std::move(inst));
  return raw;
}

std::string MetricRegistry::AddCounterFn(const std::string& path, CounterFn fn) {
  Instrument inst;
  inst.kind = Instrument::Kind::kCounter;
  inst.counter = std::move(fn);
  return Insert(path, std::move(inst));
}

std::string MetricRegistry::AddGaugeFn(const std::string& path, GaugeFn fn) {
  Instrument inst;
  inst.kind = Instrument::Kind::kGauge;
  inst.gauge = std::move(fn);
  return Insert(path, std::move(inst));
}

std::string MetricRegistry::AddSummaryFn(const std::string& path, SummaryFn fn) {
  Instrument inst;
  inst.kind = Instrument::Kind::kSummary;
  inst.summary = std::move(fn);
  return Insert(path, std::move(inst));
}

bool MetricRegistry::Remove(const std::string& path) { return instruments_.erase(path) != 0; }

std::size_t MetricRegistry::RemovePrefix(const std::string& prefix) {
  std::size_t removed = 0;
  auto it = instruments_.lower_bound(prefix);
  while (it != instruments_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = instruments_.erase(it);
    ++removed;
  }
  return removed;
}

std::string MetricRegistry::ClaimPrefix(const std::string& prefix) {
  const int n = ++prefix_claims_[prefix];
  if (n == 1) {
    return prefix;
  }
  return prefix + "#" + std::to_string(n);
}

std::string MetricRegistry::SnapshotJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [path, inst] : instruments_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  \"" + JsonEscape(path) + "\": ";
    switch (inst.kind) {
      case Instrument::Kind::kCounter:
        out += FormatU64(inst.counter());
        break;
      case Instrument::Kind::kGauge:
        out += FormatDouble(inst.gauge());
        break;
      case Instrument::Kind::kSummary:
        out += SummaryJson(*inst.summary());
        break;
    }
  }
  out += first ? "}" : "\n}";
  return out;
}

std::string MetricRegistry::SnapshotCsv() const {
  std::string out = "path,kind,value\n";
  for (const auto& [path, inst] : instruments_) {
    switch (inst.kind) {
      case Instrument::Kind::kCounter:
        out += path + ",counter," + FormatU64(inst.counter()) + "\n";
        break;
      case Instrument::Kind::kGauge:
        out += path + ",gauge," + FormatDouble(inst.gauge()) + "\n";
        break;
      case Instrument::Kind::kSummary: {
        const Summary* s = inst.summary();
        out += path + ".count,summary," + FormatU64(s->Count()) + "\n";
        if (!s->Empty()) {
          out += path + ".mean,summary," + FormatDouble(s->Mean()) + "\n";
          out += path + ".min,summary," + FormatDouble(s->Min()) + "\n";
          out += path + ".max,summary," + FormatDouble(s->Max()) + "\n";
          out += path + ".p50,summary," + FormatDouble(s->Percentile(50.0)) + "\n";
          out += path + ".p99,summary," + FormatDouble(s->Percentile(99.0)) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

MetricGroup::MetricGroup(MetricRegistry* registry, const std::string& prefix)
    : registry_(registry) {
  if (registry_ != nullptr) {
    prefix_ = registry_->ClaimPrefix(prefix);
  }
}

MetricGroup& MetricGroup::operator=(MetricGroup&& other) noexcept {
  if (this != &other) {
    RemoveAll();
    registry_ = other.registry_;
    prefix_ = std::move(other.prefix_);
    registered_ = std::move(other.registered_);
    detached_ = std::move(other.detached_);
    other.registry_ = nullptr;
    other.registered_.clear();
    other.detached_.clear();
  }
  return *this;
}

Counter* MetricGroup::AddCounter(const std::string& name) {
  if (registry_ == nullptr) {
    auto owned = std::make_shared<Counter>();
    detached_.push_back(owned);
    return owned.get();
  }
  Counter* c = registry_->AddCounter(Full(name));
  registered_.push_back(Full(name));
  return c;
}

Gauge* MetricGroup::AddGauge(const std::string& name) {
  if (registry_ == nullptr) {
    auto owned = std::make_shared<Gauge>();
    detached_.push_back(owned);
    return owned.get();
  }
  Gauge* g = registry_->AddGauge(Full(name));
  registered_.push_back(Full(name));
  return g;
}

SummaryMetric* MetricGroup::AddSummary(const std::string& name) {
  if (registry_ == nullptr) {
    auto owned = std::make_shared<SummaryMetric>();
    detached_.push_back(owned);
    return owned.get();
  }
  SummaryMetric* s = registry_->AddSummary(Full(name));
  registered_.push_back(Full(name));
  return s;
}

void MetricGroup::AddCounterFn(const std::string& name, MetricRegistry::CounterFn fn) {
  if (registry_ != nullptr) {
    registered_.push_back(registry_->AddCounterFn(Full(name), std::move(fn)));
  }
}

void MetricGroup::AddGaugeFn(const std::string& name, MetricRegistry::GaugeFn fn) {
  if (registry_ != nullptr) {
    registered_.push_back(registry_->AddGaugeFn(Full(name), std::move(fn)));
  }
}

void MetricGroup::AddSummaryFn(const std::string& name, MetricRegistry::SummaryFn fn) {
  if (registry_ != nullptr) {
    registered_.push_back(registry_->AddSummaryFn(Full(name), std::move(fn)));
  }
}

void MetricGroup::RemoveAll() {
  if (registry_ != nullptr) {
    for (const std::string& path : registered_) {
      registry_->Remove(path);
    }
  }
  registered_.clear();
  detached_.clear();
}

void TraceRecorder::OnSchedule(Tick now, Tick fire_at, std::uint64_t event_id) {
  ++scheduled_;
  pending_[event_id] = now;
  if (records_.size() < capacity_) {
    record_index_[event_id] = records_.size();
    records_.push_back(Record{now, fire_at, event_id, false});
  }
}

void TraceRecorder::OnFire(Tick fire_at, std::uint64_t event_id) {
  ++fired_;
  auto it = pending_.find(event_id);
  if (it != pending_.end()) {
    queue_delay_ns_.Add(ToNs(fire_at - it->second));
    pending_.erase(it);
  }
  auto rec = record_index_.find(event_id);
  if (rec != record_index_.end()) {
    Record& r = records_[rec->second];
    r.fired = true;
    r.fire_at = fire_at;
  }
}

std::string TraceRecorder::ToJsonLines() const {
  std::string out;
  for (const Record& r : records_) {
    out += "{\"event\":" + FormatU64(r.event_id) +
           ",\"scheduled_ns\":" + FormatDouble(ToNs(r.scheduled_at)) +
           ",\"fire_ns\":" + FormatDouble(ToNs(r.fire_at)) +
           ",\"fired\":" + (r.fired ? "true" : "false") + "}\n";
  }
  return out;
}

}  // namespace unifab
