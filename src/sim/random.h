// Deterministic random-number generation for workload synthesis.
//
// The simulator never uses std::random_device or global RNG state; every
// stochastic component owns a Rng seeded explicitly, so a given seed always
// reproduces the same simulation on every platform.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>
#include <vector>

namespace unifab {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and statistically
// solid for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound). `bound` must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

// Derives an independent substream seed from a campaign seed: stream i of a
// campaign gets `Rng(DeriveStream(campaign_seed, i))`. Two SplitMix64 steps
// over (seed, golden-gamma-spread stream index) decorrelate adjacent
// streams, so per-tenant generators drawn from one campaign seed neither
// collide nor march in lockstep.
std::uint64_t DeriveStream(std::uint64_t seed, std::uint64_t stream);

// Samples from a Zipf(s, n) distribution over {0, .., n-1} using an inverted
// CDF table. Used by the unified-heap benchmarks to generate skewed object
// popularity, the regime where temperature-driven migration pays off.
class ZipfGenerator {
 public:
  // `skew` is the Zipf exponent (0 = uniform); `n` must be >= 1.
  ZipfGenerator(std::uint64_t seed, double skew, std::size_t n);

  std::size_t Next();

  std::size_t size() const { return cdf_.size(); }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace unifab

#endif  // SRC_SIM_RANDOM_H_
