// A deterministic pending-event set for the discrete-event engine.
//
// Events firing at the same tick are delivered in the order they were
// scheduled (FIFO within a tick), which keeps simulations reproducible
// regardless of queue internals.
//
// Layout: a tick-bucketed calendar. Every distinct firing tick owns a bucket
// holding an intrusively linked FIFO of pooled event records; a flat
// open-addressing index maps tick -> bucket and a min-heap of distinct ticks
// orders the buckets. The per-event cost is one pool reuse plus one hash
// probe — heap traffic happens once per distinct tick, not once per event,
// and within-tick delivery is a pointer chase. Callbacks are stored inline
// in the records (EventCallback's buffer is sized for the simulator's
// hot-path lambdas, e.g. flit deliveries capturing a whole Flit), so
// steady-state scheduling performs no heap allocation.
//
// Cancellation is O(1) and eager: the record is unlinked from its bucket and
// recycled immediately instead of lingering until it surfaces, and a
// generation tag embedded in the EventId makes stale handles harmless after
// the record is reused.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace unifab {

// Legacy alias: a scheduled callback. Events are one-shot; recurring
// behaviour is built by re-scheduling from inside the callback. Callables of
// any type (lambdas, std::function, function pointers) are accepted directly
// by Push/Schedule; this alias survives for signatures that store callbacks.
using EventFn = std::function<void()>;

// Handle used to cancel a scheduled event. Encodes the pooled record's slot
// plus a generation tag, so cancellation is O(1) and a handle naming an
// already-fired (and possibly reused) record simply reports failure.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

// A move-only type-erased `void()` callable with a large inline buffer.
// Sized so the simulator's hottest lambdas (flit deliveries capturing a full
// Flit plus routing context) construct in place instead of on the heap.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  EventCallback() = default;
  EventCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        !std::is_same_v<D, std::nullptr_t>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(fn));
  }

  // Constructs a callable into an empty EventCallback in place — the
  // allocation-free path Push uses on recycled records.
  template <typename F, typename D = std::decay_t<F>>
  void Emplace(F&& fn) {
    assert(ops_ == nullptr && "Emplace requires an empty callback");
    // Null std::function / function pointers become empty callbacks: the
    // engine treats them as legal no-ops (completion-less operations).
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(fn)) {
        return;
      }
    }
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      heap_ = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { Reset(); }

  // Destroys the held callable (releasing captured resources) and empties.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(Target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(Target()); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(EventCallback* dst, EventCallback* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static void InvokeImpl(void* p) {
    (*static_cast<D*>(p))();
  }
  template <typename D>
  static void RelocateInline(EventCallback* dst, EventCallback* src) {
    D* s = std::launder(reinterpret_cast<D*>(src->buf_));
    ::new (static_cast<void*>(dst->buf_)) D(std::move(*s));
    s->~D();
  }
  static void RelocateHeap(EventCallback* dst, EventCallback* src) {
    dst->heap_ = src->heap_;
    src->heap_ = nullptr;
  }
  template <typename D>
  static void DestroyInline(void* p) {
    static_cast<D*>(p)->~D();
  }
  template <typename D>
  static void DestroyHeap(void* p) {
    delete static_cast<D*>(p);
  }

  template <typename D>
  static constexpr Ops kInlineOps{&InvokeImpl<D>, &RelocateInline<D>, &DestroyInline<D>};
  template <typename D>
  static constexpr Ops kHeapOps{&InvokeImpl<D>, &RelocateHeap, &DestroyHeap<D>};

  void MoveFrom(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(this, &other);
      other.ops_ = nullptr;
      other.heap_ = nullptr;
    }
  }

  void* Target() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  // Pointers lead so empty/inline dispatch touches the same cache line as
  // the enclosing event record's header; the buffer tail is only read by
  // callables large enough to spill past it anyway.
  const Ops* ops_ = nullptr;
  void* heap_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

class EventQueue {
 public:
  EventQueue() : table_(kInitialTable) {}

  // Not copyable: callbacks capture references into the owning simulation.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Inserts an event firing at absolute time `when`.
  template <typename F>
  EventId Push(Tick when, F&& fn) {
    Record* r = AllocRecord();
    r->when = when;
    r->fn.Emplace(std::forward<F>(fn));
    r->in_queue = true;
    Bucket* b = FindOrCreateBucket(when);
    r->prev = b->tail;
    r->next = nullptr;
    if (b->tail != nullptr) {
      b->tail->next = r;
    } else {
      b->head = r;
    }
    b->tail = r;
    ++live_;
    return MakeId(r);
  }

  // Inserts an already type-erased callback without re-wrapping it in a
  // second EventCallback (which would spill to the heap: the wrapper is
  // larger than its own inline buffer). This is the cross-shard mailbox
  // delivery path, where callbacks arrive pre-erased from another shard's
  // outbox.
  EventId PushCallback(Tick when, EventCallback fn) {
    Record* r = AllocRecord();
    r->when = when;
    r->fn = std::move(fn);
    r->in_queue = true;
    Bucket* b = FindOrCreateBucket(when);
    r->prev = b->tail;
    r->next = nullptr;
    if (b->tail != nullptr) {
      b->tail->next = r;
    } else {
      b->head = r;
    }
    b->tail = r;
    ++live_;
    return MakeId(r);
  }

  // Cancels a scheduled event: the record is unlinked from its tick bucket
  // and recycled immediately. Returns false if the id is unknown, already
  // fired, or already cancelled.
  bool Cancel(EventId id) {
    Record* r = Resolve(id);
    if (r == nullptr) {
      return false;
    }
    Bucket* b = FindBucket(r->when);
    assert(b != nullptr && "queued record without a bucket");
    if (r->prev != nullptr) {
      r->prev->next = r->next;
    } else {
      b->head = r->next;
    }
    if (r->next != nullptr) {
      r->next->prev = r->prev;
    } else {
      b->tail = r->prev;
    }
    if (b->head == nullptr) {
      EraseBucket(b);
    }
    FreeRecord(r);
    --live_;
    return true;
  }

  bool Empty() const { return live_ == 0; }
  std::size_t Size() const { return live_; }

  // Time of the earliest live event. Must not be called when Empty().
  Tick NextTime() {
    assert(!Empty());
    return CurrentBucket()->key;
  }

  struct PoppedEvent {
    Tick when;
    EventId id;
    EventCallback fn;
  };

  // Removes and returns the earliest live event. Must not be called when
  // Empty().
  PoppedEvent Pop() {
    assert(!Empty());
    Bucket* b = CurrentBucket();
    Record* r = b->head;
    b->head = r->next;
    if (b->head != nullptr) {
      b->head->prev = nullptr;
    } else {
      b->tail = nullptr;
      // CurrentBucket guarantees b->key == ticks_.top(); retire the heap
      // entry with the drained bucket so it never resurfaces stale.
      ticks_.pop();
      EraseBucket(b);
    }
    PoppedEvent out{b->key, MakeId(r), std::move(r->fn)};
    FreeRecord(r);
    --live_;
    return out;
  }

  // Pool introspection (tests assert that cancellation reclaims eagerly):
  // records ever allocated and records currently on the free list. The
  // invariant AllocatedRecords() - FreeRecords() == Size() holds whenever
  // the queue is at rest.
  std::size_t AllocatedRecords() const { return record_count_; }
  std::size_t FreeRecords() const { return free_count_; }

 private:
  friend class AuditTestPeer;  // seeded-corruption hook for audit tests

  static constexpr std::size_t kChunkShift = 7;  // 128 records per pool chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kInitialTable = 64;  // power of two

  struct Record {
    Tick when = 0;
    std::uint32_t gen = 1;
    std::uint32_t slot = 0;
    Record* prev = nullptr;
    Record* next = nullptr;
    bool in_queue = false;
    EventCallback fn;
  };

  enum : std::uint8_t { kSlotEmpty = 0, kSlotUsed = 1, kSlotTomb = 2 };

  struct Bucket {
    Tick key = 0;
    Record* head = nullptr;
    Record* tail = nullptr;
    std::uint8_t state = kSlotEmpty;
  };

  static EventId MakeId(const Record* r) {
    return (static_cast<EventId>(r->slot) + 1) << 32 | r->gen;
  }

  Record* RecordAt(std::size_t slot) {
    return &chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  Record* Resolve(EventId id) {
    const std::uint64_t hi = id >> 32;
    if (hi == 0 || hi > record_count_) {
      return nullptr;
    }
    Record* r = RecordAt(static_cast<std::size_t>(hi - 1));
    if (!r->in_queue || r->gen != static_cast<std::uint32_t>(id)) {
      return nullptr;
    }
    return r;
  }

  // Removes a drained bucket from the index. A tombstone is only required
  // when the next probe slot is occupied (a later probe chain may pass
  // through here); otherwise the slot reverts to empty and any contiguous
  // run of tombstones ending at it is cleaned up too. This keeps workloads
  // that touch each tick once (the common monotone-time pattern) entirely
  // tombstone-free, so the table never needs churn-driven rebuilds.
  void EraseBucket(Bucket* b) {
    b->head = nullptr;
    b->tail = nullptr;
    --table_used_;
    const std::size_t mask = table_.size() - 1;
    std::size_t i = static_cast<std::size_t>(b - table_.data());
    if (table_[(i + 1) & mask].state != kSlotEmpty) {
      b->state = kSlotTomb;
      ++table_tombs_;
      return;
    }
    b->state = kSlotEmpty;
    std::size_t j = (i + mask) & mask;
    while (table_tombs_ > 0 && table_[j].state == kSlotTomb) {
      table_[j].state = kSlotEmpty;
      --table_tombs_;
      j = (j + mask) & mask;
    }
  }

  Record* AllocRecord() {
    if (free_ == nullptr) {
      GrowPool();
    }
    Record* r = free_;
    free_ = r->next;
    --free_count_;
    r->prev = nullptr;
    r->next = nullptr;
    return r;
  }

  void FreeRecord(Record* r) {
    r->fn.Reset();
    r->in_queue = false;
    ++r->gen;  // stale EventIds naming this record stop resolving
    r->prev = nullptr;
    r->next = free_;
    free_ = r;
    ++free_count_;
  }

  void GrowPool() {
    auto chunk = std::make_unique<Record[]>(kChunkSize);
    const std::size_t base = record_count_;
    for (std::size_t i = kChunkSize; i-- > 0;) {
      Record& r = chunk[i];
      r.slot = static_cast<std::uint32_t>(base + i);
      r.next = free_;
      free_ = &r;
    }
    chunks_.push_back(std::move(chunk));
    record_count_ += kChunkSize;
    free_count_ += kChunkSize;
  }

  static std::size_t HashTick(Tick t) {
    std::uint64_t x = t + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  Bucket* FindBucket(Tick when) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = HashTick(when) & mask;
    for (;;) {
      Bucket& b = table_[i];
      if (b.state == kSlotEmpty) {
        return nullptr;
      }
      if (b.state == kSlotUsed && b.key == when) {
        return &b;
      }
      i = (i + 1) & mask;
    }
  }

  Bucket* FindOrCreateBucket(Tick when) {
    if ((table_used_ + table_tombs_ + 1) * 2 > table_.size()) {
      Rehash();
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t i = HashTick(when) & mask;
    std::size_t first_tomb = table_.size();
    for (;;) {
      Bucket& b = table_[i];
      if (b.state == kSlotUsed && b.key == when) {
        hot_idx_ = i;
        return &b;
      }
      if (b.state == kSlotTomb && first_tomb == table_.size()) {
        first_tomb = i;
      }
      if (b.state == kSlotEmpty) {
        const std::size_t slot = first_tomb != table_.size() ? first_tomb : i;
        Bucket& nb = table_[slot];
        if (nb.state == kSlotTomb) {
          --table_tombs_;
        }
        nb.state = kSlotUsed;
        nb.key = when;
        nb.head = nullptr;
        nb.tail = nullptr;
        ++table_used_;
        hot_idx_ = slot;
        ticks_.push(when);
        return &nb;
      }
      i = (i + 1) & mask;
    }
  }

  void Rehash() {
    // Grow when genuinely full; recycle tombstones in place otherwise.
    std::size_t new_size = table_.size();
    if ((table_used_ + 1) * 4 > table_.size()) {
      new_size *= 2;
    }
    std::vector<Bucket> fresh(new_size);
    const std::size_t mask = new_size - 1;
    for (const Bucket& b : table_) {
      if (b.state != kSlotUsed) {
        continue;
      }
      std::size_t i = HashTick(b.key) & mask;
      while (fresh[i].state == kSlotUsed) {
        i = (i + 1) & mask;
      }
      fresh[i] = b;
    }
    table_.swap(fresh);
    table_tombs_ = 0;
  }

  // Earliest bucket that still holds live events; discards heap entries
  // whose bucket has been drained or cancelled away (duplicates from
  // cancel-then-reschedule churn are dropped the same way). `hot_idx_` is a
  // self-validating cache of the last bucket touched: bucket keys are
  // unique, so if the cached slot is in use with the right key it IS the
  // right bucket, even across rehashes — no invalidation protocol needed.
  Bucket* CurrentBucket() {
    for (;;) {
      assert(!ticks_.empty());
      const Tick t = ticks_.top();
      Bucket& hot = table_[hot_idx_];
      if (hot.state == kSlotUsed && hot.key == t) {
        return &hot;
      }
      Bucket* b = FindBucket(t);
      if (b != nullptr) {
        hot_idx_ = static_cast<std::size_t>(b - table_.data());
        return b;
      }
      ticks_.pop();
    }
  }

  std::vector<std::unique_ptr<Record[]>> chunks_;  // stable pooled storage
  Record* free_ = nullptr;                         // free list threaded via next
  std::size_t record_count_ = 0;
  std::size_t free_count_ = 0;
  std::vector<Bucket> table_;  // open-addressing tick -> bucket index
  std::size_t hot_idx_ = 0;    // last bucket touched (see CurrentBucket)
  std::size_t table_used_ = 0;
  std::size_t table_tombs_ = 0;
  std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>> ticks_;
  std::size_t live_ = 0;
};

}  // namespace unifab

#endif  // SRC_SIM_EVENT_QUEUE_H_
