// A deterministic pending-event set for the discrete-event engine.
//
// Events firing at the same tick are delivered in the order they were
// scheduled (FIFO within a tick), which keeps simulations reproducible
// regardless of heap internals.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace unifab {

// A scheduled callback. Events are one-shot; recurring behaviour is built by
// re-scheduling from inside the callback.
using EventFn = std::function<void()>;

// Handle used to cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but is skipped when popped.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;

  // Not copyable: callbacks capture references into the owning simulation.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Inserts an event firing at absolute time `when`.
  EventId Push(Tick when, EventFn fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(fn)});
    pending_.insert(id);
    return id;
  }

  // Marks an event as cancelled. Returns false if the id is unknown, already
  // fired, or already cancelled.
  bool Cancel(EventId id) {
    if (pending_.erase(id) == 0) {
      return false;
    }
    cancelled_.insert(id);
    return true;
  }

  bool Empty() const { return pending_.empty(); }
  std::size_t Size() const { return pending_.size(); }

  // Time of the earliest live event. Must not be called when Empty().
  Tick NextTime() {
    SkipCancelled();
    return heap_.top().when;
  }

  struct PoppedEvent {
    Tick when;
    EventId id;
    EventFn fn;
  };

  // Removes and returns the earliest live event. Must not be called when
  // Empty().
  PoppedEvent Pop() {
    SkipCancelled();
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    pending_.erase(e.id);
    return {e.when, e.id, std::move(e.fn)};
  }

 private:
  struct Entry {
    Tick when;
    EventId id;
    EventFn fn;

    // std::priority_queue is a max-heap; invert so the earliest (and, for
    // ties, first-scheduled) event is on top.
    bool operator<(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return id > other.id;
    }
  };

  // Drops cancelled entries sitting on top of the heap. A cancelled id is
  // erased from the set once its heap entry is discarded, so the set stays
  // small even in long simulations.
  void SkipCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) {
        return;
      }
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry> heap_;
  std::unordered_set<EventId> pending_;    // scheduled, not yet fired or cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled but heap entry not yet discarded
  EventId next_id_ = 1;
};

}  // namespace unifab

#endif  // SRC_SIM_EVENT_QUEUE_H_
