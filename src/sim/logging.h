// Minimal leveled logging for the simulator. Components tag messages with
// the simulated timestamp so traces read like hardware waveforms.

#ifndef SRC_SIM_LOGGING_H_
#define SRC_SIM_LOGGING_H_

#include <sstream>
#include <string>

#include "src/sim/time.h"

namespace unifab {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages below it are discarded. Defaults to kWarn so
// tests and benches stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr: "[level] t=<ns>ns <component>: <message>".
void LogMessage(LogLevel level, Tick now, const std::string& component,
                const std::string& message);

// Stream-style helper: UF_LOG(kDebug, now, "switch0") << "flit " << id;
class LogLine {
 public:
  LogLine(LogLevel level, Tick now, std::string component)
      : level_(level), now_(now), component_(std::move(component)) {}

  ~LogLine() {
    if (level_ >= GetLogLevel()) {
      LogMessage(level_, now_, component_, out_.str());
    }
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      out_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  Tick now_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace unifab

#define UF_LOG(level, now, component) ::unifab::LogLine(::unifab::LogLevel::level, now, component)

#endif  // SRC_SIM_LOGGING_H_
