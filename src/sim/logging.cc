#include "src/sim/logging.h"

#include <cstdio>

namespace unifab {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, Tick now, const std::string& component,
                const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s] t=%.3fns %s: %s\n", LevelName(level), ToNs(now), component.c_str(),
               message.c_str());
}

}  // namespace unifab
