#include "src/sim/random.h"

#include <cassert>
#include <cmath>

namespace unifab {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t DeriveStream(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed ^ (stream * 0x9E3779B97F4A7C15ULL);
  (void)SplitMix64(state);
  return SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(std::uint64_t seed, double skew, std::size_t n) : rng_(seed) {
  assert(n >= 1);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) {
    c /= sum;
  }
}

std::size_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace unifab
