// Simulated-time primitives for the UniFabric discrete-event simulator.
//
// All simulated time is kept in integer picoseconds. Sub-nanosecond precision
// matters because cache hit latencies in the reproduced Table 2 are fractional
// nanoseconds (e.g. an L1 read costs 5.4 ns), and integer ticks keep the
// simulation fully deterministic across platforms.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace unifab {

// One tick is one picosecond of simulated time.
using Tick = std::uint64_t;

// Sentinel for "no event / never": later than any schedulable time.
inline constexpr Tick kTickNever = ~Tick{0};

inline constexpr Tick kTicksPerNs = 1000;
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
inline constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

// Converts a (possibly fractional) nanosecond count to ticks, rounding to the
// nearest picosecond.
constexpr Tick FromNs(double ns) { return static_cast<Tick>(ns * 1e3 + 0.5); }
constexpr Tick FromUs(double us) { return static_cast<Tick>(us * 1e6 + 0.5); }
constexpr Tick FromMs(double ms) { return static_cast<Tick>(ms * 1e9 + 0.5); }

// Converts ticks back to floating-point time units for reporting.
constexpr double ToNs(Tick t) { return static_cast<double>(t) / 1e3; }
constexpr double ToUs(Tick t) { return static_cast<double>(t) / 1e6; }
constexpr double ToMs(Tick t) { return static_cast<double>(t) / 1e9; }
constexpr double ToSec(Tick t) { return static_cast<double>(t) / 1e12; }

// The time it takes to move `bytes` across a link running at
// `gigabytes_per_sec`, rounded up to a whole picosecond so a transfer never
// takes zero simulated time.
constexpr Tick SerializationDelay(std::uint64_t bytes, double gigabytes_per_sec) {
  // bytes / (GB/s) = ns; ns * 1000 = ticks.
  const double ns = static_cast<double>(bytes) / gigabytes_per_sec;
  const Tick ticks = static_cast<Tick>(ns * 1e3);
  return ticks == 0 ? 1 : ticks;
}

}  // namespace unifab

#endif  // SRC_SIM_TIME_H_
