// Simulation-wide invariant auditing and determinism digests.
//
// Components register closed-form conservation checks with the engine's
// InvariantAuditor at construction, exactly the way they already register
// metrics: a Link asserts flit/credit conservation, the heap asserts
// per-tier byte accounting, the arbiter asserts its lease bookkeeping, and
// so on. A sweep evaluates every check read-only; any violation is reported
// with the registering component's path so accounting drift is caught at
// the event where it happens instead of surfacing as a wrong golden number
// thousands of events later.
//
// The RunDigest complements the auditor on the determinism axis: an
// order-sensitive FNV-1a hash folded over every fired event (tick and event
// id). Two runs of the same workload must produce bit-identical digests;
// scripts/check.sh --audit gates on exactly that.

#ifndef SRC_SIM_AUDIT_H_
#define SRC_SIM_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace unifab {

class AuditTestPeer;  // test-only hook for seeding deliberate violations

// Order-sensitive FNV-1a over a stream of 64-bit words. Folding the same
// words in the same order always yields the same value; any reordering,
// insertion, or change of a word changes it.
class RunDigest {
 public:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  void Fold(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8 * i)) & 0xFFu;
      hash_ *= kPrime;
    }
  }

  std::uint64_t value() const { return hash_; }
  void Reset() { hash_ = kOffsetBasis; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

// A conservation check. Returns an empty string while the invariant holds,
// or a human-readable description of the violation. Checks must be strictly
// read-only: a sweep runs between events and must not perturb simulation
// state (that would make audited and unaudited runs diverge).
using InvariantCheck = std::function<std::string()>;

struct InvariantViolation {
  std::string path;  // component path, e.g. "fabric/link/l0/credit_conservation"
  std::string message;
};

// Central registry of invariant checks, owned by the Engine. Paths are
// uniquified deterministically ("path", "path#2", ...) so identically named
// components coexist, mirroring MetricRegistry.
class InvariantAuditor {
 public:
  InvariantAuditor() = default;
  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  // Registers `check` under `path`; returns a handle for Unregister.
  std::uint64_t Register(const std::string& path, InvariantCheck check);
  bool Unregister(std::uint64_t id);

  // Reserves a deterministic unique component prefix (AuditScope uses this
  // so two links named "l0" audit under "l0" and "l0#2").
  std::string ClaimPrefix(const std::string& prefix);

  // Evaluates every check in registration order. Read-only by contract.
  std::vector<InvariantViolation> Sweep() const;

  std::size_t NumChecks() const { return checks_.size(); }
  std::uint64_t SweepsRun() const { return sweeps_; }

 private:
  struct Entry {
    std::uint64_t id;
    std::string path;
    InvariantCheck check;
  };

  std::vector<Entry> checks_;  // registration order => deterministic reports
  std::unordered_map<std::string, int> path_claims_;
  std::uint64_t next_id_ = 1;
  mutable std::uint64_t sweeps_ = 0;
};

// RAII bundle of checks under one component prefix, mirroring MetricGroup:
// a component keeps one AuditScope member declared after the state its
// checks read, so destruction unregisters the checks first. A
// default-constructed scope is detached and ignores registrations.
class AuditScope {
 public:
  AuditScope() = default;
  AuditScope(InvariantAuditor* auditor, const std::string& prefix);
  ~AuditScope() { RemoveAll(); }

  AuditScope(AuditScope&& other) noexcept { *this = std::move(other); }
  AuditScope& operator=(AuditScope&& other) noexcept;
  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

  bool attached() const { return auditor_ != nullptr; }
  const std::string& prefix() const { return prefix_; }

  // Registers `check` under "<prefix>/<name>".
  void AddCheck(const std::string& name, InvariantCheck check);

  void RemoveAll();

 private:
  InvariantAuditor* auditor_ = nullptr;
  std::string prefix_;
  std::vector<std::uint64_t> registered_;
};

}  // namespace unifab

#endif  // SRC_SIM_AUDIT_H_
