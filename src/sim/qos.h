// QoS service classes shared by the scenario spec (src/sim) and the fabric
// arbiter (src/core). Lives in sim/ because the scenario DSL must name
// classes without pulling in core headers.

#ifndef SRC_SIM_QOS_H_
#define SRC_SIM_QOS_H_

#include <cstdint>

namespace unifab {

// Ordered by strictness: kGuaranteed may preempt kBestEffort leases at the
// arbiter; kBurstable shares by weight but never preempts.
enum class QosClass : std::uint8_t {
  kGuaranteed = 0,
  kBurstable = 1,
  kBestEffort = 2,
};

inline constexpr int kNumQosClasses = 3;

inline const char* QosClassName(QosClass c) {
  switch (c) {
    case QosClass::kGuaranteed:
      return "guaranteed";
    case QosClass::kBurstable:
      return "burstable";
    case QosClass::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

}  // namespace unifab

#endif  // SRC_SIM_QOS_H_
