#include "src/sim/audit.h"

#include <algorithm>

namespace unifab {

std::uint64_t InvariantAuditor::Register(const std::string& path, InvariantCheck check) {
  std::string unique = path;
  const int claim = ++path_claims_[path];
  if (claim > 1) {
    unique += "#" + std::to_string(claim);
  }
  const std::uint64_t id = next_id_++;
  checks_.push_back(Entry{id, std::move(unique), std::move(check)});
  return id;
}

bool InvariantAuditor::Unregister(std::uint64_t id) {
  auto it = std::find_if(checks_.begin(), checks_.end(),
                         [id](const Entry& e) { return e.id == id; });
  if (it == checks_.end()) {
    return false;
  }
  checks_.erase(it);
  return true;
}

std::string InvariantAuditor::ClaimPrefix(const std::string& prefix) {
  const int claim = ++path_claims_[prefix];
  return claim == 1 ? prefix : prefix + "#" + std::to_string(claim);
}

std::vector<InvariantViolation> InvariantAuditor::Sweep() const {
  ++sweeps_;
  std::vector<InvariantViolation> violations;
  for (const Entry& entry : checks_) {
    std::string message = entry.check();
    if (!message.empty()) {
      violations.push_back(InvariantViolation{entry.path, std::move(message)});
    }
  }
  return violations;
}

AuditScope::AuditScope(InvariantAuditor* auditor, const std::string& prefix)
    : auditor_(auditor) {
  if (auditor_ != nullptr) {
    prefix_ = auditor_->ClaimPrefix(prefix);
  }
}

AuditScope& AuditScope::operator=(AuditScope&& other) noexcept {
  if (this != &other) {
    RemoveAll();
    auditor_ = other.auditor_;
    prefix_ = std::move(other.prefix_);
    registered_ = std::move(other.registered_);
    other.auditor_ = nullptr;
    other.prefix_.clear();
    other.registered_.clear();
  }
  return *this;
}

void AuditScope::AddCheck(const std::string& name, InvariantCheck check) {
  if (auditor_ == nullptr) {
    return;
  }
  registered_.push_back(auditor_->Register(prefix_ + "/" + name, std::move(check)));
}

void AuditScope::RemoveAll() {
  if (auditor_ == nullptr) {
    return;
  }
  for (std::uint64_t id : registered_) {
    auditor_->Unregister(id);
  }
  registered_.clear();
}

}  // namespace unifab
