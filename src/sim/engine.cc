#include "src/sim/engine.h"

#include <cassert>
#include <utility>

namespace unifab {

Engine::Engine() {
  metrics_.AddGaugeFn("sim/engine/now_ns", [this] { return ToNs(now_); });
  metrics_.AddCounterFn("sim/engine/events_fired", [this] { return fired_; });
  metrics_.AddCounterFn("sim/engine/events_pending",
                        [this] { return static_cast<std::uint64_t>(queue_.Size()); });
}

void Engine::FireNext() {
  auto [when, id, fn] = queue_.Pop();
  assert(when >= now_);
  now_ = when;
  ++fired_;
  if (trace_ != nullptr) {
    trace_->OnFire(when, id);
  }
  if (fn) {
    fn();  // null callbacks are legal no-ops (completion-less operations)
  }
}

std::size_t Engine::Run() {
  std::size_t n = 0;
  while (!queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

std::size_t Engine::RunUntil(Tick deadline) {
  std::size_t n = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    FireNext();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

std::size_t Engine::Step(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

}  // namespace unifab
