#include "src/sim/engine.h"

#include <cassert>
#include <utility>

namespace unifab {

EventId Engine::ScheduleAt(Tick when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.Push(when, std::move(fn));
}

void Engine::FireNext() {
  auto [when, fn] = queue_.Pop();
  assert(when >= now_);
  now_ = when;
  ++fired_;
  if (fn) {
    fn();  // null callbacks are legal no-ops (completion-less operations)
  }
}

std::size_t Engine::Run() {
  std::size_t n = 0;
  while (!queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

std::size_t Engine::RunUntil(Tick deadline) {
  std::size_t n = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    FireNext();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

std::size_t Engine::Step(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

}  // namespace unifab
