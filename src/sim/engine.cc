#include "src/sim/engine.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/sim/sharded_engine.h"

namespace unifab {

namespace {

// Default sweep granularity when UNIFAB_AUDIT=1 asks for "on": frequent
// enough to pin a violation to a small window of events, cheap enough that
// audited test runs stay fast.
constexpr std::uint64_t kDefaultAuditCadence = 256;

std::uint64_t AuditCadenceFromEnv() {
  const char* env = std::getenv("UNIFAB_AUDIT");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) {
    return 0;
  }
  return v == 1 ? kDefaultAuditCadence : static_cast<std::uint64_t>(v);
}

}  // namespace

thread_local Engine* Engine::current_shard_ = nullptr;

void Engine::RegisterEngineInstruments(MetricRegistry& registry, InvariantAuditor& auditor,
                                       const std::string& prefix) {
  registry.AddGaugeFn(prefix + "now_ns", [this] { return ToNs(now_); });
  registry.AddCounterFn(prefix + "events_fired", [this] { return fired_; });
  registry.AddCounterFn(prefix + "events_pending",
                        [this] { return static_cast<std::uint64_t>(queue_.Size()); });
  registry.AddCounterFn(prefix + "late_schedules", [this] { return late_schedules_; });
  // The queue's pooled-record accounting is the engine's own conservation
  // law; everything else registers through components' AuditScopes.
  auditor.Register(prefix + "event_queue/record_conservation", [this]() -> std::string {
    const std::size_t allocated = queue_.AllocatedRecords();
    const std::size_t free_records = queue_.FreeRecords();
    const std::size_t live = queue_.Size();
    if (allocated - free_records != live) {
      return "allocated(" + std::to_string(allocated) + ") - free(" +
             std::to_string(free_records) + ") != pending(" + std::to_string(live) + ")";
    }
    return {};
  });
  // A late schedule means a stale callback computed a firing time behind the
  // clock; the clamp in ScheduleAt keeps tick order intact but the intent
  // was wrong, so audited runs must fail.
  auditor.Register(prefix + "late_schedules", [this]() -> std::string {
    if (late_schedules_ != 0) {
      return std::to_string(late_schedules_) +
             " event(s) scheduled into the past (clamped to Now())";
    }
    return {};
  });
}

Engine::Engine() {
  RegisterEngineInstruments(metrics_, auditor_, "sim/engine/");
  audit_cadence_ = AuditCadenceFromEnv();
}

Engine::Engine(ShardedEngine* group, std::uint32_t shard_index, std::uint64_t rng_seed)
    : group_(group), shard_index_(shard_index), rng_(rng_seed) {
  const std::string prefix = "sim/engine/shard" + std::to_string(shard_index) + "/";
  RegisterEngineInstruments(group->metrics(), group->audit(), prefix);
  group->metrics().AddCounterFn(prefix + "cross_staged", [this] { return cross_seq_; });
  group->metrics().AddCounterFn(prefix + "cross_cancels_refused",
                                [this] { return cross_cancels_refused_; });
  audit_cadence_ = AuditCadenceFromEnv();
}

Engine::~Engine() {
  if (group_ != nullptr || !audit_enabled_ever_) {
    // A shard's digest is folded into (and reported by) its group.
    return;
  }
  // stderr, not the metrics snapshot: golden BENCH_*.json stay bit-for-bit
  // identical whether or not a run was audited.
  std::fprintf(stderr, "[unifab-audit] digest=%016" PRIx64 " events=%" PRIu64 "\n",
               digest_.value(), fired_);
}

MetricRegistry& Engine::metrics() { return group_ != nullptr ? group_->metrics() : metrics_; }
const MetricRegistry& Engine::metrics() const {
  return group_ != nullptr ? group_->metrics() : metrics_;
}

InvariantAuditor& Engine::audit() { return group_ != nullptr ? group_->audit() : auditor_; }
const InvariantAuditor& Engine::audit() const {
  return group_ != nullptr ? group_->audit() : auditor_;
}

void Engine::SetAuditCadence(std::uint64_t every_n_events) {
  if (group_ != nullptr) {
    group_->SetAuditCadence(every_n_events);
    return;
  }
  audit_cadence_ = every_n_events;
  events_since_audit_ = 0;
}

void Engine::AuditNow() {
  if (group_ != nullptr) {
    group_->AuditNow();
    return;
  }
  const auto violations = auditor_.Sweep();
  if (violations.empty()) {
    return;
  }
  for (const auto& v : violations) {
    std::fprintf(stderr, "[unifab-audit] INVARIANT VIOLATION at t=%" PRIu64 "ps %s: %s\n",
                 now_, v.path.c_str(), v.message.c_str());
  }
  std::abort();
}

void Engine::FireNext() {
  auto [when, id, fn] = queue_.Pop();
  assert(when >= now_);
  now_ = when;
  ++fired_;
  if (trace_ != nullptr) {
    trace_->OnFire(when, id);
  }
  if (fn) {
    fn();  // null callbacks are legal no-ops (completion-less operations)
  }
  if (audit_cadence_ != 0) {
    audit_enabled_ever_ = true;
    digest_.Fold(when);
    digest_.Fold(id);
    if (++events_since_audit_ >= audit_cadence_) {
      events_since_audit_ = 0;
      if (group_ != nullptr && !group_solo_) {
        // Sweeps read every domain's state; defer to the window barrier.
        audit_requested_ = true;
      } else {
        AuditNow();
      }
    }
  }
}

std::size_t Engine::Run() { return group_ != nullptr ? group_->Run() : RunLocal(); }

std::size_t Engine::RunUntil(Tick deadline) {
  return group_ != nullptr ? group_->RunUntil(deadline) : RunUntilLocal(deadline);
}

std::size_t Engine::Step(std::size_t max_events) {
  return group_ != nullptr ? group_->Step(max_events) : StepLocal(max_events);
}

bool Engine::Idle() const { return group_ != nullptr ? group_->Idle() : queue_.Empty(); }

std::size_t Engine::PendingEvents() const {
  return group_ != nullptr ? group_->PendingEvents() : queue_.Size();
}

std::uint64_t Engine::TotalFired() const {
  return group_ != nullptr ? group_->TotalFired() : fired_;
}

std::size_t Engine::RunLocal() {
  std::size_t n = 0;
  while (!queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

std::size_t Engine::RunUntilLocal(Tick deadline) {
  std::size_t n = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    FireNext();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

std::size_t Engine::StepLocal(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

std::size_t Engine::RunEventsUntilLocal(Tick deadline) {
  Engine* prev = current_shard_;
  current_shard_ = this;
  std::size_t n = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    FireNext();
    ++n;
  }
  current_shard_ = prev;
  return n;
}

}  // namespace unifab
