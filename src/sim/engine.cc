#include "src/sim/engine.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace unifab {

namespace {

// Default sweep granularity when UNIFAB_AUDIT=1 asks for "on": frequent
// enough to pin a violation to a small window of events, cheap enough that
// audited test runs stay fast.
constexpr std::uint64_t kDefaultAuditCadence = 256;

std::uint64_t AuditCadenceFromEnv() {
  const char* env = std::getenv("UNIFAB_AUDIT");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) {
    return 0;
  }
  return v == 1 ? kDefaultAuditCadence : static_cast<std::uint64_t>(v);
}

}  // namespace

Engine::Engine() {
  metrics_.AddGaugeFn("sim/engine/now_ns", [this] { return ToNs(now_); });
  metrics_.AddCounterFn("sim/engine/events_fired", [this] { return fired_; });
  metrics_.AddCounterFn("sim/engine/events_pending",
                        [this] { return static_cast<std::uint64_t>(queue_.Size()); });
  // The queue's pooled-record accounting is the engine's own conservation
  // law; everything else registers through components' AuditScopes.
  auditor_.Register("sim/engine/event_queue/record_conservation", [this]() -> std::string {
    const std::size_t allocated = queue_.AllocatedRecords();
    const std::size_t free_records = queue_.FreeRecords();
    const std::size_t live = queue_.Size();
    if (allocated - free_records != live) {
      return "allocated(" + std::to_string(allocated) + ") - free(" +
             std::to_string(free_records) + ") != pending(" + std::to_string(live) + ")";
    }
    return {};
  });
  audit_cadence_ = AuditCadenceFromEnv();
}

Engine::~Engine() {
  if (!audit_enabled_ever_) {
    return;
  }
  // stderr, not the metrics snapshot: golden BENCH_*.json stay bit-for-bit
  // identical whether or not a run was audited.
  std::fprintf(stderr, "[unifab-audit] digest=%016" PRIx64 " events=%" PRIu64 "\n",
               digest_.value(), fired_);
}

void Engine::AuditNow() {
  const auto violations = auditor_.Sweep();
  if (violations.empty()) {
    return;
  }
  for (const auto& v : violations) {
    std::fprintf(stderr, "[unifab-audit] INVARIANT VIOLATION at t=%" PRIu64 "ps %s: %s\n",
                 now_, v.path.c_str(), v.message.c_str());
  }
  std::abort();
}

void Engine::FireNext() {
  auto [when, id, fn] = queue_.Pop();
  assert(when >= now_);
  now_ = when;
  ++fired_;
  if (trace_ != nullptr) {
    trace_->OnFire(when, id);
  }
  if (fn) {
    fn();  // null callbacks are legal no-ops (completion-less operations)
  }
  if (audit_cadence_ != 0) {
    audit_enabled_ever_ = true;
    digest_.Fold(when);
    digest_.Fold(id);
    if (++events_since_audit_ >= audit_cadence_) {
      events_since_audit_ = 0;
      AuditNow();
    }
  }
}

std::size_t Engine::Run() {
  std::size_t n = 0;
  while (!queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

std::size_t Engine::RunUntil(Tick deadline) {
  std::size_t n = 0;
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    FireNext();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

std::size_t Engine::Step(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && !queue_.Empty()) {
    FireNext();
    ++n;
  }
  return n;
}

}  // namespace unifab
