#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace unifab {

void Summary::Add(double v) {
  if (!std::isfinite(v)) {
    ++non_finite_;
    return;
  }
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double Summary::Mean() const {
  if (samples_.empty()) {
    return 0.0;  // same deterministic sentinel as Percentile
  }
  return sum_ / static_cast<double>(samples_.size());
}

void Summary::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return samples_.front();
}

double Summary::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return samples_.back();
}

double Summary::Stddev() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;  // deterministic sentinel: no samples, no latency
  }
  if (std::isnan(p)) {
    // NaN compares false against both clamp bounds below and would flow
    // into ceil()/size_t conversion — UB. Same sentinel as the empty case.
    return 0.0;
  }
  SortIfNeeded();
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) {
    --idx;
  }
  if (idx >= samples_.size()) {
    idx = samples_.size() - 1;
  }
  return samples_[idx];
}

void Summary::Clear() {
  samples_.clear();
  sum_ = 0.0;
  sorted_ = true;
  non_finite_ = 0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets) : lo_(lo), hi_(hi) {
  assert(buckets >= 1);
  assert(hi > lo);
  counts_.resize(buckets, 0);
}

void Histogram::Add(double v) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double offset = (v - lo_) / width;
  std::size_t idx = 0;
  if (offset > 0.0) {
    idx = static_cast<std::size_t>(offset);
    if (idx >= counts_.size()) {
      idx = counts_.size() - 1;
    }
  }
  ++counts_[idx];
  ++total_;
}

std::string Histogram::ToString() const {
  if (total_ == 0) {
    return "(no samples)\n";
  }
  std::ostringstream out;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::uint64_t max_count = 0;
  for (auto c : counts_) {
    max_count = std::max(max_count, c);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + width * static_cast<double>(i);
    const int bar = max_count == 0 ? 0
                                   : static_cast<int>(50.0 * static_cast<double>(counts_[i]) /
                                                      static_cast<double>(max_count));
    // The edge buckets also absorb out-of-range samples; label them so the
    // rendered ranges are honest.
    if (i == 0) {
      out << "[<" << (b_lo + width) << ")";
    } else if (i + 1 == counts_.size()) {
      out << "[" << b_lo << "+)";
    } else {
      out << "[" << b_lo << ", " << (b_lo + width) << ")";
    }
    out << " " << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double JainFairnessIndex(const std::vector<double>& allocations) {
  if (allocations.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double a : allocations) {
    sum += a;
    sum_sq += a * a;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace unifab
