#include "src/sim/scenario.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace unifab {
namespace {

// "key=value" -> raw value string; false when the token doesn't match `key`.
bool KeyValue(const std::string& token, const char* key, std::string* out) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = token.substr(prefix.size());
  return true;
}

bool ToDouble(const std::string& s, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool ToU64(const std::string& s, std::uint64_t* out) {
  try {
    std::size_t used = 0;
    *out = std::stoull(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool ParseQos(const std::string& s, QosClass* out) {
  for (int c = 0; c < kNumQosClasses; ++c) {
    if (s == QosClassName(static_cast<QosClass>(c))) {
      *out = static_cast<QosClass>(c);
      return true;
    }
  }
  return false;
}

bool ParseArrival(const std::string& s, ArrivalKind* out) {
  for (auto k : {ArrivalKind::kPoisson, ArrivalKind::kDeterministic, ArrivalKind::kBursty}) {
    if (s == ArrivalKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool ParseOp(const std::string& s, TenantOp* out) {
  for (int i = 0; i < kNumTenantOps; ++i) {
    if (s == TenantOpName(static_cast<TenantOp>(i))) {
      *out = static_cast<TenantOp>(i);
      return true;
    }
  }
  return false;
}

// "etrans:4,heap_read:2,faa:1" -> weights (unlisted ops get 0).
bool ParseMix(const std::string& s, double (*mix)[kNumTenantOps]) {
  for (double& w : *mix) {
    w = 0.0;
  }
  std::istringstream in(s);
  std::string item;
  bool any = false;
  while (std::getline(in, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    TenantOp op;
    double weight = 0.0;
    if (!ParseOp(item.substr(0, colon), &op) ||
        !ToDouble(item.substr(colon + 1), &weight) || weight < 0.0) {
      return false;
    }
    (*mix)[static_cast<int>(op)] = weight;
    any = weight > 0.0 || any;
  }
  return any;
}

}  // namespace

const char* ArrivalKindName(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDeterministic:
      return "deterministic";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "unknown";
}

const char* TenantOpName(TenantOp op) {
  switch (op) {
    case TenantOp::kETrans:
      return "etrans";
    case TenantOp::kHeapRead:
      return "heap_read";
    case TenantOp::kHeapWrite:
      return "heap_write";
    case TenantOp::kHeapMigrate:
      return "heap_migrate";
    case TenantOp::kCollect:
      return "collect";
    case TenantOp::kFaa:
      return "faa";
  }
  return "unknown";
}

std::uint32_t ScenarioSpec::TotalTenants() const {
  std::uint32_t total = 0;
  for (const auto& c : classes) {
    total += c.tenants;
  }
  return total;
}

ScenarioSpec ScenarioSpec::Parse(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    spec.errors.push_back("line " + std::to_string(line_no) + ": " + why);
  };
  while (std::getline(lines, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream in(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (in >> tok) {
      tokens.push_back(tok);
    }
    if (tokens.empty()) {
      continue;  // blank line / pure comment
    }
    const std::string& verb = tokens[0];
    if (verb == "scenario" && tokens.size() == 2) {
      spec.name = tokens[1];
      continue;
    }
    if (verb == "seed" && tokens.size() == 2) {
      if (!ToU64(tokens[1], &spec.seed)) {
        fail("bad seed '" + tokens[1] + "'");
      }
      continue;
    }
    if (verb == "horizon_us" && tokens.size() == 2) {
      if (!ToDouble(tokens[1], &spec.horizon_us) || spec.horizon_us <= 0.0) {
        fail("bad horizon_us '" + tokens[1] + "'");
      }
      continue;
    }
    if (verb == "pods" && tokens.size() == 2) {
      std::uint64_t u = 0;
      if (!ToU64(tokens[1], &u) || u < 1 || u > 16) {
        fail("bad pods '" + tokens[1] + "' (want 1..16)");
      } else {
        spec.pods = static_cast<std::uint32_t>(u);
      }
      continue;
    }
    if (verb == "class") {
      TenantClassSpec cls;
      bool ok = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& t = tokens[i];
        std::string v;
        std::uint64_t u = 0;
        double d = 0.0;
        if (KeyValue(t, "name", &v)) {
          cls.name = v;
        } else if (KeyValue(t, "qos", &v)) {
          ok = ParseQos(v, &cls.qos) && ok;
        } else if (KeyValue(t, "arrival", &v)) {
          ok = ParseArrival(v, &cls.arrival) && ok;
        } else if (KeyValue(t, "tenants", &v)) {
          ok = ToU64(v, &u) && u >= 1 && ok;
          cls.tenants = static_cast<std::uint32_t>(u);
        } else if (KeyValue(t, "burst", &v)) {
          ok = ToU64(v, &u) && u >= 1 && ok;
          cls.burst = static_cast<std::uint32_t>(u);
        } else if (KeyValue(t, "bytes", &v)) {
          ok = ToU64(v, &cls.bytes) && cls.bytes >= 1 && ok;
        } else if (KeyValue(t, "rate_ops_s", &v)) {
          ok = ToDouble(v, &d) && d > 0.0 && ok;
          cls.rate_ops_per_s = d;
        } else if (KeyValue(t, "request_mbps", &v)) {
          ok = ToDouble(v, &d) && d > 0.0 && ok;
          cls.request_mbps = d;
        } else if (KeyValue(t, "slo_p99_us", &v)) {
          ok = ToDouble(v, &d) && d >= 0.0 && ok;
          cls.slo_p99_us = d;
        } else if (KeyValue(t, "mix", &v)) {
          ok = ParseMix(v, &cls.mix) && ok;
        } else {
          ok = false;
        }
        if (!ok) {
          fail("bad class token '" + t + "'");
          break;
        }
      }
      if (ok) {
        if (cls.name.empty()) {
          cls.name = "class" + std::to_string(spec.classes.size());
        }
        spec.classes.push_back(std::move(cls));
      }
      continue;
    }
    fail("unknown directive '" + verb + "'");
  }
  if (spec.classes.empty()) {
    spec.errors.push_back("scenario has no classes");
  }
  return spec;
}

ScenarioSpec ScenarioSpec::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ScenarioSpec spec;
    spec.errors.push_back("cannot open scenario file '" + path + "'");
    return spec;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

}  // namespace unifab
