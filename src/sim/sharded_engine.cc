#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <tuple>
#include <utility>

namespace unifab {

namespace {

// Worker-thread count from UNIFAB_SHARDS. This intentionally does NOT set
// the number of logical shards — the domain partition is fixed by the
// topology so that event order (and the RunDigest) never depends on how
// many OS threads happen to execute it.
std::uint32_t WorkersFromEnv() {
  const char* env = std::getenv("UNIFAB_SHARDS");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || v == 0) {
    return 1;
  }
  return static_cast<std::uint32_t>(v < 256 ? v : 256);
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedEngine::ShardedEngine() : ShardedEngine(Options{}) {}

ShardedEngine::ShardedEngine(const Options& options)
    : options_(options),
      workers_(options.workers != 0 ? options.workers : WorkersFromEnv()),
      lookahead_(options.lookahead > 0 ? options.lookahead : 1) {
  metrics_.AddGaugeFn("sim/engine/now_ns", [this] { return ToNs(Now()); });
  metrics_.AddCounterFn("sim/engine/events_fired", [this] { return TotalFired(); });
  metrics_.AddCounterFn("sim/engine/events_pending", [this] {
    std::uint64_t pending = 0;
    for (const auto& s : shards_) {
      pending += s->queue_.Size();
    }
    return pending;
  });
  metrics_.AddCounterFn("sim/engine/late_schedules", [this] {
    std::uint64_t late = 0;
    for (const auto& s : shards_) {
      late += s->late_schedules_;
    }
    return late;
  });
  metrics_.AddCounterFn("sim/engine/shards",
                        [this] { return static_cast<std::uint64_t>(shards_.size()); });
  metrics_.AddCounterFn("sim/engine/windows", [this] { return windows_; });
  metrics_.AddCounterFn("sim/engine/cross_events", [this] { return cross_delivered_; });
  metrics_.AddCounterFn("sim/engine/global_events", [this] { return globals_fired_; });
  metrics_.AddGaugeFn("sim/engine/lookahead_ns", [this] { return ToNs(lookahead_); });
  // Sweeps only run with every shard parked at a barrier, where all staged
  // cross-shard traffic must already have been merged into its destination.
  auditor_.Register("sim/engine/cross_mailboxes_drained", [this]() -> std::string {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      for (std::size_t dst = 0; dst < shards_[i]->outbox_.size(); ++dst) {
        if (!shards_[i]->outbox_[dst].empty()) {
          return "shard " + std::to_string(i) + " holds " +
                 std::to_string(shards_[i]->outbox_[dst].size()) +
                 " unharvested event(s) for shard " + std::to_string(dst);
        }
      }
    }
    return {};
  });
  AddShard("root");
}

ShardedEngine::~ShardedEngine() {
  StopPool();
  bool audited = false;
  std::uint64_t events = 0;
  for (const auto& s : shards_) {
    audited = audited || s->audit_enabled_ever_;
    events += s->fired_;
  }
  if (!audited) {
    return;
  }
  std::fprintf(stderr, "[unifab-audit] digest=%016" PRIx64 " events=%" PRIu64 "\n",
               MergedDigest(), events);
}

Engine& ShardedEngine::AddShard(const std::string& name) {
  assert(windows_ == 0 && "shards must be added before the first run");
  const auto index = static_cast<std::uint32_t>(shards_.size());
  shards_.push_back(std::unique_ptr<Engine>(
      new Engine(this, index, MixSeed(options_.seed, index))));
  shard_names_.push_back(name);
  const bool solo = shards_.size() == 1;
  for (auto& s : shards_) {
    s->group_solo_ = solo;
    s->outbox_.resize(shards_.size());
  }
  return *shards_.back();
}

void ShardedEngine::SetLookahead(Tick lookahead) {
  lookahead_ = lookahead > 0 ? lookahead : 1;
}

void ShardedEngine::SetAuditCadence(std::uint64_t every_n_events) {
  for (auto& s : shards_) {
    s->audit_cadence_ = every_n_events;
    s->events_since_audit_ = 0;
  }
}

void ShardedEngine::AuditNow() {
  const auto violations = auditor_.Sweep();
  if (violations.empty()) {
    return;
  }
  for (const auto& v : violations) {
    std::fprintf(stderr, "[unifab-audit] INVARIANT VIOLATION at t=%" PRIu64 "ps %s: %s\n",
                 Now(), v.path.c_str(), v.message.c_str());
  }
  std::abort();
}

std::uint64_t ShardedEngine::MergedDigest() const {
  RunDigest merged;
  for (const auto& s : shards_) {
    merged.Fold(s->digest_.value());
    merged.Fold(s->fired_);
  }
  return merged.value();
}

Tick ShardedEngine::Now() const {
  Tick now = 0;
  for (const auto& s : shards_) {
    now = std::max(now, s->now_);
  }
  return now;
}

bool ShardedEngine::Idle() const { return PendingEvents() == 0; }

std::size_t ShardedEngine::PendingEvents() const {
  std::size_t pending = globals_.size();
  for (const auto& s : shards_) {
    pending += s->queue_.Size() + s->global_staging_.size();
  }
  return pending;
}

std::uint64_t ShardedEngine::TotalFired() const {
  std::uint64_t fired = 0;
  for (const auto& s : shards_) {
    fired += s->fired_;
  }
  return fired;
}

Tick ShardedEngine::MinNextEventTime() {
  Tick next = kTickNever;
  for (auto& s : shards_) {
    next = std::min(next, s->NextLocalEventTime());
  }
  return next;
}

std::size_t ShardedEngine::Run() {
  if (shards_.size() == 1) {
    return shards_[0]->RunLocal();
  }
  const std::size_t fired = RunCore(kTickNever, 0);
  // Align every shard clock to the last fired tick so a subsequent RunFor
  // measures from one well-defined instant, as it did single-threaded.
  Tick now = Now();
  for (auto& s : shards_) {
    s->now_ = now;
  }
  return fired;
}

std::size_t ShardedEngine::RunUntil(Tick deadline) {
  if (shards_.size() == 1) {
    return shards_[0]->RunUntilLocal(deadline);
  }
  const std::size_t fired = RunCore(deadline, 0);
  for (auto& s : shards_) {
    if (s->now_ < deadline) {
      s->now_ = deadline;
    }
  }
  return fired;
}

std::size_t ShardedEngine::Step(std::size_t max_events) {
  if (shards_.size() == 1) {
    return shards_[0]->StepLocal(max_events);
  }
  return RunCore(kTickNever, max_events);
}

std::size_t ShardedEngine::RunCore(Tick deadline, std::size_t max_events) {
  CollectGlobals();  // pick up globals staged from parked (setup) context
  std::size_t total = 0;
  for (;;) {
    if (max_events != 0 && total >= max_events) {
      break;
    }
    const Tick m = MinNextEventTime();
    const Tick g = globals_.empty() ? kTickNever : globals_.front().when;
    const Tick start = std::min(m, g);
    if (start == kTickNever || start > deadline) {
      break;
    }
    Tick window_end = std::min(deadline, g);
    if (m != kTickNever) {
      // Conservative window: nothing another domain does before
      // m + lookahead can reach this domain at or before window_end.
      const Tick cap =
          m > kTickNever - lookahead_ ? kTickNever - 1 : m + lookahead_ - 1;
      window_end = std::min(window_end, cap);
    }
    total += RunWindow(window_end);
    last_window_end_ = window_end;
    HarvestMailboxes(window_end);
    CollectGlobals();
    ServiceAuditRequests();
    total += FireGlobals(window_end);
  }
  return total;
}

std::size_t ShardedEngine::RunWindow(Tick window_end) {
  ++windows_;
  const auto n = static_cast<std::uint32_t>(shards_.size());
  std::uint64_t before = 0;
  std::uint32_t active = 0;
  for (auto& s : shards_) {
    before += s->fired_;
    if (s->NextLocalEventTime() <= window_end) {
      ++active;
    }
  }
  const std::uint32_t w = std::min(workers_, n);
  if (w <= 1 || active <= 1) {
    // One busy shard (or one worker): skip the pool round-trip. The result
    // is identical either way — shard queues are independent inside a
    // window — so this is purely a wall-clock fast path.
    for (auto& s : shards_) {
      s->RunEventsUntilLocal(window_end);
    }
  } else {
    EnsurePool(w);
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      pool_window_end_ = window_end;
      pool_pending_ = w - 1;
      ++pool_epoch_;
    }
    pool_start_.notify_all();
    RunShardsOnWorker(0, window_end);
    std::unique_lock<std::mutex> lock(pool_mu_);
    pool_done_.wait(lock, [this] { return pool_pending_ == 0; });
  }
  std::uint64_t after = 0;
  for (const auto& s : shards_) {
    after += s->fired_;
  }
  return static_cast<std::size_t>(after - before);
}

void ShardedEngine::RunShardsOnWorker(std::uint32_t worker, Tick window_end) {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  const std::uint32_t w = std::min(workers_, n);
  for (std::uint32_t s = worker; s < n; s += w) {
    shards_[s]->RunEventsUntilLocal(window_end);
  }
}

void ShardedEngine::HarvestMailboxes(Tick window_end) {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    merge_scratch_.clear();
    for (std::uint32_t src = 0; src < n; ++src) {
      for (auto& e : shards_[src]->outbox_[dst]) {
        if (e.when <= window_end) {
          // A component reached another domain faster than the minimum
          // inter-domain link latency: the lookahead contract (and with it
          // determinism) is broken. Fail fast.
          std::fprintf(stderr,
                       "[unifab] FATAL: lookahead violation: shard %u (%s) scheduled "
                       "t=%" PRIu64 "ps on shard %u (%s) inside the window ending "
                       "t=%" PRIu64 "ps (lookahead=%" PRIu64 "ps)\n",
                       src, shard_names_[src].c_str(), e.when, dst,
                       shard_names_[dst].c_str(), window_end, lookahead_);
          std::abort();
        }
        merge_scratch_.push_back(MergeEntry{e.when, src, e.seq, &e.fn});
      }
    }
    if (merge_scratch_.empty()) {
      continue;
    }
    // Canonical merge order — (tick, source shard, source sequence) — keeps
    // the destination queue's same-tick FIFO order (and its EventId
    // allocation order) independent of worker-thread interleaving.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeEntry& a, const MergeEntry& b) {
                return std::tie(a.when, a.src, a.seq) < std::tie(b.when, b.src, b.seq);
              });
    for (auto& entry : merge_scratch_) {
      shards_[dst]->queue_.PushCallback(entry.when, std::move(*entry.fn));
    }
    cross_delivered_ += merge_scratch_.size();
    for (std::uint32_t src = 0; src < n; ++src) {
      shards_[src]->outbox_[dst].clear();
    }
  }
}

void ShardedEngine::CollectGlobals() {
  bool added = false;
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    auto& staged = shards_[i]->global_staging_;
    for (auto& e : staged) {
      globals_.push_back(GlobalEvent{e.when, i, e.seq, std::move(e.fn)});
      added = true;
    }
    staged.clear();
  }
  if (added) {
    std::sort(globals_.begin(), globals_.end(),
              [](const GlobalEvent& a, const GlobalEvent& b) {
                return std::tie(a.when, a.src, a.seq) < std::tie(b.when, b.src, b.seq);
              });
  }
}

std::size_t ShardedEngine::FireGlobals(Tick window_end) {
  std::size_t fired = 0;
  while (!globals_.empty() && globals_.front().when <= window_end) {
    GlobalEvent event = std::move(globals_.front());
    globals_.erase(globals_.begin());
    // Every shard is parked and has fired everything <= window_end; pull
    // all clocks up to the global's tick so callbacks scheduling relative
    // delays measure from the right instant.
    for (auto& s : shards_) {
      if (s->now_ < event.when) {
        s->now_ = event.when;
      }
    }
    ++globals_fired_;
    ++fired;
    if (event.fn) {
      event.fn();
    }
    CollectGlobals();  // a global may chain another at the same tick
  }
  return fired;
}

void ShardedEngine::ServiceAuditRequests() {
  bool requested = false;
  for (auto& s : shards_) {
    requested = requested || s->audit_requested_;
    s->audit_requested_ = false;
  }
  if (requested) {
    AuditNow();
  }
}

void ShardedEngine::EnsurePool(std::uint32_t workers) {
  if (pool_workers_ == workers) {
    return;
  }
  StopPool();
  pool_workers_ = workers;
  pool_stop_ = false;
  threads_.reserve(workers - 1);
  for (std::uint32_t i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] {
      std::uint64_t seen_epoch = 0;
      for (;;) {
        Tick window_end = 0;
        {
          std::unique_lock<std::mutex> lock(pool_mu_);
          pool_start_.wait(lock,
                           [&] { return pool_stop_ || pool_epoch_ != seen_epoch; });
          if (pool_stop_) {
            return;
          }
          seen_epoch = pool_epoch_;
          window_end = pool_window_end_;
        }
        RunShardsOnWorker(i, window_end);
        {
          std::lock_guard<std::mutex> lock(pool_mu_);
          --pool_pending_;
        }
        pool_done_.notify_one();
      }
    });
  }
}

void ShardedEngine::StopPool() {
  if (threads_.empty()) {
    pool_workers_ = 0;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_stop_ = true;
  }
  pool_start_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();
  pool_workers_ = 0;
}

}  // namespace unifab
