// Declarative multi-tenant scenario specs: campaigns are data, not code.
//
// A ScenarioSpec describes N tenants grouped into classes; each class has a
// QoS class, an open-loop arrival process, and a traffic mix over the
// runtime's primitives. Specs parse from a small line-oriented key/value
// DSL (FaultPlan's format family):
//
//   # tokens:  scenario <name> | seed <n> | horizon_us <f> | pods <n> |
//   #          class k=v ...
//   scenario mixed_1k
//   seed 42
//   horizon_us 4000
//   pods 2
//   class name=gold qos=guaranteed tenants=10 arrival=poisson rate_ops_s=2000 bytes=65536 request_mbps=4000 mix=etrans:4,heap_read:2,faa:1 slo_p99_us=900
//   class name=bronze qos=best_effort tenants=990 arrival=bursty burst=16 rate_ops_s=500 bytes=32768 mix=etrans:1
//
// Parsing never throws: diagnostics are collected in `errors` so campaign
// files can be validated up front (same discipline as FaultPlan::Parse).

#ifndef SRC_SIM_SCENARIO_H_
#define SRC_SIM_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/qos.h"

namespace unifab {

// Open-loop arrival processes; "open-loop" means arrivals do not wait for
// completions, so overload shows up as queueing, not admission control.
enum class ArrivalKind : std::uint8_t {
  kPoisson,        // exponential inter-arrival at the class rate
  kDeterministic,  // fixed inter-arrival
  kBursty,         // `burst` back-to-back ops, then idle to hold the mean rate
};

// The primitives a tenant op can exercise (indices into TenantClassSpec::mix).
enum class TenantOp : std::uint8_t {
  kETrans = 0,       // bulk transfer host -> FAM via eTrans
  kHeapRead = 1,     // UnifiedHeap object read
  kHeapWrite = 2,    // UnifiedHeap object write
  kHeapMigrate = 3,  // UnifiedHeap tier migration
  kCollect = 4,      // small eCollect AllReduce across hosts
  kFaa = 5,          // idempotent task on a FAA chassis
};
inline constexpr int kNumTenantOps = 6;

const char* ArrivalKindName(ArrivalKind k);
const char* TenantOpName(TenantOp op);

// One class of identical tenants.
struct TenantClassSpec {
  std::string name;
  QosClass qos = QosClass::kBestEffort;
  std::uint32_t tenants = 1;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_ops_per_s = 100.0;  // mean per-tenant arrival rate
  std::uint32_t burst = 8;        // ops per burst (kBursty only)
  std::uint64_t bytes = 65536;    // payload per op (transfer/object size)
  double request_mbps = 2000.0;   // arbiter ask per throttled eTrans op
  double mix[kNumTenantOps] = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  double slo_p99_us = 0.0;  // per-class completion-latency SLO; 0 = none
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::uint64_t seed = 42;
  double horizon_us = 1000.0;  // arrivals stop here; drains may run longer
  // Topology request: run the campaign on a pod cluster of this many pods
  // (0 = caller picks the topology; harnesses map >0 to DFabricPodCluster).
  std::uint32_t pods = 0;
  std::vector<TenantClassSpec> classes;
  // Parse diagnostics ("line N: message"); empty means the spec is valid.
  std::vector<std::string> errors;

  std::uint32_t TotalTenants() const;

  static ScenarioSpec Parse(const std::string& text);
  // Reads `path` and parses it; an unreadable file yields a spec whose
  // `errors` names the path (parsing never throws).
  static ScenarioSpec ParseFile(const std::string& path);
};

}  // namespace unifab

#endif  // SRC_SIM_SCENARIO_H_
