// The discrete-event simulation engine that drives every UniFabric model.
//
// The engine is single-threaded and deterministic: all hardware components
// (links, switches, caches, accelerators) are passive objects that schedule
// callbacks on one shared Engine. Running the engine to quiescence advances
// simulated time; wall-clock time never appears anywhere in the models.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "src/sim/audit.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace unifab {

class Engine {
 public:
  Engine();
  ~Engine();  // reports the run digest (stderr) when auditing was enabled

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current simulated time.
  Tick Now() const { return now_; }

  // Schedules `fn` to run `delay` ticks from now. Accepts any `void()`
  // callable; small captures are stored inline in the queue's record pool.
  template <typename F>
  EventId Schedule(Tick delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at an absolute time, which must not be in the past.
  template <typename F>
  EventId ScheduleAt(Tick when, F&& fn) {
    assert(when >= now_ && "cannot schedule into the past");
    const EventId id = queue_.Push(when, std::forward<F>(fn));
    if (trace_ != nullptr) {
      trace_->OnSchedule(now_, when, id);
    }
    return id;
  }

  // Cancels a previously scheduled event. Safe to call after the event fired
  // (returns false).
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs events until the queue drains. Returns the number of events fired.
  std::size_t Run();

  // Runs events with firing time <= `deadline`, then sets Now() == deadline.
  // Returns the number of events fired.
  std::size_t RunUntil(Tick deadline);

  // Convenience: RunUntil(Now() + duration).
  std::size_t RunFor(Tick duration) { return RunUntil(now_ + duration); }

  // Fires at most `max_events` events. Returns the number fired (may be less
  // if the queue drains first).
  std::size_t Step(std::size_t max_events);

  bool Idle() const { return queue_.Empty(); }
  std::size_t PendingEvents() const { return queue_.Size(); }
  std::uint64_t TotalFired() const { return fired_; }

  // The central telemetry registry every component of this simulation
  // registers its instruments with.
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  // The invariant auditor every component registers its conservation checks
  // with (via AuditScope), mirroring the metrics registry.
  InvariantAuditor& audit() { return auditor_; }
  const InvariantAuditor& audit() const { return auditor_; }

  // Order-sensitive digest over (tick, event id) of every fired event while
  // auditing is enabled; identical workloads must produce identical values.
  const RunDigest& digest() const { return digest_; }

  // Sweep the auditor every `every_n_events` fired events and fold fired
  // events into the digest. 0 disables both (the default unless the
  // UNIFAB_AUDIT environment variable asked otherwise at construction:
  // unset/"0" = off, "1" = on at the default cadence, ">1" = that cadence).
  void SetAuditCadence(std::uint64_t every_n_events) {
    audit_cadence_ = every_n_events;
    events_since_audit_ = 0;
  }
  std::uint64_t audit_cadence() const { return audit_cadence_; }

  // Runs one sweep now; on any violation prints every component-path
  // message to stderr and aborts (fail fast: the state is already wrong and
  // everything computed from here on would be garbage).
  void AuditNow();

  // Optional per-event sim-time tracing; pass nullptr to disable. An unset
  // sink costs one pointer test per Schedule/fire.
  void SetTraceSink(EventTraceSink* sink) { trace_ = sink; }
  EventTraceSink* trace_sink() const { return trace_; }

 private:
  void FireNext();

  MetricRegistry metrics_;  // first member: components register during setup
  InvariantAuditor auditor_;  // likewise registered into during setup
  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t fired_ = 0;
  EventTraceSink* trace_ = nullptr;
  RunDigest digest_;
  std::uint64_t audit_cadence_ = 0;  // 0 = auditing off
  std::uint64_t events_since_audit_ = 0;
  bool audit_enabled_ever_ = false;  // a digest was accumulated; report it

  friend class AuditTestPeer;
};

}  // namespace unifab

#endif  // SRC_SIM_ENGINE_H_
