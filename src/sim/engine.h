// The discrete-event simulation engine that drives every UniFabric model.
//
// An Engine is single-threaded and deterministic: all hardware components
// (links, switches, caches, accelerators) are passive objects that schedule
// callbacks on one Engine. Running the engine to quiescence advances
// simulated time; wall-clock time never appears anywhere in the models.
//
// Engines come in two flavors:
//   * standalone — the classic one-queue simulator (Engine());
//   * shard — one fabric-domain slice of a ShardedEngine, which owns N such
//     shards and runs them in parallel under a conservative lookahead window
//     (see sharded_engine.h). Components keep the same passive single-Engine
//     programming model either way: a component constructed against a shard
//     sees an ordinary Engine&. Scheduling onto a *different* shard's engine
//     from inside a running event is routed transparently through the
//     caller's outbox mailbox and released at the next window barrier.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/audit.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace unifab {

class ShardedEngine;

class Engine {
 public:
  Engine();
  ~Engine();  // reports the run digest (stderr) when auditing was enabled

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current simulated time of *this* engine (shard-local in a group).
  Tick Now() const { return now_; }

  // Schedules `fn` to run `delay` ticks from now. Accepts any `void()`
  // callable; small captures are stored inline in the queue's record pool.
  // When called from an event running on a different shard of the same
  // ShardedEngine, "now" means the caller's clock and the event is staged
  // into the caller's cross-shard outbox (returns kInvalidEventId).
  template <typename F>
  EventId Schedule(Tick delay, F&& fn) {
    if (group_ != nullptr) {
      Engine* cur = current_shard_;
      if (cur != nullptr && cur != this) {
        cur->StageCross(shard_index_, cur->now_ + delay, EventCallback(std::forward<F>(fn)));
        return kInvalidEventId;
      }
    }
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at an absolute time. A past `when` is clamped to Now()
  // and counted in the sim/engine/late_schedules metric — a nonzero count is
  // an InvariantAuditor violation (a stale callback tried to corrupt tick
  // ordering), but the clamp keeps release builds from silently firing
  // events behind the clock.
  template <typename F>
  EventId ScheduleAt(Tick when, F&& fn) {
    if (group_ != nullptr) {
      Engine* cur = current_shard_;
      if (cur != nullptr && cur != this) {
        cur->StageCross(shard_index_, when, EventCallback(std::forward<F>(fn)));
        return kInvalidEventId;
      }
    }
    if (when < now_) {
      when = now_;
      ++late_schedules_;
    }
    const EventId id = queue_.Push(when, std::forward<F>(fn));
    if (trace_ != nullptr) {
      trace_->OnSchedule(now_, when, id);
    }
    return id;
  }

  // Schedules a *global* event: in a multi-shard group it fires at a window
  // barrier with every shard parked, so the callback may read or mutate
  // state in any domain (routing-table rebuilds, link fail/recover, fault
  // injection). Globals at the same tick fire in (tick, staging shard,
  // sequence) order, after all shard-local events at that tick. On a
  // standalone engine (or a single-shard group) this is a plain Schedule.
  // Global events have no cancellation handle.
  template <typename F>
  void ScheduleGlobal(Tick delay, F&& fn) {
    if (group_ == nullptr || group_solo_) {
      Schedule(delay, std::forward<F>(fn));
      return;
    }
    Engine* cur = current_shard_ != nullptr ? current_shard_ : this;
    cur->StageGlobal(cur->now_ + delay, EventCallback(std::forward<F>(fn)));
  }

  template <typename F>
  void ScheduleGlobalAt(Tick when, F&& fn) {
    if (group_ == nullptr || group_solo_) {
      ScheduleAt(when, std::forward<F>(fn));
      return;
    }
    Engine* cur = current_shard_ != nullptr ? current_shard_ : this;
    cur->StageGlobal(when, EventCallback(std::forward<F>(fn)));
  }

  // Cancels a previously scheduled event. Safe to call after the event fired
  // (returns false). Cross-shard cancellation from inside a running window
  // is refused (returns false, counted in cross_cancels_refused): the
  // foreign queue may be executing concurrently. Cancel cross-shard events
  // from a parked context (between Run calls or from a global event), or
  // better, cancel only what you scheduled on your own shard.
  bool Cancel(EventId id) {
    if (group_ != nullptr) {
      Engine* cur = current_shard_;
      if (cur != nullptr && cur != this) {
        ++cur->cross_cancels_refused_;
        return false;
      }
    }
    return queue_.Cancel(id);
  }

  // Runs events until the queue drains. Returns the number of events fired.
  // On a shard, drives the whole group (every shard plus pending globals).
  std::size_t Run();

  // Runs events with firing time <= `deadline`, then sets Now() == deadline.
  // Returns the number of events fired. Group-wide on a shard.
  std::size_t RunUntil(Tick deadline);

  // Convenience: RunUntil(Now() + duration).
  std::size_t RunFor(Tick duration) { return RunUntil(now_ + duration); }

  // Fires at most `max_events` events. Returns the number fired (may be less
  // if the queue drains first). On a shard this is window-granular: the
  // group stops at the first barrier where the budget is met or exceeded.
  std::size_t Step(std::size_t max_events);

  bool Idle() const;
  std::size_t PendingEvents() const;
  std::uint64_t TotalFired() const;

  // The central telemetry registry every component of this simulation
  // registers its instruments with. Shards share their group's registry.
  MetricRegistry& metrics();
  const MetricRegistry& metrics() const;

  // The invariant auditor every component registers its conservation checks
  // with (via AuditScope), mirroring the metrics registry.
  InvariantAuditor& audit();
  const InvariantAuditor& audit() const;

  // Order-sensitive digest over (tick, event id) of every fired event while
  // auditing is enabled; identical workloads must produce identical values.
  // Shard digests are per-shard; ShardedEngine::MergedDigest() folds them in
  // shard-index order (worker-thread-count invariant).
  const RunDigest& digest() const { return digest_; }

  // Sweep the auditor every `every_n_events` fired events and fold fired
  // events into the digest. 0 disables both (the default unless the
  // UNIFAB_AUDIT environment variable asked otherwise at construction:
  // unset/"0" = off, "1" = on at the default cadence, ">1" = that cadence).
  // In a multi-shard group the sweep itself is deferred to the next window
  // barrier (it reads every domain's state); digest folding is per-event.
  void SetAuditCadence(std::uint64_t every_n_events);
  std::uint64_t audit_cadence() const { return audit_cadence_; }

  // Runs one sweep now; on any violation prints every component-path
  // message to stderr and aborts (fail fast: the state is already wrong and
  // everything computed from here on would be garbage).
  void AuditNow();

  // Optional per-event sim-time tracing; pass nullptr to disable. An unset
  // sink costs one pointer test per Schedule/fire.
  void SetTraceSink(EventTraceSink* sink) { trace_ = sink; }
  EventTraceSink* trace_sink() const { return trace_; }

  // Deterministic per-engine random stream (per-shard in a group: shard k
  // derives its stream from the group seed and k).
  Rng& rng() { return rng_; }

  // Group introspection. group() is nullptr for a standalone engine.
  ShardedEngine* group() const { return group_; }
  std::uint32_t shard_index() const { return shard_index_; }

  // The shard currently executing an event on this thread, or nullptr when
  // the simulation is parked (or this thread never ran a shard window).
  static Engine* CurrentShard() { return current_shard_; }

  // True when the caller sits inside a running event of a multi-shard group
  // — i.e. other domains may be executing concurrently, and an action that
  // mutates world-visible state (routing rebuild, link fail/recover) must
  // defer itself via ScheduleGlobal instead of running in place.
  static bool InShardedWindow() {
    Engine* cur = current_shard_;
    return cur != nullptr && cur->group_ != nullptr && !cur->group_solo_;
  }

  std::uint64_t late_schedules() const { return late_schedules_; }

 private:
  friend class ShardedEngine;
  friend class AuditTestPeer;

  struct CrossEvent {
    Tick when = 0;
    std::uint64_t seq = 0;
    EventCallback fn;
  };

  // Shard constructor: used by ShardedEngine::AddShard only. Registers this
  // shard's instruments under sim/engine/shard<k>/ in the group registry.
  Engine(ShardedEngine* group, std::uint32_t shard_index, std::uint64_t rng_seed);

  void RegisterEngineInstruments(MetricRegistry& registry, InvariantAuditor& auditor,
                                 const std::string& prefix);

  // Appends an event destined for shard `dst` to this (executing) shard's
  // outbox; harvested and merged into dst's queue at the next barrier.
  void StageCross(std::uint32_t dst, Tick when, EventCallback fn) {
    outbox_[dst].push_back(CrossEvent{when, cross_seq_++, std::move(fn)});
  }

  void StageGlobal(Tick when, EventCallback fn) {
    global_staging_.push_back(CrossEvent{when, global_seq_++, std::move(fn)});
  }

  // The pre-group single-queue run loops (also the group's per-shard window
  // body and its single-shard fast paths).
  std::size_t RunLocal();
  std::size_t RunUntilLocal(Tick deadline);
  std::size_t StepLocal(std::size_t max_events);

  // Fires every local event with time <= deadline without padding now_ up to
  // the deadline; marks this engine as the thread's executing shard for the
  // duration. This is one shard's share of a lookahead window.
  std::size_t RunEventsUntilLocal(Tick deadline);

  Tick NextLocalEventTime() { return queue_.Empty() ? kTickNever : queue_.NextTime(); }

  void FireNext();

  MetricRegistry metrics_;  // first member: components register during setup
  InvariantAuditor auditor_;  // likewise registered into during setup
  EventQueue queue_;
  Tick now_ = 0;
  std::uint64_t fired_ = 0;
  EventTraceSink* trace_ = nullptr;
  RunDigest digest_;
  std::uint64_t audit_cadence_ = 0;  // 0 = auditing off
  std::uint64_t events_since_audit_ = 0;
  bool audit_enabled_ever_ = false;  // a digest was accumulated; report it
  bool audit_requested_ = false;     // group mode: sweep at the next barrier

  // Sharding state. Standalone engines have group_ == nullptr and never
  // touch the rest (including the thread-local).
  ShardedEngine* group_ = nullptr;
  std::uint32_t shard_index_ = 0;
  bool group_solo_ = false;  // group has exactly one shard: run undeferred
  std::uint64_t late_schedules_ = 0;
  std::uint64_t cross_seq_ = 0;    // outbox entries ever staged by this shard
  std::uint64_t global_seq_ = 0;   // global events ever staged by this shard
  std::uint64_t cross_cancels_refused_ = 0;
  std::vector<std::vector<CrossEvent>> outbox_;  // indexed by destination shard
  std::vector<CrossEvent> global_staging_;
  Rng rng_{0x9E3779B97F4A7C15ULL};  // reseeded per shard in group mode

  static thread_local Engine* current_shard_;
};

}  // namespace unifab

#endif  // SRC_SIM_ENGINE_H_
