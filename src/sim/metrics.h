// Unified telemetry layer: a central registry of named instruments.
//
// Every simulated component registers its counters and latency summaries
// under a hierarchical path (e.g. "fabric/switch/s0/flits_forwarded",
// "core/etrans/agent/a3/job_latency_us") at construction time. The registry
// can then render one machine-readable snapshot of the whole simulation —
// JSON for the BENCH_*.json perf trajectory, CSV for spreadsheets — instead
// of each layer hand-rolling its own text dump.
//
// Two registration styles coexist:
//   * owned instruments (Counter / Gauge / SummaryMetric) allocated by the
//     registry, for new code that has no legacy stats struct;
//   * live-value callbacks (Add*Fn) that read an existing `*Stats` field at
//     snapshot time, which lets the 20+ legacy stats structs keep their
//     exact accessor semantics while becoming registry-visible.
//
// Instruments registered through a MetricGroup are unregistered when the
// group (i.e. the owning component) is destroyed, so callbacks never
// outlive the state they read. Paths are uniquified deterministically
// ("path", "path#2", ...) so identically named components coexist.
//
// The registry itself is engine-agnostic; Engine owns one (Engine::metrics)
// and additionally exposes an optional EventTraceSink hook for per-event
// sim-time tracing (a single pointer test on the scheduling hot path).

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace unifab {

// A monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t Value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// A point-in-time scalar (occupancy, temperature, bandwidth share).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double Value() const { return value_; }

 private:
  double value_ = 0.0;
};

// A sample distribution; snapshots export count/sum/mean/min/max/p50/p99.
class SummaryMetric {
 public:
  void Observe(double v) { summary_.Add(v); }
  const Summary& summary() const { return summary_; }

 private:
  Summary summary_;
};

class MetricRegistry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;
  using SummaryFn = std::function<const Summary*()>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Owned instruments. The registry keeps the instrument alive until it is
  // removed; the returned pointer stays valid exactly that long.
  Counter* AddCounter(const std::string& path);
  Gauge* AddGauge(const std::string& path);
  SummaryMetric* AddSummary(const std::string& path);

  // Live-value instruments: `fn` is invoked at snapshot time. The caller
  // must Remove() the path (MetricGroup does this automatically) before the
  // state the callback reads is destroyed. Returns the final path, which
  // may carry a "#n" suffix when the requested one was taken.
  std::string AddCounterFn(const std::string& path, CounterFn fn);
  std::string AddGaugeFn(const std::string& path, GaugeFn fn);
  std::string AddSummaryFn(const std::string& path, SummaryFn fn);

  bool Remove(const std::string& path);
  std::size_t RemovePrefix(const std::string& prefix);

  // Reserves a deterministic unique component prefix ("a", then "a#2", ...).
  std::string ClaimPrefix(const std::string& prefix);

  bool Has(const std::string& path) const { return instruments_.count(path) != 0; }
  std::size_t NumInstruments() const { return instruments_.size(); }

  // One flat JSON object keyed by path, sorted, with summaries expanded to
  // {"count":..,"sum":..,"mean":..,"min":..,"max":..,"p50":..,"p99":..}.
  // Key set and formatting are deterministic for a deterministic sim.
  std::string SnapshotJson() const;

  // "path,kind,value" lines; summaries expand to path.count / path.mean / ...
  std::string SnapshotCsv() const;

 private:
  struct Instrument {
    enum class Kind { kCounter, kGauge, kSummary } kind;
    CounterFn counter;
    GaugeFn gauge;
    SummaryFn summary;
    // Backing storage for owned instruments (null for callback-backed).
    std::shared_ptr<void> owned;
  };

  std::string Insert(const std::string& path, Instrument instrument);

  std::map<std::string, Instrument> instruments_;  // ordered => stable output
  std::unordered_map<std::string, int> prefix_claims_;
};

// RAII bundle of instruments under one component prefix. A component keeps
// one MetricGroup member (declared after its stats so destruction
// unregisters callbacks before the stats die) and registers all its
// instruments through it at construction. A default-constructed group is
// detached: registrations are no-ops, so components still work when no
// registry is supplied.
class MetricGroup {
 public:
  MetricGroup() = default;
  MetricGroup(MetricRegistry* registry, const std::string& prefix);
  ~MetricGroup() { RemoveAll(); }

  MetricGroup(MetricGroup&& other) noexcept { *this = std::move(other); }
  MetricGroup& operator=(MetricGroup&& other) noexcept;
  MetricGroup(const MetricGroup&) = delete;
  MetricGroup& operator=(const MetricGroup&) = delete;

  bool attached() const { return registry_ != nullptr; }
  // The claimed (uniquified) prefix; empty when detached.
  const std::string& prefix() const { return prefix_; }

  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  SummaryMetric* AddSummary(const std::string& name);
  void AddCounterFn(const std::string& name, MetricRegistry::CounterFn fn);
  void AddGaugeFn(const std::string& name, MetricRegistry::GaugeFn fn);
  void AddSummaryFn(const std::string& name, MetricRegistry::SummaryFn fn);

  void RemoveAll();

 private:
  std::string Full(const std::string& name) const { return prefix_ + "/" + name; }

  MetricRegistry* registry_ = nullptr;
  std::string prefix_;
  std::vector<std::string> registered_;
  // Keeps owned instruments alive for detached groups, so callers can
  // increment them unconditionally.
  std::vector<std::shared_ptr<void>> detached_;
};

// Observer of engine scheduling activity (per-event sim-time tracing). The
// engine holds a nullable pointer, so an unset sink costs one branch per
// Schedule/fire — cheap enough to leave compiled in.
class EventTraceSink {
 public:
  virtual ~EventTraceSink() = default;
  virtual void OnSchedule(Tick now, Tick fire_at, std::uint64_t event_id) = 0;
  virtual void OnFire(Tick fire_at, std::uint64_t event_id) = 0;
};

// Default sink: aggregates schedule/fire counts and queue-residency times,
// and keeps the first `capacity` raw records for inspection/dumping.
class TraceRecorder : public EventTraceSink {
 public:
  struct Record {
    Tick scheduled_at = 0;
    Tick fire_at = 0;
    std::uint64_t event_id = 0;
    bool fired = false;
  };

  explicit TraceRecorder(std::size_t capacity = 4096) : capacity_(capacity) {}

  void OnSchedule(Tick now, Tick fire_at, std::uint64_t event_id) override;
  void OnFire(Tick fire_at, std::uint64_t event_id) override;

  std::uint64_t scheduled() const { return scheduled_; }
  std::uint64_t fired() const { return fired_; }
  const Summary& queue_delay_ns() const { return queue_delay_ns_; }
  const std::vector<Record>& records() const { return records_; }

  // One JSON object per line, schedule order.
  std::string ToJsonLines() const;

 private:
  std::size_t capacity_;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  Summary queue_delay_ns_;
  std::vector<Record> records_;
  std::unordered_map<std::uint64_t, std::size_t> record_index_;
  std::unordered_map<std::uint64_t, Tick> pending_;  // id -> scheduled_at
};

}  // namespace unifab

#endif  // SRC_SIM_METRICS_H_
