// Calibrated configuration presets.
//
// OmegaTestbed*() presets are tuned so the simulated composable
// infrastructure reproduces the measurements the paper reports from the
// IntelliProp Omega Fabric testbed (Table 2) and the GigaIO FabreX numbers
// quoted in §3 Difference #3. See EXPERIMENTS.md for the calibration table.

#ifndef SRC_TOPO_PRESETS_H_
#define SRC_TOPO_PRESETS_H_

#include "src/fabric/link.h"
#include "src/fabric/switch.h"
#include "src/mem/dram.h"
#include "src/mem/hierarchy.h"
#include "src/topo/chassis.h"
#include "src/topo/host.h"

namespace unifab {

// Host core + caches matching Table 2's local rows:
//   L1 hit 5.4 ns / 357 MOPS, L2 hit 13.6 ns / 143 MOPS,
//   local DRAM 111.7 ns / ~30 MOPS (MLP-bound, 4 MSHRs).
HierarchyConfig OmegaHostHierarchy();

// Local DIMM behind the host memory controller.
DramConfig OmegaLocalDram();

// FHA/FEA processing latencies tuned so an unloaded 64B remote read through
// one switch lands at ~1575 ns (Table 2 remote row).
AdapterConfig OmegaHostAdapter();
AdapterConfig OmegaEndpointAdapter();

// CXL 2.0-like x16 link.
LinkConfig OmegaLink();

// FabreX-like switch: <100 ns per-port latency.
SwitchConfig FabrexSwitch();

// Bundles.
HostConfig OmegaHost();
FamChassisConfig OmegaFam();
FaaChassisConfig OmegaFaa();

}  // namespace unifab

#endif  // SRC_TOPO_PRESETS_H_
