#include "src/topo/accelerator.h"

#include <utility>

namespace unifab {

void AcceleratorStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "kernels_started", [this] { return kernels_started; });
  group.AddCounterFn(prefix + "kernels_completed", [this] { return kernels_completed; });
  group.AddCounterFn(prefix + "kernels_dropped", [this] { return kernels_dropped; });
  group.AddCounterFn(prefix + "failures", [this] { return failures; });
  group.AddGaugeFn(prefix + "busy_time_ns", [this] { return ToNs(busy_time); });
  group.AddSummaryFn(prefix + "queue_wait_ns", [this] { return &queue_wait_ns; });
}

Accelerator::Accelerator(Engine* engine, const AcceleratorConfig& config, std::string name)
    : engine_(engine), config_(config), name_(std::move(name)) {
  metrics_ = MetricGroup(&engine_->metrics(), "topo/accelerator/" + name_);
  stats_.BindTo(metrics_);
}

void Accelerator::Execute(Tick duration, std::function<void()> done) {
  if (failed_ || queue_.size() >= config_.queue_depth) {
    ++stats_.kernels_dropped;
    return;
  }
  queue_.push_back(Kernel{duration, std::move(done), engine_->Now()});
  StartNext();
}

void Accelerator::StartNext() {
  while (!failed_ && engines_busy_ < config_.num_engines && !queue_.empty()) {
    Kernel k = std::move(queue_.front());
    queue_.pop_front();
    ++engines_busy_;
    ++stats_.kernels_started;
    stats_.queue_wait_ns.Add(ToNs(engine_->Now() - k.enqueued_at));

    const Tick total =
        config_.context_switch_latency + config_.kernel_launch_overhead + k.duration;
    stats_.busy_time += total;
    const std::uint64_t epoch = epoch_;
    engine_->Schedule(total, [this, epoch, done = std::move(k.done)] {
      if (epoch != epoch_) {
        return;  // the accelerator failed while this kernel ran
      }
      --engines_busy_;
      ++stats_.kernels_completed;
      if (done) {
        done();
      }
      StartNext();
    });
  }
}

void Accelerator::Fail() {
  if (failed_) {
    return;
  }
  failed_ = true;
  ++stats_.failures;
  ++epoch_;  // orphan all in-flight kernels
  stats_.kernels_dropped += queue_.size() + static_cast<std::uint64_t>(engines_busy_);
  queue_.clear();
  engines_busy_ = 0;
}

void Accelerator::Recover() {
  failed_ = false;
  StartNext();
}

}  // namespace unifab
