#include "src/topo/host.h"

namespace unifab {

HostServer::HostServer(Engine* engine, FabricInterconnect* fabric, const HostConfig& config,
                       const std::string& name, std::uint16_t domain)
    : name_(name), config_(config) {
  local_dram_ = std::make_unique<DramDevice>(engine, config.local_dram, name + "/dram");
  fha_ = fabric->AddHostAdapter(config.fha, name + "/fha", domain);
  dispatcher_ = std::make_unique<MessageDispatcher>(fha_);

  cores_.reserve(static_cast<std::size_t>(config.num_cores));
  for (int i = 0; i < config.num_cores; ++i) {
    auto core = std::make_unique<MemoryHierarchy>(engine, config.hierarchy,
                                                  name + "/core" + std::to_string(i));
    core->MapLocal(config.local_mem_base, config.local_dram.capacity_bytes, local_dram_.get());
    core->SetFabricAdapter(fha_);
    cores_.push_back(std::move(core));
  }
}

void HostServer::MapRemote(std::uint64_t base, std::uint64_t size, PbrId node) {
  for (auto& core : cores_) {
    core->MapRemote(base, size, node);
  }
}

}  // namespace unifab
