// Cluster: a fully wired composable infrastructure (paper Figure 1b) — n
// host servers, m FAM chassis, k FAA chassis, hanging off one or more
// fabric switches — plus the address-map conventions the runtime relies on.

#ifndef SRC_TOPO_CLUSTER_H_
#define SRC_TOPO_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fabric/interconnect.h"
#include "src/sim/sharded_engine.h"
#include "src/topo/chassis.h"
#include "src/topo/host.h"
#include "src/topo/pod.h"
#include "src/topo/presets.h"

namespace unifab {

struct ClusterConfig {
  int num_hosts = 2;
  int num_fams = 1;
  int num_faas = 1;
  int num_switches = 1;  // chained linearly; components spread round-robin

  HostConfig host = OmegaHost();
  FamChassisConfig fam = OmegaFam();
  FaaChassisConfig faa = OmegaFaa();
  LinkConfig link = OmegaLink();
  SwitchConfig sw = FabrexSwitch();

  std::uint64_t seed = 42;

  // Fabric-attached memory appears in every host's address space starting
  // here; chassis i owns [fam_base + i*fam_stride, +fam_stride).
  std::uint64_t fam_base = 1ULL << 40;
  std::uint64_t fam_stride = 1ULL << 36;

  // --- Sharded parallel simulation (DESIGN.md §6e) ----------------------

  // Partition the simulation by fabric domain: each switch island and each
  // FAM chassis gets its own engine shard; hosts, FAA chassis, and shared
  // runtime objects stay on the root shard. The partition is part of the
  // topology — it never depends on the worker-thread count, so RunDigests
  // are bit-for-bit identical for any `shard_workers`. When false the whole
  // cluster runs on the root shard (the pre-sharding behavior).
  bool shard_by_domain = true;

  // Worker threads executing shard windows; 0 = the UNIFAB_SHARDS
  // environment variable (default 1).
  int shard_workers = 0;

  // --- Hierarchical pod scale-out (DESIGN.md §11) -----------------------

  // >1 builds a cluster-of-clusters: `num_pods` identical pods (contents
  // from `pod`; the flat counts above are ignored), each pod its own PBR
  // domain and DES shard, gateway switches joined by Ethernet bridges (one
  // trunk for 2 pods, a ring for 3+ so reroute has a redundant path). The
  // PBR id's 4-bit domain field caps this at 16 pods.
  int num_pods = 1;
  PodConfig pod;
  BridgeConfig bridge;
};

// Preset: a DFabric-style pod cluster — `num_pods` pods of `pod` contents
// over a 100 Gb/s Ethernet bridge ring.
ClusterConfig DFabricPodCluster(int num_pods, const PodConfig& pod = PodConfig{});

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // The root shard: external drivers schedule stimulus and run the whole
  // simulation through it exactly as they did the old single engine.
  Engine& engine() { return sharded_.root(); }
  ShardedEngine& sharded() { return sharded_; }
  FabricInterconnect& fabric() { return *fabric_; }

  HostServer* host(int i) { return hosts_[static_cast<std::size_t>(i)].get(); }
  FamChassis* fam(int i) { return fams_[static_cast<std::size_t>(i)].get(); }
  FaaChassis* faa(int i) { return faas_[static_cast<std::size_t>(i)].get(); }
  FabricSwitch* fabric_switch(int i) { return switches_[static_cast<std::size_t>(i)]; }

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  int num_fams() const { return static_cast<int>(fams_.size()); }
  int num_faas() const { return static_cast<int>(faas_.size()); }

  // Pod structure; flat clusters report one implicit pod and no bridges.
  int num_pods() const { return pods_.empty() ? 1 : static_cast<int>(pods_.size()); }
  const Pod& pod(int p) const { return pods_[static_cast<std::size_t>(p)]; }
  const std::vector<BridgeLink*>& bridges() const { return bridges_; }

  // Provisions a dedicated lightweight control adapter on fabric switch
  // `sw` and re-resolves routes: the attachment pattern shared by the
  // central arbiter and the switch-resident memory agent. The interconnect
  // owns the returned adapter.
  HostAdapter* AttachControlAdapter(const AdapterConfig& config, const std::string& name,
                                    int sw = 0);

  // Address-space base of FAM chassis i (same in every host).
  std::uint64_t FamBase(int i) const {
    return config_.fam_base + static_cast<std::uint64_t>(i) * config_.fam_stride;
  }

  const ClusterConfig& config() const { return config_; }

 private:
  static ShardedEngine::Options ShardOptions(const ClusterConfig& config);
  void BuildFlat();
  void BuildPods();

  ClusterConfig config_;
  ShardedEngine sharded_;
  std::unique_ptr<FabricInterconnect> fabric_;
  std::vector<FabricSwitch*> switches_;  // owned by the interconnect
  std::vector<std::unique_ptr<HostServer>> hosts_;
  std::vector<std::unique_ptr<FamChassis>> fams_;
  std::vector<std::unique_ptr<FaaChassis>> faas_;
  std::vector<Pod> pods_;            // empty for flat clusters
  std::vector<BridgeLink*> bridges_; // owned by the interconnect
};

}  // namespace unifab

#endif  // SRC_TOPO_CLUSTER_H_
