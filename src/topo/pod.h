// Pod: the cluster-of-clusters building block for hierarchical scale-out
// (DESIGN.md §11, DFabric in PAPERS.md).
//
// A pod is one CXL island — its own PBR domain, its own DES shard —
// containing hosts, FAM chassis, FAA chassis, and gateway/leaf switches.
// Pods are joined by Ethernet BridgeLinks between their gateway switches:
// a single trunk for two pods, a ring for three or more so routing has a
// redundant inter-pod path to fail over to. `Cluster` builds pods when
// `ClusterConfig::num_pods > 1`; the flat accessors (host(i), fam(i), ...)
// keep working over the concatenated per-pod component lists, so the
// runtime stack needs no changes to span pods.

#ifndef SRC_TOPO_POD_H_
#define SRC_TOPO_POD_H_

#include <cstdint>
#include <vector>

namespace unifab {

class FabricSwitch;

// Contents of one pod. When ClusterConfig::num_pods > 1, every pod is
// stamped from this (the flat top-level counts are ignored).
struct PodConfig {
  int num_hosts = 2;
  int num_fams = 1;
  int num_faas = 1;
  int num_switches = 1;  // chained linearly inside the pod
};

// A view over one pod of a hierarchical Cluster: global component indices
// (usable with Cluster::host(i) etc.) plus the gateway switch bridges
// attach to. Owned and populated by Cluster.
struct Pod {
  int index = 0;  // == the PBR domain of every component in the pod
  std::vector<int> hosts;
  std::vector<int> fams;
  std::vector<int> faas;
  std::vector<int> switches;
  FabricSwitch* gateway = nullptr;
};

}  // namespace unifab

#endif  // SRC_TOPO_POD_H_
