// Scripted fault-injection campaigns (FCC DP#3, the failure half).
//
// Composable infrastructures have passive failure domains: links flap,
// chassis lose power independently of every host. The FaultScheduler turns a
// small declarative plan into timed Fail()/Recover() calls against named
// targets and nudges the fabric manager to re-resolve routes after each
// transition, so recovery-path code (eTrans retries, iTask re-execution,
// heap rollback) can be exercised deterministically.
//
// Plan grammar (one directive per line or semicolon-separated; '#' starts a
// comment; times are microseconds of simulated time):
//
//   fail <target> @<us>
//   recover <target> @<us>
//   flap <target> start=<us> period=<us> down=<us> cycles=<n>
//
// `flap` expands at parse time into `cycles` fail/recover pairs: down at
// start + k*period, back up `down` microseconds later.

#ifndef SRC_TOPO_FAULTS_H_
#define SRC_TOPO_FAULTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/interconnect.h"
#include "src/fabric/link.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/topo/chassis.h"

namespace unifab {

struct FaultEvent {
  enum class Kind { kFail, kRecover };
  Tick at = 0;
  Kind kind = Kind::kFail;
  std::string target;
};

// A parsed campaign: the flattened, time-ordered event list.
struct FaultPlan {
  std::vector<FaultEvent> events;
  std::vector<std::string> errors;  // one entry per unparsable directive

  bool ok() const { return errors.empty(); }

  static FaultPlan Parse(const std::string& text);
};

struct FaultSchedulerStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t unknown_targets = 0;  // plan events naming unregistered targets

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Binds plan target names to simulator components and drives a campaign.
class FaultScheduler {
 public:
  // `fabric` (optional) gets ConfigureRouting() after each transition, one
  // reroute_delay later — the fabric manager's detection latency.
  FaultScheduler(Engine* engine, FabricInterconnect* fabric);

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  // --- Target registration ---------------------------------------------

  void RegisterLink(const std::string& name, Link* link);
  // FAA chassis: failing the power domain kills the accelerator AND (when
  // given) the chassis uplink.
  void RegisterChassis(const std::string& name, FaaChassis* faa, Link* uplink = nullptr);
  // FAM chassis are CPU-less; their failure domain is the uplink itself.
  void RegisterChassis(const std::string& name, FamChassis* fam, Link* uplink);
  // Escape hatch for anything else.
  void RegisterTarget(const std::string& name, std::function<void()> fail,
                      std::function<void()> recover);

  // --- Campaign execution ----------------------------------------------

  // Schedules every event of `plan` onto the engine (absolute times).
  // Unknown targets are counted when their event fires, not at schedule
  // time, so a plan can be scheduled before all targets are registered.
  void Schedule(const FaultPlan& plan);

  void set_reroute_delay(Tick delay) { reroute_delay_ = delay; }
  const FaultSchedulerStats& stats() const { return stats_; }

 private:
  struct Target {
    std::function<void()> fail;
    std::function<void()> recover;
  };

  void Execute(const FaultEvent& event);
  void RequestReroute();

  Engine* engine_;
  FabricInterconnect* fabric_;
  Tick reroute_delay_ = FromUs(25.0);
  std::unordered_map<std::string, Target> targets_;
  FaultSchedulerStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_TOPO_FAULTS_H_
