// Fabric-attached accelerator (FAA) execution engine.
//
// Models the compute side of an FAA chassis: a fixed pool of execution
// engines with fast context switching (paper §3 Difference #4) and a
// passive failure domain (Difference #5) — the chassis can fail
// independently of any host, losing all queued and running work, and has no
// resources to recover itself. Recovery is the job of host-side runtimes
// (the idempotent-task framework, DP#3).

#ifndef SRC_TOPO_ACCELERATOR_H_
#define SRC_TOPO_ACCELERATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace unifab {

struct AcceleratorConfig {
  int num_engines = 4;                         // parallel execution contexts
  Tick context_switch_latency = FromNs(500.0); // save/restore over the fabric
  Tick kernel_launch_overhead = FromNs(200.0);
  std::uint32_t queue_depth = 256;             // pending kernels
};

struct AcceleratorStats {
  std::uint64_t kernels_started = 0;
  std::uint64_t kernels_completed = 0;
  std::uint64_t kernels_dropped = 0;  // lost to failure or full queue
  std::uint64_t failures = 0;
  Tick busy_time = 0;
  Summary queue_wait_ns;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class Accelerator {
 public:
  Accelerator(Engine* engine, const AcceleratorConfig& config, std::string name);

  // Runs a kernel of the given duration on the next free engine; queues when
  // all engines are busy. `done` fires on completion — or never, if the
  // accelerator fails first (passive failure domain: no completion, no
  // error signal).
  void Execute(Tick duration, std::function<void()> done);

  // Failure injection. Fail drops all queued and in-flight work silently;
  // Recover makes the engines usable again (state is NOT restored).
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  int EnginesBusy() const { return engines_busy_; }
  std::size_t QueuedKernels() const { return queue_.size(); }
  const AcceleratorConfig& config() const { return config_; }
  const AcceleratorStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct Kernel {
    Tick duration;
    std::function<void()> done;
    Tick enqueued_at;
  };

  void StartNext();

  Engine* engine_;
  AcceleratorConfig config_;
  std::string name_;
  std::deque<Kernel> queue_;
  int engines_busy_ = 0;
  bool failed_ = false;
  std::uint64_t epoch_ = 0;  // bumped on Fail so in-flight completions drop
  AcceleratorStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_TOPO_ACCELERATOR_H_
