#include "src/topo/chassis.h"

namespace unifab {

FamChassis::FamChassis(Engine* engine, FabricInterconnect* fabric, const FamChassisConfig& config,
                       const std::string& name, std::uint16_t domain)
    : name_(name), engine_(engine) {
  dram_ = std::make_unique<DramDevice>(engine, config.rdimm, name + "/rdimm");
  expander_ = std::make_unique<MemoryExpander>(engine, dram_.get(), name + "/expander",
                                               config.device_serialization_latency);
  fea_ = fabric->AddEndpointAdapter(config.fea, name + "/fea", expander_.get(), domain);
  dispatcher_ = std::make_unique<MessageDispatcher>(fea_);
}

FaaChassis::FaaChassis(Engine* engine, FabricInterconnect* fabric, const FaaChassisConfig& config,
                       const std::string& name, std::uint16_t domain)
    : name_(name) {
  accelerator_ = std::make_unique<Accelerator>(engine, config.accelerator, name + "/accel");
  scratch_ = std::make_unique<DramDevice>(engine, config.scratch, name + "/scratch");
  fea_ = fabric->AddEndpointAdapter(config.fea, name + "/fea", scratch_.get(), domain);
  dispatcher_ = std::make_unique<MessageDispatcher>(fea_);
}

}  // namespace unifab
