// Host server: CPU cores (each a MemoryHierarchy), local DIMMs, a root port
// with its fabric host adapter, and a message dispatcher for runtime
// services (paper Figure 1b, left).

#ifndef SRC_TOPO_HOST_H_
#define SRC_TOPO_HOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/mem/hierarchy.h"
#include "src/sim/engine.h"

namespace unifab {

struct HostConfig {
  int num_cores = 4;
  HierarchyConfig hierarchy;
  DramConfig local_dram;
  AdapterConfig fha;
  std::uint64_t local_mem_base = 0;  // where local DIMMs appear
};

class HostServer {
 public:
  // Registers the host's FHA with `fabric`; the caller wires the FHA to a
  // switch (or directly to an endpoint) afterwards.
  HostServer(Engine* engine, FabricInterconnect* fabric, const HostConfig& config,
             const std::string& name, std::uint16_t domain = 0);

  HostServer(const HostServer&) = delete;
  HostServer& operator=(const HostServer&) = delete;

  // Maps a fabric-attached range into every core's address space.
  void MapRemote(std::uint64_t base, std::uint64_t size, PbrId node);

  MemoryHierarchy* core(int i) { return cores_[static_cast<std::size_t>(i)].get(); }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  HostAdapter* fha() { return fha_; }
  MessageDispatcher* dispatcher() { return dispatcher_.get(); }
  DramDevice* local_dram() { return local_dram_.get(); }
  PbrId id() const { return fha_->id(); }
  const std::string& name() const { return name_; }
  const HostConfig& config() const { return config_; }

 private:
  std::string name_;
  HostConfig config_;
  std::unique_ptr<DramDevice> local_dram_;
  HostAdapter* fha_;  // owned by the interconnect
  std::unique_ptr<MessageDispatcher> dispatcher_;
  std::vector<std::unique_ptr<MemoryHierarchy>> cores_;
};

}  // namespace unifab

#endif  // SRC_TOPO_HOST_H_
