#include "src/topo/presets.h"

namespace unifab {

HierarchyConfig OmegaHostHierarchy() {
  HierarchyConfig cfg;
  cfg.l1 = CacheConfig{32 * 1024, 64, 8};
  cfg.l2 = CacheConfig{1 * 1024 * 1024, 64, 16};
  cfg.has_llc = false;  // the Omega host is a small ARM complex: L1 + L2
  cfg.l1_latency = FromNs(5.4);
  cfg.l2_latency = FromNs(8.2);     // 5.4 + 8.2 = 13.6 ns L2 hit
  cfg.mem_ctrl_latency = FromNs(35.6);
  cfg.l1_interval = FromNs(2.8);    // 357 MOPS
  cfg.l2_interval = FromNs(6.9);    // 145 MOPS
  cfg.mshrs = 4;                    // local: 4/111.7ns ~ 35 MOPS; remote: 4/1575ns ~ 2.5 MOPS
  return cfg;
}

DramConfig OmegaLocalDram() {
  DramConfig cfg;
  cfg.capacity_bytes = 16ULL << 30;
  cfg.num_banks = 16;
  cfg.access_latency = FromNs(60.0);
  cfg.bandwidth_gbps = 25.6;  // 64B transfer ~ 2.5 ns
  // Local 64B read: 5.4 + 8.2 + 35.6 + 60 + 2.5 = 111.7 ns.
  return cfg;
}

AdapterConfig OmegaHostAdapter() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(400.0);   // FPGA-based FHA protocol conversion
  cfg.response_proc_latency = FromNs(365.0);
  cfg.max_outstanding = 16;
  cfg.flit_mode = FlitMode::k68B;
  return cfg;
}

AdapterConfig OmegaEndpointAdapter() {
  AdapterConfig cfg;
  cfg.request_proc_latency = FromNs(350.0);
  cfg.response_proc_latency = FromNs(50.0);
  cfg.max_outstanding = 64;
  cfg.flit_mode = FlitMode::k68B;
  return cfg;
}

LinkConfig OmegaLink() {
  LinkConfig cfg;
  cfg.gigatransfers_per_sec = 32.0;  // CXL 2.0
  cfg.lanes = 16;                    // 64 GB/s; a 68B flit serializes in ~1.06 ns
  cfg.flit_mode = FlitMode::k68B;
  cfg.propagation = FromNs(50.0);    // cable + retimers per traversal
  cfg.credits_per_vc = 8;
  cfg.credit_return_latency = FromNs(50.0);
  cfg.tx_queue_depth = 64;
  return cfg;
}

SwitchConfig FabrexSwitch() {
  SwitchConfig cfg;
  cfg.port_latency = FromNs(90.0);  // FabreX quotes <100 ns non-blocking
  cfg.virtual_output_queues = true;
  cfg.arbitration = SwitchArbitration::kRoundRobin;
  cfg.credit_alloc = CreditAllocPolicy::kStatic;
  return cfg;
}

// Unloaded 64B remote read budget through one switch:
//   13.6 (L1+L2 probes) + 400 (FHA req) + 4 x (1.06 + 50) (two links, both
//   directions) + 2 x 90 (switch) + 350 (FEA) + 60 + 2.5 (rDIMM) + 365
//   (FHA resp) ~ 1575 ns.

HostConfig OmegaHost() {
  HostConfig cfg;
  cfg.num_cores = 4;
  cfg.hierarchy = OmegaHostHierarchy();
  cfg.local_dram = OmegaLocalDram();
  cfg.fha = OmegaHostAdapter();
  return cfg;
}

FamChassisConfig OmegaFam() {
  FamChassisConfig cfg;
  cfg.rdimm = OmegaLocalDram();
  cfg.rdimm.capacity_bytes = 64ULL << 30;  // six E3.S modules per chassis
  cfg.fea = OmegaEndpointAdapter();
  return cfg;
}

FaaChassisConfig OmegaFaa() {
  FaaChassisConfig cfg;
  cfg.accelerator = AcceleratorConfig{};
  cfg.scratch = OmegaLocalDram();
  cfg.scratch.capacity_bytes = 8ULL << 30;
  cfg.fea = OmegaEndpointAdapter();
  return cfg;
}

}  // namespace unifab
