// FAM and FAA chassis (paper Figure 1b, right): standalone boxes enclosing
// a controller, an FEA, and either rDIMM modules (FAM) or accelerators plus
// scratch rDIMMs (FAA).

#ifndef SRC_TOPO_CHASSIS_H_
#define SRC_TOPO_CHASSIS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/fabric/dispatch.h"
#include "src/fabric/interconnect.h"
#include "src/mem/dram.h"
#include "src/mem/expander.h"
#include "src/topo/accelerator.h"

namespace unifab {

struct FamChassisConfig {
  DramConfig rdimm;
  AdapterConfig fea;
  Tick device_serialization_latency = FromNs(20.0);
};

// Fabric-attached memory chassis: rDIMMs behind a MemoryExpander (CXL Type 3
// semantics, CPU-less NUMA node).
class FamChassis {
 public:
  FamChassis(Engine* engine, FabricInterconnect* fabric, const FamChassisConfig& config,
             const std::string& name, std::uint16_t domain = 0);

  FamChassis(const FamChassis&) = delete;
  FamChassis& operator=(const FamChassis&) = delete;

  EndpointAdapter* fea() { return fea_; }
  MemoryExpander* expander() { return expander_.get(); }
  DramDevice* dram() { return dram_.get(); }
  MessageDispatcher* dispatcher() { return dispatcher_.get(); }
  // The engine this chassis's components run on (its own shard under
  // shard-by-domain clustering; protocol agents homed here must schedule
  // their local events on it).
  Engine* engine() { return engine_; }
  PbrId id() const { return fea_->id(); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Engine* engine_;
  std::unique_ptr<DramDevice> dram_;
  std::unique_ptr<MemoryExpander> expander_;
  EndpointAdapter* fea_;  // owned by the interconnect
  std::unique_ptr<MessageDispatcher> dispatcher_;
};

struct FaaChassisConfig {
  AcceleratorConfig accelerator;
  DramConfig scratch;
  AdapterConfig fea;
};

// Fabric-attached accelerator chassis: execution engines plus scratch
// memory; runtime messages (scalable-function invocations, idempotent task
// dispatch) arrive through the FEA dispatcher.
class FaaChassis {
 public:
  FaaChassis(Engine* engine, FabricInterconnect* fabric, const FaaChassisConfig& config,
             const std::string& name, std::uint16_t domain = 0);

  FaaChassis(const FaaChassis&) = delete;
  FaaChassis& operator=(const FaaChassis&) = delete;

  // Fails/recovers the whole chassis power domain (accelerator + adapters).
  void Fail() { accelerator_->Fail(); }
  void Recover() { accelerator_->Recover(); }
  bool failed() const { return accelerator_->failed(); }

  Accelerator* accelerator() { return accelerator_.get(); }
  EndpointAdapter* fea() { return fea_; }
  DramDevice* scratch() { return scratch_.get(); }
  MessageDispatcher* dispatcher() { return dispatcher_.get(); }
  PbrId id() const { return fea_->id(); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::unique_ptr<Accelerator> accelerator_;
  std::unique_ptr<DramDevice> scratch_;
  EndpointAdapter* fea_;  // owned by the interconnect
  std::unique_ptr<MessageDispatcher> dispatcher_;
};

}  // namespace unifab

#endif  // SRC_TOPO_CHASSIS_H_
