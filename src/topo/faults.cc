#include "src/topo/faults.h"

#include <sstream>

namespace unifab {
namespace {

// "key=value" -> value as double; false when the token doesn't match `key`.
bool ParseKeyValue(const std::string& token, const std::string& key, double* out) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    return false;
  }
  try {
    *out = std::stod(token.substr(prefix.size()));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

FaultPlan FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;

  // Split into directives: newline or ';' terminated, '#' to end-of-line.
  std::vector<std::string> directives;
  std::string cur;
  bool in_comment = false;
  for (const char c : text) {
    if (c == '\n' || c == ';') {
      directives.push_back(cur);
      cur.clear();
      in_comment = false;
      continue;
    }
    if (c == '#') {
      in_comment = true;
    }
    if (!in_comment) {
      cur.push_back(c);
    }
  }
  directives.push_back(cur);

  for (const std::string& directive : directives) {
    std::istringstream in(directive);
    std::vector<std::string> tokens;
    std::string tok;
    while (in >> tok) {
      tokens.push_back(tok);
    }
    if (tokens.empty()) {
      continue;  // blank line / pure comment
    }

    const std::string& verb = tokens[0];
    if ((verb == "fail" || verb == "recover") && tokens.size() == 3 && tokens[2][0] == '@') {
      double at_us = 0.0;
      try {
        at_us = std::stod(tokens[2].substr(1));
      } catch (...) {
        plan.errors.push_back(directive);
        continue;
      }
      FaultEvent ev;
      ev.at = FromUs(at_us);
      ev.kind = verb == "fail" ? FaultEvent::Kind::kFail : FaultEvent::Kind::kRecover;
      ev.target = tokens[1];
      plan.events.push_back(std::move(ev));
      continue;
    }
    if (verb == "flap" && tokens.size() == 6) {
      double start_us = 0.0;
      double period_us = 0.0;
      double down_us = 0.0;
      double cycles = 0.0;
      if (ParseKeyValue(tokens[2], "start", &start_us) &&
          ParseKeyValue(tokens[3], "period", &period_us) &&
          ParseKeyValue(tokens[4], "down", &down_us) &&
          ParseKeyValue(tokens[5], "cycles", &cycles) && period_us > 0.0 && down_us > 0.0 &&
          down_us < period_us && cycles >= 1.0) {
        for (int k = 0; k < static_cast<int>(cycles); ++k) {
          const double t = start_us + static_cast<double>(k) * period_us;
          plan.events.push_back(
              FaultEvent{FromUs(t), FaultEvent::Kind::kFail, tokens[1]});
          plan.events.push_back(
              FaultEvent{FromUs(t + down_us), FaultEvent::Kind::kRecover, tokens[1]});
        }
        continue;
      }
    }
    plan.errors.push_back(directive);
  }
  return plan;
}

void FaultSchedulerStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "faults_injected", [this] { return faults_injected; });
  group.AddCounterFn(prefix + "recoveries", [this] { return recoveries; });
  group.AddCounterFn(prefix + "unknown_targets", [this] { return unknown_targets; });
}

FaultScheduler::FaultScheduler(Engine* engine, FabricInterconnect* fabric)
    : engine_(engine), fabric_(fabric) {
  metrics_ = MetricGroup(&engine_->metrics(), "recovery/faults");
  stats_.BindTo(metrics_);
}

void FaultScheduler::RegisterLink(const std::string& name, Link* link) {
  RegisterTarget(
      name, [link] { link->Fail(); }, [link] { link->Recover(); });
}

void FaultScheduler::RegisterChassis(const std::string& name, FaaChassis* faa, Link* uplink) {
  RegisterTarget(
      name,
      [faa, uplink] {
        faa->Fail();
        if (uplink != nullptr) {
          uplink->Fail();
        }
      },
      [faa, uplink] {
        if (uplink != nullptr) {
          uplink->Recover();
        }
        faa->Recover();
      });
}

void FaultScheduler::RegisterChassis(const std::string& name, FamChassis* /*fam*/, Link* uplink) {
  RegisterLink(name, uplink);
}

void FaultScheduler::RegisterTarget(const std::string& name, std::function<void()> fail,
                                    std::function<void()> recover) {
  targets_[name] = Target{std::move(fail), std::move(recover)};
}

void FaultScheduler::Schedule(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    engine_->ScheduleAt(event.at, [this, event] { Execute(event); });
  }
}

void FaultScheduler::Execute(const FaultEvent& event) {
  auto it = targets_.find(event.target);
  if (it == targets_.end()) {
    ++stats_.unknown_targets;
    return;
  }
  if (event.kind == FaultEvent::Kind::kFail) {
    ++stats_.faults_injected;
    if (it->second.fail) {
      it->second.fail();
    }
  } else {
    ++stats_.recoveries;
    if (it->second.recover) {
      it->second.recover();
    }
  }
  RequestReroute();
}

void FaultScheduler::RequestReroute() {
  if (fabric_ == nullptr) {
    return;
  }
  // The fabric manager notices the topology change after a detection delay
  // and rebuilds every routing table around it.
  engine_->Schedule(reroute_delay_, [this] { fabric_->ConfigureRouting(); });
}

}  // namespace unifab
