#include "src/topo/cluster.h"

namespace unifab {

ShardedEngine::Options Cluster::ShardOptions(const ClusterConfig& config) {
  ShardedEngine::Options options;
  options.workers = config.shard_workers > 0
                        ? static_cast<std::uint32_t>(config.shard_workers)
                        : 0;  // 0 = UNIFAB_SHARDS from the environment
  options.seed = config.seed;
  return options;
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), sharded_(ShardOptions(config)) {
  fabric_ = std::make_unique<FabricInterconnect>(&engine(), config.seed);

  // Fabric-domain shard assignment (DESIGN.md §6e): every switch island and
  // every FAM chassis is its own domain with its own engine shard; hosts,
  // FAA chassis, and the shared runtime objects built on top stay on the
  // root shard (the iTask runtime invokes FAA accelerators directly, so
  // they must share the runtime's shard). Cross-domain traffic only flows
  // through links, whose latency bounds the lookahead window below.
  for (int i = 0; i < config.num_switches; ++i) {
    if (config.shard_by_domain) {
      fabric_->SetComponentEngine(&sharded_.AddShard("sw" + std::to_string(i)));
    }
    switches_.push_back(fabric_->AddSwitch(config.sw, "fs" + std::to_string(i)));
    if (i > 0) {
      fabric_->Connect(switches_[static_cast<std::size_t>(i - 1)],
                       switches_[static_cast<std::size_t>(i)], config.link);
    }
  }
  fabric_->SetComponentEngine(nullptr);

  auto switch_for = [&](int idx) {
    return switches_[static_cast<std::size_t>(idx % config.num_switches)];
  };

  int attach = 0;
  for (int i = 0; i < config.num_hosts; ++i) {
    hosts_.push_back(std::make_unique<HostServer>(&engine(), fabric_.get(), config.host,
                                                  "host" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), hosts_.back()->fha(), config.link);
  }
  for (int i = 0; i < config.num_fams; ++i) {
    Engine* fam_engine = &engine();
    if (config.shard_by_domain) {
      fam_engine = &sharded_.AddShard("fam" + std::to_string(i));
      fabric_->SetComponentEngine(fam_engine);
    }
    fams_.push_back(std::make_unique<FamChassis>(fam_engine, fabric_.get(), config.fam,
                                                 "fam" + std::to_string(i)));
    fabric_->SetComponentEngine(nullptr);
    fabric_->Connect(switch_for(attach++), fams_.back()->fea(), config.link);
  }
  for (int i = 0; i < config.num_faas; ++i) {
    faas_.push_back(std::make_unique<FaaChassis>(&engine(), fabric_.get(), config.faa,
                                                 "faa" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), faas_.back()->fea(), config.link);
  }

  // The minimum latency of any shard-boundary link is the conservative
  // lookahead: no domain can affect another faster than that.
  if (fabric_->MinCrossEngineLatency() != kTickNever) {
    sharded_.SetLookahead(fabric_->MinCrossEngineLatency());
  }

  fabric_->ConfigureRouting();

  // Publish every FAM chassis into every host's address map, and teach each
  // chassis where its window sits so the device decodes chassis-relative
  // offsets.
  for (int f = 0; f < num_fams(); ++f) {
    fams_[static_cast<std::size_t>(f)]->expander()->SetAddressBase(FamBase(f));
  }
  for (int h = 0; h < num_hosts(); ++h) {
    for (int f = 0; f < num_fams(); ++f) {
      hosts_[static_cast<std::size_t>(h)]->MapRemote(
          FamBase(f), fams_[static_cast<std::size_t>(f)]->dram()->config().capacity_bytes,
          fams_[static_cast<std::size_t>(f)]->id());
    }
  }
}

HostAdapter* Cluster::AttachControlAdapter(const AdapterConfig& config, const std::string& name,
                                           int sw) {
  HostAdapter* adapter = fabric_->AddHostAdapter(config, name);
  fabric_->Connect(fabric_switch(sw), adapter, config_.link);
  fabric_->ConfigureRouting();
  return adapter;
}

}  // namespace unifab
