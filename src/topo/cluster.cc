#include "src/topo/cluster.h"

namespace unifab {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  fabric_ = std::make_unique<FabricInterconnect>(&engine_, config.seed);

  for (int i = 0; i < config.num_switches; ++i) {
    switches_.push_back(fabric_->AddSwitch(config.sw, "fs" + std::to_string(i)));
    if (i > 0) {
      fabric_->Connect(switches_[static_cast<std::size_t>(i - 1)],
                       switches_[static_cast<std::size_t>(i)], config.link);
    }
  }

  auto switch_for = [&](int idx) {
    return switches_[static_cast<std::size_t>(idx % config.num_switches)];
  };

  int attach = 0;
  for (int i = 0; i < config.num_hosts; ++i) {
    hosts_.push_back(std::make_unique<HostServer>(&engine_, fabric_.get(), config.host,
                                                  "host" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), hosts_.back()->fha(), config.link);
  }
  for (int i = 0; i < config.num_fams; ++i) {
    fams_.push_back(std::make_unique<FamChassis>(&engine_, fabric_.get(), config.fam,
                                                 "fam" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), fams_.back()->fea(), config.link);
  }
  for (int i = 0; i < config.num_faas; ++i) {
    faas_.push_back(std::make_unique<FaaChassis>(&engine_, fabric_.get(), config.faa,
                                                 "faa" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), faas_.back()->fea(), config.link);
  }

  fabric_->ConfigureRouting();

  // Publish every FAM chassis into every host's address map, and teach each
  // chassis where its window sits so the device decodes chassis-relative
  // offsets.
  for (int f = 0; f < num_fams(); ++f) {
    fams_[static_cast<std::size_t>(f)]->expander()->SetAddressBase(FamBase(f));
  }
  for (int h = 0; h < num_hosts(); ++h) {
    for (int f = 0; f < num_fams(); ++f) {
      hosts_[static_cast<std::size_t>(h)]->MapRemote(
          FamBase(f), fams_[static_cast<std::size_t>(f)]->dram()->config().capacity_bytes,
          fams_[static_cast<std::size_t>(f)]->id());
    }
  }
}

}  // namespace unifab
