#include "src/topo/cluster.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace unifab {

ShardedEngine::Options Cluster::ShardOptions(const ClusterConfig& config) {
  ShardedEngine::Options options;
  options.workers = config.shard_workers > 0
                        ? static_cast<std::uint32_t>(config.shard_workers)
                        : 0;  // 0 = UNIFAB_SHARDS from the environment
  options.seed = config.seed;
  return options;
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), sharded_(ShardOptions(config)) {
  fabric_ = std::make_unique<FabricInterconnect>(&engine(), config.seed);

  if (config.num_pods > 1) {
    BuildPods();
  } else {
    BuildFlat();
  }

  // The minimum latency of any shard-boundary link is the conservative
  // lookahead: no domain can affect another faster than that.
  if (fabric_->MinCrossEngineLatency() != kTickNever) {
    sharded_.SetLookahead(fabric_->MinCrossEngineLatency());
  }

  fabric_->ConfigureRouting();

  // Publish every FAM chassis into every host's address map, and teach each
  // chassis where its window sits so the device decodes chassis-relative
  // offsets.
  for (int f = 0; f < num_fams(); ++f) {
    fams_[static_cast<std::size_t>(f)]->expander()->SetAddressBase(FamBase(f));
  }
  for (int h = 0; h < num_hosts(); ++h) {
    for (int f = 0; f < num_fams(); ++f) {
      hosts_[static_cast<std::size_t>(h)]->MapRemote(
          FamBase(f), fams_[static_cast<std::size_t>(f)]->dram()->config().capacity_bytes,
          fams_[static_cast<std::size_t>(f)]->id());
    }
  }
}

void Cluster::BuildFlat() {
  const ClusterConfig& config = config_;

  // Fabric-domain shard assignment (DESIGN.md §6e): every switch island and
  // every FAM chassis is its own domain with its own engine shard; hosts,
  // FAA chassis, and the shared runtime objects built on top stay on the
  // root shard (the iTask runtime invokes FAA accelerators directly, so
  // they must share the runtime's shard). Cross-domain traffic only flows
  // through links, whose latency bounds the lookahead window.
  for (int i = 0; i < config.num_switches; ++i) {
    if (config.shard_by_domain) {
      fabric_->SetComponentEngine(&sharded_.AddShard("sw" + std::to_string(i)));
    }
    switches_.push_back(fabric_->AddSwitch(config.sw, "fs" + std::to_string(i)));
    if (i > 0) {
      fabric_->Connect(switches_[static_cast<std::size_t>(i - 1)],
                       switches_[static_cast<std::size_t>(i)], config.link);
    }
  }
  fabric_->SetComponentEngine(nullptr);

  auto switch_for = [&](int idx) {
    return switches_[static_cast<std::size_t>(idx % config.num_switches)];
  };

  int attach = 0;
  for (int i = 0; i < config.num_hosts; ++i) {
    hosts_.push_back(std::make_unique<HostServer>(&engine(), fabric_.get(), config.host,
                                                  "host" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), hosts_.back()->fha(), config.link);
  }
  for (int i = 0; i < config.num_fams; ++i) {
    Engine* fam_engine = &engine();
    if (config.shard_by_domain) {
      fam_engine = &sharded_.AddShard("fam" + std::to_string(i));
      fabric_->SetComponentEngine(fam_engine);
    }
    fams_.push_back(std::make_unique<FamChassis>(fam_engine, fabric_.get(), config.fam,
                                                 "fam" + std::to_string(i)));
    fabric_->SetComponentEngine(nullptr);
    fabric_->Connect(switch_for(attach++), fams_.back()->fea(), config.link);
  }
  for (int i = 0; i < config.num_faas; ++i) {
    faas_.push_back(std::make_unique<FaaChassis>(&engine(), fabric_.get(), config.faa,
                                                 "faa" + std::to_string(i)));
    fabric_->Connect(switch_for(attach++), faas_.back()->fea(), config.link);
  }
}

void Cluster::BuildPods() {
  const ClusterConfig& config = config_;
  const int num_pods = config.num_pods;
  if (num_pods > kMaxFabricDomains) {
    std::fprintf(stderr,
                 "[unifab] cluster: num_pods=%d exceeds the %d-domain PBR id space\n",
                 num_pods, kMaxFabricDomains);
    std::abort();
  }
  const PodConfig& pc = config.pod;

  // Pod p is PBR domain p and (when sharding) engine shard "pod<p>",
  // holding the pod's switches and FAM chassis. Hosts and FAA chassis stay
  // on the root shard — the same split BuildFlat uses, so the runtime
  // objects built on top keep working. Everything that leaves a pod rides
  // the Ethernet bridges wired below.
  for (int p = 0; p < num_pods; ++p) {
    const auto domain = static_cast<std::uint16_t>(p);
    const std::string prefix = "p" + std::to_string(p) + "/";
    Engine* pod_engine = &engine();
    if (config.shard_by_domain) {
      pod_engine = &sharded_.AddShard("pod" + std::to_string(p));
    }

    Pod pod;
    pod.index = p;
    std::vector<FabricSwitch*> pod_switches;
    for (int s = 0; s < pc.num_switches; ++s) {
      fabric_->SetComponentEngine(config.shard_by_domain ? pod_engine : nullptr);
      FabricSwitch* sw = fabric_->AddSwitch(config.sw, prefix + "fs" + std::to_string(s), domain);
      fabric_->SetComponentEngine(nullptr);
      if (s > 0) {
        fabric_->Connect(pod_switches.back(), sw, config.link);
      }
      pod.switches.push_back(static_cast<int>(switches_.size()));
      switches_.push_back(sw);
      pod_switches.push_back(sw);
    }
    pod.gateway = pod_switches.front();

    auto switch_for = [&](int idx) {
      return pod_switches[static_cast<std::size_t>(idx) % pod_switches.size()];
    };
    int attach = 0;
    for (int h = 0; h < pc.num_hosts; ++h) {
      pod.hosts.push_back(static_cast<int>(hosts_.size()));
      hosts_.push_back(std::make_unique<HostServer>(&engine(), fabric_.get(), config.host,
                                                    prefix + "host" + std::to_string(h), domain));
      fabric_->Connect(switch_for(attach++), hosts_.back()->fha(), config.link);
    }
    for (int f = 0; f < pc.num_fams; ++f) {
      Engine* fam_engine = config.shard_by_domain ? pod_engine : &engine();
      fabric_->SetComponentEngine(config.shard_by_domain ? pod_engine : nullptr);
      pod.fams.push_back(static_cast<int>(fams_.size()));
      fams_.push_back(std::make_unique<FamChassis>(fam_engine, fabric_.get(), config.fam,
                                                   prefix + "fam" + std::to_string(f), domain));
      fabric_->SetComponentEngine(nullptr);
      fabric_->Connect(switch_for(attach++), fams_.back()->fea(), config.link);
    }
    for (int a = 0; a < pc.num_faas; ++a) {
      pod.faas.push_back(static_cast<int>(faas_.size()));
      faas_.push_back(std::make_unique<FaaChassis>(&engine(), fabric_.get(), config.faa,
                                                   prefix + "faa" + std::to_string(a), domain));
      fabric_->Connect(switch_for(attach++), faas_.back()->fea(), config.link);
    }
    pods_.push_back(std::move(pod));
  }

  // Ethernet bridges between pod gateways: one trunk for 2 pods, a ring
  // for 3+ (the ring gives ConfigureRouting a redundant inter-pod path to
  // fail over to when a bridge flaps).
  for (int p = 0; p < num_pods; ++p) {
    const int q = (p + 1) % num_pods;
    if (num_pods == 2 && p == 1) {
      break;  // two pods: a single trunk, not a doubled pair
    }
    bridges_.push_back(
        fabric_->ConnectBridge(pods_[static_cast<std::size_t>(p)].gateway,
                               pods_[static_cast<std::size_t>(q)].gateway, config.bridge));
  }
}

ClusterConfig DFabricPodCluster(int num_pods, const PodConfig& pod) {
  ClusterConfig config;
  config.num_pods = num_pods;
  config.pod = pod;
  return config;
}

HostAdapter* Cluster::AttachControlAdapter(const AdapterConfig& config, const std::string& name,
                                           int sw) {
  HostAdapter* adapter = fabric_->AddHostAdapter(config, name);
  fabric_->Connect(fabric_switch(sw), adapter, config_.link);
  fabric_->ConfigureRouting();
  return adapter;
}

}  // namespace unifab
