#include "src/core/arbiter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>

namespace unifab {

void ArbiterStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "queries", [this] { return queries; });
  group.AddCounterFn(prefix + "reservations", [this] { return reservations; });
  group.AddCounterFn(prefix + "releases", [this] { return releases; });
  group.AddCounterFn(prefix + "rejections", [this] { return rejections; });
  group.AddCounterFn(prefix + "expirations", [this] { return expirations; });
}

void ArbiterQosStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  for (int c = 0; c < kNumQosClasses; ++c) {
    group.AddCounterFn(prefix + "grants_" + QosClassName(static_cast<QosClass>(c)),
                       [this, c] { return grants[c]; });
  }
  group.AddCounterFn(prefix + "preemptions", [this] { return preemptions; });
  group.AddGaugeFn(prefix + "preempted_mbps", [this] { return preempted_mbps; });
  group.AddCounterFn(prefix + "budget_clamps", [this] { return budget_clamps; });
}

FabricArbiter::FabricArbiter(Engine* engine, const ArbiterConfig& config,
                             MessageDispatcher* dispatcher)
    : engine_(engine), config_(config), dispatcher_(dispatcher) {
  dispatcher_->RegisterService(kSvcArbiter,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(), "core/arbiter");
  stats_.BindTo(metrics_);
  qos_metrics_ = MetricGroup(&engine_->metrics(), "core/arbiter/qos");
  qos_stats_.BindTo(qos_metrics_);
  audit_ = AuditScope(&engine_->audit(), "core/arbiter");
  // The incrementally maintained reserved_cache must agree with the O(n)
  // recompute; a divergence means a lease mutation path forgot (or double-
  // applied) its accounting — exactly the class of bug PR 3 fixed by hand.
  audit_.AddCheck("reserved_accounting", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      const double recomputed = res.Reserved();
      const double eps = 1e-6 * std::max(1.0, std::abs(recomputed));
      if (std::abs(res.reserved_cache - recomputed) > eps) {
        return "resource " + std::to_string(node) + ": incremental reserved " +
               std::to_string(res.reserved_cache) + " != recomputed " +
               std::to_string(recomputed);
      }
    }
    return {};
  });
  // Same cross-check for the per-class shadow sums behind the QoS metrics.
  audit_.AddCheck("qos/class_accounting", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      for (int c = 0; c < kNumQosClasses; ++c) {
        const double recomputed = res.ReservedInClass(static_cast<QosClass>(c));
        const double eps = 1e-6 * std::max(1.0, std::abs(recomputed));
        if (std::abs(res.class_reserved_cache[c] - recomputed) > eps) {
          return "resource " + std::to_string(node) + " class " +
                 QosClassName(static_cast<QosClass>(c)) + ": incremental reserved " +
                 std::to_string(res.class_reserved_cache[c]) + " != recomputed " +
                 std::to_string(recomputed);
        }
      }
    }
    return {};
  });
  // Per-tenant granted bandwidth is conserved: the incremental per-tenant
  // shadow map must match a recompute over the lease table (union of keys;
  // a missing entry reads as zero).
  audit_.AddCheck("qos/tenant_accounting", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      std::map<std::uint32_t, double> recomputed;
      for (const auto& [key, lease] : res.leases) {
        recomputed[key.tenant] += lease.mbps;
      }
      auto mismatch = [&](std::uint32_t tenant, double cached,
                          double actual) -> std::string {
        const double eps = 1e-6 * std::max(1.0, std::abs(actual));
        if (std::abs(cached - actual) > eps) {
          return "resource " + std::to_string(node) + " tenant " + std::to_string(tenant) +
                 ": incremental reserved " + std::to_string(cached) + " != recomputed " +
                 std::to_string(actual);
        }
        return {};
      };
      for (const auto& [tenant, cached] : res.tenant_reserved_cache) {
        auto it = recomputed.find(tenant);
        if (auto err = mismatch(tenant, cached, it == recomputed.end() ? 0.0 : it->second);
            !err.empty()) {
          return err;
        }
      }
      for (const auto& [tenant, actual] : recomputed) {
        auto it = res.tenant_reserved_cache.find(tenant);
        if (auto err = mismatch(tenant, it == res.tenant_reserved_cache.end() ? 0.0 : it->second,
                                actual);
            !err.empty()) {
          return err;
        }
      }
    }
    return {};
  });
  // A tenant's granted bandwidth within a class never exceeds that class's
  // per-tenant budget: every grant is clamped to the budget headroom at
  // decision time and leases only shrink afterwards.
  audit_.AddCheck("qos/tenant_budget_ceiling", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      std::map<std::pair<std::uint32_t, int>, double> sums;
      for (const auto& [key, lease] : res.leases) {
        sums[{key.tenant, static_cast<int>(lease.qos)}] += lease.mbps;
      }
      for (const auto& [tc, sum] : sums) {
        const double budget = config_.qos[tc.second].tenant_budget_mbps;
        if (budget > 0.0 && sum > budget + 1e-6 * std::max(1.0, budget)) {
          return "resource " + std::to_string(node) + " tenant " + std::to_string(tc.first) +
                 " class " + QosClassName(static_cast<QosClass>(tc.second)) + ": reserved " +
                 std::to_string(sum) + " mbps exceeds tenant budget " + std::to_string(budget);
        }
      }
    }
    return {};
  });
  // Every lease is positive, within capacity, and inside its lifetime
  // window (no lease may claim to expire further out than one full
  // lease_duration from now — that would mean a stale expiry computation).
  audit_.AddCheck("lease_sanity", [this]() -> std::string {
    const Tick now = engine_->Now();
    for (const auto& [node, res] : resources_) {
      for (const auto& [key, lease] : res.leases) {
        const double eps = 1e-6 * std::max(1.0, res.capacity_mbps);
        if (lease.mbps <= 0.0 || lease.mbps > res.capacity_mbps + eps) {
          return "resource " + std::to_string(node) + " holder " + std::to_string(key.holder) +
                 ": lease of " + std::to_string(lease.mbps) + " mbps outside (0, capacity=" +
                 std::to_string(res.capacity_mbps) + "]";
        }
        if (lease.expires_at > now + config_.lease_duration) {
          return "resource " + std::to_string(node) + " holder " + std::to_string(key.holder) +
                 ": lease expires at " + std::to_string(lease.expires_at) +
                 "ps, beyond now + lease_duration";
        }
      }
    }
    return {};
  });
  // Work-conserving max-min deliberately overcommits transiently (a new
  // flow always gets its fair share even when earlier flows hold over-share
  // leases), but the total is provably bounded by the per-class harmonic
  // sum: within class c a fair-share grant never exceeds capacity / i for
  // the i-th concurrent class flow (the class entitlement is <= capacity),
  // so class c contributes at most capacity * H(n_c). With a single active
  // class this is exactly the legacy capacity * H(n) bound. Anything above
  // is an accounting bug, not fair-share overcommit.
  audit_.AddCheck("maxmin_capacity_bound", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      std::size_t class_count[kNumQosClasses] = {0, 0, 0};
      for (const auto& [key, lease] : res.leases) {
        ++class_count[static_cast<int>(lease.qos)];
      }
      double bound = 0.0;
      for (std::size_t n : class_count) {
        double harmonic = 0.0;
        for (std::size_t i = 1; i <= n; ++i) {
          harmonic += 1.0 / static_cast<double>(i);
        }
        bound += res.capacity_mbps * harmonic;
      }
      const double reserved = res.Reserved();
      if (reserved > bound + 1e-6 * std::max(1.0, bound)) {
        return "resource " + std::to_string(node) + ": reserved " + std::to_string(reserved) +
               " mbps exceeds the per-class harmonic bound " + std::to_string(bound) + " over " +
               std::to_string(res.leases.size()) + " leases";
      }
    }
    return {};
  });
}

void FabricArbiter::RegisterResource(PbrId node, double capacity_mbps) {
  resources_[node].capacity_mbps = capacity_mbps;
}

void FabricArbiter::SetFlowPriority(PbrId src, int priority) {
  for (FabricSwitch* sw : switches_) {
    sw->SetSourcePriority(src, priority);
  }
}

double FabricArbiter::CapacityOf(PbrId node) const {
  auto it = resources_.find(node);
  return it == resources_.end() ? 0.0 : it->second.capacity_mbps;
}

double FabricArbiter::ReservedOf(PbrId node) const {
  auto it = resources_.find(node);
  return it == resources_.end() ? 0.0 : it->second.Reserved();
}

double FabricArbiter::TenantReservedOf(PbrId node, std::uint32_t tenant) const {
  auto it = resources_.find(node);
  return it == resources_.end() ? 0.0 : it->second.ReservedByTenant(tenant);
}

void FabricArbiter::Credit(Resource& res, const Lease& lease, double delta) {
  res.reserved_cache += delta;
  res.class_reserved_cache[static_cast<int>(lease.qos)] += delta;
  res.tenant_reserved_cache[lease.tenant] += delta;
}

void FabricArbiter::EraseLease(Resource& res, std::map<FlowKey, Lease>::iterator it) {
  Credit(res, it->second, -it->second.mbps);
  res.leases.erase(it);
  if (res.leases.empty()) {
    // Re-anchor: no leases means exactly zero everywhere (no float dust).
    res.reserved_cache = 0.0;
    for (double& c : res.class_reserved_cache) {
      c = 0.0;
    }
    res.tenant_reserved_cache.clear();
  }
}

void FabricArbiter::ExpireLeases(Resource& res) {
  const Tick now = engine_->Now();
  for (auto it = res.leases.begin(); it != res.leases.end();) {
    if (it->second.expires_at <= now) {
      ++stats_.expirations;
      auto next = std::next(it);
      EraseLease(res, it);
      it = next;
    } else {
      ++it;
    }
  }
}

void FabricArbiter::PreemptBestEffort(Resource& res, const FlowKey& requester, double want) {
  const double need = std::min(want, res.capacity_mbps);
  double others = 0.0;
  for (const auto& [key, lease] : res.leases) {
    if (!(key == requester)) {
      others += lease.mbps;
    }
  }
  while (res.capacity_mbps - others < need) {
    // Deterministic victim selection: the largest best-effort lease, first
    // in key order among equals. The requester is guaranteed-class, so it
    // can never pick itself.
    auto victim = res.leases.end();
    for (auto it = res.leases.begin(); it != res.leases.end(); ++it) {
      if (it->second.qos != QosClass::kBestEffort || it->first == requester) {
        continue;
      }
      if (victim == res.leases.end() || it->second.mbps > victim->second.mbps) {
        victim = it;
      }
    }
    if (victim == res.leases.end()) {
      break;  // nothing evictable left; the grant falls back to fair share
    }
    ++qos_stats_.preemptions;
    qos_stats_.preempted_mbps += victim->second.mbps;
    others -= victim->second.mbps;
    EraseLease(res, victim);
  }
}

double FabricArbiter::FairGrant(Resource& res, const FlowKey& flow, QosClass qos, double want) {
  // Weighted max-min: the requester's class is entitled to capacity scaled
  // by its weight over the weights of all *active* classes, split evenly
  // across the class's flows. The requester may take more if capacity is
  // otherwise uncommitted (work-conserving), and never less than its fair
  // share — existing over-share leases will shrink when they renew. With a
  // single active class this reduces to plain max-min over all flows.
  bool class_active[kNumQosClasses] = {false, false, false};
  class_active[static_cast<int>(qos)] = true;
  std::size_t class_flows = 1;  // the requester itself
  double reserved_by_others = 0.0;
  double tenant_reserved = 0.0;  // same tenant + class, other flows
  for (const auto& [key, lease] : res.leases) {
    class_active[static_cast<int>(lease.qos)] = true;
    if (key == flow) {
      continue;
    }
    reserved_by_others += lease.mbps;
    if (lease.qos == qos) {
      ++class_flows;
      if (key.tenant == flow.tenant) {
        tenant_reserved += lease.mbps;
      }
    }
  }
  double weight_sum = 0.0;
  for (int c = 0; c < kNumQosClasses; ++c) {
    if (class_active[c]) {
      weight_sum += config_.qos[c].weight;
    }
  }
  const double entitlement =
      res.capacity_mbps * config_.qos[static_cast<int>(qos)].weight / weight_sum;
  const double fair_share = entitlement / static_cast<double>(class_flows);
  const double uncommitted = std::max(0.0, res.capacity_mbps - reserved_by_others);
  double grant = std::min(want, std::max(uncommitted, fair_share));
  // Tenant credit budget: a tenant's concurrent grants within a class are
  // capped per resource; the headroom excludes the flow's own lease (a
  // renewal replaces it wholesale).
  const double budget = config_.qos[static_cast<int>(qos)].tenant_budget_mbps;
  if (budget > 0.0 && grant > budget - tenant_reserved) {
    grant = std::max(0.0, budget - tenant_reserved);
    ++qos_stats_.budget_clamps;
  }
  return grant;
}

void FabricArbiter::HandleMessage(const FabricMessage& msg) {
  const auto req = std::static_pointer_cast<ArbiterMsg>(msg.body);
  assert(req != nullptr);
  engine_->Schedule(config_.decision_latency, [this, m = *req, src = msg.src] {
    auto it = resources_.find(m.resource);
    if (it == resources_.end()) {
      ArbiterMsg resp = m;
      resp.kind = m.kind == ArbiterMsg::Kind::kQuery ? ArbiterMsg::Kind::kQueryResp
                                                     : ArbiterMsg::Kind::kGrant;
      resp.mbps = 0.0;
      resp.available_mbps = 0.0;
      ++stats_.rejections;
      Reply(src, resp);
      return;
    }
    Resource& res = it->second;
    ExpireLeases(res);

    switch (m.kind) {
      case ArbiterMsg::Kind::kQuery: {
        ++stats_.queries;
        ArbiterMsg resp = m;
        resp.kind = ArbiterMsg::Kind::kQueryResp;
        resp.available_mbps = std::max(0.0, res.capacity_mbps - res.Reserved());
        Reply(src, resp);
        return;
      }
      case ArbiterMsg::Kind::kReserve: {
        ++stats_.reservations;
        const FlowKey flow{src, m.tenant};
        if (m.qos == QosClass::kGuaranteed && config_.preempt_best_effort) {
          // A guaranteed request must not starve behind a committed pool:
          // evict best-effort leases first so the grant below is real
          // capacity, not transient overcommit.
          PreemptBestEffort(res, flow, m.mbps);
        }
        const double granted = FairGrant(res, flow, m.qos, m.mbps);
        auto existing = res.leases.find(flow);
        if (existing != res.leases.end()) {
          // A renewal replaces the lease wholesale (its class may change).
          // A renewal squeezed to nothing loses its old allocation too:
          // "over-share leases shrink when they renew". Leaving the stale
          // lease in place would double-count the holder's bandwidth in
          // every kQuery/FairGrant until it expired on its own.
          EraseLease(res, existing);
        }
        if (granted <= 0.0) {
          ++stats_.rejections;
        } else {
          const Lease lease{src, m.tenant, m.qos, granted,
                            engine_->Now() + config_.lease_duration};
          res.leases.emplace(flow, lease);
          Credit(res, lease, granted);
          ++qos_stats_.grants[static_cast<int>(m.qos)];
        }
        ArbiterMsg resp = m;
        resp.kind = ArbiterMsg::Kind::kGrant;
        resp.mbps = granted;
        Reply(src, resp);
        return;
      }
      case ArbiterMsg::Kind::kRelease: {
        ++stats_.releases;
        auto lease = res.leases.find(FlowKey{src, m.tenant});
        if (lease != res.leases.end()) {
          if (lease->second.mbps - m.mbps <= 0.0) {
            EraseLease(res, lease);
          } else {
            lease->second.mbps -= m.mbps;
            Credit(res, lease->second, -m.mbps);
          }
        }
        return;  // releases are not acknowledged
      }
      default:
        return;
    }
  });
}

void FabricArbiter::Reply(PbrId dst, const ArbiterMsg& msg) {
  dispatcher_->adapter()->SendMessage(dst, Channel::kControl, Opcode::kCreditGrant,
                                      MakeTag(kSvcArbiter, msg.request_id),
                                      config_.ctrl_msg_bytes,
                                      std::make_shared<ArbiterMsg>(msg));
}

void ArbiterClientStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "requests", [this] { return requests; });
  group.AddCounterFn(prefix + "replies", [this] { return replies; });
  group.AddCounterFn(prefix + "timeouts", [this] { return timeouts; });
  group.AddCounterFn(prefix + "late_grants", [this] { return late_grants; });
}

ArbiterClient::ArbiterClient(Engine* engine, const ArbiterConfig& config,
                             MessageDispatcher* dispatcher, PbrId arbiter_node)
    : engine_(engine), config_(config), dispatcher_(dispatcher), arbiter_node_(arbiter_node) {
  dispatcher_->RegisterService(kSvcArbiter,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(),
                         "core/arbiter/client/" + dispatcher_->adapter()->name());
  stats_.BindTo(metrics_);
}

void ArbiterClient::Send(ArbiterMsg msg) {
  dispatcher_->adapter()->SendMessage(arbiter_node_, Channel::kControl, Opcode::kCreditQuery,
                                      MakeTag(kSvcArbiter, msg.request_id),
                                      config_.ctrl_msg_bytes,
                                      std::make_shared<ArbiterMsg>(msg));
}

// Registers the callback and arms the request deadline. If no reply lands
// before it fires, the callback runs with 0 granted — the same shape as an
// arbiter rejection, which callers already handle with backoff/retry.
void ArbiterClient::Track(std::uint64_t request_id, std::function<void(double)> cb) {
  ++stats_.requests;
  Pending pending;
  pending.cb = std::move(cb);
  if (config_.request_timeout > 0) {
    pending.deadline = engine_->Schedule(config_.request_timeout, [this, request_id] {
      auto it = callbacks_.find(request_id);
      if (it == callbacks_.end()) {
        return;
      }
      auto cb2 = std::move(it->second.cb);
      callbacks_.erase(it);
      ++stats_.timeouts;
      if (cb2) {
        cb2(0.0);
      }
    });
  }
  callbacks_[request_id] = std::move(pending);
}

void ArbiterClient::Reserve(PbrId resource, double mbps, std::function<void(double)> cb) {
  Reserve(resource, mbps, 0, QosClass::kBestEffort, std::move(cb));
}

void ArbiterClient::Reserve(PbrId resource, double mbps, std::uint32_t tenant, QosClass qos,
                            std::function<void(double)> cb) {
  ArbiterMsg msg;
  msg.kind = ArbiterMsg::Kind::kReserve;
  msg.request_id = next_request_++;
  msg.resource = resource;
  msg.mbps = mbps;
  msg.tenant = tenant;
  msg.qos = qos;
  Track(msg.request_id, std::move(cb));
  Send(msg);
}

void ArbiterClient::Release(PbrId resource, double mbps) {
  Release(resource, mbps, 0, QosClass::kBestEffort);
}

void ArbiterClient::Release(PbrId resource, double mbps, std::uint32_t tenant, QosClass qos) {
  ArbiterMsg msg;
  msg.kind = ArbiterMsg::Kind::kRelease;
  msg.request_id = next_request_++;
  msg.resource = resource;
  msg.mbps = mbps;
  msg.tenant = tenant;
  msg.qos = qos;
  Send(msg);
}

void ArbiterClient::Query(PbrId resource, std::function<void(double)> cb) {
  ArbiterMsg msg;
  msg.kind = ArbiterMsg::Kind::kQuery;
  msg.request_id = next_request_++;
  msg.resource = resource;
  Track(msg.request_id, std::move(cb));
  Send(msg);
}

void ArbiterClient::HandleMessage(const FabricMessage& msg) {
  const auto resp = std::static_pointer_cast<ArbiterMsg>(msg.body);
  assert(resp != nullptr);
  auto it = callbacks_.find(resp->request_id);
  if (it == callbacks_.end()) {
    // The reply raced the request deadline: the caller was already told 0
    // granted and will never release this lease, so hand a late grant back
    // immediately instead of letting the reserved bandwidth leak until the
    // lease expires on its own.
    if (resp->kind == ArbiterMsg::Kind::kGrant && resp->mbps > 0.0) {
      ++stats_.late_grants;
      Release(resp->resource, resp->mbps, resp->tenant, resp->qos);
    }
    return;
  }
  auto cb = std::move(it->second.cb);
  if (it->second.deadline != kInvalidEventId) {
    engine_->Cancel(it->second.deadline);
  }
  callbacks_.erase(it);
  ++stats_.replies;
  if (cb) {
    cb(resp->kind == ArbiterMsg::Kind::kQueryResp ? resp->available_mbps : resp->mbps);
  }
}

}  // namespace unifab
