#include "src/core/arbiter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace unifab {

void ArbiterStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "queries", [this] { return queries; });
  group.AddCounterFn(prefix + "reservations", [this] { return reservations; });
  group.AddCounterFn(prefix + "releases", [this] { return releases; });
  group.AddCounterFn(prefix + "rejections", [this] { return rejections; });
  group.AddCounterFn(prefix + "expirations", [this] { return expirations; });
}

FabricArbiter::FabricArbiter(Engine* engine, const ArbiterConfig& config,
                             MessageDispatcher* dispatcher)
    : engine_(engine), config_(config), dispatcher_(dispatcher) {
  dispatcher_->RegisterService(kSvcArbiter,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(), "core/arbiter");
  stats_.BindTo(metrics_);
  audit_ = AuditScope(&engine_->audit(), "core/arbiter");
  // The incrementally maintained reserved_cache must agree with the O(n)
  // recompute; a divergence means a lease mutation path forgot (or double-
  // applied) its accounting — exactly the class of bug PR 3 fixed by hand.
  audit_.AddCheck("reserved_accounting", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      const double recomputed = res.Reserved();
      const double eps = 1e-6 * std::max(1.0, std::abs(recomputed));
      if (std::abs(res.reserved_cache - recomputed) > eps) {
        return "resource " + std::to_string(node) + ": incremental reserved " +
               std::to_string(res.reserved_cache) + " != recomputed " +
               std::to_string(recomputed);
      }
    }
    return {};
  });
  // Every lease is positive, within capacity, and inside its lifetime
  // window (no lease may claim to expire further out than one full
  // lease_duration from now — that would mean a stale expiry computation).
  audit_.AddCheck("lease_sanity", [this]() -> std::string {
    const Tick now = engine_->Now();
    for (const auto& [node, res] : resources_) {
      for (const auto& [holder, lease] : res.leases) {
        const double eps = 1e-6 * std::max(1.0, res.capacity_mbps);
        if (lease.mbps <= 0.0 || lease.mbps > res.capacity_mbps + eps) {
          return "resource " + std::to_string(node) + " holder " + std::to_string(holder) +
                 ": lease of " + std::to_string(lease.mbps) + " mbps outside (0, capacity=" +
                 std::to_string(res.capacity_mbps) + "]";
        }
        if (lease.expires_at > now + config_.lease_duration) {
          return "resource " + std::to_string(node) + " holder " + std::to_string(holder) +
                 ": lease expires at " + std::to_string(lease.expires_at) +
                 "ps, beyond now + lease_duration";
        }
      }
    }
    return {};
  });
  // Work-conserving max-min deliberately overcommits transiently (a new
  // flow always gets its fair share even when earlier flows hold over-share
  // leases), but the total is provably bounded by capacity * H(n) — the
  // harmonic series of the lease count, reached by the greedy sequence
  // cap, cap/2, ..., cap/n. Anything above that is an accounting bug, not
  // fair-share overcommit.
  audit_.AddCheck("maxmin_capacity_bound", [this]() -> std::string {
    for (const auto& [node, res] : resources_) {
      double harmonic = 0.0;
      for (std::size_t i = 1; i <= res.leases.size(); ++i) {
        harmonic += 1.0 / static_cast<double>(i);
      }
      const double bound = res.capacity_mbps * harmonic;
      const double reserved = res.Reserved();
      if (reserved > bound + 1e-6 * std::max(1.0, bound)) {
        return "resource " + std::to_string(node) + ": reserved " + std::to_string(reserved) +
               " mbps exceeds capacity*H(" + std::to_string(res.leases.size()) + ") = " +
               std::to_string(bound);
      }
    }
    return {};
  });
}

void FabricArbiter::RegisterResource(PbrId node, double capacity_mbps) {
  resources_[node].capacity_mbps = capacity_mbps;
}

void FabricArbiter::SetFlowPriority(PbrId src, int priority) {
  for (FabricSwitch* sw : switches_) {
    sw->SetSourcePriority(src, priority);
  }
}

double FabricArbiter::CapacityOf(PbrId node) const {
  auto it = resources_.find(node);
  return it == resources_.end() ? 0.0 : it->second.capacity_mbps;
}

double FabricArbiter::ReservedOf(PbrId node) const {
  auto it = resources_.find(node);
  return it == resources_.end() ? 0.0 : it->second.Reserved();
}

void FabricArbiter::ExpireLeases(Resource& res) {
  const Tick now = engine_->Now();
  for (auto it = res.leases.begin(); it != res.leases.end();) {
    if (it->second.expires_at <= now) {
      ++stats_.expirations;
      res.reserved_cache -= it->second.mbps;
      it = res.leases.erase(it);
    } else {
      ++it;
    }
  }
  if (res.leases.empty()) {
    res.reserved_cache = 0.0;  // re-anchor: no leases means exactly zero
  }
}

double FabricArbiter::FairGrant(Resource& res, PbrId holder, double want) {
  // The requester's fair share is capacity / (active flows incl. itself);
  // it may take more if capacity is otherwise uncommitted (work-conserving
  // max-min), and never less than what fairness entitles it to — existing
  // over-share leases will shrink when they renew.
  const bool already = res.leases.count(holder) != 0;
  const double flows = static_cast<double>(res.leases.size() + (already ? 0 : 1));
  const double fair_share = res.capacity_mbps / flows;

  double reserved_by_others = 0.0;
  for (const auto& [h, l] : res.leases) {
    if (h != holder) {
      reserved_by_others += l.mbps;
    }
  }
  const double uncommitted = std::max(0.0, res.capacity_mbps - reserved_by_others);
  // Work-conserving: take whatever is uncommitted, up to the ask — but a
  // flow is always entitled to its fair share even when earlier flows hold
  // over-share leases (the transient overcommit dissolves as those leases
  // expire or renew at the new, smaller share).
  return std::min(want, std::max(uncommitted, fair_share));
}

void FabricArbiter::HandleMessage(const FabricMessage& msg) {
  const auto req = std::static_pointer_cast<ArbiterMsg>(msg.body);
  assert(req != nullptr);
  engine_->Schedule(config_.decision_latency, [this, m = *req, src = msg.src] {
    auto it = resources_.find(m.resource);
    if (it == resources_.end()) {
      ArbiterMsg resp = m;
      resp.kind = m.kind == ArbiterMsg::Kind::kQuery ? ArbiterMsg::Kind::kQueryResp
                                                     : ArbiterMsg::Kind::kGrant;
      resp.mbps = 0.0;
      resp.available_mbps = 0.0;
      ++stats_.rejections;
      Reply(src, resp);
      return;
    }
    Resource& res = it->second;
    ExpireLeases(res);

    switch (m.kind) {
      case ArbiterMsg::Kind::kQuery: {
        ++stats_.queries;
        ArbiterMsg resp = m;
        resp.kind = ArbiterMsg::Kind::kQueryResp;
        resp.available_mbps = std::max(0.0, res.capacity_mbps - res.Reserved());
        Reply(src, resp);
        return;
      }
      case ArbiterMsg::Kind::kReserve: {
        ++stats_.reservations;
        const double granted = FairGrant(res, src, m.mbps);
        auto existing = res.leases.find(src);
        const double before = existing == res.leases.end() ? 0.0 : existing->second.mbps;
        if (granted <= 0.0) {
          ++stats_.rejections;
          // A renewal squeezed to nothing loses its old allocation too:
          // "over-share leases shrink when they renew". Leaving the stale
          // lease in place would double-count the holder's bandwidth in
          // every kQuery/FairGrant until it expired on its own.
          res.leases.erase(src);
          res.reserved_cache -= before;
        } else {
          res.leases[src] =
              Lease{src, granted, engine_->Now() + config_.lease_duration};
          res.reserved_cache += granted - before;
        }
        ArbiterMsg resp = m;
        resp.kind = ArbiterMsg::Kind::kGrant;
        resp.mbps = granted;
        Reply(src, resp);
        return;
      }
      case ArbiterMsg::Kind::kRelease: {
        ++stats_.releases;
        auto lease = res.leases.find(src);
        if (lease != res.leases.end()) {
          const double before = lease->second.mbps;
          lease->second.mbps -= m.mbps;
          if (lease->second.mbps <= 0.0) {
            res.leases.erase(lease);
            res.reserved_cache -= before;
          } else {
            res.reserved_cache -= m.mbps;
          }
        }
        return;  // releases are not acknowledged
      }
      default:
        return;
    }
  });
}

void FabricArbiter::Reply(PbrId dst, const ArbiterMsg& msg) {
  dispatcher_->adapter()->SendMessage(dst, Channel::kControl, Opcode::kCreditGrant,
                                      MakeTag(kSvcArbiter, msg.request_id),
                                      config_.ctrl_msg_bytes,
                                      std::make_shared<ArbiterMsg>(msg));
}

void ArbiterClientStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "requests", [this] { return requests; });
  group.AddCounterFn(prefix + "replies", [this] { return replies; });
  group.AddCounterFn(prefix + "timeouts", [this] { return timeouts; });
}

ArbiterClient::ArbiterClient(Engine* engine, const ArbiterConfig& config,
                             MessageDispatcher* dispatcher, PbrId arbiter_node)
    : engine_(engine), config_(config), dispatcher_(dispatcher), arbiter_node_(arbiter_node) {
  dispatcher_->RegisterService(kSvcArbiter,
                               [this](const FabricMessage& msg) { HandleMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(),
                         "core/arbiter/client/" + dispatcher_->adapter()->name());
  stats_.BindTo(metrics_);
}

void ArbiterClient::Send(ArbiterMsg msg) {
  dispatcher_->adapter()->SendMessage(arbiter_node_, Channel::kControl, Opcode::kCreditQuery,
                                      MakeTag(kSvcArbiter, msg.request_id),
                                      config_.ctrl_msg_bytes,
                                      std::make_shared<ArbiterMsg>(msg));
}

// Registers the callback and arms the request deadline. If no reply lands
// before it fires, the callback runs with 0 granted — the same shape as an
// arbiter rejection, which callers already handle with backoff/retry.
void ArbiterClient::Track(std::uint64_t request_id, std::function<void(double)> cb) {
  ++stats_.requests;
  Pending pending;
  pending.cb = std::move(cb);
  if (config_.request_timeout > 0) {
    pending.deadline = engine_->Schedule(config_.request_timeout, [this, request_id] {
      auto it = callbacks_.find(request_id);
      if (it == callbacks_.end()) {
        return;
      }
      auto cb2 = std::move(it->second.cb);
      callbacks_.erase(it);
      ++stats_.timeouts;
      if (cb2) {
        cb2(0.0);
      }
    });
  }
  callbacks_[request_id] = std::move(pending);
}

void ArbiterClient::Reserve(PbrId resource, double mbps, std::function<void(double)> cb) {
  ArbiterMsg msg;
  msg.kind = ArbiterMsg::Kind::kReserve;
  msg.request_id = next_request_++;
  msg.resource = resource;
  msg.mbps = mbps;
  Track(msg.request_id, std::move(cb));
  Send(msg);
}

void ArbiterClient::Release(PbrId resource, double mbps) {
  ArbiterMsg msg;
  msg.kind = ArbiterMsg::Kind::kRelease;
  msg.request_id = next_request_++;
  msg.resource = resource;
  msg.mbps = mbps;
  Send(msg);
}

void ArbiterClient::Query(PbrId resource, std::function<void(double)> cb) {
  ArbiterMsg msg;
  msg.kind = ArbiterMsg::Kind::kQuery;
  msg.request_id = next_request_++;
  msg.resource = resource;
  Track(msg.request_id, std::move(cb));
  Send(msg);
}

void ArbiterClient::HandleMessage(const FabricMessage& msg) {
  const auto resp = std::static_pointer_cast<ArbiterMsg>(msg.body);
  assert(resp != nullptr);
  auto it = callbacks_.find(resp->request_id);
  if (it == callbacks_.end()) {
    return;  // reply raced the deadline; the caller already got cb(0)
  }
  auto cb = std::move(it->second.cb);
  if (it->second.deadline != kInvalidEventId) {
    engine_->Cancel(it->second.deadline);
  }
  callbacks_.erase(it);
  ++stats_.replies;
  if (cb) {
    cb(resp->kind == ArbiterMsg::Kind::kQueryResp ? resp->available_mbps : resp->mbps);
  }
}

}  // namespace unifab
