// Sharded per-object temperature profiler for the unified heap.
//
// The heap's original epoch pass snapshotted every live object into one
// vector and handed it to the migration policy — O(n) copies and an O(n
// log n) policy sort per epoch, which does not survive millions of
// objects. This profiler shards the per-object EWMA state by object id,
// folds each shard independently (a pure multiply for untouched entries),
// and hands the policy only a bounded, deterministically merged candidate
// list: the per-shard top promote/demote candidates, merged across shards
// in (temperature, id) order. The shard count is a profiling parameter,
// fixed by configuration — it is deliberately independent of the engine's
// UNIFAB_SHARDS worker count, so fold results (and hence run digests) are
// identical for any worker pool.
//
// The epoch-temperature summary is rebuilt from scratch at every fold and
// each live entry contributes exactly one sample; empty shards contribute
// nothing (per-shard summaries merged additively would double-count the
// re-anchoring sentinel an empty shard has to emit — the bug class this
// rewrite retires).

#ifndef SRC_CORE_HEAP_PROFILER_H_
#define SRC_CORE_HEAP_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

struct ProfilerConfig {
  int shards = 8;  // fixed profiling partition; NOT the engine worker count
  // Per shard and per direction (hot/cold), at most this many candidates
  // survive a fold. Large enough that small/medium heaps behave exactly
  // like the unbounded legacy snapshot.
  std::size_t max_candidates_per_shard = 4096;
};

class ShardedTemperatureProfiler {
 public:
  struct Candidate {
    std::uint64_t id = 0;
    double temperature = 0.0;
  };

  ShardedTemperatureProfiler(const ProfilerConfig& config, double ewma_alpha);

  void OnAllocate(std::uint64_t id);
  void OnFree(std::uint64_t id);
  void OnAccess(std::uint64_t id);

  // Closes `elapsed` epochs: every entry decays through the elapsed-1 idle
  // epochs, then folds its pending access count (the activity that
  // triggered the catch-up lands in the newest epoch). Never-touched
  // entries decay like any other — an idle object cannot stay warm forever.
  // Returns the merged candidate list: hot entries (temperature >=
  // hot_threshold, hottest first) followed by cold entries (temperature <=
  // cold_threshold, coldest first), deduplicated, each shard contributing
  // at most max_candidates_per_shard per direction. Ties break on id, so
  // the list is identical across runs and worker counts.
  std::vector<Candidate> FoldEpoch(std::uint64_t elapsed, double hot_threshold,
                                   double cold_threshold);

  // Exact between folds (folding is eager); 0 for unknown ids.
  double TemperatureOf(std::uint64_t id) const;
  std::uint64_t PendingAccesses(std::uint64_t id) const;

  std::size_t entries() const;
  std::size_t ShardEntries(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].entries.size();
  }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::uint64_t folds() const { return folds_; }
  std::uint64_t hot_candidates() const { return hot_candidates_; }
  std::uint64_t cold_candidates() const { return cold_candidates_; }
  // One sample per live entry, rebuilt at the latest fold.
  const Summary& epoch_temperature() const { return epoch_temperature_; }

  // Registers the profiler's instruments under `group` with `prefix`
  // (e.g. the owning heap's group, prefix "profiler/").
  void BindMetrics(MetricGroup& group, const std::string& prefix);

 private:
  struct Entry {
    double temperature = 0.0;
    std::uint64_t pending = 0;  // accesses in the open epoch
  };

  struct Shard {
    std::unordered_map<std::uint64_t, Entry> entries;
  };

  std::size_t ShardOf(std::uint64_t id) const {
    return static_cast<std::size_t>(id % shards_.size());
  }

  ProfilerConfig config_;
  double ewma_alpha_;
  std::vector<Shard> shards_;
  std::uint64_t folds_ = 0;
  std::uint64_t hot_candidates_ = 0;   // cumulative, across folds
  std::uint64_t cold_candidates_ = 0;  // cumulative, across folds
  Summary epoch_temperature_;
};

}  // namespace unifab

#endif  // SRC_CORE_HEAP_PROFILER_H_
