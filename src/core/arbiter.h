// Central fabric arbiter over a dedicated control lane (FCC DP#4).
//
// One arbiter instance serves a fabric. Clients (hosts, FAAs, eTrans
// agents) reach it over the Channel::kControl virtual channel, which links
// serve with strict priority — the "dedicated lane" that keeps control RTT
// low even when data channels are saturated. The arbiter:
//   * tracks per-resource (destination node) bandwidth capacity;
//   * grants leases via max-min fair allocation across active flows, with
//     QoS-class weighting, per-tenant budgets, and guaranteed-class
//     preemption of best-effort leases (multi-tenant mode);
//   * exposes the programmable query/reserve/reclaim interface the paper
//     calls for, which eTrans uses to throttle bulk transfers;
//   * optionally programs switch arbitration priorities (arbiter-directed
//     flow scheduling) through the fabric manager's configuration plane.

#ifndef SRC_CORE_ARBITER_H_
#define SRC_CORE_ARBITER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/switch.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/qos.h"
#include "src/sim/stats.h"

namespace unifab {

// Wire format for arbiter control messages (rides Channel::kControl).
struct ArbiterMsg {
  enum class Kind : std::uint8_t { kQuery, kReserve, kRelease, kGrant, kQueryResp };
  Kind kind = Kind::kQuery;
  std::uint64_t request_id = 0;
  PbrId resource = kInvalidPbrId;  // destination node whose bandwidth is managed
  double mbps = 0.0;               // requested / granted / released bandwidth
  double available_mbps = 0.0;     // kQueryResp
  // Multi-tenant extension: the flow identity is (holder adapter, tenant).
  // Tenant 0 / kBestEffort are the single-tenant defaults, under which the
  // arbiter behaves exactly as before this field existed.
  std::uint32_t tenant = 0;
  QosClass qos = QosClass::kBestEffort;
};

// Per-QoS-class arbitration policy.
struct QosClassConfig {
  // Relative share of a resource's capacity when classes compete: a class's
  // entitlement is capacity * weight / (sum of weights of active classes).
  double weight = 1.0;
  // Per-tenant ceiling on granted bandwidth within this class on any one
  // resource (the "credit budget"). 0 disables the ceiling.
  double tenant_budget_mbps = 0.0;
};

struct ArbiterConfig {
  std::uint32_t ctrl_msg_bytes = 64;  // one flit
  Tick decision_latency = FromNs(40.0);
  Tick lease_duration = FromUs(100.0);  // grants expire unless renewed

  // Client-side deadline per Reserve/Query: if no reply arrives (arbiter
  // node dead, control path severed), the callback fires with 0 granted
  // instead of leaking forever. 0 disables.
  Tick request_timeout = FromUs(500.0);

  // QoS policy, indexed by QosClass. The defaults leave single-class
  // (all-best-effort) workloads on the exact legacy max-min path.
  QosClassConfig qos[kNumQosClasses] = {{8.0, 0.0}, {2.0, 0.0}, {1.0, 0.0}};
  // A guaranteed-class Reserve may evict best-effort leases when the pool
  // is fully committed (counted under core/arbiter/qos/preemptions).
  bool preempt_best_effort = true;
};

struct ArbiterStats {
  std::uint64_t queries = 0;
  std::uint64_t reservations = 0;
  std::uint64_t releases = 0;
  std::uint64_t rejections = 0;   // zero-bandwidth grants
  std::uint64_t expirations = 0;  // leases reclaimed on expiry

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// QoS-path counters, published under core/arbiter/qos/*.
struct ArbiterQosStats {
  std::uint64_t grants[kNumQosClasses] = {0, 0, 0};  // positive grants per class
  std::uint64_t preemptions = 0;    // best-effort leases evicted for guaranteed
  double preempted_mbps = 0.0;      // bandwidth reclaimed by those evictions
  std::uint64_t budget_clamps = 0;  // grants clipped by a tenant budget

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Server side. Attach to a MessageDispatcher whose adapter sits on the
// fabric (the runtime provisions a dedicated lightweight adapter).
class FabricArbiter {
 public:
  FabricArbiter(Engine* engine, const ArbiterConfig& config, MessageDispatcher* dispatcher);

  // Declares a managed resource (typically a FAM/FAA node's ingress
  // bandwidth).
  void RegisterResource(PbrId node, double capacity_mbps);

  // Lets the arbiter program switch priorities (arbiter-directed
  // scheduling). Priorities apply to kPriority-arbitration switches.
  void AttachSwitch(FabricSwitch* sw) { switches_.push_back(sw); }
  void SetFlowPriority(PbrId src, int priority);

  double CapacityOf(PbrId node) const;
  double ReservedOf(PbrId node) const;
  // Granted bandwidth currently leased to `tenant` on `node` (all classes).
  double TenantReservedOf(PbrId node, std::uint32_t tenant) const;
  const ArbiterStats& stats() const { return stats_; }
  const ArbiterQosStats& qos_stats() const { return qos_stats_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }

 private:
  // A flow is one (holder adapter, tenant) pair: a host agent reserving on
  // behalf of two tenants holds two independent leases.
  struct FlowKey {
    PbrId holder;
    std::uint32_t tenant;
    bool operator<(const FlowKey& o) const {
      return holder != o.holder ? holder < o.holder : tenant < o.tenant;
    }
    bool operator==(const FlowKey& o) const {
      return holder == o.holder && tenant == o.tenant;
    }
  };

  struct Lease {
    PbrId holder;
    std::uint32_t tenant;
    QosClass qos;
    double mbps;
    Tick expires_at;
  };

  struct Resource {
    double capacity_mbps = 0.0;
    // flow (holder, tenant) -> lease; ordered so audits and preemption
    // victim selection iterate deterministically.
    std::map<FlowKey, Lease> leases;
    // Shadow accounting maintained incrementally at every lease mutation;
    // the auditor cross-checks each against the O(n) recomputes below. All
    // granting decisions still use the recomputes so behavior is unchanged.
    double reserved_cache = 0.0;
    double class_reserved_cache[kNumQosClasses] = {0.0, 0.0, 0.0};
    std::map<std::uint32_t, double> tenant_reserved_cache;
    double Reserved() const {
      double sum = 0.0;
      for (const auto& [k, l] : leases) {
        sum += l.mbps;
      }
      return sum;
    }
    double ReservedInClass(QosClass c) const {
      double sum = 0.0;
      for (const auto& [k, l] : leases) {
        if (l.qos == c) {
          sum += l.mbps;
        }
      }
      return sum;
    }
    double ReservedByTenant(std::uint32_t tenant) const {
      double sum = 0.0;
      for (const auto& [k, l] : leases) {
        if (k.tenant == tenant) {
          sum += l.mbps;
        }
      }
      return sum;
    }
  };

  void HandleMessage(const FabricMessage& msg);
  void ExpireLeases(Resource& res);
  // Applies a signed bandwidth delta for `lease` to every shadow cache.
  void Credit(Resource& res, const Lease& lease, double delta);
  // Removes `it`'s lease from `res`, keeping the shadow caches in sync.
  void EraseLease(Resource& res, std::map<FlowKey, Lease>::iterator it);
  // Evicts best-effort leases (largest first, then key order) until `want`
  // fits in uncommitted capacity or no victims remain.
  void PreemptBestEffort(Resource& res, const FlowKey& requester, double want);
  // Weighted max-min fair share for a new/renewing request of `want` from
  // `flow` in class `qos`; clips to the tenant budget when one is set.
  double FairGrant(Resource& res, const FlowKey& flow, QosClass qos, double want);
  void Reply(PbrId dst, const ArbiterMsg& msg);

  Engine* engine_;
  ArbiterConfig config_;
  MessageDispatcher* dispatcher_;
  std::unordered_map<PbrId, Resource> resources_;
  std::vector<FabricSwitch*> switches_;
  ArbiterStats stats_;
  ArbiterQosStats qos_stats_;
  MetricGroup metrics_;
  MetricGroup qos_metrics_;
  AuditScope audit_;  // after resources_: checks read the lease maps

  friend class AuditTestPeer;
};

struct ArbiterClientStats {
  std::uint64_t requests = 0;     // Reserve + Query sends
  std::uint64_t replies = 0;      // grants/query responses delivered in time
  std::uint64_t timeouts = 0;     // requests abandoned by the deadline
  std::uint64_t late_grants = 0;  // grants that arrived after the deadline
                                  // fired cb(0) — released back immediately

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Client side: issues control-lane requests and delivers async replies.
// Every request carries a deadline (ArbiterConfig::request_timeout): if the
// arbiter or the control path dies before replying, the callback fires with
// 0 granted rather than leaking in `callbacks_` forever. A grant that
// arrives after its deadline already fired is released straight back to the
// arbiter (the caller was told 0, so nobody would ever return that lease).
class ArbiterClient {
 public:
  ArbiterClient(Engine* engine, const ArbiterConfig& config, MessageDispatcher* dispatcher,
                PbrId arbiter_node);

  // Asks for `mbps` toward `resource`; `cb` receives the granted bandwidth
  // (possibly 0). The 3-arg form reserves as tenant 0 / best-effort.
  void Reserve(PbrId resource, double mbps, std::function<void(double granted)> cb);
  void Reserve(PbrId resource, double mbps, std::uint32_t tenant, QosClass qos,
               std::function<void(double granted)> cb);

  // Returns bandwidth early (otherwise the lease expires on its own).
  void Release(PbrId resource, double mbps);
  void Release(PbrId resource, double mbps, std::uint32_t tenant, QosClass qos);

  // Reads the resource's uncommitted capacity.
  void Query(PbrId resource, std::function<void(double available)> cb);

  // Lease lifetime agreed with the arbiter; holders renew at this cadence.
  Tick lease_duration() const { return config_.lease_duration; }

  std::uint64_t outstanding() const { return callbacks_.size(); }
  const ArbiterClientStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::function<void(double)> cb;
    EventId deadline = kInvalidEventId;
  };

  void HandleMessage(const FabricMessage& msg);
  void Send(ArbiterMsg msg);
  void Track(std::uint64_t request_id, std::function<void(double)> cb);

  Engine* engine_;
  ArbiterConfig config_;
  MessageDispatcher* dispatcher_;
  PbrId arbiter_node_;
  std::uint64_t next_request_ = 1;
  std::unordered_map<std::uint64_t, Pending> callbacks_;
  ArbiterClientStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_CORE_ARBITER_H_
