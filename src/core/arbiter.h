// Central fabric arbiter over a dedicated control lane (FCC DP#4).
//
// One arbiter instance serves a fabric. Clients (hosts, FAAs, eTrans
// agents) reach it over the Channel::kControl virtual channel, which links
// serve with strict priority — the "dedicated lane" that keeps control RTT
// low even when data channels are saturated. The arbiter:
//   * tracks per-resource (destination node) bandwidth capacity;
//   * grants leases via max-min fair allocation across active flows;
//   * exposes the programmable query/reserve/reclaim interface the paper
//     calls for, which eTrans uses to throttle bulk transfers;
//   * optionally programs switch arbitration priorities (arbiter-directed
//     flow scheduling) through the fabric manager's configuration plane.

#ifndef SRC_CORE_ARBITER_H_
#define SRC_CORE_ARBITER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fabric/dispatch.h"
#include "src/fabric/switch.h"
#include "src/sim/audit.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

// Wire format for arbiter control messages (rides Channel::kControl).
struct ArbiterMsg {
  enum class Kind : std::uint8_t { kQuery, kReserve, kRelease, kGrant, kQueryResp };
  Kind kind = Kind::kQuery;
  std::uint64_t request_id = 0;
  PbrId resource = kInvalidPbrId;  // destination node whose bandwidth is managed
  double mbps = 0.0;               // requested / granted / released bandwidth
  double available_mbps = 0.0;     // kQueryResp
};

struct ArbiterConfig {
  std::uint32_t ctrl_msg_bytes = 64;  // one flit
  Tick decision_latency = FromNs(40.0);
  Tick lease_duration = FromUs(100.0);  // grants expire unless renewed

  // Client-side deadline per Reserve/Query: if no reply arrives (arbiter
  // node dead, control path severed), the callback fires with 0 granted
  // instead of leaking forever. 0 disables.
  Tick request_timeout = FromUs(500.0);
};

struct ArbiterStats {
  std::uint64_t queries = 0;
  std::uint64_t reservations = 0;
  std::uint64_t releases = 0;
  std::uint64_t rejections = 0;   // zero-bandwidth grants
  std::uint64_t expirations = 0;  // leases reclaimed on expiry

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Server side. Attach to a MessageDispatcher whose adapter sits on the
// fabric (the runtime provisions a dedicated lightweight adapter).
class FabricArbiter {
 public:
  FabricArbiter(Engine* engine, const ArbiterConfig& config, MessageDispatcher* dispatcher);

  // Declares a managed resource (typically a FAM/FAA node's ingress
  // bandwidth).
  void RegisterResource(PbrId node, double capacity_mbps);

  // Lets the arbiter program switch priorities (arbiter-directed
  // scheduling). Priorities apply to kPriority-arbitration switches.
  void AttachSwitch(FabricSwitch* sw) { switches_.push_back(sw); }
  void SetFlowPriority(PbrId src, int priority);

  double CapacityOf(PbrId node) const;
  double ReservedOf(PbrId node) const;
  const ArbiterStats& stats() const { return stats_; }
  PbrId fabric_id() const { return dispatcher_->adapter()->id(); }

 private:
  struct Lease {
    PbrId holder;
    double mbps;
    Tick expires_at;
  };

  struct Resource {
    double capacity_mbps = 0.0;
    // flow (holder) -> lease
    std::map<PbrId, Lease> leases;
    // Shadow accounting maintained incrementally at every lease mutation;
    // the auditor cross-checks it against the O(n) recompute below. All
    // granting decisions still use Reserved() so behavior is unchanged.
    double reserved_cache = 0.0;
    double Reserved() const {
      double sum = 0.0;
      for (const auto& [h, l] : leases) {
        sum += l.mbps;
      }
      return sum;
    }
  };

  void HandleMessage(const FabricMessage& msg);
  void ExpireLeases(Resource& res);
  // Max-min fair share for a new/renewing request of `want` from `holder`.
  double FairGrant(Resource& res, PbrId holder, double want);
  void Reply(PbrId dst, const ArbiterMsg& msg);

  Engine* engine_;
  ArbiterConfig config_;
  MessageDispatcher* dispatcher_;
  std::unordered_map<PbrId, Resource> resources_;
  std::vector<FabricSwitch*> switches_;
  ArbiterStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;  // after resources_: checks read the lease maps

  friend class AuditTestPeer;
};

struct ArbiterClientStats {
  std::uint64_t requests = 0;  // Reserve + Query sends
  std::uint64_t replies = 0;   // grants/query responses delivered in time
  std::uint64_t timeouts = 0;  // requests abandoned by the deadline

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

// Client side: issues control-lane requests and delivers async replies.
// Every request carries a deadline (ArbiterConfig::request_timeout): if the
// arbiter or the control path dies before replying, the callback fires with
// 0 granted rather than leaking in `callbacks_` forever.
class ArbiterClient {
 public:
  ArbiterClient(Engine* engine, const ArbiterConfig& config, MessageDispatcher* dispatcher,
                PbrId arbiter_node);

  // Asks for `mbps` toward `resource`; `cb` receives the granted bandwidth
  // (possibly 0).
  void Reserve(PbrId resource, double mbps, std::function<void(double granted)> cb);

  // Returns bandwidth early (otherwise the lease expires on its own).
  void Release(PbrId resource, double mbps);

  // Reads the resource's uncommitted capacity.
  void Query(PbrId resource, std::function<void(double available)> cb);

  // Lease lifetime agreed with the arbiter; holders renew at this cadence.
  Tick lease_duration() const { return config_.lease_duration; }

  std::uint64_t outstanding() const { return callbacks_.size(); }
  const ArbiterClientStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::function<void(double)> cb;
    EventId deadline = kInvalidEventId;
  };

  void HandleMessage(const FabricMessage& msg);
  void Send(ArbiterMsg msg);
  void Track(std::uint64_t request_id, std::function<void(double)> cb);

  Engine* engine_;
  ArbiterConfig config_;
  MessageDispatcher* dispatcher_;
  PbrId arbiter_node_;
  std::uint64_t next_request_ = 1;
  std::unordered_map<std::uint64_t, Pending> callbacks_;
  ArbiterClientStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_CORE_ARBITER_H_
