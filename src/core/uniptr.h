// UniPtr<T>: the backward-compatible smart-pointer programming interface of
// the unified heap (DP#2: "Developers use backward-compatible programming
// interfaces (like Smart Pointer) to port or build data structures").
//
// A UniPtr owns one heap object holding a T. Timed accessors (Read / Write /
// Update) drive the simulated memory hierarchy and feed the temperature
// profiler; Peek/Poke touch the shadow value without timing (for test
// assertions and debugging only).

#ifndef SRC_CORE_UNIPTR_H_
#define SRC_CORE_UNIPTR_H_

#include <cassert>
#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>

#include "src/core/heap.h"

namespace unifab {

template <typename T>
class UniPtr {
  static_assert(std::is_trivially_copyable_v<T>,
                "UniPtr requires trivially copyable payloads (they shadow raw bytes)");

 public:
  UniPtr() = default;

  // Allocates and value-initializes a T on `heap`.
  static UniPtr Make(UnifiedHeap* heap, const T& init = T{}, int tier_hint = -1) {
    UniPtr p;
    p.heap_ = heap;
    p.id_ = heap->Allocate(sizeof(T), tier_hint);
    if (p.id_ != kInvalidObject) {
      std::memcpy(heap->Shadow(p.id_).data(), &init, sizeof(T));
    }
    return p;
  }

  bool valid() const { return heap_ != nullptr && id_ != kInvalidObject; }
  ObjectId id() const { return id_; }
  UnifiedHeap* heap() const { return heap_; }

  // Timed read: `cb` receives the value when the load completes.
  void Read(std::function<void(const T&)> cb) const {
    assert(valid());
    UnifiedHeap* heap = heap_;
    const ObjectId id = id_;
    heap->Read(id, [heap, id, cb = std::move(cb)] {
      T value;
      std::memcpy(&value, heap->Shadow(id).data(), sizeof(T));
      cb(value);
    });
  }

  // Timed write of a new value.
  void Write(const T& value, std::function<void()> cb = nullptr) const {
    assert(valid());
    std::memcpy(heap_->Shadow(id_).data(), &value, sizeof(T));
    heap_->Write(id_, std::move(cb));
  }

  // Timed read-modify-write.
  void Update(std::function<void(T&)> mutate, std::function<void()> cb = nullptr) const {
    assert(valid());
    UnifiedHeap* heap = heap_;
    const ObjectId id = id_;
    heap->Read(id, [heap, id, mutate = std::move(mutate), cb = std::move(cb)] {
      T value;
      std::memcpy(&value, heap->Shadow(id).data(), sizeof(T));
      mutate(value);
      std::memcpy(heap->Shadow(id).data(), &value, sizeof(T));
      heap->Write(id, cb);
    });
  }

  // Untimed shadow peek/poke — test/debug only.
  T Peek() const {
    assert(valid());
    T value;
    std::memcpy(&value, heap_->Shadow(id_).data(), sizeof(T));
    return value;
  }
  void Poke(const T& value) const {
    assert(valid());
    std::memcpy(heap_->Shadow(id_).data(), &value, sizeof(T));
  }

  void Reset() {
    if (valid()) {
      heap_->Free(id_);
    }
    heap_ = nullptr;
    id_ = kInvalidObject;
  }

 private:
  UnifiedHeap* heap_ = nullptr;
  ObjectId id_ = kInvalidObject;
};

}  // namespace unifab

#endif  // SRC_CORE_UNIPTR_H_
