#include "src/core/sfunc.h"

#include <cassert>
#include <utility>

namespace unifab {

void SFuncStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "messages_handled", [this] { return messages_handled; });
  group.AddCounterFn(prefix + "messages_dropped", [this] { return messages_dropped; });
  group.AddCounterFn(prefix + "local_sends", [this] { return local_sends; });
  group.AddCounterFn(prefix + "remote_sends", [this] { return remote_sends; });
  group.AddSummaryFn(prefix + "mailbox_wait_us", [this] { return &mailbox_wait_us; });
}

ScalableFunctionRuntime::ScalableFunctionRuntime(Engine* engine, FaaChassis* faa,
                                                 Tick local_coordination_latency)
    : engine_(engine), faa_(faa), local_latency_(local_coordination_latency) {
  faa_->dispatcher()->RegisterService(
      kSvcScalableFunc, [this](const FabricMessage& msg) { HandleFabricMessage(msg); });
  metrics_ = MetricGroup(&engine_->metrics(), "core/sfunc/" + faa_->name());
  stats_.BindTo(metrics_);
}

FunctionId ScalableFunctionRuntime::Install(SFuncSpec spec) {
  const FunctionId id = next_fn_++;
  Function fn;
  fn.spec = std::move(spec);
  functions_.emplace(id, std::move(fn));
  return id;
}

void ScalableFunctionRuntime::HandleFabricMessage(const FabricMessage& msg) {
  const auto m = std::static_pointer_cast<SFuncMsg>(msg.body);
  if (m == nullptr) {
    ++stats_.messages_dropped;
    return;
  }
  SFuncMsg delivered = *m;
  delivered.reply_to = msg.src;
  Deliver(std::move(delivered));
}

void ScalableFunctionRuntime::Deliver(SFuncMsg msg) {
  if (faa_->failed()) {
    ++stats_.messages_dropped;
    return;
  }
  auto it = functions_.find(msg.fn);
  if (it == functions_.end() || it->second.spec.handlers.count(msg.type) == 0) {
    ++stats_.messages_dropped;
    return;
  }
  it->second.mailbox.emplace_back(std::move(msg), engine_->Now());
  PumpMailbox(it->first);
}

void ScalableFunctionRuntime::PumpMailbox(FunctionId fn) {
  auto it = functions_.find(fn);
  if (it == functions_.end()) {
    return;
  }
  Function& f = it->second;
  if (f.running || f.mailbox.empty() || faa_->failed()) {
    return;
  }
  f.running = true;
  auto [msg, arrived] = std::move(f.mailbox.front());
  f.mailbox.pop_front();
  stats_.mailbox_wait_us.Add(ToUs(engine_->Now() - arrived));

  const SFuncHandler& handler = f.spec.handlers.at(msg.type);
  faa_->accelerator()->Execute(
      handler.cost, [this, fn, msg = std::move(msg), effect = handler.effect]() mutable {
        ++stats_.messages_handled;
        if (effect) {
          SFuncContext ctx(this, fn, msg);
          effect(ctx);
        }
        auto it2 = functions_.find(fn);
        if (it2 != functions_.end()) {
          it2->second.running = false;
        }
        PumpMailbox(fn);
      });
  // If the accelerator drops the kernel (failure / full queue), the function
  // stays `running` until Recover(); messages pile up in the mailbox, which
  // is exactly what a passive failure domain looks like from outside.
}

void ScalableFunctionRuntime::ResetAfterRecovery() {
  for (auto& [fn, f] : functions_) {
    f.running = false;
    PumpMailbox(fn);
  }
}

std::size_t ScalableFunctionRuntime::MailboxDepth(FunctionId fn) const {
  auto it = functions_.find(fn);
  return it == functions_.end() ? 0 : it->second.mailbox.size();
}

void SFuncContext::SendLocal(FunctionId fn, std::uint32_t type, std::uint32_t bytes,
                             std::shared_ptr<void> body) {
  ++runtime_->stats_.local_sends;
  SFuncMsg msg;
  msg.fn = fn;
  msg.type = type;
  msg.bytes = bytes;
  msg.body = std::move(body);
  msg.reply_to = runtime_->fabric_id();
  runtime_->engine_->Schedule(runtime_->local_latency_,
                              [rt = runtime_, msg = std::move(msg)]() mutable {
                                rt->Deliver(std::move(msg));
                              });
}

void SFuncContext::SendRemote(PbrId faa, FunctionId fn, std::uint32_t type, std::uint32_t bytes,
                              std::shared_ptr<void> body) {
  ++runtime_->stats_.remote_sends;
  auto msg = std::make_shared<SFuncMsg>();
  msg->fn = fn;
  msg->type = type;
  msg->bytes = bytes;
  msg->body = std::move(body);
  runtime_->faa_->dispatcher()->Send(faa, kSvcScalableFunc, type, bytes, std::move(msg),
                                     Channel::kMem);
}

void SFuncContext::Reply(std::uint32_t type, std::uint32_t bytes, std::shared_ptr<void> body) {
  assert(msg_.reply_to != kInvalidPbrId);
  auto msg = std::make_shared<SFuncMsg>();
  msg->fn = msg_.fn;
  msg->type = type;
  msg->bytes = bytes;
  msg->body = std::move(body);
  runtime_->faa_->dispatcher()->Send(msg_.reply_to, kSvcScalableFunc, type, bytes,
                                     std::move(msg), Channel::kMem);
}

void SFuncClient::Invoke(PbrId faa, FunctionId fn, std::uint32_t type, std::uint32_t bytes,
                         std::shared_ptr<void> body) {
  auto msg = std::make_shared<SFuncMsg>();
  msg->fn = fn;
  msg->type = type;
  msg->bytes = bytes;
  msg->body = std::move(body);
  dispatcher_->Send(faa, kSvcScalableFunc, type, bytes, std::move(msg), Channel::kMem);
}

}  // namespace unifab
