#include "src/core/collect.h"

#include <algorithm>
#include <cassert>

namespace unifab {

void CollectiveStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "collectives_started", [this] { return collectives_started; });
  group.AddCounterFn(prefix + "collectives_completed", [this] { return collectives_completed; });
  group.AddCounterFn(prefix + "collectives_failed", [this] { return collectives_failed; });
  group.AddCounterFn(prefix + "steps_launched", [this] { return steps_launched; });
  group.AddCounterFn(prefix + "steps_completed", [this] { return steps_completed; });
  group.AddCounterFn(prefix + "step_retries", [this] { return step_retries; });
  group.AddCounterFn(prefix + "transfers_submitted", [this] { return transfers_submitted; });
  group.AddCounterFn(prefix + "transfer_failures", [this] { return transfer_failures; });
  group.AddCounterFn(prefix + "bytes_moved", [this] { return bytes_moved; });
  group.AddCounterFn(prefix + "reserve_denials", [this] { return reserve_denials; });
  group.AddCounterFn(prefix + "algo_ring", [this] { return algo_ring; });
  group.AddCounterFn(prefix + "algo_tree", [this] { return algo_tree; });
  group.AddCounterFn(prefix + "algo_linear", [this] { return algo_linear; });
  group.AddCounterFn(prefix + "algo_hier", [this] { return algo_hier; });
  group.AddCounterFn(prefix + "collectives_queued", [this] { return collectives_queued; });
  group.AddCounterFn(prefix + "collectives_rejected", [this] { return collectives_rejected; });
  group.AddSummaryFn(prefix + "collective_latency_us", [this] { return &collective_latency_us; });
  group.AddSummaryFn(prefix + "straggler_us", [this] { return &straggler_us; });
  group.AddSummaryFn(prefix + "admit_wait_us", [this] { return &admit_wait_us; });
}

CollectiveEngine::CollectiveEngine(Engine* engine, ETransEngine* etrans,
                                   FabricInterconnect* fabric, CollectiveConfig config)
    : engine_(engine), etrans_(etrans), fabric_(fabric), config_(config) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/collect");
  stats_.BindTo(metrics_);
  audit_ = AuditScope(&engine_->audit(), "core/collect");
  // Exactly one terminal status per collective: a second Finish (or a
  // TryFulfill that lost the race) is recorded here instead of
  // double-completing the future.
  audit_.AddCheck("terminal_exactly_once", [this]() -> std::string {
    if (double_terminals_ != 0) {
      return std::to_string(double_terminals_) +
             " collective(s) re-resolved after reaching a terminal status";
    }
    return {};
  });
  audit_.AddCheck("collective_conservation", [this]() -> std::string {
    if (terminal_ > started_) {
      return "terminal=" + std::to_string(terminal_) +
             " > started=" + std::to_string(started_);
    }
    return {};
  });
  // Every reducing step must combine exactly the bytes its transfers carried
  // in: a shortfall or surplus at step completion is data loss/duplication.
  audit_.AddCheck("reduce_byte_conservation", [this]() -> std::string {
    if (reduce_violations_ != 0) {
      return std::to_string(reduce_violations_) +
             " reducing step(s) completed with bytes-in != bytes-planned";
    }
    return {};
  });
}

void CollectiveEngine::RegisterMember(PbrId node, MigrationAgent* agent, bool shard_local) {
  members_[node] = MemberAgent{agent, shard_local};
}

MigrationAgent* CollectiveEngine::AgentFor(PbrId node) const {
  // Only shard-local agents may be driven directly (reservation callbacks,
  // ExecuteTransfer). A domain-remote member's agent is reachable solely as
  // a delegated eTrans executor, so callers see "no agent" for it and fall
  // back — deterministically, independent of how many shards are running.
  auto it = members_.find(node);
  return it == members_.end() || !it->second.shard_local ? nullptr : it->second.agent;
}

int CollectiveEngine::SpanOf(const CollectiveGroup& group) const {
  int span = 0;
  for (std::size_t i = 0; i < group.members.size(); ++i) {
    for (std::size_t j = i + 1; j < group.members.size(); ++j) {
      span = std::max(span, fabric_->HopCount(group.members[i].node, group.members[j].node));
    }
  }
  return span;
}

CollectiveFuture CollectiveEngine::Broadcast(const CollectiveGroup& group, int root,
                                             std::uint64_t bytes, CollectiveAlgorithm algo) {
  const int n = group.size();
  if (algo == CollectiveAlgorithm::kAuto) {
    algo = ChooseAlgorithm(CollectiveOp::kBroadcast, n, bytes, SpanOf(group), config_.plan);
  }
  return Run(group, BuildBroadcast(algo, n, root, bytes, config_.plan));
}

CollectiveFuture CollectiveEngine::Scatter(const CollectiveGroup& group, int root,
                                           std::uint64_t slice_bytes) {
  return Run(group, BuildScatter(group.size(), root, slice_bytes));
}

CollectiveFuture CollectiveEngine::Gather(const CollectiveGroup& group, int root,
                                          std::uint64_t slice_bytes) {
  return Run(group, BuildGather(group.size(), root, slice_bytes));
}

CollectiveFuture CollectiveEngine::Reduce(const CollectiveGroup& group, int root,
                                          std::uint64_t bytes, CollectiveAlgorithm algo) {
  const int n = group.size();
  if (algo == CollectiveAlgorithm::kAuto) {
    algo = ChooseAlgorithm(CollectiveOp::kReduce, n, bytes, SpanOf(group), config_.plan);
  }
  return Run(group, BuildReduce(algo, n, root, bytes));
}

CollectiveFuture CollectiveEngine::AllGather(const CollectiveGroup& group,
                                             std::uint64_t slice_bytes,
                                             CollectiveAlgorithm algo) {
  const int n = group.size();
  if (algo == CollectiveAlgorithm::kAuto) {
    algo = ChooseAlgorithm(CollectiveOp::kAllGather, n, slice_bytes, SpanOf(group), config_.plan);
  }
  return Run(group, BuildAllGather(algo, n, slice_bytes));
}

std::vector<int> CollectiveEngine::PodsOf(const CollectiveGroup& group) const {
  // A member's pod is its PBR domain: flat clusters put everything in
  // domain 0, pod clusters assign domain p to pod p (DESIGN.md §11).
  std::vector<int> pods;
  pods.reserve(group.members.size());
  for (const auto& m : group.members) {
    pods.push_back(static_cast<int>(DomainOf(m.node)));
  }
  return pods;
}

CollectiveFuture CollectiveEngine::AllReduce(const CollectiveGroup& group, std::uint64_t bytes,
                                             CollectiveAlgorithm algo) {
  const int n = group.size();
  const std::vector<int> pod_of = PodsOf(group);
  if (algo == CollectiveAlgorithm::kAuto) {
    algo = ChooseAllReduceAlgorithm(n, bytes, SpanOf(group), pod_of, config_.plan);
  }
  if (algo == CollectiveAlgorithm::kHierarchical) {
    return Run(group, BuildHierarchicalAllReduce(n, bytes, pod_of));
  }
  return Run(group, BuildAllReduce(algo, n, bytes));
}

CollectiveFuture CollectiveEngine::Run(const CollectiveGroup& group, CollectiveSchedule sched) {
  auto ac = std::make_shared<Active>();
  ac->id = next_id_++;
  ac->sched = std::move(sched);
  ac->group = group;
  ac->started_at = engine_->Now();
  ++started_;
  ++stats_.collectives_started;
  switch (ac->sched.algo) {
    case CollectiveAlgorithm::kRing: ++stats_.algo_ring; break;
    case CollectiveAlgorithm::kBinomialTree: ++stats_.algo_tree; break;
    case CollectiveAlgorithm::kHierarchical: ++stats_.algo_hier; break;
    default: ++stats_.algo_linear; break;
  }

  const auto& steps = ac->sched.steps;
  ac->steps.resize(steps.size());
  ac->dependents.resize(steps.size());
  ac->steps_remaining = static_cast<int>(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    ac->steps[i].remaining_deps = static_cast<int>(steps[i].deps.size());
    ac->steps[i].attempt.assign(steps[i].transfers.size(), 0);
    for (int dep : steps[i].deps) {
      ac->dependents[static_cast<std::size_t>(dep)].push_back(static_cast<int>(i));
    }
  }

  if (steps.empty()) {
    // Degenerate group (n <= 1 or zero payload): terminal immediately.
    Finish(ac, /*ok=*/true, TransferStatus::kOk);
    return ac->future;
  }
  if (config_.max_queued_collectives > 0 && AnyMemberBusy(ac->group)) {
    // Bounded admission (ROADMAP item 4): wait for the members instead of
    // racing transfers over buffers another collective is still using.
    if (static_cast<int>(admit_queue_.size()) >= config_.max_queued_collectives) {
      ++stats_.collectives_rejected;
      Finish(ac, /*ok=*/false, TransferStatus::kAborted);
      return ac->future;
    }
    ++stats_.collectives_queued;
    ac->queued_at = engine_->Now();
    admit_queue_.push_back(ac);
    return ac->future;
  }
  Admit(ac);
  return ac->future;
}

bool CollectiveEngine::AnyMemberBusy(const CollectiveGroup& group) const {
  for (const auto& m : group.members) {
    auto it = busy_.find(m.node);
    if (it != busy_.end() && it->second > 0) {
      return true;
    }
  }
  return false;
}

void CollectiveEngine::Admit(const std::shared_ptr<Active>& ac) {
  ac->admitted = true;
  for (const auto& m : ac->group.members) {
    ++busy_[m.node];
  }
  ReserveThenLaunch(ac);
}

ArbiterClient* CollectiveEngine::ReservationClient(const std::shared_ptr<Active>& ac) const {
  for (const auto& m : ac->group.members) {
    MigrationAgent* agent = AgentFor(m.node);
    if (agent != nullptr && agent->arbiter() != nullptr) {
      return agent->arbiter();
    }
  }
  return fallback_ != nullptr ? fallback_->arbiter() : nullptr;
}

void CollectiveEngine::ReserveThenLaunch(const std::shared_ptr<Active>& ac) {
  ArbiterClient* client = config_.reserve_bandwidth ? ReservationClient(ac) : nullptr;
  if (client == nullptr) {
    LaunchReady(ac);
    return;
  }
  // One aggregate reservation per distinct destination node, in sorted node
  // order for determinism. Held (and renewed) for the collective's lifetime.
  std::vector<PbrId> resources;
  for (const auto& step : ac->sched.steps) {
    for (const auto& t : step.transfers) {
      resources.push_back(ac->group.members[static_cast<std::size_t>(t.dst)].node);
    }
  }
  std::sort(resources.begin(), resources.end());
  resources.erase(std::unique(resources.begin(), resources.end()), resources.end());
  ac->reservations_outstanding = static_cast<int>(resources.size());
  for (PbrId node : resources) {
    client->Reserve(node, config_.reserve_mbps, [this, ac, client, node](double granted) {
      if (ac->finished) {
        if (granted > 0.0) {
          client->Release(node, granted);
        }
        return;
      }
      if (granted <= 0.0) {
        ++stats_.reserve_denials;  // unmanaged or saturated: proceed anyway
      } else {
        ac->leases.emplace_back(node, granted);
      }
      if (--ac->reservations_outstanding == 0) {
        if (!ac->leases.empty()) {
          ac->renew_event =
              engine_->Schedule(client->lease_duration(), [this, ac] { RenewLeases(ac); });
        }
        LaunchReady(ac);
      }
    });
  }
}

void CollectiveEngine::RenewLeases(const std::shared_ptr<Active>& ac) {
  ac->renew_event = kInvalidEventId;
  if (ac->finished) {
    return;
  }
  ArbiterClient* client = ReservationClient(ac);
  if (client == nullptr) {
    return;
  }
  for (auto& [node, mbps] : ac->leases) {
    const PbrId res = node;
    client->Reserve(res, config_.reserve_mbps, [this, ac, client, res](double granted) {
      if (ac->finished) {
        if (granted > 0.0) {
          client->Release(res, granted);
        }
        return;
      }
      for (auto& lease : ac->leases) {
        if (lease.first == res) {
          lease.second = granted;  // the arbiter re-ran max-min fair share
          break;
        }
      }
    });
  }
  ac->renew_event = engine_->Schedule(client->lease_duration(), [this, ac] { RenewLeases(ac); });
}

void CollectiveEngine::LaunchReady(const std::shared_ptr<Active>& ac) {
  for (std::size_t i = 0; i < ac->steps.size(); ++i) {
    if (!ac->steps[i].launched && ac->steps[i].remaining_deps == 0) {
      LaunchStep(ac, static_cast<int>(i));
    }
  }
}

void CollectiveEngine::LaunchStep(const std::shared_ptr<Active>& ac, int step_idx) {
  StepState& st = ac->steps[static_cast<std::size_t>(step_idx)];
  st.launched = true;
  ++stats_.steps_launched;
  const auto& step = ac->sched.steps[static_cast<std::size_t>(step_idx)];
  if (step.transfers.empty()) {
    CompleteStep(ac, step_idx);
    return;
  }
  for (std::size_t t = 0; t < step.transfers.size(); ++t) {
    SubmitTransfer(ac, step_idx, static_cast<int>(t), /*attempt=*/0);
  }
}

void CollectiveEngine::SubmitTransfer(const std::shared_ptr<Active>& ac, int step_idx, int t_idx,
                                      int attempt) {
  const StepTransfer& t =
      ac->sched.steps[static_cast<std::size_t>(step_idx)].transfers[static_cast<std::size_t>(t_idx)];
  const CollectiveMember& src = ac->group.members[static_cast<std::size_t>(t.src)];
  const CollectiveMember& dst = ac->group.members[static_cast<std::size_t>(t.dst)];

  ETransDescriptor desc;
  desc.src.push_back(Segment{src.node, src.base + t.src_offset, t.bytes});
  desc.dst.push_back(Segment{dst.node, dst.base + t.dst_offset, t.bytes});
  desc.immediate = false;
  desc.ownership = Ownership::kInitiator;
  desc.attributes.chunk_bytes = config_.transfer_chunk_bytes;
  desc.attributes.pipeline_depth = config_.transfer_pipeline_depth;
  desc.attributes.throttled = false;  // the collective holds the aggregate lease

  MigrationAgent* initiator = AgentFor(src.node);
  if (initiator == nullptr || (!initiator->CanExecute(desc) && fallback_ != nullptr)) {
    initiator = fallback_ != nullptr ? fallback_ : initiator;
  }
  assert(initiator != nullptr && "collective member has no registered agent");

  ++stats_.transfers_submitted;
  etrans_->Submit(initiator, desc)
      .Then([this, ac, step_idx, t_idx, attempt](const TransferResult& r) {
        OnTransferDone(ac, step_idx, t_idx, attempt, r);
      });
}

void CollectiveEngine::OnTransferDone(const std::shared_ptr<Active>& ac, int step_idx, int t_idx,
                                      int attempt, const TransferResult& result) {
  if (ac->finished) {
    return;
  }
  StepState& st = ac->steps[static_cast<std::size_t>(step_idx)];
  if (st.completed || st.attempt[static_cast<std::size_t>(t_idx)] != attempt) {
    return;  // stale: a newer attempt superseded this transfer
  }
  const auto& step = ac->sched.steps[static_cast<std::size_t>(step_idx)];

  if (result.ok) {
    if (st.transfers_done == 0 || result.completed_at < st.first_done) {
      st.first_done = result.completed_at;
    }
    st.last_done = std::max(st.last_done, result.completed_at);
    st.bytes_done += result.bytes;
    ac->bytes_moved += result.bytes;
    stats_.bytes_moved += result.bytes;
    if (++st.transfers_done == static_cast<int>(step.transfers.size())) {
      CompleteStep(ac, step_idx);
    }
    return;
  }

  ++stats_.transfer_failures;
  if (st.retries >= config_.max_step_retries) {
    Finish(ac, /*ok=*/false,
           result.status == TransferStatus::kOk ? TransferStatus::kAborted : result.status);
    return;
  }
  ++st.retries;
  ++stats_.step_retries;
  // Re-issue only the failed transfer under a fresh attempt tag; the step's
  // other transfers (and the rest of the DAG) keep whatever progress they
  // made. Bounded exponential backoff rides on top of eTrans's own retries.
  const int next_attempt = ++st.attempt[static_cast<std::size_t>(t_idx)];
  const int shift = std::min(st.retries - 1, 4);
  engine_->Schedule(config_.step_retry_backoff << shift, [this, ac, step_idx, t_idx,
                                                          next_attempt] {
    if (!ac->finished) {
      SubmitTransfer(ac, step_idx, t_idx, next_attempt);
    }
  });
}

void CollectiveEngine::CompleteStep(const std::shared_ptr<Active>& ac, int step_idx) {
  StepState& st = ac->steps[static_cast<std::size_t>(step_idx)];
  st.completed = true;
  ++stats_.steps_completed;
  const auto& step = ac->sched.steps[static_cast<std::size_t>(step_idx)];
  if (step.reducing) {
    std::uint64_t planned = 0;
    for (const auto& t : step.transfers) {
      planned += t.bytes;
    }
    if (st.bytes_done != planned) {
      ++reduce_violations_;
    }
  }
  if (step.transfers.size() >= 2) {
    stats_.straggler_us.Add(ToUs(st.last_done - st.first_done));
  }
  --ac->steps_remaining;
  for (int dep : ac->dependents[static_cast<std::size_t>(step_idx)]) {
    StepState& next = ac->steps[static_cast<std::size_t>(dep)];
    if (--next.remaining_deps == 0 && !next.launched) {
      LaunchStep(ac, dep);
    }
  }
  if (ac->steps_remaining == 0) {
    Finish(ac, /*ok=*/true, TransferStatus::kOk);
  }
}

void CollectiveEngine::Finish(const std::shared_ptr<Active>& ac, bool ok, TransferStatus status) {
  if (ac->finished) {
    ++double_terminals_;
    return;
  }
  ac->finished = true;
  if (ac->renew_event != kInvalidEventId) {
    engine_->Cancel(ac->renew_event);
    ac->renew_event = kInvalidEventId;
  }
  if (ac->admitted) {
    ac->admitted = false;
    for (const auto& m : ac->group.members) {
      auto it = busy_.find(m.node);
      if (it != busy_.end() && --it->second == 0) {
        busy_.erase(it);
      }
    }
    // Admit waiting collectives whose members all freed up, in FIFO order.
    for (auto it = admit_queue_.begin(); it != admit_queue_.end();) {
      if (!AnyMemberBusy((*it)->group)) {
        std::shared_ptr<Active> next = *it;
        it = admit_queue_.erase(it);
        stats_.admit_wait_us.Add(ToUs(engine_->Now() - next->queued_at));
        Admit(next);
      } else {
        ++it;
      }
    }
  }
  if (!ac->leases.empty()) {
    if (ArbiterClient* client = ReservationClient(ac)) {
      for (const auto& [node, mbps] : ac->leases) {
        if (mbps > 0.0) {
          client->Release(node, mbps);
        }
      }
    }
    ac->leases.clear();
  }
  ++terminal_;
  CollectiveResult result;
  result.ok = ok;
  result.status = status;
  result.completed_at = engine_->Now();
  result.bytes = ac->bytes_moved;
  result.algorithm = ac->sched.algo;
  result.steps = static_cast<int>(ac->sched.steps.size());
  if (ok) {
    ++stats_.collectives_completed;
    stats_.collective_latency_us.Add(ToUs(engine_->Now() - ac->started_at));
  } else {
    ++stats_.collectives_failed;
  }
  if (!ac->future.TryFulfill(result)) {
    ++double_terminals_;
  }
}

}  // namespace unifab
