// Idempotent tasks (FCC DP#3, first half).
//
// Composable infrastructures have passive failure domains: an FAA chassis
// can lose power independently of every host, taking queued and running
// work with it, and has no resources to recover itself. The FCC answer is
// the *idempotent task*: a unit of work that can be re-executed any number
// of times without violating correctness, so recovery is simply re-dispatch.
//
// The pieces here mirror the paper's proposal:
//   * a "compilation framework" stand-in, AnalyzeIdempotence(), which flags
//     specs whose outputs clobber their inputs (re-running such a region
//     reads its own results) and the runtime's snapshot transform that
//     restores idempotence by capturing inputs first;
//   * a split runtime: the host-side top half dispatches tasks, captures
//     inputs into FAA scratch via eTrans, and monitors timeouts; the
//     device-side bottom half is the accelerator execution itself;
//   * at-least-once execution with configurable recovery: re-execute just
//     the failed task (idempotent mode) or restart the whole job (the
//     baseline a non-idempotent runtime is forced into).

#ifndef SRC_CORE_ITASK_H_
#define SRC_CORE_ITASK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/etrans.h"
#include "src/core/heap.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/topo/chassis.h"

namespace unifab {

using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTask = 0;

struct TaskSpec {
  std::string name;
  std::vector<ObjectId> inputs;
  std::vector<ObjectId> outputs;
  Tick compute_cost = FromUs(10.0);
  std::vector<TaskId> deps;
  // Semantic effect applied to heap shadows when the task commits (host-side
  // bookkeeping; untimed — the timed cost is inputs + kernel + outputs).
  std::function<void()> apply;
};

struct IdempotenceReport {
  bool idempotent = true;
  std::vector<ObjectId> clobbered_inputs;  // objects both read and written
};

// The static analysis a compiler pass would run: a region that overwrites
// its own inputs is not safely re-executable.
IdempotenceReport AnalyzeIdempotence(const TaskSpec& spec);

enum class RecoveryMode {
  kReexecute,   // idempotent tasks: re-dispatch only what was lost
  kRestartAll,  // baseline: any loss restarts the entire submitted job
};

struct ITaskConfig {
  Tick attempt_timeout = FromUs(400.0);
  int max_attempts = 16;
  bool snapshot_inputs = true;  // auto-restore idempotence for clobbering specs
  RecoveryMode recovery = RecoveryMode::kReexecute;
  std::uint64_t scratch_base = 1ULL << 52;  // FAA scratch address space
};

struct ITaskStats {
  std::uint64_t submitted = 0;
  std::uint64_t attempts = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t transfer_failures = 0;  // attempts killed by a failed eTrans
  std::uint64_t reexecutions = 0;
  std::uint64_t snapshots_created = 0;
  std::uint64_t restarts = 0;        // whole-job restarts (kRestartAll)
  std::uint64_t dropped_unsafe = 0;  // non-idempotent task re-ran without snapshot
  Summary task_latency_us;           // submit -> commit per task

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class ITaskRuntime {
 public:
  ITaskRuntime(Engine* engine, UnifiedHeap* heap, ETransEngine* etrans, MigrationAgent* agent,
               const ITaskConfig& config);

  // Workers are FAA chassis; dispatch is least-loaded with failure masking.
  void AddWorker(FaaChassis* faa);

  // Submits a task; execution starts when its dependencies commit.
  TaskId Submit(TaskSpec spec);

  // Fires once every submitted task has committed.
  void OnAllComplete(std::function<void()> cb) { all_done_ = std::move(cb); }

  bool TaskDone(TaskId id) const;
  const ITaskStats& stats() const { return stats_; }
  std::size_t tasks_pending() const { return pending_count_; }

 private:
  struct Task {
    TaskId id;
    TaskSpec spec;
    std::vector<ObjectId> capture_inputs;  // snapshots when clobbering
    bool done = false;
    bool running = false;
    int attempts = 0;
    Tick submitted_at = 0;
    EventId timeout_event = kInvalidEventId;
    int worker = -1;
    std::uint64_t attempt_tag = 0;  // tag of the current (latest) attempt
  };

  void MaybeStart(TaskId id);
  void StartAttempt(TaskId id);
  void CaptureInputs(const std::shared_ptr<Task>& task, int worker,
                     std::function<void()> next);
  void RunKernel(const std::shared_ptr<Task>& task, int worker, std::uint64_t attempt_tag);
  void WriteOutputs(const std::shared_ptr<Task>& task, int worker, std::uint64_t attempt_tag);
  void Commit(const std::shared_ptr<Task>& task);
  void OnTimeout(TaskId id, std::uint64_t attempt_tag);
  // A capture/write-back transfer of attempt `attempt_tag` came back failed:
  // abandon the attempt immediately (no need to wait for the timeout) and
  // route into the configured recovery mode.
  void FailAttempt(TaskId id, std::uint64_t attempt_tag);
  void RestartEverything();
  int PickWorker();
  bool DepsDone(const Task& task) const;

  Engine* engine_;
  UnifiedHeap* heap_;
  ETransEngine* etrans_;
  MigrationAgent* agent_;
  ITaskConfig config_;
  std::vector<FaaChassis*> workers_;
  std::unordered_map<TaskId, std::shared_ptr<Task>> tasks_;
  std::vector<TaskId> submit_order_;
  std::function<void()> all_done_;
  TaskId next_id_ = 1;
  std::uint64_t attempt_counter_ = 0;
  std::size_t pending_count_ = 0;
  int rr_worker_ = 0;
  std::uint64_t scratch_bump_ = 0;
  ITaskStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_CORE_ITASK_H_
