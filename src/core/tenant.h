// Multi-tenant workload engine: drives a parsed ScenarioSpec against a
// UniFabricRuntime (ROADMAP item 4).
//
// Each tenant is an independent open-loop traffic source: arrivals are
// scheduled from a per-tenant Rng stream derived from the campaign seed
// (DeriveStream), so the same spec replays bit-identically regardless of
// worker-thread count, and adding a tenant class never perturbs another
// class's draws. Ops fan out over the runtime's primitives — eTrans
// transfers (tagged with the tenant's id + QoS class for arbiter leases),
// unified-heap reads/writes/migrations, eCollect AllReduce, and FAA
// idempotent tasks — and completion latency is recorded per class so
// per-class SLOs and isolation bounds are checkable.

#ifndef SRC_CORE_TENANT_H_
#define SRC_CORE_TENANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/heap.h"
#include "src/sim/audit.h"
#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/scenario.h"
#include "src/sim/stats.h"

namespace unifab {

class UniFabricRuntime;

// Per-class accounting. The conservation invariant (audited) is
// issued == completed + failed + in-flight, summed across classes: a lost
// or double-counted completion is a bug, not load.
struct TenantClassStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t ops[kNumTenantOps] = {0, 0, 0, 0, 0, 0};  // issued per op kind
  Summary latency_us;  // issue -> terminal, completed ops only
};

class TenantEngine {
 public:
  // `runtime` must outlive the engine. The spec must have parsed cleanly
  // (no errors) and is copied.
  TenantEngine(UniFabricRuntime* runtime, const ScenarioSpec& spec);

  TenantEngine(const TenantEngine&) = delete;
  TenantEngine& operator=(const TenantEngine&) = delete;

  // Schedules every tenant's first arrival. Arrivals stop at the spec
  // horizon; in-flight ops drain on their own afterwards.
  void Start();

  const ScenarioSpec& spec() const { return spec_; }
  const TenantClassStats& class_stats(std::size_t cls) const { return class_stats_[cls]; }
  std::size_t num_classes() const { return class_stats_.size(); }
  std::uint64_t in_flight() const { return in_flight_; }
  std::uint64_t issued() const;
  std::uint64_t completed() const;
  std::uint64_t failed() const;

 private:
  struct Tenant {
    std::uint32_t id;  // 1-based: tenant 0 is the legacy single-tenant flow
    int cls;
    int host;  // home host (round-robin)
    int fam;   // target FAM chassis (round-robin)
    Rng rng;
    ObjectId object = kInvalidObject;  // lazily allocated heap object
    std::uint32_t burst_left = 0;      // remaining ops in the current burst
  };

  void ScheduleNext(std::size_t idx);
  void Arrive(std::size_t idx);
  TenantOp PickOp(Tenant& t);
  void IssueETrans(Tenant& t);
  void IssueHeap(Tenant& t, TenantOp op);
  void IssueCollect(Tenant& t);
  void IssueFaa(Tenant& t);
  // Terminal accounting for one op issued at `issued_at` by class `cls`.
  void Complete(int cls, Tick issued_at, bool ok);
  bool EnsureObject(Tenant& t);

  UniFabricRuntime* runtime_;
  ScenarioSpec spec_;
  std::vector<Tenant> tenants_;
  std::vector<TenantClassStats> class_stats_;
  std::uint64_t in_flight_ = 0;
  MetricGroup metrics_;
  AuditScope audit_;

  friend class AuditTestPeer;
};

}  // namespace unifab

#endif  // SRC_CORE_TENANT_H_
