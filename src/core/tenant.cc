#include "src/core/tenant.h"

#include <algorithm>
#include <cassert>

#include "src/core/runtime.h"

namespace unifab {

TenantEngine::TenantEngine(UniFabricRuntime* runtime, const ScenarioSpec& spec)
    : runtime_(runtime), spec_(spec) {
  assert(spec_.errors.empty() && "scenario spec has parse errors");
  Engine& engine = runtime_->cluster()->engine();
  class_stats_.resize(spec_.classes.size());

  // One traffic source per tenant, each with its own Rng stream derived
  // from the campaign seed: draws never cross tenants, so scenario edits
  // and worker-thread counts cannot reshuffle another tenant's workload.
  const int num_hosts = runtime_->cluster()->num_hosts();
  const int num_fams = runtime_->cluster()->num_fams();
  std::uint32_t next_id = 1;  // tenant 0 stays the legacy single-tenant flow
  for (std::size_t c = 0; c < spec_.classes.size(); ++c) {
    for (std::uint32_t i = 0; i < spec_.classes[c].tenants; ++i) {
      Tenant t{next_id,
               static_cast<int>(c),
               static_cast<int>(next_id % static_cast<std::uint32_t>(std::max(1, num_hosts))),
               static_cast<int>(next_id % static_cast<std::uint32_t>(std::max(1, num_fams))),
               Rng(DeriveStream(spec_.seed, next_id)),
               kInvalidObject,
               0};
      tenants_.push_back(std::move(t));
      ++next_id;
    }
  }

  metrics_ = MetricGroup(&engine.metrics(), "core/tenant");
  for (std::size_t c = 0; c < class_stats_.size(); ++c) {
    const std::string prefix = spec_.classes[c].name + "/";
    metrics_.AddCounterFn(prefix + "issued", [this, c] { return class_stats_[c].issued; });
    metrics_.AddCounterFn(prefix + "completed",
                          [this, c] { return class_stats_[c].completed; });
    metrics_.AddCounterFn(prefix + "failed", [this, c] { return class_stats_[c].failed; });
    metrics_.AddSummaryFn(prefix + "latency_us",
                          [this, c] { return &class_stats_[c].latency_us; });
  }

  audit_ = AuditScope(&engine.audit(), "core/tenant");
  // No lost or double-counted tenant completions: every issued op is
  // exactly one of completed, failed, or still in flight — including
  // across link epochs, retries, and fault recovery.
  audit_.AddCheck("completions_conserved", [this]() -> std::string {
    std::uint64_t issue_sum = 0;
    std::uint64_t terminal_sum = 0;
    for (const auto& s : class_stats_) {
      issue_sum += s.issued;
      terminal_sum += s.completed + s.failed;
    }
    if (issue_sum != terminal_sum + in_flight_) {
      return "issued " + std::to_string(issue_sum) + " != completed+failed " +
             std::to_string(terminal_sum) + " + in_flight " + std::to_string(in_flight_);
    }
    return {};
  });
}

std::uint64_t TenantEngine::issued() const {
  std::uint64_t sum = 0;
  for (const auto& s : class_stats_) {
    sum += s.issued;
  }
  return sum;
}

std::uint64_t TenantEngine::completed() const {
  std::uint64_t sum = 0;
  for (const auto& s : class_stats_) {
    sum += s.completed;
  }
  return sum;
}

std::uint64_t TenantEngine::failed() const {
  std::uint64_t sum = 0;
  for (const auto& s : class_stats_) {
    sum += s.failed;
  }
  return sum;
}

void TenantEngine::Start() {
  Engine& engine = runtime_->cluster()->engine();
  const Tick horizon = FromUs(spec_.horizon_us);
  for (std::size_t idx = 0; idx < tenants_.size(); ++idx) {
    Tenant& t = tenants_[idx];
    // Uniform phase within one mean inter-arrival keeps 100k deterministic
    // tenants from all firing on the same tick.
    const double mean_gap_us = 1e6 / spec_.classes[t.cls].rate_ops_per_s;
    const Tick first = FromUs(t.rng.NextDouble() * mean_gap_us);
    if (first <= horizon) {
      engine.Schedule(first, [this, idx] { Arrive(idx); });
    }
  }
}

void TenantEngine::ScheduleNext(std::size_t idx) {
  Engine& engine = runtime_->cluster()->engine();
  Tenant& t = tenants_[idx];
  const TenantClassSpec& cls = spec_.classes[t.cls];
  const double mean_gap_us = 1e6 / cls.rate_ops_per_s;
  Tick gap = 0;
  switch (cls.arrival) {
    case ArrivalKind::kPoisson:
      gap = FromUs(t.rng.NextExponential(mean_gap_us));
      break;
    case ArrivalKind::kDeterministic:
      gap = FromUs(mean_gap_us);
      break;
    case ArrivalKind::kBursty:
      // `burst` near-back-to-back ops, then an idle period sized so the
      // mean rate still matches the class rate.
      if (t.burst_left > 0) {
        --t.burst_left;
        gap = FromNs(100.0);
      } else {
        t.burst_left = cls.burst - 1;
        gap = FromUs(t.rng.NextExponential(mean_gap_us * static_cast<double>(cls.burst)));
      }
      break;
  }
  if (engine.Now() + gap <= FromUs(spec_.horizon_us)) {
    engine.Schedule(gap, [this, idx] { Arrive(idx); });
  }
}

TenantOp TenantEngine::PickOp(Tenant& t) {
  const auto& mix = spec_.classes[t.cls].mix;
  double total = 0.0;
  for (double w : mix) {
    total += w;
  }
  double u = t.rng.NextDouble() * total;
  for (int i = 0; i < kNumTenantOps; ++i) {
    u -= mix[i];
    if (u < 0.0) {
      return static_cast<TenantOp>(i);
    }
  }
  return TenantOp::kETrans;  // rounding fell off the end; weight 0 ops excluded above
}

void TenantEngine::Arrive(std::size_t idx) {
  Tenant& t = tenants_[idx];
  const TenantOp op = PickOp(t);
  TenantClassStats& s = class_stats_[static_cast<std::size_t>(t.cls)];
  ++s.issued;
  ++s.ops[static_cast<int>(op)];
  ++in_flight_;
  switch (op) {
    case TenantOp::kETrans:
      IssueETrans(t);
      break;
    case TenantOp::kHeapRead:
    case TenantOp::kHeapWrite:
    case TenantOp::kHeapMigrate:
      IssueHeap(t, op);
      break;
    case TenantOp::kCollect:
      IssueCollect(t);
      break;
    case TenantOp::kFaa:
      IssueFaa(t);
      break;
  }
  ScheduleNext(idx);
}

void TenantEngine::Complete(int cls, Tick issued_at, bool ok) {
  Engine& engine = runtime_->cluster()->engine();
  TenantClassStats& s = class_stats_[static_cast<std::size_t>(cls)];
  assert(in_flight_ > 0);
  --in_flight_;
  if (ok) {
    ++s.completed;
    s.latency_us.Add(ToUs(engine.Now() - issued_at));
  } else {
    ++s.failed;
  }
}

void TenantEngine::IssueETrans(Tenant& t) {
  Cluster* cluster = runtime_->cluster();
  const TenantClassSpec& cls = spec_.classes[t.cls];
  if (cluster->num_fams() == 0) {
    Complete(t.cls, cluster->engine().Now(), true);  // degenerate topology no-op
    return;
  }
  ETransDescriptor d;
  const std::uint64_t slot = (static_cast<std::uint64_t>(t.id) % 4096) << 16;
  d.src = {Segment{cluster->host(t.host)->id(), slot, cls.bytes}};
  d.dst = {Segment{cluster->fam(t.fam)->id(), slot, cls.bytes}};
  d.attributes.request_mbps = cls.request_mbps;
  d.attributes.tenant = t.id;
  d.attributes.qos = cls.qos;
  const Tick t0 = cluster->engine().Now();
  const int cls_idx = t.cls;
  TransferFuture f = runtime_->etrans()->Submit(runtime_->host_agent(t.host), d);
  f.Then([this, cls_idx, t0](const TransferResult& r) { Complete(cls_idx, t0, r.ok); });
}

bool TenantEngine::EnsureObject(Tenant& t) {
  if (t.object != kInvalidObject) {
    return true;
  }
  const TenantClassSpec& cls = spec_.classes[t.cls];
  // Objects shadow real host memory, so cap them: heap ops measure access
  // latency and migration, not bulk footprint (that is what eTrans is for).
  const auto size =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(cls.bytes, 1ULL << 16));
  t.object = runtime_->heap(t.host)->Allocate(size, /*tier_hint=*/0);
  return t.object != kInvalidObject;
}

void TenantEngine::IssueHeap(Tenant& t, TenantOp op) {
  Engine& engine = runtime_->cluster()->engine();
  const Tick t0 = engine.Now();
  const int cls_idx = t.cls;
  if (!EnsureObject(t)) {
    Complete(cls_idx, t0, false);  // host tier exhausted
    return;
  }
  UnifiedHeap* heap = runtime_->heap(t.host);
  auto done = [this, cls_idx, t0] { Complete(cls_idx, t0, true); };
  if (op == TenantOp::kHeapRead) {
    heap->Read(t.object, std::move(done));
    return;
  }
  if (op == TenantOp::kHeapWrite) {
    heap->Write(t.object, std::move(done));
    return;
  }
  // Migrate: bounce between host DRAM (tier 0) and the tenant's FAM tier.
  if (runtime_->cluster()->num_fams() == 0) {
    heap->Read(t.object, std::move(done));
    return;
  }
  const int dst_tier = heap->TierOf(t.object) == 0 ? 1 + t.fam : 0;
  const MigrateResult r =
      heap->Migrate(t.object, dst_tier, [this, cls_idx, t0](bool ok) { Complete(cls_idx, t0, ok); });
  if (r != MigrateResult::kStarted) {
    // No async completion coming: busy/same-tier are benign no-ops, a
    // missing object or full tier is a failure.
    Complete(cls_idx, t0, r == MigrateResult::kBusy || r == MigrateResult::kSameTier);
  }
}

void TenantEngine::IssueCollect(Tenant& t) {
  Cluster* cluster = runtime_->cluster();
  const TenantClassSpec& cls = spec_.classes[t.cls];
  const Tick t0 = cluster->engine().Now();
  const int cls_idx = t.cls;
  // Members must live on fabric-servable memory: FAAs serve pushed slices
  // and FAMs serve fabric writes, but a host adapter only initiates — a
  // host-member group's exchanges can never land and the collective
  // retries itself to an abort.
  const bool use_faas = cluster->num_faas() >= 2;
  const int members = std::min(use_faas ? cluster->num_faas() : cluster->num_fams(), 4);
  if (members < 2 || runtime_->collect() == nullptr) {
    Complete(cls_idx, t0, true);  // degenerate group: nothing to reduce
    return;
  }
  CollectiveGroup group;
  const std::uint64_t base = (static_cast<std::uint64_t>(t.id) % 4096) << 16;
  for (int i = 0; i < members; ++i) {
    group.members.push_back(CollectiveMember{
        use_faas ? cluster->faa(i)->id() : cluster->fam(i)->id(), base});
  }
  CollectiveFuture f = runtime_->collect()->AllReduce(group, cls.bytes);
  f.Then([this, cls_idx, t0](const CollectiveResult& r) { Complete(cls_idx, t0, r.ok); });
}

void TenantEngine::IssueFaa(Tenant& t) {
  Cluster* cluster = runtime_->cluster();
  const Tick t0 = cluster->engine().Now();
  const int cls_idx = t.cls;
  if (runtime_->itasks() == nullptr || cluster->num_faas() == 0) {
    Complete(cls_idx, t0, true);  // no FAAs provisioned: no-op
    return;
  }
  TaskSpec spec;
  spec.name = "tenant" + std::to_string(t.id);
  spec.compute_cost = FromUs(5.0);
  // `apply` runs exactly once, at commit — the idempotent-task engine's
  // completion hook (re-executed attempts commit once).
  spec.apply = [this, cls_idx, t0] { Complete(cls_idx, t0, true); };
  runtime_->itasks()->Submit(std::move(spec));
}

}  // namespace unifab
