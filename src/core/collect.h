// eCollect: topology-aware collective data movement over eTrans (the
// multi-party face of FCC DP#1's "data movement as a managed service").
//
// Callers name a group of members (FAAs, FAM chassis, hosts — anything with
// a registered migration agent and a buffer base address) and an operation;
// the engine measures the group's switch-hop span through the fabric
// registry, picks ring vs. binomial-tree per the collect_algo cost model,
// reserves aggregate bandwidth toward every destination through the
// FabricArbiter before launching, then drives the schedule's step DAG as
// pipelined eTrans transfers. Member-to-member traffic runs on the members'
// own uplinks (eTrans push protocol), which is what makes ring schedules
// actually bandwidth-optimal instead of serializing on one host adapter.
//
// Fault semantics: each step transfer is idempotent (fixed source/target
// ranges), so a failed transfer — after eTrans itself exhausted its
// per-transfer retries — is re-issued alone under a fresh attempt tag while
// the rest of the DAG keeps moving. A collective reaches exactly one
// terminal status (audited), kOk unless a step exhausts its retry budget.

#ifndef SRC_CORE_COLLECT_H_
#define SRC_CORE_COLLECT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/collect_algo.h"
#include "src/core/etrans.h"
#include "src/core/future.h"
#include "src/fabric/interconnect.h"

namespace unifab {

// One participant: a fabric node plus the base address of its collective
// buffer in that node's memory.
struct CollectiveMember {
  PbrId node = kInvalidPbrId;
  std::uint64_t base = 0;
};

struct CollectiveGroup {
  std::vector<CollectiveMember> members;

  int size() const { return static_cast<int>(members.size()); }
};

// Terminal payload of a CollectiveFuture. Reuses TransferStatus: a
// collective aborts only when a step exhausted its retry budget.
struct CollectiveResult {
  bool ok = true;
  TransferStatus status = TransferStatus::kOk;
  Tick completed_at = 0;
  std::uint64_t bytes = 0;  // total wire bytes the schedule moved
  CollectiveAlgorithm algorithm = CollectiveAlgorithm::kLinear;
  int steps = 0;
};

using CollectiveFuture = DistFuture<CollectiveResult>;

struct CollectiveConfig {
  CollectivePlanConfig plan;

  // eTrans attributes for each step transfer. Transfers run unthrottled:
  // the collective holds the aggregate arbiter lease itself instead of
  // having every step re-negotiate per-transfer leases.
  std::uint32_t transfer_chunk_bytes = 4096;
  int transfer_pipeline_depth = 4;

  // Aggregate bandwidth reserved toward every distinct destination node of
  // the schedule before launch (released at completion, renewed at the
  // lease cadence while running). Denied reservations are counted but do
  // not block the collective — progress beats precision under contention.
  bool reserve_bandwidth = true;
  double reserve_mbps = 2000.0;

  // Step-level retry budget on top of eTrans's own per-transfer retries:
  // only the failed transfer is re-issued, under a fresh attempt tag.
  int max_step_retries = 6;
  Tick step_retry_backoff = FromUs(50.0);

  // Bounded admission: a collective arriving while any of its members is
  // busy in an admitted collective waits in a FIFO queue of at most this
  // many entries (admitted when all members free up); beyond that it is
  // rejected with kAborted instead of racing transfers on busy members.
  // 0 disables admission control (the legacy launch-immediately behavior).
  int max_queued_collectives = 8;
};

struct CollectiveStats {
  std::uint64_t collectives_started = 0;
  std::uint64_t collectives_completed = 0;
  std::uint64_t collectives_failed = 0;
  std::uint64_t steps_launched = 0;
  std::uint64_t steps_completed = 0;
  std::uint64_t step_retries = 0;
  std::uint64_t transfers_submitted = 0;
  std::uint64_t transfer_failures = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t reserve_denials = 0;
  std::uint64_t algo_ring = 0;    // schedules launched per chosen algorithm
  std::uint64_t algo_tree = 0;
  std::uint64_t algo_linear = 0;
  std::uint64_t algo_hier = 0;
  std::uint64_t collectives_queued = 0;    // held for busy members, then admitted
  std::uint64_t collectives_rejected = 0;  // admission queue overflow -> kAborted
  Summary collective_latency_us;
  Summary straggler_us;  // last-minus-first transfer completion per step
  Summary admit_wait_us;  // time queued collectives waited for admission

  void BindTo(MetricGroup& group, const std::string& prefix = "") const;
};

class CollectiveEngine {
 public:
  CollectiveEngine(Engine* engine, ETransEngine* etrans, FabricInterconnect* fabric,
                   CollectiveConfig config = {});

  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  // Maps a member node to the migration agent that initiates its outbound
  // transfers (the runtime wires every host/FAM/FAA agent here).
  // `shard_local` marks agents whose control adapter shares this engine's
  // fabric domain (hosts, FAAs). Agents homed in another domain — FAM
  // controllers, which own their own DES shard when sharding is on — are
  // never called into directly: their arbiter callbacks would fire on the
  // remote shard, and a direct ExecuteTransfer would mutate remote adapter
  // state mid-window. Such members initiate through the fallback agent and
  // participate in data movement as delegated eTrans executors only.
  void RegisterMember(PbrId node, MigrationAgent* agent, bool shard_local = true);

  // Used when a member's own agent cannot execute a step transfer (e.g. a
  // FAM controller pushing to a remote node): typically a host agent.
  void SetFallbackAgent(MigrationAgent* agent) { fallback_ = agent; }

  // --- The six collective operations -------------------------------------
  // `bytes` follows the collect_algo convention: the full per-member buffer
  // for Broadcast/Reduce/AllReduce, the per-member slice for the rest.

  CollectiveFuture Broadcast(const CollectiveGroup& group, int root, std::uint64_t bytes,
                             CollectiveAlgorithm algo = CollectiveAlgorithm::kAuto);
  CollectiveFuture Scatter(const CollectiveGroup& group, int root, std::uint64_t slice_bytes);
  CollectiveFuture Gather(const CollectiveGroup& group, int root, std::uint64_t slice_bytes);
  CollectiveFuture Reduce(const CollectiveGroup& group, int root, std::uint64_t bytes,
                          CollectiveAlgorithm algo = CollectiveAlgorithm::kAuto);
  CollectiveFuture AllGather(const CollectiveGroup& group, std::uint64_t slice_bytes,
                             CollectiveAlgorithm algo = CollectiveAlgorithm::kAuto);
  CollectiveFuture AllReduce(const CollectiveGroup& group, std::uint64_t bytes,
                             CollectiveAlgorithm algo = CollectiveAlgorithm::kAuto);

  // Widest member pair in switch-graph edges (2 == same switch); the
  // topology signal ChooseAlgorithm keys on.
  int SpanOf(const CollectiveGroup& group) const;

  const CollectiveStats& stats() const { return stats_; }
  const CollectiveConfig& config() const { return config_; }

 private:
  struct StepState {
    int remaining_deps = 0;
    int transfers_done = 0;
    std::uint64_t bytes_done = 0;
    Tick first_done = 0;
    Tick last_done = 0;
    int retries = 0;
    bool launched = false;
    bool completed = false;
    std::vector<int> attempt;  // per-transfer attempt tag (stale-result guard)
  };

  struct Active {
    std::uint64_t id = 0;
    CollectiveSchedule sched;
    CollectiveGroup group;
    CollectiveFuture future;
    Tick started_at = 0;
    std::vector<StepState> steps;
    std::vector<std::vector<int>> dependents;  // step -> steps it unblocks
    int steps_remaining = 0;
    std::uint64_t bytes_moved = 0;
    bool finished = false;
    // Aggregate bandwidth leases: (resource node, granted mbps).
    std::vector<std::pair<PbrId, double>> leases;
    int reservations_outstanding = 0;
    EventId renew_event = kInvalidEventId;
    bool admitted = false;  // holds busy marks on its members until Finish
    Tick queued_at = 0;
  };

  CollectiveFuture Run(const CollectiveGroup& group, CollectiveSchedule sched);
  void Admit(const std::shared_ptr<Active>& ac);
  bool AnyMemberBusy(const CollectiveGroup& group) const;
  std::vector<int> PodsOf(const CollectiveGroup& group) const;
  void ReserveThenLaunch(const std::shared_ptr<Active>& ac);
  void RenewLeases(const std::shared_ptr<Active>& ac);
  void LaunchReady(const std::shared_ptr<Active>& ac);
  void LaunchStep(const std::shared_ptr<Active>& ac, int step_idx);
  void SubmitTransfer(const std::shared_ptr<Active>& ac, int step_idx, int t_idx, int attempt);
  void OnTransferDone(const std::shared_ptr<Active>& ac, int step_idx, int t_idx, int attempt,
                      const TransferResult& result);
  void CompleteStep(const std::shared_ptr<Active>& ac, int step_idx);
  void Finish(const std::shared_ptr<Active>& ac, bool ok, TransferStatus status);
  MigrationAgent* AgentFor(PbrId node) const;
  ArbiterClient* ReservationClient(const std::shared_ptr<Active>& ac) const;

  Engine* engine_;
  ETransEngine* etrans_;
  FabricInterconnect* fabric_;
  CollectiveConfig config_;
  struct MemberAgent {
    MigrationAgent* agent = nullptr;
    bool shard_local = true;
  };
  std::unordered_map<PbrId, MemberAgent> members_;
  MigrationAgent* fallback_ = nullptr;
  std::uint64_t next_id_ = 1;
  // Admission control: how many admitted unfinished collectives each node
  // participates in, plus the FIFO of collectives waiting for their members.
  std::unordered_map<PbrId, int> busy_;
  std::deque<std::shared_ptr<Active>> admit_queue_;
  // Audit counters: exactly-one terminal status per collective, and
  // bytes-in == bytes-out for every reducing step.
  std::uint64_t started_ = 0;
  std::uint64_t terminal_ = 0;
  std::uint64_t double_terminals_ = 0;
  std::uint64_t reduce_violations_ = 0;
  CollectiveStats stats_;
  MetricGroup metrics_;
  AuditScope audit_;

  friend class AuditTestPeer;
};

}  // namespace unifab

#endif  // SRC_CORE_COLLECT_H_
