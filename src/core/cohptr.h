// CohPtr<T>: coherent smart pointer over the CXL.cache-style coherent
// window (the hardware-coherence sibling of UniPtr<T>).
//
// A CohPtr owns one object in a CoherentWindow. Its timed accessors ride
// the directory protocol through a host's CoherentPort: reads touch every
// coherence block the object spans (hits are port-cache hits once the
// blocks are resident; invalidations by remote writers force re-fetches),
// writes acquire the covered blocks exclusively. Completions carry an `ok`
// flag — under partial failure a transaction can fail terminally, in which
// case the host-side shadow is left untouched, so a failed write is never
// observable.
//
// Peek/Poke touch the shadow without timing (test/debug only), mirroring
// UniPtr.

#ifndef SRC_CORE_COHPTR_H_
#define SRC_CORE_COHPTR_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/mem/coherent.h"

namespace unifab {

template <typename T>
class CohPtr {
  static_assert(std::is_trivially_copyable_v<T>,
                "CohPtr requires trivially copyable payloads (they shadow raw bytes)");

 public:
  CohPtr() = default;

  // Allocates and initializes a T on `window`.
  static CohPtr Make(CoherentWindow* window, const T& init = T{}) {
    CohPtr p;
    p.window_ = window;
    p.addr_ = window->Allocate(sizeof(T));
    std::memcpy(window->Shadow(p.addr_), &init, sizeof(T));
    return p;
  }

  bool valid() const { return window_ != nullptr; }
  std::uint64_t addr() const { return addr_; }
  CoherentWindow* window() const { return window_; }

  // Number of coherence blocks the object spans.
  std::uint32_t blocks() const {
    const std::uint32_t bb = window_->block_bytes();
    return static_cast<std::uint32_t>((sizeof(T) + bb - 1) / bb);
  }

  // Timed read of the whole object through `port`. `cb` receives the value
  // and ok=true on success; on a terminal protocol failure it receives the
  // last committed shadow value and ok=false.
  void Read(CoherentPort* port, std::function<void(const T&, bool)> cb) const {
    assert(valid());
    CoherentWindow* w = window_;
    const std::uint64_t a = addr_;
    const std::uint64_t bb = w->block_bytes();
    const std::uint32_t n = blocks();
    auto cbp = std::make_shared<std::function<void(const T&, bool)>>(std::move(cb));
    auto step = std::make_shared<std::function<void(std::uint32_t)>>();
    auto finish = [w, a, cbp, step](bool ok) {
      T value;
      std::memcpy(&value, w->Shadow(a), sizeof(T));
      auto done = std::move(*cbp);
      *step = nullptr;  // break the self-reference cycle
      if (done) {
        done(value, ok);
      }
    };
    *step = [port, a, bb, n, step, finish](std::uint32_t i) {
      if (i >= n) {
        finish(true);
        return;
      }
      port->Read(a + i * bb, std::function<void(bool)>([step, finish, i](bool ok) {
                   if (!ok) {
                     finish(false);
                     return;
                   }
                   (*step)(i + 1);
                 }));
    };
    (*step)(0);
  }

  // Timed write of a new value (acquires every covered block exclusively).
  void Write(CoherentPort* port, const T& value, std::function<void(bool)> cb = nullptr) const {
    Store(port, 0, sizeof(T), &value, std::move(cb));
  }

  // Timed partial store of `len` bytes at byte `offset` within the object:
  // only the covered coherence blocks are acquired, so small in-place
  // updates of a large object invalidate a single block at the sharers.
  void Store(CoherentPort* port, std::uint64_t offset, std::uint64_t len, const void* src,
             std::function<void(bool)> cb = nullptr) const {
    assert(valid());
    assert(offset + len <= sizeof(T));
    CoherentWindow* w = window_;
    const std::uint64_t a = addr_;
    const std::uint64_t bb = w->block_bytes();
    const std::uint32_t first = static_cast<std::uint32_t>(offset / bb);
    const std::uint32_t last = static_cast<std::uint32_t>((offset + len - 1) / bb);
    auto bytes = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<const std::uint8_t*>(src), static_cast<const std::uint8_t*>(src) + len);
    auto cbp = std::make_shared<std::function<void(bool)>>(std::move(cb));
    auto step = std::make_shared<std::function<void(std::uint32_t)>>();
    auto finish = [w, a, offset, bytes, cbp, step](bool ok) {
      if (ok) {
        // Commit the shadow only once every covered block is held in M: a
        // failed write must never become visible.
        std::memcpy(w->Shadow(a + offset), bytes->data(), bytes->size());
      }
      auto done = std::move(*cbp);
      *step = nullptr;
      if (done) {
        done(ok);
      }
    };
    *step = [port, a, bb, last, step, finish](std::uint32_t i) {
      if (i > last) {
        finish(true);
        return;
      }
      port->Write(a + i * bb, std::function<void(bool)>([step, finish, i](bool ok) {
                    if (!ok) {
                      finish(false);
                      return;
                    }
                    (*step)(i + 1);
                  }));
    };
    (*step)(first);
  }

  // Timed read-modify-write.
  void Update(CoherentPort* port, std::function<void(T&)> mutate,
              std::function<void(bool)> cb = nullptr) const {
    assert(valid());
    CohPtr self = *this;
    Read(port, [self, port, mutate = std::move(mutate), cb = std::move(cb)](const T& v,
                                                                            bool ok) mutable {
      if (!ok) {
        if (cb) {
          cb(false);
        }
        return;
      }
      T value = v;
      mutate(value);
      self.Write(port, value, std::move(cb));
    });
  }

  // Untimed shadow peek/poke — test/debug only.
  T Peek() const {
    assert(valid());
    T value;
    std::memcpy(&value, window_->Shadow(addr_), sizeof(T));
    return value;
  }
  void Poke(const T& value) const {
    assert(valid());
    std::memcpy(window_->Shadow(addr_), &value, sizeof(T));
  }

 private:
  CoherentWindow* window_ = nullptr;
  std::uint64_t addr_ = 0;
};

}  // namespace unifab

#endif  // SRC_CORE_COHPTR_H_
