#include "src/core/itask.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace unifab {

IdempotenceReport AnalyzeIdempotence(const TaskSpec& spec) {
  IdempotenceReport report;
  std::unordered_set<ObjectId> outs(spec.outputs.begin(), spec.outputs.end());
  for (ObjectId in : spec.inputs) {
    if (outs.count(in) != 0) {
      report.idempotent = false;
      report.clobbered_inputs.push_back(in);
    }
  }
  return report;
}

void ITaskStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "submitted", [this] { return submitted; });
  group.AddCounterFn(prefix + "attempts", [this] { return attempts; });
  group.AddCounterFn(prefix + "completed", [this] { return completed; });
  group.AddCounterFn(prefix + "timeouts", [this] { return timeouts; });
  group.AddCounterFn(prefix + "transfer_failures", [this] { return transfer_failures; });
  group.AddCounterFn(prefix + "reexecutions", [this] { return reexecutions; });
  group.AddCounterFn(prefix + "snapshots_created", [this] { return snapshots_created; });
  group.AddCounterFn(prefix + "restarts", [this] { return restarts; });
  group.AddCounterFn(prefix + "dropped_unsafe", [this] { return dropped_unsafe; });
  group.AddSummaryFn(prefix + "task_latency_us", [this] { return &task_latency_us; });
}

ITaskRuntime::ITaskRuntime(Engine* engine, UnifiedHeap* heap, ETransEngine* etrans,
                           MigrationAgent* agent, const ITaskConfig& config)
    : engine_(engine), heap_(heap), etrans_(etrans), agent_(agent), config_(config) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/itask");
  stats_.BindTo(metrics_);
}

void ITaskRuntime::AddWorker(FaaChassis* faa) { workers_.push_back(faa); }

TaskId ITaskRuntime::Submit(TaskSpec spec) {
  assert(!workers_.empty() && "no FAA workers registered");
  const TaskId id = next_id_++;
  auto task = std::make_shared<Task>();
  task->id = id;
  task->spec = std::move(spec);
  task->submitted_at = engine_->Now();
  task->capture_inputs = task->spec.inputs;

  // The "compilation framework": make clobbering regions idempotent by
  // snapshotting the inputs they overwrite.
  const IdempotenceReport report = AnalyzeIdempotence(task->spec);
  if (!report.idempotent && config_.snapshot_inputs) {
    for (ObjectId clobbered : report.clobbered_inputs) {
      const ObjectInfo info = heap_->Info(clobbered);
      const ObjectId snap = heap_->Allocate(info.size, info.tier);
      if (snap == kInvalidObject) {
        continue;
      }
      ++stats_.snapshots_created;
      heap_->Shadow(snap) = heap_->Shadow(clobbered);
      ETransDescriptor d;
      d.src.push_back(Segment{heap_->Tier(info.tier).caps.node, info.addr, info.size});
      const ObjectInfo snap_info = heap_->Info(snap);
      d.dst.push_back(
          Segment{heap_->Tier(snap_info.tier).caps.node, snap_info.addr, snap_info.size});
      d.ownership = Ownership::kDetached;
      etrans_->Submit(agent_, d);
      for (auto& in : task->capture_inputs) {
        if (in == clobbered) {
          in = snap;
        }
      }
    }
  }

  ++stats_.submitted;
  ++pending_count_;
  tasks_.emplace(id, task);
  submit_order_.push_back(id);
  MaybeStart(id);
  return id;
}

bool ITaskRuntime::DepsDone(const Task& task) const {
  for (TaskId dep : task.spec.deps) {
    auto it = tasks_.find(dep);
    if (it == tasks_.end() || !it->second->done) {
      return false;
    }
  }
  return true;
}

void ITaskRuntime::MaybeStart(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return;
  }
  Task& task = *it->second;
  if (task.done || task.running || !DepsDone(task)) {
    return;
  }
  StartAttempt(id);
}

int ITaskRuntime::PickWorker() {
  // Least-loaded alive worker, round-robin tie-break.
  int best = -1;
  std::size_t best_load = 0;
  const int n = static_cast<int>(workers_.size());
  for (int i = 0; i < n; ++i) {
    const int w = (rr_worker_ + i) % n;
    FaaChassis* faa = workers_[static_cast<std::size_t>(w)];
    if (faa->failed()) {
      continue;
    }
    const std::size_t load =
        faa->accelerator()->QueuedKernels() + static_cast<std::size_t>(faa->accelerator()->EnginesBusy());
    if (best < 0 || load < best_load) {
      best = w;
      best_load = load;
    }
  }
  rr_worker_ = (rr_worker_ + 1) % n;
  return best;
}

void ITaskRuntime::StartAttempt(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return;
  }
  const std::shared_ptr<Task>& task = it->second;
  if (task->attempts >= config_.max_attempts) {
    return;  // give up; pending_count_ keeps the job visibly incomplete
  }
  const int worker = PickWorker();
  if (worker < 0) {
    // Every worker is down; retry after a beat.
    engine_->Schedule(config_.attempt_timeout, [this, id] { MaybeStart(id); });
    return;
  }

  task->running = true;
  task->worker = worker;
  ++task->attempts;
  ++stats_.attempts;
  if (task->attempts > 1) {
    ++stats_.reexecutions;
    const IdempotenceReport report = AnalyzeIdempotence(task->spec);
    if (!report.idempotent && !config_.snapshot_inputs) {
      // The region reads data it already overwrote: re-execution is not
      // semantically safe. We count it; the restart-all baseline avoids it
      // by re-running the whole job instead.
      ++stats_.dropped_unsafe;
    }
  }

  const std::uint64_t attempt_tag = ++attempt_counter_;
  task->attempt_tag = attempt_tag;
  task->timeout_event = engine_->Schedule(config_.attempt_timeout, [this, id, attempt_tag] {
    OnTimeout(id, attempt_tag);
  });

  CaptureInputs(task, worker, [this, task, worker, attempt_tag] {
    RunKernel(task, worker, attempt_tag);
  });
}

void ITaskRuntime::CaptureInputs(const std::shared_ptr<Task>& task, int worker,
                                 std::function<void()> next) {
  // Ship every input object into the worker's scratch memory via eTrans
  // (host-driven top half). Empty input lists proceed immediately.
  if (task->capture_inputs.empty()) {
    engine_->Schedule(0, std::move(next));
    return;
  }
  FaaChassis* faa = workers_[static_cast<std::size_t>(worker)];
  auto remaining = std::make_shared<std::size_t>(task->capture_inputs.size());
  auto fanin = [remaining, next = std::move(next)] {
    if (--*remaining == 0) {
      next();
    }
  };
  for (ObjectId in : task->capture_inputs) {
    const ObjectInfo info = heap_->Info(in);
    if (info.id == kInvalidObject) {
      fanin();
      continue;
    }
    ETransDescriptor d;
    d.src.push_back(Segment{heap_->Tier(info.tier).caps.node, info.addr, info.size});
    d.dst.push_back(Segment{faa->id(), config_.scratch_base + (scratch_bump_ += info.size),
                            info.size});
    d.immediate = true;  // input capture is on the task's critical path
    d.ownership = Ownership::kInitiator;
    TransferFuture f = etrans_->Submit(agent_, d);
    f.Then([this, fanin, id = task->id, tag = task->attempt_tag](const TransferResult& r) {
      if (!r.ok) {
        // A lost input capture would otherwise stall the fan-in until the
        // attempt timeout; fail fast into the recovery path instead.
        FailAttempt(id, tag);
        return;
      }
      fanin();
    });
  }
}

void ITaskRuntime::RunKernel(const std::shared_ptr<Task>& task, int worker,
                             std::uint64_t attempt_tag) {
  FaaChassis* faa = workers_[static_cast<std::size_t>(worker)];
  faa->accelerator()->Execute(task->spec.compute_cost, [this, task, worker, attempt_tag] {
    WriteOutputs(task, worker, attempt_tag);
  });
  // If the accelerator fails (or dropped the kernel), no callback arrives
  // and the attempt timeout drives recovery.
}

void ITaskRuntime::WriteOutputs(const std::shared_ptr<Task>& task, int worker,
                                std::uint64_t attempt_tag) {
  if (task->done) {
    return;  // a duplicate attempt finished after commit: idempotent no-op
  }
  FaaChassis* faa = workers_[static_cast<std::size_t>(worker)];
  auto remaining = std::make_shared<std::size_t>(task->spec.outputs.size() + 1);
  auto fanin = [this, task, attempt_tag, remaining] {
    if (--*remaining != 0) {
      return;
    }
    if (task->done) {
      return;
    }
    // This attempt won; cancel its timeout and commit.
    (void)attempt_tag;
    engine_->Cancel(task->timeout_event);
    Commit(task);
  };
  for (ObjectId out : task->spec.outputs) {
    const ObjectInfo info = heap_->Info(out);
    if (info.id == kInvalidObject) {
      fanin();
      continue;
    }
    ETransDescriptor d;
    d.src.push_back(Segment{faa->id(), config_.scratch_base, info.size});
    d.dst.push_back(Segment{heap_->Tier(info.tier).caps.node, info.addr, info.size});
    d.immediate = true;
    d.ownership = Ownership::kInitiator;
    TransferFuture f = etrans_->Submit(agent_, d);
    f.Then([this, fanin, id = task->id, attempt_tag](const TransferResult& r) {
      if (!r.ok) {
        FailAttempt(id, attempt_tag);
        return;
      }
      fanin();
    });
  }
  fanin();  // the +1 guard
}

void ITaskRuntime::Commit(const std::shared_ptr<Task>& task) {
  task->done = true;
  task->running = false;
  ++stats_.completed;
  stats_.task_latency_us.Add(ToUs(engine_->Now() - task->submitted_at));
  if (task->spec.apply) {
    task->spec.apply();
  }
  --pending_count_;

  // Unblock dependents.
  for (const auto& [id, t] : tasks_) {
    if (!t->done && !t->running) {
      MaybeStart(id);
    }
  }
  if (pending_count_ == 0 && all_done_) {
    auto cb = std::move(all_done_);
    all_done_ = nullptr;
    cb();
  }
}

void ITaskRuntime::OnTimeout(TaskId id, std::uint64_t attempt_tag) {
  auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second->done || it->second->attempt_tag != attempt_tag) {
    return;  // unknown, committed, or a newer attempt already took over
  }
  ++stats_.timeouts;
  Task& task = *it->second;
  task.running = false;

  if (config_.recovery == RecoveryMode::kRestartAll) {
    RestartEverything();
    return;
  }
  // Idempotent recovery: just run it again somewhere else.
  MaybeStart(id);
}

void ITaskRuntime::FailAttempt(TaskId id, std::uint64_t attempt_tag) {
  auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second->done || it->second->attempt_tag != attempt_tag) {
    return;  // stale failure from an attempt the timeout already replaced
  }
  ++stats_.transfer_failures;
  Task& task = *it->second;
  engine_->Cancel(task.timeout_event);
  task.running = false;

  if (config_.recovery == RecoveryMode::kRestartAll) {
    RestartEverything();
    return;
  }
  MaybeStart(id);
}

void ITaskRuntime::RestartEverything() {
  ++stats_.restarts;
  // Un-commit every task; all completed work is lost because without
  // idempotence guarantees partially written outputs cannot be trusted.
  for (const auto& id : submit_order_) {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) {
      continue;
    }
    Task& t = *it->second;
    if (t.done) {
      t.done = false;
      ++pending_count_;
      --stats_.completed;
    }
    if (t.running) {
      engine_->Cancel(t.timeout_event);
      t.running = false;
    }
  }
  for (const auto& id : submit_order_) {
    MaybeStart(id);
  }
}

bool ITaskRuntime::TaskDone(TaskId id) const {
  auto it = tasks_.find(id);
  return it != tasks_.end() && it->second->done;
}

}  // namespace unifab
