#include "src/core/etrans.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unifab {
namespace {

// Tag payloads distinguishing eTrans message kinds.
constexpr std::uint64_t kTagJob = 1;
constexpr std::uint64_t kTagDone = 2;

struct DoneMsg {
  std::uint64_t job_id;
  TransferResult result;
};

}  // namespace

void AgentStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "jobs_executed", [this] { return jobs_executed; });
  group.AddCounterFn(prefix + "bytes_moved", [this] { return bytes_moved; });
  group.AddCounterFn(prefix + "throttle_waits", [this] { return throttle_waits; });
  group.AddCounterFn(prefix + "lease_denials", [this] { return lease_denials; });
  group.AddSummaryFn(prefix + "job_latency_us", [this] { return &job_latency_us; });
}

MigrationAgent::MigrationAgent(Engine* engine, MessageDispatcher* dispatcher,
                               DramDevice* local_mem, ArbiterClient* arbiter, std::string name)
    : engine_(engine),
      dispatcher_(dispatcher),
      local_mem_(local_mem),
      arbiter_(arbiter),
      name_(std::move(name)) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/etrans/agent/" + name_);
  stats_.BindTo(metrics_);
}

std::pair<const Segment*, std::uint64_t> MigrationAgent::Locate(
    const std::vector<Segment>& segs, std::uint64_t offset) {
  for (const auto& seg : segs) {
    if (offset < seg.bytes) {
      return {&seg, offset};
    }
    offset -= seg.bytes;
  }
  return {nullptr, 0};
}

void MigrationAgent::ExecuteTransfer(const TransferJob& job,
                                     std::function<void(TransferResult)> done) {
  auto active = std::make_shared<ActiveJob>();
  active->job = job;
  active->done = std::move(done);
  active->started_at = engine_->Now();
  active->total = ETransEngine::ValidateAndSize(job.desc);
  StartJob(active);
}

void MigrationAgent::StartJob(std::shared_ptr<ActiveJob> job) {
  const ETransAttributes& attrs = job->job.desc.attributes;
  // Immediate transfers are the synchronous urgent path and bypass the
  // lease machinery; delegated bulk traffic is what the arbiter paces.
  if (!job->job.desc.immediate && attrs.throttled && arbiter_ != nullptr &&
      !job->job.desc.dst.empty()) {
    // Lease bandwidth toward the (first) destination node; pace chunks at
    // the granted rate.
    job->lease_resource = job->job.desc.dst.front().node;
    arbiter_->Reserve(job->lease_resource, attrs.request_mbps, [this, job](double granted) {
      if (granted <= 0.0) {
        ++stats_.lease_denials;
        if (++job->lease_retries <= kMaxLeaseRetries) {
          // Congestion: exponential backoff before asking again.
          const Tick backoff = FromUs(5.0) << job->lease_retries;
          engine_->Schedule(backoff, [this, job] { StartJob(job); });
          return;
        }
        // The resource is unmanaged or persistently saturated; fall through
        // unthrottled rather than stalling the transfer forever.
        job->granted_mbps = 0.0;
        PumpChunks(job);
        return;
      }
      job->granted_mbps = granted;
      job->next_issue_at = engine_->Now();
      job->lease_renew_at = engine_->Now() + arbiter_->lease_duration();
      PumpChunks(job);
    });
    return;
  }
  job->granted_mbps = 0.0;  // unthrottled
  PumpChunks(job);
}

void MigrationAgent::MaybeRenewLease(const std::shared_ptr<ActiveJob>& job) {
  if (job->granted_mbps <= 0.0 || arbiter_ == nullptr || job->renew_pending ||
      engine_->Now() < job->lease_renew_at) {
    return;
  }
  // Renew at the lease cadence; the arbiter re-runs max-min over the
  // currently active flows, so long transfers converge to their fair share
  // as contention changes.
  job->renew_pending = true;
  arbiter_->Reserve(job->lease_resource, job->job.desc.attributes.request_mbps,
                    [this, job](double granted) {
                      job->renew_pending = false;
                      if (granted > 0.0) {
                        job->granted_mbps = granted;
                      }
                      job->lease_renew_at = engine_->Now() + arbiter_->lease_duration();
                      PumpChunks(job);
                    });
}

void MigrationAgent::PumpChunks(const std::shared_ptr<ActiveJob>& job) {
  const ETransAttributes& attrs = job->job.desc.attributes;
  MaybeRenewLease(job);
  while (job->offset < job->total && job->in_flight < attrs.pipeline_depth) {
    if (job->granted_mbps > 0.0 && engine_->Now() < job->next_issue_at) {
      // Rate limited: resume when the lease's token clock catches up.
      ++stats_.throttle_waits;
      engine_->ScheduleAt(job->next_issue_at, [this, job] { PumpChunks(job); });
      return;
    }
    const std::uint32_t bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(attrs.chunk_bytes, job->total - job->offset));
    if (job->granted_mbps > 0.0) {
      // Advance the token clock: bytes / (MB/s) = us.
      const Tick pace = static_cast<Tick>(static_cast<double>(bytes) / job->granted_mbps *
                                          static_cast<double>(kTicksPerUs));
      const Tick base = std::max(job->next_issue_at, engine_->Now());
      job->next_issue_at = base + pace;
    }
    IssueChunk(job, job->offset, bytes);
    job->offset += bytes;
    ++job->in_flight;
  }
}

void MigrationAgent::IssueChunk(const std::shared_ptr<ActiveJob>& job, std::uint64_t offset,
                                std::uint32_t bytes) {
  const auto [src, src_off] = Locate(job->job.desc.src, offset);
  assert(src != nullptr);
  // Chunks never straddle segment boundaries in well-formed descriptors
  // produced by the engine; clamp defensively.
  const std::uint32_t n =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, src->bytes - src_off));

  ReadSegment(*src, src_off, n, [this, job, offset, n] {
    const auto [dst, dst_off] = Locate(job->job.desc.dst, offset);
    assert(dst != nullptr);
    const std::uint32_t w =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(n, dst->bytes - dst_off));
    WriteSegment(*dst, dst_off, w, [this, job, w] {
      job->completed += w;
      --job->in_flight;
      stats_.bytes_moved += w;
      if (job->completed >= job->total) {
        ++stats_.jobs_executed;
        stats_.job_latency_us.Add(ToUs(engine_->Now() - job->started_at));
        if (job->granted_mbps > 0.0 && arbiter_ != nullptr) {
          arbiter_->Release(job->lease_resource, job->granted_mbps);
        }
        if (job->done) {
          job->done(TransferResult{true, engine_->Now(), job->total});
        }
        return;
      }
      PumpChunks(job);
    });
  });
}

void MigrationAgent::ReadSegment(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                                 std::function<void()> done) {
  if (seg.node == fabric_id() && local_mem_ != nullptr) {
    local_mem_->Access(seg.addr + offset, bytes, /*is_write=*/false, std::move(done));
    return;
  }
  auto* host = dynamic_cast<HostAdapter*>(dispatcher_->adapter());
  assert(host != nullptr && "remote segment but agent has no host adapter");
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.addr = seg.addr + offset;
  req.bytes = bytes;
  req.channel = Channel::kMem;
  host->Submit(seg.node, req, std::move(done));
}

void MigrationAgent::WriteSegment(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                                  std::function<void()> done) {
  if (seg.node == fabric_id() && local_mem_ != nullptr) {
    local_mem_->Access(seg.addr + offset, bytes, /*is_write=*/true, std::move(done));
    return;
  }
  auto* host = dynamic_cast<HostAdapter*>(dispatcher_->adapter());
  assert(host != nullptr && "remote segment but agent has no host adapter");
  MemRequest req;
  req.type = MemRequest::Type::kWrite;
  req.addr = seg.addr + offset;
  req.bytes = bytes;
  req.channel = Channel::kMem;
  host->Submit(seg.node, req, std::move(done));
}

void ETransStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "immediate_transfers", [this] { return immediate_transfers; });
  group.AddCounterFn(prefix + "delegated_transfers", [this] { return delegated_transfers; });
  group.AddCounterFn(prefix + "bytes_requested", [this] { return bytes_requested; });
}

ETransEngine::ETransEngine(Engine* engine) : engine_(engine) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/etrans/engine");
  stats_.BindTo(metrics_);
}

void ETransEngine::RegisterAgent(PbrId domain_node, MigrationAgent* agent) {
  agents_[domain_node] = agent;
  agents_by_self_[agent->fabric_id()] = agent;
  agent->dispatcher()->RegisterService(
      kSvcETrans, [this, agent](const FabricMessage& msg) { HandleAgentMessage(agent, msg); });
}

std::uint64_t ETransEngine::ValidateAndSize(const ETransDescriptor& desc) {
  std::uint64_t src_bytes = 0;
  std::uint64_t dst_bytes = 0;
  for (const auto& s : desc.src) {
    src_bytes += s.bytes;
  }
  for (const auto& d : desc.dst) {
    dst_bytes += d.bytes;
  }
  assert(src_bytes == dst_bytes && "eTrans descriptor src/dst size mismatch");
  return src_bytes;
}

bool MigrationAgent::CanExecute(const ETransDescriptor& desc) const {
  if (dynamic_cast<HostAdapter*>(dispatcher_->adapter()) != nullptr) {
    return true;
  }
  for (const auto& s : desc.src) {
    if (s.node != fabric_id()) {
      return false;
    }
  }
  for (const auto& d : desc.dst) {
    if (d.node != fabric_id()) {
      return false;
    }
  }
  return local_mem_ != nullptr;
}

MigrationAgent* ETransEngine::PickExecutor(MigrationAgent* initiator,
                                           const ETransDescriptor& desc) const {
  // Prefer an agent in the source data's memory domain, then the
  // destination's, then fall back to the initiator.
  if (!desc.src.empty()) {
    if (auto it = agents_.find(desc.src.front().node);
        it != agents_.end() && it->second->CanExecute(desc)) {
      return it->second;
    }
  }
  if (!desc.dst.empty()) {
    if (auto it = agents_.find(desc.dst.front().node);
        it != agents_.end() && it->second->CanExecute(desc)) {
      return it->second;
    }
  }
  return initiator;
}

TransferFuture ETransEngine::Submit(MigrationAgent* initiator, const ETransDescriptor& desc) {
  const std::uint64_t total = ValidateAndSize(desc);
  stats_.bytes_requested += total;

  TransferFuture future;
  future.set_ownership(desc.ownership);
  future.set_owner(initiator->fabric_id());

  if (desc.immediate) {
    // Synchronous urgent path: the initiator moves the data itself.
    ++stats_.immediate_transfers;
    TransferJob job;
    job.job_id = next_job_++;
    job.desc = desc;
    initiator->ExecuteTransfer(job, [future](TransferResult r) mutable { future.Fulfill(r); });
    return future;
  }

  ++stats_.delegated_transfers;
  MigrationAgent* executor = PickExecutor(initiator, desc);
  TransferJob job;
  job.job_id = next_job_++;
  job.desc = desc;
  job.reply_to = desc.ownership == Ownership::kInitiator ? initiator->fabric_id() : kInvalidPbrId;

  if (executor == initiator) {
    executor->ExecuteTransfer(job, [future](TransferResult r) mutable { future.Fulfill(r); });
    return future;
  }

  // Delegate over the fabric: small control message carries the descriptor.
  if (desc.ownership == Ownership::kInitiator) {
    pending_[job.job_id] = future;
  }
  initiator->dispatcher()->Send(executor->fabric_id(), kSvcETrans, kTagJob, 64,
                                std::make_shared<TransferJob>(job), desc.attributes.channel);
  return future;
}

void ETransEngine::HandleAgentMessage(MigrationAgent* agent, const FabricMessage& msg) {
  switch (TagPayload(msg.tag)) {
    case kTagJob: {
      const auto job = std::static_pointer_cast<TransferJob>(msg.body);
      assert(job != nullptr);
      agent->ExecuteTransfer(*job, [this, agent, job](TransferResult result) {
        if (job->reply_to == kInvalidPbrId) {
          return;  // executor/detached ownership: no notification
        }
        auto done = std::make_shared<DoneMsg>(DoneMsg{job->job_id, result});
        agent->dispatcher()->Send(job->reply_to, kSvcETrans, kTagDone, 64, std::move(done),
                                  Channel::kMem);
      });
      return;
    }
    case kTagDone: {
      const auto done = std::static_pointer_cast<DoneMsg>(msg.body);
      assert(done != nullptr);
      auto it = pending_.find(done->job_id);
      if (it != pending_.end()) {
        TransferFuture f = it->second;
        pending_.erase(it);
        f.Fulfill(done->result);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace unifab
