#include "src/core/etrans.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace unifab {
namespace {

// Tag payloads distinguishing eTrans message kinds.
constexpr std::uint64_t kTagJob = 1;
constexpr std::uint64_t kTagDone = 2;
constexpr std::uint64_t kTagPut = 3;     // push: chunk payload toward its dst agent
constexpr std::uint64_t kTagPutAck = 4;  // push: durable-at-destination ack

struct DoneMsg {
  std::uint64_t job_id;
  TransferResult result;
};

struct PutMsg {
  std::uint64_t put_id;
  std::uint64_t addr;   // absolute address in the destination's local memory
  std::uint32_t bytes;
};

struct PutAckMsg {
  std::uint64_t put_id;
  bool ok;
};

}  // namespace

void AgentStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "jobs_executed", [this] { return jobs_executed; });
  group.AddCounterFn(prefix + "jobs_timed_out", [this] { return jobs_timed_out; });
  group.AddCounterFn(prefix + "chunks_failed", [this] { return chunks_failed; });
  group.AddCounterFn(prefix + "bytes_moved", [this] { return bytes_moved; });
  group.AddCounterFn(prefix + "throttle_waits", [this] { return throttle_waits; });
  group.AddCounterFn(prefix + "lease_denials", [this] { return lease_denials; });
  group.AddCounterFn(prefix + "pushes_sent", [this] { return pushes_sent; });
  group.AddCounterFn(prefix + "pushes_served", [this] { return pushes_served; });
  group.AddCounterFn(prefix + "push_timeouts", [this] { return push_timeouts; });
  group.AddSummaryFn(prefix + "job_latency_us", [this] { return &job_latency_us; });
}

MigrationAgent::MigrationAgent(Engine* engine, MessageDispatcher* dispatcher,
                               DramDevice* local_mem, ArbiterClient* arbiter, std::string name)
    : engine_(engine),
      dispatcher_(dispatcher),
      local_mem_(local_mem),
      arbiter_(arbiter),
      name_(std::move(name)) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/etrans/agent/" + name_);
  stats_.BindTo(metrics_);
}

std::pair<const Segment*, std::uint64_t> MigrationAgent::Locate(
    const std::vector<Segment>& segs, std::uint64_t offset) {
  for (const auto& seg : segs) {
    if (offset < seg.bytes) {
      return {&seg, offset};
    }
    offset -= seg.bytes;
  }
  return {nullptr, 0};
}

Tick MigrationAgent::AttemptDeadline(const ETransDescriptor& desc, double rate_mbps) {
  const ETransAttributes& attrs = desc.attributes;
  std::uint64_t total = 0;
  for (const auto& s : desc.src) {
    total += s.bytes;
  }
  if (rate_mbps <= 0.0) {
    rate_mbps = attrs.request_mbps > 0.0 ? attrs.request_mbps : 8000.0;
  }
  // MB/s is bytes/us, so the ideal copy time in us is bytes / rate.
  const double ideal_us = static_cast<double>(total) / rate_mbps;
  return attrs.deadline_floor +
         static_cast<Tick>(attrs.deadline_factor * ideal_us * static_cast<double>(kTicksPerUs));
}

Tick MigrationAgent::LeaseBackoff(int retries) {
  constexpr Tick kCap = FromUs(100.0);
  if (retries < 0) {
    retries = 0;
  }
  // Bound the shift before clamping so a large retry count cannot overflow.
  const int shift = retries > 5 ? 5 : retries;
  const Tick backoff = FromUs(5.0) << shift;
  return backoff > kCap ? kCap : backoff;
}

void MigrationAgent::ExecuteTransfer(const TransferJob& job,
                                     std::function<void(TransferResult)> done) {
  auto active = std::make_shared<ActiveJob>();
  active->job = job;
  active->done = std::move(done);
  active->started_at = engine_->Now();
  active->total = ETransEngine::ValidateAndSize(job.desc);
  // Armed before any lease traffic, at the requested rate, so even a lost
  // arbiter control message cannot wedge the attempt; re-armed at the
  // (slower) granted rate once the lease lands.
  ArmWatchdog(active, 0.0);
  StartJob(active);
}

void MigrationAgent::ArmWatchdog(const std::shared_ptr<ActiveJob>& job, double rate_mbps) {
  if (job->watchdog != kInvalidEventId) {
    engine_->Cancel(job->watchdog);
  }
  const Tick deadline = AttemptDeadline(job->job.desc, rate_mbps);
  job->watchdog = engine_->Schedule(deadline, [this, job] {
    job->watchdog = kInvalidEventId;
    if (job->dead || job->completed >= job->total) {
      return;
    }
    ++stats_.jobs_timed_out;
    FailJob(job, TransferStatus::kTimedOut);
  });
}

void MigrationAgent::FailJob(const std::shared_ptr<ActiveJob>& job, TransferStatus status) {
  if (job->dead || job->completed >= job->total) {
    return;  // already failed, or the attempt raced to completion
  }
  job->dead = true;
  if (job->watchdog != kInvalidEventId) {
    engine_->Cancel(job->watchdog);
    job->watchdog = kInvalidEventId;
  }
  if (job->granted_mbps > 0.0 && arbiter_ != nullptr) {
    const ETransAttributes& attrs = job->job.desc.attributes;
    arbiter_->Release(job->lease_resource, job->granted_mbps, attrs.tenant, attrs.qos);
    job->granted_mbps = 0.0;
  }
  if (job->done) {
    job->done(TransferResult{false, status, engine_->Now(), job->completed});
  }
}

void MigrationAgent::StartJob(std::shared_ptr<ActiveJob> job) {
  const ETransAttributes& attrs = job->job.desc.attributes;
  // Immediate transfers are the synchronous urgent path and bypass the
  // lease machinery; delegated bulk traffic is what the arbiter paces.
  if (!job->job.desc.immediate && attrs.throttled && arbiter_ != nullptr &&
      !job->job.desc.dst.empty()) {
    // Lease bandwidth toward the (first) destination node; pace chunks at
    // the granted rate.
    job->lease_resource = job->job.desc.dst.front().node;
    arbiter_->Reserve(job->lease_resource, attrs.request_mbps, attrs.tenant, attrs.qos,
                      [this, job](double granted) {
      if (job->dead) {
        // The watchdog already killed this attempt; hand the late grant
        // straight back.
        if (granted > 0.0 && arbiter_ != nullptr) {
          const ETransAttributes& a = job->job.desc.attributes;
          arbiter_->Release(job->lease_resource, granted, a.tenant, a.qos);
        }
        return;
      }
      if (granted <= 0.0) {
        ++stats_.lease_denials;
        if (++job->lease_retries <= kMaxLeaseRetries) {
          // Congestion: bounded exponential backoff before asking again.
          engine_->Schedule(LeaseBackoff(job->lease_retries), [this, job] { StartJob(job); });
          return;
        }
        // The resource is unmanaged or persistently saturated; fall through
        // unthrottled rather than stalling the transfer forever.
        job->granted_mbps = 0.0;
        PumpChunks(job);
        return;
      }
      job->granted_mbps = granted;
      job->next_issue_at = engine_->Now();
      job->lease_renew_at = engine_->Now() + arbiter_->lease_duration();
      if (granted < job->job.desc.attributes.request_mbps) {
        // Paced below the requested rate: stretch the deadline to match.
        ArmWatchdog(job, granted);
      }
      PumpChunks(job);
    });
    return;
  }
  job->granted_mbps = 0.0;  // unthrottled
  PumpChunks(job);
}

void MigrationAgent::MaybeRenewLease(const std::shared_ptr<ActiveJob>& job) {
  if (job->dead || job->granted_mbps <= 0.0 || arbiter_ == nullptr || job->renew_pending ||
      engine_->Now() < job->lease_renew_at) {
    return;
  }
  // Renew at the lease cadence; the arbiter re-runs max-min over the
  // currently active flows, so long transfers converge to their fair share
  // as contention changes.
  job->renew_pending = true;
  arbiter_->Reserve(job->lease_resource, job->job.desc.attributes.request_mbps,
                    job->job.desc.attributes.tenant, job->job.desc.attributes.qos,
                    [this, job](double granted) {
                      job->renew_pending = false;
                      if (job->dead) {
                        if (granted > 0.0 && arbiter_ != nullptr) {
                          const ETransAttributes& a = job->job.desc.attributes;
                          arbiter_->Release(job->lease_resource, granted, a.tenant, a.qos);
                        }
                        return;
                      }
                      if (granted > 0.0) {
                        job->granted_mbps = granted;
                      }
                      job->lease_renew_at = engine_->Now() + arbiter_->lease_duration();
                      PumpChunks(job);
                    });
}

void MigrationAgent::PumpChunks(const std::shared_ptr<ActiveJob>& job) {
  if (job->dead) {
    return;
  }
  const ETransAttributes& attrs = job->job.desc.attributes;
  MaybeRenewLease(job);
  while (job->offset < job->total && job->in_flight < attrs.pipeline_depth) {
    const std::uint32_t bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(attrs.chunk_bytes, job->total - job->offset));
    if (job->granted_mbps > 0.0) {
      // Token-bucket pacing: bytes / (MB/s) = us per chunk. The clock may
      // run up to `window` ahead of now (a burst of burst_chunks chunks)
      // and lag at most `window` behind it (burst catch-up after idling);
      // with burst_chunks == 1 both clamps reduce to strict per-chunk
      // pacing.
      const Tick pace = static_cast<Tick>(static_cast<double>(bytes) / job->granted_mbps *
                                          static_cast<double>(kTicksPerUs));
      const std::uint32_t burst = attrs.burst_chunks == 0 ? 1 : attrs.burst_chunks;
      const Tick window = static_cast<Tick>(burst - 1) * pace;
      const Tick now = engine_->Now();
      if (now + window < job->next_issue_at) {
        // Rate limited: resume when the token clock re-enters the window.
        // A wakeup already armed at or before that tick will re-evaluate
        // for us — don't schedule a duplicate.
        ++stats_.throttle_waits;
        const Tick wake_at = job->next_issue_at - window;
        if (!job->pump_wakeup_armed || job->pump_wakeup_at > wake_at) {
          job->pump_wakeup_armed = true;
          job->pump_wakeup_at = wake_at;
          engine_->ScheduleAt(wake_at, [this, job] {
            job->pump_wakeup_armed = false;
            PumpChunks(job);
          });
        }
        return;
      }
      const Tick base = std::max(job->next_issue_at, now > window ? now - window : 0);
      job->next_issue_at = base + pace;
    }
    IssueChunk(job, job->offset, bytes);
    job->offset += bytes;
    ++job->in_flight;
  }
}

void MigrationAgent::IssueChunk(const std::shared_ptr<ActiveJob>& job, std::uint64_t offset,
                                std::uint32_t bytes) {
  const auto [src, src_off] = Locate(job->job.desc.src, offset);
  assert(src != nullptr);
  // Chunks never straddle segment boundaries in well-formed descriptors
  // produced by the engine; clamp defensively.
  const std::uint32_t n =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, src->bytes - src_off));

  ReadSegment(*src, src_off, n, [this, job, offset, n](bool ok) {
    if (job->dead) {
      return;  // late completion of an abandoned attempt
    }
    if (!ok) {
      ++stats_.chunks_failed;
      FailJob(job, TransferStatus::kTimedOut);
      return;
    }
    const auto [dst, dst_off] = Locate(job->job.desc.dst, offset);
    assert(dst != nullptr);
    const std::uint32_t w =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(n, dst->bytes - dst_off));
    WriteSegment(*dst, dst_off, w, [this, job, w](bool ok2) {
      if (job->dead) {
        return;
      }
      if (!ok2) {
        ++stats_.chunks_failed;
        FailJob(job, TransferStatus::kTimedOut);
        return;
      }
      job->completed += w;
      --job->in_flight;
      stats_.bytes_moved += w;
      if (job->completed >= job->total) {
        if (job->watchdog != kInvalidEventId) {
          engine_->Cancel(job->watchdog);
          job->watchdog = kInvalidEventId;
        }
        ++stats_.jobs_executed;
        stats_.job_latency_us.Add(ToUs(engine_->Now() - job->started_at));
        if (job->granted_mbps > 0.0 && arbiter_ != nullptr) {
          const ETransAttributes& a = job->job.desc.attributes;
          arbiter_->Release(job->lease_resource, job->granted_mbps, a.tenant, a.qos);
        }
        if (job->done) {
          job->done(TransferResult{true, TransferStatus::kOk, engine_->Now(), job->total});
        }
        return;
      }
      PumpChunks(job);
    });
  });
}

void MigrationAgent::ReadSegment(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                                 std::function<void(bool)> done) {
  if (seg.node == fabric_id() && local_mem_ != nullptr) {
    local_mem_->Access(seg.addr + offset, bytes, /*is_write=*/false,
                       [cb = std::move(done)] { cb(true); });
    return;
  }
  auto* host = dynamic_cast<HostAdapter*>(dispatcher_->adapter());
  assert(host != nullptr && "remote segment but agent has no host adapter");
  MemRequest req;
  req.type = MemRequest::Type::kRead;
  req.addr = seg.addr + offset;
  req.bytes = bytes;
  req.channel = Channel::kMem;
  host->SubmitWithStatus(seg.node, req, std::move(done));
}

void MigrationAgent::WriteSegment(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                                  std::function<void(bool)> done) {
  if (seg.node == fabric_id() && local_mem_ != nullptr) {
    local_mem_->Access(seg.addr + offset, bytes, /*is_write=*/true,
                       [cb = std::move(done)] { cb(true); });
    return;
  }
  auto* host = dynamic_cast<HostAdapter*>(dispatcher_->adapter());
  if (host == nullptr && push_enabled_) {
    PushRemote(seg, offset, bytes, std::move(done));
    return;
  }
  assert(host != nullptr && "remote segment but agent has no host adapter");
  MemRequest req;
  req.type = MemRequest::Type::kWrite;
  req.addr = seg.addr + offset;
  req.bytes = bytes;
  req.channel = Channel::kMem;
  host->SubmitWithStatus(seg.node, req, std::move(done));
}

void MigrationAgent::PushRemote(const Segment& seg, std::uint64_t offset, std::uint32_t bytes,
                                std::function<void(bool)> done) {
  const std::uint64_t put_id = next_put_++;
  PendingPut& pending = pending_puts_[put_id];
  pending.done = std::move(done);
  pending.timeout = engine_->Schedule(kPutAckTimeout, [this, put_id] {
    auto it = pending_puts_.find(put_id);
    if (it == pending_puts_.end()) {
      return;  // acked in time
    }
    ++stats_.push_timeouts;
    auto cb = std::move(it->second.done);
    pending_puts_.erase(it);
    cb(false);
  });
  ++stats_.pushes_sent;
  auto msg = std::make_shared<PutMsg>(PutMsg{put_id, seg.addr + offset, bytes});
  // The chunk payload rides the message, so the wire time of the push is the
  // real serialization cost of `bytes` on this agent's own uplink.
  dispatcher_->Send(seg.node, kSvcETrans, kTagPut, bytes, std::move(msg), Channel::kMem);
}

void MigrationAgent::ServePut(const FabricMessage& msg) {
  const auto put = std::static_pointer_cast<PutMsg>(msg.body);
  assert(put != nullptr);
  const PbrId requester = msg.src;
  const std::uint64_t put_id = put->put_id;
  auto ack = [this, requester, put_id](bool ok) {
    auto body = std::make_shared<PutAckMsg>(PutAckMsg{put_id, ok});
    dispatcher_->Send(requester, kSvcETrans, kTagPutAck, 64, std::move(body), Channel::kMem);
  };
  if (local_mem_ == nullptr) {
    ack(false);
    return;
  }
  ++stats_.pushes_served;
  local_mem_->Access(put->addr, put->bytes, /*is_write=*/true, [ack] { ack(true); });
}

void MigrationAgent::CompletePut(std::uint64_t put_id, bool ok) {
  auto it = pending_puts_.find(put_id);
  if (it == pending_puts_.end()) {
    return;  // the timeout already failed this push; ignore the late ack
  }
  if (it->second.timeout != kInvalidEventId) {
    engine_->Cancel(it->second.timeout);
  }
  auto cb = std::move(it->second.done);
  pending_puts_.erase(it);
  cb(ok);
}

void ETransStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "immediate_transfers", [this] { return immediate_transfers; });
  group.AddCounterFn(prefix + "delegated_transfers", [this] { return delegated_transfers; });
  group.AddCounterFn(prefix + "bytes_requested", [this] { return bytes_requested; });
}

void ETransRecoveryStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "attempt_failures", [this] { return attempt_failures; });
  group.AddCounterFn(prefix + "retries", [this] { return retries; });
  group.AddCounterFn(prefix + "reroutes", [this] { return reroutes; });
  group.AddCounterFn(prefix + "jobs_recovered", [this] { return jobs_recovered; });
  group.AddCounterFn(prefix + "jobs_aborted", [this] { return jobs_aborted; });
  group.AddSummaryFn(prefix + "time_to_recover_us", [this] { return &time_to_recover_us; });
}

ETransEngine::ETransEngine(Engine* engine, ETransRecoveryConfig recovery)
    : engine_(engine), recovery_(recovery) {
  metrics_ = MetricGroup(&engine_->metrics(), "core/etrans/engine");
  stats_.BindTo(metrics_);
  recovery_metrics_ = MetricGroup(&engine_->metrics(), "recovery/etrans");
  recovery_stats_.BindTo(recovery_metrics_);
  audit_ = AuditScope(&engine_->audit(), "core/etrans/engine");
  // Every transfer reaches exactly one terminal status: OnAttemptDone
  // refusing a second resolution counts it here instead of fulfilling the
  // future twice (which would assert — or worse, silently double-complete).
  audit_.AddCheck("terminal_exactly_once", [this]() -> std::string {
    if (double_terminals_ != 0) {
      return std::to_string(double_terminals_) +
             " transfer(s) re-resolved after reaching a terminal status";
    }
    return {};
  });
  // Lifecycle conservation: terminals never outrun submissions, and every
  // tracked remote delegation belongs to a still-live transfer.
  audit_.AddCheck("transfer_conservation", [this]() -> std::string {
    if (transfers_terminal_ > transfers_submitted_) {
      return "terminal=" + std::to_string(transfers_terminal_) + " > submitted=" +
             std::to_string(transfers_submitted_);
    }
    const std::uint64_t live = transfers_submitted_ - transfers_terminal_;
    if (tracked_.size() > live) {
      return std::to_string(tracked_.size()) + " tracked delegations but only " +
             std::to_string(live) + " live transfers";
    }
    return {};
  });
}

void ETransEngine::RegisterAgent(PbrId domain_node, MigrationAgent* agent,
                                 bool executor_candidate) {
  if (executor_candidate) {
    agents_[domain_node] = agent;
  }
  agents_by_self_[agent->fabric_id()] = agent;
  agent->dispatcher()->RegisterService(
      kSvcETrans, [this, agent](const FabricMessage& msg) { HandleAgentMessage(agent, msg); });
}

std::uint64_t ETransEngine::ValidateAndSize(const ETransDescriptor& desc) {
  std::uint64_t src_bytes = 0;
  std::uint64_t dst_bytes = 0;
  for (const auto& s : desc.src) {
    src_bytes += s.bytes;
  }
  for (const auto& d : desc.dst) {
    dst_bytes += d.bytes;
  }
  assert(src_bytes == dst_bytes && "eTrans descriptor src/dst size mismatch");
  return src_bytes;
}

bool MigrationAgent::CanExecute(const ETransDescriptor& desc) const {
  if (dynamic_cast<HostAdapter*>(dispatcher_->adapter()) != nullptr) {
    return true;
  }
  for (const auto& s : desc.src) {
    if (s.node != fabric_id()) {
      return false;
    }
  }
  for (const auto& d : desc.dst) {
    // Push-enabled endpoint agents reach remote destinations via kTagPut.
    if (d.node != fabric_id() && !push_enabled_) {
      return false;
    }
  }
  return local_mem_ != nullptr;
}

MigrationAgent* ETransEngine::PickExecutor(MigrationAgent* initiator,
                                           const ETransDescriptor& desc) const {
  // Prefer an agent in the source data's memory domain, then the
  // destination's, then fall back to the initiator.
  if (!desc.src.empty()) {
    if (auto it = agents_.find(desc.src.front().node);
        it != agents_.end() && it->second->CanExecute(desc)) {
      return it->second;
    }
  }
  if (!desc.dst.empty()) {
    if (auto it = agents_.find(desc.dst.front().node);
        it != agents_.end() && it->second->CanExecute(desc)) {
      return it->second;
    }
  }
  return initiator;
}

TransferFuture ETransEngine::Submit(MigrationAgent* initiator, const ETransDescriptor& desc) {
  const std::uint64_t total = ValidateAndSize(desc);
  stats_.bytes_requested += total;
  if (desc.immediate) {
    ++stats_.immediate_transfers;
  } else {
    ++stats_.delegated_transfers;
  }

  auto pt = std::make_shared<PendingTransfer>();
  pt->desc = desc;
  pt->initiator = initiator;
  pt->future.set_ownership(desc.ownership);
  pt->future.set_owner(initiator->fabric_id());
  ++transfers_submitted_;
  Dispatch(pt);
  return pt->future;
}

Tick ETransEngine::RetryBackoff(int failed_attempts) const {
  double backoff = static_cast<double>(recovery_.initial_backoff);
  for (int i = 1; i < failed_attempts; ++i) {
    backoff *= recovery_.backoff_multiplier;
  }
  const double cap = static_cast<double>(recovery_.max_backoff);
  return static_cast<Tick>(backoff > cap ? cap : backoff);
}

void ETransEngine::Dispatch(const std::shared_ptr<PendingTransfer>& pt) {
  // Each attempt gets a fresh job id so a stale kTagDone (or a late chunk
  // completion) from an abandoned attempt can never be credited to a retry.
  TransferJob job;
  job.job_id = next_job_++;
  job.desc = pt->desc;
  pt->job_id = job.job_id;

  if (pt->desc.immediate) {
    // Synchronous urgent path: the initiator moves the data itself.
    pt->initiator->ExecuteTransfer(
        job, [this, pt](TransferResult r) { OnAttemptDone(pt, r); });
    return;
  }

  // The executor is re-picked per attempt: after a reroute the same domain
  // may be reachable again, or the initiator takes over as fallback.
  MigrationAgent* executor = PickExecutor(pt->initiator, pt->desc);
  job.reply_to =
      pt->desc.ownership == Ownership::kInitiator ? pt->initiator->fabric_id() : kInvalidPbrId;

  if (executor == pt->initiator) {
    executor->ExecuteTransfer(
        job, [this, pt](TransferResult r) { OnAttemptDone(pt, r); });
    return;
  }

  // Delegate over the fabric: small control message carries the descriptor.
  if (pt->desc.ownership == Ownership::kInitiator) {
    tracked_[job.job_id] = pt;
    // The executor-side deadline cannot help when the kTagJob/kTagDone
    // control messages themselves are lost, so the engine arms a laxer
    // watchdog of its own per remote attempt.
    const Tick deadline =
        2 * MigrationAgent::AttemptDeadline(pt->desc, pt->desc.attributes.request_mbps);
    const std::uint64_t job_id = job.job_id;
    pt->deadline_event = engine_->Schedule(deadline, [this, job_id] {
      auto it = tracked_.find(job_id);
      if (it == tracked_.end()) {
        return;  // a kTagDone beat the timeout
      }
      const std::shared_ptr<PendingTransfer> late = it->second;
      tracked_.erase(it);
      late->deadline_event = kInvalidEventId;
      OnAttemptDone(late,
                    TransferResult{false, TransferStatus::kTimedOut, engine_->Now(), 0});
    });
  }
  pt->initiator->dispatcher()->Send(executor->fabric_id(), kSvcETrans, kTagJob, 64,
                                    std::make_shared<TransferJob>(job),
                                    pt->desc.attributes.channel);
}

void ETransEngine::OnAttemptDone(const std::shared_ptr<PendingTransfer>& pt,
                                 TransferResult result) {
  if (pt->deadline_event != kInvalidEventId) {
    engine_->Cancel(pt->deadline_event);
    pt->deadline_event = kInvalidEventId;
  }
  tracked_.erase(pt->job_id);
  if (pt->future.Ready()) {
    // A straggler attempt resolving a transfer that already reached its
    // terminal status. Fulfilling again would double-complete the future;
    // record the violation for the auditor and drop the result.
    ++double_terminals_;
    return;
  }
  ++pt->attempts;

  if (result.ok) {
    result.status = TransferStatus::kOk;
    if (pt->first_failure_at != 0) {
      ++recovery_stats_.jobs_recovered;
      recovery_stats_.time_to_recover_us.Add(ToUs(engine_->Now() - pt->first_failure_at));
    }
    ++transfers_terminal_;
    pt->future.Fulfill(result);
    return;
  }

  ++recovery_stats_.attempt_failures;
  if (pt->first_failure_at == 0) {
    pt->first_failure_at = engine_->Now();
  }

  if (pt->attempts > recovery_.max_retries) {
    // Terminal: keep the last attempt's status when retries were disabled,
    // report kAborted when the retry budget was actually spent.
    if (recovery_.max_retries > 0) {
      result.status = TransferStatus::kAborted;
    }
    result.ok = false;
    result.completed_at = engine_->Now();
    ++recovery_stats_.jobs_aborted;
    ++transfers_terminal_;
    pt->future.Fulfill(result);
    return;
  }

  ++recovery_stats_.retries;
  if (recovery_.reroute_on_retry && reroute_) {
    // Let the fabric manager rebuild routing tables around whatever died
    // before the redrive resolves its path.
    reroute_();
    ++recovery_stats_.reroutes;
  }
  engine_->Schedule(RetryBackoff(pt->attempts), [this, pt] { Dispatch(pt); });
}

void ETransEngine::HandleAgentMessage(MigrationAgent* agent, const FabricMessage& msg) {
  switch (TagPayload(msg.tag)) {
    case kTagJob: {
      const auto job = std::static_pointer_cast<TransferJob>(msg.body);
      assert(job != nullptr);
      agent->ExecuteTransfer(*job, [agent, job](TransferResult result) {
        if (job->reply_to == kInvalidPbrId) {
          return;  // executor/detached ownership: no notification
        }
        // Failures travel back too: the initiator-side engine owns retry.
        auto done = std::make_shared<DoneMsg>(DoneMsg{job->job_id, result});
        agent->dispatcher()->Send(job->reply_to, kSvcETrans, kTagDone, 64, std::move(done),
                                  Channel::kMem);
      });
      return;
    }
    case kTagDone: {
      const auto done = std::static_pointer_cast<DoneMsg>(msg.body);
      assert(done != nullptr);
      auto it = tracked_.find(done->job_id);
      if (it == tracked_.end()) {
        return;  // stale: this attempt already timed out and was redriven
      }
      const std::shared_ptr<PendingTransfer> pt = it->second;
      tracked_.erase(it);
      OnAttemptDone(pt, done->result);
      return;
    }
    case kTagPut: {
      agent->ServePut(msg);
      return;
    }
    case kTagPutAck: {
      const auto ack = std::static_pointer_cast<PutAckMsg>(msg.body);
      assert(ack != nullptr);
      agent->CompletePut(ack->put_id, ack->ok);
      return;
    }
    default:
      return;
  }
}

}  // namespace unifab
