// Node replication over fabric-attached CC-NUMA memory (paper DP#2: "node
// replication … would benefit fabric-attached CC-NUMA memory nodes", and
// §5's promise of data structures specially optimized for certain node
// types).
//
// NodeReplicated<State, Op> keeps one State replica per host and funnels
// every mutation through a shared operation log that lives on the CC-NUMA
// node. Writers serialize on the log tail block (the directory's
// write-invalidate protocol provides the lock-free serialization); readers
// first sync — replaying any log entries they have not applied — and then
// serve from their local replica. On read-mostly workloads the tail block
// stays Shared in every port cache, so reads cost a port-cache hit instead
// of a cross-fabric round trip.
//
// The log is conceptually a sequence of 64B blocks:
//   log_base + 0        : tail index (how many ops exist)
//   log_base + 64 * (i+1): the i-th operation record
// Functional op payloads ride a host-side shadow (like UnifiedHeap's
// shadow); all timing comes from the port accesses.
//
// The Port template parameter selects the coherence substrate: CcNumaPort
// (default, the software-visible CC-NUMA directory) or CoherentPort (the
// CXL.cache coherent window) — any type with Read/Write(addr, void-callback)
// and HoldsBlock(addr) works. bench_coherent_window races the two backends
// against CohPtr to locate the hardware-coherence crossover.

#ifndef SRC_CORE_REPLICATED_H_
#define SRC_CORE_REPLICATED_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/mem/ccnuma.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/stats.h"

namespace unifab {

struct ReplicatedStats {
  std::uint64_t ops_executed = 0;
  std::uint64_t reads = 0;
  std::uint64_t entries_replayed = 0;
  std::uint64_t sync_fetches = 0;  // tail reads that missed (invalidated)
  std::uint64_t sync_races = 0;    // entry fetches whose index another sync applied first
  Summary op_latency_ns;
  Summary read_latency_ns;

  void BindTo(MetricGroup& group, const std::string& prefix = "") const {
    group.AddCounterFn(prefix + "ops_executed", [this] { return ops_executed; });
    group.AddCounterFn(prefix + "reads", [this] { return reads; });
    group.AddCounterFn(prefix + "entries_replayed", [this] { return entries_replayed; });
    group.AddCounterFn(prefix + "sync_fetches", [this] { return sync_fetches; });
    group.AddCounterFn(prefix + "sync_races", [this] { return sync_races; });
    group.AddSummaryFn(prefix + "op_latency_ns", [this] { return &op_latency_ns; });
    group.AddSummaryFn(prefix + "read_latency_ns", [this] { return &read_latency_ns; });
  }
};

template <typename State, typename Op, typename Port = CcNumaPort>
class NodeReplicated {
 public:
  using ApplyFn = std::function<void(State&, const Op&)>;

  // `log_base` must point at an unused region of the memory node's address
  // space; `capacity` bounds the number of ops the log can hold.
  NodeReplicated(Engine* engine, std::uint64_t log_base, std::size_t capacity, ApplyFn apply)
      : engine_(engine), log_base_(log_base), capacity_(capacity), apply_(std::move(apply)) {
    metrics_ = MetricGroup(&engine_->metrics(), "core/replicated");
    stats_.BindTo(metrics_);
  }

  // Registers a host's coherent port; returns the replica index.
  int AddReplica(Port* port, State initial = State{}) {
    replicas_.push_back(Replica{port, std::move(initial), 0, 0});
    return static_cast<int>(replicas_.size()) - 1;
  }

  // Executes a mutating operation from replica `r`. Completion fires when
  // the op is durably in the log and applied locally.
  void Execute(int r, Op op, std::function<void()> done = nullptr) {
    const Tick t0 = engine_->Now();
    // Acquire the tail block in M (serializes concurrent writers through
    // the directory), bump it, then write the entry block.
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    rep.port->Write(TailAddr(), [this, r, op = std::move(op), t0,
                                 done = std::move(done)]() mutable {
      assert(log_.size() < capacity_ && "replication log full");
      const std::uint64_t index = log_.size();
      log_.push_back(op);
      Replica& rep2 = replicas_[static_cast<std::size_t>(r)];
      rep2.port->Write(EntryAddr(index), [this, r, t0, done = std::move(done)] {
        Replica& rep3 = replicas_[static_cast<std::size_t>(r)];
        // Writers are implicitly synced through their own append.
        Replay(rep3, log_.size());
        ++stats_.ops_executed;
        stats_.op_latency_ns.Add(ToNs(engine_->Now() - t0));
        if (done) {
          done();
        }
      });
    });
  }

  // Reads the structure at replica `r`: sync with the log, then serve the
  // local state.
  void Read(int r, std::function<void(const State&)> done) {
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    const Tick t0 = engine_->Now();
    const bool had_tail = rep.port->HoldsBlock(TailAddr());
    // Read the tail: a port-cache hit when no writer invalidated it.
    rep.port->Read(TailAddr(), [this, r, t0, had_tail, done = std::move(done)]() mutable {
      if (!had_tail) {
        ++stats_.sync_fetches;
      }
      // Snapshot the tail now; entries appended after this point belong to
      // the next read's sync.
      SyncEntries(r, log_.size(), [this, r, t0, done = std::move(done)] {
        Replica& rep3 = replicas_[static_cast<std::size_t>(r)];
        ++stats_.reads;
        stats_.read_latency_ns.Add(ToNs(engine_->Now() - t0));
        done(rep3.state);
      });
    });
  }

  const State& UnsafePeek(int r) const { return replicas_[static_cast<std::size_t>(r)].state; }
  std::uint64_t LogSize() const { return log_.size(); }
  std::uint64_t Synced(int r) const { return replicas_[static_cast<std::size_t>(r)].synced; }
  const ReplicatedStats& stats() const { return stats_; }

 private:
  struct Replica {
    Port* port;
    State state;
    std::uint64_t synced;  // log entries applied to `state`
    // Independently maintained copy of the replay position. Replay checks
    // the two against each other so any future out-of-order or duplicate
    // application trips immediately instead of silently corrupting `state`.
    std::uint64_t replay_cursor;
  };

  std::uint64_t TailAddr() const { return log_base_; }
  std::uint64_t EntryAddr(std::uint64_t i) const { return log_base_ + 64 * (i + 1); }

  void Replay(Replica& rep, std::uint64_t upto) {
    while (rep.synced < upto) {
      assert(rep.synced == rep.replay_cursor && "replay cursor must advance monotonically");
      apply_(rep.state, log_[rep.synced]);
      ++rep.synced;
      ++rep.replay_cursor;
      ++stats_.entries_replayed;
    }
  }

  // Fetches entry blocks through the port until the replica has applied
  // [0, upto). The next index to fetch is re-read from the replica at every
  // step: with several reads (or a read racing the replica's own append) in
  // flight, an index captured before the fetch can be stale by the time the
  // block arrives — applying from it would replay an entry twice or out of
  // order. The stale-fetch case is counted, applied exactly once, and the
  // cursor assert in Replay enforces the ordering.
  void SyncEntries(int r, std::uint64_t upto, std::function<void()> done) {
    Replica& rep = replicas_[static_cast<std::size_t>(r)];
    const std::uint64_t from = rep.synced;
    if (from >= upto) {
      done();
      return;
    }
    rep.port->Read(EntryAddr(from), [this, r, from, upto, done = std::move(done)]() mutable {
      Replica& rep2 = replicas_[static_cast<std::size_t>(r)];
      if (rep2.synced == from) {
        Replay(rep2, from + 1);
      } else {
        // Another sync (or this replica's own append) already applied this
        // index while the fetch was in flight.
        ++stats_.sync_races;
      }
      SyncEntries(r, upto, std::move(done));
    });
  }

  Engine* engine_;
  std::uint64_t log_base_;
  std::size_t capacity_;
  ApplyFn apply_;
  std::vector<Replica> replicas_;
  std::deque<Op> log_;  // host-side shadow of the op records
  ReplicatedStats stats_;
  MetricGroup metrics_;
};

// The baseline a type-unconscious port uses: a single shared copy on the
// CC-NUMA node; every read scans the whole structure (`state_blocks` 64B
// coherence blocks) and every write dirties its first block. This is what
// node replication's operation log avoids: readers replay compact ops
// instead of re-fetching invalidated state.
template <typename State, typename Op, typename Port = CcNumaPort>
class CentralizedShared {
 public:
  using ApplyFn = std::function<void(State&, const Op&)>;

  CentralizedShared(Engine* engine, std::uint64_t addr, ApplyFn apply,
                    std::uint32_t state_blocks = 1)
      : engine_(engine), addr_(addr), apply_(std::move(apply)), state_blocks_(state_blocks) {
    metrics_ = MetricGroup(&engine_->metrics(), "core/centralized");
    stats_.BindTo(metrics_);
  }

  int AddHost(Port* port) {
    ports_.push_back(port);
    return static_cast<int>(ports_.size()) - 1;
  }

  void Execute(int h, Op op, std::function<void()> done = nullptr) {
    ports_[static_cast<std::size_t>(h)]->Write(
        addr_, std::function<void()>([this, op = std::move(op), done = std::move(done)] {
          apply_(state_, op);
          ++stats_.ops_executed;
          if (done) {
            done();
          }
        }));
  }

  void Read(int h, std::function<void(const State&)> done) {
    const Tick t0 = engine_->Now();
    ReadBlocks(h, 0, t0, std::move(done));
  }

  const ReplicatedStats& stats() const { return stats_; }

 private:
  void ReadBlocks(int h, std::uint32_t i, Tick t0, std::function<void(const State&)> done) {
    if (i >= state_blocks_) {
      ++stats_.reads;
      stats_.read_latency_ns.Add(ToNs(engine_->Now() - t0));
      done(state_);
      return;
    }
    ports_[static_cast<std::size_t>(h)]->Read(
        addr_ + static_cast<std::uint64_t>(i) * 64,
        std::function<void()>([this, h, i, t0, done = std::move(done)]() mutable {
          ReadBlocks(h, i + 1, t0, std::move(done));
        }));
  }

  Engine* engine_;
  std::uint64_t addr_;
  ApplyFn apply_;
  std::uint32_t state_blocks_;
  std::vector<Port*> ports_;
  State state_{};
  ReplicatedStats stats_;
  MetricGroup metrics_;
};

}  // namespace unifab

#endif  // SRC_CORE_REPLICATED_H_
