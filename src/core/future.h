// Distributed futures with ownership (paper DP#4 points at Ray-style
// ownership as the application-facing abstraction for compute-fabric
// co-design). A future is fulfilled inside the simulation; the `owner`
// field records which fabric component is responsible for observing
// completion — the initiator, the delegated executor, or nobody
// (fire-and-forget), mirroring the eTrans ownership attribute.

#ifndef SRC_CORE_FUTURE_H_
#define SRC_CORE_FUTURE_H_

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/fabric/flit.h"
#include "src/sim/time.h"

namespace unifab {

enum class Ownership {
  kInitiator,  // the submitting entity waits on completion
  kExecutor,   // the delegated agent owns completion (initiator fire-and-forget)
  kDetached,   // nobody observes; errors surface only in stats
};

template <typename T>
class DistFuture {
 public:
  DistFuture() : state_(std::make_shared<State>()) {}

  bool Ready() const { return state_->value.has_value(); }

  const T& Value() const {
    assert(Ready());
    return *state_->value;
  }

  // Registers a continuation; fires immediately if already fulfilled.
  void Then(std::function<void(const T&)> fn) {
    if (state_->value.has_value()) {
      fn(*state_->value);
      return;
    }
    state_->continuations.push_back(std::move(fn));
  }

  void Fulfill(T value) {
    assert(!state_->value.has_value() && "future fulfilled twice");
    state_->value = std::move(value);
    auto pending = std::move(state_->continuations);
    state_->continuations.clear();
    for (auto& fn : pending) {
      fn(*state_->value);
    }
  }

  // Fulfills unless already fulfilled; returns whether this call won. The
  // shared exactly-once plumbing both eTrans transfers and collectives rely
  // on: late attempts/steps race their terminal status here and the loser
  // drops its result (callers count the refusal for the auditor).
  bool TryFulfill(T value) {
    if (state_->value.has_value()) {
      return false;
    }
    Fulfill(std::move(value));
    return true;
  }

  void set_owner(PbrId owner) { state_->owner = owner; }
  PbrId owner() const { return state_->owner; }
  void set_ownership(Ownership o) { state_->ownership = o; }
  Ownership ownership() const { return state_->ownership; }

 private:
  struct State {
    std::optional<T> value;
    std::vector<std::function<void(const T&)>> continuations;
    PbrId owner = kInvalidPbrId;
    Ownership ownership = Ownership::kInitiator;
  };

  std::shared_ptr<State> state_;
};

// Terminal disposition of a transfer. Every submitted eTrans job ends in
// exactly one of these — a future left unfulfilled is a runtime bug.
enum class TransferStatus {
  kOk,        // every destination byte is durable
  kTimedOut,  // an execution attempt missed its deadline (may be retried)
  kAborted,   // retries exhausted; the transfer permanently failed
};

// The payload most runtime futures carry: completion time plus a status.
struct TransferResult {
  bool ok = true;
  TransferStatus status = TransferStatus::kOk;
  Tick completed_at = 0;
  std::uint64_t bytes = 0;
};

using TransferFuture = DistFuture<TransferResult>;

}  // namespace unifab

#endif  // SRC_CORE_FUTURE_H_
