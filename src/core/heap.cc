#include "src/core/heap.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/fabric/switch/mem_agent.h"

namespace unifab {

std::vector<MigrationPolicy::Move> TemperaturePolicy::Decide(
    const std::vector<ObjectInfo>& objects, const std::vector<MemTier>& tiers,
    const std::vector<std::uint64_t>& tier_used, const HeapConfig& config) {
  std::vector<Move> moves;
  std::uint64_t budget = config.migration_budget_bytes;

  // Promotion: hottest first.
  std::vector<const ObjectInfo*> hot;
  for (const auto& obj : objects) {
    if (obj.tier > 0 && !obj.migrating && obj.temperature >= config.promote_threshold) {
      hot.push_back(&obj);
    }
  }
  std::sort(hot.begin(), hot.end(), [](const ObjectInfo* a, const ObjectInfo* b) {
    return a->temperature > b->temperature;
  });

  // Track hypothetical occupancy so one epoch doesn't overshoot a tier.
  std::vector<std::uint64_t> used = tier_used;
  for (const ObjectInfo* obj : hot) {
    if (budget < obj->size) {
      break;
    }
    const int dst = obj->tier - 1;
    const auto dsti = static_cast<std::size_t>(dst);
    if (used[dsti] + obj->size > tiers[dsti].capacity) {
      continue;  // destination full; demotion below may free space for later epochs
    }
    moves.push_back(Move{obj->id, dst});
    used[dsti] += obj->size;
    budget -= obj->size;
  }

  // Demotion: coldest first, only from tiers above the high watermark.
  std::vector<const ObjectInfo*> cold;
  for (const auto& obj : objects) {
    if (obj.tier + 1 < static_cast<int>(tiers.size()) && !obj.migrating &&
        obj.temperature <= config.demote_threshold) {
      cold.push_back(&obj);
    }
  }
  std::sort(cold.begin(), cold.end(), [](const ObjectInfo* a, const ObjectInfo* b) {
    return a->temperature < b->temperature;
  });
  for (const ObjectInfo* obj : cold) {
    const auto srci = static_cast<std::size_t>(obj->tier);
    const double occupancy =
        static_cast<double>(used[srci]) / static_cast<double>(tiers[srci].capacity);
    if (occupancy < config.high_watermark) {
      continue;
    }
    if (budget < obj->size) {
      break;
    }
    const int dst = obj->tier + 1;
    const auto dsti = static_cast<std::size_t>(dst);
    if (used[dsti] + obj->size > tiers[dsti].capacity) {
      continue;
    }
    moves.push_back(Move{obj->id, dst});
    used[dsti] += obj->size;
    used[srci] -= obj->size;
    budget -= obj->size;
  }
  return moves;
}

void HeapStats::BindTo(MetricGroup& group, const std::string& prefix) const {
  group.AddCounterFn(prefix + "allocations", [this] { return allocations; });
  group.AddCounterFn(prefix + "frees", [this] { return frees; });
  group.AddCounterFn(prefix + "failed_allocations", [this] { return failed_allocations; });
  group.AddCounterFn(prefix + "reads", [this] { return reads; });
  group.AddCounterFn(prefix + "writes", [this] { return writes; });
  group.AddCounterFn(prefix + "promotions", [this] { return promotions; });
  group.AddCounterFn(prefix + "demotions", [this] { return demotions; });
  group.AddCounterFn(prefix + "bytes_migrated", [this] { return bytes_migrated; });
  group.AddCounterFn(prefix + "migrations_failed", [this] { return migrations_failed; });
  group.AddCounterFn(prefix + "epochs", [this] { return epochs; });
}

UnifiedHeap::UnifiedHeap(Engine* engine, const HeapConfig& config, MemoryHierarchy* core,
                         MigrationAgent* agent, ETransEngine* etrans)
    : engine_(engine),
      config_(config),
      core_(core),
      agent_(agent),
      etrans_(etrans),
      policy_(std::make_unique<TemperaturePolicy>()),
      profiler_(config.profiler, config.ewma_alpha) {
  next_epoch_at_ = engine_->Now() + config_.epoch_length;
  metrics_ = MetricGroup(&engine_->metrics(), "core/heap");
  stats_.BindTo(metrics_);
  profiler_.BindMetrics(metrics_, "profiler/");
  audit_ = AuditScope(&engine_->audit(), "core/heap");
  // Per-tier byte conservation: live objects placed in a tier plus the
  // still-carved source blocks of in-flight migrations account for every
  // used byte, used + free-listed bytes account for every carved byte, and
  // nothing exceeds the tier's capacity.
  audit_.AddCheck("tier_occupancy", [this]() -> std::string {
    std::vector<std::uint64_t> live(tiers_.size(), 0);
    for (const auto& [id, obj] : objects_) {
      const int tier = obj.info.tier;
      if (tier < 0 || tier >= num_tiers()) {
        return "object " + std::to_string(id) + " placed in invalid tier " +
               std::to_string(tier);
      }
      live[static_cast<std::size_t>(tier)] += ClassFor(obj.info.size);
    }
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      if (tier_used_[t] > tiers_[t].capacity) {
        return "tier " + std::to_string(t) + ": used " + std::to_string(tier_used_[t]) +
               " > capacity " + std::to_string(tiers_[t].capacity);
      }
      if (live[t] + tier_migrating_src_[t] != tier_used_[t]) {
        return "tier " + std::to_string(t) + ": live(" + std::to_string(live[t]) +
               ") + migrating_src(" + std::to_string(tier_migrating_src_[t]) +
               ") != used(" + std::to_string(tier_used_[t]) + ")";
      }
      std::uint64_t free_bytes = 0;
      for (const auto& bin : tier_state_[t].bins) {
        free_bytes += bin.free_list.size() * bin.size_class;
      }
      if (tier_used_[t] + free_bytes != tier_state_[t].bump) {
        return "tier " + std::to_string(t) + ": used(" + std::to_string(tier_used_[t]) +
               ") + free(" + std::to_string(free_bytes) + ") != carved(" +
               std::to_string(tier_state_[t].bump) + ")";
      }
    }
    return {};
  });
  // Every object is in exactly one tier or marked migrating; freed-mid-
  // migration objects keep their in-flight slot until the copy resolves,
  // hence <= rather than ==.
  audit_.AddCheck("migration_accounting", [this]() -> std::string {
    std::uint64_t marked = 0;
    for (const auto& [id, obj] : objects_) {
      if (obj.info.migrating) {
        ++marked;
      }
    }
    if (marked > migrations_in_flight_) {
      return std::to_string(marked) + " objects marked migrating but only " +
             std::to_string(migrations_in_flight_) + " migrations in flight";
    }
    return {};
  });
  // The in-flight migration registry is the authoritative record of every
  // source-block claim: its per-tier size-class sums must equal
  // tier_migrating_src_ exactly, and its population must equal the in-flight
  // count. A leak here is the bug class where a rejected or rolled-back
  // migration strands source bytes forever.
  audit_.AddCheck("migration_registry", [this]() -> std::string {
    if (inflight_.size() != migrations_in_flight_) {
      return "registry has " + std::to_string(inflight_.size()) + " entries but " +
             std::to_string(migrations_in_flight_) + " migrations in flight";
    }
    std::vector<std::uint64_t> claimed(tiers_.size(), 0);
    for (const auto& [id, m] : inflight_) {
      if (m.src_tier < 0 || m.src_tier >= num_tiers()) {
        return "migration of object " + std::to_string(id) + " claims invalid src tier " +
               std::to_string(m.src_tier);
      }
      claimed[static_cast<std::size_t>(m.src_tier)] += m.size_class;
    }
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      if (claimed[t] != tier_migrating_src_[t]) {
        return "tier " + std::to_string(t) + ": registry claims " +
               std::to_string(claimed[t]) + " migrating-src bytes but ledger has " +
               std::to_string(tier_migrating_src_[t]);
      }
    }
    return {};
  });
}

void UnifiedHeap::AttachSwitchMem(SwitchMemClient* client, std::uint64_t va_base) {
  assert(objects_.empty() && "attach switch-mem before the first allocation");
  switch_mem_ = client;
  va_base_ = va_base;
  va_bump_ = 0;
}

int UnifiedHeap::AddTier(const MemTier& tier) {
  tiers_.push_back(tier);
  TierState state;
  for (std::uint32_t sc : config_.size_classes) {
    state.bins.push_back(Bin{sc, {}});
  }
  tier_state_.push_back(std::move(state));
  tier_used_.push_back(0);
  tier_migrating_src_.push_back(0);
  return static_cast<int>(tiers_.size()) - 1;
}

std::uint32_t UnifiedHeap::ClassFor(std::uint32_t size) const {
  for (std::uint32_t sc : config_.size_classes) {
    if (size <= sc) {
      return sc;
    }
  }
  return 0;  // larger than the largest class: unsupported
}

std::uint64_t UnifiedHeap::CarveBlock(int tier, std::uint32_t size_class) {
  const auto ti = static_cast<std::size_t>(tier);
  TierState& state = tier_state_[ti];
  for (auto& bin : state.bins) {
    if (bin.size_class == size_class && !bin.free_list.empty()) {
      const std::uint64_t addr = bin.free_list.back();
      bin.free_list.pop_back();
      return addr;
    }
  }
  if (state.bump + size_class > tiers_[ti].capacity) {
    return 0;
  }
  const std::uint64_t addr = tiers_[ti].base + state.bump;
  state.bump += size_class;
  return addr;
}

void UnifiedHeap::ReleaseBlock(int tier, std::uint32_t size_class, std::uint64_t addr) {
  for (auto& bin : tier_state_[static_cast<std::size_t>(tier)].bins) {
    if (bin.size_class == size_class) {
      bin.free_list.push_back(addr);
      return;
    }
  }
}

ObjectId UnifiedHeap::Allocate(std::uint32_t size, int tier_hint) {
  assert(!tiers_.empty() && "no tiers configured");
  const std::uint32_t sc = ClassFor(size);
  if (sc == 0) {
    ++stats_.failed_allocations;
    return kInvalidObject;
  }

  std::vector<int> candidates;
  if (tier_hint >= 0) {
    candidates.push_back(tier_hint);
  } else {
    for (int t = 0; t < num_tiers(); ++t) {
      candidates.push_back(t);
    }
  }

  for (int tier : candidates) {
    const std::uint64_t addr = CarveBlock(tier, sc);
    if (addr == 0) {
      continue;
    }
    const ObjectId id = next_id_++;
    Object obj;
    obj.info.id = id;
    obj.info.addr = addr;
    obj.info.size = size;
    obj.info.tier = tier;
    obj.shadow.resize(size);
    if (switch_mem_ != nullptr) {
      obj.info.vaddr = va_base_ + va_bump_;
      va_bump_ += sc;  // never reused; released ranges may linger dying
      switch_mem_->RegisterRange(obj.info.vaddr, sc,
                                 tiers_[static_cast<std::size_t>(tier)].caps.node, addr);
    }
    objects_.emplace(id, std::move(obj));
    tier_used_[static_cast<std::size_t>(tier)] += sc;
    profiler_.OnAllocate(id);
    ++stats_.allocations;
    return id;
  }
  ++stats_.failed_allocations;
  return kInvalidObject;
}

void UnifiedHeap::Free(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return;
  }
  const ObjectInfo& info = it->second.info;
  const std::uint32_t sc = ClassFor(info.size);
  if (switch_mem_ != nullptr) {
    if (info.migrating) {
      // The in-flight migration (and possibly its commit) still references
      // the range; FinishClaim releases it once the migration resolves.
      inflight_[id].freed = true;
    } else {
      switch_mem_->ReleaseRange(info.vaddr);
    }
  }
  ReleaseBlock(info.tier, sc, info.addr);
  tier_used_[static_cast<std::size_t>(info.tier)] -= sc;
  profiler_.OnFree(id);
  ++stats_.frees;
  objects_.erase(it);
}

void UnifiedHeap::Touch(Object& obj) {
  profiler_.OnAccess(obj.info.id);
  MaybeRunEpoch();
}

void UnifiedHeap::Read(ObjectId id, std::function<void()> done) {
  auto it = objects_.find(id);
  assert(it != objects_.end() && "read of freed object");
  ++stats_.reads;
  Touch(it->second);
  if (switch_mem_ != nullptr) {
    const std::uint32_t size = it->second.info.size;
    switch_mem_->Resolve(it->second.info.vaddr,
                         [this, size, done = std::move(done)](const Translation& x, bool ok) {
                           if (!ok) {
                             if (done) {
                               done();  // range released underneath the access
                             }
                             return;
                           }
                           core_->AccessRange(x.addr, size, /*is_write=*/false, done);
                         });
    return;
  }
  core_->AccessRange(it->second.info.addr, it->second.info.size, /*is_write=*/false,
                     std::move(done));
}

void UnifiedHeap::Write(ObjectId id, std::function<void()> done) {
  auto it = objects_.find(id);
  assert(it != objects_.end() && "write of freed object");
  ++stats_.writes;
  Touch(it->second);
  if (switch_mem_ != nullptr) {
    const std::uint32_t size = it->second.info.size;
    switch_mem_->Resolve(it->second.info.vaddr,
                         [this, size, done = std::move(done)](const Translation& x, bool ok) {
                           if (!ok) {
                             if (done) {
                               done();
                             }
                             return;
                           }
                           core_->AccessRange(x.addr, size, /*is_write=*/true, done);
                         });
    return;
  }
  core_->AccessRange(it->second.info.addr, it->second.info.size, /*is_write=*/true,
                     std::move(done));
}

std::vector<std::byte>& UnifiedHeap::Shadow(ObjectId id) {
  auto it = objects_.find(id);
  assert(it != objects_.end());
  return it->second.shadow;
}

Segment UnifiedHeap::SegmentFor(const Object& obj) const {
  Segment seg;
  seg.node = tiers_[static_cast<std::size_t>(obj.info.tier)].caps.node;
  seg.addr = obj.info.addr;
  seg.bytes = obj.info.size;
  return seg;
}

void UnifiedHeap::BeginClaim(ObjectId id, const InFlightMigration& claim) {
  tier_migrating_src_[static_cast<std::size_t>(claim.src_tier)] += claim.size_class;
  ++migrations_in_flight_;
  inflight_.emplace(id, claim);
}

void UnifiedHeap::FinishClaim(ObjectId id) {
  auto it = inflight_.find(id);
  assert(it != inflight_.end() && "finishing a migration that was never claimed");
  const InFlightMigration claim = it->second;
  tier_migrating_src_[static_cast<std::size_t>(claim.src_tier)] -= claim.size_class;
  --migrations_in_flight_;
  inflight_.erase(it);
  if (switch_mem_ != nullptr && claim.freed) {
    // Free() arrived mid-migration and deferred the range release to us.
    switch_mem_->ReleaseRange(claim.vaddr);
  }
}

MigrateResult UnifiedHeap::Migrate(ObjectId id, int dst_tier, std::function<void(bool)> done) {
  auto it = objects_.find(id);
  MigrateResult reject = MigrateResult::kStarted;
  if (it == objects_.end()) {
    reject = MigrateResult::kNoSuchObject;
  } else if (it->second.info.migrating) {
    reject = MigrateResult::kBusy;
  } else if (dst_tier == it->second.info.tier) {
    reject = MigrateResult::kSameTier;
  }
  if (reject != MigrateResult::kStarted) {
    if (done) {
      done(false);
    }
    return reject;
  }
  Object& obj = it->second;
  const std::uint32_t sc = ClassFor(obj.info.size);
  const std::uint64_t dst_addr = CarveBlock(dst_tier, sc);
  if (dst_addr == 0) {
    if (done) {
      done(false);
    }
    return MigrateResult::kNoSpace;
  }

  obj.info.migrating = true;
  const int src_tier = obj.info.tier;
  const std::uint64_t src_addr = obj.info.addr;
  const std::uint64_t vaddr = obj.info.vaddr;

  ETransDescriptor desc;
  desc.src.push_back(SegmentFor(obj));
  Segment dst;
  dst.node = tiers_[static_cast<std::size_t>(dst_tier)].caps.node;
  dst.addr = dst_addr;
  dst.bytes = obj.info.size;
  desc.dst.push_back(dst);
  desc.ownership = Ownership::kInitiator;

  if (dst_tier < src_tier) {
    ++stats_.promotions;
  } else {
    ++stats_.demotions;
  }

  // Record the new placement eagerly so allocation bookkeeping stays
  // consistent even if the object is freed mid-migration; the copy's cost
  // is still fully simulated before `done` fires. The source block stays
  // carved until the copy resolves, tracked as migrating-source bytes.
  obj.info.addr = dst_addr;
  obj.info.tier = dst_tier;
  tier_used_[static_cast<std::size_t>(dst_tier)] += sc;
  BeginClaim(id, InFlightMigration{vaddr, src_tier, dst_tier, sc, /*freed=*/false});

  const std::uint32_t size = obj.info.size;
  TransferFuture f = etrans_->Submit(agent_, desc);
  f.Then([this, id, src_tier, src_addr, dst_tier, dst_addr, sc, size,
          done](const TransferResult& r) {
    auto it2 = objects_.find(id);

    if (!r.ok) {
      // The copy aborted (fabric failure, retries exhausted). The source
      // bytes were never released, so the object simply stays where it was;
      // no commit was issued, so cached translations are still correct.
      ++stats_.migrations_failed;
      if (it2 == objects_.end()) {
        // Freed mid-migration: Free() already returned the eagerly recorded
        // dst block, so only the src block is still ours.
        for (std::uint64_t a = src_addr; a < src_addr + size; a += 64) {
          core_->InvalidateLine(a);
        }
        ReleaseBlock(src_tier, sc, src_addr);
        tier_used_[static_cast<std::size_t>(src_tier)] -= sc;
      } else {
        // Drop any lines cached against the dst placement (accesses during
        // the migration used the new address), return the dst block, and
        // restore the source placement.
        for (std::uint64_t a = dst_addr; a < dst_addr + size; a += 64) {
          core_->InvalidateLine(a);
        }
        ReleaseBlock(dst_tier, sc, dst_addr);
        tier_used_[static_cast<std::size_t>(dst_tier)] -= sc;
        it2->second.info.addr = src_addr;
        it2->second.info.tier = src_tier;
        it2->second.info.migrating = false;
      }
      FinishClaim(id);
      if (done) {
        done(false);
      }
      return;
    }

    // The copy landed. Reclaiming the source block drops its stale cached
    // lines (a real system would remap; we keep the hierarchy honest about
    // where bytes live) and returns it to the bin.
    const auto reclaim_src = [this, src_tier, src_addr, sc, size](std::uint64_t copied) {
      for (std::uint64_t a = src_addr; a < src_addr + size; a += 64) {
        core_->InvalidateLine(a);
      }
      ReleaseBlock(src_tier, sc, src_addr);
      tier_used_[static_cast<std::size_t>(src_tier)] -= sc;
      stats_.bytes_migrated += copied;
    };

    if (switch_mem_ == nullptr) {
      // No fabric translation to keep coherent: the source block is
      // reusable as soon as the copy finished.
      reclaim_src(r.bytes);
      FinishClaim(id);
      if (it2 == objects_.end()) {
        if (done) {
          done(false);  // freed mid-migration
        }
        return;
      }
      it2->second.info.migrating = false;
      if (done) {
        done(true);
      }
      return;
    }

    if (inflight_.at(id).freed) {
      // Freed while copying: nothing to commit (Free already returned the
      // dst block); FinishClaim releases the range at the agent.
      reclaim_src(r.bytes);
      FinishClaim(id);
      if (done) {
        done(false);
      }
      return;
    }

    // Switch-mem: the new placement must be committed at the agent before
    // the source block is reusable — until every cached translation of the
    // old placement is invalidated and acknowledged, a stale hit could
    // still route reads at the source bytes.
    Translation next;
    next.vbase = inflight_.at(id).vaddr;
    next.bytes = sc;
    next.node = tiers_[static_cast<std::size_t>(dst_tier)].caps.node;
    next.addr = dst_addr;
    const std::uint64_t copied = r.bytes;
    switch_mem_->Commit(
        next, [this, id, src_tier, src_addr, dst_tier, dst_addr, sc, size, copied,
               done](bool committed) {
          auto it3 = objects_.find(id);
          if (!committed) {
            // Commit rejected (range released or a racing commit won). The
            // bytes were copied but the fabric still routes at the source
            // placement; roll back exactly like a failed copy.
            ++stats_.migrations_failed;
            if (it3 == objects_.end()) {
              for (std::uint64_t a = src_addr; a < src_addr + size; a += 64) {
                core_->InvalidateLine(a);
              }
              ReleaseBlock(src_tier, sc, src_addr);
              tier_used_[static_cast<std::size_t>(src_tier)] -= sc;
            } else {
              for (std::uint64_t a = dst_addr; a < dst_addr + size; a += 64) {
                core_->InvalidateLine(a);
              }
              ReleaseBlock(dst_tier, sc, dst_addr);
              tier_used_[static_cast<std::size_t>(dst_tier)] -= sc;
              it3->second.info.addr = src_addr;
              it3->second.info.tier = src_tier;
              it3->second.info.migrating = false;
            }
            FinishClaim(id);
            if (done) {
              done(false);
            }
            return;
          }
          // Every stale cached translation is gone: reclaim the src block.
          for (std::uint64_t a = src_addr; a < src_addr + size; a += 64) {
            core_->InvalidateLine(a);
          }
          ReleaseBlock(src_tier, sc, src_addr);
          tier_used_[static_cast<std::size_t>(src_tier)] -= sc;
          stats_.bytes_migrated += copied;
          FinishClaim(id);
          if (it3 == objects_.end()) {
            if (done) {
              done(false);  // freed during the commit handshake
            }
            return;
          }
          it3->second.info.migrating = false;
          if (done) {
            done(true);
          }
        });
  });
  return MigrateResult::kStarted;
}

void UnifiedHeap::MaybeRunEpoch() {
  if (engine_->Now() >= next_epoch_at_) {
    RunEpoch();
  }
}

void UnifiedHeap::RunEpoch() {
  // Lazy catch-up: an idle stretch spanning k epoch lengths must decay
  // temperatures k times, not once — folding it as a single epoch left
  // stale objects artificially hot and blocked demotion. The k-1 skipped
  // epochs saw no accesses (decay by 1-alpha each); the accumulated access
  // count folds last, so activity that triggered the catch-up stays hot.
  // Epochs stay anchored to the original grid. An explicit early RunEpoch()
  // call (now before the next boundary) keeps the legacy single-fold
  // re-anchoring semantics.
  const Tick now = engine_->Now();
  std::uint64_t elapsed = 1;
  if (config_.epoch_length > 0 && now >= next_epoch_at_) {
    elapsed += (now - next_epoch_at_) / config_.epoch_length;
    next_epoch_at_ += elapsed * config_.epoch_length;
  } else {
    next_epoch_at_ = now + config_.epoch_length;
  }
  stats_.epochs += elapsed;

  // Profile: the sharded profiler folds this epoch's access counts into the
  // per-object EWMA temperatures and hands back only the bounded,
  // deterministically ordered promote/demote candidate list — the policy
  // no longer sees (or pays for) a full snapshot of millions of objects.
  const auto candidates =
      profiler_.FoldEpoch(elapsed, config_.promote_threshold, config_.demote_threshold);

  if (!config_.migration_enabled || policy_ == nullptr) {
    return;
  }
  std::vector<ObjectInfo> snapshot;
  snapshot.reserve(candidates.size());
  for (const auto& c : candidates) {
    auto it = objects_.find(c.id);
    if (it == objects_.end()) {
      continue;  // profiler entries are erased on Free; defensive only
    }
    ObjectInfo info = it->second.info;
    info.temperature = c.temperature;
    info.epoch_accesses = 0;
    snapshot.push_back(info);
  }
  const auto moves = policy_->Decide(snapshot, tiers_, tier_used_, config_);
  for (const auto& move : moves) {
    Migrate(move.object, move.dst_tier, nullptr);
  }
}

ObjectInfo UnifiedHeap::Info(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return ObjectInfo{};
  }
  ObjectInfo info = it->second.info;
  info.temperature = profiler_.TemperatureOf(id);
  info.epoch_accesses = profiler_.PendingAccesses(id);
  return info;
}

int UnifiedHeap::TierOf(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? -1 : it->second.info.tier;
}

}  // namespace unifab
